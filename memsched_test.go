package memsched_test

import (
	"bytes"
	"testing"

	"memsched"
)

func TestPublicAPIRoundTrip(t *testing.T) {
	inst := memsched.Matmul2D(12)
	res, err := memsched.Run(inst, memsched.DARTSLUF(), memsched.V100(2), memsched.Options{
		Seed:            3,
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.GFlops <= 0 || res.Loads == 0 {
		t.Fatalf("implausible result: %+v", res)
	}
}

func TestPublicAPIAllWorkloads(t *testing.T) {
	insts := []*memsched.Instance{
		memsched.Matmul2D(6),
		memsched.Matmul2DRandomized(6, 1),
		memsched.Matmul3D(3),
		memsched.Cholesky(5),
		memsched.Sparse2D(15, 0.2, 1),
	}
	for _, inst := range insts {
		res, err := memsched.Run(inst, memsched.DMDAR(), memsched.V100(2))
		if err != nil {
			t.Fatalf("%s: %v", inst.Name(), err)
		}
		if res.GFlops <= 0 {
			t.Fatalf("%s: zero throughput", inst.Name())
		}
	}
}

func TestPublicAPIStrategies(t *testing.T) {
	inst := memsched.Matmul2D(8)
	strategies := []memsched.Strategy{
		memsched.Eager(),
		memsched.EagerBelady(),
		memsched.DMDAR(),
		memsched.HMetisR(true),
		memsched.HMetisR(false),
		memsched.MHFP(true),
		memsched.MHFP(false),
		memsched.DARTS(),
		memsched.DARTSLUF(),
		memsched.DARTSWith(memsched.DARTSOptions{LUF: true, Opti: true}),
	}
	for _, s := range strategies {
		if _, err := memsched.Run(inst, s, memsched.V100(2), memsched.Options{Seed: 1}); err != nil {
			t.Fatalf("%s: %v", s.Label, err)
		}
	}
}

func TestStrategyByName(t *testing.T) {
	s, err := memsched.StrategyByName("mHFP")
	if err != nil {
		t.Fatal(err)
	}
	if s.Label != "mHFP" {
		t.Fatalf("label = %q", s.Label)
	}
}

func TestCustomBuilderAndTrace(t *testing.T) {
	inst := memsched.Matmul2D(10)
	res, err := memsched.Run(inst, memsched.Eager(), memsched.V100(1), memsched.Options{
		RecordTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("no trace recorded")
	}
	a, err := memsched.Analyze(inst, memsched.V100(1), res)
	if err != nil {
		t.Fatal(err)
	}
	if a.BusBusy <= 0 || a.BusUtilization <= 0 {
		t.Fatalf("analysis: %+v", a)
	}
	if tl := memsched.Timeline(inst, memsched.V100(1), res, 60); tl == "" {
		t.Fatal("empty timeline")
	}
}

func TestInstanceJSONThroughFacade(t *testing.T) {
	inst := memsched.Cholesky(4)
	var buf bytes.Buffer
	if err := inst.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := memsched.ReadInstanceJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumTasks() != inst.NumTasks() {
		t.Fatalf("%d tasks after round trip, want %d", back.NumTasks(), inst.NumTasks())
	}
}

func TestBuilderThroughFacade(t *testing.T) {
	b := memsched.NewBuilder("custom")
	d0 := b.AddData("x", 1000)
	d1 := b.AddData("y", 1000)
	b.AddTask("t0", 1e9, d0, d1)
	b.AddTask("t1", 1e9, d1)
	inst := b.Build()
	plat := memsched.Platform{
		NumGPUs: 1, MemoryBytes: 10_000, GFlopsPerGPU: 1, BusBytesPerSecond: 1e6,
	}
	res, err := memsched.Run(inst, memsched.Eager(), plat)
	if err != nil {
		t.Fatal(err)
	}
	if res.Loads != 2 {
		t.Fatalf("loads = %d", res.Loads)
	}
}

func TestNVLinkThroughFacade(t *testing.T) {
	inst := memsched.Matmul2D(20)
	plain, err := memsched.Run(inst, memsched.DARTSLUF(), memsched.V100(2), memsched.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	nv, err := memsched.Run(inst, memsched.DARTSLUF(), memsched.V100NVLink(2), memsched.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if nv.PeerBytesTransferred == 0 {
		t.Skip("no peer traffic at this size")
	}
	if nv.BytesTransferred > plain.BytesTransferred {
		t.Fatalf("NVLink increased host traffic: %d > %d", nv.BytesTransferred, plain.BytesTransferred)
	}
}

func TestOfflineAPIThroughFacade(t *testing.T) {
	b := memsched.NewBuilder("tiny")
	d0 := b.AddData("d0", 100)
	d1 := b.AddData("d1", 100)
	d2 := b.AddData("d2", 100)
	b.AddTask("t0", 1e9, d0, d1)
	b.AddTask("t1", 1e9, d1, d2)
	b.AddTask("t2", 1e9, d0, d2)
	inst := b.Build()

	sched, loads, err := memsched.OptimalSchedule(inst, 1, 300, 3)
	if err != nil {
		t.Fatal(err)
	}
	if loads != 3 {
		t.Fatalf("optimal loads = %d, want 3 (everything fits)", loads)
	}
	ev, err := memsched.EvaluateSchedule(inst, sched, 300)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Loads != loads {
		t.Fatalf("re-evaluation %d != %d", ev.Loads, loads)
	}
	// The runtime needs room for two task footprints (running + head).
	plat := memsched.Platform{NumGPUs: 1, MemoryBytes: 400, GFlopsPerGPU: 1, BusBytesPerSecond: 1e6}
	res, err := memsched.Run(inst, memsched.Replay(sched), plat, memsched.Options{CheckInvariants: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Loads < loads {
		t.Fatalf("replay loaded %d, below the offline optimum %d", res.Loads, loads)
	}
}

func TestLoadsPerDataExposed(t *testing.T) {
	inst := memsched.Matmul2D(6)
	res, err := memsched.Run(inst, memsched.Eager(), memsched.V100(1))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range res.LoadsPerData {
		total += c
	}
	if total != res.Loads {
		t.Fatalf("per-data loads sum %d != total %d", total, res.Loads)
	}
}

func TestReproduceFigureAPI(t *testing.T) {
	ids := memsched.FigureIDs()
	if len(ids) != 9 {
		t.Fatalf("figure ids: %v", ids)
	}
	rows, err := memsched.ReproduceFigure("fig9", memsched.ReproduceOptions{MaxN: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	if memsched.FormatFigureTable(rows, "gflops") == "" {
		t.Fatal("empty table")
	}
	if _, err := memsched.ReproduceFigure("fig99", memsched.ReproduceOptions{}); err == nil {
		t.Fatal("unknown figure accepted")
	}
}
