// Package memsched is a Go reproduction of "Memory-Aware Scheduling of
// Tasks Sharing Data on Multiple GPUs with Dynamic Runtime Systems"
// (Gonthier, Marchal, Thibault — IPDPS 2022).
//
// It provides:
//
//   - a model of independent tasks sharing input data (bipartite
//     task/data graphs) and generators for the paper's workloads (2D, 3D
//     and sparse matrix products, Cholesky task sets);
//   - a deterministic discrete-event simulator of a multi-GPU machine
//     (bounded GPU memories, one shared PCI bus) driven by a StarPU-like
//     runtime with prefetching and pluggable eviction;
//   - the paper's five scheduling strategies — EAGER, DMDAR, hMETIS+R
//     (with a from-scratch multilevel hypergraph partitioner), mHFP, and
//     DARTS with its LUF eviction policy and 3inputs/OPTI/threshold
//     variants;
//   - an experiment harness regenerating every figure of the paper's
//     evaluation.
//
// Quick start:
//
//	inst := memsched.Matmul2D(50)
//	res, err := memsched.Run(inst, memsched.DARTSLUF(), memsched.V100(2))
//	if err != nil { ... }
//	fmt.Printf("%.0f GFlop/s, %d MB moved\n", res.GFlops, res.BytesTransferred/1e6)
package memsched

import (
	"context"
	"io"

	"memsched/internal/critpath"
	"memsched/internal/fault"
	"memsched/internal/memory"
	"memsched/internal/platform"
	"memsched/internal/sched"
	"memsched/internal/sim"
	"memsched/internal/taskgraph"
	"memsched/internal/workload"
)

// Core model types.
type (
	// Instance is an immutable set of independent tasks sharing input
	// data (a bipartite task/data graph).
	Instance = taskgraph.Instance
	// Builder assembles custom instances; see NewBuilder.
	Builder = taskgraph.Builder
	// TaskID identifies a task of an Instance.
	TaskID = taskgraph.TaskID
	// DataID identifies a data item of an Instance.
	DataID = taskgraph.DataID
	// Platform describes the simulated machine.
	Platform = platform.Platform
	// Result is the outcome of one simulation run.
	Result = sim.Result
	// GPUStats holds the per-GPU counters of a Result.
	GPUStats = sim.GPUStats
	// TraceEvent is one entry of a recorded simulation trace.
	TraceEvent = sim.TraceEvent
	// Strategy couples a scheduler with its eviction policy.
	Strategy = sched.Strategy
	// DARTSOptions selects DARTS variants (LUF, 3inputs, OPTI,
	// threshold).
	DARTSOptions = sched.DARTSOptions
	// Scheduler is the extension interface for custom scheduling
	// strategies; see the examples/custom-scheduler program.
	Scheduler = sim.Scheduler
	// EvictionPolicy is the extension interface for custom eviction
	// policies.
	EvictionPolicy = sim.EvictionPolicy
	// RuntimeView is the runtime state visible to schedulers and
	// eviction policies.
	RuntimeView = sim.RuntimeView
	// Analysis summarizes transfer/compute overlap in a recorded trace.
	Analysis = sim.Analysis
	// Telemetry is the engine-computed run telemetry: per-GPU idle-time
	// attribution, bus utilization, occupancy samples and reload counts.
	Telemetry = sim.Telemetry
	// GPUTelemetry is the per-GPU slice of Telemetry.
	GPUTelemetry = sim.GPUTelemetry
	// Probe streams every trace event during the run without retaining
	// the trace; see Options.Probe.
	Probe = sim.Probe
	// ProbeFunc adapts a function to the Probe interface.
	ProbeFunc = sim.ProbeFunc
	// Decision is one recorded scheduler decision (data selection,
	// fallback, eviction victim, steal).
	Decision = sched.Decision
	// DecisionRecorder receives scheduler decisions; attach one with
	// Strategy.WithRecorder.
	DecisionRecorder = sched.DecisionRecorder
	// DecisionLog is a DecisionRecorder writing one line per decision.
	DecisionLog = sched.DecisionLog
	// DecisionList is a DecisionRecorder collecting decisions in memory.
	DecisionList = sched.DecisionList
	// DecisionDigest is a bounded cross-run summary of a decision log.
	DecisionDigest = sched.DecisionDigest
	// DigestRecorder folds the decision stream into a DecisionDigest.
	DigestRecorder = sched.DigestRecorder
	// MultiRecorder fans decisions out to several recorders.
	MultiRecorder = sched.MultiRecorder
	// MultiProbe fans trace events out to several probes.
	MultiProbe = sim.MultiProbe
	// FaultPlan is a deterministic fault schedule injected via
	// Options.Faults: GPU dropouts, transient transfer failures with
	// bounded retry, and memory-pressure spikes. The zero value (or nil)
	// is a strict no-op.
	FaultPlan = fault.Plan
	// FaultDropout is a permanent GPU loss at a simulated time.
	FaultDropout = fault.Dropout
	// FaultTransient parameterizes transient transfer failures.
	FaultTransient = fault.Transient
	// FaultPressure is a temporary memory-budget shrink on one GPU.
	FaultPressure = fault.Pressure
	// FaultStats is Result.Faults: dropout/kill/requeue/retry/recovery
	// counters of a faulty run (nil on fault-free runs).
	FaultStats = sim.FaultStats
	// DropoutHandler is the optional Scheduler extension that receives
	// the unfinished tasks of a dropped GPU for re-enqueueing; the
	// built-in strategies all implement it.
	DropoutHandler = sim.DropoutHandler
	// CriticalPath is a makespan attribution: the blocking chain of a
	// recorded run, tiled into blame categories, with counterfactual
	// lower bounds. See AnalyzeCriticalPath.
	CriticalPath = critpath.Path
	// CriticalPathSegment is one interval of a CriticalPath.
	CriticalPathSegment = critpath.Segment
	// BlameCategory labels a CriticalPathSegment: compute, PCI transfer,
	// NVLink peer transfer, eviction-induced reload, scheduler idle or
	// fault recovery.
	BlameCategory = critpath.Category
	// CriticalPathSummary is the compact JSON form of a CriticalPath
	// (per-category milliseconds, counterfactual bounds, leaderboards).
	CriticalPathSummary = critpath.Summary
)

// NewBuilder starts a custom instance with the given name.
func NewBuilder(name string) *Builder { return taskgraph.NewBuilder(name) }

// V100 returns the paper's platform: n Tesla V100 GPUs with memory
// limited to 500 MB, sharing a 12 GB/s PCI bus.
func V100(n int) Platform { return platform.V100(n) }

// V100Unlimited returns the same platform with the full 32 GB per GPU.
func V100Unlimited(n int) Platform { return platform.V100Unlimited(n) }

// V100NVLink returns the V100 platform with the NVLink extension enabled:
// data resident on a peer GPU is copied GPU-to-GPU instead of over the
// shared PCI bus (the future work of the paper's SVI).
func V100NVLink(n int) Platform { return platform.V100NVLink(n) }

// CPUDisk returns the out-of-core scenario of the paper's introduction:
// several CPUs with restricted private memories sharing a disk link.
func CPUDisk(numCPUs int) Platform { return platform.CPUDisk(numCPUs) }

// Heterogeneous returns the V100 platform with one GPU per argument, each
// with its own sustained throughput in GFlop/s (the heterogeneity the
// model of SIII extends to and DMDA was designed for).
func Heterogeneous(gflops ...float64) Platform { return platform.Heterogeneous(gflops...) }

// Workload generators (see internal/workload for the exact shapes).

// Matmul2D builds the n x n blocked 2D matrix product of the paper.
func Matmul2D(n int) *Instance { return workload.Matmul2D(n) }

// Matmul2DRandomized is Matmul2D with a shuffled submission order.
func Matmul2DRandomized(n int, seed int64) *Instance {
	return workload.Matmul2DRandomized(n, seed)
}

// Matmul3D builds the n^3-task 3D blocked matrix product.
func Matmul3D(n int) *Instance { return workload.Matmul3D(n) }

// Cholesky builds the task set of an n x n tiled Cholesky decomposition
// with dependencies removed.
func Cholesky(n int) *Instance { return workload.Cholesky(n) }

// Sparse2D builds the sparse 2D product keeping fraction keep of the
// tasks.
func Sparse2D(n int, keep float64, seed int64) *Instance {
	return workload.Sparse2D(n, keep, seed)
}

// Matmul2DWithOutputs is Matmul2D with each task writing its C tile back
// to host memory (the output extension the paper's SI sets aside).
func Matmul2DWithOutputs(n int) *Instance { return workload.Matmul2DWithOutputs(n) }

// Strategies of the paper.

// Eager returns the EAGER baseline (shared queue, natural order).
func Eager() Strategy { return sched.EagerStrategy() }

// DMDAR returns StarPU's deque-model data-aware scheduler with Ready
// reordering.
func DMDAR() Strategy { return sched.DMDARStrategy() }

// HMetisR returns hMETIS+R: hypergraph partitioning + Ready + task
// stealing. chargePartitionTime selects whether the partitioning cost is
// charged to the simulated clock.
func HMetisR(chargePartitionTime bool) Strategy {
	return sched.HMetisRStrategy(chargePartitionTime)
}

// MHFP returns multi-GPU Hierarchical Fair Packing. chargePackingTime
// selects whether the packing cost is charged.
func MHFP(chargePackingTime bool) Strategy { return sched.MHFPStrategy(chargePackingTime) }

// DARTS returns the plain DARTS scheduler (with LRU eviction).
func DARTS() Strategy { return sched.DARTSStrategy(DARTSOptions{}) }

// DARTSLUF returns DARTS with the LUF eviction policy, the paper's
// headline strategy.
func DARTSLUF() Strategy { return sched.DARTSStrategy(DARTSOptions{LUF: true}) }

// DARTSWith returns the DARTS variant selected by opts.
func DARTSWith(opts DARTSOptions) Strategy { return sched.DARTSStrategy(opts) }

// EagerBelady returns EAGER paired with a Belady oracle eviction policy,
// the optimal eviction for the EAGER task order (used as an ablation
// anchor).
func EagerBelady() Strategy {
	return Strategy{Label: "EAGER+Belady", New: sched.NewEagerBeladyPair()}
}

// StrategyByName resolves a strategy by its figure label, e.g.
// "DARTS+LUF" or "hMETIS+R no part. time".
func StrategyByName(name string) (Strategy, error) { return sched.ByName(name) }

// Custom builds a Strategy from a user scheduler (and optional eviction
// policy; nil selects LRU). The builder is invoked once per Run.
func Custom(label string, build func() (Scheduler, EvictionPolicy)) Strategy {
	return Strategy{Label: label, New: build}
}

// Options tunes a Run.
type Options struct {
	// WindowSize is the per-GPU prefetch window depth (default 4).
	WindowSize int
	// Seed drives tie-breaking randomness (default 0).
	Seed int64
	// NsPerOp charges scheduler decisions to the simulated clock at
	// this rate (default 0: scheduling is free, as in the paper's
	// simulation figures). Use DefaultNsPerOp for the paper's
	// real-execution figures.
	NsPerOp float64
	// RecordTrace keeps the full event log in the Result.
	RecordTrace bool
	// CheckInvariants validates the run's trace (implies RecordTrace).
	CheckInvariants bool
	// BusModel selects the host-bus contention model: BusFIFO (default)
	// or BusFairShare.
	BusModel BusModel
	// Telemetry computes Result.Telemetry (idle-time attribution, bus
	// utilization, occupancy, reloads). Pure observation: the simulated
	// schedule is unchanged.
	Telemetry bool
	// Probe receives every trace event as it happens, without the
	// retention cost of RecordTrace.
	Probe Probe
	// Faults injects a deterministic fault plan (see FaultPlan). Nil or
	// empty keeps the run byte-identical to a fault-free one.
	Faults *FaultPlan
	// Context, when non-nil, cancels the simulation: the engine polls it
	// periodically and Run returns ctx.Err() wrapped with the completed
	// task count.
	Context context.Context
	// Scratch, when non-nil, recycles the engine's transient state across
	// sequential Runs (see NewScratch). Results are byte-identical with
	// or without it; a Scratch serves one Run at a time and is not safe
	// for concurrent use.
	Scratch *Scratch
}

// Scratch is reusable engine state: passing the same Scratch to
// sequential Runs skips the per-run transient allocations of the event
// core. See Options.Scratch.
type Scratch = sim.Scratch

// NewScratch returns an empty Scratch ready for Options.Scratch.
func NewScratch() *Scratch { return sim.NewScratch() }

// BusModel selects the host-bus contention model of a Run.
type BusModel = sim.BusModel

// Bus contention models.
const (
	// BusFIFO serializes host transfers in request order.
	BusFIFO = sim.BusFIFO
	// BusFairShare splits the bus bandwidth among in-flight transfers,
	// as fluid-flow simulators like the paper's SimGrid do.
	BusFairShare = sim.BusFairShare
)

// DefaultNsPerOp is the cost-model rate used by the paper-reproduction
// experiments that charge scheduling time.
const DefaultNsPerOp = sim.DefaultNsPerOp

// Analyze summarizes a run with a recorded trace: bus utilization,
// per-GPU idle time, and how much transfer time was hidden behind
// computation (the lens of the paper's §V-C discussion).
func Analyze(inst *Instance, plat Platform, res *Result) (*Analysis, error) {
	return sim.Analyze(inst, plat, res)
}

// Timeline renders a text Gantt chart (one row per GPU plus the shared
// bus) of a recorded trace, width columns wide.
func Timeline(inst *Instance, plat Platform, res *Result, width int) string {
	return sim.Timeline(inst, plat, res, width)
}

// ReadInstanceJSON loads an instance serialized by Instance.WriteJSON.
func ReadInstanceJSON(r io.Reader) (*Instance, error) { return taskgraph.ReadJSON(r) }

// WriteChromeTrace exports a recorded trace in the Chrome trace-event
// JSON format (chrome://tracing, ui.perfetto.dev).
func WriteChromeTrace(w io.Writer, inst *Instance, plat Platform, res *Result) error {
	return sim.WriteChromeTrace(w, inst, plat, res)
}

// AnalyzeCriticalPath reconstructs the blocking chain of a recorded run
// (Options.RecordTrace): a sequence of segments exactly tiling
// [0, Makespan], each blamed on compute, a PCI or NVLink transfer, an
// eviction-induced reload, scheduler idle or fault recovery — plus
// counterfactual lower bounds (infinite bandwidth / infinite memory).
func AnalyzeCriticalPath(inst *Instance, res *Result) (*CriticalPath, error) {
	return critpath.Analyze(inst, res)
}

// SummarizeCriticalPath folds a CriticalPath into its compact summary.
func SummarizeCriticalPath(inst *Instance, p *CriticalPath) *CriticalPathSummary {
	return critpath.Summarize(inst, p)
}

// WriteCriticalPathReport prints the human-readable attribution report:
// blame table, counterfactual bounds, top blamed tasks/data and the
// longest segments.
func WriteCriticalPathReport(w io.Writer, inst *Instance, res *Result, p *CriticalPath) {
	critpath.Report(w, inst, res, p)
}

// WriteHighlightedChromeTrace is WriteChromeTrace with the critical
// path overlaid: a dedicated track renders the blame segments and the
// events on the path are color-coded by category.
func WriteHighlightedChromeTrace(w io.Writer, inst *Instance, plat Platform, res *Result, p *CriticalPath) error {
	return critpath.WriteHighlightedChromeTrace(w, inst, plat, res, p)
}

// Run simulates inst under the given strategy and platform.
func Run(inst *Instance, strat Strategy, plat Platform, opts ...Options) (*Result, error) {
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	s, pol := strat.New()
	var ev EvictionPolicy = pol
	if ev == nil {
		ev = memory.NewLRU()
	}
	return sim.Run(inst, sim.Config{
		Platform:        plat,
		Scheduler:       s,
		Eviction:        ev,
		WindowSize:      o.WindowSize,
		Seed:            o.Seed,
		NsPerOp:         o.NsPerOp,
		RecordTrace:     o.RecordTrace,
		CheckInvariants: o.CheckInvariants,
		BusModel:        o.BusModel,
		Telemetry:       o.Telemetry,
		Probe:           o.Probe,
		Faults:          o.Faults,
		Context:         o.Context,
		Scratch:         o.Scratch,
	})
}

// ParseFaultSpec parses the command-line fault-plan syntax used by
// `paperbench -faults` (e.g. "drop=1@5ms,transient=0.05:4:20us").
func ParseFaultSpec(spec string) (*FaultPlan, error) { return fault.ParseSpec(spec) }
