package memsched_test

// One benchmark per figure of the paper's evaluation (Figures 3 to 13)
// plus ablation benchmarks for the design choices called out in
// DESIGN.md §6. The figure benchmarks run trimmed sweeps of the full
// experiments defined in internal/expr (cmd/paperbench runs the complete
// sweeps); each reports the throughput achieved by the paper's headline
// strategy at the most memory-constrained point of the trimmed sweep, as
// gflops/op, alongside MB-moved/op.

import (
	"testing"

	"memsched"
	"memsched/internal/expr"
	"memsched/internal/memory"
	"memsched/internal/metrics"
	"memsched/internal/platform"
	"memsched/internal/sched"
	"memsched/internal/sim"
	"memsched/internal/workload"
)

// benchFigure runs the figure's experiment with the sweep capped at maxN
// and reports the headline strategy's numbers at the largest point.
func benchFigure(b *testing.B, id string, maxN int, headline string) {
	b.Helper()
	f, err := expr.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var rows []metrics.Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err = f.Run(expr.RunOptions{Quick: true, MaxN: maxN})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	var best *metrics.Row
	for i := range rows {
		r := &rows[i]
		if r.Scheduler == headline && (best == nil || r.WorkingSetMB > best.WorkingSetMB) {
			best = r
		}
	}
	if best == nil {
		b.Fatalf("headline strategy %q missing from rows", headline)
	}
	b.ReportMetric(best.GFlops, "gflops")
	b.ReportMetric(best.TransferredMB, "MBmoved")
}

// BenchmarkFig3 regenerates Figure 3 (GFlop/s, 2D product, 1 GPU).
func BenchmarkFig3(b *testing.B) { benchFigure(b, "fig3", 68, "DARTS+LUF") }

// BenchmarkFig4 regenerates Figure 4 (transfers, 2D product, 1 GPU).
func BenchmarkFig4(b *testing.B) { benchFigure(b, "fig4", 68, "EAGER") }

// BenchmarkFig5 regenerates Figure 5 (2 GPUs, simulation).
func BenchmarkFig5(b *testing.B) { benchFigure(b, "fig5", 68, "DARTS+LUF") }

// BenchmarkFig6 regenerates Figure 6 (2 GPUs, scheduling cost charged).
func BenchmarkFig6(b *testing.B) { benchFigure(b, "fig6", 68, "DARTS+LUF") }

// BenchmarkFig7 regenerates Figure 7 (transfers, 2 GPUs).
func BenchmarkFig7(b *testing.B) { benchFigure(b, "fig7", 68, "DMDAR") }

// BenchmarkFig8 regenerates Figure 8 (4 GPUs, with the threshold variant).
func BenchmarkFig8(b *testing.B) { benchFigure(b, "fig8", 85, "DARTS+LUF+threshold") }

// BenchmarkFig9 regenerates Figure 9 (randomized order, 2 GPUs).
func BenchmarkFig9(b *testing.B) { benchFigure(b, "fig9", 42, "DARTS+LUF") }

// BenchmarkFig10 regenerates Figure 10 (3D product, 4 GPUs).
func BenchmarkFig10(b *testing.B) { benchFigure(b, "fig10", 16, "DARTS+LUF-3inputs") }

// BenchmarkFig11 regenerates Figure 11 (Cholesky task set, 4 GPUs).
func BenchmarkFig11(b *testing.B) { benchFigure(b, "fig11", 24, "DARTS+LUF+OPTI-3inputs") }

// BenchmarkFig12 regenerates Figure 12 (sparse 2D product, 4 GPUs).
func BenchmarkFig12(b *testing.B) { benchFigure(b, "fig12", 150, "DARTS+LUF") }

// BenchmarkFig13 regenerates Figure 13 (sparse, no memory limit).
func BenchmarkFig13(b *testing.B) { benchFigure(b, "fig13", 150, "DARTS+LUF") }

// BenchmarkFigureRunParallel measures the experiment harness itself: the
// same trimmed Figure 3 sweep run through the parallel cell runner with
// 1, 2 and 4 workers. Rows are identical across worker counts (see
// TestWorkersConformance in internal/expr); only wall time changes. On a
// 4-core machine the 4-worker run completes the sweep about 2-3x faster
// than the sequential one (the sweep's longest single cell bounds the
// speedup); on a single-core machine the variants tie.
func BenchmarkFigureRunParallel(b *testing.B) {
	for _, w := range []int{1, 2, 4} {
		w := w
		b.Run("workers-"+itoa(w), func(b *testing.B) {
			f, err := expr.ByID("fig3")
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := f.Run(expr.RunOptions{Quick: true, MaxN: 42, Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchOne runs one (instance, strategy, platform) combo per iteration
// and reports its throughput and traffic.
func benchOne(b *testing.B, inst *memsched.Instance, strat memsched.Strategy, plat memsched.Platform, opt memsched.Options) {
	b.Helper()
	var res *memsched.Result
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = memsched.Run(inst, strat, plat, opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(res.GFlops, "gflops")
	b.ReportMetric(float64(res.BytesTransferred)/platform.MB, "MBmoved")
}

// BenchmarkAblationReadyWindow sweeps the Ready reorder depth of DMDAR:
// too small reintroduces the EAGER pathology, unbounded erases the
// submission-order sensitivity of Figure 9.
func BenchmarkAblationReadyWindow(b *testing.B) {
	inst := memsched.Matmul2D(80)
	for _, w := range []int{16, 64, 256, 1024, -1} {
		w := w
		name := "whole-queue"
		if w > 0 {
			name = "w" + itoa(w)
		}
		b.Run(name, func(b *testing.B) {
			strat := memsched.Custom("DMDAR", func() (memsched.Scheduler, memsched.EvictionPolicy) {
				return sched.NewDMDAR(w)(), nil
			})
			benchOne(b, inst, strat, memsched.V100(2), memsched.Options{Seed: 1})
		})
	}
}

// BenchmarkAblationWindow sweeps the runtime prefetch window (taskBuffer
// depth): 1 disables transfer/compute overlap, large windows dilute the
// LUF information.
func BenchmarkAblationWindow(b *testing.B) {
	inst := memsched.Matmul2D(60)
	for _, w := range []int{1, 2, 4, 8, 16} {
		w := w
		b.Run("w"+itoa(w), func(b *testing.B) {
			benchOne(b, inst, memsched.DARTSLUF(), memsched.V100(2),
				memsched.Options{Seed: 1, WindowSize: w})
		})
	}
}

// BenchmarkAblationEviction holds the scheduler fixed and swaps the
// eviction policy: DARTS with LRU (the pathological default), FIFO and
// LUF, and EAGER with LRU versus the optimal Belady oracle.
func BenchmarkAblationEviction(b *testing.B) {
	inst := memsched.Matmul2D(60)
	cases := []struct {
		name  string
		strat memsched.Strategy
	}{
		{"DARTS-LRU", memsched.DARTS()},
		{"DARTS-FIFO", memsched.Custom("DARTS+FIFO", func() (memsched.Scheduler, memsched.EvictionPolicy) {
			s, _ := memsched.DARTS().New()
			return s, memory.NewFIFO()
		})},
		{"DARTS-LUF", memsched.DARTSLUF()},
		{"EAGER-LRU", memsched.Eager()},
		{"EAGER-Belady", memsched.EagerBelady()},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			benchOne(b, inst, c.strat, memsched.V100(1), memsched.Options{Seed: 1})
		})
	}
}

// BenchmarkExtensionNVLink compares the paper's platform with and without
// the NVLink peer-transfer extension (SVI future work) under DARTS+LUF.
func BenchmarkExtensionNVLink(b *testing.B) {
	inst := memsched.Matmul2D(80)
	for _, nv := range []bool{false, true} {
		nv := nv
		name := "pci-only"
		if nv {
			name = "nvlink"
		}
		b.Run(name, func(b *testing.B) {
			plat := memsched.V100(4)
			if nv {
				plat = memsched.V100NVLink(4)
			}
			benchOne(b, inst, memsched.DARTSLUF(), plat, memsched.Options{Seed: 1})
		})
	}
}

// BenchmarkAblationThreshold sweeps the DARTS candidate threshold on a
// large 4-GPU task set with scheduling cost charged (the trade-off of
// Figure 8: a low threshold cuts scheduling time but degrades the
// schedule).
func BenchmarkAblationThreshold(b *testing.B) {
	inst := memsched.Matmul2D(100)
	for _, t := range []int{2, 5, 10, 50, 0} {
		t := t
		name := "unbounded"
		if t > 0 {
			name = "t" + itoa(t)
		}
		b.Run(name, func(b *testing.B) {
			strat := memsched.DARTSWith(memsched.DARTSOptions{LUF: true, Threshold: t})
			benchOne(b, inst, strat, memsched.V100(4),
				memsched.Options{Seed: 1, NsPerOp: memsched.DefaultNsPerOp})
		})
	}
}

// BenchmarkAblationStealing toggles task stealing for hMETIS+R on a
// transfer-imbalanced sparse workload.
func BenchmarkAblationStealing(b *testing.B) {
	inst := memsched.Sparse2D(200, workload.DefaultSparseKeep, 42)
	for _, steal := range []bool{true, false} {
		steal := steal
		name := "steal"
		if !steal {
			name = "nosteal"
		}
		b.Run(name, func(b *testing.B) {
			strat := memsched.Custom("hMETIS+R", func() (memsched.Scheduler, memsched.EvictionPolicy) {
				return sched.NewHMetisRSteal(false, 0, steal)(), nil
			})
			benchOne(b, inst, strat, memsched.V100(4), memsched.Options{Seed: 1})
		})
	}
}

// BenchmarkAblationBusModel compares the FIFO and fair-share contention
// models of the shared bus on a constrained multi-GPU workload.
func BenchmarkAblationBusModel(b *testing.B) {
	inst := memsched.Matmul2D(60)
	for _, model := range []memsched.BusModel{memsched.BusFIFO, memsched.BusFairShare} {
		model := model
		b.Run(model.String(), func(b *testing.B) {
			benchOne(b, inst, memsched.DARTSLUF(), memsched.V100(2),
				memsched.Options{Seed: 1, BusModel: model})
		})
	}
}

// BenchmarkAblationBandwidth sweeps the shared bus bandwidth: the
// crossover between compute-bound and transfer-bound shifts with it.
func BenchmarkAblationBandwidth(b *testing.B) {
	inst := memsched.Matmul2D(60)
	for _, gbps := range []float64{6, 12, 24} {
		gbps := gbps
		b.Run("GBps"+itoa(int(gbps)), func(b *testing.B) {
			plat := memsched.V100(2)
			plat.BusBytesPerSecond = gbps * platform.GB
			benchOne(b, inst, memsched.DARTSLUF(), plat, memsched.Options{Seed: 1})
		})
	}
}

// BenchmarkPartitioner measures the multilevel hypergraph partitioner on
// the 2D product sharing structure (the hMETIS+R static phase).
func BenchmarkPartitioner(b *testing.B) {
	inst := memsched.Matmul2D(60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		strat := memsched.HMetisR(false)
		if _, err := memsched.Run(inst, strat, memsched.V100(4), memsched.Options{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineEventsPerSec is the regression gate for raw engine
// speed: figure-scale workloads run back to back on one recycled
// Scratch (the sweep harness's steady state) and the headline metric is
// discrete events simulated per wall-clock second. CI runs this with
// -benchtime 1x and archives the numbers; compare events/s across
// commits to catch event-core regressions.
func BenchmarkEngineEventsPerSec(b *testing.B) {
	cases := []struct {
		name  string
		inst  *memsched.Instance
		strat memsched.Strategy
		plat  memsched.Platform
	}{
		// The fig3 and fig5 headline points: DARTS+LUF at the most
		// memory-constrained sweep point, 1 and 2 GPUs.
		{"fig3-darts-luf", memsched.Matmul2D(68), memsched.DARTSLUF(), memsched.V100(1)},
		{"fig5-darts-luf-2gpu", memsched.Matmul2D(68), memsched.DARTSLUF(), memsched.V100(2)},
		// The cheapest scheduler: engine overhead dominates.
		{"eager-2gpu", memsched.Matmul2D(80), memsched.Eager(), memsched.V100(2)},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			sc := memsched.NewScratch()
			opt := memsched.Options{Seed: 1, Telemetry: true, Scratch: sc}
			var events int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := memsched.Run(c.inst, c.strat, c.plat, opt)
				if err != nil {
					b.Fatal(err)
				}
				events += res.Events
			}
			b.StopTimer()
			if b.Elapsed() > 0 {
				b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
			}
		})
	}
}

// BenchmarkSimulatorEvents measures raw simulator throughput
// (events processed per second) under the cheapest scheduler.
func BenchmarkSimulatorEvents(b *testing.B) {
	inst := memsched.Matmul2D(80)
	events := inst.NumTasks() * 2 // start+end per task, plus transfers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := memsched.Run(inst, memsched.Eager(), memsched.V100(2), memsched.Options{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		events = res.Loads + 2*inst.NumTasks()
	}
	b.StopTimer()
	b.ReportMetric(float64(events), "events/op")
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// benchmark helpers must not use the sim package directly for anything
// stateful; keep a compile-time check that the public facade suffices.
var _ = sim.DefaultWindowSize

// BenchmarkExtensionHeterogeneous compares strategies on a machine with
// mixed GPU speeds (one fast, three slow), the heterogeneity the paper's
// model extends to (§III) and DMDA was designed for.
func BenchmarkExtensionHeterogeneous(b *testing.B) {
	inst := memsched.Matmul2D(60)
	plat := memsched.Heterogeneous(13253, 6000, 6000, 6000)
	for _, strat := range []memsched.Strategy{memsched.Eager(), memsched.DMDAR(), memsched.DARTSLUF()} {
		strat := strat
		b.Run(strat.Label, func(b *testing.B) {
			benchOne(b, inst, strat, plat, memsched.Options{Seed: 1})
		})
	}
}

// BenchmarkAblationCliqueExpansion compares the hypergraph partitioner
// with the clique-expansion (plain graph, METIS-style) model the paper
// argues against in §IV-B, on the sharing-heavy 2D product.
func BenchmarkAblationCliqueExpansion(b *testing.B) {
	inst := memsched.Matmul2D(60)
	cases := []struct {
		name    string
		factory func() (memsched.Scheduler, memsched.EvictionPolicy)
	}{
		{"hypergraph", func() (memsched.Scheduler, memsched.EvictionPolicy) {
			return sched.NewHMetisR(false, 0)(), nil
		}},
		{"clique", func() (memsched.Scheduler, memsched.EvictionPolicy) {
			return sched.NewMetisR(false, 0)(), nil
		}},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			benchOne(b, inst, memsched.Custom(c.name, c.factory), memsched.V100(4), memsched.Options{Seed: 1})
		})
	}
}

// BenchmarkRelatedWorkStealing compares the related-work schools on the
// constrained 4-GPU 2D product: locality by work stealing (XKaapi-style,
// §II-c) versus locality by partitioning (hMETIS+R) versus locality by
// planning (DARTS+LUF).
func BenchmarkRelatedWorkStealing(b *testing.B) {
	inst := memsched.Matmul2D(60)
	cases := []struct {
		name  string
		strat memsched.Strategy
	}{
		{"WS-locality", memsched.Custom("WS-locality", func() (memsched.Scheduler, memsched.EvictionPolicy) {
			return sched.NewWorkStealing(0, 0)(), nil
		})},
		{"hMETIS+R", memsched.HMetisR(false)},
		{"DARTS+LUF", memsched.DARTSLUF()},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			benchOne(b, inst, c.strat, memsched.V100(4), memsched.Options{Seed: 1})
		})
	}
}

// BenchmarkExtensionOutputs compares the paper's output-free model with
// the write-back extension of §I on the constrained 2-GPU 2D product.
func BenchmarkExtensionOutputs(b *testing.B) {
	cases := []struct {
		name string
		inst *memsched.Instance
	}{
		{"no-outputs", memsched.Matmul2D(60)},
		{"write-back", memsched.Matmul2DWithOutputs(60)},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			benchOne(b, c.inst, memsched.DARTSLUF(), memsched.V100(2), memsched.Options{Seed: 1})
		})
	}
}
