package memsched_test

import (
	"fmt"
	"log"

	"memsched"
)

// ExampleRun shows the basic flow: build a workload, pick a strategy,
// simulate, read the metrics.
func ExampleRun() {
	inst := memsched.Matmul2D(10) // 100 tasks, everything fits in memory
	res, err := memsched.Run(inst, memsched.DARTSLUF(), memsched.V100(1), memsched.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loads: %d of %d data items\n", res.Loads, inst.NumData())
	fmt.Printf("evictions: %d\n", res.Evictions)
	// Output:
	// loads: 20 of 20 data items
	// evictions: 0
}

// ExampleNewBuilder builds a custom instance by hand.
func ExampleNewBuilder() {
	b := memsched.NewBuilder("pipeline")
	weights := b.AddData("weights", 100_000_000)
	batchA := b.AddData("batchA", 50_000_000)
	batchB := b.AddData("batchB", 50_000_000)
	b.AddTask("inferA", 5e9, weights, batchA)
	b.AddTask("inferB", 5e9, weights, batchB)
	inst := b.Build()
	fmt.Printf("%d tasks sharing %d data items, %.0f MB working set\n",
		inst.NumTasks(), inst.NumData(), float64(inst.WorkingSetBytes())/1e6)
	// Output:
	// 2 tasks sharing 3 data items, 200 MB working set
}

// ExampleEvaluate is not possible without the internal core package, but
// Analyze gives the runtime view of a finished schedule.
func ExampleAnalyze() {
	inst := memsched.Matmul2D(8)
	plat := memsched.V100(1)
	res, err := memsched.Run(inst, memsched.Eager(), plat, memsched.Options{RecordTrace: true})
	if err != nil {
		log.Fatal(err)
	}
	a, err := memsched.Analyze(inst, plat, res)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reuse factor: %.1f tasks-bytes per moved byte\n", a.ReuseFactor)
	// Output:
	// reuse factor: 8.0 tasks-bytes per moved byte
}

// ExampleWithDependencies runs a dependent task graph through any
// strategy.
func ExampleWithDependencies() {
	inst, deps := memsched.CholeskyDAG(4)
	gated := memsched.WithDependencies(deps, memsched.DMDAR())
	res, err := memsched.Run(inst, gated, memsched.V100(2), memsched.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s finished %d kernels\n", res.SchedulerName, inst.NumTasks())
	// Output:
	// DMDAR+deps finished 20 kernels
}
