package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// startDaemon launches a built binary with the given args, parses the
// stdout "listening on" port-discovery line, and keeps stdout drained.
// The returned tail channel yields the remaining stdout after exit.
func startDaemon(t *testing.T, bin string, args ...string) (cmd *exec.Cmd, base string, stderr *bytes.Buffer, tail chan string) {
	t.Helper()
	cmd = exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	stderr = new(bytes.Buffer)
	cmd.Stderr = stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })

	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if _, rest, ok := strings.Cut(sc.Text(), "listening on "); ok {
			base = strings.TrimSpace(rest)
			break
		}
	}
	if base == "" {
		t.Fatalf("%s printed no listening line; stderr: %s", filepath.Base(bin), stderr.String())
	}
	tail = make(chan string, 1)
	go func() {
		var rest strings.Builder
		for sc.Scan() {
			rest.WriteString(sc.Text())
			rest.WriteString("\n")
		}
		tail <- rest.String()
	}()
	return cmd, base, stderr, tail
}

// TestRouterBinaryE2E exercises the deployed shape: real memschedd
// replicas behind a real memrouter process, a job submitted through the
// router, and a SIGTERM drain with the stdout summary contract.
func TestRouterBinaryE2E(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH")
	}
	dir := t.TempDir()
	msd := filepath.Join(dir, "memschedd")
	mrt := filepath.Join(dir, "memrouter")
	if out, err := exec.Command(goBin, "build", "-o", msd, "memsched/cmd/memschedd").CombinedOutput(); err != nil {
		t.Fatalf("build memschedd: %v\n%s", err, out)
	}
	if out, err := exec.Command(goBin, "build", "-o", mrt, ".").CombinedOutput(); err != nil {
		t.Fatalf("build memrouter: %v\n%s", err, out)
	}

	var urls []string
	for i := 0; i < 2; i++ {
		_, base, _, _ := startDaemon(t, msd, "-addr", "127.0.0.1:0", "-workers", "1", "-log-level", "warn")
		urls = append(urls, base)
	}
	router, base, stderr, tail := startDaemon(t, mrt,
		"-addr", "127.0.0.1:0", "-replicas", strings.Join(urls, ","), "-drain-timeout", "30s")

	// Submit through the router and long-poll to done.
	resp, err := http.Post(base+"/jobs", "application/json",
		strings.NewReader(`{"workload":"matmul2d","n":20,"gpus":2}`))
	if err != nil {
		t.Fatalf("POST /jobs: %v", err)
	}
	var st struct {
		ID     string          `json:"id"`
		State  string          `json:"state"`
		Result json.RawMessage `json:"result"`
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs = %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode accept: %v", err)
	}
	resp.Body.Close()
	deadline := time.Now().Add(30 * time.Second)
	for st.State != "done" {
		if time.Now().After(deadline) {
			t.Fatalf("job never finished: %+v; router stderr: %s", st, stderr.String())
		}
		wr, err := http.Get(base + "/jobs/" + st.ID + "?wait=1")
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(wr.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		wr.Body.Close()
	}
	if len(st.Result) == 0 {
		t.Fatal("done job carries no result bytes")
	}

	// The health table endpoint reports both replicas up.
	hr, err := http.Get(base + "/replicas")
	if err != nil {
		t.Fatal(err)
	}
	var views []struct {
		Replica string `json:"replica"`
		State   string `json:"state"`
	}
	if err := json.NewDecoder(hr.Body).Decode(&views); err != nil {
		t.Fatalf("decode /replicas: %v", err)
	}
	hr.Body.Close()
	if len(views) != 2 {
		t.Fatalf("/replicas listed %d entries, want 2", len(views))
	}

	// The router serves its own Prometheus exposition.
	mr, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody := new(strings.Builder)
	sc := bufio.NewScanner(mr.Body)
	for sc.Scan() {
		mbody.WriteString(sc.Text())
		mbody.WriteString("\n")
	}
	mr.Body.Close()
	if !strings.Contains(mbody.String(), "memrouter_jobs_done_total 1") {
		t.Fatalf("router exposition missing done counter:\n%s", mbody.String())
	}

	// SIGTERM: clean drain, exit 0, stdout summary contract.
	if err := router.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	exited := make(chan error, 1)
	go func() { exited <- router.Wait() }()
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("memrouter exit: %v; stderr: %s", err, stderr.String())
		}
	case <-time.After(40 * time.Second):
		t.Fatal("memrouter did not exit after SIGTERM")
	}
	if rest := <-tail; !strings.Contains(rest, "memrouter: drained") {
		t.Fatalf("stdout drain summary missing: %q", rest)
	}
}
