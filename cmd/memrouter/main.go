// Command memrouter fronts a fleet of memschedd replicas: it shards
// jobs across them by consistent hashing on the canonical job key,
// probes replica health, re-dispatches jobs lost to a dead replica
// (safe because results are bit-deterministic), hedges stragglers onto
// the next preferred replica, answers repeated specs from a bounded
// content-addressed result cache, and sheds excess load with 429 +
// Retry-After once its in-flight bound fills.
//
// Usage:
//
//	memrouter -addr 127.0.0.1:8090 -replicas http://h1:8080,http://h2:8080
//	memrouter -journal /var/lib/memrouter/jobs.journal ...
//	memrouter -version
//
// Endpoints mirror memschedd: POST/GET /jobs, GET /jobs/{id} (?wait=1
// long-polls), DELETE /jobs/{id}, /healthz, /readyz, /metrics
// (Prometheus text, or JSON with ?format=json), /debug/flight,
// /debug/spans.jsonl — plus GET /replicas for the health table,
// POST /replicas to join a replica at runtime and DELETE /replicas to
// drain one out. On SIGTERM or SIGINT the router drains: new
// submissions get 503, in-flight jobs finish under -drain-timeout,
// then it exits 0 (1 if the deadline forced cancellation).
//
// With -journal the router appends every job transition to an fsync'd
// write-ahead journal before acknowledging it, and on startup replays
// the journal: completed jobs are re-served byte-identically from
// their recorded results, incomplete ones are re-dispatched (safe
// because replica results are bit-deterministic). A kill -9 therefore
// loses no accepted job.
//
// The "listening on" port-discovery line, the "journal recovered"
// summary and the final drain summary stay on stdout in both log
// formats — scripts and the chaos CI smoke parse them, same contract
// as memschedd.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"memsched/internal/buildinfo"
	"memsched/internal/fleet"
	"memsched/internal/obs"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr         = flag.String("addr", "127.0.0.1:8090", "listen address (host:port; port 0 picks a free port)")
		replicas     = flag.String("replicas", "", "comma-separated memschedd base URLs (required)")
		vnodes       = flag.Int("vnodes", fleet.DefaultVNodes, "consistent-hash virtual nodes per replica")
		maxInFlight  = flag.Int("max-in-flight", 256, "max accepted-but-unfinished jobs before submissions are shed with 429")
		jobTimeout   = flag.Duration("job-timeout", 5*time.Minute, "end-to-end deadline per job, across failovers and hedges")
		pollTimeout  = flag.Duration("poll-timeout", 2*time.Second, "one ?wait=1 long-poll bound against a replica")
		maxAttempts  = flag.Int("max-attempts", 0, "max dispatch attempts per job (0 = 3 per replica)")
		baseBackoff  = flag.Duration("backoff", 50*time.Millisecond, "base delay before re-trying when no replica is eligible")
		maxBackoff   = flag.Duration("max-backoff", 2*time.Second, "cap on that delay")
		brkThreshold = flag.Int("breaker-threshold", 3, "consecutive dispatch failures that open a replica's breaker (-1 disables)")
		brkCooldown  = flag.Duration("breaker-cooldown", 5*time.Second, "how long an open breaker skips a replica before probing")
		hedgeQ       = flag.Float64("hedge-quantile", 0.95, "sojourn quantile that arms the hedge timer")
		hedgeMin     = flag.Duration("hedge-min-delay", 250*time.Millisecond, "hedge-timer floor while the latency histogram is cold")
		noHedge      = flag.Bool("no-hedge", false, "disable hedged requests")
		cacheEntries = flag.Int("cache-entries", fleet.DefaultCacheEntries, "result-cache entry bound")
		cacheBytes   = flag.Int64("cache-bytes", fleet.DefaultCacheBytes, "result-cache byte bound")
		noCache      = flag.Bool("no-cache", false, "disable the content-addressed result cache")
		maxN         = flag.Int("max-n", 300, "admission cap on workload size")
		maxGPUs      = flag.Int("max-gpus", 8, "admission cap on GPU count")
		healthEvery  = flag.Duration("health-interval", 250*time.Millisecond, "replica /readyz probe cadence (jittered ±20% to avoid probe synchronization)")
		healthFails  = flag.Int("health-fail-threshold", 3, "consecutive probe/dispatch failures that mark a replica down")
		journalPath  = flag.String("journal", "", "write-ahead job journal path; empty disables durability")
		evictAfter   = flag.Duration("evict-after", 0, "auto-evict a replica continuously down this long (0 disables)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long a drain waits for in-flight jobs")
		logFormat    = flag.String("log-format", "text", "structured log format: text or json")
		logLevel     = flag.String("log-level", "info", "log level: debug, info, warn, error")
		traceSample  = flag.Int("trace-sample", 1, "record lifecycle spans for every n-th job (1 = all, -1 disables)")
		traceSpans   = flag.Int("trace-spans", 4096, "flight-recorder span ring capacity (-1 disables)")
		version      = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()

	if *version {
		v, gv := buildinfo.Resolve()
		fmt.Printf("memrouter %s (%s)\n", v, gv)
		return 0
	}

	logger, err := obs.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	var urls []string
	for _, u := range strings.Split(*replicas, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, strings.TrimRight(u, "/"))
		}
	}
	var journal *fleet.Journal
	if *journalPath != "" {
		journal, err = fleet.OpenJournal(*journalPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "memrouter: open journal: %v\n", err)
			return 2
		}
		defer journal.Close()
	}
	r, err := fleet.New(fleet.Config{
		Replicas:         urls,
		VNodes:           *vnodes,
		MaxInFlight:      *maxInFlight,
		JobTimeout:       *jobTimeout,
		PollTimeout:      *pollTimeout,
		MaxAttempts:      *maxAttempts,
		BaseBackoff:      *baseBackoff,
		MaxBackoff:       *maxBackoff,
		BreakerThreshold: *brkThreshold,
		BreakerCooldown:  *brkCooldown,
		HedgeQuantile:    *hedgeQ,
		HedgeMinDelay:    *hedgeMin,
		DisableHedge:     *noHedge,
		CacheEntries:     *cacheEntries,
		CacheBytes:       *cacheBytes,
		DisableCache:     *noCache,
		MaxN:             *maxN,
		MaxGPUs:          *maxGPUs,
		Health: fleet.HealthConfig{
			Interval:      *healthEvery,
			FailThreshold: *healthFails,
		},
		Journal:       journal,
		EvictAfter:    *evictAfter,
		Logger:        logger,
		TraceSample:   *traceSample,
		TraceSpanCap:  *traceSpans,
		TraceEventCap: *traceSpans,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "memrouter: %v\n", err)
		return 2
	}
	r.Start()

	// Listen explicitly so "-addr :0" prints the real port before any
	// client needs it; this stdout line is the machine-readable
	// port-discovery contract, identical in shape to memschedd's.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen failed", "addr", *addr, "err", err)
		return 1
	}
	fmt.Printf("memrouter listening on http://%s\n", ln.Addr())
	if journal != nil {
		// Machine-readable recovery summary, same stdout contract as the
		// "listening on" line: the chaos e2e and the CI smoke parse it.
		rec := r.Recovery()
		fmt.Printf("memrouter: journal recovered: %d complete, %d replayed, %d deduped (%s)\n",
			rec.Complete, rec.Replayed, rec.Deduped, journal.Path())
	}
	logger.Info("memrouter started",
		"addr", ln.Addr().String(),
		"replicas", len(urls),
		"max_in_flight", *maxInFlight,
		"log_format", *logFormat)

	httpSrv := &http.Server{Handler: r.Handler()}
	httpErr := make(chan error, 1)
	go func() { httpErr <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case got := <-sig:
		logger.Info("signal received; draining", "signal", got.String(), "timeout", drainTimeout.String())
	case err := <-httpErr:
		logger.Error("http server failed", "err", err)
		return 1
	}

	// Drain while the HTTP server keeps answering, so /readyz reports 503
	// and polls on in-flight jobs still resolve during the drain.
	code := 0
	if err := r.Drain(*drainTimeout); err != nil {
		logger.Error("drain incomplete", "err", err)
		code = 1
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		logger.Error("http shutdown failed", "err", err)
		code = 1
	}
	m := r.Snapshot()
	logger.Info("drained",
		slog.Int64("jobs_done", m.JobsDone),
		slog.Int64("jobs_failed", m.JobsFailed),
		slog.Int64("jobs_canceled", m.JobsCanceled),
		slog.Int64("failovers", m.Failovers),
		slog.Int64("cache_served", m.CacheServed))
	// The stdout summary is part of the CLI contract (parsed by the e2e
	// test and the CI smoke); it stays printf in both log formats.
	fmt.Printf("memrouter: drained (done %d, failed %d, canceled %d, failovers %d, hedge wins %d, cache served %d); exiting\n",
		m.JobsDone, m.JobsFailed, m.JobsCanceled, m.Failovers, m.HedgeWins, m.CacheServed)
	return code
}
