// Command memschedd is the long-running scheduling service: an HTTP/JSON
// daemon that accepts simulation jobs, runs them on a bounded worker
// pool with per-job deadlines and panic confinement, retries transient
// failures under capped exponential backoff, trips a per-(workload,
// strategy) circuit breaker on repeated failures, and sheds load with
// 429 + Retry-After once its queue fills.
//
// Usage:
//
//	memschedd -addr 127.0.0.1:8080 -workers 4 -queue 64
//	memschedd -version
//
// Endpoints: POST/GET /jobs, GET /jobs/{id} (?wait=1 long-polls),
// DELETE /jobs/{id}, /healthz, /readyz, /metrics (Prometheus text, or
// JSON with ?format=json), /debug/flight, /debug/jobs/{id}/trace,
// /debug/spans.jsonl. On SIGTERM or SIGINT the daemon drains: /readyz
// flips to 503, queued jobs are rejected, in-flight jobs finish under
// -drain-timeout, then it exits 0 (1 if the drain deadline forced
// cancellation).
//
// Structured logs go to stderr via log/slog (-log-format=text|json,
// -log-level=debug|info|warn|error); job-scoped lines carry the trace
// ID from /debug/jobs/{id}/trace. The "listening on" port-discovery
// line and the final drain summary stay on stdout in both log formats —
// scripts (and the drain e2e test) parse them.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"memsched/internal/buildinfo"
	"memsched/internal/metrics"
	"memsched/internal/obs"
	"memsched/internal/serve"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
		workers      = flag.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS)")
		queueCap     = flag.Int("queue", 64, "max queued jobs before submissions are shed with 429")
		jobTimeout   = flag.Duration("job-timeout", 2*time.Minute, "default per-job deadline")
		maxTimeout   = flag.Duration("max-job-timeout", 10*time.Minute, "cap on per-request timeout overrides")
		retries      = flag.Int("retries", 3, "max retries of a transiently failing job (-1 disables)")
		baseBackoff  = flag.Duration("backoff", 100*time.Millisecond, "base retry backoff")
		maxBackoff   = flag.Duration("max-backoff", 5*time.Second, "retry backoff cap")
		brkThreshold = flag.Int("breaker-threshold", 5, "consecutive failures that open a (workload, strategy) breaker (-1 disables)")
		brkCooldown  = flag.Duration("breaker-cooldown", 30*time.Second, "how long an open breaker sheds before probing")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long a drain waits for in-flight jobs")
		maxN         = flag.Int("max-n", 300, "admission cap on workload size")
		maxGPUs      = flag.Int("max-gpus", 8, "admission cap on GPU count")
		logFormat    = flag.String("log-format", "text", "structured log format: text or json")
		logLevel     = flag.String("log-level", "info", "log level: debug, info, warn, error")
		traceSample  = flag.Int("trace-sample", 1, "record lifecycle spans for every n-th job (1 = all, -1 disables)")
		traceSpans   = flag.Int("trace-spans", 4096, "flight-recorder span ring capacity (-1 disables)")
		version      = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()

	if *version {
		v, gv := buildinfo.Resolve()
		fmt.Printf("memschedd %s (%s)\n", v, gv)
		return 0
	}

	logger, err := obs.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	gauges := new(metrics.Gauges)
	gauges.Publish("memschedd")
	s := serve.New(serve.Config{
		Workers:          *workers,
		QueueCap:         *queueCap,
		JobTimeout:       *jobTimeout,
		MaxJobTimeout:    *maxTimeout,
		MaxRetries:       *retries,
		BaseBackoff:      *baseBackoff,
		MaxBackoff:       *maxBackoff,
		BreakerThreshold: *brkThreshold,
		BreakerCooldown:  *brkCooldown,
		MaxN:             *maxN,
		MaxGPUs:          *maxGPUs,
		Gauges:           gauges,
		Logger:           logger,
		TraceSample:      *traceSample,
		TraceSpanCap:     *traceSpans,
	})

	// Listen explicitly so "-addr :0" prints the real port before any
	// client needs it (the drain e2e test depends on this line). This
	// stdout line is the machine-readable port-discovery contract and is
	// printed identically under both log formats.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen failed", "addr", *addr, "err", err)
		return 1
	}
	fmt.Printf("memschedd listening on http://%s\n", ln.Addr())
	logger.Info("memschedd started",
		"addr", ln.Addr().String(),
		"workers", *workers,
		"queue_cap", *queueCap,
		"log_format", *logFormat)

	httpSrv := &http.Server{Handler: s.Handler()}
	httpErr := make(chan error, 1)
	go func() { httpErr <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case got := <-sig:
		logger.Info("signal received; draining", "signal", got.String(), "timeout", drainTimeout.String())
	case err := <-httpErr:
		logger.Error("http server failed", "err", err)
		return 1
	}

	// Drain while the HTTP server keeps answering, so /readyz reports 503
	// and polls on in-flight jobs still resolve during the drain.
	code := 0
	if err := s.Drain(*drainTimeout); err != nil {
		logger.Error("drain incomplete", "err", err)
		code = 1
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		logger.Error("http shutdown failed", "err", err)
		code = 1
	}
	m := s.Snapshot()
	logger.Info("drained",
		slog.Int64("jobs_done", m.JobsDone),
		slog.Int64("jobs_failed", m.JobsFailed),
		slog.Int64("jobs_canceled", m.JobsCanceled))
	// The stdout summary is part of the CLI contract (parsed by the e2e
	// test and the CI smoke); it stays printf in both log formats.
	fmt.Printf("memschedd: drained (done %d, failed %d, canceled %d); exiting\n",
		m.JobsDone, m.JobsFailed, m.JobsCanceled)
	return code
}
