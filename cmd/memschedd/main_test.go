package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"memsched/internal/serve"
)

// TestGracefulDrainE2E exercises the deployed shape of the daemon: build
// the binary, run it, put a slow job in flight plus queued jobs behind
// it, then SIGTERM the process. The in-flight job must complete, the
// queued jobs must be rejected with a drain error, /readyz must report
// 503 while /healthz stays 200, and the process must exit 0 within the
// drain deadline.
func TestGracefulDrainE2E(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH")
	}
	bin := filepath.Join(t.TempDir(), "memschedd")
	if out, err := exec.Command(goBin, "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-workers", "1", "-drain-timeout", "20s")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The daemon prints its resolved address before serving.
	sc := bufio.NewScanner(stdout)
	var base string
	for sc.Scan() {
		if _, rest, ok := strings.Cut(sc.Text(), "listening on "); ok {
			base = strings.TrimSpace(rest)
			break
		}
	}
	if base == "" {
		t.Fatalf("no listening line; stderr: %s", stderr.String())
	}
	// Keep draining stdout so the child never blocks on a full pipe.
	tail := make(chan string, 1)
	go func() {
		var rest strings.Builder
		for sc.Scan() {
			rest.WriteString(sc.Text())
			rest.WriteString("\n")
		}
		tail <- rest.String()
	}()

	post := func(body string) (*http.Response, serve.JobStatus) {
		t.Helper()
		resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST /jobs: %v", err)
		}
		var st serve.JobStatus
		if resp.StatusCode == http.StatusAccepted {
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				t.Fatalf("decode: %v", err)
			}
		}
		resp.Body.Close()
		return resp, st
	}
	getStatus := func(id string, wait bool) serve.JobStatus {
		t.Helper()
		url := base + "/jobs/" + id
		if wait {
			url += "?wait=1"
		}
		resp, err := http.Get(url)
		if err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
		defer resp.Body.Close()
		var st serve.JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decode status: %v", err)
		}
		return st
	}

	// One slow job (~1s of simulation) for the single worker, then quick
	// jobs that stay queued behind it.
	resp, slow := post(`{"workload":"matmul2d","n":300,"gpus":2}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("slow job POST = %d", resp.StatusCode)
	}
	deadline := time.Now().Add(10 * time.Second)
	for getStatus(slow.ID, false).State != serve.JobRunning {
		if time.Now().After(deadline) {
			t.Fatal("slow job never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	_, q1 := post(`{"workload":"matmul2d","n":4}`)
	_, q2 := post(`{"workload":"matmul2d","n":4}`)

	// Long-poll both fates concurrently, then pull the trigger.
	slowCh := make(chan serve.JobStatus, 1)
	queuedCh := make(chan serve.JobStatus, 1)
	go func() { slowCh <- getStatus(slow.ID, true) }()
	go func() { queuedCh <- getStatus(q2.ID, true) }()
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	// Readiness flips to 503 while liveness stays 200.
	deadline = time.Now().Add(10 * time.Second)
	for {
		r, err := http.Get(base + "/readyz")
		if err == nil {
			code := r.StatusCode
			r.Body.Close()
			if code == http.StatusServiceUnavailable {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("/readyz never reported draining")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if r, err := http.Get(base + "/healthz"); err != nil || r.StatusCode != http.StatusOK {
		t.Fatalf("/healthz during drain: %v %v", r, err)
	}

	// New submissions are refused while draining.
	if resp, _ := post(`{"workload":"matmul2d","n":4}`); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST during drain = %d, want 503", resp.StatusCode)
	}

	// The in-flight job completed; the queued job was rejected unstarted.
	select {
	case st := <-slowCh:
		if st.State != serve.JobDone || st.Result == nil {
			t.Fatalf("in-flight job after SIGTERM: %+v", st)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("in-flight job long-poll never resolved")
	}
	select {
	case st := <-queuedCh:
		if st.State != serve.JobCanceled || !strings.Contains(st.Error, "draining") {
			t.Fatalf("queued job after SIGTERM: %+v", st)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("queued job long-poll never resolved")
	}
	_ = q1

	// Clean exit within the drain deadline.
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("memschedd exit: %v; stderr: %s", err, stderr.String())
		}
	case <-time.After(25 * time.Second):
		t.Fatal("memschedd did not exit after drain")
	}
	if rest := <-tail; !strings.Contains(rest, "drained") {
		t.Fatalf("final output missing drain summary: %q", rest)
	}
}

// TestJSONLogsE2E runs the daemon with -log-format=json and checks the
// contract split: stdout keeps the plain parseable listening + drain
// lines, stderr carries structured JSON records with trace IDs, and
// /metrics serves the Prometheus exposition.
func TestJSONLogsE2E(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH")
	}
	bin := filepath.Join(t.TempDir(), "memschedd")
	if out, err := exec.Command(goBin, "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-workers", "1",
		"-log-format", "json", "-log-level", "debug", "-drain-timeout", "20s")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	sc := bufio.NewScanner(stdout)
	var base string
	for sc.Scan() {
		if _, rest, ok := strings.Cut(sc.Text(), "listening on "); ok {
			base = strings.TrimSpace(rest)
			break
		}
	}
	if base == "" {
		t.Fatalf("no listening line under -log-format=json; stderr: %s", stderr.String())
	}
	tail := make(chan string, 1)
	go func() {
		var rest strings.Builder
		for sc.Scan() {
			rest.WriteString(sc.Text())
			rest.WriteString("\n")
		}
		tail <- rest.String()
	}()

	// One quick job, observed to completion.
	resp, err := http.Post(base+"/jobs", "application/json",
		strings.NewReader(`{"workload":"matmul2d","n":4}`))
	if err != nil {
		t.Fatalf("POST /jobs: %v", err)
	}
	var st serve.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode: %v", err)
	}
	resp.Body.Close()
	if st.Trace == 0 {
		t.Fatalf("accepted job has no trace ID: %+v", st)
	}
	wait, err := http.Get(base + "/jobs/" + st.ID + "?wait=1")
	if err != nil {
		t.Fatal(err)
	}
	wait.Body.Close()

	// The daemon serves Prometheus text by default.
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody := new(strings.Builder)
	if _, err := io.Copy(mbody, mresp.Body); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if !strings.Contains(mresp.Header.Get("Content-Type"), "version=0.0.4") {
		t.Fatalf("metrics content type = %q", mresp.Header.Get("Content-Type"))
	}
	if !strings.Contains(mbody.String(), "memschedd_jobs_submitted_total 1") {
		t.Fatalf("exposition missing submit counter:\n%s", mbody)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("memschedd exit: %v; stderr: %s", err, stderr.String())
		}
	case <-time.After(25 * time.Second):
		t.Fatal("memschedd did not exit after drain")
	}
	if rest := <-tail; !strings.Contains(rest, "drained") {
		t.Fatalf("stdout drain summary missing under json logs: %q", rest)
	}

	// Every stderr line must be a JSON record; the job lines must carry
	// the trace ID the API returned.
	wantTrace := fmt.Sprintf("%08x", st.Trace)
	sawTrace := false
	for _, line := range strings.Split(strings.TrimSpace(stderr.String()), "\n") {
		if line == "" {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("stderr line is not JSON: %q (%v)", line, err)
		}
		if rec["msg"] == nil || rec["level"] == nil {
			t.Fatalf("log record missing msg/level: %q", line)
		}
		if tr, ok := rec["trace"].(string); ok && tr == wantTrace {
			sawTrace = true
		}
	}
	if !sawTrace {
		t.Fatalf("no log record carried trace %s; stderr: %s", wantTrace, stderr.String())
	}
}

func TestListeningLineFormat(t *testing.T) {
	// The e2e test and the CI smoke parse this exact prefix; keep it
	// stable.
	line := fmt.Sprintf("memschedd listening on http://%s\n", "127.0.0.1:1234")
	_, rest, ok := strings.Cut(line, "listening on ")
	if !ok || !strings.HasPrefix(rest, "http://") {
		t.Fatalf("listening line drifted: %q", line)
	}
}
