// Command paperbench regenerates the data series of every figure of the
// paper's evaluation (Figures 3 to 13). For each experiment it prints one
// aligned table per plotted metric, writes results/<figure>.csv, and
// reports the paper's headline comparisons (e.g. average DARTS+LUF gain
// over DMDAR).
//
// Usage:
//
//	paperbench                  # all figures, default sweeps
//	paperbench -fig fig9        # one figure
//	paperbench -quick           # a third of the sweep points
//	paperbench -maxn 100        # cap workload sizes
//	paperbench -out results     # output directory for CSV files
//	paperbench -workers 8       # fan runs across 8 workers
//	paperbench -cpuprofile p.out  # write a pprof CPU profile
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"

	"memsched/internal/expr"
	"memsched/internal/metrics"
)

func main() {
	var (
		fig        = flag.String("fig", "", "run only this figure (fig3...fig13); empty runs all")
		quick      = flag.Bool("quick", false, "run a reduced sweep")
		maxN       = flag.Int("maxn", 0, "skip sweep points with N above this bound")
		outDir     = flag.String("out", "results", "directory for CSV output")
		verbose    = flag.Bool("v", false, "print one line per run")
		replicas   = flag.Int("replicas", 1, "seeds averaged per cell (the paper uses 10)")
		plot       = flag.Bool("plot", false, "render each figure as an ASCII chart as well")
		ablations  = flag.Bool("ablations", false, "run the ablation studies instead of the paper figures")
		workers    = flag.Int("workers", 0, "concurrent simulation runs (0 = GOMAXPROCS); figures also overlap up to this bound")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	)
	flag.Parse()

	if *cpuprofile != "" {
		pf, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(pf); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			pf.Close()
		}()
	}

	if *ablations {
		runAblations(*outDir)
		return
	}
	figures := expr.AllFigures()
	if *fig != "" {
		f, err := expr.ByID(*fig)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		figures = []*expr.Figure{f}
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Figures overlap across a bounded pool so a slow multi-GPU sweep
	// does not leave the machine idle, while each figure also fans its
	// own (point, strategy, replica) cells via RunOptions.Workers.
	// Output is buffered per figure and printed in paper order.
	figWorkers := *workers
	if figWorkers <= 0 {
		figWorkers = runtime.GOMAXPROCS(0)
	}
	if figWorkers > len(figures) {
		figWorkers = len(figures)
	}
	type figResult struct {
		out bytes.Buffer
		err error
	}
	results := make([]figResult, len(figures))
	sem := make(chan struct{}, figWorkers)
	var wg sync.WaitGroup
	for i, f := range figures {
		wg.Add(1)
		go func(i int, f *expr.Figure) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i].err = runFigure(f, &results[i].out, *outDir, expr.RunOptions{
				Quick:    *quick,
				MaxN:     *maxN,
				Replicas: *replicas,
				Workers:  *workers,
			}, *verbose, *plot)
		}(i, f)
	}
	wg.Wait()

	failed := false
	for i, f := range figures {
		if results[i].err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", f.ID, results[i].err)
			failed = true
			continue
		}
		os.Stdout.Write(results[i].out.Bytes())
	}
	if failed {
		os.Exit(1)
	}
}

// runFigure executes one experiment, rendering its tables into out and
// writing its CSV under outDir.
func runFigure(f *expr.Figure, out *bytes.Buffer, outDir string, opt expr.RunOptions, verbose, plot bool) error {
	if verbose {
		opt.Progress = os.Stderr
	}
	rows, err := f.Run(opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "== %s: %s ==\n", f.ID, f.Title)
	fmt.Fprintf(out, "   reference: %s\n\n", f.RefLines())
	for _, m := range f.Metrics {
		fmt.Fprintln(out, metrics.FormatTable(rows, m))
		if plot {
			fmt.Fprintln(out, metrics.Plot(rows, m, 72, 18))
		}
	}
	printHeadlines(out, f.ID, rows)

	name := strings.ReplaceAll(f.ID, "+", "_") + ".csv"
	csvFile, err := os.Create(filepath.Join(outDir, name))
	if err != nil {
		return err
	}
	if err := metrics.WriteCSV(csvFile, rows); err != nil {
		csvFile.Close()
		return err
	}
	if err := csvFile.Close(); err != nil {
		return err
	}
	fmt.Fprintln(out)
	return nil
}

// runAblations executes the DESIGN.md §6 studies and prints one table
// per study.
func runAblations(outDir string) {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var all []metrics.Row
	for _, a := range expr.Ablations() {
		rows, err := a.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", a.ID, err)
			os.Exit(1)
		}
		fmt.Printf("== %s: %s ==\n", a.ID, a.Title)
		w := 0
		for _, r := range rows {
			if len(r.Scheduler) > w {
				w = len(r.Scheduler)
			}
		}
		for _, r := range rows {
			fmt.Printf("  %-*s  %8.0f GFlop/s  %10.1f MB moved  makespan %8.1f ms\n",
				w, r.Scheduler, r.GFlops, r.TransferredMB, r.MakespanMS)
		}
		fmt.Println()
		all = append(all, rows...)
	}
	out, err := os.Create(filepath.Join(outDir, "ablations.csv"))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer out.Close()
	if err := metrics.WriteCSV(out, all); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// printHeadlines restates the paper's headline claims for the experiments
// that carry one, with our measured value.
func printHeadlines(out *bytes.Buffer, id string, rows []metrics.Row) {
	type claim struct {
		a, b  string
		paper string
	}
	claims := map[string]claim{
		"fig3+4": {"DARTS+LUF", "DMDAR", "paper: +8.5% on average (1 GPU)"},
		"fig6+7": {"DARTS+LUF", "DMDAR", "paper: +9.4% on average (2 GPUs)"},
		"fig9":   {"DARTS+LUF", "DMDAR", "paper: +75% on average (randomized order)"},
		"fig10":  {"DARTS+LUF-3inputs", "DMDAR", "paper: +61% (3D product)"},
		"fig11":  {"DARTS+LUF+OPTI-3inputs", "hMETIS+R no part. time", "paper: +49% (Cholesky)"},
		"fig12":  {"DARTS+LUF", "DMDAR", "paper: +40% (sparse)"},
	}
	c, ok := claims[id]
	if !ok {
		return
	}
	gain, n := metrics.SpeedupOver(rows, c.a, c.b)
	if n == 0 {
		return
	}
	fmt.Fprintf(out, "headline: %s vs %s: %+.1f%% GFlop/s on average over %d points (%s)\n",
		c.a, c.b, gain, n, c.paper)
}
