// Command paperbench regenerates the data series of every figure of the
// paper's evaluation (Figures 3 to 13). For each experiment it prints one
// aligned table per plotted metric, writes results/<figure>.csv, and
// reports the paper's headline comparisons (e.g. average DARTS+LUF gain
// over DMDAR).
//
// Usage:
//
//	paperbench                  # all figures, default sweeps
//	paperbench -fig fig9        # one figure
//	paperbench -quick           # a third of the sweep points
//	paperbench -maxn 100        # cap workload sizes
//	paperbench -out results     # output directory for CSV files
//	paperbench -workers 8       # fan runs across 8 workers
//	paperbench -cpuprofile p.out  # write a pprof CPU profile
//	paperbench -memprofile m.out  # write a pprof heap profile on exit
//	paperbench -telemetry       # also write <fig>_telemetry.jsonl per figure
//	paperbench -trace-cell fig3:5:DARTS+LUF  # deep-dive one cell
//	paperbench -critpath fig3:5:DARTS+LUF    # makespan attribution: blame report + highlighted Chrome trace
//	paperbench -version         # print the build version and exit
//	paperbench -http :6060      # expvar + pprof debug endpoint
//	paperbench -baseline-write  # record BENCH_<figure>.json reference cells
//	paperbench -baseline-check  # diff the run against BENCH_*.json; exit 1 on regression
//	paperbench -faults drop=1@5ms,transient=0.05  # inject a fault plan into every cell
//	paperbench -degradation     # sweep GFlop/s vs transfer failure rate
//	paperbench -resume sweep.ckpt  # crash-safe sweep: journal cells, skip completed ones on rerun
//	paperbench compare old.jsonl new.jsonl  # diff two -telemetry captures
//
// SIGINT cancels the sweep: in-flight simulations stop, completed rows
// are still printed, written to CSV and flushed to the telemetry JSONL /
// BENCH baselines, and the process exits non-zero.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"memsched/internal/baseline"
	"memsched/internal/buildinfo"
	"memsched/internal/critpath"
	"memsched/internal/expr"
	"memsched/internal/fault"
	"memsched/internal/metrics"
	"memsched/internal/sched"
	"memsched/internal/sim"
)

func main() { os.Exit(run()) }

// run is the real main; returning instead of os.Exit lets the profile
// defers fire even when a figure fails.
func run() int {
	var (
		fig        = flag.String("fig", "", "run only this figure (fig3...fig13); empty runs all")
		quick      = flag.Bool("quick", false, "run a reduced sweep")
		maxN       = flag.Int("maxn", 0, "skip sweep points with N above this bound")
		outDir     = flag.String("out", "results", "directory for CSV output")
		verbose    = flag.Bool("v", false, "print one line per run")
		replicas   = flag.Int("replicas", 1, "seeds averaged per cell (the paper uses 10)")
		plot       = flag.Bool("plot", false, "render each figure as an ASCII chart as well")
		ablations  = flag.Bool("ablations", false, "run the ablation studies instead of the paper figures")
		workers    = flag.Int("workers", 0, "concurrent simulation runs (0 = GOMAXPROCS); figures also overlap up to this bound")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
		telemetry  = flag.Bool("telemetry", false, "write one JSON line per cell to <out>/<figure>_telemetry.jsonl")
		traceCell  = flag.String("trace-cell", "", "deep-dive one cell (figure:point:strategy): Chrome trace, decision log, telemetry")
		critCell   = flag.String("critpath", "", "makespan attribution for one cell (figure:point:strategy): blame report on stdout, highlighted Chrome trace under -out")
		version    = flag.Bool("version", false, "print the build version and exit")
		httpAddr   = flag.String("http", "", "serve expvar counters and pprof on this address (e.g. :6060)")
		faultSpec  = flag.String("faults", "", "inject a fault plan into every cell: seed=N,drop=GPU@TIME,transient=RATE[:RETRIES[:BACKOFF]],pressure=GPU@START+DURATION:BYTES")
		degrade    = flag.Bool("degradation", false, "run the fault-degradation sweep (GFlop/s vs transfer failure rate) instead of the figures")
		resume     = flag.String("resume", "", "crash-safe sweep journal (JSONL): completed cells are fsync'd here as the sweep runs, and a rerun against the same journal skips them, reproducing the uninterrupted output byte-identically")

		baselineWrite  = flag.Bool("baseline-write", false, "record the run's cells into BENCH_<figure>.json (merging into existing files)")
		baselineCheck  = flag.Bool("baseline-check", false, "diff the run against BENCH_<figure>.json; exit non-zero on regression")
		baselineDir    = flag.String("baseline-dir", ".", "directory holding the BENCH_*.json baselines")
		baselineTol    = flag.Float64("baseline-tol", -1, "uniform relative tolerance for -baseline-check and compare (0 = exact; negative = per-metric defaults)")
		baselineReport = flag.String("baseline-report", "", "also write the combined baseline diff report to this file")
	)
	flag.Parse()

	if *version {
		v, gv := buildinfo.Resolve()
		fmt.Printf("paperbench %s (%s)\n", v, gv)
		return 0
	}

	// The memsched_* gauge names are published on the global expvar
	// registry exactly once, here: library embedders and tests use
	// private metrics.Gauges instances instead (expvar panics on
	// duplicate names).
	expr.Gauges.Publish("memsched")

	plan, err := fault.ParseSpec(*faultSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if !plan.Empty() && (*baselineWrite || *baselineCheck) {
		fmt.Fprintln(os.Stderr, "-faults is incompatible with -baseline-write/-baseline-check: faulty cells must not enter or be diffed against the fault-free BENCH baselines")
		return 2
	}

	// SIGINT cancels the sweep; completed rows still flush below.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	tol := baseline.DefaultTolerances()
	if *baselineTol >= 0 {
		tol = baseline.UniformTolerance(*baselineTol)
	}
	if args := flag.Args(); len(args) > 0 {
		if args[0] != "compare" || len(args) != 3 {
			fmt.Fprintln(os.Stderr, "usage: paperbench compare <old_telemetry.jsonl> <new_telemetry.jsonl>")
			return 2
		}
		return runCompare(args[1], args[2], tol, os.Stdout)
	}

	if *memprofile != "" {
		path := *memprofile
		defer func() {
			mf, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer mf.Close()
			runtime.GC() // materialize final live-heap statistics
			if err := pprof.WriteHeapProfile(mf); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}
	if *cpuprofile != "" {
		pf, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := pprof.StartCPUProfile(pf); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			pf.Close()
		}()
	}
	if *httpAddr != "" {
		serveDebug(*httpAddr)
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	// The sweep journal. Its header fingerprints every flag that shapes
	// cell results or output, so a resume under different flags is
	// rejected instead of replaying rows the current run would not have
	// produced. (-fig is deliberately absent: keys embed the figure ID,
	// so one journal backs any figure subset.)
	var ckpt *expr.Checkpoint
	if *resume != "" {
		if *degrade || *ablations || *traceCell != "" || *critCell != "" {
			fmt.Fprintln(os.Stderr, "-resume only applies to figure sweeps (not -degradation/-ablations/-trace-cell/-critpath)")
			return 2
		}
		// v2: journaled cells now embed critpath summaries; v1 journals
		// would replay rows without attribution, breaking byte-identical
		// resume output.
		cfg := fmt.Sprintf("v2 quick=%v maxn=%d replicas=%d faults=%s", *quick, *maxN, *replicas, plan)
		var err error
		if ckpt, err = expr.OpenCheckpoint(*resume, cfg); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		defer ckpt.Close()
		if n := ckpt.Restored(); n > 0 {
			fmt.Fprintf(os.Stderr, "resuming: %d completed cells journaled in %s\n", n, *resume)
		}
	}

	if *traceCell != "" {
		if err := runTraceCell(*traceCell, *outDir, plan); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	}
	if *critCell != "" {
		if err := runCritPath(*critCell, *outDir, plan); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	}
	if *degrade {
		return runDegradation(ctx, *outDir, *workers, plan, *verbose)
	}
	if *ablations {
		return runAblations(*outDir)
	}
	figures := expr.AllFigures()
	if *fig != "" {
		f, err := expr.ByID(*fig)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		figures = []*expr.Figure{f}
	}

	// Figures overlap across a bounded pool so a slow multi-GPU sweep
	// does not leave the machine idle, while each figure also fans its
	// own (point, strategy, replica) cells via RunOptions.Workers.
	// Output is buffered per figure and printed in paper order.
	figWorkers := *workers
	if figWorkers <= 0 {
		figWorkers = runtime.GOMAXPROCS(0)
	}
	if figWorkers > len(figures) {
		figWorkers = len(figures)
	}
	var bl *baselineOps
	if *baselineWrite || *baselineCheck {
		bl = &baselineOps{write: *baselineWrite, check: *baselineCheck, dir: *baselineDir, tol: tol}
	}
	// The live status page rides on the -http debug endpoint: per-figure
	// progress and events/s next to expvar and pprof.
	var board *statusBoard
	if *httpAddr != "" {
		board = newStatusBoard(expr.Gauges, figures)
	}
	type figResult struct {
		out       bytes.Buffer
		err       error
		regressed bool
	}
	results := make([]figResult, len(figures))
	sem := make(chan struct{}, figWorkers)
	var wg sync.WaitGroup
	for i, f := range figures {
		wg.Add(1)
		go func(i int, f *expr.Figure) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i].regressed, results[i].err = runFigure(f, &results[i].out, *outDir, expr.RunOptions{
				Quick:      *quick,
				MaxN:       *maxN,
				Replicas:   *replicas,
				Workers:    *workers,
				Context:    ctx,
				Faults:     plan,
				Checkpoint: ckpt,
			}, *verbose, *plot, *telemetry, bl, board)
		}(i, f)
	}
	wg.Wait()

	failed, regressed := false, false
	for i, f := range figures {
		if results[i].err != nil {
			// A failed figure still prints what it completed: cell
			// failures (panics, cancellation) cost rows, not the sweep.
			fmt.Fprintf(os.Stderr, "%s: %v\n", f.ID, results[i].err)
			failed = true
		}
		regressed = regressed || results[i].regressed
		os.Stdout.Write(results[i].out.Bytes())
	}
	if bl.active() && *baselineReport != "" {
		if err := bl.writeReport(*baselineReport); err != nil {
			fmt.Fprintln(os.Stderr, err)
			failed = true
		}
	}
	if failed {
		return 1
	}
	if regressed {
		fmt.Fprintln(os.Stderr, "baseline check failed: regressions beyond tolerance (see report above)")
		return 1
	}
	return 0
}

// serveDebug exposes the standard expvar and pprof handlers (both
// register on the default mux at init) plus a derived events/s gauge.
func serveDebug(addr string) {
	started := time.Now()
	expvar.Publish("memsched_events_per_second", expvar.Func(func() any {
		total, _ := expvar.Get("memsched_sim_events").(*expvar.Int)
		if total == nil {
			return 0.0
		}
		elapsed := time.Since(started).Seconds()
		if elapsed <= 0 {
			return 0.0
		}
		return float64(total.Value()) / elapsed
	}))
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintf(os.Stderr, "debug endpoint: %v\n", err)
		}
	}()
	fmt.Fprintf(os.Stderr, "debug endpoint on http://%s/debug/vars and /debug/pprof\n", addr)
}

// runTraceCell deep-dives one (figure, point, strategy) cell: it reruns
// the cell fully instrumented, writes a Chrome trace and the scheduler
// decision log under outDir, prints the telemetry JSON line on stdout
// and the idle/overlap analysis on stderr. A non-empty fault plan is
// injected into the cell (fault events appear in the Chrome trace).
func runTraceCell(spec, outDir string, plan *fault.Plan) error {
	f, pi, strat, err := parseCellSpec("-trace-cell", spec)
	if err != nil {
		return err
	}

	base := fmt.Sprintf("%s_p%d_%s", sanitize(f.ID), pi, sanitize(strat.Label))
	decPath := filepath.Join(outDir, base+"_decisions.log")
	decFile, err := os.Create(decPath)
	if err != nil {
		return err
	}
	defer decFile.Close()
	declog := &sched.DecisionLog{W: decFile}
	digRec := new(sched.DigestRecorder)

	inst := f.Points[pi].Build()
	res, err := expr.RunCell(inst, strat.WithRecorder(sched.MultiRecorder{declog, digRec}), f.Platform, f.NsPerOp, f.Seed, nil, plan)
	if err != nil {
		return err
	}

	tracePath := filepath.Join(outDir, base+"_trace.json")
	traceFile, err := os.Create(tracePath)
	if err != nil {
		return err
	}
	if err := sim.WriteChromeTrace(traceFile, inst, f.Platform, res); err != nil {
		traceFile.Close()
		return err
	}
	if err := traceFile.Close(); err != nil {
		return err
	}

	// The telemetry JSON line (same schema as -telemetry) goes to stdout
	// so it can be piped; the human-oriented report goes to stderr.
	cell := expr.CellTelemetry{Row: metrics.FromResult(f.ID, res), Telemetry: res.Telemetry, Decisions: digRec.Digest(), Faults: res.Faults}
	if err := json.NewEncoder(os.Stdout).Encode(cell); err != nil {
		return err
	}
	a, err := sim.Analyze(inst, f.Platform, res)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "%s point %d (%s) on %s:\n%s", f.ID, pi, strat.Label, inst.Name(), a.String())
	fmt.Fprintf(os.Stderr, "%d scheduler decisions -> %s\nchrome trace (load in chrome://tracing) -> %s\n",
		declog.N, decPath, tracePath)
	return nil
}

// parseCellSpec resolves a figure:point:strategy cell spec (shared by
// -trace-cell and -critpath); flagName only shapes the error messages.
func parseCellSpec(flagName, spec string) (*expr.Figure, int, *sched.Strategy, error) {
	parts := strings.SplitN(spec, ":", 3)
	if len(parts) != 3 {
		return nil, 0, nil, fmt.Errorf("%s wants figure:point:strategy (e.g. fig3:5:DARTS+LUF), got %q", flagName, spec)
	}
	f, err := expr.ByID(parts[0])
	if err != nil {
		return nil, 0, nil, err
	}
	pi, err := strconv.Atoi(parts[1])
	if err != nil || pi < 0 || pi >= len(f.Points) {
		return nil, 0, nil, fmt.Errorf("%s point %q out of range [0, %d)", flagName, parts[1], len(f.Points))
	}
	for i := range f.Strategies {
		if strings.EqualFold(f.Strategies[i].Label, parts[2]) {
			return f, pi, &f.Strategies[i], nil
		}
	}
	labels := make([]string, len(f.Strategies))
	for i, s := range f.Strategies {
		labels[i] = s.Label
	}
	return nil, 0, nil, fmt.Errorf("%s strategy %q not in %s (have: %s)", flagName, parts[2], f.ID, strings.Join(labels, ", "))
}

// runCritPath runs the makespan attribution for one cell: it reruns the
// cell with trace recording, reconstructs the critical path, prints the
// blame report (categories, counterfactual bounds, leaderboards) on
// stdout, and writes the critical-path-highlighted Chrome trace under
// outDir. A non-empty fault plan is injected into the cell, so fault
// recovery shows up as attributed path segments.
func runCritPath(spec, outDir string, plan *fault.Plan) error {
	f, pi, strat, err := parseCellSpec("-critpath", spec)
	if err != nil {
		return err
	}
	inst := f.Points[pi].Build()
	res, err := expr.RunOneTraced(nil, inst, *strat, f.Platform, f.NsPerOp, f.Seed, true, plan)
	if err != nil {
		return err
	}
	p, err := critpath.Analyze(inst, res)
	if err != nil {
		return err
	}

	base := fmt.Sprintf("%s_p%d_%s", sanitize(f.ID), pi, sanitize(strat.Label))
	tracePath := filepath.Join(outDir, base+"_critpath_trace.json")
	traceFile, err := os.Create(tracePath)
	if err != nil {
		return err
	}
	if err := critpath.WriteHighlightedChromeTrace(traceFile, inst, f.Platform, res, p); err != nil {
		traceFile.Close()
		return err
	}
	if err := traceFile.Close(); err != nil {
		return err
	}

	critpath.Report(os.Stdout, inst, res, p)
	fmt.Fprintf(os.Stderr, "highlighted chrome trace (load in chrome://tracing) -> %s\n", tracePath)
	return nil
}

// sanitize maps a figure or strategy label to a filename-safe slug.
func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-' || r == '_':
			return r
		default:
			return '_'
		}
	}, s)
}

// runFigure executes one experiment, rendering its tables into out and
// writing its CSV (and optionally its telemetry JSON lines) under
// outDir. With baseline ops active it also records or checks the
// figure's BENCH file, reporting whether the check regressed.
func runFigure(f *expr.Figure, out *bytes.Buffer, outDir string, opt expr.RunOptions, verbose, plot, telemetry bool, bl *baselineOps, board *statusBoard) (regressed bool, err error) {
	if verbose {
		opt.Progress = os.Stderr
	}
	slug := strings.ReplaceAll(f.ID, "+", "_")
	if telemetry {
		tf, err := os.Create(filepath.Join(outDir, slug+"_telemetry.jsonl"))
		if err != nil {
			return false, err
		}
		defer tf.Close()
		opt.TelemetryOut = tf
	}
	var cells []expr.CellTelemetry
	if bl.active() {
		opt.OnCell = func(c expr.CellTelemetry) { cells = append(cells, c) }
	}
	if board != nil {
		// Chain the status-page progress tick behind any baseline capture.
		prev := opt.OnCell
		opt.OnCell = func(c expr.CellTelemetry) {
			if prev != nil {
				prev(c)
			}
			board.cellDone(f.ID)
		}
	}
	board.figureStarted(f.ID)
	var speed expr.SweepSpeed
	opt.Speed = &speed
	rows, runErr := f.Run(opt)
	board.figureFinished(f.ID, speed, runErr != nil)
	var sweepErr *expr.SweepError
	if runErr != nil && !errors.As(runErr, &sweepErr) {
		return false, runErr
	}
	// On a SweepError (failed or cancelled cells) the completed rows are
	// still rendered, written to CSV and merged into the baselines; the
	// error propagates so the run exits non-zero.
	fmt.Fprintf(out, "== %s: %s ==\n", f.ID, f.Title)
	fmt.Fprintf(out, "   reference: %s\n\n", f.RefLines())
	for _, m := range f.Metrics {
		fmt.Fprintln(out, metrics.FormatTable(rows, m))
		if plot {
			fmt.Fprintln(out, metrics.Plot(rows, m, 72, 18))
		}
	}
	printHeadlines(out, f.ID, rows)
	if speed.Cells > 0 {
		fmt.Fprintf(out, "engine: %d sim events across %d cells in %.2fs wall (%.0f events/s)\n",
			speed.Events, speed.Cells, speed.Wall.Seconds(), speed.EventsPerSec())
	}
	if telemetry && speed.Cells > 0 {
		// Engine speed goes to its own file: the telemetry JSONL is
		// byte-compared across runs (crash-resume smoke, compare mode)
		// and wall time is not deterministic.
		if err := writeSpeedRecord(filepath.Join(outDir, slug+"_speed.jsonl"), f.ID, speed); err != nil {
			return false, err
		}
	}

	csvFile, err := os.Create(filepath.Join(outDir, slug+".csv"))
	if err != nil {
		return false, err
	}
	if err := metrics.WriteCSV(csvFile, rows); err != nil {
		csvFile.Close()
		return false, err
	}
	if err := csvFile.Close(); err != nil {
		return false, err
	}
	if bl.active() {
		regressed, err = bl.apply(f.ID, cells, out)
		if err != nil {
			return false, err
		}
	}
	fmt.Fprintln(out)
	return regressed, runErr
}

// writeSpeedRecord appends one JSON line with the figure's aggregate
// engine throughput to its own file, kept apart from the telemetry
// JSONL so byte-level comparisons of the latter stay meaningful.
func writeSpeedRecord(path, figID string, speed expr.SweepSpeed) error {
	sf, err := os.Create(path)
	if err != nil {
		return err
	}
	rec := struct {
		Figure       string  `json:"figure"`
		Events       int64   `json:"events"`
		Cells        int     `json:"cells"`
		WallSeconds  float64 `json:"wall_seconds"`
		EventsPerSec float64 `json:"events_per_sec"`
	}{figID, speed.Events, speed.Cells, speed.Wall.Seconds(), speed.EventsPerSec()}
	if err := json.NewEncoder(sf).Encode(rec); err != nil {
		sf.Close()
		return err
	}
	return sf.Close()
}

// runDegradation executes the fault-degradation sweep (expr.RunDegradation):
// GFlop/s versus transient transfer failure rate for a panel of
// strategies on the 2-GPU 2D product, optionally combined with the
// dropouts (and seed) of the -faults plan. It prints the table, writes
// <out>/degradation.csv, and returns the process exit code.
func runDegradation(ctx context.Context, outDir string, workers int, plan *fault.Plan, verbose bool) int {
	opt := expr.DegradationOptions{Workers: workers, Context: ctx, Seed: 1}
	if plan != nil {
		if plan.Seed != 0 {
			opt.Seed = plan.Seed
		}
		opt.Dropouts = plan.Dropouts
		if t := plan.Transient; t != nil && t.Rate > 0 {
			// The sweep owns the rate axis; the plan contributes the
			// retry shape.
			opt.MaxRetries, opt.Backoff = t.MaxRetries, t.Backoff
		}
	}
	if verbose {
		opt.Progress = os.Stderr
	}
	rows, err := expr.RunDegradation(opt)
	if len(rows) > 0 {
		fmt.Println("== degradation: GFlop/s vs transient transfer failure rate ==")
		fmt.Print(expr.FormatDegradationTable(rows))
		csvFile, cerr := os.Create(filepath.Join(outDir, "degradation.csv"))
		if cerr == nil {
			cerr = expr.WriteDegradationCSV(csvFile, rows)
			if closeErr := csvFile.Close(); cerr == nil {
				cerr = closeErr
			}
		}
		if cerr != nil {
			fmt.Fprintln(os.Stderr, cerr)
			return 1
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return 0
}

// runAblations executes the DESIGN.md §6 studies and prints one table
// per study. It returns the process exit code.
func runAblations(outDir string) int {
	var all []metrics.Row
	for _, a := range expr.Ablations() {
		rows, err := a.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", a.ID, err)
			return 1
		}
		fmt.Printf("== %s: %s ==\n", a.ID, a.Title)
		w := 0
		for _, r := range rows {
			if len(r.Scheduler) > w {
				w = len(r.Scheduler)
			}
		}
		for _, r := range rows {
			fmt.Printf("  %-*s  %8.0f GFlop/s  %10.1f MB moved  makespan %8.1f ms\n",
				w, r.Scheduler, r.GFlops, r.TransferredMB, r.MakespanMS)
		}
		fmt.Println()
		all = append(all, rows...)
	}
	out, err := os.Create(filepath.Join(outDir, "ablations.csv"))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer out.Close()
	if err := metrics.WriteCSV(out, all); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return 0
}

// printHeadlines restates the paper's headline claims for the experiments
// that carry one, with our measured value.
func printHeadlines(out *bytes.Buffer, id string, rows []metrics.Row) {
	type claim struct {
		a, b  string
		paper string
	}
	claims := map[string]claim{
		"fig3+4": {"DARTS+LUF", "DMDAR", "paper: +8.5% on average (1 GPU)"},
		"fig6+7": {"DARTS+LUF", "DMDAR", "paper: +9.4% on average (2 GPUs)"},
		"fig9":   {"DARTS+LUF", "DMDAR", "paper: +75% on average (randomized order)"},
		"fig10":  {"DARTS+LUF-3inputs", "DMDAR", "paper: +61% (3D product)"},
		"fig11":  {"DARTS+LUF+OPTI-3inputs", "hMETIS+R no part. time", "paper: +49% (Cholesky)"},
		"fig12":  {"DARTS+LUF", "DMDAR", "paper: +40% (sparse)"},
	}
	c, ok := claims[id]
	if !ok {
		return
	}
	gain, n := metrics.SpeedupOver(rows, c.a, c.b)
	if n == 0 {
		return
	}
	fmt.Fprintf(out, "headline: %s vs %s: %+.1f%% GFlop/s on average over %d points (%s)\n",
		c.a, c.b, gain, n, c.paper)
}
