// Command paperbench regenerates the data series of every figure of the
// paper's evaluation (Figures 3 to 13). For each experiment it prints one
// aligned table per plotted metric, writes results/<figure>.csv, and
// reports the paper's headline comparisons (e.g. average DARTS+LUF gain
// over DMDAR).
//
// Usage:
//
//	paperbench                  # all figures, default sweeps
//	paperbench -fig fig9        # one figure
//	paperbench -quick           # a third of the sweep points
//	paperbench -maxn 100        # cap workload sizes
//	paperbench -out results     # output directory for CSV files
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"memsched/internal/expr"
	"memsched/internal/metrics"
)

func main() {
	var (
		fig       = flag.String("fig", "", "run only this figure (fig3...fig13); empty runs all")
		quick     = flag.Bool("quick", false, "run a reduced sweep")
		maxN      = flag.Int("maxn", 0, "skip sweep points with N above this bound")
		outDir    = flag.String("out", "results", "directory for CSV output")
		verbose   = flag.Bool("v", false, "print one line per run")
		replicas  = flag.Int("replicas", 1, "seeds averaged per cell (the paper uses 10)")
		plot      = flag.Bool("plot", false, "render each figure as an ASCII chart as well")
		ablations = flag.Bool("ablations", false, "run the ablation studies instead of the paper figures")
	)
	flag.Parse()

	if *ablations {
		runAblations(*outDir)
		return
	}
	figures := expr.AllFigures()
	if *fig != "" {
		f, err := expr.ByID(*fig)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		figures = []*expr.Figure{f}
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	for _, f := range figures {
		opt := expr.RunOptions{Quick: *quick, MaxN: *maxN, Replicas: *replicas}
		if *verbose {
			opt.Progress = os.Stderr
		}
		rows, err := f.Run(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", f.ID, err)
			os.Exit(1)
		}
		fmt.Printf("== %s: %s ==\n", f.ID, f.Title)
		fmt.Printf("   reference: %s\n\n", f.RefLines())
		for _, m := range f.Metrics {
			fmt.Println(metrics.FormatTable(rows, m))
			if *plot {
				fmt.Println(metrics.Plot(rows, m, 72, 18))
			}
		}
		printHeadlines(f.ID, rows)

		name := strings.ReplaceAll(f.ID, "+", "_") + ".csv"
		out, err := os.Create(filepath.Join(*outDir, name))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := metrics.WriteCSV(out, rows); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		out.Close()
		fmt.Println()
	}
}

// runAblations executes the DESIGN.md §6 studies and prints one table
// per study.
func runAblations(outDir string) {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var all []metrics.Row
	for _, a := range expr.Ablations() {
		rows, err := a.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", a.ID, err)
			os.Exit(1)
		}
		fmt.Printf("== %s: %s ==\n", a.ID, a.Title)
		w := 0
		for _, r := range rows {
			if len(r.Scheduler) > w {
				w = len(r.Scheduler)
			}
		}
		for _, r := range rows {
			fmt.Printf("  %-*s  %8.0f GFlop/s  %10.1f MB moved  makespan %8.1f ms\n",
				w, r.Scheduler, r.GFlops, r.TransferredMB, r.MakespanMS)
		}
		fmt.Println()
		all = append(all, rows...)
	}
	out, err := os.Create(filepath.Join(outDir, "ablations.csv"))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer out.Close()
	if err := metrics.WriteCSV(out, all); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// printHeadlines restates the paper's headline claims for the experiments
// that carry one, with our measured value.
func printHeadlines(id string, rows []metrics.Row) {
	type claim struct {
		a, b  string
		paper string
	}
	claims := map[string]claim{
		"fig3+4": {"DARTS+LUF", "DMDAR", "paper: +8.5% on average (1 GPU)"},
		"fig6+7": {"DARTS+LUF", "DMDAR", "paper: +9.4% on average (2 GPUs)"},
		"fig9":   {"DARTS+LUF", "DMDAR", "paper: +75% on average (randomized order)"},
		"fig10":  {"DARTS+LUF-3inputs", "DMDAR", "paper: +61% (3D product)"},
		"fig11":  {"DARTS+LUF+OPTI-3inputs", "hMETIS+R no part. time", "paper: +49% (Cholesky)"},
		"fig12":  {"DARTS+LUF", "DMDAR", "paper: +40% (sparse)"},
	}
	c, ok := claims[id]
	if !ok {
		return
	}
	gain, n := metrics.SpeedupOver(rows, c.a, c.b)
	if n == 0 {
		return
	}
	fmt.Printf("headline: %s vs %s: %+.1f%% GFlop/s on average over %d points (%s)\n",
		c.a, c.b, gain, n, c.paper)
}
