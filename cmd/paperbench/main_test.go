package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"memsched/internal/baseline"
	"memsched/internal/critpath"
	"memsched/internal/expr"
	"memsched/internal/sched"
)

// smallFig is a two-cell fig3 subset with a decision-reporting strategy,
// cheap enough to run several times per test.
func smallFig() *expr.Figure {
	f := expr.Fig3And4()
	f.Points = f.Points[:1]
	f.Strategies = []sched.Strategy{
		sched.DMDARStrategy(),
		sched.DARTSStrategy(sched.DARTSOptions{LUF: true}),
	}
	return f
}

func runCells(t *testing.T, telemetryOut *bytes.Buffer) []expr.CellTelemetry {
	t.Helper()
	var cells []expr.CellTelemetry
	opt := expr.RunOptions{OnCell: func(c expr.CellTelemetry) { cells = append(cells, c) }}
	if telemetryOut != nil {
		opt.TelemetryOut = telemetryOut
	}
	if _, err := smallFig().Run(opt); err != nil {
		t.Fatal(err)
	}
	return cells
}

// TestBaselineWriteCheckCycle drives the -baseline-write/-baseline-check
// pair: write, check clean (exit path: no regressions), perturb the
// stored baseline, check with tolerance 0 (regression found).
func TestBaselineWriteCheckCycle(t *testing.T) {
	dir := t.TempDir()
	cells := runCells(t, nil)

	w := &baselineOps{write: true, dir: dir, tol: baseline.DefaultTolerances()}
	var out bytes.Buffer
	if _, err := w.apply("fig3+4", cells, &out); err != nil {
		t.Fatal(err)
	}
	path := baseline.Path(dir, "fig3+4")
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}

	c := &baselineOps{check: true, dir: dir, tol: baseline.UniformTolerance(0)}
	out.Reset()
	regressed, err := c.apply("fig3+4", cells, &out)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatalf("unmodified run regressed:\n%s", out.String())
	}

	// Inject a regression: the baseline claims more throughput than the
	// run achieves.
	stored, err := baseline.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	key := "fig3+4:" + cells[1].Workload + ":DARTS+LUF"
	cellv, ok := stored.Cells[key]
	if !ok {
		t.Fatalf("key %q not in baseline (have %v)", key, stored.Keys())
	}
	cellv.GFlops *= 1.5
	stored.Cells[key] = cellv
	if err := stored.Write(path); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	regressed, err = c.apply("fig3+4", cells, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatalf("injected regression not detected:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") || !strings.Contains(out.String(), "gflops") {
		t.Fatalf("report does not name the regression:\n%s", out.String())
	}

	// The combined report accumulates for -baseline-report.
	rp := filepath.Join(dir, "report.txt")
	if err := c.writeReport(rp); err != nil {
		t.Fatal(err)
	}
	if b, _ := os.ReadFile(rp); !bytes.Contains(b, []byte("REGRESSION")) {
		t.Fatalf("report file:\n%s", b)
	}
}

// TestBaselineWriteBitIdentical pins the acceptance criterion: two
// -baseline-write runs of the same code produce identical files, and a
// rewrite over an existing file (the merge path) leaves it unchanged.
func TestBaselineWriteBitIdentical(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	for _, dir := range []string{dirA, dirB} {
		w := &baselineOps{write: true, dir: dir, tol: baseline.DefaultTolerances()}
		var out bytes.Buffer
		if _, err := w.apply("fig3+4", runCells(t, nil), &out); err != nil {
			t.Fatal(err)
		}
	}
	a, _ := os.ReadFile(baseline.Path(dirA, "fig3+4"))
	b, _ := os.ReadFile(baseline.Path(dirB, "fig3+4"))
	if len(a) == 0 || !bytes.Equal(a, b) {
		t.Fatal("independent -baseline-write runs differ")
	}
	// Merge over the existing file: still identical.
	w := &baselineOps{write: true, dir: dirA, tol: baseline.DefaultTolerances()}
	var out bytes.Buffer
	if _, err := w.apply("fig3+4", runCells(t, nil), &out); err != nil {
		t.Fatal(err)
	}
	a2, _ := os.ReadFile(baseline.Path(dirA, "fig3+4"))
	if !bytes.Equal(a, a2) {
		t.Fatal("rewrite over existing baseline changed the file")
	}
}

// TestCompareEndToEnd exercises `paperbench compare`: identical captures
// exit 0; a perturbed capture exits 1, names the worst-regressed cell
// and cites decision-log evidence from both runs.
func TestCompareEndToEnd(t *testing.T) {
	dir := t.TempDir()
	var jsonl bytes.Buffer
	runCells(t, &jsonl)
	oldPath := filepath.Join(dir, "old.jsonl")
	if err := os.WriteFile(oldPath, jsonl.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if code := runCompare(oldPath, oldPath, baseline.DefaultTolerances(), &out); code != 0 {
		t.Fatalf("self-compare exited %d:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "no regressions") {
		t.Fatalf("self-compare output:\n%s", out.String())
	}

	// Perturb the DARTS+LUF cell of a copied capture: lower throughput,
	// reload churn, and a decision digest showing heavier evictions.
	newPath := filepath.Join(dir, "new.jsonl")
	writePerturbedCapture(t, jsonl.Bytes(), newPath)

	out.Reset()
	code := runCompare(oldPath, newPath, baseline.DefaultTolerances(), &out)
	if code != 1 {
		t.Fatalf("regressed compare exited %d:\n%s", code, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "worst-regressed cell: fig3+4:") || !strings.Contains(s, "DARTS+LUF") {
		t.Fatalf("worst cell not named:\n%s", s)
	}
	for _, want := range []string{"old run", "new run", "why (joined scheduler decision logs):"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in explanation:\n%s", want, s)
		}
	}
	// The makespan attribution names the blame category that grew and the
	// data block the new run's critical path blames hardest.
	if !strings.Contains(s, "critical path gained") || !strings.Contains(s, "of reload") {
		t.Fatalf("critpath explanation does not name the grown category:\n%s", s)
	}
	if !strings.Contains(s, "top blamed data block: A[1,2]") {
		t.Fatalf("critpath explanation does not name the top blamed data block:\n%s", s)
	}
	// The blamed block (data 17) is also on the digest's eviction
	// leaderboard, so the explanation ties blame to the evictions.
	if !strings.Contains(s, "evicted it 3×") {
		t.Fatalf("critpath explanation does not join the eviction record:\n%s", s)
	}

	if code := runCompare(filepath.Join(dir, "absent.jsonl"), newPath, baseline.DefaultTolerances(), &out); code != 2 {
		t.Fatalf("missing file exited %d", code)
	}
}

// writePerturbedCapture copies a telemetry JSONL capture, regressing its
// DARTS+LUF cell (throughput down, reload churn up, digest showing the
// eviction storm behind it).
func writePerturbedCapture(t *testing.T, capture []byte, path string) {
	t.Helper()
	var lines []string
	dec := json.NewDecoder(bytes.NewReader(capture))
	for dec.More() {
		var c expr.CellTelemetry
		if err := dec.Decode(&c); err != nil {
			t.Fatal(err)
		}
		if c.Scheduler == "DARTS+LUF" {
			c.GFlops *= 0.8
			c.ReloadedMB += 38
			if c.Decisions == nil {
				c.Decisions = &sched.DecisionDigest{}
			}
			c.Decisions.Evictions += 3
			c.Decisions.PrematureEvictions += 3
			c.Decisions.TopEvicted = append([]sched.EvictionStat{{Data: 17, Count: 3, MaxFutureUses: 2}}, c.Decisions.TopEvicted...)
			if c.CritPath == nil {
				t.Fatal("telemetry capture is missing the critpath summary")
			}
			c.CritPath.ReloadMS += 12
			c.CritPath.MakespanMS += 12
			c.CritPath.TopData = append([]critpath.BlameEntry{{ID: 17, Name: "A[1,2]", MS: 12}}, c.CritPath.TopData...)
		}
		b, err := json.Marshal(c)
		if err != nil {
			t.Fatal(err)
		}
		lines = append(lines, string(b))
	}
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
}
