package main

import (
	"expvar"
	"fmt"
	"html/template"
	"net/http"
	"sort"
	"sync"
	"time"

	"memsched/internal/expr"
	"memsched/internal/metrics"
)

// figStatus is one figure's row on the live status page.
type figStatus struct {
	ID    string
	Title string
	// State is pending -> running -> done | failed.
	State string
	// CellsDone counts completed (point, strategy, replica) cells so a
	// watcher sees progress before the figure finishes.
	CellsDone int
	// Events/WallSeconds/EventsPerSec are the figure's final engine
	// throughput (zero until the figure completes).
	Events       int64
	WallSeconds  float64
	EventsPerSec float64
}

// statusBoard backs the -http live status page: the sweep-wide gauges
// plus one row per figure with its cells-completed progress and, once
// finished, its engine events/s. All methods are nil-safe so the sweep
// code can call them unconditionally.
type statusBoard struct {
	mu      sync.Mutex
	started time.Time
	gauges  *metrics.Gauges
	order   []string
	figs    map[string]*figStatus
}

// newStatusBoard builds the board, registers the HTML handler on the
// default mux (next to expvar and pprof) and publishes the per-figure
// events/s gauge as the memsched_figure_events_per_second expvar map.
func newStatusBoard(g *metrics.Gauges, figures []*expr.Figure) *statusBoard {
	b := &statusBoard{
		started: time.Now(),
		gauges:  g,
		figs:    make(map[string]*figStatus, len(figures)),
	}
	for _, f := range figures {
		b.order = append(b.order, f.ID)
		b.figs[f.ID] = &figStatus{ID: f.ID, Title: f.Title, State: "pending"}
	}
	expvar.Publish("memsched_figure_events_per_second", expvar.Func(func() any {
		b.mu.Lock()
		defer b.mu.Unlock()
		out := make(map[string]float64, len(b.figs))
		for id, fs := range b.figs {
			out[id] = fs.EventsPerSec
		}
		return out
	}))
	http.HandleFunc("GET /status", b.handle)
	http.HandleFunc("GET /{$}", b.handle)
	return b
}

func (b *statusBoard) figureStarted(id string) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if fs := b.figs[id]; fs != nil {
		fs.State = "running"
	}
}

// cellDone bumps a figure's progress counter (wired through
// RunOptions.OnCell).
func (b *statusBoard) cellDone(id string) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if fs := b.figs[id]; fs != nil {
		fs.CellsDone++
	}
}

// figureFinished records a figure's final throughput.
func (b *statusBoard) figureFinished(id string, speed expr.SweepSpeed, failed bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	fs := b.figs[id]
	if fs == nil {
		return
	}
	fs.State = "done"
	if failed {
		fs.State = "failed"
	}
	fs.CellsDone = speed.Cells
	fs.Events = speed.Events
	fs.WallSeconds = speed.Wall.Seconds()
	fs.EventsPerSec = speed.EventsPerSec()
}

// statusPage is the snapshot rendered into HTML.
type statusPage struct {
	UptimeSeconds  float64
	CellsCompleted int64
	SimsRunning    int64
	SimEvents      int64
	EventsPerSec   float64
	Figures        []figStatus
}

func (b *statusBoard) snapshot() statusPage {
	b.mu.Lock()
	defer b.mu.Unlock()
	p := statusPage{UptimeSeconds: time.Since(b.started).Seconds()}
	if b.gauges != nil {
		cells, running, events := b.gauges.Snapshot()
		p.CellsCompleted, p.SimsRunning, p.SimEvents = cells, running, events
		if p.UptimeSeconds > 0 {
			p.EventsPerSec = float64(events) / p.UptimeSeconds
		}
	}
	for _, id := range b.order {
		p.Figures = append(p.Figures, *b.figs[id])
	}
	// Keep pending/running figures in sweep order but list finished ones
	// first so the page reads as a progress log.
	sort.SliceStable(p.Figures, func(i, j int) bool {
		rank := func(s string) int {
			switch s {
			case "done", "failed":
				return 0
			case "running":
				return 1
			}
			return 2
		}
		return rank(p.Figures[i].State) < rank(p.Figures[j].State)
	})
	return p
}

var statusTmpl = template.Must(template.New("status").Parse(`<!DOCTYPE html>
<html><head><meta charset="utf-8"><meta http-equiv="refresh" content="2">
<title>paperbench status</title>
<style>
body { font: 14px/1.5 system-ui, sans-serif; margin: 2em; color: #222; }
table { border-collapse: collapse; margin-top: 1em; }
th, td { text-align: left; padding: 0.25em 1em 0.25em 0; border-bottom: 1px solid #ddd; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
.done { color: #0a7d33; } .failed { color: #b00020; } .running { color: #b26a00; } .pending { color: #888; }
</style></head><body>
<h1>paperbench</h1>
<p>up {{printf "%.0f" .UptimeSeconds}}s &middot;
{{.CellsCompleted}} cells completed &middot;
{{.SimsRunning}} sims running &middot;
{{.SimEvents}} engine events ({{printf "%.0f" .EventsPerSec}}/s overall)</p>
<table>
<tr><th>figure</th><th>title</th><th>state</th><th>cells</th><th>events</th><th>wall</th><th>events/s</th></tr>
{{range .Figures}}<tr>
<td>{{.ID}}</td><td>{{.Title}}</td><td class="{{.State}}">{{.State}}</td>
<td class="num">{{.CellsDone}}</td>
<td class="num">{{if .Events}}{{.Events}}{{end}}</td>
<td class="num">{{if .Events}}{{printf "%.2fs" .WallSeconds}}{{end}}</td>
<td class="num">{{if .Events}}{{printf "%.0f" .EventsPerSec}}{{end}}</td>
</tr>{{end}}
</table>
<p><a href="/debug/vars">expvar</a> &middot; <a href="/debug/pprof/">pprof</a></p>
</body></html>
`))

func (b *statusBoard) handle(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := statusTmpl.Execute(w, b.snapshot()); err != nil {
		fmt.Fprintf(w, "<!-- render: %v -->", err)
	}
}
