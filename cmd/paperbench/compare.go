package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"memsched/internal/baseline"
	"memsched/internal/expr"
	"memsched/internal/sched"
)

// runCompare diffs two telemetry JSONL captures (paperbench -telemetry)
// cell by cell and, for the worst-regressed cell, joins the scheduler
// decision digests embedded in both captures to explain *why* the cell
// got worse. It returns the process exit code: 0 when no cell regressed
// beyond tolerance, 1 on regressions, 2 on usage or read errors.
func runCompare(oldPath, newPath string, tol baseline.Tolerances, out io.Writer) int {
	oldF, oldDigs, err := loadCapture(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	newF, newDigs, err := loadCapture(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	fmt.Fprintf(out, "comparing %s (%d cells) -> %s (%d cells)\n",
		oldPath, len(oldF.Cells), newPath, len(newF.Cells))
	rep := baseline.Diff(oldF, newF, tol)
	fmt.Fprint(out, rep.String())

	worst := rep.WorstRegression()
	if worst == nil {
		fmt.Fprintln(out, "no regressions")
		return 0
	}
	fmt.Fprintf(out, "\nworst-regressed cell: %s (%s)\n", worst.Key, worst.Worst)
	fmt.Fprintln(out, "why (joined scheduler decision logs):")
	for _, line := range sched.JoinDigests(oldDigs[worst.Key], newDigs[worst.Key]) {
		fmt.Fprintf(out, "  %s\n", line)
	}
	return 1
}

// loadCapture parses one telemetry JSONL capture into a baseline file
// (for the metric diff) plus the per-cell decision digests (for the
// explanation). Cells keep their native figure:workload:strategy keys,
// so captures spanning several figures compare cleanly.
func loadCapture(path string) (*baseline.File, map[string]*sched.DecisionDigest, error) {
	r, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer r.Close()
	f := baseline.New("capture")
	digs := map[string]*sched.DecisionDigest{}
	dec := json.NewDecoder(r)
	for dec.More() {
		var c expr.CellTelemetry
		if err := dec.Decode(&c); err != nil {
			return nil, nil, fmt.Errorf("%s: %w", path, err)
		}
		cell := baseline.FromRow(c.Row, c.Telemetry)
		f.Record(cell)
		digs[cell.Key()] = c.Decisions
	}
	if len(f.Cells) == 0 {
		return nil, nil, fmt.Errorf("%s: no telemetry cells (expected paperbench -telemetry JSONL)", path)
	}
	return f, digs, nil
}
