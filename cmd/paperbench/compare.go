package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"memsched/internal/baseline"
	"memsched/internal/critpath"
	"memsched/internal/expr"
	"memsched/internal/sched"
	"memsched/internal/taskgraph"
)

// runCompare diffs two telemetry JSONL captures (paperbench -telemetry)
// cell by cell and, for the worst-regressed cell, explains *why* the
// cell got worse: which critical-path blame category grew (and which
// data block it blames), plus the joined scheduler decision digests
// embedded in both captures. It returns the process exit code: 0 when
// no cell regressed beyond tolerance, 1 on regressions, 2 on usage or
// read errors.
func runCompare(oldPath, newPath string, tol baseline.Tolerances, out io.Writer) int {
	oldC, err := loadCapture(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	newC, err := loadCapture(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	fmt.Fprintf(out, "comparing %s (%d cells) -> %s (%d cells)\n",
		oldPath, len(oldC.file.Cells), newPath, len(newC.file.Cells))
	rep := baseline.Diff(oldC.file, newC.file, tol)
	fmt.Fprint(out, rep.String())

	worst := rep.WorstRegression()
	if worst == nil {
		fmt.Fprintln(out, "no regressions")
		return 0
	}
	fmt.Fprintf(out, "\nworst-regressed cell: %s (%s)\n", worst.Key, worst.Worst)
	explainCritPath(out, oldC.crits[worst.Key], newC.crits[worst.Key], newC.digs[worst.Key])
	fmt.Fprintln(out, "why (joined scheduler decision logs):")
	for _, line := range sched.JoinDigests(oldC.digs[worst.Key], newC.digs[worst.Key]) {
		fmt.Fprintf(out, "  %s\n", line)
	}
	return 1
}

// explainCritPath renders the makespan-attribution side of the worst
// regression: which blame category the critical path gained the most
// of, and which data block the new run blames hardest — joined, when
// the new run's decision digest has a record for that block, with the
// eviction churn that put it there.
func explainCritPath(out io.Writer, oldS, newS *critpath.Summary, newDig *sched.DecisionDigest) {
	if oldS == nil || newS == nil {
		fmt.Fprintln(out, "critical path: not recorded in both captures (re-run with -telemetry on this build)")
		return
	}
	type catDelta struct {
		name     string
		old, new float64
	}
	cats := []catDelta{
		{"compute", oldS.ComputeMS, newS.ComputeMS},
		{"pci", oldS.PCIMS, newS.PCIMS},
		{"nvlink", oldS.PeerMS, newS.PeerMS},
		{"reload", oldS.ReloadMS, newS.ReloadMS},
		{"sched", oldS.SchedMS, newS.SchedMS},
		{"fault", oldS.FaultMS, newS.FaultMS},
	}
	worst := cats[0]
	for _, c := range cats[1:] {
		if c.new-c.old > worst.new-worst.old {
			worst = c
		}
	}
	if gain := worst.new - worst.old; gain > 0 {
		fmt.Fprintf(out, "critical path gained %.3f ms of %s (%.3f -> %.3f ms)\n",
			gain, worst.name, worst.old, worst.new)
	} else {
		fmt.Fprintf(out, "critical path blame shifted without a net gain (makespan %.3f -> %.3f ms)\n",
			oldS.MakespanMS, newS.MakespanMS)
	}
	if len(newS.TopData) > 0 {
		d := newS.TopData[0]
		fmt.Fprintf(out, "top blamed data block: %s (%.3f ms on the critical path)\n", d.Name, d.MS)
		if ev, ok := newDig.EvictionOf(taskgraph.DataID(d.ID)); ok {
			fmt.Fprintf(out, "  the new run's scheduler evicted it %d× (max %d future uses) — the reloads behind the blame\n",
				ev.Count, ev.MaxFutureUses)
		}
	}
	if len(newS.TopTasks) > 0 {
		t := newS.TopTasks[0]
		fmt.Fprintf(out, "top blamed task: %s (%.3f ms on the critical path)\n", t.Name, t.MS)
	}
}

// capture is one parsed telemetry JSONL capture: the baseline file (for
// the metric diff) plus the per-cell decision digests and critpath
// summaries (for the explanation).
type capture struct {
	file  *baseline.File
	digs  map[string]*sched.DecisionDigest
	crits map[string]*critpath.Summary
}

// loadCapture parses one telemetry JSONL capture. Cells keep their
// native figure:workload:strategy keys, so captures spanning several
// figures compare cleanly.
func loadCapture(path string) (*capture, error) {
	r, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	c := &capture{
		file:  baseline.New("capture"),
		digs:  map[string]*sched.DecisionDigest{},
		crits: map[string]*critpath.Summary{},
	}
	dec := json.NewDecoder(r)
	for dec.More() {
		var ct expr.CellTelemetry
		if err := dec.Decode(&ct); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		cell := baseline.FromRow(ct.Row, ct.Telemetry, ct.CritPath)
		c.file.Record(cell)
		c.digs[cell.Key()] = ct.Decisions
		c.crits[cell.Key()] = ct.CritPath
	}
	if len(c.file.Cells) == 0 {
		return nil, fmt.Errorf("%s: no telemetry cells (expected paperbench -telemetry JSONL)", path)
	}
	return c, nil
}
