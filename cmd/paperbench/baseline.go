package main

import (
	"bytes"
	"fmt"
	"os"
	"sync"

	"memsched/internal/baseline"
	"memsched/internal/expr"
)

// baselineOps carries the -baseline-* flags through the concurrent
// figure runs and accumulates the combined diff report for
// -baseline-report. apply is called from one goroutine per figure, so
// the shared report builder is mutex-guarded.
type baselineOps struct {
	write, check bool
	dir          string
	tol          baseline.Tolerances

	mu     sync.Mutex
	report bytes.Buffer
}

func (b *baselineOps) active() bool { return b != nil && (b.write || b.check) }

// apply records or checks the figure's cells against its BENCH file and
// renders the outcome into out (the figure's ordered output buffer).
// It returns whether the check found regressions.
func (b *baselineOps) apply(figID string, cells []expr.CellTelemetry, out *bytes.Buffer) (regressed bool, err error) {
	path := baseline.Path(b.dir, figID)
	fresh := baseline.New(figID)
	for _, c := range cells {
		fresh.Record(baseline.FromRow(c.Row, c.Telemetry, c.CritPath))
	}

	if b.write {
		// Merge into any existing file so a partial run (-quick, -maxn)
		// refreshes its cells without dropping the rest of the sweep.
		merged := fresh
		if prev, err := baseline.Load(path); err == nil {
			for k, c := range fresh.Cells {
				prev.Cells[k] = c
			}
			prev.Schema = baseline.SchemaVersion
			merged = prev
		} else if !os.IsNotExist(err) {
			return false, err
		}
		if err := merged.Write(path); err != nil {
			return false, err
		}
		fmt.Fprintf(out, "baseline: wrote %d cells -> %s\n\n", len(merged.Cells), path)
		return false, nil
	}

	// Check mode.
	stored, err := baseline.Load(path)
	if err != nil {
		if os.IsNotExist(err) {
			return false, fmt.Errorf("%s: no baseline at %s (seed it with -baseline-write)", figID, path)
		}
		return false, err
	}
	rep := baseline.Diff(stored, fresh, b.tol)
	text := fmt.Sprintf("baseline check %s vs %s:\n%s\n", figID, path, rep.String())
	out.WriteString(text)
	b.mu.Lock()
	b.report.WriteString(text)
	b.mu.Unlock()
	return rep.HasRegressions(), nil
}

// writeReport dumps the combined diff report to path (for the CI
// artifact); a check that ran no figures writes an empty file.
func (b *baselineOps) writeReport(path string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return os.WriteFile(path, b.report.Bytes(), 0o644)
}
