package main

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"memsched/internal/expr"
	"memsched/internal/metrics"
)

// TestStatusBoard drives a board through a figure lifecycle and checks
// the rendered page and the per-figure events/s it publishes.
func TestStatusBoard(t *testing.T) {
	g := new(metrics.Gauges)
	g.CellsCompleted.Add(7)
	g.SimEvents.Add(1000)
	figures := expr.AllFigures()
	if len(figures) < 2 {
		t.Fatal("expected multiple figures")
	}
	// Build the board directly (newStatusBoard registers global expvar
	// and mux state; keep the unit test self-contained).
	b := &statusBoard{
		started: time.Now().Add(-time.Second),
		gauges:  g,
		figs:    map[string]*figStatus{},
	}
	for _, f := range figures[:2] {
		b.order = append(b.order, f.ID)
		b.figs[f.ID] = &figStatus{ID: f.ID, Title: f.Title, State: "pending"}
	}
	first := figures[0].ID

	b.figureStarted(first)
	b.cellDone(first)
	b.cellDone(first)
	p := b.snapshot()
	if p.CellsCompleted != 7 || p.SimEvents != 1000 {
		t.Fatalf("gauges in snapshot = %+v", p)
	}
	var got *figStatus
	for i := range p.Figures {
		if p.Figures[i].ID == first {
			got = &p.Figures[i]
		}
	}
	if got == nil || got.State != "running" || got.CellsDone != 2 {
		t.Fatalf("running figure = %+v", got)
	}

	b.figureFinished(first, expr.SweepSpeed{Events: 5000, Cells: 10, Wall: 2 * time.Second}, false)
	p = b.snapshot()
	// Finished figures sort ahead of pending ones.
	if p.Figures[0].ID != first || p.Figures[0].State != "done" || p.Figures[0].EventsPerSec != 2500 {
		t.Fatalf("finished figure = %+v", p.Figures[0])
	}

	rec := httptest.NewRecorder()
	b.handle(rec, httptest.NewRequest("GET", "/status", nil))
	body := rec.Body.String()
	if rec.Code != 200 || !strings.Contains(rec.Header().Get("Content-Type"), "text/html") {
		t.Fatalf("status page = %d %q", rec.Code, rec.Header().Get("Content-Type"))
	}
	// Figure IDs like "fig3+4" render HTML-escaped ("+" becomes &#43;).
	for _, want := range []string{"fig3", "2500", "7 cells completed", `class="done"`, `class="pending"`} {
		if !strings.Contains(body, want) {
			t.Fatalf("status page missing %q:\n%s", want, body)
		}
	}

	// Nil boards are inert (the sweep calls them unconditionally).
	var nb *statusBoard
	nb.figureStarted("x")
	nb.cellDone("x")
	nb.figureFinished("x", expr.SweepSpeed{}, true)
}
