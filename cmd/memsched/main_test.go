package main

import (
	"strings"
	"testing"

	"memsched/internal/platform"
	"memsched/internal/sim"
)

func TestBuildWorkload(t *testing.T) {
	cases := map[string]struct {
		n     int
		tasks int
		data  int
	}{
		"matmul2d":      {5, 25, 10},
		"matmul2d-rand": {5, 25, 10},
		"matmul3d":      {3, 27, 18},
		"cholesky":      {4, 20, 10},
	}
	for name, c := range cases {
		inst, err := buildWorkload(name, c.n, 0.02, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if inst.NumTasks() != c.tasks || inst.NumData() != c.data {
			t.Errorf("%s: %d tasks, %d data (want %d, %d)",
				name, inst.NumTasks(), inst.NumData(), c.tasks, c.data)
		}
	}
	if _, err := buildWorkload("sparse2d", 30, 0.1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := buildWorkload("bogus", 5, 0, 1); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestPrintResult(t *testing.T) {
	// printResult writes to stdout; just make sure it does not panic on
	// a fully populated result.
	res := &sim.Result{
		SchedulerName: "X", InstanceName: "Y", NumGPUs: 1,
		GPU: []sim.GPUStats{{Tasks: 1}},
	}
	printResult(res, platform.V100(1))
	res.Faults = &sim.FaultStats{Dropouts: 1, TransferRetries: 2}
	printResult(res, platform.V100(1))
}

func TestWorkloadNamesMatchHelp(t *testing.T) {
	// Every workload listed in the flag help must build.
	for _, name := range []string{"matmul2d", "matmul2d-rand", "matmul3d", "cholesky", "sparse2d"} {
		if _, err := buildWorkload(name, 4, 0.5, 1); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if !strings.Contains("matmul2d, matmul2d-rand, matmul3d, cholesky, sparse2d", name) {
			t.Errorf("%s missing from help text", name)
		}
	}
}
