// Command memsched runs one scheduling strategy on one workload and
// prints the metrics of the run (or its full event trace).
//
// Usage:
//
//	memsched -workload matmul2d -n 50 -gpus 2 -sched DARTS+LUF
//	memsched -workload cholesky -n 24 -gpus 4 -sched "hMETIS+R" -cost
//	memsched -workload matmul2d -n 30 -gpus 4 -faults drop=1@5ms,transient=0.05
//	memsched -list
//
// Workloads: matmul2d, matmul2d-rand, matmul3d, cholesky, sparse2d.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"memsched/internal/fault"
	"memsched/internal/memory"
	"memsched/internal/platform"
	"memsched/internal/sched"
	"memsched/internal/sim"
	"memsched/internal/taskgraph"
	"memsched/internal/workload"
)

func main() {
	var (
		wl        = flag.String("workload", "matmul2d", "workload: matmul2d, matmul2d-rand, matmul3d, cholesky, sparse2d")
		n         = flag.Int("n", 20, "workload size parameter")
		gpus      = flag.Int("gpus", 1, "number of GPUs")
		schedName = flag.String("sched", "DARTS+LUF", "strategy name (see -list)")
		memMB     = flag.Int64("mem", 500, "GPU memory in MB")
		seed      = flag.Int64("seed", 1, "random seed")
		keep      = flag.Float64("keep", workload.DefaultSparseKeep, "fraction of tasks kept by sparse2d")
		cost      = flag.Bool("cost", false, "charge scheduler cost to the simulated clock")
		trace     = flag.Bool("trace", false, "dump the full event trace")
		timeline  = flag.Bool("timeline", false, "render a text Gantt chart of the run")
		chrome    = flag.String("chrometrace", "", "write a Chrome trace-event JSON of the run to this file")
		dump      = flag.String("dump", "", "write the generated instance as JSON to this file and exit")
		load      = flag.String("load", "", "load the instance from a JSON file instead of generating it")
		faults    = flag.String("faults", "", "fault plan, e.g. drop=1@5ms,transient=0.05 (see internal/fault)")
		check     = flag.Bool("check", true, "verify trace invariants")
		list      = flag.Bool("list", false, "list strategies and exit")
		stats     = flag.Bool("stats", false, "print the instance's sharing-structure summary and exit")
	)
	flag.Parse()

	if *list {
		for _, s := range sched.All() {
			fmt.Println(s.Label)
		}
		return
	}

	var inst *taskgraph.Instance
	var err error
	if *load != "" {
		f, ferr := os.Open(*load)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, ferr)
			os.Exit(1)
		}
		inst, err = taskgraph.ReadJSON(f)
		f.Close()
	} else {
		inst, err = buildWorkload(*wl, *n, *keep, *seed)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *stats {
		fmt.Println(inst.Name())
		fmt.Println(inst.Summarize())
		return
	}
	if *dump != "" {
		f, ferr := os.Create(*dump)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, ferr)
			os.Exit(1)
		}
		if err := inst.WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("wrote %s (%d tasks, %d data)\n", *dump, inst.NumTasks(), inst.NumData())
		return
	}
	strat, err := sched.ByName(*schedName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	plan, err := fault.ParseSpec(*faults)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := plan.Validate(*gpus); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	plat := platform.V100(*gpus)
	plat.MemoryBytes = *memMB * platform.MB
	nsPerOp := 0.0
	if *cost {
		nsPerOp = sim.DefaultNsPerOp
	}

	s, pol := strat.New()
	var ev sim.EvictionPolicy = pol
	if ev == nil {
		ev = memory.NewLRU()
	}
	res, err := sim.Run(inst, sim.Config{
		Platform:        plat,
		Scheduler:       s,
		Eviction:        ev,
		Seed:            *seed,
		NsPerOp:         nsPerOp,
		RecordTrace:     *trace || *timeline || *chrome != "",
		CheckInvariants: *check,
		Faults:          plan,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *trace {
		for _, e := range res.Trace {
			fmt.Println(e)
		}
		fmt.Println()
	}
	if *timeline {
		fmt.Println(sim.Timeline(inst, plat, res, 100))
		if a, aerr := sim.Analyze(inst, plat, res); aerr == nil {
			fmt.Println(a)
		}
	}
	if *chrome != "" {
		f, ferr := os.Create(*chrome)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, ferr)
			os.Exit(1)
		}
		if err := sim.WriteChromeTrace(f, inst, plat, res); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("wrote %s (open in chrome://tracing or ui.perfetto.dev)\n", *chrome)
	}
	printResult(res, plat)
}

func buildWorkload(name string, n int, keep float64, seed int64) (*taskgraph.Instance, error) {
	switch name {
	case "matmul2d":
		return workload.Matmul2D(n), nil
	case "matmul2d-rand":
		return workload.Matmul2DRandomized(n, seed), nil
	case "matmul3d":
		return workload.Matmul3D(n), nil
	case "cholesky":
		return workload.Cholesky(n), nil
	case "sparse2d":
		return workload.Sparse2D(n, keep, seed), nil
	}
	return nil, fmt.Errorf("unknown workload %q (matmul2d, matmul2d-rand, matmul3d, cholesky, sparse2d)", name)
}

func printResult(res *sim.Result, plat platform.Platform) {
	fmt.Printf("%s on %s, %d GPU(s), %.0f MB memory each\n",
		res.SchedulerName, res.InstanceName, res.NumGPUs, float64(plat.MemoryBytes)/platform.MB)
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintf(w, "working set\t%.1f MB\n", float64(res.WorkingSetBytes)/platform.MB)
	fmt.Fprintf(w, "makespan\t%v\n", res.Makespan)
	fmt.Fprintf(w, "throughput\t%.0f GFlop/s (peak %.0f)\n", res.GFlops, plat.PeakGFlops())
	fmt.Fprintf(w, "transferred\t%.1f MB (%d loads, %d evictions)\n",
		float64(res.BytesTransferred)/platform.MB, res.Loads, res.Evictions)
	fmt.Fprintf(w, "sched cost\tstatic %v, dynamic %v (%d ops)\n", res.StaticCost, res.DynamicCost, res.ChargedOps)
	if f := res.Faults; f != nil {
		fmt.Fprintf(w, "faults\t%d dropouts (%d tasks killed, %d requeued, %.1f MB lost)\n",
			f.Dropouts, f.KilledTasks, f.RequeuedTasks, float64(f.LostBytes)/platform.MB)
		fmt.Fprintf(w, "\t%d transfer retries on %d transfers, backoff %v\n",
			f.TransferRetries, f.RetriedTransfers, f.BackoffTime)
		fmt.Fprintf(w, "\t%d pressure evictions, recovery %v\n",
			f.PressureEvictions, f.RecoveryTime)
	}
	for k, g := range res.GPU {
		fmt.Fprintf(w, "gpu %d\t%d tasks, %d loads, %d evictions, busy %v\n",
			k, g.Tasks, g.Loads, g.Evictions, g.BusyTime)
	}
	w.Flush()
}
