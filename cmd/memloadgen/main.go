// Command memloadgen drives a memrouter (or a bare memschedd — the wire
// contract is the same) with a reproducible job mix and reports
// client-side latency: p50/p99 sojourn as the caller experiences it,
// shed rate, failover re-dispatch count, hedge wins, and cache hit
// rate. Closed-loop by default (-concurrency workers, each submit →
// wait → next); -rate switches to open loop, where arrivals keep coming
// regardless of completions — the knob that probes shedding.
//
// Usage:
//
//	memloadgen -target http://127.0.0.1:8090 -jobs 100 -concurrency 8
//	memloadgen -target http://127.0.0.1:8090 -rate 50 -duration 10s
//
// The one-line human summary goes to stderr; the full JSON report goes
// to stdout (the chaos CI smoke parses .lost and .done from it). Exits
// 0 when every accepted job reached a terminal state, 1 when jobs were
// lost or the target was unreachable, 2 on bad flags.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"memsched/internal/buildinfo"
	"memsched/internal/fleet"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		target      = flag.String("target", "", "base URL of the router or replica to drive (required)")
		jobs        = flag.Int("jobs", 50, "number of submissions")
		concurrency = flag.Int("concurrency", 4, "closed-loop worker count")
		rate        = flag.Float64("rate", 0, "open-loop arrivals per second (0 = closed loop)")
		duration    = flag.Duration("duration", 0, "open-loop wall bound (0 = run all -jobs)")
		repeatEvery = flag.Int("repeat-every", 4, "every k-th submission repeats an earlier spec, driving cache hits (0 disables)")
		seed        = flag.Int64("seed", 1, "spec-mix seed")
		maxN        = flag.Int("max-n", 6, "generated workload size cap")
		jobWait     = flag.Duration("job-wait", 2*time.Minute, "terminal-status wait bound per accepted job")
		retryWindow = flag.Duration("retry-window", 2*time.Second, "keep retrying through transport errors this long before counting a job lost (covers a router restart)")
		version     = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()

	if *version {
		v, gv := buildinfo.Resolve()
		fmt.Printf("memloadgen %s (%s)\n", v, gv)
		return 0
	}
	if *target == "" {
		fmt.Fprintln(os.Stderr, "memloadgen: -target is required")
		return 2
	}

	lg := fleet.NewLoadgen(fleet.LoadgenConfig{
		Target:      strings.TrimRight(*target, "/"),
		Jobs:        *jobs,
		Concurrency: *concurrency,
		RatePerSec:  *rate,
		Duration:    *duration,
		RepeatEvery: *repeatEvery,
		Seed:        *seed,
		MaxN:        *maxN,
		JobWait:     *jobWait,
		RetryWindow: *retryWindow,
	})

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	rep := lg.Run(ctx)

	fmt.Fprintln(os.Stderr, rep.String())
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "memloadgen: encode report: %v\n", err)
		return 1
	}
	if rep.Lost > 0 {
		fmt.Fprintf(os.Stderr, "memloadgen: %d accepted jobs never reached a terminal state\n", rep.Lost)
		return 1
	}
	if rep.Accepted == 0 && rep.Submitted > 0 && rep.Shed == 0 {
		fmt.Fprintln(os.Stderr, "memloadgen: target accepted nothing (unreachable?)")
		return 1
	}
	return 0
}
