package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"memsched/internal/fleet"
)

// TestLoadgenBinaryAgainstReplica runs the built memloadgen against a
// single bare memschedd (same wire contract as the router): exit 0,
// stdout is the JSON report, zero lost jobs, and no router metrics
// section (a replica does not speak the router schema).
func TestLoadgenBinaryAgainstReplica(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH")
	}
	dir := t.TempDir()
	msd := filepath.Join(dir, "memschedd")
	mlg := filepath.Join(dir, "memloadgen")
	if out, err := exec.Command(goBin, "build", "-o", msd, "memsched/cmd/memschedd").CombinedOutput(); err != nil {
		t.Fatalf("build memschedd: %v\n%s", err, out)
	}
	if out, err := exec.Command(goBin, "build", "-o", mlg, ".").CombinedOutput(); err != nil {
		t.Fatalf("build memloadgen: %v\n%s", err, out)
	}

	rep := exec.Command(msd, "-addr", "127.0.0.1:0", "-workers", "2", "-log-level", "warn")
	stdout, err := rep.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rep.Process.Kill(); rep.Wait() })
	sc := bufio.NewScanner(stdout)
	var base string
	for sc.Scan() {
		if _, rest, ok := strings.Cut(sc.Text(), "listening on "); ok {
			base = strings.TrimSpace(rest)
			break
		}
	}
	if base == "" {
		t.Fatal("replica printed no listening line")
	}
	go func() {
		for sc.Scan() {
		}
	}()

	cmd := exec.Command(mlg, "-target", base, "-jobs", "8", "-concurrency", "2", "-repeat-every", "0", "-seed", "3")
	var out, errBuf bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errBuf
	if err := cmd.Run(); err != nil {
		t.Fatalf("memloadgen exit: %v\nstdout: %s\nstderr: %s", err, out.String(), errBuf.String())
	}

	var report fleet.LoadgenReport
	if err := json.Unmarshal(out.Bytes(), &report); err != nil {
		t.Fatalf("stdout is not a JSON report: %v\n%s", err, out.String())
	}
	if report.Submitted != 8 || report.Done != 8 || report.Lost != 0 {
		t.Fatalf("report: submitted %d done %d lost %d, want 8/8/0\n%s",
			report.Submitted, report.Done, report.Lost, out.String())
	}
	if report.RouterMetrics != nil {
		t.Fatal("a bare replica must not be mistaken for a router")
	}
	if !strings.Contains(errBuf.String(), "memloadgen: closed") {
		t.Fatalf("stderr missing the one-line summary: %q", errBuf.String())
	}
}
