package main

import (
	"strings"
	"testing"

	"memsched/internal/serve"
)

func checkString(t *testing.T, text string) []string {
	t.Helper()
	problems, err := Check(strings.NewReader(text))
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	return problems
}

func TestCheckAcceptsWellFormed(t *testing.T) {
	text := `# HELP demo_jobs_total Jobs handled.
# TYPE demo_jobs_total counter
demo_jobs_total 41
# TYPE demo_queue_depth gauge
demo_queue_depth 3
# HELP demo_latency_seconds Latency.
# TYPE demo_latency_seconds histogram
demo_latency_seconds_bucket{le="0.1"} 2
demo_latency_seconds_bucket{le="1"} 5
demo_latency_seconds_bucket{le="+Inf"} 6
demo_latency_seconds_sum 3.5
demo_latency_seconds_count 6
# TYPE demo_by_key histogram
demo_by_key_bucket{workload="m",le="0.5"} 1
demo_by_key_bucket{workload="m",le="+Inf"} 1
demo_by_key_sum{workload="m"} 0.2
demo_by_key_count{workload="m"} 1
`
	if problems := checkString(t, text); len(problems) != 0 {
		t.Fatalf("well-formed exposition rejected: %v", problems)
	}
}

func TestCheckCatchesProblems(t *testing.T) {
	cases := []struct {
		name, text, want string
	}{
		{"sample before type", "x_total 1\n", "before any TYPE"},
		{"double type", "# TYPE x counter\n# TYPE x counter\nx 1\n", "second TYPE"},
		{"help after samples", "# TYPE x counter\nx 1\n# HELP x late\n", "after its samples"},
		{"negative counter", "# TYPE x counter\nx -4\n", "negative or NaN"},
		{"duplicate sample", "# TYPE x gauge\nx 1\nx 2\n", "duplicate sample"},
		{"bad name", "# TYPE x gauge\n2x 1\n", "invalid metric name"},
		{"bad label", "# TYPE x gauge\nx{9l=\"v\"} 1\n", "invalid label name"},
		{"unterminated label", "# TYPE x gauge\nx{l=\"v} 1\n", "unterminated"},
		{"no value", "# TYPE x gauge\nx\n", "no value"},
		{"le not ascending", "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"0.5\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n", "not ascending"},
		{"not cumulative", "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n", "not cumulative"},
		{"missing inf", "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n", "+Inf"},
		{"missing sum", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n", "missing _sum"},
		{"missing count", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\n", "missing _count"},
		{"count mismatch", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 2\n", "_count 2 != +Inf bucket 3"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			problems := checkString(t, c.text)
			for _, p := range problems {
				if strings.Contains(p, c.want) {
					return
				}
			}
			t.Fatalf("want a problem containing %q, got %v", c.want, problems)
		})
	}
}

// TestCheckAcceptsServeExposition closes the loop: the live exporter's
// output must pass the independent checker, including after traffic
// that populates histograms, labeled series and breaker gauges.
func TestCheckAcceptsServeExposition(t *testing.T) {
	s := serve.New(serve.Config{Workers: 2})
	defer s.Drain(0)
	for i := 0; i < 3; i++ {
		if _, err := s.Submit(serve.JobRequest{Workload: "matmul2d", N: 2}); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	// Invalid submissions populate the rejected counter too.
	s.Submit(serve.JobRequest{Workload: "nope", N: 2})
	var sb strings.Builder
	if err := s.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if problems, err := Check(strings.NewReader(sb.String())); err != nil || len(problems) != 0 {
		t.Fatalf("serve exposition fails promcheck: %v %v\n%s", problems, err, sb.String())
	}
	// Sanity: the exposition actually carried histogram content.
	if !strings.Contains(sb.String(), "memschedd_sojourn_seconds_bucket") {
		t.Fatalf("exposition suspiciously empty:\n%s", sb.String())
	}
}
