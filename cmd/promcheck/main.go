// Command promcheck validates a Prometheus text exposition (format
// 0.0.4) read from a file or stdin, independently of the writer that
// produced it — it parses from scratch so a bug in the exporter cannot
// hide behind shared code.
//
// Usage:
//
//	promcheck metrics.txt
//	curl -s localhost:8080/metrics | promcheck
//
// Checks: line and name syntax, HELP/TYPE declared at most once and
// before their family's samples, no duplicate sample (name + label
// set), and histogram consistency per label set — le buckets present,
// ascending and cumulative, an +Inf bucket equal to _count, and _sum /
// _count present. Exit status 0 when clean, 1 with one line per problem
// otherwise.
package main

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	in := io.Reader(os.Stdin)
	name := "<stdin>"
	if len(os.Args) > 1 {
		f, err := os.Open(os.Args[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer f.Close()
		in, name = f, os.Args[1]
	}
	problems, err := Check(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "promcheck: %s: %v\n", name, err)
		os.Exit(2)
	}
	for _, p := range problems {
		fmt.Fprintf(os.Stderr, "promcheck: %s: %s\n", name, p)
	}
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "promcheck: %s: %d problem(s)\n", name, len(problems))
		os.Exit(1)
	}
	fmt.Printf("promcheck: %s: OK\n", name)
}

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// sample is one parsed exposition line.
type sample struct {
	name   string
	labels map[string]string
	value  float64
	line   int
}

// family aggregates everything seen for one metric family name.
type family struct {
	typ      string
	helpLine int
	typeLine int
	samples  []sample
}

// Check parses and validates one exposition. The returned slice holds
// human-readable problems; the error covers I/O failures only.
func Check(r io.Reader) ([]string, error) {
	var problems []string
	bad := func(line int, format string, args ...any) {
		problems = append(problems, fmt.Sprintf("line %d: %s", line, fmt.Sprintf(format, args...)))
	}

	families := map[string]*family{}
	order := []string{}
	fam := func(name string) *family {
		// Histogram/summary series attach to their base family.
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, suf)
			if trimmed != name {
				if f, ok := families[trimmed]; ok && (f.typ == "histogram" || f.typ == "summary") {
					base = trimmed
				}
				break
			}
		}
		f, ok := families[base]
		if !ok {
			f = &family{}
			families[base] = f
			order = append(order, base)
		}
		return f
	}
	seen := map[string]int{} // name+labels -> first line

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, ok := parseComment(line)
			if !ok {
				continue // free-form comment: legal, ignored
			}
			if !metricNameRe.MatchString(name) {
				bad(lineNo, "invalid metric name %q in %s", name, kind)
				continue
			}
			f := fam(name)
			switch kind {
			case "HELP":
				if f.helpLine != 0 {
					bad(lineNo, "second HELP for %s (first at line %d)", name, f.helpLine)
				}
				f.helpLine = lineNo
				if len(f.samples) > 0 {
					bad(lineNo, "HELP for %s after its samples", name)
				}
			case "TYPE":
				if f.typeLine != 0 {
					bad(lineNo, "second TYPE for %s (first at line %d)", name, f.typeLine)
				}
				f.typeLine = lineNo
				switch rest {
				case "counter", "gauge", "histogram", "summary", "untyped":
					f.typ = rest
				default:
					bad(lineNo, "unknown TYPE %q for %s", rest, name)
				}
				if len(f.samples) > 0 {
					bad(lineNo, "TYPE for %s after its samples", name)
				}
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			bad(lineNo, "%v", err)
			continue
		}
		s.line = lineNo
		key := s.name + "{" + flattenLabels(s.labels) + "}"
		if first, dup := seen[key]; dup {
			bad(lineNo, "duplicate sample %s (first at line %d)", key, first)
		} else {
			seen[key] = lineNo
		}
		f := fam(s.name)
		if f.typeLine == 0 {
			bad(lineNo, "sample %s before any TYPE declaration", s.name)
		}
		if (f.typ == "counter" || f.typ == "histogram") && !strings.HasSuffix(s.name, "_sum") &&
			(math.IsNaN(s.value) || s.value < 0) {
			bad(lineNo, "%s value %v negative or NaN for a %s", s.name, s.value, f.typ)
		}
		f.samples = append(f.samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	for _, name := range order {
		f := families[name]
		if f.typ == "histogram" {
			problems = append(problems, checkHistogram(name, f)...)
		}
	}
	return problems, nil
}

// parseComment splits "# HELP name text" / "# TYPE name type" lines.
func parseComment(line string) (kind, name, rest string, ok bool) {
	fields := strings.SplitN(strings.TrimPrefix(line, "#"), " ", 4)
	// After TrimPrefix the line starts with a space: fields[0] is "".
	var parts []string
	for _, p := range fields {
		if p != "" {
			parts = append(parts, p)
		}
	}
	if len(parts) < 2 || (parts[0] != "HELP" && parts[0] != "TYPE") {
		return "", "", "", false
	}
	kind, name = parts[0], parts[1]
	if len(parts) > 2 {
		rest = strings.TrimSpace(strings.Join(parts[2:], " "))
	}
	return kind, name, rest, true
}

// parseSample parses `name{l="v",...} value` (timestamps, legal in the
// format, are accepted and ignored).
func parseSample(line string) (sample, error) {
	s := sample{labels: map[string]string{}}
	rest := line
	brace := strings.IndexByte(rest, '{')
	if brace >= 0 {
		s.name = rest[:brace]
		end := strings.LastIndexByte(rest, '}')
		if end < brace {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		if err := parseLabels(rest[brace+1:end], s.labels); err != nil {
			return s, err
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		sp := strings.IndexAny(rest, " \t")
		if sp < 0 {
			return s, fmt.Errorf("no value in %q", line)
		}
		s.name = rest[:sp]
		rest = strings.TrimSpace(rest[sp:])
	}
	if !metricNameRe.MatchString(s.name) {
		return s, fmt.Errorf("invalid metric name %q", s.name)
	}
	parts := strings.Fields(rest)
	if len(parts) < 1 || len(parts) > 2 {
		return s, fmt.Errorf("want `value [timestamp]` after %s, got %q", s.name, rest)
	}
	v, err := parseValue(parts[0])
	if err != nil {
		return s, fmt.Errorf("bad value %q for %s: %v", parts[0], s.name, err)
	}
	s.value = v
	return s, nil
}

func parseValue(v string) (float64, error) {
	switch v {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(v, 64)
}

// parseLabels parses `k="v",k2="v2"` honoring escaped quotes.
func parseLabels(s string, into map[string]string) error {
	for s != "" {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return fmt.Errorf("label without '=' in %q", s)
		}
		name := strings.TrimSpace(s[:eq])
		if !labelNameRe.MatchString(name) {
			return fmt.Errorf("invalid label name %q", name)
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return fmt.Errorf("unquoted value for label %q", name)
		}
		s = s[1:]
		var val strings.Builder
		for {
			if len(s) == 0 {
				return fmt.Errorf("unterminated value for label %q", name)
			}
			c := s[0]
			s = s[1:]
			if c == '\\' {
				if len(s) == 0 {
					return fmt.Errorf("dangling escape in label %q", name)
				}
				switch s[0] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(s[0])
				}
				s = s[1:]
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
		}
		if _, dup := into[name]; dup {
			return fmt.Errorf("duplicate label %q", name)
		}
		into[name] = val.String()
		s = strings.TrimSpace(s)
		if strings.HasPrefix(s, ",") {
			s = strings.TrimSpace(s[1:])
		} else if s != "" {
			return fmt.Errorf("junk after label %q: %q", name, s)
		}
	}
	return nil
}

// checkHistogram validates one histogram family: per label set (les
// aside), ascending le bounds with cumulative counts, an +Inf bucket,
// and _sum/_count agreeing with it.
func checkHistogram(name string, f *family) []string {
	var problems []string
	bad := func(line int, format string, args ...any) {
		problems = append(problems, fmt.Sprintf("line %d: %s", line, fmt.Sprintf(format, args...)))
	}
	type series struct {
		buckets  []sample // le order as emitted
		sum      *sample
		count    *sample
		lastLine int
	}
	groups := map[string]*series{}
	get := func(labels map[string]string) *series {
		key := flattenLabelsExcept(labels, "le")
		g, ok := groups[key]
		if !ok {
			g = &series{}
			groups[key] = g
		}
		return g
	}
	for i := range f.samples {
		s := f.samples[i]
		g := get(s.labels)
		g.lastLine = s.line
		switch {
		case strings.HasSuffix(s.name, "_bucket"):
			if _, ok := s.labels["le"]; !ok {
				bad(s.line, "%s without le label", s.name)
				continue
			}
			g.buckets = append(g.buckets, s)
		case strings.HasSuffix(s.name, "_sum"):
			g.sum = &f.samples[i]
		case strings.HasSuffix(s.name, "_count"):
			g.count = &f.samples[i]
		default:
			bad(s.line, "histogram %s has plain sample %s (want _bucket/_sum/_count)", name, s.name)
		}
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		g := groups[k]
		where := name
		if k != "" {
			where = name + "{" + k + "}"
		}
		if len(g.buckets) == 0 {
			bad(g.lastLine, "histogram %s has no buckets", where)
			continue
		}
		prevLe := math.Inf(-1)
		prevCount := -1.0
		sawInf := false
		var infCount float64
		for _, b := range g.buckets {
			le, err := parseValue(b.labels["le"])
			if err != nil {
				bad(b.line, "histogram %s has bad le %q", where, b.labels["le"])
				continue
			}
			if le <= prevLe {
				bad(b.line, "histogram %s le %v not ascending (previous %v)", where, le, prevLe)
			}
			if b.value < prevCount {
				bad(b.line, "histogram %s bucket counts not cumulative: %v after %v", where, b.value, prevCount)
			}
			prevLe, prevCount = le, b.value
			if math.IsInf(le, 1) {
				sawInf, infCount = true, b.value
			}
		}
		if !sawInf {
			bad(g.lastLine, "histogram %s missing le=\"+Inf\" bucket", where)
		}
		if g.count == nil {
			bad(g.lastLine, "histogram %s missing _count", where)
		} else if sawInf && g.count.value != infCount {
			bad(g.count.line, "histogram %s _count %v != +Inf bucket %v", where, g.count.value, infCount)
		}
		if g.sum == nil {
			bad(g.lastLine, "histogram %s missing _sum", where)
		}
	}
	return problems
}

func flattenLabels(labels map[string]string) string {
	return flattenLabelsExcept(labels, "")
}

func flattenLabelsExcept(labels map[string]string, skip string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != skip {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + strconv.Quote(labels[k])
	}
	return strings.Join(parts, ",")
}
