package memsched

import (
	"memsched/internal/core"
	"memsched/internal/sched"
)

// Schedule is an explicit task order per GPU (the paper's sigma), used by
// the offline model of §III and by the Replay strategy.
type Schedule = core.Schedule

// ScheduleEval holds the offline objectives of a schedule: the number of
// load operations (Objective 2) under optimal eviction and the maximum
// tasks per GPU (Objective 1).
type ScheduleEval = core.Eval

// EvaluateSchedule computes the offline objectives of a schedule with
// memoryBytes per GPU, deriving the optimal eviction sets with Belady's
// rule as the paper does (§III).
func EvaluateSchedule(inst *Instance, s *Schedule, memoryBytes int64) (*ScheduleEval, error) {
	return core.Evaluate(inst, s, memoryBytes, core.Belady)
}

// OptimalSchedule exhaustively solves the Bi-Obj-Multi-GPU-Task-Scheduling
// problem (Definition 1) for tiny instances (at most 9 tasks): it returns
// a schedule minimizing the total loads subject to at most maxTasksPerGPU
// tasks per GPU. The problem is NP-complete (Theorem 1); this exists to
// anchor heuristics in tests and experiments.
func OptimalSchedule(inst *Instance, gpus int, memoryBytes int64, maxTasksPerGPU int) (*Schedule, int, error) {
	res, err := core.BruteForce(inst, gpus, memoryBytes, maxTasksPerGPU)
	if err != nil {
		return nil, 0, err
	}
	return res.Schedule, res.Loads, nil
}

// Replay returns a strategy executing the given schedule verbatim: each
// GPU processes exactly its queue, in order, with the runtime handling
// prefetch and eviction. It bridges offline schedules (including those of
// external tools) into the simulator.
func Replay(s *Schedule) Strategy {
	return Strategy{Label: "fixed", New: func() (Scheduler, EvictionPolicy) {
		return sched.NewFixed(s)(), nil
	}}
}
