package memsched

import (
	"fmt"
	"io"

	"memsched/internal/expr"
	"memsched/internal/metrics"
)

// FigureRow is one measurement of a reproduced paper figure: a (working
// set, strategy) cell with its throughput and traffic.
type FigureRow = metrics.Row

// FigureIDs lists the reproducible experiments in paper order. "fig3+4"
// and "fig6+7" each regenerate two figures from the same runs.
func FigureIDs() []string {
	var ids []string
	for _, f := range expr.AllFigures() {
		ids = append(ids, f.ID)
	}
	return ids
}

// ReproduceOptions trims a figure reproduction.
type ReproduceOptions struct {
	// Quick keeps every third sweep point plus the last.
	Quick bool
	// MaxN skips sweep points above this size (0 = no bound).
	MaxN int
	// Replicas averages each cell over this many seeds (0 or 1 = one).
	Replicas int
	// Workers bounds how many (point, strategy, replica) cells run
	// concurrently; 0 uses all available cores. Results are identical
	// for any worker count.
	Workers int
	// Progress, when non-nil, receives one line per completed
	// (point, strategy) row; with Workers > 1 lines arrive in
	// completion order.
	Progress io.Writer
	// Checkpoint, when non-empty, is the path of a crash-safe sweep
	// journal: completed rows are appended (fsync'd per row) as the
	// sweep runs, and a rerun with the same options skips them and
	// reproduces the uninterrupted result exactly. Rerunning with
	// different Quick/MaxN/Replicas against the same journal is
	// rejected.
	Checkpoint string
}

// ReproduceFigure reruns the experiment behind one of the paper's figures
// ("fig3" ... "fig13", see FigureIDs) and returns its data rows. Format
// them with FormatFigureTable or consume them directly.
func ReproduceFigure(id string, opt ReproduceOptions) ([]FigureRow, error) {
	f, err := expr.ByID(id)
	if err != nil {
		return nil, err
	}
	ro := expr.RunOptions{
		Quick:    opt.Quick,
		MaxN:     opt.MaxN,
		Replicas: opt.Replicas,
		Workers:  opt.Workers,
		Progress: opt.Progress,
	}
	if opt.Checkpoint != "" {
		cfg := fmt.Sprintf("v1 quick=%v maxn=%d replicas=%d faults=none",
			opt.Quick, opt.MaxN, opt.Replicas)
		ckpt, err := expr.OpenCheckpoint(opt.Checkpoint, cfg)
		if err != nil {
			return nil, err
		}
		defer ckpt.Close()
		ro.Checkpoint = ckpt
	}
	return f.Run(ro)
}

// FormatFigureTable renders figure rows as an aligned text table for the
// given metric ("gflops" or "transfers").
func FormatFigureTable(rows []FigureRow, metric string) string {
	return metrics.FormatTable(rows, metric)
}

// PlotFigure renders figure rows as an ASCII chart (working set on the x
// axis, the metric on the y axis, one letter per strategy).
func PlotFigure(rows []FigureRow, metric string, width, height int) string {
	return metrics.Plot(rows, metric, width, height)
}
