package memsched_test

import (
	"testing"

	"memsched"
	"memsched/schedtest"
)

// TestConformanceBuiltins runs the public conformance suite against every
// built-in strategy — the same suite custom-scheduler authors run against
// theirs.
func TestConformanceBuiltins(t *testing.T) {
	for _, strat := range []memsched.Strategy{
		memsched.Eager(),
		memsched.EagerBelady(),
		memsched.DMDAR(),
		memsched.HMetisR(false),
		memsched.MHFP(false),
		memsched.DARTS(),
		memsched.DARTSLUF(),
		memsched.DARTSWith(memsched.DARTSOptions{LUF: true, Opti: true, ThreeInputs: true}),
	} {
		strat := strat
		t.Run(strat.Label, func(t *testing.T) {
			schedtest.Conformance(t, strat)
		})
	}
}
