package schedtest_test

import (
	"testing"

	"memsched"
	"memsched/schedtest"
)

// roundRobin is the minimal custom scheduler of the package docs: a
// shared queue served in submission order, like EAGER.
type roundRobin struct {
	next int
	m    int
}

func (s *roundRobin) Name() string { return "round-robin" }
func (s *roundRobin) Init(inst *memsched.Instance, view memsched.RuntimeView) {
	s.m = inst.NumTasks()
}
func (s *roundRobin) PopTask(gpu int) (memsched.TaskID, bool) {
	if s.next >= s.m {
		return -1, false
	}
	t := memsched.TaskID(s.next)
	s.next++
	return t, true
}
func (s *roundRobin) TaskDone(gpu int, t memsched.TaskID)    {}
func (s *roundRobin) DataLoaded(gpu int, d memsched.DataID)  {}
func (s *roundRobin) DataEvicted(gpu int, d memsched.DataID) {}

// TestConformanceCustomScheduler is the exact usage the package comment
// advertises: a user-written scheduler passed through the suite.
func TestConformanceCustomScheduler(t *testing.T) {
	strat := memsched.Custom("round-robin", func() (memsched.Scheduler, memsched.EvictionPolicy) {
		return &roundRobin{}, nil
	})
	schedtest.Conformance(t, strat)
}
