// Package schedtest is a conformance suite for custom scheduling
// strategies and eviction policies built against the memsched extension
// interfaces. It drives a strategy through the same checks the built-in
// strategies pass: completing every workload shape on several GPU counts,
// producing valid traces (memory bound respected, inputs resident at task
// start, each task exactly once), determinism per seed, surviving memory
// pressure, tolerating tiny prefetch windows, and behaving under the
// dependency gate.
//
// Usage, in your own test file:
//
//	func TestMyScheduler(t *testing.T) {
//	    strat := memsched.Custom("mine", func() (memsched.Scheduler, memsched.EvictionPolicy) {
//	        return &mySched{}, nil
//	    })
//	    schedtest.Conformance(t, strat)
//	}
package schedtest

import (
	"testing"

	"memsched"
)

// Conformance runs the full conformance suite against strat as named
// subtests of t. The strategy's builder is invoked once per simulation,
// so strategies must be single-use (as documented on memsched.Strategy).
func Conformance(t *testing.T, strat memsched.Strategy) {
	t.Helper()
	t.Run("workloads", func(t *testing.T) { checkWorkloads(t, strat) })
	t.Run("memory-pressure", func(t *testing.T) { checkMemoryPressure(t, strat) })
	t.Run("determinism", func(t *testing.T) { checkDeterminism(t, strat) })
	t.Run("tiny-window", func(t *testing.T) { checkTinyWindow(t, strat) })
	t.Run("load-balance", func(t *testing.T) { checkLoadBalance(t, strat) })
	t.Run("dependencies", func(t *testing.T) { checkDependencies(t, strat) })
}

func runChecked(t *testing.T, strat memsched.Strategy, inst *memsched.Instance, plat memsched.Platform, opt memsched.Options) *memsched.Result {
	t.Helper()
	opt.CheckInvariants = true
	res, err := memsched.Run(inst, strat, plat, opt)
	if err != nil {
		t.Fatalf("%s on %s: %v", strat.Label, inst.Name(), err)
	}
	return res
}

func checkWorkloads(t *testing.T, strat memsched.Strategy) {
	insts := []*memsched.Instance{
		memsched.Matmul2D(8),
		memsched.Matmul2DRandomized(8, 5),
		memsched.Matmul3D(4),
		memsched.Cholesky(6),
		memsched.Sparse2D(20, 0.1, 5),
	}
	for _, inst := range insts {
		for _, gpus := range []int{1, 2, 4} {
			res := runChecked(t, strat, inst, memsched.V100(gpus), memsched.Options{Seed: 1})
			if res.GFlops <= 0 {
				t.Fatalf("%s on %s (%d GPUs): no throughput", strat.Label, inst.Name(), gpus)
			}
		}
	}
}

func checkMemoryPressure(t *testing.T, strat memsched.Strategy) {
	inst := memsched.Matmul2D(40) // B alone exceeds one 500 MB memory
	res := runChecked(t, strat, inst, memsched.V100(1), memsched.Options{Seed: 1})
	if res.Evictions == 0 {
		t.Fatalf("%s: no evictions under 2.4x memory oversubscription", strat.Label)
	}
}

func checkDeterminism(t *testing.T, strat memsched.Strategy) {
	inst := memsched.Matmul2D(15)
	a := runChecked(t, strat, inst, memsched.V100(2), memsched.Options{Seed: 7})
	b := runChecked(t, strat, inst, memsched.V100(2), memsched.Options{Seed: 7})
	if a.Makespan != b.Makespan || a.Loads != b.Loads || a.Evictions != b.Evictions {
		t.Fatalf("%s: two runs with seed 7 differ (makespan %v vs %v, loads %d vs %d)",
			strat.Label, a.Makespan, b.Makespan, a.Loads, b.Loads)
	}
}

func checkTinyWindow(t *testing.T, strat memsched.Strategy) {
	inst := memsched.Matmul2D(10)
	runChecked(t, strat, inst, memsched.V100(2), memsched.Options{Seed: 1, WindowSize: 1})
}

func checkLoadBalance(t *testing.T, strat memsched.Strategy) {
	inst := memsched.Matmul2D(16)
	res := runChecked(t, strat, inst, memsched.V100(4), memsched.Options{Seed: 1})
	fair := inst.NumTasks() / 4
	for k, g := range res.GPU {
		if g.Tasks > 2*fair {
			t.Fatalf("%s: gpu %d ran %d tasks (fair share %d)", strat.Label, k, g.Tasks, fair)
		}
	}
}

func checkDependencies(t *testing.T, strat memsched.Strategy) {
	inst, deps := memsched.CholeskyDAG(6)
	gated := memsched.WithDependencies(deps, strat)
	res := runChecked(t, gated, inst, memsched.V100(2), memsched.Options{Seed: 1})
	if res.GFlops <= 0 {
		t.Fatalf("%s: gated run produced no throughput", strat.Label)
	}
}
