// custom-scheduler shows how to plug a user-defined strategy into the
// runtime through the public extension interfaces: a locality-aware
// variant of EAGER that serves tasks from a shared queue but skips ahead
// (within a small window) to tasks whose inputs are already resident on
// the requesting GPU.
//
// Run with:
//
//	go run ./examples/custom-scheduler
package main

import (
	"fmt"
	"log"

	"memsched"
)

// greedyLocal is a minimal custom scheduler. It must be single-use: Run
// builds a fresh one per simulation through the Strategy's New function.
type greedyLocal struct {
	window int
	queue  []memsched.TaskID
	view   memsched.RuntimeView
}

// Name identifies the strategy in results.
func (s *greedyLocal) Name() string { return "greedy-local" }

// Init captures the runtime view and fills the shared queue in
// submission order.
func (s *greedyLocal) Init(inst *memsched.Instance, view memsched.RuntimeView) {
	s.view = view
	s.queue = make([]memsched.TaskID, inst.NumTasks())
	for i := range s.queue {
		s.queue[i] = memsched.TaskID(i)
	}
}

// PopTask scans the first window queued tasks and serves the one with the
// fewest missing inputs on this GPU.
func (s *greedyLocal) PopTask(gpu int) (memsched.TaskID, bool) {
	if len(s.queue) == 0 {
		return -1, false
	}
	limit := min(s.window, len(s.queue))
	best, bestMissing := 0, int(^uint(0)>>1)
	for i := 0; i < limit; i++ {
		if m := s.view.MissingInputs(gpu, s.queue[i]); m < bestMissing {
			best, bestMissing = i, m
			if m == 0 {
				break
			}
		}
	}
	t := s.queue[best]
	s.queue = append(s.queue[:best], s.queue[best+1:]...)
	return t, true
}

// TaskDone, DataLoaded and DataEvicted are unused by this strategy.
func (s *greedyLocal) TaskDone(gpu int, t memsched.TaskID)    {}
func (s *greedyLocal) DataLoaded(gpu int, d memsched.DataID)  {}
func (s *greedyLocal) DataEvicted(gpu int, d memsched.DataID) {}

func main() {
	inst := memsched.Matmul2D(50)
	plat := memsched.V100(2)

	custom := memsched.Custom("greedy-local", func() (memsched.Scheduler, memsched.EvictionPolicy) {
		return &greedyLocal{window: 64}, nil // nil policy = default LRU
	})

	for _, strat := range []memsched.Strategy{memsched.Eager(), custom, memsched.DARTSLUF()} {
		res, err := memsched.Run(inst, strat, plat, memsched.Options{Seed: 1, CheckInvariants: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %8.0f GFlop/s  %9.1f MB transferred\n",
			res.SchedulerName, res.GFlops, float64(res.BytesTransferred)/1e6)
	}

	fmt.Println("\nA 60-line scheduler already recovers much of the locality EAGER")
	fmt.Println("wastes; the DARTS+LUF column shows what data-first planning and")
	fmt.Println("a future-aware eviction policy add on top.")
}
