// out-of-core runs the generalization the paper sketches in its
// introduction: "the optimization problem studied in this paper is not
// specific to the use of such accelerators ... it is also relevant for a
// computer made of several CPUs with restricted private memory, and
// limited bandwidth for the communication between memories and disk."
//
// The platform swaps GPUs for CPU sockets and the PCI bus for a shared
// disk link; the schedulers are unchanged.
//
// Run with:
//
//	go run ./examples/out-of-core
package main

import (
	"fmt"
	"log"

	"memsched"
)

func main() {
	plat := memsched.CPUDisk(2)
	// Scale the workload so the 8 GB of cumulated memory is
	// oversubscribed about 2.4x, as in the paper's GPU experiments.
	inst := memsched.Matmul2D(400)

	fmt.Printf("out-of-core: %d CPU sockets x %.0f GB memory, %.0f GB/s shared disk link\n",
		plat.NumGPUs, float64(plat.MemoryBytes)/1e9, plat.BusBytesPerSecond/1e9)
	fmt.Printf("workload %s: %.1f GB working set\n\n", inst.Name(), float64(inst.WorkingSetBytes())/1e9)

	for _, strat := range []memsched.Strategy{
		memsched.Eager(),
		memsched.DMDAR(),
		memsched.DARTSLUF(),
	} {
		res, err := memsched.Run(inst, strat, plat, memsched.Options{Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %8.0f GFlop/s (peak %.0f)  %8.1f GB read from disk  makespan %v\n",
			res.SchedulerName, res.GFlops, plat.PeakGFlops(),
			float64(res.BytesTransferred)/1e9, res.Makespan.Round(1e7))
	}

	fmt.Println("\nThe same pathology and the same cure carry over: EAGER re-reads")
	fmt.Println("the working set from disk once it stops fitting in memory, while")
	fmt.Println("DARTS+LUF computes as much as possible with the data at hand.")
}
