// matmul-sweep reproduces the qualitative story of Figures 3 and 4 of the
// paper at the command line: it sweeps the 2D matrix product working set
// across the single-GPU memory thresholds and shows the EAGER pathology
// appear while DARTS+LUF stays near peak.
//
// Run with:
//
//	go run ./examples/matmul-sweep
package main

import (
	"fmt"
	"log"

	"memsched"
)

func main() {
	plat := memsched.V100(1)
	fmt.Printf("1 GPU, %.0f MB memory; matrix B alone fits up to n=33, A and B up to n=16\n\n",
		float64(plat.MemoryBytes)/1e6)
	fmt.Printf("%4s %10s  %24s  %24s\n", "n", "ws (MB)", "EAGER", "DARTS+LUF")
	fmt.Printf("%4s %10s  %12s %11s  %12s %11s\n", "", "", "GFlop/s", "moved MB", "GFlop/s", "moved MB")

	for _, n := range []int{10, 20, 30, 40, 55, 70, 85, 100} {
		inst := memsched.Matmul2D(n)
		var cells []float64
		for _, strat := range []memsched.Strategy{memsched.Eager(), memsched.DARTSLUF()} {
			res, err := memsched.Run(inst, strat, plat, memsched.Options{Seed: 1})
			if err != nil {
				log.Fatal(err)
			}
			cells = append(cells, res.GFlops, float64(res.BytesTransferred)/1e6)
		}
		fmt.Printf("%4d %10.1f  %12.0f %11.1f  %12.0f %11.1f\n",
			n, float64(inst.WorkingSetBytes())/1e6, cells[0], cells[1], cells[2], cells[3])
	}

	fmt.Println("\nPast n=33 the whole B matrix no longer fits: EAGER+LRU reloads B")
	fmt.Println("for every block-row of A (the paper's pathological case), while")
	fmt.Println("DARTS+LUF keeps transfers near the compulsory minimum.")
}
