// cholesky compares every applicable strategy on the task set of a tiled
// Cholesky decomposition across four GPUs (the scenario of Figure 11),
// with scheduling costs charged to the simulated clock — showing why the
// paper adds the OPTI search cutoff to DARTS for workloads with very many
// tasks.
//
// Run with:
//
//	go run ./examples/cholesky
package main

import (
	"fmt"
	"log"

	"memsched"
)

func main() {
	const n = 40
	inst := memsched.Cholesky(n)
	plat := memsched.V100(4)

	fmt.Printf("%s: %d kernels (POTRF/TRSM/SYRK/GEMM) over %d tiles, %.0f MB working set\n\n",
		inst.Name(), inst.NumTasks(), inst.NumData(), float64(inst.WorkingSetBytes())/1e6)

	strategies := []memsched.Strategy{
		memsched.Eager(),
		memsched.DMDAR(),
		memsched.HMetisR(true),
		memsched.DARTSLUF(),
		memsched.DARTSWith(memsched.DARTSOptions{LUF: true, ThreeInputs: true}),
		memsched.DARTSWith(memsched.DARTSOptions{LUF: true, Opti: true, ThreeInputs: true}),
	}
	for _, strat := range strategies {
		res, err := memsched.Run(inst, strat, plat, memsched.Options{
			Seed:    1,
			NsPerOp: memsched.DefaultNsPerOp, // charge scheduling time
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %8.0f GFlop/s  %8.1f MB moved  sched cost %v\n",
			res.SchedulerName, res.GFlops, float64(res.BytesTransferred)/1e6,
			res.StaticCost+res.DynamicCost)
	}

	fmt.Println("\nThe plain DARTS data scan is quadratic in practice and its cost")
	fmt.Println("shows directly in the makespan; OPTI stops the scan at the first")
	fmt.Println("data enabling a task and keeps the throughput close to optimal.")
}
