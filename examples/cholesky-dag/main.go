// cholesky-dag runs the FULL tiled Cholesky decomposition — with its real
// inter-kernel dependencies, not the dependency-stripped task set of the
// paper's Figure 11 — through the dependency gate of the future-work
// extension (§VI: "our objective is to consider tasks with dependencies").
//
// Run with:
//
//	go run ./examples/cholesky-dag
package main

import (
	"fmt"
	"log"

	"memsched"
)

func main() {
	const n = 24
	inst, deps := memsched.CholeskyDAG(n)
	plat := memsched.V100(4)

	cp, err := deps.CriticalPathFlops()
	if err != nil {
		log.Fatal(err)
	}
	_, levels, err := deps.Levels()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d kernels, %d dependency edges, %d levels\n",
		inst.Name(), inst.NumTasks(), deps.NumEdges(), levels)
	fmt.Printf("critical path: %.1f GFlop of %.1f GFlop total (%.1f%%)\n\n",
		cp/1e9, inst.TotalFlops()/1e9, 100*cp/inst.TotalFlops())

	for _, strat := range []memsched.Strategy{
		memsched.Eager(),
		memsched.DMDAR(),
		memsched.DARTSLUF(),
	} {
		gated := memsched.WithDependencies(deps, strat)
		res, err := memsched.Run(inst, gated, plat, memsched.Options{Seed: 1, CheckInvariants: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %8.0f GFlop/s  %9.1f MB transferred  makespan %v\n",
			res.SchedulerName, res.GFlops, float64(res.BytesTransferred)/1e6, res.Makespan)
	}

	// The same kernels without dependencies (the paper's Figure 11
	// setting) bound what the gated runs can hope for.
	free, err := memsched.Run(inst, memsched.DARTSLUF(), plat, memsched.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n(dependency-free bound, the paper's setting: %.0f GFlop/s)\n", free.GFlops)
	fmt.Println("\nUnder real dependencies the data-first planning of DARTS loses its")
	fmt.Println("edge: the ready set is small and release order dominates. This is")
	fmt.Println("precisely why the paper leaves dependent tasks as future work.")
}
