// Quickstart: run the paper's headline strategy (DARTS+LUF) against the
// StarPU default (DMDAR) and the EAGER baseline on a memory-constrained
// 2D blocked matrix multiplication, and print the comparison.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"memsched"
)

func main() {
	// A 60x60 task grid: 120 data items of 14.7456 MB (1.77 GB working
	// set), far more than the two 500 MB GPU memories can hold.
	inst := memsched.Matmul2D(60)
	plat := memsched.V100(2)

	fmt.Printf("workload %s: %d tasks, %d data items, %.0f MB working set\n",
		inst.Name(), inst.NumTasks(), inst.NumData(), float64(inst.WorkingSetBytes())/1e6)
	fmt.Printf("platform: %d GPUs x %.0f MB, %.0f GFlop/s peak\n\n",
		plat.NumGPUs, float64(plat.MemoryBytes)/1e6, plat.PeakGFlops())

	for _, strat := range []memsched.Strategy{
		memsched.Eager(),
		memsched.DMDAR(),
		memsched.DARTSLUF(),
	} {
		res, err := memsched.Run(inst, strat, plat, memsched.Options{Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s %8.0f GFlop/s  %9.1f MB transferred  makespan %v\n",
			res.SchedulerName, res.GFlops, float64(res.BytesTransferred)/1e6, res.Makespan)
	}

	fmt.Println("\nDARTS+LUF keeps the GPUs near peak by loading the data that")
	fmt.Println("frees the most tasks and evicting the data least used by the")
	fmt.Println("tasks it has already planned.")
}
