// nvlink demonstrates the extension the paper lists as future work
// (§VI): direct GPU-to-GPU transfers over NVLink. When a data item is
// already resident on a peer GPU, the runtime copies it over the peer
// link instead of the congested shared PCI bus.
//
// Run with:
//
//	go run ./examples/nvlink
package main

import (
	"fmt"
	"log"

	"memsched"
)

func main() {
	// A memory-constrained 4-GPU 2D product: B columns are shared
	// between GPUs, so many loads can be served by a peer instead of
	// the host.
	inst := memsched.Matmul2D(80)
	fmt.Printf("%s on 4 GPUs, %.0f MB working set, 500 MB per GPU\n\n",
		inst.Name(), float64(inst.WorkingSetBytes())/1e6)

	for _, cfg := range []struct {
		name string
		plat memsched.Platform
	}{
		{"PCI bus only", memsched.V100(4)},
		{"with NVLink ", memsched.V100NVLink(4)},
	} {
		res, err := memsched.Run(inst, memsched.DARTSLUF(), cfg.plat, memsched.Options{Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s  %8.0f GFlop/s  host bus %8.1f MB  peer links %8.1f MB\n",
			cfg.name, res.GFlops,
			float64(res.BytesTransferred)/1e6,
			float64(res.PeerBytesTransferred)/1e6)
	}

	fmt.Println("\nPeer links drain traffic off the shared PCI bus; the paper")
	fmt.Println("expects exactly this (\"moving data from a nearby GPU is usually")
	fmt.Println("faster than loading it from the main memory\", SVI).")
}
