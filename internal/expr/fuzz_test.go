package expr_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"memsched/internal/bounds"
	"memsched/internal/memory"
	"memsched/internal/platform"
	"memsched/internal/sched"
	"memsched/internal/sim"
	"memsched/internal/workload"
)

// TestFuzzAllKnobs is the whole-stack property test: random instances,
// random platform knobs (GPU count, memory, bandwidth, NVLink,
// heterogeneous speeds, bus model), random window sizes and random
// strategies must always complete with a valid trace and never exceed the
// throughput upper bound.
func TestFuzzAllKnobs(t *testing.T) {
	strategies := []sched.Strategy{
		sched.EagerStrategy(),
		sched.DMDARStrategy(),
		sched.MHFPStrategy(false),
		sched.HMetisRStrategy(false),
		sched.DARTSStrategy(sched.DARTSOptions{}),
		sched.DARTSStrategy(sched.DARTSOptions{LUF: true}),
		sched.DARTSStrategy(sched.DARTSOptions{LUF: true, ThreeInputs: true, Opti: true}),
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := workload.Random(10+rng.Intn(60), 4+rng.Intn(10), 3, seed)

		gpus := 1 + rng.Intn(4)
		plat := platform.Platform{
			NumGPUs:           gpus,
			GFlopsPerGPU:      100 + 1000*rng.Float64(),
			BusBytesPerSecond: 1e8 + 1e9*rng.Float64(),
		}
		// Memory between the progress minimum and twice the working set.
		var maxFootprint int64
		for _, task := range inst.Tasks() {
			if fp := inst.TaskFootprint(task.ID); fp > maxFootprint {
				maxFootprint = fp
			}
		}
		span := inst.WorkingSetBytes() * 2
		plat.MemoryBytes = 2*maxFootprint + rng.Int63n(span)
		if rng.Intn(2) == 0 {
			plat.NVLinkBytesPerSecond = 2 * plat.BusBytesPerSecond
		}
		if rng.Intn(3) == 0 {
			list := make([]float64, gpus)
			for i := range list {
				list[i] = 100 + 1000*rng.Float64()
			}
			plat.GFlopsPerGPUList = list
		}
		busModel := sim.BusFIFO
		if rng.Intn(2) == 0 {
			busModel = sim.BusFairShare
		}

		strat := strategies[rng.Intn(len(strategies))]
		s, pol := strat.New()
		var ev sim.EvictionPolicy = pol
		if ev == nil {
			switch rng.Intn(3) {
			case 0:
				ev = memory.NewLRU()
			case 1:
				ev = memory.NewFIFO()
			default:
				ev = memory.NewMRU()
			}
		}
		res, err := sim.Run(inst, sim.Config{
			Platform:        plat,
			Scheduler:       s,
			Eviction:        ev,
			WindowSize:      1 + rng.Intn(8),
			Seed:            seed,
			BusModel:        busModel,
			CheckInvariants: true,
		})
		if err != nil {
			t.Logf("seed %d (%s): %v", seed, strat.Label, err)
			return false
		}
		bound := bounds.ThroughputUpperBound(inst, plat)
		if res.GFlops > bound*1.001 {
			t.Logf("seed %d (%s): %.1f GFlop/s beats bound %.1f", seed, strat.Label, res.GFlops, bound)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
