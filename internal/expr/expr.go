// Package expr defines one executable experiment per figure of the
// paper's evaluation (§V, Figures 3 to 13): workload sweep, platform,
// strategy set and cost model. Each experiment regenerates the series the
// figure plots (GFlop/s or MB transferred versus working-set size).
package expr

import (
	"fmt"
	"io"

	"memsched/internal/memory"
	"memsched/internal/metrics"
	"memsched/internal/platform"
	"memsched/internal/sched"
	"memsched/internal/sim"
	"memsched/internal/taskgraph"
)

// Point is one x-axis position of a figure: a problem size and the
// instance generator for it.
type Point struct {
	// N is the workload size parameter (task grid edge, tile count...).
	N int
	// Build generates the instance.
	Build func() *taskgraph.Instance
}

// Figure is one reproducible experiment.
type Figure struct {
	// ID names the experiment after the paper figure(s) it regenerates,
	// e.g. "fig3+4" (the same runs produce both the throughput and the
	// transfer figure).
	ID string
	// Title restates the paper caption.
	Title string
	// Metrics lists what the paper plots from these runs: "gflops",
	// "transfers", or both.
	Metrics []string
	// Platform is the simulated machine.
	Platform platform.Platform
	// NsPerOp is the scheduler cost model conversion; 0 reproduces the
	// paper's pure-simulation figures that ignore scheduling time.
	NsPerOp float64
	// Points is the working-set sweep.
	Points []Point
	// Strategies are the compared schedulers, in legend order.
	Strategies []sched.Strategy
	// Seed feeds every run.
	Seed int64
}

// RunOptions trims or instruments an experiment run.
type RunOptions struct {
	// MaxN skips sweep points with N above this bound (0 = no bound).
	// Benchmarks use it to keep -bench runs short.
	MaxN int
	// Quick keeps only every third point plus the last.
	Quick bool
	// Progress, when non-nil, receives one line per completed run.
	Progress io.Writer
	// CheckInvariants validates every trace (slower).
	CheckInvariants bool
	// Replicas averages each (point, strategy) cell over this many
	// seeds (the paper averages 10 iterations per result). 0 or 1 runs
	// a single seed.
	Replicas int
}

// Run executes the experiment and returns one row per (point, strategy).
func (f *Figure) Run(opt RunOptions) ([]metrics.Row, error) {
	points := f.Points
	if opt.Quick {
		var kept []Point
		for i, p := range points {
			if i%3 == 0 || i == len(points)-1 {
				kept = append(kept, p)
			}
		}
		points = kept
	}
	reps := opt.Replicas
	if reps < 1 {
		reps = 1
	}
	var rows []metrics.Row
	for _, p := range points {
		if opt.MaxN > 0 && p.N > opt.MaxN {
			continue
		}
		inst := p.Build()
		for _, strat := range f.Strategies {
			var row metrics.Row
			for r := 0; r < reps; r++ {
				res, err := RunOne(inst, strat, f.Platform, f.NsPerOp, f.Seed+int64(r), opt.CheckInvariants)
				if err != nil {
					return nil, fmt.Errorf("%s: %s on %s: %w", f.ID, strat.Label, inst.Name(), err)
				}
				one := metrics.FromResult(f.ID, res)
				if r == 0 {
					row = one
				} else {
					row.GFlops += one.GFlops
					row.TransferredMB += one.TransferredMB
					row.MakespanMS += one.MakespanMS
					row.Loads += one.Loads
					row.Evictions += one.Evictions
				}
			}
			if reps > 1 {
				row.GFlops /= float64(reps)
				row.TransferredMB /= float64(reps)
				row.MakespanMS /= float64(reps)
				row.Loads /= reps
				row.Evictions /= reps
			}
			rows = append(rows, row)
			if opt.Progress != nil {
				fmt.Fprintf(opt.Progress, "%s  ws=%7.1f MB  %-28s %8.0f GFlop/s  %9.1f MB moved\n",
					f.ID, row.WorkingSetMB, strat.Label, row.GFlops, row.TransferredMB)
			}
		}
	}
	return rows, nil
}

// RunOne executes a single (instance, strategy) pair on plat.
func RunOne(inst *taskgraph.Instance, strat sched.Strategy, plat platform.Platform, nsPerOp float64, seed int64, check bool) (*sim.Result, error) {
	s, pol := strat.New()
	var ev sim.EvictionPolicy = pol
	if ev == nil {
		ev = memory.NewLRU()
	}
	return sim.Run(inst, sim.Config{
		Platform:        plat,
		Scheduler:       s,
		Eviction:        ev,
		Seed:            seed,
		NsPerOp:         nsPerOp,
		CheckInvariants: check,
	})
}

// RefLines describes the figure's reference lines, mirroring the paper's
// dotted verticals and horizontals.
func (f *Figure) RefLines() string {
	p := f.Platform
	cum := float64(p.CumulatedMemory()) / platform.MB
	return fmt.Sprintf(
		"GFlop/s max = %.0f; A and B fit in cumulated memory at ws = %.0f MB; B fits at ws = %.0f MB",
		p.PeakGFlops(), cum, 2*cum)
}
