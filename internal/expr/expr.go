// Package expr defines one executable experiment per figure of the
// paper's evaluation (§V, Figures 3 to 13): workload sweep, platform,
// strategy set and cost model. Each experiment regenerates the series the
// figure plots (GFlop/s or MB transferred versus working-set size).
package expr

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"memsched/internal/critpath"
	"memsched/internal/fault"
	"memsched/internal/memory"
	"memsched/internal/metrics"
	"memsched/internal/platform"
	"memsched/internal/sched"
	"memsched/internal/sim"
	"memsched/internal/taskgraph"
)

// Gauges are the live sweep counters Run updates by default. They are
// deliberately *not* registered on the expvar registry here: expvar
// panics on duplicate names, so the canonical memsched_* names are
// published exactly once by cmd/paperbench (Gauges.Publish), and tests
// or library embedders that want isolation pass their own instance via
// RunOptions.Gauges instead.
var Gauges = new(metrics.Gauges)

// Point is one x-axis position of a figure: a problem size and the
// instance generator for it.
type Point struct {
	// N is the workload size parameter (task grid edge, tile count...).
	N int
	// Build generates the instance.
	Build func() *taskgraph.Instance
}

// Figure is one reproducible experiment.
type Figure struct {
	// ID names the experiment after the paper figure(s) it regenerates,
	// e.g. "fig3+4" (the same runs produce both the throughput and the
	// transfer figure).
	ID string
	// Title restates the paper caption.
	Title string
	// Metrics lists what the paper plots from these runs: "gflops",
	// "transfers", or both.
	Metrics []string
	// Platform is the simulated machine.
	Platform platform.Platform
	// NsPerOp is the scheduler cost model conversion; 0 reproduces the
	// paper's pure-simulation figures that ignore scheduling time.
	NsPerOp float64
	// Points is the working-set sweep.
	Points []Point
	// Strategies are the compared schedulers, in legend order.
	Strategies []sched.Strategy
	// Seed feeds every run.
	Seed int64
}

// RunOptions trims or instruments an experiment run.
type RunOptions struct {
	// MaxN skips sweep points with N above this bound (0 = no bound).
	// Benchmarks use it to keep -bench runs short.
	MaxN int
	// Quick keeps only every third point plus the last.
	Quick bool
	// Progress, when non-nil, receives one line per completed
	// (point, strategy) row, prefixed with "[done/total eta ...]". With
	// Workers > 1 the lines arrive in completion order rather than sweep
	// order, but each line is written whole (they are serialized through
	// a single goroutine).
	Progress io.Writer
	// TelemetryOut, when non-nil, receives one JSON line per
	// (point, strategy) cell in sweep order after the sweep completes:
	// the metrics.Row fields joined with the engine telemetry and the
	// scheduler decision digest of the cell's first replica (see
	// EXPERIMENTS.md for the schema).
	TelemetryOut io.Writer
	// OnCell, when non-nil, receives the same per-cell records as
	// TelemetryOut, typed instead of serialized, in sweep order after
	// the sweep completes. The baseline tooling uses it to build
	// BENCH_*.json entries without round-tripping through JSON.
	OnCell func(CellTelemetry)
	// Gauges overrides the live sweep counters Run updates (nil uses the
	// package-level Gauges instance that paperbench publishes).
	Gauges *metrics.Gauges
	// CheckInvariants validates every trace (slower).
	CheckInvariants bool
	// Replicas averages each (point, strategy) cell over this many
	// seeds (the paper averages 10 iterations per result). 0 or 1 runs
	// a single seed.
	Replicas int
	// Workers bounds how many (point, strategy, replica) cells run
	// concurrently. 0 selects runtime.GOMAXPROCS(0); 1 runs strictly
	// sequentially. Every cell is an independent deterministic
	// simulation on its own Instance, and rows are assembled in sweep
	// order, so the result is identical for any worker count.
	Workers int
	// Context, when non-nil, cancels the sweep: in-flight simulations
	// stop at the next engine poll and every unfinished cell is reported
	// as a CellError inside the returned SweepError. Rows already
	// completed are still returned and still reach TelemetryOut/OnCell.
	Context context.Context
	// Faults injects the same fault plan into every cell of the sweep
	// (each cell still simulates it independently and deterministically).
	// Nil (or an empty plan) reproduces the fault-free sweep exactly.
	Faults *fault.Plan
	// Checkpoint, when non-nil, makes the sweep crash-safe: rows already
	// journaled are restored instead of recomputed, and every freshly
	// completed row is appended to the journal (fsync'd) before the sweep
	// moves on. Because each cell is an independent deterministic
	// simulation, a killed-and-resumed sweep produces output
	// byte-identical to an uninterrupted one.
	Checkpoint *Checkpoint
	// Speed, when non-nil, accumulates the raw engine throughput of the
	// sweep: simulated events, wall-clock time, and cell count of the
	// cells actually computed (checkpoint-restored rows contribute
	// nothing). The fields are added to, not overwritten, so one
	// SweepSpeed can total several figures.
	Speed *SweepSpeed
}

// SweepSpeed totals the engine throughput of one or more sweeps; see
// RunOptions.Speed. EventsPerSec derives the headline rate.
type SweepSpeed struct {
	// Events is the number of discrete events the computed cells
	// processed.
	Events int64
	// Wall is the wall-clock duration of the compute phases.
	Wall time.Duration
	// Cells is the number of (point, strategy, replica) cells simulated.
	Cells int
}

// EventsPerSec returns the aggregate simulation rate, 0 before any work.
func (s *SweepSpeed) EventsPerSec() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.Events) / s.Wall.Seconds()
}

// CellError reports the failure of one (point, strategy, replica) cell
// of a sweep: which cell, what went wrong, and — for panics — the stack
// of the worker goroutine that caught it. A failed cell fails only its
// own row; the other rows of the sweep are unaffected.
type CellError struct {
	// Figure, Workload, Strategy and Replica identify the cell.
	Figure   string
	Workload string
	Strategy string
	Replica  int
	// Err is the failure: a simulation error, ctx.Err() for cells
	// cancelled or never started, or "panic: ..." for panics.
	Err error
	// Stack is the worker stack at recover time; nil unless the cell
	// panicked.
	Stack []byte
}

// Error renders the cell key with the failure.
func (e *CellError) Error() string {
	return fmt.Sprintf("%s: %s on %s (replica %d): %v",
		e.Figure, e.Strategy, e.Workload, e.Replica, e.Err)
}

// Unwrap exposes the underlying failure to errors.Is/As.
func (e *CellError) Unwrap() error { return e.Err }

// SweepError aggregates every failed cell of a sweep. Run returns it
// alongside the rows that did complete, so a panicking or cancelled cell
// costs its own row, not the whole sweep.
type SweepError struct {
	// Cells lists the failures in job order (sweep order, replicas of a
	// cell in seed order).
	Cells []*CellError
	// Total is the number of (point, strategy, replica) jobs attempted.
	Total int
}

// Error summarizes the failures, one line per failed cell (panic stacks
// are elided here; read them from Cells).
func (e *SweepError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "expr: %d of %d cells failed:", len(e.Cells), e.Total)
	for _, c := range e.Cells {
		b.WriteString("\n  ")
		b.WriteString(c.Error())
	}
	return b.String()
}

// Unwrap exposes the individual cell errors to errors.Is/As.
func (e *SweepError) Unwrap() []error {
	errs := make([]error, len(e.Cells))
	for i, c := range e.Cells {
		errs[i] = c
	}
	return errs
}

// Run executes the experiment and returns one row per (point, strategy),
// in sweep order (points in sweep order, strategies in legend order).
//
// The (point, strategy, replica) cells are independent simulations; Run
// fans them across Workers goroutines. Each worker builds its own
// Instance for its cell, so no mutable state is shared between cells:
// results are byte-identical for any worker count (see
// TestWorkersConformance).
func (f *Figure) Run(opt RunOptions) ([]metrics.Row, error) {
	points := f.Points
	if opt.Quick {
		var kept []Point
		for i, p := range points {
			if i%3 == 0 || i == len(points)-1 {
				kept = append(kept, p)
			}
		}
		points = kept
	}
	reps := opt.Replicas
	if reps < 1 {
		reps = 1
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// One row per (point, strategy) cell, in sweep order.
	type rowSpec struct {
		point Point
		strat sched.Strategy
	}
	var specs []rowSpec
	for _, p := range points {
		if opt.MaxN > 0 && p.N > opt.MaxN {
			continue
		}
		for _, strat := range f.Strategies {
			specs = append(specs, rowSpec{point: p, strat: strat})
		}
	}
	if len(specs) == 0 {
		return nil, nil
	}
	numJobs := len(specs) * reps
	if workers > numJobs {
		workers = numJobs
	}

	gauges := opt.Gauges
	if gauges == nil {
		gauges = Gauges
	}
	// Decision digests are only worth the recording overhead when someone
	// will see them; recording is pure observation either way (guarded
	// recorder calls, deterministic results — TestDigestsDoNotPerturbRows).
	// Checkpointed sweeps always record them so the journal can replay
	// telemetry output regardless of which flags the resuming run adds.
	wantDigests := opt.TelemetryOut != nil || opt.OnCell != nil || opt.Checkpoint != nil

	rows := make([]metrics.Row, len(specs))
	rowOK := make([]bool, len(specs))
	cells := make([][]metrics.Row, len(specs)) // per-replica results
	remaining := make([]int32, len(specs))     // replicas left per row
	tels := make([]*sim.Telemetry, len(specs)) // first replica's telemetry
	digs := make([]*sched.DecisionDigest, len(specs))
	fstats := make([]*sim.FaultStats, len(specs))
	crits := make([]*critpath.Summary, len(specs)) // first replica's attribution
	for i := range cells {
		cells[i] = make([]metrics.Row, reps)
		remaining[i] = int32(reps)
	}
	cellErrs := make([]*CellError, numJobs)
	var rowsDone atomic.Int32
	started := time.Now()

	// Restore journaled rows before any work is dispatched: a resumed
	// sweep only computes the cells the interrupted run never finished.
	ckpt := opt.Checkpoint
	var restored []bool
	dispatchable := numJobs
	if ckpt != nil {
		restored = make([]bool, len(specs))
		for ri, sp := range specs {
			cell, ok := ckpt.Lookup(checkpointKey(f.ID, sp.point.N, sp.strat.Label))
			if !ok {
				continue
			}
			rows[ri] = cell.Row
			rowOK[ri] = true
			tels[ri] = cell.Telemetry
			digs[ri] = cell.Decisions
			fstats[ri] = cell.Faults
			crits[ri] = cell.CritPath
			restored[ri] = true
			dispatchable -= reps
			rowsDone.Add(1)
		}
		if n := numJobs - dispatchable; n > 0 && opt.Progress != nil {
			fmt.Fprintf(opt.Progress, "%s: resumed %d/%d rows from %s\n",
				f.ID, n/reps, len(specs), ckpt.Path())
		}
		if workers > dispatchable && dispatchable > 0 {
			workers = dispatchable
		}
	}

	// Progress lines from concurrent workers are serialized through one
	// channel so each line reaches the writer whole.
	var progCh chan string
	var progWG sync.WaitGroup
	if opt.Progress != nil {
		progCh = make(chan string, workers)
		progWG.Add(1)
		go func() {
			defer progWG.Done()
			for line := range progCh {
				io.WriteString(opt.Progress, line)
			}
		}()
	}

	// runJob executes one (point, strategy, replica) cell. Panics are
	// confined to the cell: the recover below turns them into a CellError
	// carrying the worker stack, and only that cell's row is lost.
	var simEvents atomic.Int64 // events processed by computed cells
	var simCells atomic.Int32
	runJob := func(j int, sc *sim.Scratch) (cellErr *CellError) {
		ri, rep := j/reps, j%reps
		sp := specs[ri]
		fail := func(workload string, err error, stack []byte) *CellError {
			return &CellError{Figure: f.ID, Workload: workload,
				Strategy: sp.strat.Label, Replica: rep, Err: err, Stack: stack}
		}
		defer func() {
			if r := recover(); r != nil {
				// The panic may have come from Build itself, so identify
				// the workload by its sweep position rather than its name.
				cellErr = fail(fmt.Sprintf("point N=%d", sp.point.N),
					fmt.Errorf("panic: %v", r), debug.Stack())
			}
		}()
		if opt.Context != nil && opt.Context.Err() != nil {
			return fail("(not started)", opt.Context.Err(), nil)
		}
		inst := sp.point.Build()
		strat := sp.strat
		var digRec *sched.DigestRecorder
		if wantDigests && rep == 0 {
			digRec = new(sched.DigestRecorder)
			strat = strat.WithRecorder(digRec)
		}
		// The first replica of an instrumented sweep records its trace so
		// the cell carries its makespan attribution alongside telemetry
		// and decision digests. The trace is dropped again right after
		// the walk; only the compact Summary is retained.
		trace := wantDigests && rep == 0
		gauges.SimsRunning.Add(1)
		res, err := runOne(opt.Context, inst, strat, f.Platform, f.NsPerOp,
			f.Seed+int64(rep), opt.CheckInvariants, opt.Faults, sc, trace)
		gauges.SimsRunning.Add(-1)
		if err != nil {
			return fail(inst.Name(), err, nil)
		}
		cells[ri][rep] = metrics.FromResult(f.ID, res)
		gauges.SimEvents.Add(res.Events)
		simEvents.Add(res.Events)
		simCells.Add(1)
		if rep == 0 {
			tels[ri] = res.Telemetry
			fstats[ri] = res.Faults
			if digRec != nil {
				digs[ri] = digRec.Digest()
			}
			if trace {
				cp, err := critpath.Analyze(inst, res)
				if err != nil {
					return fail(inst.Name(), fmt.Errorf("critpath: %w", err), nil)
				}
				crits[ri] = critpath.Summarize(inst, cp)
				res.Trace = nil
			}
		}
		return nil
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One Scratch per worker: cells on this goroutine recycle the
			// engine's transient state. Results stay byte-identical
			// (TestWorkersConformance runs Workers 1 vs 8).
			sc := sim.NewScratch()
			for j := range jobs {
				ri := j / reps
				sp := specs[ri]
				cellErr := runJob(j, sc)
				cellErrs[j] = cellErr
				if atomic.AddInt32(&remaining[ri], -1) != 0 {
					continue
				}
				// Last replica of this row. The atomic decrement orders the
				// sibling replicas' writes (cells, cellErrs) before this
				// read, so scanning them here is race-free.
				rowFailed := false
				for r := 0; r < reps; r++ {
					if cellErrs[ri*reps+r] != nil {
						rowFailed = true
					}
				}
				done := rowsDone.Add(1)
				if rowFailed {
					if progCh != nil {
						progCh <- fmt.Sprintf("[%d/%d eta %v] %s  %-28s FAILED (see sweep error)\n",
							done, len(specs), sweepETA(started, int(done), len(specs)), f.ID, sp.strat.Label)
					}
					continue
				}
				row, err := aggregateReplicas(cells[ri])
				if err != nil {
					cellErrs[ri*reps] = &CellError{Figure: f.ID, Workload: row.Workload,
						Strategy: sp.strat.Label, Replica: 0, Err: err}
					continue
				}
				rows[ri] = row
				rowOK[ri] = true
				gauges.CellsCompleted.Add(1)
				if ckpt != nil {
					// Journal the finished row before reporting progress:
					// once the line is fsync'd a crash cannot lose it.
					ckpt.Add(checkpointKey(f.ID, sp.point.N, sp.strat.Label),
						CellTelemetry{Row: row, Telemetry: tels[ri], Decisions: digs[ri],
							Faults: fstats[ri], CritPath: crits[ri]})
				}
				if progCh != nil {
					progCh <- fmt.Sprintf("[%d/%d eta %v] %s  ws=%7.1f MB  %-28s %8.0f GFlop/s  %9.1f MB moved\n",
						done, len(specs), sweepETA(started, int(done), len(specs)),
						f.ID, row.WorkingSetMB, sp.strat.Label, row.GFlops, row.TransferredMB)
				}
			}
		}()
	}
	for j := 0; j < numJobs; j++ {
		if restored != nil && restored[j/reps] {
			continue
		}
		jobs <- j
	}
	close(jobs)
	wg.Wait()
	if opt.Speed != nil {
		opt.Speed.Events += simEvents.Load()
		opt.Speed.Wall += time.Since(started)
		opt.Speed.Cells += int(simCells.Load())
	}
	if progCh != nil {
		close(progCh)
		progWG.Wait()
	}

	var sweepErr *SweepError
	for _, ce := range cellErrs {
		if ce != nil {
			if sweepErr == nil {
				sweepErr = &SweepError{Total: dispatchable}
			}
			sweepErr.Cells = append(sweepErr.Cells, ce)
		}
	}

	// Completed rows are emitted (and returned) even when some cells
	// failed, so an interrupted or partially broken sweep still flushes
	// everything it finished.
	out := make([]metrics.Row, 0, len(rows))
	var enc *json.Encoder
	if opt.TelemetryOut != nil {
		enc = json.NewEncoder(opt.TelemetryOut)
	}
	for i := range rows {
		if !rowOK[i] {
			continue
		}
		out = append(out, rows[i])
		if enc == nil && opt.OnCell == nil {
			continue
		}
		cell := CellTelemetry{Row: rows[i], Telemetry: tels[i], Decisions: digs[i],
			Faults: fstats[i], CritPath: crits[i]}
		if enc != nil {
			if err := enc.Encode(cell); err != nil {
				return out, fmt.Errorf("%s: telemetry out: %w", f.ID, err)
			}
			// Make each line durable on its own: a SIGKILL between cells
			// then truncates the stream at a line boundary, leaving valid
			// JSONL instead of a torn tail.
			flushLine(opt.TelemetryOut)
		}
		if opt.OnCell != nil {
			opt.OnCell(cell)
		}
	}
	if ckpt != nil {
		if err := ckpt.Err(); err != nil {
			// A journal that stopped persisting (full disk, yanked volume)
			// must fail the sweep: the rows are fine, but the crash-safety
			// contract is not.
			return out, errors.Join(err, errOrNil(sweepErr))
		}
	}
	if sweepErr != nil {
		return out, sweepErr
	}
	return out, nil
}

// errOrNil converts a possibly-nil *SweepError into a plain error
// without the typed-nil-in-interface trap.
func errOrNil(e *SweepError) error {
	if e == nil {
		return nil
	}
	return e
}

// flushLine pushes a just-encoded telemetry line as far toward the disk
// as the writer allows: through Flush for buffered writers, through Sync
// (fsync) for files. Writers offering neither are already unbuffered.
func flushLine(w io.Writer) {
	switch t := w.(type) {
	case interface{ Flush() error }:
		t.Flush()
	case interface{ Sync() error }:
		t.Sync()
	}
}

// CellTelemetry is one line of the telemetry JSON stream: the figure row
// (averaged over replicas) joined with the engine telemetry and the
// scheduler decision digest of the cell's first replica (the seed the
// single-seed sweep would run). Decisions is nil on runs that did not
// request cell records and all-zero for strategies that report no
// decisions (e.g. EAGER, DMDAR).
type CellTelemetry struct {
	metrics.Row
	Telemetry *sim.Telemetry        `json:"telemetry"`
	Decisions *sched.DecisionDigest `json:"decisions,omitempty"`
	// Faults carries the first replica's fault/recovery counters; nil on
	// fault-free runs, so fault-free telemetry lines are byte-identical
	// to those of builds without fault injection.
	Faults *sim.FaultStats `json:"faults,omitempty"`
	// CritPath is the makespan attribution of the first replica: the
	// critical-path blame totals, counterfactual lower bounds, and top
	// blamed tasks/data reconstructed from that run's trace (see
	// internal/critpath).
	CritPath *critpath.Summary `json:"critpath,omitempty"`
}

// sweepETA estimates the remaining sweep duration from the average cell
// time so far, rounded coarsely for display.
func sweepETA(started time.Time, done, total int) time.Duration {
	if done <= 0 || done >= total {
		return 0
	}
	elapsed := time.Since(started)
	eta := elapsed / time.Duration(done) * time.Duration(total-done)
	return eta.Round(100 * time.Millisecond)
}

// aggregateReplicas folds the per-seed rows of one (point, strategy)
// cell into the figure row: metric fields are averaged, static fields
// (workload identity, working set, GPU count) must agree across seeds.
// Loads and Evictions keep the historical integer average.
func aggregateReplicas(reps []metrics.Row) (metrics.Row, error) {
	row := reps[0]
	for _, one := range reps[1:] {
		if one.Figure != row.Figure || one.Workload != row.Workload ||
			one.WorkingSetMB != row.WorkingSetMB ||
			one.Scheduler != row.Scheduler || one.GPUs != row.GPUs {
			return metrics.Row{}, fmt.Errorf(
				"expr: replica rows disagree on static fields: %+v vs %+v", row, one)
		}
		row.GFlops += one.GFlops
		row.TransferredMB += one.TransferredMB
		row.MakespanMS += one.MakespanMS
		row.StaticMS += one.StaticMS
		row.DynamicMS += one.DynamicMS
		row.IdleMS += one.IdleMS
		row.ReloadedMB += one.ReloadedMB
		row.Loads += one.Loads
		row.Evictions += one.Evictions
	}
	if n := len(reps); n > 1 {
		row.GFlops /= float64(n)
		row.TransferredMB /= float64(n)
		row.MakespanMS /= float64(n)
		row.StaticMS /= float64(n)
		row.DynamicMS /= float64(n)
		row.IdleMS /= float64(n)
		row.ReloadedMB /= float64(n)
		row.Loads /= n
		row.Evictions /= n
	}
	return row, nil
}

// RunOne executes a single (instance, strategy) pair on plat. Telemetry
// is always collected: it is pure observation (the simulated schedule
// and all other Result fields are unchanged, see
// TestTelemetryDoesNotPerturbResults), and it feeds the IdleMS and
// ReloadedMB columns of every row.
func RunOne(inst *taskgraph.Instance, strat sched.Strategy, plat platform.Platform, nsPerOp float64, seed int64, check bool) (*sim.Result, error) {
	return runOne(nil, inst, strat, plat, nsPerOp, seed, check, nil, nil, false)
}

// RunOneFaulty is RunOne with fault injection and cancellation: faults
// (nil or empty for none) is the injected fault plan, and ctx (nil for
// none) stops the simulation at the next engine poll when cancelled.
func RunOneFaulty(ctx context.Context, inst *taskgraph.Instance, strat sched.Strategy, plat platform.Platform, nsPerOp float64, seed int64, check bool, faults *fault.Plan) (*sim.Result, error) {
	return runOne(ctx, inst, strat, plat, nsPerOp, seed, check, faults, nil, false)
}

// RunOneTraced is RunOneFaulty with trace recording: Result.Trace is
// retained so the caller can run critical-path attribution
// (critpath.Analyze) or export a Chrome trace. The simulated schedule is
// unchanged — recording is pure observation.
func RunOneTraced(ctx context.Context, inst *taskgraph.Instance, strat sched.Strategy, plat platform.Platform, nsPerOp float64, seed int64, check bool, faults *fault.Plan) (*sim.Result, error) {
	return runOne(ctx, inst, strat, plat, nsPerOp, seed, check, faults, nil, true)
}

func runOne(ctx context.Context, inst *taskgraph.Instance, strat sched.Strategy, plat platform.Platform, nsPerOp float64, seed int64, check bool, faults *fault.Plan, sc *sim.Scratch, trace bool) (*sim.Result, error) {
	s, pol := strat.New()
	var ev sim.EvictionPolicy = pol
	if ev == nil {
		ev = memory.NewLRU()
	}
	return sim.Run(inst, sim.Config{
		Platform:        plat,
		Scheduler:       s,
		Eviction:        ev,
		Seed:            seed,
		NsPerOp:         nsPerOp,
		Telemetry:       true,
		RecordTrace:     trace,
		CheckInvariants: check,
		Faults:          faults,
		Context:         ctx,
		Scratch:         sc,
	})
}

// RunCell executes one fully instrumented cell for deep-dive tooling
// (paperbench -trace-cell): the trace is retained and validated, the
// telemetry cross-checked against it, and probe (optional) streams every
// event. faults (nil or empty for none) injects a fault plan into the
// cell. Attach a decision recorder via strat.WithRecorder beforehand.
func RunCell(inst *taskgraph.Instance, strat sched.Strategy, plat platform.Platform, nsPerOp float64, seed int64, probe sim.Probe, faults *fault.Plan) (*sim.Result, error) {
	s, pol := strat.New()
	var ev sim.EvictionPolicy = pol
	if ev == nil {
		ev = memory.NewLRU()
	}
	return sim.Run(inst, sim.Config{
		Platform:        plat,
		Scheduler:       s,
		Eviction:        ev,
		Seed:            seed,
		NsPerOp:         nsPerOp,
		Telemetry:       true,
		RecordTrace:     true,
		CheckInvariants: true,
		Probe:           probe,
		Faults:          faults,
	})
}

// RefLines describes the figure's reference lines, mirroring the paper's
// dotted verticals and horizontals.
func (f *Figure) RefLines() string {
	p := f.Platform
	cum := float64(p.CumulatedMemory()) / platform.MB
	return fmt.Sprintf(
		"GFlop/s max = %.0f; A and B fit in cumulated memory at ws = %.0f MB; B fits at ws = %.0f MB",
		p.PeakGFlops(), cum, 2*cum)
}
