package expr_test

import (
	"testing"

	"memsched/internal/expr"
	"memsched/internal/metrics"
)

// TestFig3QuickShapes runs a trimmed Figure 3 sweep and checks the
// paper's qualitative results on one GPU: under memory constraint (B no
// longer fits, ws > 1000 MB), DARTS+LUF beats DMDAR, which beats EAGER.
func TestFig3QuickShapes(t *testing.T) {
	if raceEnabled {
		t.Skip("slow single-threaded sweep; skipped under -race")
	}
	f := expr.Fig3And4()
	f.Points = f.Points[len(f.Points)-3:] // the most constrained points
	rows, err := f.Run(expr.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]map[string]float64{}
	for _, r := range rows {
		k := r.Workload
		if byKey[k] == nil {
			byKey[k] = map[string]float64{}
		}
		byKey[k][r.Scheduler] = r.GFlops
	}
	for wl, m := range byKey {
		if m["DARTS+LUF"] <= m["EAGER"] {
			t.Errorf("%s: DARTS+LUF (%.0f) should beat EAGER (%.0f)", wl, m["DARTS+LUF"], m["EAGER"])
		}
		if m["DMDAR"] <= m["EAGER"] {
			t.Errorf("%s: DMDAR (%.0f) should beat EAGER (%.0f)", wl, m["DMDAR"], m["EAGER"])
		}
		// mHFP with charged packing cost must be far below its
		// cost-free variant on large working sets.
		if m["mHFP"] >= m["mHFP no sched. time"]*0.9 {
			t.Errorf("%s: mHFP with sched time (%.0f) should collapse vs without (%.0f)",
				wl, m["mHFP"], m["mHFP no sched. time"])
		}
	}
	t.Logf("\n%s", metrics.FormatTable(rows, "gflops"))
	t.Logf("\n%s", metrics.FormatTable(rows, "transfers"))
}

func TestByID(t *testing.T) {
	for _, id := range []string{"fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13"} {
		if _, err := expr.ByID(id); err != nil {
			t.Errorf("%s: %v", id, err)
		}
	}
	if _, err := expr.ByID("fig99"); err == nil {
		t.Error("expected error for fig99")
	}
}

// TestAllFiguresSmallestPoint runs only the smallest sweep point of every
// figure with invariant checking, as an integration test of the full
// harness.
func TestAllFiguresSmallestPoint(t *testing.T) {
	for _, f := range expr.AllFigures() {
		f.Points = f.Points[:1]
		rows, err := f.Run(expr.RunOptions{CheckInvariants: true})
		if err != nil {
			t.Fatalf("%s: %v", f.ID, err)
		}
		if len(rows) != len(f.Strategies) {
			t.Errorf("%s: %d rows for %d strategies", f.ID, len(rows), len(f.Strategies))
		}
	}
}

// TestReplicasAveraging: averaging over seeds yields one row per cell
// with plausible values between the per-seed extremes.
func TestReplicasAveraging(t *testing.T) {
	f := expr.Fig3And4()
	f.Points = f.Points[:1]
	f.Strategies = f.Strategies[:2] // EAGER, DMDAR
	single, err := f.Run(expr.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	avg, err := f.Run(expr.RunOptions{Replicas: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(avg) != len(single) {
		t.Fatalf("rows: %d vs %d", len(avg), len(single))
	}
	for i := range avg {
		if avg[i].Scheduler != single[i].Scheduler {
			t.Fatalf("row order changed")
		}
		ratio := avg[i].GFlops / single[i].GFlops
		if ratio < 0.8 || ratio > 1.25 {
			t.Fatalf("%s: averaged %.0f far from single %.0f", avg[i].Scheduler, avg[i].GFlops, single[i].GFlops)
		}
	}
}
