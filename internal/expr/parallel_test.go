package expr_test

import (
	"bytes"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"

	"memsched/internal/expr"
	"memsched/internal/metrics"
	"memsched/internal/sched"
	"memsched/internal/sim"
	"memsched/internal/workload"
)

// TestWorkersConformance is the parallel-runner conformance suite: for
// every figure of the paper, a sequential run (Workers: 1) and a fanned
// run (Workers: 8) must produce identical rows — same values, same
// sweep order. Each cell is an independent deterministic simulation, so
// any divergence means the runner leaked state between cells.
func TestWorkersConformance(t *testing.T) {
	for _, f := range expr.AllFigures() {
		f := f
		t.Run(f.ID, func(t *testing.T) {
			f.Points = f.Points[:1]
			opt := expr.RunOptions{Replicas: 2}
			opt.Workers = 1
			seq, err := f.Run(opt)
			if err != nil {
				t.Fatal(err)
			}
			opt.Workers = 8
			par, err := f.Run(opt)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(seq, par) {
				t.Fatalf("Workers:1 and Workers:8 rows differ:\nseq: %+v\npar: %+v", seq, par)
			}
		})
	}
}

// TestFig3ParallelDeterministic runs a trimmed Figure 3 sweep with four
// workers and compares it to the sequential baseline. Under `go test
// -race` this doubles as the Instance-immutability check: the workers
// run concurrent simulations whose schedulers may only read the shared
// problem structures.
func TestFig3ParallelDeterministic(t *testing.T) {
	run := func(workers int) ([]metrics.Row, string) {
		f := expr.Fig3And4()
		f.Points = f.Points[:4]
		var progress bytes.Buffer
		rows, err := f.Run(expr.RunOptions{Workers: workers, Replicas: 2, Progress: &progress})
		if err != nil {
			t.Fatal(err)
		}
		return rows, progress.String()
	}
	seq, seqProg := run(1)
	par, parProg := run(4)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel rows differ from sequential baseline:\nseq: %+v\npar: %+v", seq, par)
	}
	// Progress lines may arrive in completion order, but every row must
	// report exactly one whole line. The "[done/total eta ...]" prefix
	// depends on completion order and wall time, so it is stripped before
	// comparing the per-row payloads as sets.
	strip := func(lines []string) []string {
		out := make([]string, len(lines))
		for i, line := range lines {
			if !strings.HasPrefix(line, "[") {
				t.Fatalf("progress line missing [done/total eta] prefix: %q", line)
			}
			j := strings.Index(line, "] ")
			if j < 0 {
				t.Fatalf("unterminated progress prefix: %q", line)
			}
			out[i] = line[j+2:]
		}
		return out
	}
	seqLines := strip(strings.Split(strings.TrimSuffix(seqProg, "\n"), "\n"))
	parLines := strip(strings.Split(strings.TrimSuffix(parProg, "\n"), "\n"))
	if len(parLines) != len(seq) || len(seqLines) != len(seq) {
		t.Fatalf("progress lines: sequential %d, parallel %d, want %d", len(seqLines), len(parLines), len(seq))
	}
	sort.Strings(seqLines)
	sort.Strings(parLines)
	if !reflect.DeepEqual(seqLines, parLines) {
		t.Fatalf("parallel progress lines differ from sequential set")
	}
}

// TestSharedInstanceConcurrentRuns runs many simulations concurrently on
// ONE shared Instance (the expr runner builds per-cell instances; this
// test deliberately shares) and checks same-seed runs agree. With -race
// it verifies the documented read-only contract of taskgraph.Instance
// and the goroutine-safety of sim.Run across independent runs.
func TestSharedInstanceConcurrentRuns(t *testing.T) {
	inst := workload.Matmul2D(15)
	strat := sched.DARTSStrategy(sched.DARTSOptions{LUF: true})
	f := expr.Fig3And4()
	results := make([]*sim.Result, 8)
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := expr.RunOne(inst, strat, f.Platform, f.NsPerOp, int64(i%2), false)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	for i := 2; i < len(results); i++ {
		if results[i] == nil || results[i%2] == nil {
			t.Fatal("missing result")
		}
		if results[i].GFlops != results[i%2].GFlops || results[i].Loads != results[i%2].Loads {
			t.Errorf("run %d diverged from same-seed run %d: %.1f/%d vs %.1f/%d GFlops/loads",
				i, i%2, results[i].GFlops, results[i].Loads, results[i%2].GFlops, results[i%2].Loads)
		}
	}
}

// TestReplicasAggregation pins the replica-averaging semantics: a
// Replicas: 3 run must equal the field-by-field average of the three
// single-seed runs, including the scheduling-cost columns that were
// historically taken from replica 0 only, and the static fields must
// come through unchanged.
func TestReplicasAggregation(t *testing.T) {
	base := func(seed int64) []metrics.Row {
		f := expr.Fig3And4()
		f.Points = f.Points[:1]
		f.Strategies = f.Strategies[:2] // EAGER, DMDAR
		f.Seed = seed
		rows, err := f.Run(expr.RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	singles := [][]metrics.Row{base(1), base(2), base(3)}

	f := expr.Fig3And4()
	f.Points = f.Points[:1]
	f.Strategies = f.Strategies[:2]
	f.Seed = 1
	avg, err := f.Run(expr.RunOptions{Replicas: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(avg) != len(singles[0]) {
		t.Fatalf("rows: %d vs %d", len(avg), len(singles[0]))
	}
	for i, row := range avg {
		want := singles[0][i]
		want.GFlops = (singles[0][i].GFlops + singles[1][i].GFlops + singles[2][i].GFlops) / 3
		want.TransferredMB = (singles[0][i].TransferredMB + singles[1][i].TransferredMB + singles[2][i].TransferredMB) / 3
		want.MakespanMS = (singles[0][i].MakespanMS + singles[1][i].MakespanMS + singles[2][i].MakespanMS) / 3
		want.StaticMS = (singles[0][i].StaticMS + singles[1][i].StaticMS + singles[2][i].StaticMS) / 3
		want.DynamicMS = (singles[0][i].DynamicMS + singles[1][i].DynamicMS + singles[2][i].DynamicMS) / 3
		want.IdleMS = (singles[0][i].IdleMS + singles[1][i].IdleMS + singles[2][i].IdleMS) / 3
		want.ReloadedMB = (singles[0][i].ReloadedMB + singles[1][i].ReloadedMB + singles[2][i].ReloadedMB) / 3
		want.Loads = (singles[0][i].Loads + singles[1][i].Loads + singles[2][i].Loads) / 3
		want.Evictions = (singles[0][i].Evictions + singles[1][i].Evictions + singles[2][i].Evictions) / 3
		if !reflect.DeepEqual(row, want) {
			t.Errorf("row %d: aggregated %+v, want average %+v", i, row, want)
		}
	}
}
