package expr_test

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"memsched/internal/expr"
	"memsched/internal/fault"
	"memsched/internal/metrics"
	"memsched/internal/platform"
	"memsched/internal/sched"
	"memsched/internal/taskgraph"
	"memsched/internal/workload"
)

// testPlan exercises all three fault mechanisms at once.
func testPlan() *fault.Plan {
	return &fault.Plan{
		Seed:      11,
		Dropouts:  []fault.Dropout{{GPU: 1, At: 3 * time.Millisecond}},
		Transient: &fault.Transient{Rate: 0.1, MaxRetries: 4, Backoff: 20 * time.Microsecond},
		Pressures: []fault.Pressure{{GPU: 0, At: 2 * time.Millisecond, Duration: 5 * time.Millisecond, Bytes: 64 << 20}},
	}
}

// TestFaultyWorkersConformance pins faulty-sweep determinism: with the
// same fault plan, a sequential run and an 8-worker run produce
// identical rows. Under -race it doubles as the shared-Strategy check:
// concurrent faulty cells share the Strategy values of the figure while
// each builds its own scheduler (and its own dropout state).
func TestFaultyWorkersConformance(t *testing.T) {
	run := func(workers int) []metrics.Row {
		t.Helper()
		f := expr.Fig6And7()
		f.Points = f.Points[:2]
		rows, err := f.Run(expr.RunOptions{
			Workers:  workers,
			Replicas: 2,
			Faults:   testPlan(),
		})
		if err != nil {
			t.Fatalf("Workers:%d faulty sweep: %v", workers, err)
		}
		return rows
	}
	seq := run(1)
	par := run(8)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("faulty sweep differs across worker counts:\nseq: %+v\npar: %+v", seq, par)
	}
}

// TestFaultInvariantsAllStrategies runs every paper strategy under each
// fault mechanism separately with CheckInvariants on: the recovery
// machinery must produce traces the checker accepts (no dead-GPU use,
// balanced busy spans, fault counters consistent with the trace).
func TestFaultInvariantsAllStrategies(t *testing.T) {
	strategies := []sched.Strategy{
		sched.EagerStrategy(),
		sched.DMDARStrategy(),
		sched.HMetisRStrategy(false),
		sched.MHFPStrategy(false),
		sched.DARTSStrategy(sched.DARTSOptions{LUF: true}),
		sched.WorkStealingStrategy(),
	}
	plans := map[string]*fault.Plan{
		"dropout":   {Dropouts: []fault.Dropout{{GPU: 1, At: 3 * time.Millisecond}}},
		"transient": {Seed: 5, Transient: &fault.Transient{Rate: 0.2, MaxRetries: 4, Backoff: 20 * time.Microsecond}},
		"pressure":  {Pressures: []fault.Pressure{{GPU: 0, At: 2 * time.Millisecond, Duration: 5 * time.Millisecond, Bytes: 64 << 20}}},
		"combined":  testPlan(),
	}
	inst := workload.Matmul2D(12)
	plat := platform.V100(2)
	for name, plan := range plans {
		for _, strat := range strategies {
			res, err := expr.RunOneFaulty(nil, inst, strat, plat, 0, 1, true, plan)
			if err != nil {
				t.Errorf("%s under %s faults: %v", strat.Label, name, err)
				continue
			}
			if res.Faults == nil {
				t.Errorf("%s under %s faults: Result.Faults is nil", strat.Label, name)
			}
		}
	}
}

// TestSweepIsolatesPanicAndCancellation is the harness acceptance test:
// a sweep with one panicking cell and one cancelled cell completes,
// reports both failures with their cell keys, and keeps the rows of the
// healthy cells.
func TestSweepIsolatesPanicAndCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	f := &expr.Figure{
		ID:       "faketest",
		Title:    "panic/cancel isolation",
		Metrics:  []string{"gflops"},
		Platform: platform.V100(2),
		Points: []expr.Point{
			{N: 10, Build: func() *taskgraph.Instance { return workload.Matmul2D(10) }},
			{N: 11, Build: func() *taskgraph.Instance { panic("boom: injected test panic") }},
			{N: 40, Build: func() *taskgraph.Instance {
				// Cancel mid-sweep: this cell's own simulation (big
				// enough to reach the engine's periodic context poll)
				// must abort.
				cancel()
				return workload.Matmul2D(40)
			}},
		},
		Strategies: []sched.Strategy{sched.EagerStrategy()},
		Seed:       1,
	}
	var cells []expr.CellTelemetry
	rows, err := f.Run(expr.RunOptions{
		Workers: 1,
		Context: ctx,
		OnCell:  func(c expr.CellTelemetry) { cells = append(cells, c) },
	})
	if err == nil {
		t.Fatal("sweep with a panicking and a cancelled cell returned nil error")
	}
	var sweepErr *expr.SweepError
	if !errors.As(err, &sweepErr) {
		t.Fatalf("error %T is not a *SweepError: %v", err, err)
	}
	if len(sweepErr.Cells) != 2 {
		t.Fatalf("SweepError has %d cells, want 2 (panic + cancel): %v", len(sweepErr.Cells), sweepErr)
	}
	var sawPanic, sawCancel bool
	for _, ce := range sweepErr.Cells {
		if ce.Figure != "faketest" || ce.Strategy != "EAGER" {
			t.Errorf("cell error missing its key: %+v", ce)
		}
		if errors.Is(ce, context.Canceled) {
			sawCancel = true
			continue
		}
		sawPanic = true
		if len(ce.Stack) == 0 {
			t.Errorf("panicking cell has no stack: %v", ce)
		}
		if got := ce.Error(); !strings.Contains(got, "boom") {
			t.Errorf("panic cell error %q does not carry the panic value", got)
		}
	}
	if !sawPanic || !sawCancel {
		t.Fatalf("want one panic and one cancelled cell, got: %v", sweepErr)
	}
	if !errors.Is(err, context.Canceled) {
		t.Error("SweepError does not unwrap to context.Canceled")
	}
	// The healthy first cell survived and was emitted.
	if len(rows) != 1 || len(cells) != 1 {
		t.Fatalf("rows %d, cells %d, want 1 healthy row each", len(rows), len(cells))
	}
	if rows[0].Workload != "matmul2d(n=10)" {
		t.Errorf("surviving row is %q, want the healthy cell", rows[0].Workload)
	}
}

// TestDegradationDeterministicAcrossWorkers pins the degradation sweep:
// identical rows for any worker count, and a relative-throughput column
// anchored at 1.0 for the fault-free rate.
func TestDegradationDeterministicAcrossWorkers(t *testing.T) {
	opt := expr.DegradationOptions{
		Rates:      []float64{0, 0.2},
		N:          10,
		Strategies: []sched.Strategy{sched.EagerStrategy(), sched.DMDARStrategy()},
		Seed:       1,
	}
	opt.Workers = 1
	seq, err := expr.RunDegradation(opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Workers = 8
	par, err := expr.RunDegradation(opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("Workers:1 and Workers:8 degradation rows differ:\nseq: %+v\npar: %+v", seq, par)
	}
	if len(seq) != 4 {
		t.Fatalf("got %d rows, want 4 (2 strategies x 2 rates)", len(seq))
	}
	for _, r := range seq {
		if r.Rate == 0 && r.RelativeGFlops != 1 {
			t.Errorf("%s at rate 0: relative %.3f, want 1.0", r.Scheduler, r.RelativeGFlops)
		}
		if r.Rate == 0 && (r.TransferRetries != 0 || r.BackoffMS != 0) {
			t.Errorf("%s at rate 0 reports faults: %+v", r.Scheduler, r)
		}
	}
}
