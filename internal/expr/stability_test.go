package expr_test

import (
	"testing"

	"memsched/internal/expr"
	"memsched/internal/platform"
	"memsched/internal/sched"
	"memsched/internal/sim"
	"memsched/internal/workload"
)

// TestSeedStabilityHeadline reproduces the paper's variance statement
// ("Each result is the average of the performance obtained over 10
// iterations. For most of the results, the deviance is less than 2%",
// §V-A): across ten seeds, the DARTS+LUF throughput on a constrained
// headline point stays within 2% of its mean.
func TestSeedStabilityHeadline(t *testing.T) {
	inst := workload.Matmul2D(50)
	plat := platform.V100(2)
	var values []float64
	var sum float64
	for seed := int64(1); seed <= 10; seed++ {
		res, err := expr.RunOne(inst, sched.DARTSStrategy(sched.DARTSOptions{LUF: true}), plat, sim.DefaultNsPerOp, seed, false)
		if err != nil {
			t.Fatal(err)
		}
		values = append(values, res.GFlops)
		sum += res.GFlops
	}
	mean := sum / float64(len(values))
	for i, v := range values {
		dev := (v - mean) / mean
		if dev < -0.02 || dev > 0.02 {
			t.Errorf("seed %d: %.0f GFlop/s deviates %.1f%% from mean %.0f", i+1, v, 100*dev, mean)
		}
	}
	t.Logf("mean %.0f GFlop/s over %d seeds", mean, len(values))
}
