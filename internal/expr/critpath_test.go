package expr_test

import (
	"bytes"
	"testing"

	"memsched/internal/expr"
)

// TestCritPathTelemetryDeterministicWorkers pins the acceptance
// property of the makespan-attribution layer: instrumented sweeps emit
// critical-path blame for every cell, and the full telemetry stream —
// critpath summaries included — is byte-identical between a sequential
// run and an 8-worker run.
func TestCritPathTelemetryDeterministicWorkers(t *testing.T) {
	run := func(workers int) []byte {
		t.Helper()
		f := expr.Fig3And4()
		f.Points = f.Points[:3]
		var out bytes.Buffer
		var cells []expr.CellTelemetry
		_, err := f.Run(expr.RunOptions{
			Workers:      workers,
			TelemetryOut: &out,
			OnCell:       func(c expr.CellTelemetry) { cells = append(cells, c) },
		})
		if err != nil {
			t.Fatalf("Workers:%d sweep: %v", workers, err)
		}
		for _, c := range cells {
			if c.CritPath == nil {
				t.Fatalf("Workers:%d: cell %s/%s missing critpath", workers, c.Workload, c.Scheduler)
			}
			sum := c.CritPath.ComputeMS + c.CritPath.PCIMS + c.CritPath.PeerMS +
				c.CritPath.ReloadMS + c.CritPath.SchedMS + c.CritPath.FaultMS
			if diff := sum - c.CritPath.MakespanMS; diff > 0.01 || diff < -0.01 {
				t.Fatalf("cell %s/%s: blame sums to %.4f, makespan %.4f",
					c.Workload, c.Scheduler, sum, c.CritPath.MakespanMS)
			}
		}
		return out.Bytes()
	}
	seq := run(1)
	par := run(8)
	if !bytes.Equal(seq, par) {
		t.Fatalf("telemetry stream differs across worker counts:\nseq: %s\npar: %s", seq, par)
	}
}

// TestCritPathDoesNotPerturbRows checks attribution is pure
// observation: the rows of an instrumented sweep (traces recorded,
// critpath computed) equal those of a bare sweep.
func TestCritPathDoesNotPerturbRows(t *testing.T) {
	f := expr.Fig3And4()
	f.Points = f.Points[:2]
	bare, err := f.Run(expr.RunOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	instr, err := f.Run(expr.RunOptions{Workers: 1, OnCell: func(expr.CellTelemetry) {}})
	if err != nil {
		t.Fatal(err)
	}
	if len(bare) != len(instr) {
		t.Fatalf("row counts differ: %d vs %d", len(bare), len(instr))
	}
	for i := range bare {
		if bare[i] != instr[i] {
			t.Fatalf("row %d differs:\nbare:  %+v\ninstr: %+v", i, bare[i], instr[i])
		}
	}
}
