package expr_test

import (
	"testing"

	"memsched/internal/expr"
	"memsched/internal/metrics"
)

// shapes_test locks in the qualitative result of every paper figure at
// reduced sweep sizes: who wins, who collapses, and where. These are the
// regression tests for the reproduction itself; run with -short to skip
// them.

// skipIfSlowUnderRace skips the slowest figure sweeps in -short mode and
// under the race detector, where instrumentation makes these
// single-threaded numeric checks 10-20x slower without exercising any
// concurrency they do not already cover; the parallel-runner tests in
// parallel_test.go and the small shape tests stay enabled under -race.
func skipIfSlowUnderRace(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("figure shapes are slow")
	}
	if raceEnabled {
		t.Skip("slow single-threaded sweep; skipped under -race")
	}
}

// runFig executes a figure restricted to its maxN largest retained point
// set and indexes GFlop/s by (workingSet, scheduler).
func runFig(t *testing.T, id string, maxN int) map[float64]map[string]float64 {
	t.Helper()
	f, err := expr.ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := f.Run(expr.RunOptions{MaxN: maxN})
	if err != nil {
		t.Fatal(err)
	}
	out := map[float64]map[string]float64{}
	for _, r := range rows {
		if out[r.WorkingSetMB] == nil {
			out[r.WorkingSetMB] = map[string]float64{}
		}
		out[r.WorkingSetMB][r.Scheduler] = r.GFlops
	}
	return out
}

// lastPoints returns the k largest working-set keys in ascending order.
func lastPoints(cells map[float64]map[string]float64, k int) []float64 {
	keys := make([]float64, 0, len(cells))
	for ws := range cells {
		keys = append(keys, ws)
	}
	for i := 0; i < len(keys); i++ {
		for j := i + 1; j < len(keys); j++ {
			if keys[j] < keys[i] {
				keys[i], keys[j] = keys[j], keys[i]
			}
		}
	}
	if len(keys) > k {
		keys = keys[len(keys)-k:]
	}
	return keys
}

func requireOrder(t *testing.T, cells map[string]float64, ws float64, faster, slower string, margin float64) {
	t.Helper()
	f, okF := cells[faster]
	s, okS := cells[slower]
	if !okF || !okS {
		t.Fatalf("ws %.0f: missing %q or %q in %v", ws, faster, slower, cells)
	}
	if f < s*margin {
		t.Errorf("ws %.0f: %s (%.0f) should beat %s (%.0f) by factor %.2f", ws, faster, f, slower, s, margin)
	}
}

func TestShapeFig3(t *testing.T) {
	if testing.Short() {
		t.Skip("figure shapes are slow")
	}
	cells := runFig(t, "fig3", 85)
	for _, ws := range lastPoints(cells, 2) {
		c := cells[ws]
		requireOrder(t, c, ws, "DARTS+LUF", "EAGER", 1.8)         // EAGER pathology
		requireOrder(t, c, ws, "DARTS+LUF", "DMDAR", 1.0)         // LUF at least matches DMDAR
		requireOrder(t, c, ws, "mHFP no sched. time", "mHFP", 10) // packing cost prohibitive
	}
}

func TestShapeFig5(t *testing.T) {
	skipIfSlowUnderRace(t)
	cells := runFig(t, "fig5", 85)
	for _, ws := range lastPoints(cells, 2) {
		c := cells[ws]
		requireOrder(t, c, ws, "DARTS+LUF", "EAGER", 3)
		requireOrder(t, c, ws, "mHFP", "hMETIS+R", 1.0) // packing beats partitioning in pure simulation
	}
}

func TestShapeFig6(t *testing.T) {
	skipIfSlowUnderRace(t)
	cells := runFig(t, "fig6", 85)
	for _, ws := range lastPoints(cells, 2) {
		c := cells[ws]
		requireOrder(t, c, ws, "DARTS+LUF", "DMDAR", 1.0)
		requireOrder(t, c, ws, "hMETIS+R no part. time", "hMETIS+R", 1.05) // partition cost visible
		requireOrder(t, c, ws, "DMDAR", "EAGER", 2)
	}
}

func TestShapeFig8(t *testing.T) {
	skipIfSlowUnderRace(t)
	cells := runFig(t, "fig8", 110)
	for _, ws := range lastPoints(cells, 2) {
		c := cells[ws]
		requireOrder(t, c, ws, "DARTS+LUF", "EAGER", 3)
		requireOrder(t, c, ws, "DARTS+LUF", "hMETIS+R", 1.5)
	}
}

func TestShapeFig9(t *testing.T) {
	skipIfSlowUnderRace(t)
	cells := runFig(t, "fig9", 60)
	for _, ws := range lastPoints(cells, 2) {
		c := cells[ws]
		// Randomized order: DMDAR and hMETIS+R are heavily impacted,
		// DARTS+LUF barely (the paper's central Figure 9 claim).
		requireOrder(t, c, ws, "DARTS+LUF", "DMDAR", 1.25)
		requireOrder(t, c, ws, "DARTS+LUF", "hMETIS+R no part. time", 1.25)
		requireOrder(t, c, ws, "DARTS+LUF", "EAGER", 4)
	}
}

func TestShapeFig10(t *testing.T) {
	skipIfSlowUnderRace(t)
	cells := runFig(t, "fig10", 27)
	for _, ws := range lastPoints(cells, 1) {
		c := cells[ws]
		requireOrder(t, c, ws, "DARTS+LUF-3inputs", "DMDAR", 1.3)
		requireOrder(t, c, ws, "DARTS+LUF-3inputs", "DARTS+LUF", 1.0)
	}
}

func TestShapeFig11(t *testing.T) {
	skipIfSlowUnderRace(t)
	cells := runFig(t, "fig11", 40)
	for _, ws := range lastPoints(cells, 1) {
		c := cells[ws]
		// OPTI rescues DARTS on huge task counts; hMETIS pays its
		// partitioning dearly.
		requireOrder(t, c, ws, "DARTS+LUF+OPTI-3inputs", "hMETIS+R no part. time", 1.2)
		requireOrder(t, c, ws, "DARTS+LUF+OPTI-3inputs", "DMDAR", 1.2)
		requireOrder(t, c, ws, "hMETIS+R no part. time", "hMETIS+R", 1.5)
	}
}

func TestShapeFig12(t *testing.T) {
	if testing.Short() {
		t.Skip("figure shapes are slow")
	}
	cells := runFig(t, "fig12", 250)
	for _, ws := range lastPoints(cells, 1) {
		c := cells[ws]
		requireOrder(t, c, ws, "DARTS+LUF", "DMDAR", 1.15)
		requireOrder(t, c, ws, "DARTS+LUF", "EAGER", 1.4)
	}
}

func TestShapeFig13(t *testing.T) {
	if testing.Short() {
		t.Skip("figure shapes are slow")
	}
	cells := runFig(t, "fig13", 250)
	for _, ws := range lastPoints(cells, 1) {
		c := cells[ws]
		// Without memory pressure everyone improves; DARTS+LUF and
		// hMETIS+R contend for the top, DMDAR/EAGER lag.
		requireOrder(t, c, ws, "DARTS+LUF", "DMDAR", 1.2)
		requireOrder(t, c, ws, "hMETIS+R", "EAGER", 1.3)
	}
}

// TestShapeFig4Transfers locks the transfer-volume ordering of Figure 4.
func TestShapeFig4Transfers(t *testing.T) {
	if testing.Short() {
		t.Skip("figure shapes are slow")
	}
	f, err := expr.ByID("fig4")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := f.Run(expr.RunOptions{MaxN: 85})
	if err != nil {
		t.Fatal(err)
	}
	moved := map[float64]map[string]float64{}
	var maxWS float64
	for _, r := range rows {
		if moved[r.WorkingSetMB] == nil {
			moved[r.WorkingSetMB] = map[string]float64{}
		}
		moved[r.WorkingSetMB][r.Scheduler] = r.TransferredMB
		if r.WorkingSetMB > maxWS {
			maxWS = r.WorkingSetMB
		}
	}
	c := moved[maxWS]
	if c["EAGER"] < 3*c["DARTS+LUF"] {
		t.Errorf("EAGER moved %.0f MB, DARTS+LUF %.0f: pathological reloads missing", c["EAGER"], c["DARTS+LUF"])
	}
	if c["mHFP no sched. time"] > c["EAGER"] {
		t.Errorf("mHFP moved more than EAGER")
	}
	_ = metrics.Row{}
}
