package expr

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"sync"
	"time"

	"memsched/internal/fault"
	"memsched/internal/platform"
	"memsched/internal/sched"
	"memsched/internal/workload"
)

// DegradationOptions configures the fault-degradation sweep: one fixed
// workload, a set of strategies, and a sweep over transient transfer
// failure rates (optionally combined with fixed dropouts), measuring how
// gracefully each strategy's throughput degrades as the machine gets
// less reliable.
type DegradationOptions struct {
	// Rates are the swept per-attempt transfer failure rates. A 0 rate
	// (the fault-free baseline every other rate is normalized against)
	// is prepended when absent. Nil selects DefaultDegradationRates.
	Rates []float64
	// MaxRetries and Backoff parameterize the transient failures
	// (0 selects the fault package defaults).
	MaxRetries int
	Backoff    time.Duration
	// Dropouts, when non-empty, additionally injects the same permanent
	// GPU losses into every faulty cell (rate 0 stays fault-free).
	Dropouts []fault.Dropout
	// N is the 2D-product grid edge (0 selects 30: past both memory
	// thresholds on the default platform, small enough for CI).
	N int
	// Platform is the simulated machine (zero value selects V100(2)).
	Platform platform.Platform
	// Strategies are the compared schedulers (nil selects a default
	// panel of one strategy per family).
	Strategies []sched.Strategy
	// Seed feeds the simulation and (xored by the engine) the fault
	// draws.
	Seed int64
	// Workers bounds concurrent cells (0 = GOMAXPROCS). Cells are
	// independent deterministic simulations, so results are identical
	// for any worker count.
	Workers int
	// Context, when non-nil, cancels the sweep like RunOptions.Context.
	Context context.Context
	// Progress, when non-nil, receives one line per completed cell.
	Progress io.Writer
}

// DefaultDegradationRates sweeps from fault-free to one transfer in
// three failing per attempt.
var DefaultDegradationRates = []float64{0, 0.01, 0.05, 0.1, 0.2, 0.3}

// DegradationRow is one cell of the degradation sweep: one strategy at
// one failure rate.
type DegradationRow struct {
	// Workload and Scheduler identify the cell.
	Workload  string `json:"workload"`
	Scheduler string `json:"scheduler"`
	// Rate is the per-attempt transfer failure rate of this cell.
	Rate float64 `json:"rate"`
	// GFlops and MakespanMS are the cell's absolute results.
	GFlops     float64 `json:"gflops"`
	MakespanMS float64 `json:"makespan_ms"`
	// RelativeGFlops is GFlops divided by the same strategy's rate-0
	// (fault-free) GFlops: 1.0 means no degradation.
	RelativeGFlops float64 `json:"relative_gflops"`
	// TransferRetries and BackoffMS quantify the injected transient
	// faults; KilledTasks, RequeuedTasks and RecoveryMS the dropout
	// recovery (all zero at rate 0 with no dropouts).
	TransferRetries int     `json:"transfer_retries"`
	BackoffMS       float64 `json:"backoff_ms"`
	KilledTasks     int     `json:"killed_tasks"`
	RequeuedTasks   int     `json:"requeued_tasks"`
	RecoveryMS      float64 `json:"recovery_ms"`
}

// RunDegradation executes the degradation sweep and returns one row per
// (strategy, rate), strategies in panel order and rates ascending.
// Failed cells are reported through a *SweepError alongside the rows
// that did complete, like Figure.Run.
func RunDegradation(opt DegradationOptions) ([]DegradationRow, error) {
	rates := append([]float64(nil), opt.Rates...)
	if len(rates) == 0 {
		rates = append(rates, DefaultDegradationRates...)
	}
	sort.Float64s(rates)
	if rates[0] != 0 {
		rates = append([]float64{0}, rates...)
	}
	maxRetries := opt.MaxRetries
	if maxRetries == 0 {
		maxRetries = fault.DefaultMaxRetries
	}
	backoff := opt.Backoff
	if backoff == 0 {
		// Deliberately harsher than fault.DefaultBackoff (20µs): at the
		// parse default a full retry burst vanishes inside a 250ms
		// makespan and every curve reads 100%. 1ms per first retry makes
		// the degradation measurable without dominating the schedule.
		backoff = time.Millisecond
	}
	n := opt.N
	if n == 0 {
		n = 30
	}
	plat := opt.Platform
	if plat.NumGPUs == 0 {
		plat = platform.V100(2)
	}
	strategies := opt.Strategies
	if strategies == nil {
		strategies = []sched.Strategy{
			sched.EagerStrategy(),
			sched.DMDARStrategy(),
			sched.DARTSStrategy(sched.DARTSOptions{LUF: true}),
			sched.MHFPStrategy(true),
			sched.WorkStealingStrategy(),
		}
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	numJobs := len(strategies) * len(rates)
	if workers > numJobs {
		workers = numJobs
	}

	rows := make([]DegradationRow, numJobs)
	rowOK := make([]bool, numJobs)
	cellErrs := make([]*CellError, numJobs)
	var progMu sync.Mutex

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				si, ri := j/len(rates), j%len(rates)
				strat, rate := strategies[si], rates[ri]
				row, cellErr := runDegradationCell(opt.Context, strat, rate, maxRetries,
					backoff, opt.Dropouts, n, plat, opt.Seed)
				if cellErr != nil {
					cellErrs[j] = cellErr
					continue
				}
				rows[j], rowOK[j] = row, true
				if opt.Progress != nil {
					progMu.Lock()
					fmt.Fprintf(opt.Progress, "degradation  rate=%-5g %-28s %8.0f GFlop/s  %6d retries\n",
						rate, strat.Label, row.GFlops, row.TransferRetries)
					progMu.Unlock()
				}
			}
		}()
	}
	for j := 0; j < numJobs; j++ {
		jobs <- j
	}
	close(jobs)
	wg.Wait()

	// Normalize each strategy against its own fault-free baseline
	// (rates[0] == 0 by construction) and drop rows whose baseline or
	// self failed.
	var out []DegradationRow
	var sweepErr *SweepError
	for _, ce := range cellErrs {
		if ce != nil {
			if sweepErr == nil {
				sweepErr = &SweepError{Total: numJobs}
			}
			sweepErr.Cells = append(sweepErr.Cells, ce)
		}
	}
	for si := range strategies {
		base := rows[si*len(rates)]
		for ri := range rates {
			j := si*len(rates) + ri
			if !rowOK[j] {
				continue
			}
			row := rows[j]
			if rowOK[si*len(rates)] && base.GFlops > 0 {
				row.RelativeGFlops = row.GFlops / base.GFlops
			}
			out = append(out, row)
		}
	}
	if sweepErr != nil {
		return out, sweepErr
	}
	return out, nil
}

// runDegradationCell simulates one (strategy, rate) cell, with the same
// panic confinement as Figure.Run.
func runDegradationCell(ctx context.Context, strat sched.Strategy, rate float64, maxRetries int, backoff time.Duration, drops []fault.Dropout, n int, plat platform.Platform, seed int64) (row DegradationRow, cellErr *CellError) {
	fail := func(err error, stack []byte) *CellError {
		return &CellError{Figure: "degradation", Workload: fmt.Sprintf("matmul2d-%d", n),
			Strategy: strat.Label, Err: err, Stack: stack}
	}
	defer func() {
		if r := recover(); r != nil {
			cellErr = fail(fmt.Errorf("panic at rate %g: %v", rate, r), debug.Stack())
		}
	}()
	if ctx != nil && ctx.Err() != nil {
		return row, fail(ctx.Err(), nil)
	}
	var plan *fault.Plan
	if rate > 0 {
		plan = &fault.Plan{
			Seed:      seed,
			Dropouts:  drops,
			Transient: &fault.Transient{Rate: rate, MaxRetries: maxRetries, Backoff: backoff},
		}
	}
	inst := workload.Matmul2D(n)
	res, err := runOne(ctx, inst, strat, plat, 0, seed, true, plan, nil, false)
	if err != nil {
		return row, fail(fmt.Errorf("rate %g: %w", rate, err), nil)
	}
	row = DegradationRow{
		Workload:   inst.Name(),
		Scheduler:  res.SchedulerName,
		Rate:       rate,
		GFlops:     res.GFlops,
		MakespanMS: float64(res.Makespan.Microseconds()) / 1000,
	}
	if fs := res.Faults; fs != nil {
		row.TransferRetries = fs.TransferRetries
		row.BackoffMS = float64(fs.BackoffTime.Microseconds()) / 1000
		row.KilledTasks = fs.KilledTasks
		row.RequeuedTasks = fs.RequeuedTasks
		row.RecoveryMS = float64(fs.RecoveryTime.Microseconds()) / 1000
	}
	return row, nil
}

// WriteDegradationCSV writes the degradation rows with a header, in the
// same spirit as metrics.WriteCSV.
func WriteDegradationCSV(w io.Writer, rows []DegradationRow) error {
	cw := csv.NewWriter(w)
	header := []string{"workload", "scheduler", "rate", "gflops", "makespan_ms",
		"relative_gflops", "transfer_retries", "backoff_ms",
		"killed_tasks", "requeued_tasks", "recovery_ms"}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }
	for _, r := range rows {
		rec := []string{
			r.Workload, r.Scheduler,
			strconv.FormatFloat(r.Rate, 'g', -1, 64),
			f(r.GFlops), f(r.MakespanMS), f(r.RelativeGFlops),
			strconv.Itoa(r.TransferRetries), f(r.BackoffMS),
			strconv.Itoa(r.KilledTasks), strconv.Itoa(r.RequeuedTasks), f(r.RecoveryMS),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// FormatDegradationTable renders the rows as an aligned text table, one
// block per strategy with rates ascending.
func FormatDegradationTable(rows []DegradationRow) string {
	var b []byte
	b = append(b, fmt.Sprintf("%-28s %6s %10s %9s %9s %8s %7s %7s %9s\n",
		"scheduler", "rate", "GFlop/s", "relative", "makespan", "retries", "killed", "requeue", "recovery")...)
	for _, r := range rows {
		b = append(b, fmt.Sprintf("%-28s %6g %10.0f %8.0f%% %7.1fms %8d %7d %7d %7.1fms\n",
			r.Scheduler, r.Rate, r.GFlops, 100*r.RelativeGFlops, r.MakespanMS,
			r.TransferRetries, r.KilledTasks, r.RequeuedTasks, r.RecoveryMS)...)
	}
	return string(b)
}
