package expr_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"memsched/internal/expr"
	"memsched/internal/metrics"
	"memsched/internal/sched"
)

// TestTelemetryOutEmitsOneJSONLinePerCell checks the -telemetry stream:
// one JSON object per (point, strategy) cell, in sweep order, each
// joining the figure row with the engine telemetry of replica 0.
func TestTelemetryOutEmitsOneJSONLinePerCell(t *testing.T) {
	f := expr.Fig3And4()
	f.Points = f.Points[:2]
	f.Strategies = f.Strategies[:2]
	var out bytes.Buffer
	rows, err := f.Run(expr.RunOptions{Replicas: 2, TelemetryOut: &out})
	if err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(&out)
	var cells []expr.CellTelemetry
	for dec.More() {
		var c expr.CellTelemetry
		if err := dec.Decode(&c); err != nil {
			t.Fatal(err)
		}
		cells = append(cells, c)
	}
	if len(cells) != len(rows) {
		t.Fatalf("%d telemetry lines for %d rows", len(cells), len(rows))
	}
	for i, c := range cells {
		if c.Row != rows[i] {
			t.Errorf("line %d row mismatch: %+v vs %+v", i, c.Row, rows[i])
		}
		if c.Telemetry == nil {
			t.Fatalf("line %d missing telemetry", i)
		}
		if len(c.Telemetry.GPU) != rows[i].GPUs {
			t.Errorf("line %d: %d GPU records for %d GPUs", i, len(c.Telemetry.GPU), rows[i].GPUs)
		}
		if c.Telemetry.BusBusy <= 0 {
			t.Errorf("line %d: bus never busy", i)
		}
	}
	// Rows must carry the telemetry-derived columns.
	for i, r := range rows {
		if r.IdleMS < 0 {
			t.Errorf("row %d: negative idle", i)
		}
	}
}

// TestOnCellMatchesTelemetryOut pins that the typed OnCell callback and
// the JSONL stream carry the same records in the same (sweep) order, and
// that decision-reporting strategies come with a decision digest.
func TestOnCellMatchesTelemetryOut(t *testing.T) {
	f := expr.Fig3And4()
	f.Points = f.Points[:2]
	f.Strategies = []sched.Strategy{
		sched.DMDARStrategy(),
		sched.DARTSStrategy(sched.DARTSOptions{LUF: true}),
	}
	var out bytes.Buffer
	var cells []expr.CellTelemetry
	rows, err := f.Run(expr.RunOptions{
		TelemetryOut: &out,
		OnCell:       func(c expr.CellTelemetry) { cells = append(cells, c) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(rows) {
		t.Fatalf("%d cells for %d rows", len(cells), len(rows))
	}
	dec := json.NewDecoder(&out)
	for i := range cells {
		var fromJSON expr.CellTelemetry
		if err := dec.Decode(&fromJSON); err != nil {
			t.Fatal(err)
		}
		if fromJSON.Row != cells[i].Row {
			t.Errorf("cell %d: JSONL row %+v vs OnCell row %+v", i, fromJSON.Row, cells[i].Row)
		}
		if cells[i].Row != rows[i] {
			t.Errorf("cell %d out of sweep order", i)
		}
		if cells[i].Decisions == nil {
			t.Fatalf("cell %d: no decision digest", i)
		}
		switch cells[i].Scheduler {
		case "DMDAR":
			if n := cells[i].Decisions.Total(); n != 0 {
				t.Errorf("cell %d: DMDAR reported %d decisions", i, n)
			}
		default: // DARTS+LUF decides every load
			if cells[i].Decisions.SelectData == 0 && cells[i].Decisions.Fallbacks == 0 {
				t.Errorf("cell %d: DARTS digest empty: %+v", i, cells[i].Decisions)
			}
		}
	}
}

// TestDigestsDoNotPerturbRows pins that attaching digest recorders (the
// TelemetryOut/OnCell path) is pure observation: the rows are identical
// to an unobserved run's.
func TestDigestsDoNotPerturbRows(t *testing.T) {
	build := func() *expr.Figure {
		f := expr.Fig3And4()
		f.Points = f.Points[:2]
		f.Strategies = f.Strategies[2:4] // DARTS and DARTS+LUF
		return f
	}
	plain, err := build().Run(expr.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	observed, err := build().Run(expr.RunOptions{OnCell: func(expr.CellTelemetry) {}})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(observed) {
		t.Fatalf("row counts differ: %d vs %d", len(plain), len(observed))
	}
	for i := range plain {
		if plain[i] != observed[i] {
			t.Fatalf("row %d perturbed by digest recording:\n%+v\n%+v", i, plain[i], observed[i])
		}
	}
}

// TestRunUsesPrivateGauges checks RunOptions.Gauges isolation: counts
// land on the provided instance, not the shared default.
func TestRunUsesPrivateGauges(t *testing.T) {
	f := expr.Fig3And4()
	f.Points = f.Points[:1]
	f.Strategies = f.Strategies[:1]
	var g metrics.Gauges
	before := expr.Gauges.CellsCompleted.Value()
	if _, err := f.Run(expr.RunOptions{Gauges: &g}); err != nil {
		t.Fatal(err)
	}
	if g.CellsCompleted.Value() != 1 {
		t.Fatalf("private gauge = %d, want 1", g.CellsCompleted.Value())
	}
	if g.SimEvents.Value() == 0 {
		t.Fatal("private gauge saw no events")
	}
	if expr.Gauges.CellsCompleted.Value() != before {
		t.Fatal("default gauges were touched despite override")
	}
}
