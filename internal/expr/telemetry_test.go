package expr_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"memsched/internal/expr"
)

// TestTelemetryOutEmitsOneJSONLinePerCell checks the -telemetry stream:
// one JSON object per (point, strategy) cell, in sweep order, each
// joining the figure row with the engine telemetry of replica 0.
func TestTelemetryOutEmitsOneJSONLinePerCell(t *testing.T) {
	f := expr.Fig3And4()
	f.Points = f.Points[:2]
	f.Strategies = f.Strategies[:2]
	var out bytes.Buffer
	rows, err := f.Run(expr.RunOptions{Replicas: 2, TelemetryOut: &out})
	if err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(&out)
	var cells []expr.CellTelemetry
	for dec.More() {
		var c expr.CellTelemetry
		if err := dec.Decode(&c); err != nil {
			t.Fatal(err)
		}
		cells = append(cells, c)
	}
	if len(cells) != len(rows) {
		t.Fatalf("%d telemetry lines for %d rows", len(cells), len(rows))
	}
	for i, c := range cells {
		if c.Row != rows[i] {
			t.Errorf("line %d row mismatch: %+v vs %+v", i, c.Row, rows[i])
		}
		if c.Telemetry == nil {
			t.Fatalf("line %d missing telemetry", i)
		}
		if len(c.Telemetry.GPU) != rows[i].GPUs {
			t.Errorf("line %d: %d GPU records for %d GPUs", i, len(c.Telemetry.GPU), rows[i].GPUs)
		}
		if c.Telemetry.BusBusy <= 0 {
			t.Errorf("line %d: bus never busy", i)
		}
	}
	// Rows must carry the telemetry-derived columns.
	for i, r := range rows {
		if r.IdleMS < 0 {
			t.Errorf("row %d: negative idle", i)
		}
	}
}
