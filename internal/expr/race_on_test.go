//go:build race

package expr_test

// raceEnabled reports whether this test binary was built with the race
// detector. The slow single-threaded shape checks skip themselves under
// -race (see skipIfSlowUnderRace): race instrumentation multiplies their
// runtime past the package timeout without adding coverage, while the
// fast parallel-runner tests keep exercising every concurrent path.
const raceEnabled = true
