package expr

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// checkpointVersion is the journal format version; bump on incompatible
// record changes so a resume against an old journal fails loudly instead
// of silently replaying stale cells.
const checkpointVersion = 1

// checkpointHeader is the first line of every journal: the format
// version plus the sweep configuration fingerprint. A resume against a
// journal written under a different configuration is rejected, because
// its cells would not be byte-identical to what the current run would
// compute.
type checkpointHeader struct {
	Version int    `json:"checkpoint_version"`
	Config  string `json:"config"`
}

// checkpointRecord is one completed (point, strategy) row: the cell key
// plus the full CellTelemetry (row, telemetry, decision digest, fault
// stats), so a resumed run can replay CSV, tables and telemetry JSONL
// byte-identically.
type checkpointRecord struct {
	Key  string        `json:"key"`
	Cell CellTelemetry `json:"cell"`
}

// Checkpoint is a crash-safe sweep journal: an append-only JSONL file
// holding one record per completed (point, strategy) row, fsync'd after
// every record. Opening an existing journal loads the completed cells so
// Run can skip them; because every cell is an independent deterministic
// simulation, a resumed sweep produces output byte-identical to an
// uninterrupted one (see TestCheckpointResumeByteIdentical).
//
// The file survives SIGKILL mid-write: at most the final line is torn,
// and Open tolerates (and truncates away on the next append) a torn
// tail. A torn line anywhere else means real corruption and is rejected.
//
// A Checkpoint is safe for concurrent use by the sweep workers of
// multiple figures; keys embed the figure ID so one journal can back a
// whole multi-figure paperbench run.
type Checkpoint struct {
	mu       sync.Mutex
	f        *os.File
	path     string
	done     map[string]CellTelemetry
	restored int // cells loaded from an existing journal
	firstErr error
}

// checkpointKey names one (figure, point, strategy) row. It uses the
// sweep point's N rather than the built instance's name so lookups need
// no instance construction.
func checkpointKey(figID string, n int, strategy string) string {
	return fmt.Sprintf("%s|N=%d|%s", figID, n, strategy)
}

// OpenCheckpoint opens or creates the sweep journal at path. config is
// the caller's fingerprint of everything that affects cell results or
// output (sweep trim flags, replicas, fault plan, telemetry shape); an
// existing journal with a different fingerprint is rejected.
func OpenCheckpoint(path, config string) (*Checkpoint, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("expr: checkpoint: %w", err)
	}
	c := &Checkpoint{f: f, path: path, done: make(map[string]CellTelemetry)}
	keep, err := c.load(config)
	if err != nil {
		f.Close()
		return nil, err
	}
	// Drop the torn tail (if any) so appends start on a line boundary,
	// and make sure a fresh journal's header is durable before any cell
	// work is invested against it.
	if err := f.Truncate(keep); err != nil {
		f.Close()
		return nil, fmt.Errorf("expr: checkpoint %s: %w", path, err)
	}
	if _, err := f.Seek(keep, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("expr: checkpoint %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("expr: checkpoint %s: %w", path, err)
	}
	return c, nil
}

// load reads the journal, verifying the header (writing one into an
// empty file) and collecting the completed cells. It returns the byte
// offset of the end of the last intact line.
func (c *Checkpoint) load(config string) (keep int64, err error) {
	st, err := c.f.Stat()
	if err != nil {
		return 0, fmt.Errorf("expr: checkpoint %s: %w", c.path, err)
	}
	if st.Size() == 0 {
		hdr, err := json.Marshal(checkpointHeader{Version: checkpointVersion, Config: config})
		if err != nil {
			return 0, err
		}
		hdr = append(hdr, '\n')
		if _, err := c.f.Write(hdr); err != nil {
			return 0, fmt.Errorf("expr: checkpoint %s: %w", c.path, err)
		}
		return int64(len(hdr)), nil
	}

	sc := bufio.NewScanner(c.f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	var off int64
	lineNo := 0
	for sc.Scan() {
		line := sc.Bytes()
		lineLen := int64(len(line)) + 1 // +1 for the newline Scan strips
		whole := off+lineLen <= st.Size()
		lineNo++
		if lineNo == 1 {
			var hdr checkpointHeader
			if err := json.Unmarshal(line, &hdr); err != nil || !whole {
				return 0, fmt.Errorf("expr: checkpoint %s: corrupt header line", c.path)
			}
			if hdr.Version != checkpointVersion {
				return 0, fmt.Errorf("expr: checkpoint %s: version %d, want %d",
					c.path, hdr.Version, checkpointVersion)
			}
			if hdr.Config != config {
				return 0, fmt.Errorf("expr: checkpoint %s was written under a different configuration\n  journal: %s\n  current: %s\ndelete the journal (or rerun with the original flags) to proceed",
					c.path, hdr.Config, config)
			}
			off += lineLen
			continue
		}
		if !whole {
			// Unterminated final line: the crash landed mid-write. Drop it
			// even if its prefix happens to parse — appending after an
			// unterminated line would corrupt the journal — and let the
			// cell be recomputed.
			return off, nil
		}
		var rec checkpointRecord
		if err := json.Unmarshal(line, &rec); err != nil || rec.Key == "" {
			return 0, fmt.Errorf("expr: checkpoint %s: corrupt record on line %d", c.path, lineNo)
		}
		c.done[rec.Key] = rec.Cell
		c.restored++
		off += lineLen
	}
	if err := sc.Err(); err != nil {
		return 0, fmt.Errorf("expr: checkpoint %s: %w", c.path, err)
	}
	return off, nil
}

// Lookup returns the journaled cell for key, if any.
func (c *Checkpoint) Lookup(key string) (CellTelemetry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cell, ok := c.done[key]
	return cell, ok
}

// Add journals one completed cell: the record is appended as a single
// JSON line and fsync'd before Add returns, so a SIGKILL immediately
// after never loses it. Errors are sticky (see Err); the first one is
// also returned.
func (c *Checkpoint) Add(key string, cell CellTelemetry) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.done[key]; ok {
		return c.firstErr
	}
	line, err := json.Marshal(checkpointRecord{Key: key, Cell: cell})
	if err == nil {
		_, err = c.f.Write(append(line, '\n'))
	}
	if err == nil {
		err = c.f.Sync()
	}
	if err != nil {
		err = fmt.Errorf("expr: checkpoint %s: %w", c.path, err)
		if c.firstErr == nil {
			c.firstErr = err
		}
		return err
	}
	c.done[key] = cell
	return c.firstErr
}

// Len returns the number of completed cells the journal holds.
func (c *Checkpoint) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.done)
}

// Restored returns how many cells were loaded from the pre-existing
// journal (as opposed to added by this process).
func (c *Checkpoint) Restored() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.restored
}

// Path returns the journal file path.
func (c *Checkpoint) Path() string { return c.path }

// Err returns the first append failure, if any. Run surfaces it at the
// end of the sweep so a journal on a full disk fails the run instead of
// silently losing durability.
func (c *Checkpoint) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.firstErr
}

// Close syncs and closes the journal file.
func (c *Checkpoint) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return nil
	}
	err := c.f.Sync()
	if cerr := c.f.Close(); err == nil {
		err = cerr
	}
	c.f = nil
	return err
}
