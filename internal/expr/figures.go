package expr

import (
	"fmt"

	"memsched/internal/platform"
	"memsched/internal/sched"
	"memsched/internal/sim"
	"memsched/internal/taskgraph"
	"memsched/internal/workload"
)

// Sweep sizes. The paper sweeps the 2D product from 5x5 to 300x300 tasks
// (140 MB to 8400 MB); we cap the default sweeps where the shapes are
// established (both memory thresholds crossed) to keep full harness runs
// in minutes. cmd/paperbench accepts -maxn to extend them.
var (
	ns2D1GPU   = []int{5, 10, 17, 25, 34, 42, 50, 68, 85, 100, 120, 150}
	ns2D2GPU   = []int{5, 10, 17, 25, 34, 42, 50, 68, 85, 100, 120, 150}
	ns2D4GPU   = []int{10, 25, 42, 60, 85, 110, 135, 150, 175, 200}
	ns2DRand   = []int{5, 10, 17, 25, 34, 42, 50, 60}
	ns3D       = []int{8, 12, 16, 20, 24, 27, 30}
	nsChol     = []int{10, 16, 24, 32, 40, 48}
	nsSparse   = []int{50, 100, 150, 200, 250, 300, 340}
	sparseSeed = int64(42)
)

func points2D(ns []int) []Point {
	pts := make([]Point, len(ns))
	for i, n := range ns {
		n := n
		pts[i] = Point{N: n, Build: func() *taskgraph.Instance { return workload.Matmul2D(n) }}
	}
	return pts
}

func pointsRand2D(ns []int) []Point {
	pts := make([]Point, len(ns))
	for i, n := range ns {
		n := n
		pts[i] = Point{N: n, Build: func() *taskgraph.Instance { return workload.Matmul2DRandomized(n, int64(n)) }}
	}
	return pts
}

func points3D(ns []int) []Point {
	pts := make([]Point, len(ns))
	for i, n := range ns {
		n := n
		pts[i] = Point{N: n, Build: func() *taskgraph.Instance { return workload.Matmul3D(n) }}
	}
	return pts
}

func pointsCholesky(ns []int) []Point {
	pts := make([]Point, len(ns))
	for i, n := range ns {
		n := n
		pts[i] = Point{N: n, Build: func() *taskgraph.Instance { return workload.Cholesky(n) }}
	}
	return pts
}

func pointsSparse(ns []int) []Point {
	pts := make([]Point, len(ns))
	for i, n := range ns {
		n := n
		pts[i] = Point{N: n, Build: func() *taskgraph.Instance {
			return workload.Sparse2D(n, workload.DefaultSparseKeep, sparseSeed)
		}}
	}
	return pts
}

// Fig3And4 is the single-GPU 2D matrix multiplication experiment: the
// same runs produce Figure 3 (GFlop/s) and Figure 4 (data transfers).
func Fig3And4() *Figure {
	return &Figure{
		ID:       "fig3+4",
		Title:    "2D matrix multiplication, 1 Tesla V100 GPU (Figures 3 and 4)",
		Metrics:  []string{"gflops", "transfers"},
		Platform: platform.V100(1),
		NsPerOp:  sim.DefaultNsPerOp,
		Points:   points2D(ns2D1GPU),
		Strategies: []sched.Strategy{
			sched.EagerStrategy(),
			sched.DMDARStrategy(),
			sched.DARTSStrategy(sched.DARTSOptions{}),
			sched.DARTSStrategy(sched.DARTSOptions{LUF: true}),
			sched.MHFPStrategy(true),
			sched.MHFPStrategy(false),
		},
		Seed: 1,
	}
}

// Fig5 is the 2-GPU 2D product in pure simulation (scheduling cost
// ignored), as the paper's SimGrid runs.
func Fig5() *Figure {
	return &Figure{
		ID:       "fig5",
		Title:    "2D matrix multiplication, 2 GPUs, simulation without scheduling cost (Figure 5)",
		Metrics:  []string{"gflops"},
		Platform: platform.V100(2),
		NsPerOp:  0,
		Points:   points2D(ns2D2GPU),
		Strategies: []sched.Strategy{
			sched.EagerStrategy(),
			sched.DMDARStrategy(),
			sched.HMetisRStrategy(true),
			sched.MHFPStrategy(true),
			sched.DARTSStrategy(sched.DARTSOptions{}),
			sched.DARTSStrategy(sched.DARTSOptions{LUF: true}),
		},
		Seed: 1,
	}
}

// Fig6And7 is the 2-GPU 2D product with scheduling costs charged: the same
// runs produce Figure 6 (GFlop/s) and Figure 7 (data transfers).
func Fig6And7() *Figure {
	return &Figure{
		ID:       "fig6+7",
		Title:    "2D matrix multiplication, 2 Tesla V100 GPUs (Figures 6 and 7)",
		Metrics:  []string{"gflops", "transfers"},
		Platform: platform.V100(2),
		NsPerOp:  sim.DefaultNsPerOp,
		Points:   points2D(ns2D2GPU),
		Strategies: []sched.Strategy{
			sched.EagerStrategy(),
			sched.DMDARStrategy(),
			sched.HMetisRStrategy(true),
			sched.HMetisRStrategy(false),
			sched.DARTSStrategy(sched.DARTSOptions{}),
			sched.DARTSStrategy(sched.DARTSOptions{LUF: true}),
		},
		Seed: 1,
	}
}

// Fig8 is the 4-GPU 2D product, adding the DARTS+LUF+threshold variant
// the paper introduces to contain DARTS' scheduling time on larger task
// sets.
func Fig8() *Figure {
	return &Figure{
		ID:       "fig8",
		Title:    "2D matrix multiplication, 4 Tesla V100 GPUs (Figure 8)",
		Metrics:  []string{"gflops"},
		Platform: platform.V100(4),
		NsPerOp:  sim.DefaultNsPerOp,
		Points:   points2D(ns2D4GPU),
		Strategies: []sched.Strategy{
			sched.EagerStrategy(),
			sched.DMDARStrategy(),
			sched.HMetisRStrategy(true),
			sched.HMetisRStrategy(false),
			sched.DARTSStrategy(sched.DARTSOptions{}),
			sched.DARTSStrategy(sched.DARTSOptions{LUF: true}),
			sched.DARTSStrategy(sched.DARTSOptions{LUF: true, Threshold: 10}),
		},
		Seed: 1,
	}
}

// Fig9 is the randomized-submission-order 2D product on 2 GPUs.
func Fig9() *Figure {
	return &Figure{
		ID:       "fig9",
		Title:    "2D matrix multiplication with randomized task order, 2 Tesla V100 GPUs (Figure 9)",
		Metrics:  []string{"gflops"},
		Platform: platform.V100(2),
		NsPerOp:  sim.DefaultNsPerOp,
		Points:   pointsRand2D(ns2DRand),
		Strategies: []sched.Strategy{
			sched.EagerStrategy(),
			sched.DMDARStrategy(),
			sched.HMetisRStrategy(true),
			sched.HMetisRStrategy(false),
			sched.DARTSStrategy(sched.DARTSOptions{}),
			sched.DARTSStrategy(sched.DARTSOptions{LUF: true}),
		},
		Seed: 1,
	}
}

// Fig10 is the 3D matrix multiplication on 4 GPUs in pure simulation,
// introducing the DARTS 3inputs variant.
func Fig10() *Figure {
	return &Figure{
		ID:       "fig10",
		Title:    "3D matrix multiplication, 4 GPUs, simulation (Figure 10)",
		Metrics:  []string{"gflops"},
		Platform: platform.V100(4),
		NsPerOp:  0,
		Points:   points3D(ns3D),
		Strategies: []sched.Strategy{
			sched.EagerStrategy(),
			sched.DMDARStrategy(),
			sched.HMetisRStrategy(true),
			sched.DARTSStrategy(sched.DARTSOptions{LUF: true}),
			sched.DARTSStrategy(sched.DARTSOptions{LUF: true, ThreeInputs: true}),
		},
		Seed: 1,
	}
}

// Fig11 is the Cholesky task set on 4 GPUs, introducing the OPTI cutoff.
func Fig11() *Figure {
	return &Figure{
		ID:       "fig11",
		Title:    "Tasks from the Cholesky decomposition, 4 Tesla V100 GPUs (Figure 11)",
		Metrics:  []string{"gflops"},
		Platform: platform.V100(4),
		NsPerOp:  sim.DefaultNsPerOp,
		Points:   pointsCholesky(nsChol),
		Strategies: []sched.Strategy{
			sched.EagerStrategy(),
			sched.DMDARStrategy(),
			sched.HMetisRStrategy(true),
			sched.HMetisRStrategy(false),
			sched.DARTSStrategy(sched.DARTSOptions{LUF: true}),
			sched.DARTSStrategy(sched.DARTSOptions{LUF: true, ThreeInputs: true}),
			sched.DARTSStrategy(sched.DARTSOptions{LUF: true, Opti: true, ThreeInputs: true}),
		},
		Seed: 1,
	}
}

// Fig12 is the sparse 2D product (2% of tasks kept) on 4 GPUs with the
// 500 MB memory limit.
func Fig12() *Figure {
	return &Figure{
		ID:       "fig12",
		Title:    "Sparse 2D matrix multiplication, 4 Tesla V100 GPUs, 500 MB (Figure 12)",
		Metrics:  []string{"gflops"},
		Platform: platform.V100(4),
		NsPerOp:  sim.DefaultNsPerOp,
		Points:   pointsSparse(nsSparse),
		Strategies: []sched.Strategy{
			sched.EagerStrategy(),
			sched.DMDARStrategy(),
			sched.HMetisRStrategy(true),
			sched.HMetisRStrategy(false),
			sched.DARTSStrategy(sched.DARTSOptions{LUF: true}),
			sched.DARTSStrategy(sched.DARTSOptions{LUF: true, Opti: true}),
		},
		Seed: 1,
	}
}

// Fig13 is the sparse 2D product without memory limitation (32 GB per
// GPU).
func Fig13() *Figure {
	f := Fig12()
	f.ID = "fig13"
	f.Title = "Sparse 2D matrix multiplication, 4 Tesla V100 GPUs, no memory limit (Figure 13)"
	f.Platform = platform.V100Unlimited(4)
	return f
}

// AllFigures returns every experiment in paper order.
func AllFigures() []*Figure {
	return []*Figure{
		Fig3And4(), Fig5(), Fig6And7(), Fig8(), Fig9(),
		Fig10(), Fig11(), Fig12(), Fig13(),
	}
}

// ByID returns the experiment covering the given figure id ("fig3" and
// "fig4" both resolve to "fig3+4").
func ByID(id string) (*Figure, error) {
	alias := map[string]string{
		"fig3": "fig3+4", "fig4": "fig3+4",
		"fig6": "fig6+7", "fig7": "fig6+7",
	}
	if a, ok := alias[id]; ok {
		id = a
	}
	for _, f := range AllFigures() {
		if f.ID == id {
			return f, nil
		}
	}
	return nil, fmt.Errorf("expr: unknown figure %q", id)
}
