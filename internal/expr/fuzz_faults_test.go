package expr_test

import (
	"math"
	"testing"
	"time"

	"memsched/internal/expr"
	"memsched/internal/fault"
	"memsched/internal/platform"
	"memsched/internal/sched"
	"memsched/internal/workload"
)

// FuzzFaultPlan is the chaos test of the fault machinery: every valid
// fault plan — dropouts, transient transfer failures, memory-pressure
// spikes, in any combination — must leave every strategy with a trace
// that passes the invariant checker and with every task completed
// exactly once on a surviving GPU.
//
// The fuzzed scalars are folded into valid ranges rather than rejected,
// so every input exercises a run; Plan.Validate then double-checks that
// the folding really only produces valid plans.
func FuzzFaultPlan(f *testing.F) {
	f.Add(int64(1), true, uint8(1), uint16(3000), 0.1, uint8(3), uint16(20), true, uint8(0), uint16(2000), uint16(5000), uint16(64))
	f.Add(int64(7), false, uint8(0), uint16(0), 0.0, uint8(0), uint16(0), false, uint8(0), uint16(0), uint16(0), uint16(0))
	f.Add(int64(99), true, uint8(0), uint16(1), 0.9, uint8(15), uint16(999), true, uint8(1), uint16(0), uint16(1), uint16(127))
	f.Add(int64(-3), false, uint8(0), uint16(0), 0.5, uint8(1), uint16(0), true, uint8(0), uint16(60000), uint16(60000), uint16(1))

	strategies := []sched.Strategy{
		sched.EagerStrategy(),
		sched.DMDARStrategy(),
		sched.HMetisRStrategy(false),
		sched.MHFPStrategy(false),
		sched.DARTSStrategy(sched.DARTSOptions{LUF: true}),
		sched.WorkStealingStrategy(),
	}
	inst := workload.Matmul2D(8)
	plat := platform.V100(2)
	plat.MemoryBytes = 256 * platform.MB

	f.Fuzz(func(t *testing.T, seed int64, withDrop bool, dropGPU uint8, dropAtUS uint16,
		rate float64, retries uint8, backoffUS uint16,
		withPressure bool, pGPU uint8, pAtUS, pDurUS uint16, pMB uint16) {

		plan := &fault.Plan{Seed: seed}
		if withDrop {
			// One dropout at most, so a survivor is guaranteed on 2 GPUs.
			plan.Dropouts = []fault.Dropout{{
				GPU: int(dropGPU % 2),
				At:  time.Duration(1+int64(dropAtUS)) * time.Microsecond,
			}}
		}
		r := math.Abs(rate)
		if math.IsNaN(r) || math.IsInf(r, 0) {
			r = 0.3
		}
		r -= math.Floor(r) // into [0, 1)
		if r > 0 {
			plan.Transient = &fault.Transient{
				Rate:       r,
				MaxRetries: 1 + int(retries%16),
				Backoff:    time.Duration(backoffUS%1000) * time.Microsecond,
			}
		}
		if withPressure {
			// Withhold at most half the 256 MB budget so tasks still fit.
			plan.Pressures = []fault.Pressure{{
				GPU:      int(pGPU % 2),
				At:       time.Duration(pAtUS) * time.Microsecond,
				Duration: time.Duration(1+int64(pDurUS)) * time.Microsecond,
				Bytes:    (1 + int64(pMB%128)) * platform.MB,
			}}
		}
		if err := plan.Validate(plat.NumGPUs); err != nil {
			t.Fatalf("fuzz produced an invalid plan %q: %v", plan, err)
		}

		for _, strat := range strategies {
			res, err := expr.RunOneFaulty(nil, inst, strat, plat, 0, 1, true, plan)
			if err != nil {
				t.Fatalf("%s under %q: %v", strat.Label, plan, err)
			}
			done := 0
			for _, g := range res.GPU {
				done += g.Tasks
			}
			if done != inst.NumTasks() {
				t.Fatalf("%s under %q: %d tasks completed, want %d",
					strat.Label, plan, done, inst.NumTasks())
			}
			if !plan.Empty() && res.Faults == nil {
				t.Fatalf("%s under %q: Result.Faults is nil for a non-empty plan", strat.Label, plan)
			}
			if plan.Empty() && res.Faults != nil {
				t.Fatalf("%s under empty plan: Result.Faults = %+v, want nil", strat.Label, res.Faults)
			}
		}
	})
}
