package expr_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"memsched/internal/core"
	"memsched/internal/expr"
	"memsched/internal/memory"
	"memsched/internal/platform"
	"memsched/internal/sched"
	"memsched/internal/sim"
	"memsched/internal/taskgraph"
	"memsched/internal/workload"
)

// extractSchedule reads the executed task order per GPU out of a trace.
func extractSchedule(res *sim.Result, gpus int) *core.Schedule {
	s := &core.Schedule{Order: make([][]taskgraph.TaskID, gpus)}
	for _, ev := range res.Trace {
		if ev.Kind == sim.TraceStart {
			s.Order[ev.GPU] = append(s.Order[ev.GPU], ev.Task)
		}
	}
	return s
}

// TestSimNeverBeatsBeladyBound is the bridge between the simulator and
// the formal model of §III: for whatever task order a strategy actually
// executed, Belady's rule gives the minimum possible number of loads
// (the paper's optimal eviction result). The simulator, which commits to
// evictions online, can never do better on the same order and memory.
func TestSimNeverBeatsBeladyBound(t *testing.T) {
	f := func(seed int64, stratIdx uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(25)
		inst := workload.Matmul2D(n)
		gpus := 1 + rng.Intn(2)
		strats := []sched.Strategy{
			sched.EagerStrategy(),
			sched.DMDARStrategy(),
			sched.DARTSStrategy(sched.DARTSOptions{}),
			sched.DARTSStrategy(sched.DARTSOptions{LUF: true}),
		}
		strat := strats[int(stratIdx)%len(strats)]

		plat := platform.V100(gpus)
		s, pol := strat.New()
		var ev sim.EvictionPolicy = pol
		if ev == nil {
			ev = memory.NewLRU()
		}
		res, err := sim.Run(inst, sim.Config{
			Platform:    plat,
			Scheduler:   s,
			Eviction:    ev,
			Seed:        seed,
			RecordTrace: true,
		})
		if err != nil {
			return false
		}
		sched := extractSchedule(res, gpus)
		bound, err := core.Evaluate(inst, sched, plat.MemoryBytes, core.Belady)
		if err != nil {
			return false
		}
		return res.Loads >= bound.Loads
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestSimMatchesCompulsoryLoadsWhenEverythingFits: with memory large
// enough for the whole working set, the simulator's loads equal exactly
// the per-GPU distinct-data counts of the executed schedule, which is
// also the offline evaluator's answer.
func TestSimMatchesCompulsoryLoadsWhenEverythingFits(t *testing.T) {
	inst := workload.Matmul2D(12)
	plat := platform.V100Unlimited(2)
	res, err := expr.RunOne(inst, sched.DMDARStrategy(), plat, 0, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := func() (*sim.Result, error) {
		s, _ := sched.DMDARStrategy().New()
		return sim.Run(inst, sim.Config{
			Platform:    plat,
			Scheduler:   s,
			Eviction:    memory.NewLRU(),
			Seed:        3,
			RecordTrace: true,
		})
	}()
	if err != nil {
		t.Fatal(err)
	}
	schedule := extractSchedule(res2, 2)
	offline, err := core.Evaluate(inst, schedule, plat.MemoryBytes, core.Belady)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Loads != offline.Loads {
		t.Fatalf("sim loads %d != offline compulsory %d", res2.Loads, offline.Loads)
	}
	if res.Loads != res2.Loads {
		t.Fatalf("same seed, different loads: %d vs %d", res.Loads, res2.Loads)
	}
}
