package expr_test

import (
	"testing"

	"memsched/internal/expr"
)

// TestAblationsRun executes every ablation study once and sanity-checks
// the qualitative outcomes the benchmarks rely on.
func TestAblationsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations are slow")
	}
	if raceEnabled {
		t.Skip("slow single-threaded sweep; skipped under -race")
	}
	byID := map[string]map[string]float64{}
	for _, a := range expr.Ablations() {
		rows, err := a.Run()
		if err != nil {
			t.Fatalf("%s: %v", a.ID, err)
		}
		if len(rows) < 2 {
			t.Fatalf("%s: only %d rows", a.ID, len(rows))
		}
		cells := map[string]float64{}
		for _, r := range rows {
			if r.GFlops <= 0 {
				t.Fatalf("%s: %s produced no throughput", a.ID, r.Scheduler)
			}
			cells[r.Scheduler] = r.GFlops
		}
		byID[a.ID] = cells
	}
	// Ready window: 16 must be clearly worse than 256.
	rw := byID["ablation-ready-window"]
	if rw["window=16"] >= rw["window=256"] {
		t.Errorf("ready window: 16 (%.0f) should trail 256 (%.0f)", rw["window=16"], rw["window=256"])
	}
	// Eviction: LUF best among DARTS variants; Belady beats LRU for EAGER.
	evx := byID["ablation-eviction"]
	if evx["DARTS+LUF"] < evx["DARTS+LRU"] {
		t.Errorf("eviction: LUF (%.0f) should beat LRU (%.0f)", evx["DARTS+LUF"], evx["DARTS+LRU"])
	}
	if evx["EAGER+Belady"] <= evx["EAGER+LRU"] {
		t.Errorf("eviction: Belady (%.0f) should beat LRU (%.0f) under EAGER", evx["EAGER+Belady"], evx["EAGER+LRU"])
	}
	// Partition model: planning (DARTS+LUF) tops the study.
	pm := byID["ablation-partition-model"]
	for label, v := range pm {
		if label != "DARTS+LUF" && v > pm["DARTS+LUF"] {
			t.Errorf("partition model: %s (%.0f) above DARTS+LUF (%.0f)", label, v, pm["DARTS+LUF"])
		}
	}
}
