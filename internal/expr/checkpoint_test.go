package expr_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"memsched/internal/expr"
	"memsched/internal/metrics"
	"memsched/internal/platform"
	"memsched/internal/sched"
	"memsched/internal/sim"
	"memsched/internal/taskgraph"
	"memsched/internal/workload"
)

// ckptFigure is a small 3-point x 2-strategy sweep whose Build calls are
// counted, so tests can assert which cells a resume actually recomputed.
func ckptFigure(builds *atomic.Int32) *expr.Figure {
	ns := []int{5, 8, 10}
	pts := make([]expr.Point, len(ns))
	for i, n := range ns {
		n := n
		pts[i] = expr.Point{N: n, Build: func() *taskgraph.Instance {
			builds.Add(1)
			return workload.Matmul2D(n)
		}}
	}
	return &expr.Figure{
		ID:       "ckpttest",
		Title:    "checkpoint test sweep",
		Metrics:  []string{"gflops"},
		Platform: platform.V100(2),
		NsPerOp:  sim.DefaultNsPerOp,
		Points:   pts,
		Strategies: []sched.Strategy{
			sched.DMDARStrategy(),
			sched.DARTSStrategy(sched.DARTSOptions{LUF: true}),
		},
		Seed: 1,
	}
}

// sweepOutput captures everything a paperbench run renders from rows:
// the CSV bytes and the telemetry JSONL bytes.
func sweepOutput(t *testing.T, f *expr.Figure, ckpt *expr.Checkpoint) (rows []metrics.Row, csv, tel []byte) {
	t.Helper()
	var telBuf bytes.Buffer
	rows, err := f.Run(expr.RunOptions{Workers: 4, TelemetryOut: &telBuf, Checkpoint: ckpt})
	if err != nil {
		t.Fatal(err)
	}
	var csvBuf bytes.Buffer
	if err := metrics.WriteCSV(&csvBuf, rows); err != nil {
		t.Fatal(err)
	}
	return rows, csvBuf.Bytes(), telBuf.Bytes()
}

// TestCheckpointResumeByteIdentical is the crash-resume contract: a
// sweep whose journal is truncated mid-stream (simulating a SIGKILL,
// torn final line included) and then resumed produces CSV and telemetry
// output byte-identical to an uninterrupted sweep, and recomputes only
// the cells the journal lost.
func TestCheckpointResumeByteIdentical(t *testing.T) {
	var refBuilds atomic.Int32
	refFig := ckptFigure(&refBuilds)
	_, refCSV, refTel := sweepOutput(t, refFig, nil)

	dir := t.TempDir()
	path := filepath.Join(dir, "sweep.ckpt")
	ckpt, err := expr.OpenCheckpoint(path, "cfg1")
	if err != nil {
		t.Fatal(err)
	}
	var fullBuilds atomic.Int32
	if _, _, tel := func() ([]metrics.Row, []byte, []byte) {
		r, c, te := sweepOutput(t, ckptFigure(&fullBuilds), ckpt)
		return r, c, te
	}(); !bytes.Equal(tel, refTel) {
		t.Fatal("checkpointed run's telemetry differs from the plain run")
	}
	if err := ckpt.Close(); err != nil {
		t.Fatal(err)
	}
	if got := fullBuilds.Load(); got != 6 {
		t.Fatalf("first run built %d cells, want 6", got)
	}

	// Simulate the SIGKILL: keep the header and the first two records,
	// then append a torn partial record (a crash mid-write).
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(data, []byte("\n"))
	if len(lines) < 4 {
		t.Fatalf("journal has %d lines, want >= 4", len(lines))
	}
	torn := append([]byte{}, lines[0]...)
	torn = append(torn, lines[1]...)
	torn = append(torn, lines[2]...)
	torn = append(torn, lines[3][:len(lines[3])/2]...) // no newline: torn
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	ckpt2, err := expr.OpenCheckpoint(path, "cfg1")
	if err != nil {
		t.Fatal(err)
	}
	defer ckpt2.Close()
	if ckpt2.Restored() != 2 {
		t.Fatalf("restored %d cells from the truncated journal, want 2", ckpt2.Restored())
	}
	var resumeBuilds atomic.Int32
	_, resCSV, resTel := sweepOutput(t, ckptFigure(&resumeBuilds), ckpt2)
	if got := resumeBuilds.Load(); got != 4 {
		t.Errorf("resume built %d cells, want 4 (2 journaled rows skipped)", got)
	}
	if !bytes.Equal(resCSV, refCSV) {
		t.Errorf("resumed CSV differs from uninterrupted run:\n%s\nvs\n%s", resCSV, refCSV)
	}
	if !bytes.Equal(resTel, refTel) {
		t.Errorf("resumed telemetry differs from uninterrupted run")
	}
	if ckpt2.Len() != 6 {
		t.Errorf("journal holds %d cells after resume, want 6", ckpt2.Len())
	}

	// A second resume recomputes nothing at all and still replays the
	// identical output.
	ckpt2.Close()
	ckpt3, err := expr.OpenCheckpoint(path, "cfg1")
	if err != nil {
		t.Fatal(err)
	}
	defer ckpt3.Close()
	var replayBuilds atomic.Int32
	_, replayCSV, replayTel := sweepOutput(t, ckptFigure(&replayBuilds), ckpt3)
	if got := replayBuilds.Load(); got != 0 {
		t.Errorf("full-journal resume built %d cells, want 0", got)
	}
	if !bytes.Equal(replayCSV, refCSV) || !bytes.Equal(replayTel, refTel) {
		t.Error("full-journal replay output differs from uninterrupted run")
	}
}

// TestCheckpointConfigMismatch: resuming under different sweep flags
// must be rejected, naming both fingerprints.
func TestCheckpointConfigMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	ckpt, err := expr.OpenCheckpoint(path, "quick=true maxn=15")
	if err != nil {
		t.Fatal(err)
	}
	if err := ckpt.Close(); err != nil {
		t.Fatal(err)
	}
	_, err = expr.OpenCheckpoint(path, "quick=false maxn=15")
	if err == nil {
		t.Fatal("config mismatch accepted")
	}
	if !strings.Contains(err.Error(), "quick=true") || !strings.Contains(err.Error(), "quick=false") {
		t.Errorf("mismatch error does not name both configs: %v", err)
	}
}

// TestCheckpointCorruptRecord: garbage on an interior, newline-terminated
// line is corruption, not a torn tail, and must be rejected.
func TestCheckpointCorruptRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	ckpt, err := expr.OpenCheckpoint(path, "cfg")
	if err != nil {
		t.Fatal(err)
	}
	ckpt.Close()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("{\"key\":\"broken\n{\"key\":\"x\",\"cell\":{}}\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := expr.OpenCheckpoint(path, "cfg"); err == nil {
		t.Fatal("corrupt interior record accepted")
	}
}

// TestCheckpointTornHeader: a journal that died before its header line
// was complete is unusable and must say so.
func TestCheckpointTornHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	if err := os.WriteFile(path, []byte(`{"checkpoint_version":1,"con`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := expr.OpenCheckpoint(path, "cfg"); err == nil {
		t.Fatal("torn header accepted")
	}
}
