package expr_test

import (
	"testing"

	"memsched/internal/core"
	"memsched/internal/expr"
	"memsched/internal/memory"
	"memsched/internal/platform"
	"memsched/internal/sched"
	"memsched/internal/sim"
	"memsched/internal/taskgraph"
	"memsched/internal/workload"
)

// TestHeuristicsNeverBeatBruteForce anchors every strategy against the
// exhaustive optimum of Definition 1 on tiny instances: the executed
// schedule, re-evaluated offline with optimal (Belady) eviction, can
// never need fewer loads than the brute-force minimum.
func TestHeuristicsNeverBeatBruteForce(t *testing.T) {
	// A 2x4 grid (8 tasks, 6 data) on 2 GPUs with room for 3 data items.
	b := taskgraph.NewBuilder("tiny")
	const unit = 100
	var rowsD, colsD []taskgraph.DataID
	for i := 0; i < 2; i++ {
		rowsD = append(rowsD, b.AddData("r", unit))
	}
	for j := 0; j < 4; j++ {
		colsD = append(colsD, b.AddData("c", unit))
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 4; j++ {
			b.AddTask("t", 1e9, rowsD[i], colsD[j])
		}
	}
	inst := b.Build()
	const mem = 4 * unit // 4 slots: satisfies the runtime progress guarantee (2 footprints)

	best, err := core.BruteForce(inst, 2, mem, inst.NumTasks())
	if err != nil {
		t.Fatal(err)
	}
	if best.Loads < 6 {
		t.Fatalf("optimum %d below compulsory 6", best.Loads)
	}

	plat := platform.Platform{
		NumGPUs: 2, MemoryBytes: mem, GFlopsPerGPU: 1,
		BusBytesPerSecond: 1000,
	}
	for _, strat := range []sched.Strategy{
		sched.EagerStrategy(),
		sched.DMDARStrategy(),
		sched.DARTSStrategy(sched.DARTSOptions{LUF: true}),
		sched.MHFPStrategy(false),
	} {
		s, pol := strat.New()
		var ev sim.EvictionPolicy = pol
		if ev == nil {
			ev = memory.NewLRU()
		}
		res, err := sim.Run(inst, sim.Config{
			Platform:    plat,
			Scheduler:   s,
			Eviction:    ev,
			Seed:        1,
			RecordTrace: true,
			WindowSize:  1,
		})
		if err != nil {
			t.Fatalf("%s: %v", strat.Label, err)
		}
		schedule := extractSchedule(res, 2)
		evaluated, err := core.Evaluate(inst, schedule, mem, core.Belady)
		if err != nil {
			t.Fatalf("%s: %v", strat.Label, err)
		}
		if evaluated.Loads < best.Loads {
			t.Fatalf("%s: offline loads %d beat the brute-force optimum %d",
				strat.Label, evaluated.Loads, best.Loads)
		}
		if res.Loads < best.Loads {
			t.Fatalf("%s: simulated loads %d beat the brute-force optimum %d",
				strat.Label, res.Loads, best.Loads)
		}
	}
	_ = expr.RunOne // keep expr linked for the shared helpers
	_ = workload.Tile
}
