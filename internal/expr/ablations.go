package expr

import (
	"fmt"

	"memsched/internal/memory"
	"memsched/internal/metrics"
	"memsched/internal/platform"
	"memsched/internal/sched"
	"memsched/internal/sim"
	"memsched/internal/taskgraph"
	"memsched/internal/workload"
)

// Ablation is one ablation study: a fixed workload and platform with a
// set of labelled configurations to compare.
type Ablation struct {
	// ID and Title identify the study.
	ID, Title string
	// Run executes the study and returns one row per configuration.
	Run func() ([]metrics.Row, error)
}

func runCase(id string, inst *taskgraph.Instance, label string, build func() (sim.Scheduler, sim.EvictionPolicy), plat platform.Platform, opts sim.Config) (metrics.Row, error) {
	s, pol := build()
	var ev sim.EvictionPolicy = pol
	if ev == nil {
		ev = memory.NewLRU()
	}
	opts.Platform = plat
	opts.Scheduler = s
	opts.Eviction = ev
	res, err := sim.Run(inst, opts)
	if err != nil {
		return metrics.Row{}, fmt.Errorf("%s: %s: %w", id, label, err)
	}
	row := metrics.FromResult(id, res)
	row.Scheduler = label
	return row, nil
}

// Ablations returns the ablation studies of DESIGN.md §6, mirroring the
// benchmark suite so they can be regenerated from the CLI.
func Ablations() []Ablation {
	return []Ablation{
		{
			ID:    "ablation-ready-window",
			Title: "DMDAR Ready reorder depth (2D product, 2 GPUs)",
			Run: func() ([]metrics.Row, error) {
				inst := workload.Matmul2D(80)
				var rows []metrics.Row
				for _, w := range []int{16, 64, 256, 1024, -1} {
					label := fmt.Sprintf("window=%d", w)
					if w < 0 {
						label = "window=all"
					}
					w := w
					row, err := runCase("ablation-ready-window", inst, label,
						func() (sim.Scheduler, sim.EvictionPolicy) { return sched.NewDMDAR(w)(), nil },
						platform.V100(2), sim.Config{Seed: 1})
					if err != nil {
						return nil, err
					}
					rows = append(rows, row)
				}
				return rows, nil
			},
		},
		{
			ID:    "ablation-eviction",
			Title: "Eviction policies under fixed orders (2D product, 1 GPU)",
			Run: func() ([]metrics.Row, error) {
				inst := workload.Matmul2D(60)
				cases := []struct {
					label string
					build func() (sim.Scheduler, sim.EvictionPolicy)
				}{
					{"DARTS+LRU", func() (sim.Scheduler, sim.EvictionPolicy) {
						s, _ := sched.NewDARTSPair(sched.DARTSOptions{})()
						return s, nil
					}},
					{"DARTS+FIFO", func() (sim.Scheduler, sim.EvictionPolicy) {
						s, _ := sched.NewDARTSPair(sched.DARTSOptions{})()
						return s, memory.NewFIFO()
					}},
					{"DARTS+MRU", func() (sim.Scheduler, sim.EvictionPolicy) {
						s, _ := sched.NewDARTSPair(sched.DARTSOptions{})()
						return s, memory.NewMRU()
					}},
					{"DARTS+LUF", func() (sim.Scheduler, sim.EvictionPolicy) {
						return sched.NewDARTSPair(sched.DARTSOptions{LUF: true})()
					}},
					{"EAGER+LRU", func() (sim.Scheduler, sim.EvictionPolicy) {
						return sched.NewEager()(), nil
					}},
					{"EAGER+Belady", func() (sim.Scheduler, sim.EvictionPolicy) {
						return sched.NewEagerBeladyPair()()
					}},
				}
				var rows []metrics.Row
				for _, c := range cases {
					row, err := runCase("ablation-eviction", inst, c.label, c.build,
						platform.V100(1), sim.Config{Seed: 1})
					if err != nil {
						return nil, err
					}
					rows = append(rows, row)
				}
				return rows, nil
			},
		},
		{
			ID:    "ablation-bus",
			Title: "Bus contention model and NVLink (2D product, DARTS+LUF)",
			Run: func() ([]metrics.Row, error) {
				inst := workload.Matmul2D(60)
				darts := func() (sim.Scheduler, sim.EvictionPolicy) {
					return sched.NewDARTSPair(sched.DARTSOptions{LUF: true})()
				}
				var rows []metrics.Row
				for _, c := range []struct {
					label string
					plat  platform.Platform
					model sim.BusModel
				}{
					{"fifo-bus 2GPU", platform.V100(2), sim.BusFIFO},
					{"fair-share 2GPU", platform.V100(2), sim.BusFairShare},
					{"pci-only 4GPU", platform.V100(4), sim.BusFIFO},
					{"nvlink 4GPU", platform.V100NVLink(4), sim.BusFIFO},
				} {
					row, err := runCase("ablation-bus", inst, c.label, darts, c.plat,
						sim.Config{Seed: 1, BusModel: c.model})
					if err != nil {
						return nil, err
					}
					rows = append(rows, row)
				}
				return rows, nil
			},
		},
		{
			ID:    "ablation-partition-model",
			Title: "Hypergraph vs clique expansion vs work stealing (2D product, 4 GPUs)",
			Run: func() ([]metrics.Row, error) {
				inst := workload.Matmul2D(60)
				cases := []struct {
					label string
					build func() (sim.Scheduler, sim.EvictionPolicy)
				}{
					{"hMETIS+R", func() (sim.Scheduler, sim.EvictionPolicy) {
						return sched.NewHMetisR(false, 0)(), nil
					}},
					{"METIS+R (clique)", func() (sim.Scheduler, sim.EvictionPolicy) {
						return sched.NewMetisR(false, 0)(), nil
					}},
					{"WS-locality", func() (sim.Scheduler, sim.EvictionPolicy) {
						return sched.NewWorkStealing(0, 0)(), nil
					}},
					{"DARTS+LUF", func() (sim.Scheduler, sim.EvictionPolicy) {
						return sched.NewDARTSPair(sched.DARTSOptions{LUF: true})()
					}},
				}
				var rows []metrics.Row
				for _, c := range cases {
					row, err := runCase("ablation-partition-model", inst, c.label, c.build,
						platform.V100(4), sim.Config{Seed: 1})
					if err != nil {
						return nil, err
					}
					rows = append(rows, row)
				}
				return rows, nil
			},
		},
	}
}
