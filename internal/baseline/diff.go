package baseline

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Class classifies one metric delta or one whole cell.
type Class uint8

const (
	// Neutral: within tolerance, informational, or unchanged.
	Neutral Class = iota
	// Improvement: changed beyond tolerance in the good direction.
	Improvement
	// Regression: changed beyond tolerance in the bad direction.
	Regression
	// NewCell: present in the new run but not the baseline.
	NewCell
	// MissingCell: present in the baseline but not the new run. A
	// partial run (-quick, -maxn, -fig) legitimately misses cells, so
	// this never fails a check on its own.
	MissingCell
)

// String returns the mnemonic of the class.
func (c Class) String() string {
	switch c {
	case Neutral:
		return "neutral"
	case Improvement:
		return "improvement"
	case Regression:
		return "regression"
	case NewCell:
		return "new-cell"
	case MissingCell:
		return "missing-cell"
	}
	return "?"
}

// metricDef describes one compared metric: how to read it, which
// direction is good, and its default tolerances. dir +1 means higher is
// better, -1 lower is better, 0 informational (tracked in the report but
// never classified as regression or improvement).
type metricDef struct {
	name string
	get  func(Cell) float64
	dir  int
	// relTol is the default relative tolerance (fraction of the baseline
	// value); absFloor suppresses deltas smaller than this absolute
	// amount, so e.g. a 0.001 ms idle jitter on a near-zero baseline
	// cannot fail a check.
	relTol   float64
	absFloor float64
}

// metricDefs lists the compared metrics in report order. The simulator
// is deterministic, so an unchanged build reproduces every value exactly
// and the tolerances only bound how much *intentional* drift a future
// change may introduce silently: 1% on the continuous throughput and
// traffic metrics, exact on the integer movement counters, and a little
// slack on the scheduling-cost and idle columns (their defaults are
// documented in EXPERIMENTS.md "Regression tracking").
var metricDefs = []metricDef{
	{"gflops", func(c Cell) float64 { return c.GFlops }, +1, 0.01, 0.5},
	{"transferred_mb", func(c Cell) float64 { return c.TransferredMB }, -1, 0.01, 0.5},
	{"loads", func(c Cell) float64 { return float64(c.Loads) }, -1, 0, 0.5},
	{"evictions", func(c Cell) float64 { return float64(c.Evictions) }, -1, 0, 0.5},
	{"makespan_ms", func(c Cell) float64 { return c.MakespanMS }, -1, 0.01, 0.01},
	{"static_ms", func(c Cell) float64 { return c.StaticMS }, -1, 0.02, 0.05},
	{"dynamic_ms", func(c Cell) float64 { return c.DynamicMS }, -1, 0.02, 0.05},
	{"idle_ms", func(c Cell) float64 { return c.IdleMS }, -1, 0.02, 0.05},
	{"reloaded_mb", func(c Cell) float64 { return c.ReloadedMB }, -1, 0.01, 0.5},
	{"reloads", func(c Cell) float64 { return float64(c.Reloads) }, -1, 0, 0.5},
	{"bus_utilization", func(c Cell) float64 { return c.BusUtilization }, 0, 0, 0},
	{"starved_ms", func(c Cell) float64 { return c.StarvedMS }, 0, 0, 0},
	{"blocked_bus_ms", func(c Cell) float64 { return c.BlockedBusMS }, 0, 0, 0},
	{"blocked_peer_ms", func(c Cell) float64 { return c.BlockedPeerMS }, 0, 0, 0},
	{"done_ms", func(c Cell) float64 { return c.DoneMS }, 0, 0, 0},
	// Critical-path blame (dir 0): the attribution explains *why* a
	// makespan moved; the makespan itself is the classified metric.
	// Baselines written before the attribution layer store zeros here,
	// and dir-0 metrics never classify, so old BENCH files keep passing.
	{"crit_compute_ms", func(c Cell) float64 { return c.CritComputeMS }, 0, 0, 0},
	{"crit_pci_ms", func(c Cell) float64 { return c.CritPCIMS }, 0, 0, 0},
	{"crit_nvlink_ms", func(c Cell) float64 { return c.CritPeerMS }, 0, 0, 0},
	{"crit_reload_ms", func(c Cell) float64 { return c.CritReloadMS }, 0, 0, 0},
	{"crit_sched_ms", func(c Cell) float64 { return c.CritSchedMS }, 0, 0, 0},
	{"crit_fault_ms", func(c Cell) float64 { return c.CritFaultMS }, 0, 0, 0},
	{"transfer_free_ms", func(c Cell) float64 { return c.TransferFreeMS }, 0, 0, 0},
	{"eviction_free_ms", func(c Cell) float64 { return c.EvictionFreeMS }, 0, 0, 0},
}

// Tolerances overrides the default per-metric tolerances.
type Tolerances struct {
	// Rel maps metric name to a relative tolerance (fraction), replacing
	// that metric's default.
	Rel map[string]float64
	// Uniform, when >= 0, applies to every metric and overrides both the
	// defaults and Rel; Uniform 0 demands exact reproduction (the
	// injected-regression mode of -baseline-check). Negative keeps the
	// per-metric defaults.
	Uniform float64
}

// DefaultTolerances keeps every metric at its documented default.
func DefaultTolerances() Tolerances { return Tolerances{Uniform: -1} }

// UniformTolerance applies one relative tolerance to every metric.
func UniformTolerance(rel float64) Tolerances { return Tolerances{Uniform: rel} }

func (t Tolerances) rel(def metricDef) float64 {
	if t.Uniform >= 0 {
		return t.Uniform
	}
	if v, ok := t.Rel[def.name]; ok {
		return v
	}
	return def.relTol
}

// MetricDelta is the change of one metric of one cell.
type MetricDelta struct {
	Metric string
	// Old and New are the baseline and fresh values.
	Old, New float64
	// Abs is New - Old; Rel is Abs / |Old| (±Inf when the baseline is
	// zero and the value changed).
	Abs, Rel float64
	Class    Class
}

func (d MetricDelta) String() string {
	rel := ""
	switch {
	case math.IsNaN(d.Rel):
		rel = " (NaN)"
	case math.IsInf(d.Rel, 0):
		rel = " (was 0)"
	case d.Rel != 0:
		rel = fmt.Sprintf(" (%+.1f%%)", 100*d.Rel)
	}
	return fmt.Sprintf("%s %.6g -> %.6g%s", d.Metric, d.Old, d.New, rel)
}

// diffMetric compares one metric value pair under the given tolerance.
func diffMetric(def metricDef, old, new float64, tol float64) MetricDelta {
	d := MetricDelta{Metric: def.name, Old: old, New: new}
	// Non-finite telemetry is never silently equal: if only one side is
	// broken (or both are broken differently) the cell regressed — a
	// NaN/Inf landing in a capture is itself a bug worth failing on.
	oldBad, newBad := !isFinite(old), !isFinite(new)
	if oldBad || newBad {
		d.Abs, d.Rel = math.NaN(), math.NaN()
		if oldBad && newBad && (old == new || (math.IsNaN(old) && math.IsNaN(new))) {
			d.Class = Neutral
		} else {
			d.Class = Regression
		}
		return d
	}
	d.Abs = new - old
	switch {
	case d.Abs == 0:
		// exact reproduction
	case old == 0:
		d.Rel = math.Inf(sign(d.Abs))
	default:
		d.Rel = d.Abs / math.Abs(old)
	}
	if def.dir == 0 || d.Abs == 0 || math.Abs(d.Abs) <= def.absFloor {
		return d
	}
	if math.Abs(d.Rel) <= tol { // tolerance exactly met is still neutral
		return d
	}
	if float64(def.dir)*d.Abs < 0 {
		d.Class = Regression
	} else {
		d.Class = Improvement
	}
	return d
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

func sign(v float64) int {
	if v < 0 {
		return -1
	}
	return 1
}

// CellDiff is the comparison of one cell across the two runs.
type CellDiff struct {
	Key   string
	Class Class
	// Deltas holds every compared metric in metricDefs order (empty for
	// new and missing cells).
	Deltas []MetricDelta
	// Worst points at the regressed delta with the largest |Rel|, nil
	// when the cell did not regress.
	Worst *MetricDelta
	// Severity is |Worst.Rel| (capped for infinite ratios), the ranking
	// key of the report.
	Severity float64
}

// infSeverity ranks a from-zero regression above any finite ratio while
// keeping Severity arithmetic-friendly.
const infSeverity = math.MaxFloat64

// Report is the ranked outcome of one Diff.
type Report struct {
	// Cells is every compared cell, regressions first (worst severity
	// first), then improvements, new, missing, and neutral cells.
	Cells []CellDiff
	// Per-class counts.
	Regressions, Improvements, Neutrals, New, Missing int
}

// Diff compares a fresh run (new) against the baseline (old) cell by
// cell. Cells only in the baseline are MissingCell (informational: the
// run may be a subset sweep); cells only in the run are NewCell.
func Diff(old, new *File, tol Tolerances) *Report {
	keys := map[string]bool{}
	for k := range old.Cells {
		keys[k] = true
	}
	for k := range new.Cells {
		keys[k] = true
	}
	rep := &Report{}
	for k := range keys {
		oc, inOld := old.Cells[k]
		nc, inNew := new.Cells[k]
		cd := CellDiff{Key: k}
		switch {
		case !inOld:
			cd.Class = NewCell
		case !inNew:
			cd.Class = MissingCell
		default:
			for _, def := range metricDefs {
				md := diffMetric(def, def.get(oc), def.get(nc), tol.rel(def))
				cd.Deltas = append(cd.Deltas, md)
			}
			for i := range cd.Deltas {
				md := &cd.Deltas[i]
				switch md.Class {
				case Regression:
					cd.Class = Regression
					sev := math.Abs(md.Rel)
					if math.IsInf(sev, 0) || math.IsNaN(sev) {
						sev = infSeverity
					}
					if cd.Worst == nil || sev > cd.Severity {
						cd.Worst, cd.Severity = md, sev
					}
				case Improvement:
					if cd.Class != Regression {
						cd.Class = Improvement
					}
				}
			}
		}
		switch cd.Class {
		case Regression:
			rep.Regressions++
		case Improvement:
			rep.Improvements++
		case NewCell:
			rep.New++
		case MissingCell:
			rep.Missing++
		default:
			rep.Neutrals++
		}
		rep.Cells = append(rep.Cells, cd)
	}
	sort.Slice(rep.Cells, func(i, j int) bool {
		a, b := &rep.Cells[i], &rep.Cells[j]
		if ra, rb := classRank(a.Class), classRank(b.Class); ra != rb {
			return ra < rb
		}
		if a.Severity != b.Severity {
			return a.Severity > b.Severity
		}
		return a.Key < b.Key
	})
	return rep
}

// classRank orders report sections: regressions lead, neutral trails.
func classRank(c Class) int {
	switch c {
	case Regression:
		return 0
	case Improvement:
		return 1
	case NewCell:
		return 2
	case MissingCell:
		return 3
	}
	return 4
}

// HasRegressions reports whether any cell regressed.
func (r *Report) HasRegressions() bool { return r.Regressions > 0 }

// WorstRegression returns the top-ranked regressed cell, nil if none.
func (r *Report) WorstRegression() *CellDiff {
	if r.Regressions == 0 {
		return nil
	}
	return &r.Cells[0]
}

// String renders the ranked human-readable report: a summary line, then
// one line per regressed cell (all its out-of-tolerance deltas), then
// one line per improved cell, then the new/missing counts. Neutral cells
// are only counted.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "baseline diff: %d regressions, %d improvements, %d neutral, %d new cells, %d missing cells\n",
		r.Regressions, r.Improvements, r.Neutrals, r.New, r.Missing)
	for _, cd := range r.Cells {
		switch cd.Class {
		case Regression, Improvement:
			var parts []string
			for _, md := range cd.Deltas {
				if md.Class == Regression || md.Class == Improvement {
					parts = append(parts, md.String())
				}
			}
			label := "REGRESSION "
			if cd.Class == Improvement {
				label = "improvement"
			}
			fmt.Fprintf(&b, "%s  %-45s  %s\n", label, cd.Key, strings.Join(parts, "; "))
		case NewCell:
			fmt.Fprintf(&b, "new cell     %s (no baseline; refresh with -baseline-write)\n", cd.Key)
		}
	}
	return b.String()
}
