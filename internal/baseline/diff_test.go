package baseline

import (
	"math"
	"strings"
	"testing"
)

func pair(oldC, newC []Cell) (*File, *File) {
	o, n := New("fig"), New("fig")
	for _, c := range oldC {
		o.Record(c)
	}
	for _, c := range newC {
		n.Record(c)
	}
	return o, n
}

func delta(t *testing.T, cd CellDiff, metric string) MetricDelta {
	t.Helper()
	for _, d := range cd.Deltas {
		if d.Metric == metric {
			return d
		}
	}
	t.Fatalf("no delta for %s in %+v", metric, cd)
	return MetricDelta{}
}

func TestDiffExactReproductionIsNeutral(t *testing.T) {
	c := cell("fig", "w1", "A", 1000)
	o, n := pair([]Cell{c}, []Cell{c})
	rep := Diff(o, n, UniformTolerance(0))
	if rep.HasRegressions() || rep.Neutrals != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.WorstRegression() != nil {
		t.Fatal("worst regression on identical files")
	}
}

func TestDiffClassifiesDirections(t *testing.T) {
	oc := cell("fig", "w1", "A", 1000)
	nc := oc
	nc.GFlops = 800        // lower throughput: bad
	nc.TransferredMB = 400 // less traffic: good
	o, n := pair([]Cell{oc}, []Cell{nc})
	rep := Diff(o, n, DefaultTolerances())
	cd := rep.Cells[0]
	if cd.Class != Regression {
		t.Fatalf("class = %v", cd.Class)
	}
	if d := delta(t, cd, "gflops"); d.Class != Regression || math.Abs(d.Rel+0.2) > 1e-9 {
		t.Fatalf("gflops delta = %+v", d)
	}
	if d := delta(t, cd, "transferred_mb"); d.Class != Improvement {
		t.Fatalf("transfers delta = %+v", d)
	}
	if cd.Worst == nil || cd.Worst.Metric != "gflops" {
		t.Fatalf("worst = %+v", cd.Worst)
	}
}

func TestDiffNewAndMissingCells(t *testing.T) {
	shared := cell("fig", "w1", "A", 1000)
	removed := cell("fig", "w2", "A", 1000)
	added := cell("fig", "w3", "A", 1000)
	o, n := pair([]Cell{shared, removed}, []Cell{shared, added})
	rep := Diff(o, n, DefaultTolerances())
	if rep.New != 1 || rep.Missing != 1 || rep.Neutrals != 1 {
		t.Fatalf("report = %+v", rep)
	}
	// Subset runs legitimately miss cells: neither class is a failure.
	if rep.HasRegressions() {
		t.Fatal("new/missing cells must not regress")
	}
	var classes []string
	for _, cd := range rep.Cells {
		classes = append(classes, cd.Class.String())
	}
	if strings.Join(classes, ",") != "new-cell,missing-cell,neutral" {
		t.Fatalf("ranking = %v", classes)
	}
}

func TestDiffZeroBaselineRelativeDelta(t *testing.T) {
	oc := cell("fig", "w1", "A", 1000)
	oc.ReloadedMB = 0
	nc := oc
	nc.ReloadedMB = 38
	o, n := pair([]Cell{oc}, []Cell{nc})
	rep := Diff(o, n, DefaultTolerances())
	d := delta(t, rep.Cells[0], "reloaded_mb")
	if d.Class != Regression || !math.IsInf(d.Rel, 1) {
		t.Fatalf("delta = %+v", d)
	}
	// Infinite ratio still ranks: it must be the worst metric.
	if rep.Cells[0].Worst.Metric != "reloaded_mb" || rep.Cells[0].Severity != infSeverity {
		t.Fatalf("worst = %+v severity %g", rep.Cells[0].Worst, rep.Cells[0].Severity)
	}
	if !strings.Contains(d.String(), "was 0") {
		t.Fatalf("rendering = %q", d.String())
	}
}

func TestDiffToleranceExactlyMet(t *testing.T) {
	oc := cell("fig", "w1", "A", 1000)
	nc := oc
	nc.GFlops = 990 // exactly -1%
	o, n := pair([]Cell{oc}, []Cell{nc})
	rep := Diff(o, n, UniformTolerance(0.01))
	if d := delta(t, rep.Cells[0], "gflops"); d.Class != Neutral {
		t.Fatalf("tolerance exactly met should be neutral: %+v", d)
	}
	// A hair beyond the tolerance regresses.
	nc.GFlops = 989
	o, n = pair([]Cell{oc}, []Cell{nc})
	rep = Diff(o, n, UniformTolerance(0.01))
	if d := delta(t, rep.Cells[0], "gflops"); d.Class != Regression {
		t.Fatalf("beyond tolerance should regress: %+v", d)
	}
}

func TestDiffAbsFloorSuppressesJitter(t *testing.T) {
	oc := cell("fig", "w1", "A", 1000)
	oc.IdleMS = 0.001
	nc := oc
	nc.IdleMS = 0.04 // 40x relative, but under the 0.05 ms floor
	o, n := pair([]Cell{oc}, []Cell{nc})
	if rep := Diff(o, n, DefaultTolerances()); rep.HasRegressions() {
		t.Fatalf("sub-floor jitter regressed: %s", rep)
	}
}

func TestDiffNaNAndInfTelemetry(t *testing.T) {
	oc := cell("fig", "w1", "A", 1000)
	nc := oc
	nc.IdleMS = math.NaN()
	o, n := pair([]Cell{oc}, []Cell{nc})
	rep := Diff(o, n, DefaultTolerances())
	if d := delta(t, rep.Cells[0], "idle_ms"); d.Class != Regression {
		t.Fatalf("NaN arriving should regress: %+v", d)
	}
	if !strings.Contains(delta(t, rep.Cells[0], "idle_ms").String(), "NaN") {
		t.Fatal("NaN not rendered")
	}

	// Both sides identically broken: no new information, neutral.
	oc.IdleMS = math.NaN()
	o, n = pair([]Cell{oc}, []Cell{nc})
	if rep := Diff(o, n, DefaultTolerances()); rep.HasRegressions() {
		t.Fatalf("NaN on both sides regressed: %s", rep)
	}

	// Inf appearing is as bad as NaN.
	oc.IdleMS = 1
	nc.IdleMS = math.Inf(1)
	o, n = pair([]Cell{oc}, []Cell{nc})
	if rep := Diff(o, n, DefaultTolerances()); !rep.HasRegressions() {
		t.Fatal("Inf arriving should regress")
	}
}

func TestDiffIntegerCountersAreExact(t *testing.T) {
	oc := cell("fig", "w1", "A", 1000)
	nc := oc
	nc.Loads++
	o, n := pair([]Cell{oc}, []Cell{nc})
	if rep := Diff(o, n, DefaultTolerances()); !rep.HasRegressions() {
		t.Fatal("one extra load should regress under default tolerances")
	}
}

func TestDiffInformationalMetricsNeverClassify(t *testing.T) {
	oc := cell("fig", "w1", "A", 1000)
	oc.BusUtilization, oc.StarvedMS = 0.5, 10
	nc := oc
	nc.BusUtilization, nc.StarvedMS = 0.9, 50
	o, n := pair([]Cell{oc}, []Cell{nc})
	rep := Diff(o, n, UniformTolerance(0))
	if rep.HasRegressions() {
		t.Fatalf("informational drift regressed: %s", rep)
	}
	if d := delta(t, rep.Cells[0], "bus_utilization"); d.Abs == 0 {
		t.Fatal("informational metric not tracked")
	}
}

func TestReportRankingAndString(t *testing.T) {
	mild, bad := cell("fig", "w1", "A", 1000), cell("fig", "w2", "A", 1000)
	nm, nb := mild, bad
	nm.GFlops = 950 // -5%
	nb.GFlops = 500 // -50%
	better := cell("fig", "w3", "A", 1000)
	nbetter := better
	nbetter.GFlops = 2000
	o, n := pair([]Cell{mild, bad, better}, []Cell{nm, nb, nbetter})
	rep := Diff(o, n, UniformTolerance(0.01))
	if rep.Regressions != 2 || rep.Improvements != 1 {
		t.Fatalf("counts: %+v", rep)
	}
	if rep.Cells[0].Key != "fig:w2:A" || rep.Cells[1].Key != "fig:w1:A" {
		t.Fatalf("regressions not ranked by severity: %v, %v", rep.Cells[0].Key, rep.Cells[1].Key)
	}
	if rep.WorstRegression().Key != "fig:w2:A" {
		t.Fatalf("worst = %v", rep.WorstRegression().Key)
	}
	s := rep.String()
	if !strings.Contains(s, "2 regressions, 1 improvements") ||
		!strings.Contains(s, "REGRESSION") || !strings.Contains(s, "improvement") {
		t.Fatalf("report rendering:\n%s", s)
	}
	if strings.Index(s, "fig:w2:A") > strings.Index(s, "fig:w1:A") {
		t.Fatalf("worst cell not first:\n%s", s)
	}
}
