// Package baseline is the cross-run regression layer: it persists the
// per-cell reference metrics of every figure (the committed
// BENCH_<figure>.json files) and diffs fresh runs against them. PR 2
// made a single run observable; this package makes the *trajectory*
// observable — a drop in GFlop/s, a burst of reloads or a swollen idle
// breakdown between two commits becomes a ranked report and a non-zero
// exit instead of a diff someone has to eyeball in results/*.csv.
package baseline

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"memsched/internal/critpath"
	"memsched/internal/metrics"
	"memsched/internal/sim"
)

// SchemaVersion is the format of the BENCH_*.json files this build
// writes. Load accepts files up to and including this version; newer
// files are rejected with an upgrade hint rather than misread.
const SchemaVersion = 1

// Cell is one baseline entry: the figure row joined with the telemetry
// scalars that matter for regressions (idle breakdown, bus utilization,
// reload churn). Durations are milliseconds, matching the Row columns.
type Cell struct {
	metrics.Row
	BusUtilization float64 `json:"bus_utilization"`
	StarvedMS      float64 `json:"starved_ms"`
	BlockedBusMS   float64 `json:"blocked_bus_ms"`
	BlockedPeerMS  float64 `json:"blocked_peer_ms"`
	DoneMS         float64 `json:"done_ms"`
	Reloads        int     `json:"reloads"`
	// Critical-path attribution (internal/critpath): where the makespan
	// went, by blame category, plus the counterfactual lower bounds.
	// Zero in baselines written before the attribution layer existed;
	// the diff treats them as informational (never a regression class).
	CritComputeMS  float64 `json:"crit_compute_ms,omitempty"`
	CritPCIMS      float64 `json:"crit_pci_ms,omitempty"`
	CritPeerMS     float64 `json:"crit_peer_ms,omitempty"`
	CritReloadMS   float64 `json:"crit_reload_ms,omitempty"`
	CritSchedMS    float64 `json:"crit_sched_ms,omitempty"`
	CritFaultMS    float64 `json:"crit_fault_ms,omitempty"`
	TransferFreeMS float64 `json:"transfer_free_ms,omitempty"`
	EvictionFreeMS float64 `json:"eviction_free_ms,omitempty"`
}

// FromRow builds a Cell from a figure row, the engine telemetry of its
// first replica, and that replica's critical-path summary; tel and cp
// may be nil (the corresponding fields stay zero).
func FromRow(row metrics.Row, tel *sim.Telemetry, cp *critpath.Summary) Cell {
	c := Cell{Row: row}
	if tel != nil {
		c.BusUtilization = tel.BusUtilization
		c.Reloads = tel.Reloads
		for _, g := range tel.GPU {
			c.StarvedMS += ms(g.StarvedNoTask)
			c.BlockedBusMS += ms(g.BlockedOnBus)
			c.BlockedPeerMS += ms(g.BlockedOnPeer)
			c.DoneMS += ms(g.Done)
		}
	}
	if cp != nil {
		c.CritComputeMS = cp.ComputeMS
		c.CritPCIMS = cp.PCIMS
		c.CritPeerMS = cp.PeerMS
		c.CritReloadMS = cp.ReloadMS
		c.CritSchedMS = cp.SchedMS
		c.CritFaultMS = cp.FaultMS
		c.TransferFreeMS = cp.TransferFreeMS
		c.EvictionFreeMS = cp.EvictionFreeMS
	}
	return c
}

func ms(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1000
}

// Key identifies the cell within and across baseline files:
// figure:workload:strategy. The workload name (not the sweep position)
// is the point component, so a cell keeps its identity when the sweep
// gains or loses points around it.
func (c Cell) Key() string {
	return c.Figure + ":" + c.Workload + ":" + c.Scheduler
}

// File is one BENCH_<figure>.json: a schema-versioned set of cells. The
// simulator is deterministic, so the stored values are exact — two
// `-baseline-write` runs of the same code produce bit-identical files
// (nothing time- or machine-dependent is stored).
type File struct {
	Schema int             `json:"schema"`
	Figure string          `json:"figure"`
	Cells  map[string]Cell `json:"cells"`
}

// New returns an empty baseline file for the figure.
func New(figure string) *File {
	return &File{Schema: SchemaVersion, Figure: figure, Cells: map[string]Cell{}}
}

// Record stores the cell under its key, replacing any previous value.
func (f *File) Record(c Cell) { f.Cells[c.Key()] = c }

// Keys returns the cell keys in sorted order.
func (f *File) Keys() []string {
	keys := make([]string, 0, len(f.Cells))
	for k := range f.Cells {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Path returns the canonical baseline filename for a figure id under
// dir: BENCH_<figure>.json with the id slugged like the CSV names
// ("fig3+4" -> BENCH_fig3_4.json).
func Path(dir, figureID string) string {
	return filepath.Join(dir, "BENCH_"+strings.ReplaceAll(figureID, "+", "_")+".json")
}

// Load reads and validates a baseline file.
func Load(path string) (*File, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(b, &f); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	if f.Schema < 1 || f.Schema > SchemaVersion {
		return nil, fmt.Errorf("baseline %s: schema %d not supported (this build reads up to %d; refresh with -baseline-write or upgrade)",
			path, f.Schema, SchemaVersion)
	}
	if f.Cells == nil {
		f.Cells = map[string]Cell{}
	}
	return &f, nil
}

// Write serializes the file deterministically (indented JSON, map keys
// sorted by encoding/json, trailing newline) so committed baselines
// reproduce bit-identically from a clean checkout.
func (f *File) Write(path string) error {
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
