package baseline

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"memsched/internal/critpath"
	"memsched/internal/metrics"
	"memsched/internal/sim"
)

func cell(fig, wl, strat string, gflops float64) Cell {
	return Cell{Row: metrics.Row{
		Figure: fig, Workload: wl, Scheduler: strat,
		WorkingSetMB: 100, GPUs: 1, GFlops: gflops,
		TransferredMB: 500, Loads: 10, Evictions: 2,
		MakespanMS: 12.5, IdleMS: 1.25, ReloadedMB: 3,
	}}
}

func TestFromRowFoldsTelemetry(t *testing.T) {
	tel := &sim.Telemetry{
		BusUtilization: 0.7,
		Reloads:        5,
		GPU: []sim.GPUTelemetry{
			{StarvedNoTask: time.Millisecond, BlockedOnBus: 2 * time.Millisecond},
			{BlockedOnPeer: 3 * time.Millisecond, Done: 4 * time.Millisecond},
		},
	}
	c := FromRow(metrics.Row{Figure: "f", Workload: "w", Scheduler: "s"}, tel,
		&critpath.Summary{ComputeMS: 10, ReloadMS: 2, TransferFreeMS: 8})
	if c.CritComputeMS != 10 || c.CritReloadMS != 2 || c.TransferFreeMS != 8 {
		t.Fatalf("critpath fields: %+v", c)
	}
	if c.BusUtilization != 0.7 || c.Reloads != 5 {
		t.Fatalf("scalars: %+v", c)
	}
	if c.StarvedMS != 1 || c.BlockedBusMS != 2 || c.BlockedPeerMS != 3 || c.DoneMS != 4 {
		t.Fatalf("idle breakdown: %+v", c)
	}
	if got := FromRow(metrics.Row{}, nil, nil); got.BusUtilization != 0 || got.Reloads != 0 || got.CritComputeMS != 0 {
		t.Fatalf("nil telemetry should leave zeros: %+v", got)
	}
}

func TestKeyAndPath(t *testing.T) {
	c := cell("fig3+4", "matmul2d(n=5)", "DARTS+LUF", 100)
	if got := c.Key(); got != "fig3+4:matmul2d(n=5):DARTS+LUF" {
		t.Fatalf("key = %q", got)
	}
	if got := Path("dir", "fig3+4"); got != filepath.Join("dir", "BENCH_fig3_4.json") {
		t.Fatalf("path = %q", got)
	}
}

func TestWriteLoadRoundTrip(t *testing.T) {
	f := New("fig3+4")
	f.Record(cell("fig3+4", "w1", "EAGER", 5000))
	f.Record(cell("fig3+4", "w1", "DARTS+LUF", 13000))
	path := filepath.Join(t.TempDir(), "BENCH_fig3_4.json")
	if err := f.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != SchemaVersion || got.Figure != "fig3+4" || len(got.Cells) != 2 {
		t.Fatalf("loaded = %+v", got)
	}
	if got.Cells["fig3+4:w1:EAGER"].GFlops != 5000 {
		t.Fatalf("cell values lost: %+v", got.Cells)
	}
	if keys := got.Keys(); keys[0] != "fig3+4:w1:DARTS+LUF" || keys[1] != "fig3+4:w1:EAGER" {
		t.Fatalf("keys unsorted: %v", keys)
	}
}

// TestWriteDeterministic pins the bit-identical-baselines guarantee:
// the same cells recorded in any order serialize to the same bytes.
func TestWriteDeterministic(t *testing.T) {
	dir := t.TempDir()
	a, b := New("fig"), New("fig")
	c1, c2, c3 := cell("fig", "w1", "A", 1), cell("fig", "w2", "B", 2), cell("fig", "w3", "C", 3)
	for _, c := range []Cell{c1, c2, c3} {
		a.Record(c)
	}
	for _, c := range []Cell{c3, c1, c2} {
		b.Record(c)
	}
	pa, pb := filepath.Join(dir, "a.json"), filepath.Join(dir, "b.json")
	if err := a.Write(pa); err != nil {
		t.Fatal(err)
	}
	if err := b.Write(pb); err != nil {
		t.Fatal(err)
	}
	ba, _ := os.ReadFile(pa)
	bb, _ := os.ReadFile(pb)
	if !bytes.Equal(ba, bb) {
		t.Fatalf("files differ:\n%s\nvs\n%s", ba, bb)
	}
	if ba[len(ba)-1] != '\n' {
		t.Fatal("missing trailing newline")
	}
}

func TestLoadRejectsBadSchema(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string]string{
		"newer.json":   `{"schema": 99, "figure": "f", "cells": {}}`,
		"zero.json":    `{"figure": "f", "cells": {}}`,
		"garbage.json": `not json`,
	} {
		p := filepath.Join(dir, name)
		os.WriteFile(p, []byte(content), 0o644)
		if _, err := Load(p); err == nil {
			t.Errorf("%s: want error, got nil", name)
		}
	}
	if _, err := Load(filepath.Join(dir, "absent.json")); !os.IsNotExist(err) {
		t.Fatalf("missing file should surface os.IsNotExist, got %v", err)
	}
}
