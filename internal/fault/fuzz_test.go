package fault

import (
	"testing"
)

// FuzzParseSpec pins the parser against arbitrary input: it must never
// panic, and any spec it accepts must survive a parse → String → parse
// round trip with String as a fixed point (the canonical rendering).
func FuzzParseSpec(f *testing.F) {
	for _, seed := range []string{
		"",
		"none",
		"seed=7",
		"drop=1@5ms",
		"transient=0.05",
		"transient=0.05:4:20us",
		"pressure=0@2ms+3ms:256MB",
		"seed=7,drop=1@5ms,transient=0.05:4:20us,pressure=0@2ms+3ms:256MB",
		"drop=1@5ms,drop=0@1ms",
		"pressure=0@1ms+1ms:17",
		"pressure=2@0s+1us:3KB",
		// Malformed seeds steer the fuzzer toward the error paths.
		"bogus=1", "drop=1", "drop=x@5ms", "transient=0.1:2:zz",
		"pressure=0@1ms", "seed=x", "justaword", ",,,", "drop=@",
		"transient=", "=", "drop=1@5ms,",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		p, err := ParseSpec(spec) // must not panic, whatever the input
		if err != nil {
			return
		}
		if p == nil {
			t.Fatalf("ParseSpec(%q) returned nil plan without error", spec)
		}
		s := p.String()
		p2, err := ParseSpec(s)
		if err != nil {
			t.Fatalf("String %q of accepted spec %q does not re-parse: %v", s, spec, err)
		}
		if got := p2.String(); got != s {
			t.Fatalf("String is not a fixed point: %q -> %q (from %q)", s, got, spec)
		}
	})
}
