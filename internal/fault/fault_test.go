package fault

import (
	"strings"
	"testing"
	"time"
)

func TestEmpty(t *testing.T) {
	var nilPlan *Plan
	if !nilPlan.Empty() {
		t.Error("nil plan not empty")
	}
	if !(&Plan{}).Empty() {
		t.Error("zero plan not empty")
	}
	if !(&Plan{Seed: 7, Transient: &Transient{Rate: 0}}).Empty() {
		t.Error("zero-rate transient plan not empty")
	}
	if (&Plan{Dropouts: []Dropout{{GPU: 0, At: time.Millisecond}}}).Empty() {
		t.Error("dropout plan reported empty")
	}
}

func TestParseSpecRoundTrip(t *testing.T) {
	spec := "seed=7,drop=1@5ms,transient=0.05:4:20us,pressure=0@2ms+3ms:256MB"
	p, err := ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 {
		t.Errorf("seed = %d", p.Seed)
	}
	if len(p.Dropouts) != 1 || p.Dropouts[0].GPU != 1 || p.Dropouts[0].At != 5*time.Millisecond {
		t.Errorf("dropouts = %+v", p.Dropouts)
	}
	if p.Transient == nil || p.Transient.Rate != 0.05 || p.Transient.MaxRetries != 4 ||
		p.Transient.Backoff != 20*time.Microsecond {
		t.Errorf("transient = %+v", p.Transient)
	}
	if len(p.Pressures) != 1 || p.Pressures[0] != (Pressure{GPU: 0, At: 2 * time.Millisecond,
		Duration: 3 * time.Millisecond, Bytes: 256 << 20}) {
		t.Errorf("pressures = %+v", p.Pressures)
	}
	// String renders in ParseSpec syntax; re-parsing reproduces the plan.
	p2, err := ParseSpec(p.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", p.String(), err)
	}
	if p2.String() != p.String() {
		t.Errorf("round trip: %q vs %q", p.String(), p2.String())
	}
}

func TestParseSpecDefaults(t *testing.T) {
	p, err := ParseSpec("transient=0.1")
	if err != nil {
		t.Fatal(err)
	}
	if p.Transient.MaxRetries != DefaultMaxRetries || p.Transient.Backoff != DefaultBackoff {
		t.Errorf("defaults not applied: %+v", p.Transient)
	}
	if p, err = ParseSpec(""); err != nil || !p.Empty() {
		t.Errorf("empty spec: %v, %v", p, err)
	}
	if p, err = ParseSpec("none"); err != nil || !p.Empty() {
		t.Errorf("none spec: %v, %v", p, err)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"bogus=1", "drop=1", "drop=x@5ms", "drop=1@xx",
		"transient=x", "transient=0.1:x", "transient=0.1:2:zz", "transient=1:2:3:4",
		"pressure=0", "pressure=0@1ms", "pressure=0@1ms+1ms", "pressure=0@1ms+1ms:xMB",
		"seed=x", "justaword",
	} {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q) accepted", spec)
		}
	}
}

func TestValidate(t *testing.T) {
	ok := &Plan{
		Dropouts:  []Dropout{{GPU: 1, At: time.Millisecond}},
		Transient: &Transient{Rate: 0.1, MaxRetries: 3, Backoff: time.Microsecond},
		Pressures: []Pressure{{GPU: 0, At: 0, Duration: time.Millisecond, Bytes: 1 << 20}},
	}
	if err := ok.Validate(2); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	cases := []struct {
		name string
		p    *Plan
		want string
	}{
		{"gpu range", &Plan{Dropouts: []Dropout{{GPU: 2, At: 1}}}, "out of range"},
		{"time", &Plan{Dropouts: []Dropout{{GPU: 0, At: 0}}}, "not positive"},
		{"dup", &Plan{Dropouts: []Dropout{{GPU: 0, At: 1}, {GPU: 0, At: 2}}}, "more than once"},
		{"all dead", &Plan{Dropouts: []Dropout{{GPU: 0, At: 1}, {GPU: 1, At: 2}}}, "survive"},
		{"rate", &Plan{Transient: &Transient{Rate: 1.5, MaxRetries: 1}}, "not in [0, 1)"},
		{"retries", &Plan{Transient: &Transient{Rate: 0.1, MaxRetries: 0}}, "retries"},
		{"backoff", &Plan{Transient: &Transient{Rate: 0.1, MaxRetries: 1, Backoff: -1}}, "backoff"},
		{"pressure gpu", &Plan{Pressures: []Pressure{{GPU: 9, Duration: 1, Bytes: 1}}}, "out of range"},
		{"pressure dur", &Plan{Pressures: []Pressure{{GPU: 0, Duration: 0, Bytes: 1}}}, "duration"},
		{"pressure bytes", &Plan{Pressures: []Pressure{{GPU: 0, Duration: 1, Bytes: 0}}}, "bytes not positive"},
	}
	for _, tc := range cases {
		err := tc.p.Validate(2)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.want)
		}
	}
	var nilPlan *Plan
	if err := nilPlan.Validate(2); err != nil {
		t.Errorf("nil plan: %v", err)
	}
}
