// Package fault defines deterministic, seeded fault plans for the
// discrete-event simulator: permanent GPU dropouts, transient host-bus
// and NVLink transfer failures with bounded retry, and memory-pressure
// spikes that temporarily shrink a GPU's memory budget.
//
// A Plan is pure data: the engine (internal/sim) interprets it. The same
// seed and the same plan always produce the identical faulty schedule,
// and an empty plan is a strict no-op — the engine then posts no fault
// events and consumes no fault randomness, so fault-free results stay
// byte-identical to runs configured without a plan.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Dropout is a permanent GPU loss at simulated time At: the GPU's
// resident data is lost, its in-flight task is killed, and it accepts no
// further work. Killed and never-started tasks are re-enqueued to the
// surviving GPUs through the scheduler's DropoutHandler hook.
type Dropout struct {
	// GPU is the accelerator that fails.
	GPU int `json:"gpu"`
	// At is the simulated time of the failure.
	At time.Duration `json:"at_ns"`
}

// Transient parameterizes transient transfer failures: every host-bus or
// NVLink transfer independently fails with probability Rate per attempt,
// is retried after an exponentially growing backoff (Backoff, 2*Backoff,
// 4*Backoff, ...), and succeeds at the latest after MaxRetries failed
// attempts. The backoff is charged as simulated time on the transfer's
// channel, so faulty runs are slower, not wrong.
type Transient struct {
	// Rate is the per-attempt failure probability in [0, 1).
	Rate float64 `json:"rate"`
	// MaxRetries bounds the failed attempts per transfer (>= 1).
	MaxRetries int `json:"max_retries"`
	// Backoff is the delay after the first failed attempt; attempt i
	// waits Backoff << i.
	Backoff time.Duration `json:"backoff_ns"`
}

// DefaultMaxRetries and DefaultBackoff are the ParseSpec defaults for
// transient clauses that do not spell them out.
const (
	DefaultMaxRetries = 4
	DefaultBackoff    = 20 * time.Microsecond
)

// Pressure is a memory-pressure spike: from At to At+Duration the memory
// budget of GPU shrinks by Bytes (e.g. another tenant allocating on the
// same device). The engine evicts unpinned data down to the shrunk
// budget and parks new fetches that no longer fit.
type Pressure struct {
	// GPU is the accelerator under pressure.
	GPU int `json:"gpu"`
	// At is the start of the spike; Duration its length.
	At       time.Duration `json:"at_ns"`
	Duration time.Duration `json:"duration_ns"`
	// Bytes is how much memory the spike withholds.
	Bytes int64 `json:"bytes"`
}

// Plan is one deterministic fault schedule. The zero value is the empty
// plan (a strict no-op).
type Plan struct {
	// Seed feeds the fault randomness (the transient failure draws),
	// independent of the scheduler's tie-break randomness so the same
	// plan perturbs every strategy identically.
	Seed int64 `json:"seed"`
	// Dropouts lists the permanent GPU losses.
	Dropouts []Dropout `json:"dropouts,omitempty"`
	// Transient, when non-nil with Rate > 0, enables transient transfer
	// failures.
	Transient *Transient `json:"transient,omitempty"`
	// Pressures lists the memory-pressure spikes.
	Pressures []Pressure `json:"pressures,omitempty"`
}

// Empty reports whether the plan injects no faults at all. A nil or
// empty plan makes the engine behave byte-identically to a run without
// any plan.
func (p *Plan) Empty() bool {
	if p == nil {
		return true
	}
	return len(p.Dropouts) == 0 && len(p.Pressures) == 0 &&
		(p.Transient == nil || p.Transient.Rate <= 0)
}

// Validate checks the plan against a machine with numGPUs accelerators.
func (p *Plan) Validate(numGPUs int) error {
	if p == nil {
		return nil
	}
	seen := make(map[int]bool, len(p.Dropouts))
	for i, d := range p.Dropouts {
		if d.GPU < 0 || d.GPU >= numGPUs {
			return fmt.Errorf("fault: dropout %d: gpu %d out of range [0, %d)", i, d.GPU, numGPUs)
		}
		if d.At <= 0 {
			return fmt.Errorf("fault: dropout %d: time %v not positive", i, d.At)
		}
		if seen[d.GPU] {
			return fmt.Errorf("fault: gpu %d dropped more than once", d.GPU)
		}
		seen[d.GPU] = true
	}
	if len(p.Dropouts) >= numGPUs && numGPUs > 0 {
		return fmt.Errorf("fault: all %d GPUs drop out; at least one must survive", numGPUs)
	}
	if t := p.Transient; t != nil && t.Rate > 0 {
		if t.Rate >= 1 {
			return fmt.Errorf("fault: transient rate %g not in [0, 1)", t.Rate)
		}
		if t.MaxRetries < 1 || t.MaxRetries > 16 {
			return fmt.Errorf("fault: transient max retries %d not in [1, 16]", t.MaxRetries)
		}
		if t.Backoff < 0 {
			return fmt.Errorf("fault: negative transient backoff %v", t.Backoff)
		}
	}
	for i, pr := range p.Pressures {
		if pr.GPU < 0 || pr.GPU >= numGPUs {
			return fmt.Errorf("fault: pressure %d: gpu %d out of range [0, %d)", i, pr.GPU, numGPUs)
		}
		if pr.At < 0 {
			return fmt.Errorf("fault: pressure %d: negative start %v", i, pr.At)
		}
		if pr.Duration <= 0 {
			return fmt.Errorf("fault: pressure %d: duration %v not positive", i, pr.Duration)
		}
		if pr.Bytes <= 0 {
			return fmt.Errorf("fault: pressure %d: %d bytes not positive", i, pr.Bytes)
		}
	}
	return nil
}

// String renders the plan in ParseSpec syntax (canonical clause order:
// seed, drops, transient, pressures).
func (p *Plan) String() string {
	if p.Empty() {
		return "none"
	}
	var parts []string
	if p.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", p.Seed))
	}
	for _, d := range p.Dropouts {
		parts = append(parts, fmt.Sprintf("drop=%d@%v", d.GPU, d.At))
	}
	if t := p.Transient; t != nil && t.Rate > 0 {
		parts = append(parts, fmt.Sprintf("transient=%g:%d:%v", t.Rate, t.MaxRetries, t.Backoff))
	}
	for _, pr := range p.Pressures {
		parts = append(parts, fmt.Sprintf("pressure=%d@%v+%v:%d", pr.GPU, pr.At, pr.Duration, pr.Bytes))
	}
	return strings.Join(parts, ",")
}

// ParseSpec parses the command-line fault syntax used by
// `paperbench -faults`: comma-separated clauses
//
//	seed=N
//	drop=GPU@TIME                     e.g. drop=1@5ms
//	transient=RATE[:RETRIES[:BACKOFF]] e.g. transient=0.05:4:20us
//	pressure=GPU@START+DURATION:BYTES  e.g. pressure=0@2ms+3ms:256MB
//
// TIME/DURATION/BACKOFF use Go duration syntax; BYTES accepts a plain
// byte count or a KB/MB/GB suffix. Returns the parsed plan, which is
// nil-safe to pass to the engine even when empty.
func ParseSpec(spec string) (*Plan, error) {
	p := &Plan{}
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "none" {
		return p, nil
	}
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		key, val, ok := strings.Cut(clause, "=")
		if !ok {
			return nil, fmt.Errorf("fault: clause %q is not key=value", clause)
		}
		switch key {
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: seed %q: %v", val, err)
			}
			p.Seed = n
		case "drop":
			gpuStr, atStr, ok := strings.Cut(val, "@")
			if !ok {
				return nil, fmt.Errorf("fault: drop clause %q wants GPU@TIME", val)
			}
			gpu, err := strconv.Atoi(gpuStr)
			if err != nil {
				return nil, fmt.Errorf("fault: drop gpu %q: %v", gpuStr, err)
			}
			at, err := time.ParseDuration(atStr)
			if err != nil {
				return nil, fmt.Errorf("fault: drop time %q: %v", atStr, err)
			}
			p.Dropouts = append(p.Dropouts, Dropout{GPU: gpu, At: at})
		case "transient":
			t := Transient{MaxRetries: DefaultMaxRetries, Backoff: DefaultBackoff}
			fields := strings.Split(val, ":")
			if len(fields) > 3 {
				return nil, fmt.Errorf("fault: transient clause %q wants RATE[:RETRIES[:BACKOFF]]", val)
			}
			rate, err := strconv.ParseFloat(fields[0], 64)
			if err != nil {
				return nil, fmt.Errorf("fault: transient rate %q: %v", fields[0], err)
			}
			t.Rate = rate
			if len(fields) > 1 {
				if t.MaxRetries, err = strconv.Atoi(fields[1]); err != nil {
					return nil, fmt.Errorf("fault: transient retries %q: %v", fields[1], err)
				}
			}
			if len(fields) > 2 {
				if t.Backoff, err = time.ParseDuration(fields[2]); err != nil {
					return nil, fmt.Errorf("fault: transient backoff %q: %v", fields[2], err)
				}
			}
			p.Transient = &t
		case "pressure":
			gpuStr, rest, ok := strings.Cut(val, "@")
			if !ok {
				return nil, fmt.Errorf("fault: pressure clause %q wants GPU@START+DURATION:BYTES", val)
			}
			gpu, err := strconv.Atoi(gpuStr)
			if err != nil {
				return nil, fmt.Errorf("fault: pressure gpu %q: %v", gpuStr, err)
			}
			span, bytesStr, ok := strings.Cut(rest, ":")
			if !ok {
				return nil, fmt.Errorf("fault: pressure clause %q wants GPU@START+DURATION:BYTES", val)
			}
			startStr, durStr, ok := strings.Cut(span, "+")
			if !ok {
				return nil, fmt.Errorf("fault: pressure span %q wants START+DURATION", span)
			}
			at, err := time.ParseDuration(startStr)
			if err != nil {
				return nil, fmt.Errorf("fault: pressure start %q: %v", startStr, err)
			}
			dur, err := time.ParseDuration(durStr)
			if err != nil {
				return nil, fmt.Errorf("fault: pressure duration %q: %v", durStr, err)
			}
			bytes, err := parseBytes(bytesStr)
			if err != nil {
				return nil, err
			}
			p.Pressures = append(p.Pressures, Pressure{GPU: gpu, At: at, Duration: dur, Bytes: bytes})
		default:
			return nil, fmt.Errorf("fault: unknown clause %q (want seed/drop/transient/pressure)", key)
		}
	}
	// Canonical event order keeps plans comparable and the engine's event
	// posting deterministic regardless of how the spec was spelled.
	sort.SliceStable(p.Dropouts, func(i, j int) bool { return p.Dropouts[i].At < p.Dropouts[j].At })
	sort.SliceStable(p.Pressures, func(i, j int) bool { return p.Pressures[i].At < p.Pressures[j].At })
	return p, nil
}

// parseBytes parses a byte count with an optional KB/MB/GB suffix.
func parseBytes(s string) (int64, error) {
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "GB"):
		mult, s = 1<<30, strings.TrimSuffix(s, "GB")
	case strings.HasSuffix(s, "MB"):
		mult, s = 1<<20, strings.TrimSuffix(s, "MB")
	case strings.HasSuffix(s, "KB"):
		mult, s = 1<<10, strings.TrimSuffix(s, "KB")
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("fault: byte count %q: %v", s, err)
	}
	return n * mult, nil
}
