package hypergraph

// bisection holds the mutable state of a 2-way partition under refinement.
type bisection struct {
	h     *Hypergraph
	part  []int      // 0 or 1 per vertex
	partW [2]int64   // current side weights
	maxW  [2]int64   // balance caps
	pins  [][2]int32 // per net: pins on each side
}

func newBisection(h *Hypergraph, part []int, maxW [2]int64) *bisection {
	b := &bisection{h: h, part: part, maxW: maxW}
	b.pins = make([][2]int32, h.NumNets())
	for v, p := range part {
		b.partW[p] += h.VertexWeight(v)
	}
	for n := 0; n < h.NumNets(); n++ {
		for _, p := range h.Net(n) {
			b.pins[n][part[p]]++
		}
	}
	return b
}

// gain returns the cut reduction obtained by moving v to the other side.
func (b *bisection) gain(v int) int64 {
	from := b.part[v]
	to := 1 - from
	var g int64
	for _, ni := range b.h.Incidence(v) {
		n := int(ni)
		w := b.h.NetWeight(n)
		if b.pins[n][from] == 1 {
			g += w // net becomes uncut
		}
		if b.pins[n][to] == 0 {
			g -= w // net becomes cut
		}
	}
	return g
}

// move transfers v to the other side, updating side weights and pin counts.
func (b *bisection) move(v int) {
	from := b.part[v]
	to := 1 - from
	b.part[v] = to
	w := b.h.VertexWeight(v)
	b.partW[from] -= w
	b.partW[to] += w
	for _, ni := range b.h.Incidence(v) {
		b.pins[ni][from]--
		b.pins[ni][to]++
	}
}

func (b *bisection) cut() int64 {
	var c int64
	for n := 0; n < b.h.NumNets(); n++ {
		if b.pins[n][0] > 0 && b.pins[n][1] > 0 {
			c += b.h.NetWeight(n)
		}
	}
	return c
}

func (b *bisection) feasible() bool {
	return b.partW[0] <= b.maxW[0] && b.partW[1] <= b.maxW[1]
}

// rebalance greedily moves vertices out of an overweight side, choosing
// at each step the vertex whose move loses the least cut, until both
// sides respect their caps (or no move can help). Returns ops performed.
func (b *bisection) rebalance() int64 {
	var ops int64
	for !b.feasible() {
		from := 0
		if b.partW[1] > b.maxW[1] {
			from = 1
		}
		to := 1 - from
		best, bestGain := -1, int64(-1<<62)
		for v := range b.part {
			if b.part[v] != from {
				continue
			}
			if b.partW[to]+b.h.VertexWeight(v) > b.maxW[to] && b.partW[from]-b.h.VertexWeight(v) >= b.partW[to] {
				// Moving would just swap which side is overweight
				// without making progress.
				continue
			}
			g := b.gain(v)
			ops += int64(len(b.h.Incidence(v)))
			if g > bestGain {
				best, bestGain = v, g
			}
		}
		if best < 0 {
			return ops
		}
		b.move(best)
		ops += int64(len(b.h.Incidence(best)))
	}
	return ops
}

// gainEntry is a lazily invalidated max-heap entry of the FM pass.
type gainEntry struct {
	gain int64
	v    int
	gen  int32
}

// before orders entries best-gain-first, vertex index ascending on ties.
// Entries can collide only as stale duplicates of the same vertex (same
// gain, same v, older gen); those pop adjacently under any heap shape and
// the gen check skips all but the live one, so the applied-move sequence
// is independent of the heap arity.
func (a gainEntry) before(o gainEntry) bool {
	if a.gain != o.gain {
		return a.gain > o.gain
	}
	return a.v < o.v
}

// gainHeap is a 4-ary max-heap of gain entries. Like the simulator's
// event queue it avoids container/heap: Push(any)/Pop() any box every
// entry, and the FM inner loop pushes one entry per refreshed neighbor.
type gainHeap struct {
	a []gainEntry
}

func (h *gainHeap) len() int { return len(h.a) }

func (h *gainHeap) push(e gainEntry) {
	h.a = append(h.a, e)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !h.a[i].before(h.a[p]) {
			break
		}
		h.a[i], h.a[p] = h.a[p], h.a[i]
		i = p
	}
}

func (h *gainHeap) pop() gainEntry {
	top := h.a[0]
	n := len(h.a) - 1
	h.a[0] = h.a[n]
	h.a = h.a[:n]
	i := 0
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if h.a[c].before(h.a[best]) {
				best = c
			}
		}
		if !h.a[best].before(h.a[i]) {
			break
		}
		h.a[i], h.a[best] = h.a[best], h.a[i]
		i = best
	}
	return top
}

// fmPass runs one Fiduccia–Mattheyses pass: vertices are tentatively moved
// in best-gain-first order under the balance caps, each at most once, and
// the best prefix of the move sequence is kept. Returns the cut
// improvement of the pass and the ops performed.
func (b *bisection) fmPass() (improved int64, ops int64) {
	n := b.h.NumVertices()
	locked := make([]bool, n)
	gen := make([]int32, n)
	gh := gainHeap{a: make([]gainEntry, 0, n)}
	for v := 0; v < n; v++ {
		gh.push(gainEntry{gain: b.gain(v), v: v})
		ops += int64(len(b.h.Incidence(v)))
	}

	type moveRec struct{ v int }
	var moves []moveRec
	var cum, bestCum int64
	bestIdx := 0 // number of moves of the best prefix

	for gh.len() > 0 {
		e := gh.pop()
		if locked[e.v] || e.gen != gen[e.v] {
			continue
		}
		from := b.part[e.v]
		to := 1 - from
		if b.partW[to]+b.h.VertexWeight(e.v) > b.maxW[to] {
			continue // cannot move under balance; entry consumed
		}
		// Entry gains can be stale only in gen, which we checked; but
		// recompute defensively to keep the pass exact.
		g := b.gain(e.v)
		ops += int64(len(b.h.Incidence(e.v)))
		b.move(e.v)
		locked[e.v] = true
		cum += g
		moves = append(moves, moveRec{v: e.v})
		if cum > bestCum {
			bestCum = cum
			bestIdx = len(moves)
		}
		// Refresh neighbors whose gain may have changed.
		for _, ni := range b.h.Incidence(e.v) {
			net := b.h.Net(int(ni))
			if len(net) > maxNetSizeForMatching {
				continue
			}
			for _, u := range net {
				if !locked[u] {
					gen[u]++
					ng := b.gain(int(u))
					ops += int64(len(b.h.Incidence(int(u))))
					gh.push(gainEntry{gain: ng, v: int(u), gen: gen[u]})
				}
			}
		}
	}
	// Roll back moves beyond the best prefix.
	for i := len(moves) - 1; i >= bestIdx; i-- {
		b.move(moves[i].v)
	}
	return bestCum, ops
}

// refine runs FM passes until a pass yields no improvement, up to
// maxPasses, after an initial rebalance. Returns ops performed.
func (b *bisection) refine(maxPasses int) int64 {
	ops := b.rebalance()
	for i := 0; i < maxPasses; i++ {
		improved, passOps := b.fmPass()
		ops += passOps
		if improved <= 0 {
			break
		}
	}
	return ops
}
