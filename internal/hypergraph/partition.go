package hypergraph

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
)

// Config parameterizes Partition. The defaults mirror the paper's hMETIS
// settings (§IV-B): UBfactor 1, Nruns 20, V-cycles 2.
type Config struct {
	// K is the number of parts. Required, >= 1.
	K int
	// UBFactor is the allowed imbalance of each bisection, in percent,
	// as defined by hMETIS: each side may take up to (50+UBFactor)% of
	// the weight (scaled by its target fraction for uneven splits).
	// Zero selects 1, the paper's setting for almost perfectly balanced
	// partitions.
	UBFactor float64
	// Seed drives all random choices. Runs are deterministic per seed.
	Seed int64
	// Nruns is the number of random initial bisections tried at the
	// coarsest level (best kept). Zero selects 20, the paper's setting.
	Nruns int
	// VCycles is the number of independent multilevel runs; the best
	// final partition wins. Zero selects 2, the paper's setting.
	VCycles int
	// MinCoarse stops coarsening below this many vertices. Zero
	// selects 64.
	MinCoarse int
	// MaxPasses bounds FM refinement passes per level. Zero selects 4.
	MaxPasses int
	// Parallel runs the V-cycles concurrently on a bounded worker pool.
	// Each cycle already owns an independent RNG stream seeded from
	// (Seed, cycle), and the winning partition is folded in cycle order,
	// so the result is bit-identical to the sequential run.
	Parallel bool
}

func (c Config) withDefaults() Config {
	if c.UBFactor == 0 {
		c.UBFactor = 1
	}
	if c.Nruns == 0 {
		c.Nruns = 20
	}
	if c.VCycles == 0 {
		c.VCycles = 2
	}
	if c.MinCoarse == 0 {
		c.MinCoarse = 64
	}
	if c.MaxPasses == 0 {
		c.MaxPasses = 4
	}
	return c
}

// Stats reports the work done by Partition, for the scheduler cost model.
type Stats struct {
	// Ops approximates the pin traversals performed.
	Ops int64
	// Cut is the connectivity-1 objective of the returned partition.
	Cut int64
}

// Partition splits the vertices of h into cfg.K parts of balanced weight
// minimizing cut net weight, by multilevel recursive bisection. It returns
// the part index of every vertex.
func Partition(h *Hypergraph, cfg Config) ([]int, Stats, error) {
	if cfg.K < 1 {
		return nil, Stats{}, fmt.Errorf("hypergraph: K = %d", cfg.K)
	}
	cfg = cfg.withDefaults()
	part := make([]int, h.NumVertices())
	if cfg.K == 1 {
		return part, Stats{}, nil
	}
	var stats Stats
	// Each V-cycle is an independent multilevel run with its own RNG
	// stream; runCycle is the unit both the sequential and the parallel
	// paths execute.
	runCycle := func(cycle int) ([]int, int64, int64) {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(cycle)*7919))
		cur := make([]int, h.NumVertices())
		ids := make([]int32, h.NumVertices())
		for v := range ids {
			ids[v] = int32(v)
		}
		ops := recursiveBisect(h, ids, cfg.K, 0, cfg, rng, cur)
		if cfg.K > 2 {
			// Direct K-way refinement sees gains across the bisection
			// cuts that recursive FM cannot.
			total := h.TotalVertexWeight()
			slack := int64(float64(total) * cfg.UBFactor / 100)
			if slack < 1 {
				slack = 1
			}
			maxW := make([]int64, cfg.K)
			for i := range maxW {
				maxW[i] = total/int64(cfg.K) + slack
			}
			ops += kwayRefine(h, cur, cfg.K, maxW, rng, cfg.MaxPasses)
		}
		obj := h.ConnectivityMinusOne(cur, cfg.K)
		ops += int64(h.NumPins())
		return cur, obj, ops
	}

	parts := make([][]int, cfg.VCycles)
	objs := make([]int64, cfg.VCycles)
	opsPer := make([]int64, cfg.VCycles)
	if cfg.Parallel && cfg.VCycles > 1 {
		// Bounded worker pool; cycles land in their slot, so the
		// cycle-order fold below (and therefore the winner on ties) is
		// identical to the sequential loop. Ops is an order-independent
		// sum.
		workers := runtime.GOMAXPROCS(0)
		if workers > cfg.VCycles {
			workers = cfg.VCycles
		}
		var wg sync.WaitGroup
		jobs := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for cycle := range jobs {
					parts[cycle], objs[cycle], opsPer[cycle] = runCycle(cycle)
				}
			}()
		}
		for cycle := 0; cycle < cfg.VCycles; cycle++ {
			jobs <- cycle
		}
		close(jobs)
		wg.Wait()
	} else {
		for cycle := 0; cycle < cfg.VCycles; cycle++ {
			parts[cycle], objs[cycle], opsPer[cycle] = runCycle(cycle)
		}
	}

	best := make([]int, h.NumVertices())
	bestObj := int64(-1)
	for cycle := 0; cycle < cfg.VCycles; cycle++ {
		stats.Ops += opsPer[cycle]
		if bestObj < 0 || objs[cycle] < bestObj {
			bestObj = objs[cycle]
			copy(best, parts[cycle])
		}
	}
	stats.Cut = bestObj
	return best, stats, nil
}

// recursiveBisect splits the sub-hypergraph induced by the vertices ids of
// h into k parts labeled firstLabel..firstLabel+k-1, writing the result
// into out (indexed by original vertex id). Returns ops performed.
func recursiveBisect(h *Hypergraph, ids []int32, k, firstLabel int, cfg Config, rng *rand.Rand, out []int) int64 {
	if k == 1 {
		for _, v := range ids {
			out[v] = firstLabel
		}
		return 0
	}
	sub, subIDs := induce(h, ids)
	k0 := (k + 1) / 2
	k1 := k - k0
	total := sub.TotalVertexWeight()
	t0 := total * int64(k0) / int64(k)
	// hMETIS-style caps: each side may exceed its target by UBFactor% of
	// the total weight.
	slack := int64(float64(total) * cfg.UBFactor / 100)
	if slack < 1 {
		slack = 1
	}
	maxW := [2]int64{t0 + slack, (total - t0) + slack}
	part, ops := multilevelBisect(sub, [2]int64{t0, total - t0}, maxW, cfg, rng)
	var side0, side1 []int32
	for i, v := range subIDs {
		if part[i] == 0 {
			side0 = append(side0, v)
		} else {
			side1 = append(side1, v)
		}
	}
	ops += recursiveBisect(h, side0, k0, firstLabel, cfg, rng, out)
	ops += recursiveBisect(h, side1, k1, firstLabel+k0, cfg, rng, out)
	return ops
}

// induce builds the sub-hypergraph of h restricted to ids. Nets keep the
// pins inside ids; nets reduced below two pins are dropped.
func induce(h *Hypergraph, ids []int32) (*Hypergraph, []int32) {
	local := make(map[int32]int32, len(ids))
	for i, v := range ids {
		local[v] = int32(i)
	}
	sub := New(len(ids))
	for i, v := range ids {
		sub.SetVertexWeight(i, h.VertexWeight(int(v)))
	}
	pins := make([]int32, 0, 64)
	for n := 0; n < h.NumNets(); n++ {
		pins = pins[:0]
		for _, p := range h.Net(n) {
			if lp, ok := local[p]; ok {
				pins = append(pins, lp)
			}
		}
		if len(pins) >= 2 {
			sub.AddNet(h.NetWeight(n), pins...)
		}
	}
	return sub, ids
}

// multilevelBisect computes a 2-way partition of h with the given target
// side weights and caps, using the multilevel scheme.
func multilevelBisect(h *Hypergraph, targetW, maxW [2]int64, cfg Config, rng *rand.Rand) ([]int, int64) {
	var ops int64
	if h.NumVertices() <= cfg.MinCoarse {
		part, o := initialBisect(h, targetW, maxW, cfg, rng)
		return part, ops + o
	}
	partner, coarseCount, o := match(h, rng)
	ops += o
	// Stop coarsening when matching stalls (< 10% reduction).
	if coarseCount > h.NumVertices()*9/10 {
		part, o := initialBisect(h, targetW, maxW, cfg, rng)
		return part, ops + o
	}
	coarseH, fine2coarse, o := contract(h, partner)
	ops += o
	coarsePart, o := multilevelBisect(coarseH, targetW, maxW, cfg, rng)
	ops += o
	part := make([]int, h.NumVertices())
	for v := range part {
		part[v] = coarsePart[fine2coarse[v]]
	}
	b := newBisection(h, part, maxW)
	ops += b.refine(cfg.MaxPasses)
	return part, ops
}

// initialBisect computes the best of cfg.Nruns greedy-growth bisections of
// the (coarsest) hypergraph, each refined by FM.
func initialBisect(h *Hypergraph, targetW, maxW [2]int64, cfg Config, rng *rand.Rand) ([]int, int64) {
	var ops int64
	n := h.NumVertices()
	best := make([]int, n)
	bestCut := int64(-1)
	bestFeasible := false
	cur := make([]int, n)
	for run := 0; run < cfg.Nruns; run++ {
		growBisect(h, targetW[0], rng, cur)
		b := newBisection(h, cur, maxW)
		ops += b.refine(cfg.MaxPasses)
		cut := b.cut()
		feas := b.feasible()
		better := bestCut < 0 ||
			(feas && !bestFeasible) ||
			(feas == bestFeasible && cut < bestCut)
		if better {
			bestCut = cut
			bestFeasible = feas
			copy(best, cur)
		}
	}
	return best, ops
}

// growBisect seeds part 0 with a random vertex and grows it by maximum
// connectivity to the grown set until it reaches target weight; all other
// vertices form part 1. The result is written into out.
func growBisect(h *Hypergraph, target int64, rng *rand.Rand, out []int) {
	n := h.NumVertices()
	for v := range out {
		out[v] = 1
	}
	inSet := make([]bool, n)
	score := make([]float64, n)
	seed := rng.Intn(n)
	var w int64
	add := func(v int) {
		inSet[v] = true
		out[v] = 0
		w += h.VertexWeight(v)
		for _, ni := range h.Incidence(v) {
			net := h.Net(int(ni))
			if len(net) > maxNetSizeForMatching {
				continue
			}
			r := float64(h.NetWeight(int(ni))) / float64(len(net)-1)
			for _, u := range net {
				if !inSet[u] {
					score[u] += r
				}
			}
		}
	}
	add(seed)
	for w < target {
		best := -1
		bestScore := -1.0
		for v := 0; v < n; v++ {
			if !inSet[v] && score[v] > bestScore {
				best, bestScore = v, score[v]
			}
		}
		if best < 0 {
			break
		}
		if bestScore == 0 {
			// Disconnected remainder: take a random outside vertex.
			cands := make([]int, 0, n)
			for v := 0; v < n; v++ {
				if !inSet[v] {
					cands = append(cands, v)
				}
			}
			best = cands[rng.Intn(len(cands))]
		}
		add(best)
	}
}
