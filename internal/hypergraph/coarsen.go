package hypergraph

import (
	"math/rand"
	"sort"
)

// coarsening contracts pairs of heavily connected vertices, producing a
// smaller hypergraph that preserves the cut structure. We use
// heavy-connectivity matching: each unmatched vertex (visited in random
// order) is matched with the unmatched vertex it shares the most net
// weight with, rating each shared net n as weight(n)/(|n|-1) as in
// hMETIS' edge-coarsening scheme.

// maxNetSizeForMatching bounds the nets considered while rating matches;
// gigantic nets connect almost everything and carry no locality signal.
const maxNetSizeForMatching = 4096

// match returns, for each vertex, its matched partner (or itself) and the
// number of coarse vertices. ops counts rating work for cost accounting.
func match(h *Hypergraph, rng *rand.Rand) (partner []int32, coarse int, ops int64) {
	n := h.NumVertices()
	partner = make([]int32, n)
	for v := range partner {
		partner[v] = -1
	}
	order := rng.Perm(n)
	// Dense epoch-marked scoring: score[u] is live only when mark[u]
	// equals the current vertex's epoch, so the arrays reset in O(1) per
	// vertex instead of clearing a map. Accumulation order (per net, in
	// incidence order) and the ascending candidate scan are identical to
	// the map-based version, so the matching is unchanged.
	score := make([]float64, n)
	seen := make([]int32, n)
	for i := range seen {
		seen[i] = -1
	}
	cands := make([]int32, 0, 64)
	for epoch, v := range order {
		if partner[v] >= 0 {
			continue
		}
		cands = cands[:0]
		for _, ni := range h.Incidence(v) {
			net := h.Net(int(ni))
			if len(net) > maxNetSizeForMatching {
				continue
			}
			r := float64(h.NetWeight(int(ni))) / float64(len(net)-1)
			for _, u := range net {
				if int(u) != v && partner[u] < 0 {
					if seen[u] != int32(epoch) {
						seen[u] = int32(epoch)
						score[u] = r
						cands = append(cands, u)
					} else {
						score[u] += r
					}
				}
			}
			ops += int64(len(net))
		}
		best := int32(-1)
		bestScore := 0.0
		// Deterministic iteration: sort candidates ascending.
		sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
		for _, u := range cands {
			s := score[u]
			// Prefer lighter partners on ties to keep weights balanced.
			if s > bestScore || (s == bestScore && best >= 0 && h.VertexWeight(int(u)) < h.VertexWeight(int(best))) {
				best, bestScore = u, s
			}
		}
		if best >= 0 {
			partner[v] = best
			partner[best] = int32(v)
		} else {
			partner[v] = int32(v)
		}
	}
	coarse = 0
	for v := range partner {
		if int(partner[v]) >= v {
			coarse++
		}
	}
	return partner, coarse, ops
}

// contract builds the coarse hypergraph for a matching. fine2coarse maps
// every fine vertex to its coarse vertex. Identical coarse nets are merged
// (their weights summed) and single-pin nets dropped.
func contract(h *Hypergraph, partner []int32) (coarseH *Hypergraph, fine2coarse []int32, ops int64) {
	n := h.NumVertices()
	fine2coarse = make([]int32, n)
	next := int32(0)
	for v := 0; v < n; v++ {
		if int(partner[v]) >= v { // representative of its pair (or singleton)
			fine2coarse[v] = next
			if int(partner[v]) != v {
				fine2coarse[partner[v]] = next
			}
			next++
		}
	}
	coarseH = New(int(next))
	for v := 0; v < n; v++ {
		if int(partner[v]) >= v {
			w := h.VertexWeight(v)
			if int(partner[v]) != v {
				w += h.VertexWeight(int(partner[v]))
			}
			coarseH.SetVertexWeight(int(fine2coarse[v]), w)
		}
	}
	type netKey string
	merged := make(map[netKey]int) // key -> net index in coarseH
	buf := make([]int32, 0, 64)
	for ni := 0; ni < h.NumNets(); ni++ {
		net := h.Net(ni)
		buf = buf[:0]
		for _, p := range net {
			buf = append(buf, fine2coarse[p])
		}
		ops += int64(len(net))
		sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
		uniq := buf[:0]
		for i, p := range buf {
			if i == 0 || p != buf[i-1] {
				uniq = append(uniq, p)
			}
		}
		if len(uniq) < 2 {
			continue
		}
		key := make([]byte, 0, len(uniq)*4)
		for _, p := range uniq {
			key = append(key, byte(p), byte(p>>8), byte(p>>16), byte(p>>24))
		}
		if idx, ok := merged[netKey(key)]; ok {
			coarseH.netWeights[idx] += h.NetWeight(ni)
			continue
		}
		coarseH.AddNet(h.NetWeight(ni), uniq...)
		merged[netKey(key)] = coarseH.NumNets() - 1
	}
	return coarseH, fine2coarse, ops
}
