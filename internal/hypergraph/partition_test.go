package hypergraph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// twoClusters builds a hypergraph with two dense clusters of size n joined
// by a single bridging net: the optimal bisection cuts exactly that net.
func twoClusters(n int) *Hypergraph {
	h := New(2 * n)
	for c := 0; c < 2; c++ {
		base := int32(c * n)
		// Dense intra-cluster nets: consecutive triples.
		for i := 0; i+2 < n; i++ {
			h.AddNet(1, base+int32(i), base+int32(i+1), base+int32(i+2))
		}
		// One net tying the whole cluster together.
		pins := make([]int32, n)
		for i := range pins {
			pins[i] = base + int32(i)
		}
		h.AddNet(2, pins...)
	}
	h.AddNet(1, 0, int32(n)) // bridge
	return h
}

func TestBisectTwoClusters(t *testing.T) {
	h := twoClusters(40)
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	part, stats, err := Partition(h, Config{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	w := h.PartWeights(part, 2)
	if w[0] != 40 || w[1] != 40 {
		t.Fatalf("imbalanced parts: %v", w)
	}
	if stats.Cut != 1 {
		t.Fatalf("cut = %d, want 1 (only the bridge net)", stats.Cut)
	}
	// The two clusters must land in different parts.
	for v := 1; v < 40; v++ {
		if part[v] != part[0] {
			t.Fatalf("cluster 0 split: vertex %d", v)
		}
		if part[40+v] != part[40] {
			t.Fatalf("cluster 1 split: vertex %d", 40+v)
		}
	}
}

func TestPartitionFourWayBalance(t *testing.T) {
	// A 12x12 2D-matmul-style hypergraph: 144 tasks, 24 nets of 12 pins.
	n := 12
	h := New(n * n)
	for i := 0; i < n; i++ {
		pins := make([]int32, n)
		for j := 0; j < n; j++ {
			pins[j] = int32(i*n + j)
		}
		h.AddNet(1, pins...) // row net
		for j := 0; j < n; j++ {
			pins[j] = int32(j*n + i)
		}
		h.AddNet(1, pins...) // column net
	}
	part, stats, err := Partition(h, Config{K: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	w := h.PartWeights(part, 4)
	for p, pw := range w {
		if pw < 30 || pw > 42 {
			t.Fatalf("part %d weight %d outside [30,42]: %v", p, pw, w)
		}
	}
	// A random 4-way split cuts essentially all 24 nets with lambda 4
	// (obj ~72); a good partition of the grid achieves far less.
	if stats.Cut >= 60 {
		t.Fatalf("connectivity-1 objective %d too high", stats.Cut)
	}
}

func TestPartitionDeterministic(t *testing.T) {
	h := twoClusters(30)
	a, _, err := Partition(h, Config{K: 2, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Partition(h, Config{K: 2, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("nondeterministic partition at vertex %d", v)
		}
	}
}

func TestPartitionPropertyRandom(t *testing.T) {
	// Property: for random hypergraphs, Partition returns a complete
	// assignment with every part within the balance cap, and the
	// connectivity-1 objective is no worse than total net weight times
	// (K-1) (the trivial upper bound).
	f := func(seed int64, kRaw uint8, nRaw uint8) bool {
		k := 2 + int(kRaw%3)    // 2..4
		n := 3*k + int(nRaw%40) // enough vertices per part
		rng := rand.New(rand.NewSource(seed))
		h := New(n)
		nets := 2 * n
		var totalW int64
		for i := 0; i < nets; i++ {
			sz := 2 + rng.Intn(4)
			pins := make([]int32, 0, sz)
			seen := map[int32]bool{}
			for len(pins) < sz {
				p := int32(rng.Intn(n))
				if !seen[p] {
					seen[p] = true
					pins = append(pins, p)
				}
			}
			w := int64(1 + rng.Intn(3))
			h.AddNet(w, pins...)
			totalW += w
		}
		part, stats, err := Partition(h, Config{K: k, Seed: seed})
		if err != nil {
			return false
		}
		for _, p := range part {
			if p < 0 || p >= k {
				return false
			}
		}
		w := h.PartWeights(part, k)
		total := h.TotalVertexWeight()
		// Recursive bisection with UBFactor=1 can compound imbalance a
		// little; allow 15% of total above the perfect share.
		cap64 := total/int64(k) + total*15/100 + 1
		for _, pw := range w {
			if pw > cap64 {
				return false
			}
		}
		return stats.Cut <= totalW*int64(k-1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestInducePreservesStructure(t *testing.T) {
	h := twoClusters(10)
	ids := []int32{0, 1, 2, 3, 4}
	sub, subIDs := induce(h, ids)
	if len(subIDs) != 5 || sub.NumVertices() != 5 {
		t.Fatalf("wrong sub size")
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
	// Nets with >= 2 pins inside {0..4}: triples (0,1,2),(1,2,3),(2,3,4),
	// the triple (3,4,5) reduced to (3,4), and the cluster-wide net
	// reduced to 5 pins. The bridge net (0,10) drops to one pin.
	if sub.NumNets() != 5 {
		t.Fatalf("sub has %d nets, want 5", sub.NumNets())
	}
}

func TestCutAndConnectivity(t *testing.T) {
	h := New(4)
	h.AddNet(3, 0, 1)
	h.AddNet(5, 0, 1, 2, 3)
	h.AddNet(2, 2, 3)
	part := []int{0, 0, 1, 1}
	if c := h.Cut(part); c != 5 {
		t.Fatalf("cut = %d, want 5", c)
	}
	if c := h.ConnectivityMinusOne(part, 2); c != 5 {
		t.Fatalf("conn-1 = %d, want 5", c)
	}
	part = []int{0, 1, 2, 3}
	if c := h.ConnectivityMinusOne(part, 4); c != 3+5*3+2 {
		t.Fatalf("conn-1 = %d, want 20", c)
	}
}
