package hypergraph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatchPairsHeavyNeighbors(t *testing.T) {
	// Two tight pairs joined weakly: matching must pair (0,1) and (2,3).
	h := New(4)
	h.AddNet(10, 0, 1)
	h.AddNet(10, 2, 3)
	h.AddNet(1, 1, 2)
	rng := rand.New(rand.NewSource(1))
	partner, coarse, _ := match(h, rng)
	if coarse != 2 {
		t.Fatalf("coarse count = %d", coarse)
	}
	if partner[0] != 1 || partner[1] != 0 || partner[2] != 3 || partner[3] != 2 {
		t.Fatalf("partners = %v", partner)
	}
}

func TestContractMergesIdenticalNets(t *testing.T) {
	// Nets {0,1} and {2,3} both contract to the same coarse pair if 0
	// matches 2 and 1 matches 3.
	h := New(4)
	h.AddNet(3, 0, 1)
	h.AddNet(5, 2, 3)
	h.AddNet(2, 0, 2) // disappears: both pins land in coarse vertex 0
	partner := []int32{2, 3, 0, 1}
	ch, f2c, _ := contract(h, partner)
	if ch.NumVertices() != 2 {
		t.Fatalf("coarse vertices = %d", ch.NumVertices())
	}
	if f2c[0] != f2c[2] || f2c[1] != f2c[3] || f2c[0] == f2c[1] {
		t.Fatalf("mapping = %v", f2c)
	}
	// One merged net of weight 3+5, the single-pin net dropped.
	if ch.NumNets() != 1 || ch.NetWeight(0) != 8 {
		t.Fatalf("coarse nets: %d nets, weight %d", ch.NumNets(), ch.NetWeight(0))
	}
	// Vertex weights add up.
	if ch.VertexWeight(0)+ch.VertexWeight(1) != 4 {
		t.Fatalf("weights: %d + %d", ch.VertexWeight(0), ch.VertexWeight(1))
	}
}

// TestContractPreservesTotals: contraction never changes total vertex
// weight, and every coarse net weight is accounted for by fine nets.
func TestContractPreservesTotals(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(40)
		h := New(n)
		for i := 0; i < 2*n; i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				h.AddNet(int64(1+rng.Intn(5)), int32(a), int32(b))
			}
		}
		if h.NumNets() == 0 {
			return true
		}
		partner, _, _ := match(h, rng)
		ch, f2c, _ := contract(h, partner)
		if ch.TotalVertexWeight() != h.TotalVertexWeight() {
			return false
		}
		for v := 0; v < n; v++ {
			if int(f2c[v]) >= ch.NumVertices() {
				return false
			}
		}
		return ch.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionK1AndTrivial(t *testing.T) {
	h := twoClusters(5)
	part, stats, err := Partition(h, Config{K: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range part {
		if p != 0 {
			t.Fatal("K=1 must put everything in part 0")
		}
	}
	if stats.Ops != 0 {
		t.Fatalf("K=1 charged %d ops", stats.Ops)
	}
	if _, _, err := Partition(h, Config{K: 0}); err == nil {
		t.Fatal("K=0 accepted")
	}
}

func TestPartitionMoreVerticesThanParts(t *testing.T) {
	// K close to the vertex count still yields a complete assignment.
	h := New(6)
	h.AddNet(1, 0, 1, 2)
	h.AddNet(1, 3, 4, 5)
	part, _, err := Partition(h, Config{K: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	w := h.PartWeights(part, 4)
	var total int64
	for _, pw := range w {
		total += pw
	}
	if total != 6 {
		t.Fatalf("weights %v", w)
	}
}

func TestRefineImprovesBadStart(t *testing.T) {
	// Start from a deliberately bad balanced bisection of two clusters
	// (half of each cluster on each side) and check FM recovers the
	// single-bridge cut.
	h := twoClusters(20)
	part := make([]int, 40)
	for v := 0; v < 40; v++ {
		part[v] = v % 2 // interleaved: terrible cut
	}
	b := newBisection(h, part, [2]int64{21, 21})
	before := b.cut()
	b.refine(8)
	after := b.cut()
	if after >= before {
		t.Fatalf("refinement did not improve: %d -> %d", before, after)
	}
	if !b.feasible() {
		t.Fatal("refinement broke balance")
	}
}

func TestRebalanceFixesOverweight(t *testing.T) {
	h := twoClusters(10)
	part := make([]int, 20) // everything on side 0
	b := newBisection(h, part, [2]int64{11, 11})
	if b.feasible() {
		t.Fatal("setup should be infeasible")
	}
	b.rebalance()
	if !b.feasible() {
		t.Fatalf("rebalance failed: weights %v", b.partW)
	}
}

func TestAddNetEdgeCases(t *testing.T) {
	h := New(3)
	h.AddNet(1, 0)       // single pin: dropped
	h.AddNet(1, 1, 1, 1) // duplicates collapse to single pin: dropped
	if h.NumNets() != 0 {
		t.Fatalf("nets = %d", h.NumNets())
	}
	h.AddNet(1, 0, 1, 1) // duplicates collapse to {0,1}: kept
	if h.NumNets() != 1 || len(h.Net(0)) != 2 {
		t.Fatalf("nets = %d", h.NumNets())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad pin")
		}
	}()
	h.AddNet(1, 0, 99)
}

// TestKWayRefineImprovesOrKeeps: direct K-way refinement never worsens
// the connectivity-1 objective and never breaks the balance caps.
func TestKWayRefineImprovesOrKeeps(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 12 + rng.Intn(60)
		k := 3 + rng.Intn(3)
		h := New(n)
		for i := 0; i < 3*n; i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				h.AddNet(int64(1+rng.Intn(4)), int32(a), int32(b))
			}
		}
		if h.NumNets() == 0 {
			return true
		}
		part := make([]int, n)
		for v := range part {
			part[v] = rng.Intn(k)
		}
		total := h.TotalVertexWeight()
		maxW := make([]int64, k)
		for i := range maxW {
			maxW[i] = total/int64(k) + total/4 + 1
		}
		// Start from a balanced-enough assignment: clamp overweight.
		w := h.PartWeights(part, k)
		for v := range part {
			if w[part[v]] > maxW[part[v]] {
				for to := 0; to < k; to++ {
					if w[to]+h.VertexWeight(v) <= maxW[to] {
						w[part[v]] -= h.VertexWeight(v)
						w[to] += h.VertexWeight(v)
						part[v] = to
						break
					}
				}
			}
		}
		before := h.ConnectivityMinusOne(part, k)
		kwayRefine(h, part, k, maxW, rng, 4)
		after := h.ConnectivityMinusOne(part, k)
		if after > before {
			return false
		}
		w = h.PartWeights(part, k)
		for i := range w {
			if w[i] > maxW[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCliqueExpand(t *testing.T) {
	h := New(4)
	h.AddNet(2, 0, 1, 2) // triangle: 3 edges of weight 2
	h.AddNet(3, 2, 3)    // single edge
	g := CliqueExpand(h, 0)
	if g.NumVertices() != 4 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	// Edges: (0,1),(0,2),(1,2) w=2 and (2,3) w=3 -> 4 nets, all 2-pin.
	if g.NumNets() != 4 {
		t.Fatalf("nets = %d", g.NumNets())
	}
	var total int64
	for n := 0; n < g.NumNets(); n++ {
		if len(g.Net(n)) != 2 {
			t.Fatalf("net %d has %d pins", n, len(g.Net(n)))
		}
		total += g.NetWeight(n)
	}
	if total != 3*2+3 {
		t.Fatalf("total edge weight %d, want 9 (the over-counting of SIV-B)", total)
	}
	// Star expansion for big nets.
	big := New(5)
	big.AddNet(1, 0, 1, 2, 3, 4)
	star := CliqueExpand(big, 3)
	if star.NumNets() != 4 { // star around pin 0
		t.Fatalf("star nets = %d", star.NumNets())
	}
}

// TestHypergraphBeatsCliqueOnSharedTriples: on instances where data is
// shared by many tasks, the hypergraph objective of the clique-based
// partition is no better than the native hypergraph partition (the
// paper's SIV-B argument).
func TestHypergraphBeatsCliqueOnSharedTriples(t *testing.T) {
	// 2D-matmul-like: 8x8 tasks, 16 nets of 8 pins each.
	n := 8
	h := New(n * n)
	for i := 0; i < n; i++ {
		row := make([]int32, n)
		col := make([]int32, n)
		for j := 0; j < n; j++ {
			row[j] = int32(i*n + j)
			col[j] = int32(j*n + i)
		}
		h.AddNet(1, row...)
		h.AddNet(1, col...)
	}
	_, native, err := Partition(h, Config{K: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	_, clique, err := PartitionClique(h, Config{K: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if native.Cut > clique.Cut {
		t.Fatalf("native hypergraph cut %d worse than clique-expansion cut %d", native.Cut, clique.Cut)
	}
	t.Logf("hypergraph conn-1 = %d, clique-expansion conn-1 = %d", native.Cut, clique.Cut)
}
