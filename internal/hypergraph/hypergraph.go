// Package hypergraph implements a from-scratch multilevel hypergraph
// partitioner in the style of hMETIS (Karypis & Kumar), the tool the
// paper's hMETIS+R strategy relies on (§IV-B).
//
// Tasks sharing input data are modeled as a hypergraph: one vertex per
// task and one hyperedge (net) per data item connecting all the tasks
// that read it. Partitioning the vertices into K balanced parts while
// minimizing the weight of cut nets yields task subsets with few shared
// data, which is exactly the property the scheduler needs.
//
// The partitioner follows the classic multilevel scheme:
//
//  1. coarsening by heavy-connectivity vertex matching,
//  2. greedy initial bisection of the coarsest hypergraph (best of
//     Nruns random starts),
//  3. uncoarsening with Fiduccia–Mattheyses (FM) refinement at every
//     level,
//
// applied recursively for K-way partitions.
package hypergraph

import (
	"fmt"
	"sort"
)

// Hypergraph is a weighted hypergraph. Vertices are dense ints
// 0..NumVertices-1; nets are lists of distinct pins.
type Hypergraph struct {
	vertexWeights []int64
	nets          [][]int32
	netWeights    []int64
	incidence     [][]int32 // vertex -> net indices, built lazily
	pins          int
}

// New returns an empty hypergraph with n vertices of unit weight.
func New(n int) *Hypergraph {
	if n <= 0 {
		panic(fmt.Sprintf("hypergraph: %d vertices", n))
	}
	w := make([]int64, n)
	for i := range w {
		w[i] = 1
	}
	return &Hypergraph{vertexWeights: w}
}

// SetVertexWeight overrides the weight of vertex v.
func (h *Hypergraph) SetVertexWeight(v int, w int64) {
	if w <= 0 {
		panic("hypergraph: non-positive vertex weight")
	}
	h.vertexWeights[v] = w
	h.incidence = nil
}

// AddNet adds a net with the given weight connecting the given distinct
// pins. Nets with fewer than two pins are legal but never cut, so they
// are silently dropped.
func (h *Hypergraph) AddNet(weight int64, pins ...int32) {
	if weight <= 0 {
		panic("hypergraph: non-positive net weight")
	}
	if len(pins) < 2 {
		return
	}
	seen := make(map[int32]bool, len(pins))
	cp := make([]int32, 0, len(pins))
	for _, p := range pins {
		if p < 0 || int(p) >= len(h.vertexWeights) {
			panic(fmt.Sprintf("hypergraph: pin %d out of range", p))
		}
		if !seen[p] {
			seen[p] = true
			cp = append(cp, p)
		}
	}
	if len(cp) < 2 {
		return
	}
	h.nets = append(h.nets, cp)
	h.netWeights = append(h.netWeights, weight)
	h.pins += len(cp)
	h.incidence = nil
}

// NumVertices returns the number of vertices.
func (h *Hypergraph) NumVertices() int { return len(h.vertexWeights) }

// NumNets returns the number of nets.
func (h *Hypergraph) NumNets() int { return len(h.nets) }

// NumPins returns the total number of pins over all nets.
func (h *Hypergraph) NumPins() int { return h.pins }

// VertexWeight returns the weight of vertex v.
func (h *Hypergraph) VertexWeight(v int) int64 { return h.vertexWeights[v] }

// TotalVertexWeight returns the sum of all vertex weights.
func (h *Hypergraph) TotalVertexWeight() int64 {
	var s int64
	for _, w := range h.vertexWeights {
		s += w
	}
	return s
}

// Net returns the pins of net n. Callers must not mutate the slice.
func (h *Hypergraph) Net(n int) []int32 { return h.nets[n] }

// NetWeight returns the weight of net n.
func (h *Hypergraph) NetWeight(n int) int64 { return h.netWeights[n] }

// Incidence returns the nets of vertex v. Callers must not mutate it.
func (h *Hypergraph) Incidence(v int) []int32 {
	if h.incidence == nil {
		h.buildIncidence()
	}
	return h.incidence[v]
}

func (h *Hypergraph) buildIncidence() {
	h.incidence = make([][]int32, len(h.vertexWeights))
	deg := make([]int, len(h.vertexWeights))
	for _, net := range h.nets {
		for _, p := range net {
			deg[p]++
		}
	}
	for v := range h.incidence {
		h.incidence[v] = make([]int32, 0, deg[v])
	}
	for n, net := range h.nets {
		for _, p := range net {
			h.incidence[p] = append(h.incidence[p], int32(n))
		}
	}
}

// Cut returns the total weight of nets spanning more than one part under
// the given assignment.
func (h *Hypergraph) Cut(part []int) int64 {
	var cut int64
	for n, net := range h.nets {
		p0 := part[net[0]]
		for _, p := range net[1:] {
			if part[p] != p0 {
				cut += h.netWeights[n]
				break
			}
		}
	}
	return cut
}

// ConnectivityMinusOne returns the sum over nets of (lambda-1)*weight,
// where lambda is the number of distinct parts a net touches. This is the
// objective hMETIS optimizes for K-way partitions; for K=2 it equals Cut.
func (h *Hypergraph) ConnectivityMinusOne(part []int, k int) int64 {
	var obj int64
	mark := make([]int, k)
	for i := range mark {
		mark[i] = -1
	}
	for n, net := range h.nets {
		lambda := int64(0)
		for _, p := range net {
			if mark[part[p]] != n {
				mark[part[p]] = n
				lambda++
			}
		}
		obj += (lambda - 1) * h.netWeights[n]
	}
	return obj
}

// PartWeights returns the total vertex weight of each of the k parts.
func (h *Hypergraph) PartWeights(part []int, k int) []int64 {
	w := make([]int64, k)
	for v, p := range part {
		w[p] += h.vertexWeights[v]
	}
	return w
}

// Validate checks structural consistency (used by tests).
func (h *Hypergraph) Validate() error {
	for n, net := range h.nets {
		if len(net) < 2 {
			return fmt.Errorf("net %d has %d pins", n, len(net))
		}
		sorted := append([]int32(nil), net...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for i := 1; i < len(sorted); i++ {
			if sorted[i] == sorted[i-1] {
				return fmt.Errorf("net %d has duplicate pin %d", n, sorted[i])
			}
		}
		for _, p := range net {
			if p < 0 || int(p) >= len(h.vertexWeights) {
				return fmt.Errorf("net %d has out-of-range pin %d", n, p)
			}
		}
	}
	return nil
}
