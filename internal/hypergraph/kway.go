package hypergraph

import (
	"math/rand"
)

// kwayRefine improves a K-way partition in place by greedy vertex moves
// optimizing the connectivity-1 objective directly, something recursive
// bisection cannot see across its cuts. Vertices are visited in random
// order; a vertex moves to the part giving the largest positive gain that
// respects the balance caps. Passes repeat until one yields no
// improvement or maxPasses is reached. Returns the ops performed.
func kwayRefine(h *Hypergraph, part []int, k int, maxW []int64, rng *rand.Rand, maxPasses int) int64 {
	var ops int64
	n := h.NumVertices()
	// pins[net][part] counts, stored flat.
	pins := make([]int32, h.NumNets()*k)
	for ni := 0; ni < h.NumNets(); ni++ {
		for _, p := range h.Net(ni) {
			pins[ni*k+part[p]]++
		}
		ops += int64(len(h.Net(ni)))
	}
	partW := make([]int64, k)
	for v, p := range part {
		partW[p] += h.VertexWeight(v)
	}

	order := rng.Perm(n)
	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		for _, v := range order {
			from := part[v]
			w := h.VertexWeight(v)
			// Gain of leaving `from`: every net where v is the only
			// `from` pin drops one part from its span.
			var leaveGain int64
			for _, ni := range h.Incidence(v) {
				if pins[int(ni)*k+from] == 1 {
					leaveGain += h.NetWeight(int(ni))
				}
			}
			ops += int64(len(h.Incidence(v)))
			bestTo, bestGain := -1, int64(0)
			for to := 0; to < k; to++ {
				if to == from || partW[to]+w > maxW[to] {
					continue
				}
				gain := leaveGain
				for _, ni := range h.Incidence(v) {
					if pins[int(ni)*k+to] == 0 {
						gain -= h.NetWeight(int(ni))
					}
				}
				ops += int64(len(h.Incidence(v)))
				if gain > bestGain {
					bestTo, bestGain = to, gain
				}
			}
			if bestTo < 0 {
				continue
			}
			// Apply the move.
			for _, ni := range h.Incidence(v) {
				pins[int(ni)*k+from]--
				pins[int(ni)*k+bestTo]++
			}
			partW[from] -= w
			partW[bestTo] += w
			part[v] = bestTo
			improved = true
		}
		if !improved {
			break
		}
	}
	return ops
}
