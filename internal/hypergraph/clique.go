package hypergraph

// Clique expansion: the graph-partitioner alternative the paper's §IV-B
// argues against. Yoo et al. [10] model data reuse as a plain graph whose
// edges are weighted by shared input data and partition it with METIS;
// the paper points out that a data item shared by r tasks then
// contributes r(r-1)/2 edges and gets over-counted, which is why it
// switches to a hypergraph. Both models are provided so the ablation
// bench can measure the difference the paper claims.

// CliqueExpand converts a hypergraph into its clique-expansion graph,
// itself represented as a hypergraph whose nets all have exactly two
// pins: every net {v1..vr} of weight w becomes r(r-1)/2 edges of weight
// w (parallel edges between the same pair are merged by summing).
// Nets larger than maxNetSize are expanded as a star around their first
// pin instead of a full clique, bounding the blow-up as graph converters
// commonly do.
func CliqueExpand(h *Hypergraph, maxNetSize int) *Hypergraph {
	g := New(h.NumVertices())
	for v := 0; v < h.NumVertices(); v++ {
		g.SetVertexWeight(v, h.VertexWeight(v))
	}
	type pair struct{ a, b int32 }
	acc := make(map[pair]int64)
	add := func(a, b int32, w int64) {
		if a > b {
			a, b = b, a
		}
		acc[pair{a, b}] += w
	}
	for ni := 0; ni < h.NumNets(); ni++ {
		net := h.Net(ni)
		w := h.NetWeight(ni)
		if maxNetSize > 0 && len(net) > maxNetSize {
			for _, p := range net[1:] {
				add(net[0], p, w)
			}
			continue
		}
		for i := 0; i < len(net); i++ {
			for j := i + 1; j < len(net); j++ {
				add(net[i], net[j], w)
			}
		}
	}
	for p, w := range acc {
		g.AddNet(w, p.a, p.b)
	}
	return g
}

// PartitionClique partitions h by first clique-expanding it and then
// running the same multilevel machinery on the resulting graph — i.e.
// the METIS-style pipeline of [10]. The returned stats include the
// expansion cost.
func PartitionClique(h *Hypergraph, cfg Config) ([]int, Stats, error) {
	g := CliqueExpand(h, maxNetSizeForMatching)
	part, stats, err := Partition(g, cfg)
	if err != nil {
		return nil, stats, err
	}
	stats.Ops += int64(g.NumPins())
	// Report the objective on the ORIGINAL hypergraph: that is the
	// quantity that matters to the scheduler (distinct shared data).
	stats.Cut = h.ConnectivityMinusOne(part, cfg.K)
	return part, stats, nil
}
