package metrics

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
	"time"

	"memsched/internal/sim"
)

func sample() []Row {
	return []Row{
		{Figure: "fig3", Workload: "w1", WorkingSetMB: 100, Scheduler: "EAGER", GPUs: 1, GFlops: 5000, TransferredMB: 900, Loads: 61, Evictions: 2, MakespanMS: 10},
		{Figure: "fig3", Workload: "w1", WorkingSetMB: 100, Scheduler: "DARTS+LUF", GPUs: 1, GFlops: 13000, TransferredMB: 300, Loads: 20, MakespanMS: 4},
		{Figure: "fig3", Workload: "w2", WorkingSetMB: 200, Scheduler: "EAGER", GPUs: 1, GFlops: 4000, TransferredMB: 2500, Loads: 170, MakespanMS: 30},
		{Figure: "fig3", Workload: "w2", WorkingSetMB: 200, Scheduler: "DARTS+LUF", GPUs: 1, GFlops: 12000, TransferredMB: 500, Loads: 34, MakespanMS: 9},
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("got %d records", len(recs))
	}
	if recs[0][0] != "figure" || recs[0][5] != "gflops" {
		t.Fatalf("header = %v", recs[0])
	}
	if recs[1][3] != "EAGER" || recs[2][5] != "13000" {
		t.Fatalf("rows = %v", recs[1:3])
	}
}

// TestReadCSVRoundTrip pins ReadCSV as the exact inverse of WriteCSV for
// values that survive the CSV column precision (gflops are written with
// 0 decimals, working set and MB volumes with 1, times with 2).
func TestReadCSVRoundTrip(t *testing.T) {
	rows := []Row{
		{Figure: "fig3", Workload: "w1", WorkingSetMB: 147.5, Scheduler: "DARTS+LUF", GPUs: 1,
			GFlops: 9958, TransferredMB: 442.4, Loads: 20, Evictions: 3,
			MakespanMS: 17.77, StaticMS: 0.25, DynamicMS: 1.5, IdleMS: 4.17, ReloadedMB: 38.5},
		{Figure: "fig3", Workload: "w2", WorkingSetMB: 590, Scheduler: "EAGER", GPUs: 2,
			GFlops: 5000, TransferredMB: 900, Loads: 61, MakespanMS: 30},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rows) {
		t.Fatalf("%d rows back, want %d", len(got), len(rows))
	}
	for i := range rows {
		if got[i] != rows[i] {
			t.Errorf("row %d: %+v != %+v", i, got[i], rows[i])
		}
	}
}

// TestReadCSVHistoricalColumns feeds ReadCSV a pre-telemetry CSV (no
// idle_ms/reloaded_mb columns, as written before PR 2) and one with
// extra unknown columns; both must parse, matching columns by name.
func TestReadCSVHistoricalColumns(t *testing.T) {
	old := "figure,workload,working_set_mb,scheduler,gpus,gflops,transferred_mb,loads,evictions,makespan_ms,static_ms,dynamic_ms\n" +
		"fig3,w1,147.5,DMDAR,1,9000,500.0,20,3,17.77,0.25,1.50\n"
	rows, err := ReadCSV(strings.NewReader(old))
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].GFlops != 9000 || rows[0].Scheduler != "DMDAR" {
		t.Fatalf("row = %+v", rows[0])
	}
	if rows[0].IdleMS != 0 || rows[0].ReloadedMB != 0 {
		t.Fatalf("missing columns should read as zero: %+v", rows[0])
	}

	future := "figure,workload,working_set_mb,scheduler,gpus,gflops,some_future_column\n" +
		"fig3,w1,147.5,DMDAR,1,9000,whatever\n"
	if rows, err = ReadCSV(strings.NewReader(future)); err != nil || rows[0].GFlops != 9000 {
		t.Fatalf("unknown columns must be ignored: %v, %+v", err, rows)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Fatal("empty input should error")
	}
	if _, err := ReadCSV(strings.NewReader("workload,scheduler\nw,s\n")); err == nil {
		t.Fatal("missing identity columns should error")
	}
	bad := "figure,workload,working_set_mb,scheduler,gpus\nfig3,w1,not-a-number,DMDAR,1\n"
	if _, err := ReadCSV(strings.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "working_set_mb") {
		t.Fatalf("parse error should name the column, got %v", err)
	}
}

func TestFormatTable(t *testing.T) {
	out := FormatTable(sample(), "gflops")
	if !strings.Contains(out, "EAGER") || !strings.Contains(out, "DARTS+LUF") {
		t.Fatalf("missing schedulers:\n%s", out)
	}
	if !strings.Contains(out, "13000.0") {
		t.Fatalf("missing value:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 { // header + 2 working sets
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Working sets sorted ascending.
	if !strings.HasPrefix(lines[1], "100") || !strings.HasPrefix(lines[2], "200") {
		t.Fatalf("rows unsorted:\n%s", out)
	}
	tr := FormatTable(sample(), "transfers")
	if !strings.Contains(tr, "MB transferred") || !strings.Contains(tr, "2500.0") {
		t.Fatalf("transfers table:\n%s", tr)
	}
	if FormatTable(nil, "gflops") != "" {
		t.Fatal("empty rows should give empty table")
	}
	// Missing cells render as dashes.
	rows := sample()[:3] // w2 has only EAGER
	if out := FormatTable(rows, "gflops"); !strings.Contains(out, "-") {
		t.Fatalf("missing cell not dashed:\n%s", out)
	}
}

func TestSpeedupOver(t *testing.T) {
	gain, n := SpeedupOver(sample(), "DARTS+LUF", "EAGER")
	if n != 2 {
		t.Fatalf("n = %d", n)
	}
	// (13000/5000-1 + 12000/4000-1)/2 * 100 = (160 + 200)/2 = 180.
	if gain < 179.9 || gain > 180.1 {
		t.Fatalf("gain = %g, want 180", gain)
	}
	if _, n := SpeedupOver(sample(), "DARTS+LUF", "nope"); n != 0 {
		t.Fatalf("n = %d for unknown scheduler", n)
	}
}

func TestFromResult(t *testing.T) {
	res := &sim.Result{
		SchedulerName:    "DMDAR",
		InstanceName:     "matmul2d(n=10)",
		NumGPUs:          2,
		Makespan:         1500 * time.Millisecond,
		GFlops:           123,
		WorkingSetBytes:  200_000_000,
		BytesTransferred: 50_000_000,
		Loads:            7,
		Evictions:        3,
		StaticCost:       20 * time.Millisecond,
		DynamicCost:      5 * time.Millisecond,
	}
	r := FromResult("figX", res)
	if r.Figure != "figX" || r.Scheduler != "DMDAR" || r.GPUs != 2 {
		t.Fatalf("row = %+v", r)
	}
	if r.WorkingSetMB != 200 || r.TransferredMB != 50 {
		t.Fatalf("MB conversion: %+v", r)
	}
	if r.MakespanMS != 1500 || r.StaticMS != 20 || r.DynamicMS != 5 {
		t.Fatalf("ms conversion: %+v", r)
	}
}

func TestPlot(t *testing.T) {
	out := Plot(sample(), "gflops", 40, 10)
	if !strings.Contains(out, "GFlop/s") {
		t.Fatalf("missing unit:\n%s", out)
	}
	if !strings.Contains(out, "a = EAGER") || !strings.Contains(out, "b = DARTS+LUF") {
		t.Fatalf("missing legend:\n%s", out)
	}
	if !strings.Contains(out, "a") || !strings.Contains(out, "b") {
		t.Fatalf("missing marks:\n%s", out)
	}
	if Plot(nil, "gflops", 40, 10) != "" {
		t.Fatal("empty input should render nothing")
	}
	if Plot(sample(), "gflops", 4, 2) != "" {
		t.Fatal("degenerate dimensions should render nothing")
	}
	// transfers variant
	if out := Plot(sample(), "transfers", 40, 8); !strings.Contains(out, "MB moved") {
		t.Fatalf("transfers plot:\n%s", out)
	}
}
