package metrics

import (
	"expvar"
	"sync"
)

// Gauges are the live sweep counters the harness exposes on its debug
// endpoint: cells completed, simulations in flight, engine events
// processed. A zero Gauges is ready to use and completely private —
// tests and library embedders create as many isolated instances as they
// like. Publication on the process-global expvar registry is a separate,
// explicit step because expvar panics on duplicate names: exactly one
// instance per process may Publish a given prefix (cmd/paperbench
// publishes the canonical memsched_* names once at startup, and
// cmd/memschedd publishes its pool's gauges as memschedd_* — the same
// instance internal/serve reads for its /metrics snapshot).
type Gauges struct {
	// CellsCompleted counts fully aggregated (point, strategy) rows.
	CellsCompleted expvar.Int
	// SimsRunning is the number of simulations currently executing.
	SimsRunning expvar.Int
	// SimEvents totals the engine events processed across all runs.
	SimEvents expvar.Int

	publishOnce sync.Once
}

// Publish registers the gauges on the global expvar registry as
// <prefix>_cells_completed, <prefix>_sims_running and
// <prefix>_sim_events. It is idempotent per instance; publishing two
// different instances under the same prefix still panics (expvar's
// single-registration rule), which is exactly the mistake the explicit
// call is meant to surface.
func (g *Gauges) Publish(prefix string) {
	g.publishOnce.Do(func() {
		expvar.Publish(prefix+"_cells_completed", &g.CellsCompleted)
		expvar.Publish(prefix+"_sims_running", &g.SimsRunning)
		expvar.Publish(prefix+"_sim_events", &g.SimEvents)
	})
}

// Snapshot reads the three counters atomically enough for display:
// each value is an atomic load, so a status page never sees torn
// numbers (the triple itself is not a consistent cut, which is fine for
// monotonic progress gauges).
func (g *Gauges) Snapshot() (cellsCompleted, simsRunning, simEvents int64) {
	return g.CellsCompleted.Value(), g.SimsRunning.Value(), g.SimEvents.Value()
}
