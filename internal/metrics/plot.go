package metrics

import (
	"fmt"
	"sort"
	"strings"
)

// Plot renders the rows of one figure as an ASCII chart: working set on
// the x axis, the chosen metric ("gflops" or "transfers") on the y axis,
// one letter per strategy. It is the terminal rendition of the paper's
// figures.
func Plot(rows []Row, metric string, width, height int) string {
	if len(rows) == 0 || width < 16 || height < 4 {
		return ""
	}
	type pt struct{ x, y float64 }
	series := map[string][]pt{}
	var schedOrder []string
	var minX, maxX, maxY float64
	minX = 1e300
	for _, r := range rows {
		y := r.GFlops
		if metric == "transfers" {
			y = r.TransferredMB
		}
		if _, ok := series[r.Scheduler]; !ok {
			schedOrder = append(schedOrder, r.Scheduler)
		}
		series[r.Scheduler] = append(series[r.Scheduler], pt{r.WorkingSetMB, y})
		if r.WorkingSetMB < minX {
			minX = r.WorkingSetMB
		}
		if r.WorkingSetMB > maxX {
			maxX = r.WorkingSetMB
		}
		if y > maxY {
			maxY = y
		}
	}
	if maxX <= minX || maxY <= 0 {
		return ""
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	marks := "abcdefghijklmnopqrstuvwxyz"
	col := func(x float64) int {
		c := int((x - minX) / (maxX - minX) * float64(width-1))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	rowOf := func(y float64) int {
		r := height - 1 - int(y/maxY*float64(height-1))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}
	for si, name := range schedOrder {
		m := marks[si%len(marks)]
		pts := series[name]
		sort.Slice(pts, func(i, j int) bool { return pts[i].x < pts[j].x })
		for _, p := range pts {
			r, c := rowOf(p.y), col(p.x)
			if grid[r][c] == ' ' {
				grid[r][c] = m
			} else if grid[r][c] != m {
				grid[r][c] = '*' // overlapping series
			}
		}
	}
	unit := "GFlop/s"
	if metric == "transfers" {
		unit = "MB moved"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%.0f %s\n", maxY, unit)
	for _, line := range grid {
		b.WriteString("|")
		b.Write(line)
		b.WriteString("|\n")
	}
	fmt.Fprintf(&b, "%-10.0f%*s MB (working set)\n", minX, width-9, fmt.Sprintf("%.0f", maxX))
	for si, name := range schedOrder {
		fmt.Fprintf(&b, "  %c = %s\n", marks[si%len(marks)], name)
	}
	return b.String()
}
