package metrics

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// ReadCSV is the inverse of WriteCSV: it parses a results CSV back into
// rows. Columns are matched by header name, so it accepts both the
// current column set and historical files written before the telemetry
// columns existed (missing columns read as zero, unknown extra columns
// are ignored). The five identity columns (figure, workload,
// working_set_mb, scheduler, gpus) are required.
func ReadCSV(r io.Reader) ([]Row, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // header decides; tolerate historical widths
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("metrics: read csv: %w", err)
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("metrics: read csv: empty input")
	}
	col := make(map[string]int, len(recs[0]))
	for i, name := range recs[0] {
		col[name] = i
	}
	for _, required := range csvHeader[:5] {
		if _, ok := col[required]; !ok {
			return nil, fmt.Errorf("metrics: read csv: missing column %q", required)
		}
	}

	var parseErr error
	field := func(rec []string, name string) string {
		i, ok := col[name]
		if !ok || i >= len(rec) {
			return ""
		}
		return rec[i]
	}
	f64 := func(rec []string, name string, line int) float64 {
		s := field(rec, name)
		if s == "" {
			return 0
		}
		v, err := strconv.ParseFloat(s, 64)
		if err != nil && parseErr == nil {
			parseErr = fmt.Errorf("metrics: read csv line %d: column %s: %w", line, name, err)
		}
		return v
	}
	integer := func(rec []string, name string, line int) int {
		s := field(rec, name)
		if s == "" {
			return 0
		}
		v, err := strconv.Atoi(s)
		if err != nil && parseErr == nil {
			parseErr = fmt.Errorf("metrics: read csv line %d: column %s: %w", line, name, err)
		}
		return v
	}

	rows := make([]Row, 0, len(recs)-1)
	for n, rec := range recs[1:] {
		line := n + 2 // 1-based, after the header
		rows = append(rows, Row{
			Figure:        field(rec, "figure"),
			Workload:      field(rec, "workload"),
			WorkingSetMB:  f64(rec, "working_set_mb", line),
			Scheduler:     field(rec, "scheduler"),
			GPUs:          integer(rec, "gpus", line),
			GFlops:        f64(rec, "gflops", line),
			TransferredMB: f64(rec, "transferred_mb", line),
			Loads:         integer(rec, "loads", line),
			Evictions:     integer(rec, "evictions", line),
			MakespanMS:    f64(rec, "makespan_ms", line),
			StaticMS:      f64(rec, "static_ms", line),
			DynamicMS:     f64(rec, "dynamic_ms", line),
			IdleMS:        f64(rec, "idle_ms", line),
			ReloadedMB:    f64(rec, "reloaded_mb", line),
		})
		if parseErr != nil {
			return nil, parseErr
		}
	}
	return rows, nil
}
