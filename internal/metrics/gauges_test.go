package metrics

import (
	"expvar"
	"testing"
)

// TestGaugesIsolatedInstances pins the fix for the expvar
// single-registration constraint: any number of private Gauges can
// coexist without touching the global registry, and Publish is
// idempotent per instance.
func TestGaugesIsolatedInstances(t *testing.T) {
	a, b := new(Gauges), new(Gauges)
	a.CellsCompleted.Add(3)
	b.CellsCompleted.Add(5)
	if a.CellsCompleted.Value() != 3 || b.CellsCompleted.Value() != 5 {
		t.Fatalf("instances not isolated: %d, %d", a.CellsCompleted.Value(), b.CellsCompleted.Value())
	}
	if expvar.Get("gaugetest_cells_completed") != nil {
		t.Fatal("unpublished gauges leaked into the registry")
	}

	a.Publish("gaugetest")
	a.Publish("gaugetest") // second call must not panic (expvar would)
	got := expvar.Get("gaugetest_cells_completed")
	if got == nil {
		t.Fatal("publish did not register")
	}
	a.CellsCompleted.Add(1)
	if got.String() != "4" {
		t.Fatalf("registered gauge reads %s, want 4", got.String())
	}
}
