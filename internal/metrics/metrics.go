// Package metrics turns simulation results into the rows the paper's
// figures plot (GFlop/s and MB transferred per working-set size and
// strategy) and renders them as aligned text tables or CSV.
package metrics

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"memsched/internal/platform"
	"memsched/internal/sim"
)

// Row is one measurement: one strategy on one instance. The JSON names
// match the CSV column names, so the telemetry JSON lines and the CSV
// join on identical keys.
type Row struct {
	// Figure identifies the experiment ("fig3", "ablation-window", ...).
	Figure string `json:"figure"`
	// Workload is the instance name.
	Workload string `json:"workload"`
	// WorkingSetMB is the footprint of all distinct data in MB (10^6 B),
	// the x-axis of every paper figure.
	WorkingSetMB float64 `json:"working_set_mb"`
	// Scheduler is the strategy label.
	Scheduler string `json:"scheduler"`
	// GPUs is the GPU count.
	GPUs int `json:"gpus"`
	// GFlops is the achieved throughput.
	GFlops float64 `json:"gflops"`
	// TransferredMB is the volume moved over the bus in MB.
	TransferredMB float64 `json:"transferred_mb"`
	// Loads and Evictions count data movements.
	Loads     int `json:"loads"`
	Evictions int `json:"evictions"`
	// MakespanMS is the simulated completion time in milliseconds.
	MakespanMS float64 `json:"makespan_ms"`
	// StaticMS and DynamicMS are the charged scheduling costs in
	// milliseconds.
	StaticMS  float64 `json:"static_ms"`
	DynamicMS float64 `json:"dynamic_ms"`
	// IdleMS is the machine-wide idle time (Makespan*GPUs - ΣBusy) in
	// milliseconds, and ReloadedMB the volume of reloads of previously
	// evicted data; both come from Result.Telemetry and are zero when the
	// run was not telemetry-instrumented.
	IdleMS     float64 `json:"idle_ms"`
	ReloadedMB float64 `json:"reloaded_mb"`
}

// FromResult converts a simulation result into a Row.
func FromResult(figure string, r *sim.Result) Row {
	var idleMS, reloadedMB float64
	if tel := r.Telemetry; tel != nil {
		idleMS = float64(tel.IdleTotal.Microseconds()) / 1000
		reloadedMB = float64(tel.ReloadedBytes) / platform.MB
	}
	return Row{
		Figure:        figure,
		Workload:      r.InstanceName,
		WorkingSetMB:  float64(r.WorkingSetBytes) / platform.MB,
		Scheduler:     r.SchedulerName,
		GPUs:          r.NumGPUs,
		GFlops:        r.GFlops,
		TransferredMB: float64(r.BytesTransferred) / platform.MB,
		Loads:         r.Loads,
		Evictions:     r.Evictions,
		MakespanMS:    float64(r.Makespan.Microseconds()) / 1000,
		StaticMS:      float64(r.StaticCost.Microseconds()) / 1000,
		DynamicMS:     float64(r.DynamicCost.Microseconds()) / 1000,
		IdleMS:        idleMS,
		ReloadedMB:    reloadedMB,
	}
}

// csvHeader keeps the pre-telemetry columns in their historical order;
// new columns are only ever appended so downstream plots keep working.
var csvHeader = []string{
	"figure", "workload", "working_set_mb", "scheduler", "gpus",
	"gflops", "transferred_mb", "loads", "evictions",
	"makespan_ms", "static_ms", "dynamic_ms",
	"idle_ms", "reloaded_mb",
}

// WriteCSV writes rows with a header.
func WriteCSV(w io.Writer, rows []Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Figure, r.Workload,
			strconv.FormatFloat(r.WorkingSetMB, 'f', 1, 64),
			r.Scheduler, strconv.Itoa(r.GPUs),
			strconv.FormatFloat(r.GFlops, 'f', 0, 64),
			strconv.FormatFloat(r.TransferredMB, 'f', 1, 64),
			strconv.Itoa(r.Loads), strconv.Itoa(r.Evictions),
			strconv.FormatFloat(r.MakespanMS, 'f', 2, 64),
			strconv.FormatFloat(r.StaticMS, 'f', 2, 64),
			strconv.FormatFloat(r.DynamicMS, 'f', 2, 64),
			strconv.FormatFloat(r.IdleMS, 'f', 2, 64),
			strconv.FormatFloat(r.ReloadedMB, 'f', 1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// FormatTable renders rows as one aligned table per figure: one line per
// working-set size, one column per strategy, showing the given metric
// ("gflops" or "transfers").
func FormatTable(rows []Row, metric string) string {
	if len(rows) == 0 {
		return ""
	}
	var wsList []float64
	wsSeen := map[float64]bool{}
	var schedList []string
	schedSeen := map[string]bool{}
	cell := map[[2]string]float64{}
	for _, r := range rows {
		if !wsSeen[r.WorkingSetMB] {
			wsSeen[r.WorkingSetMB] = true
			wsList = append(wsList, r.WorkingSetMB)
		}
		if !schedSeen[r.Scheduler] {
			schedSeen[r.Scheduler] = true
			schedList = append(schedList, r.Scheduler)
		}
		v := r.GFlops
		if metric == "transfers" {
			v = r.TransferredMB
		}
		cell[[2]string{ws(r.WorkingSetMB), r.Scheduler}] = v
	}
	sort.Float64s(wsList)

	var b strings.Builder
	unit := "GFlop/s"
	if metric == "transfers" {
		unit = "MB transferred"
	}
	fmt.Fprintf(&b, "%-14s", "ws (MB)")
	for _, s := range schedList {
		fmt.Fprintf(&b, "  %22s", s)
	}
	fmt.Fprintf(&b, "   [%s]\n", unit)
	for _, w := range wsList {
		fmt.Fprintf(&b, "%-14.1f", w)
		for _, s := range schedList {
			v, ok := cell[[2]string{ws(w), s}]
			if !ok {
				fmt.Fprintf(&b, "  %22s", "-")
				continue
			}
			fmt.Fprintf(&b, "  %22.1f", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func ws(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }

// SpeedupOver returns the average ratio (in percent, e.g. 8.5 for +8.5%)
// of metric values of scheduler a over scheduler b across the working-set
// points both cover, using GFlops. It is used to reproduce the paper's
// "X% more GFlop/s than DMDAR" claims.
func SpeedupOver(rows []Row, a, b string) (float64, int) {
	byWS := map[float64]map[string]float64{}
	for _, r := range rows {
		if byWS[r.WorkingSetMB] == nil {
			byWS[r.WorkingSetMB] = map[string]float64{}
		}
		byWS[r.WorkingSetMB][r.Scheduler] = r.GFlops
	}
	var sum float64
	n := 0
	for _, m := range byWS {
		va, oka := m[a]
		vb, okb := m[b]
		if oka && okb && vb > 0 {
			sum += (va/vb - 1) * 100
			n++
		}
	}
	if n == 0 {
		return 0, 0
	}
	return sum / float64(n), n
}
