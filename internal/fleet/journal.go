package fleet

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"memsched/internal/serve"
)

// journalVersion is the write-ahead journal format version; bump on
// incompatible record changes so a recovery against an old journal
// fails loudly instead of silently replaying garbage.
const journalVersion = 1

// journalConfig fingerprints everything replay correctness depends on:
// the record schema version and the canonical-key rendering version. A
// journal written under a different fingerprint is rejected, because
// its keys would not address the same content.
const journalConfig = "v1|keyv1"

// journalHeader is the first line of every journal.
type journalHeader struct {
	Version int    `json:"journal_version"`
	Config  string `json:"config"`
}

// journalRecord is one job-lifecycle transition, one JSON line each:
//
//	accept   — the router admitted the job (the write-ahead record: it
//	           is durable before the client sees 202, so a crash can
//	           never lose an accepted job)
//	dispatch — the job was accepted by a replica (informational; names
//	           where the work last was)
//	complete — the job reached a terminal state, with the verbatim
//	           result bytes for done jobs so a restarted router re-serves
//	           them byte-identically
type journalRecord struct {
	Op string `json:"op"`
	ID string `json:"id"`

	// accept fields.
	Key         string            `json:"key,omitempty"`
	Trace       uint64            `json:"trace,omitempty"`
	Req         *serve.JobRequest `json:"req,omitempty"`
	SubmittedMS int64             `json:"submitted_unix_ms,omitempty"`

	// dispatch fields.
	Replica string `json:"replica,omitempty"`

	// complete fields. Result carries the verbatim replica bytes as a
	// JSON string (not an embedded object): Marshal would compact an
	// embedded json.RawMessage, and "byte-identical re-serve after
	// restart" demands the exact bytes back, whitespace included.
	State      serve.JobState `json:"state,omitempty"`
	Result     string         `json:"result,omitempty"`
	Error      string         `json:"error,omitempty"`
	FinishedMS int64          `json:"finished_unix_ms,omitempty"`
}

// RecoveredJob is one job reconstructed from the journal on open.
type RecoveredJob struct {
	ID          string
	Key         string
	Trace       uint64
	Req         serve.JobRequest
	SubmittedMS int64
	// Replica is the last replica the job was dispatched to before the
	// crash (informational — recovery re-routes by ring preference).
	Replica string
	// Terminal outcome, populated for completed jobs only.
	State      serve.JobState
	Result     json.RawMessage
	Error      string
	FinishedMS int64
}

// Journal is the router's write-ahead job journal: an append-only,
// fsync'd JSONL file recording accept/dispatch/complete transitions,
// modeled on the sweep checkpoint (internal/expr/checkpoint.go). The
// accept record is durable before the client receives 202, so a
// kill -9 of the router loses no accepted job: on restart, jobs with an
// accept but no complete are replayed — correct by determinism — and
// completed jobs are re-served from their journaled result bytes.
//
// The file survives SIGKILL mid-write: at most the final line is torn,
// and Open tolerates (and truncates away) a torn tail. A torn or
// inconsistent line anywhere else means real corruption and is
// rejected. Records are deduplicated by job ID: a duplicate accept for
// the same (ID, key) pair and a duplicate complete are ignored; an
// accept that re-uses an ID under a different canonical key is
// corruption.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string

	accepts    map[string]*RecoveredJob // by job ID
	order      []string                 // accept order
	dispatches map[string]string        // job ID -> last replica
	completes  map[string]bool

	appends   int64
	appendErr int64
	firstErr  error
}

// OpenJournal opens or creates the write-ahead journal at path,
// replaying any existing records.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("fleet: journal: %w", err)
	}
	j := &Journal{
		f:          f,
		path:       path,
		accepts:    make(map[string]*RecoveredJob),
		dispatches: make(map[string]string),
		completes:  make(map[string]bool),
	}
	keep, err := j.load()
	if err != nil {
		f.Close()
		return nil, err
	}
	// Drop the torn tail (if any) so appends start on a line boundary,
	// and make a fresh journal's header durable before any job is
	// accepted against it.
	if err := f.Truncate(keep); err != nil {
		f.Close()
		return nil, fmt.Errorf("fleet: journal %s: %w", path, err)
	}
	if _, err := f.Seek(keep, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("fleet: journal %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("fleet: journal %s: %w", path, err)
	}
	return j, nil
}

// load reads the journal, verifying the header (writing one into an
// empty file) and folding the records into the recovery maps. It
// returns the byte offset of the end of the last intact line.
func (j *Journal) load() (keep int64, err error) {
	st, err := j.f.Stat()
	if err != nil {
		return 0, fmt.Errorf("fleet: journal %s: %w", j.path, err)
	}
	if st.Size() == 0 {
		hdr, err := json.Marshal(journalHeader{Version: journalVersion, Config: journalConfig})
		if err != nil {
			return 0, err
		}
		hdr = append(hdr, '\n')
		if _, err := j.f.Write(hdr); err != nil {
			return 0, fmt.Errorf("fleet: journal %s: %w", j.path, err)
		}
		return int64(len(hdr)), nil
	}

	sc := bufio.NewScanner(j.f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	var off int64
	lineNo := 0
	for sc.Scan() {
		line := sc.Bytes()
		lineLen := int64(len(line)) + 1 // +1 for the newline Scan strips
		whole := off+lineLen <= st.Size()
		lineNo++
		if lineNo == 1 {
			var hdr journalHeader
			if err := json.Unmarshal(line, &hdr); err != nil || !whole {
				return 0, fmt.Errorf("fleet: journal %s: corrupt header line", j.path)
			}
			if hdr.Version != journalVersion {
				return 0, fmt.Errorf("fleet: journal %s: version %d, want %d",
					j.path, hdr.Version, journalVersion)
			}
			if hdr.Config != journalConfig {
				return 0, fmt.Errorf("fleet: journal %s was written under configuration %q, current is %q; delete the journal to proceed",
					j.path, hdr.Config, journalConfig)
			}
			off += lineLen
			continue
		}
		if !whole {
			// Unterminated final line: the crash landed mid-write. Drop it
			// even if its prefix happens to parse, and let the transition
			// be re-derived (a torn accept was never acknowledged to the
			// client; a torn complete just re-runs the job).
			return off, nil
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil || rec.ID == "" {
			return 0, fmt.Errorf("fleet: journal %s: corrupt record on line %d", j.path, lineNo)
		}
		if err := j.foldLocked(rec, lineNo); err != nil {
			return 0, err
		}
		off += lineLen
	}
	if err := sc.Err(); err != nil {
		return 0, fmt.Errorf("fleet: journal %s: %w", j.path, err)
	}
	return off, nil
}

// foldLocked applies one loaded record to the recovery maps.
func (j *Journal) foldLocked(rec journalRecord, lineNo int) error {
	switch rec.Op {
	case "accept":
		if rec.Key == "" || rec.Req == nil {
			return fmt.Errorf("fleet: journal %s: accept record on line %d misses key or request", j.path, lineNo)
		}
		if prev, ok := j.accepts[rec.ID]; ok {
			if prev.Key != rec.Key {
				return fmt.Errorf("fleet: journal %s: line %d re-accepts %s under key %q (was %q)",
					j.path, lineNo, rec.ID, rec.Key, prev.Key)
			}
			return nil // duplicate accept: dedupe
		}
		j.accepts[rec.ID] = &RecoveredJob{
			ID: rec.ID, Key: rec.Key, Trace: rec.Trace,
			Req: *rec.Req, SubmittedMS: rec.SubmittedMS,
		}
		j.order = append(j.order, rec.ID)
	case "dispatch":
		if _, ok := j.accepts[rec.ID]; !ok {
			return fmt.Errorf("fleet: journal %s: line %d dispatches unknown job %s", j.path, lineNo, rec.ID)
		}
		j.dispatches[rec.ID] = rec.Replica
	case "complete":
		job, ok := j.accepts[rec.ID]
		if !ok {
			return fmt.Errorf("fleet: journal %s: line %d completes unknown job %s", j.path, lineNo, rec.ID)
		}
		if j.completes[rec.ID] {
			return nil // duplicate complete: dedupe
		}
		if !rec.State.Terminal() {
			return fmt.Errorf("fleet: journal %s: line %d completes %s in non-terminal state %q",
				j.path, lineNo, rec.ID, rec.State)
		}
		j.completes[rec.ID] = true
		job.State, job.Error, job.FinishedMS = rec.State, rec.Error, rec.FinishedMS
		if rec.Result != "" {
			job.Result = json.RawMessage(rec.Result)
		}
	default:
		return fmt.Errorf("fleet: journal %s: unknown op %q on line %d", j.path, rec.Op, lineNo)
	}
	return nil
}

// Recovered returns the jobs reconstructed from the pre-existing
// journal, in accept order: complete holds terminal jobs (result bytes
// intact), incomplete holds accepted jobs with no terminal record —
// the ones a restarted router must replay.
func (j *Journal) Recovered() (complete, incomplete []RecoveredJob) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, id := range j.order {
		job := j.accepts[id]
		if j.completes[id] {
			complete = append(complete, *job)
		} else {
			jc := *job
			jc.Replica = j.dispatches[id]
			incomplete = append(incomplete, jc)
		}
	}
	return complete, incomplete
}

// Accept journals a job admission: the write-ahead record. It is
// fsync'd before returning, so a crash immediately after cannot lose
// the job. The error (also sticky, see Err) tells the router the
// durability promise would be broken — Submit turns it into a 503.
func (j *Journal) Accept(id, key string, trace uint64, req serve.JobRequest, submitted time.Time) error {
	return j.append(journalRecord{
		Op: "accept", ID: id, Key: key, Trace: trace,
		Req: &req, SubmittedMS: submitted.UnixMilli(),
	})
}

// Dispatch journals a replica accepting the job. Informational: losing
// this record only costs the recovery summary its "last seen on" note.
func (j *Journal) Dispatch(id, replica string) error {
	return j.append(journalRecord{Op: "dispatch", ID: id, Replica: replica})
}

// Complete journals a terminal transition. Losing this record (crash
// between the replica answering and the fsync) is safe: the job is
// replayed on recovery and determinism reproduces the same bytes.
func (j *Journal) Complete(id string, state serve.JobState, result json.RawMessage, errMsg string, finished time.Time) error {
	return j.append(journalRecord{
		Op: "complete", ID: id, State: state,
		Result: string(result), Error: errMsg, FinishedMS: finished.UnixMilli(),
	})
}

func (j *Journal) append(rec journalRecord) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("fleet: journal %s: closed", j.path)
	}
	// Validate and dedupe before touching the file, so an inconsistent
	// transition is refused rather than persisted.
	switch rec.Op {
	case "accept":
		if prev, ok := j.accepts[rec.ID]; ok {
			if prev.Key != rec.Key {
				return fmt.Errorf("fleet: journal %s: re-accept of %s under key %q (was %q)",
					j.path, rec.ID, rec.Key, prev.Key)
			}
			return j.firstErr // dedupe: already durable
		}
	case "dispatch":
		if _, ok := j.accepts[rec.ID]; !ok {
			return fmt.Errorf("fleet: journal %s: dispatch of unjournaled job %s", j.path, rec.ID)
		}
	case "complete":
		if _, ok := j.accepts[rec.ID]; !ok {
			return fmt.Errorf("fleet: journal %s: complete of unjournaled job %s", j.path, rec.ID)
		}
		if j.completes[rec.ID] {
			return j.firstErr // dedupe: already durable
		}
		if !rec.State.Terminal() {
			return fmt.Errorf("fleet: journal %s: complete of %s in non-terminal state %q", j.path, rec.ID, rec.State)
		}
	}
	line, err := json.Marshal(rec)
	if err == nil {
		_, err = j.f.Write(append(line, '\n'))
	}
	if err == nil {
		err = j.f.Sync()
	}
	if err != nil {
		err = fmt.Errorf("fleet: journal %s: %w", j.path, err)
		j.appendErr++
		if j.firstErr == nil {
			j.firstErr = err
		}
		return err
	}
	j.appends++
	if err := j.foldLocked(rec, -1); err != nil {
		// Unreachable given the pre-validation above, but keep the guard:
		// the line is durable, surface the inconsistency via Err.
		if j.firstErr == nil {
			j.firstErr = err
		}
		return err
	}
	return nil
}

// JournalStats is the observable state of the journal.
type JournalStats struct {
	Path string `json:"path"`
	// Records counts appends by this process (recovery loads excluded).
	Records int64 `json:"records_appended"`
	Errors  int64 `json:"append_errors"`
}

// Stats snapshots the journal counters.
func (j *Journal) Stats() JournalStats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JournalStats{Path: j.path, Records: j.appends, Errors: j.appendErr}
}

// Path returns the journal file path.
func (j *Journal) Path() string { return j.path }

// Err returns the first append or consistency failure, if any.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.firstErr
}

// Close syncs and closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}
