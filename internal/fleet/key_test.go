package fleet

import (
	"strings"
	"testing"

	"memsched/internal/serve"
)

func TestCanonicalizeFixedPoint(t *testing.T) {
	reqs := []serve.JobRequest{
		{Workload: "matmul2d", N: 4},
		{Workload: "cholesky", N: 8, GPUs: 4, Strategy: "HEFT", Seed: 9},
		{Workload: "sparse2d", N: 6, Keep: 0.5, Faults: "drop=1@5ms"},
		{Workload: "matmul3d", N: 3, Faults: "none"},
		{Workload: "matmul2d", N: 2, Faults: "definitely not a fault spec"},
	}
	for _, req := range reqs {
		once := Canonicalize(req)
		twice := Canonicalize(once)
		if once != twice {
			t.Errorf("Canonicalize not a fixed point for %+v:\n once: %+v\ntwice: %+v", req, once, twice)
		}
		if k1, k2 := CanonicalKey(req), CanonicalKey(once); k1 != k2 {
			t.Errorf("key changes under canonicalization for %+v: %q vs %q", req, k1, k2)
		}
	}
}

// TestCanonicalKeyCollapsesEquivalentSpellings pins the point of the
// canonical key: every spelling of the same job shares one key, so the
// ring sends them to the same replica and the cache answers them from
// one entry.
func TestCanonicalKeyCollapsesEquivalentSpellings(t *testing.T) {
	base := serve.JobRequest{Workload: "matmul2d", N: 4, GPUs: 1, Strategy: "DARTS+LUF", Seed: 1}
	variants := []serve.JobRequest{
		{Workload: "matmul2d", N: 4},                        // all defaults implicit
		{Workload: "matmul2d", N: 4, Strategy: "DARTS+LUF"}, // strategy explicit
		{Workload: "matmul2d", N: 4, Seed: 1, GPUs: 1},      // seed+gpus explicit
		{Workload: "matmul2d", N: 4, Faults: "none"},        // empty fault plan spelled out
		{Workload: "matmul2d", N: 4, Faults: ""},            // empty fault plan
		{Workload: "matmul2d", N: 4, TimeoutMS: 9999},       // timeout excluded by design
		{Workload: "matmul2d", N: 4, TimeoutMS: 1, Strategy: "DARTS+LUF"},
	}
	want := CanonicalKey(base)
	for _, v := range variants {
		if got := CanonicalKey(v); got != want {
			t.Errorf("CanonicalKey(%+v) = %q, want %q", v, got, want)
		}
	}
}

func TestCanonicalKeyDistinguishesResultFields(t *testing.T) {
	base := serve.JobRequest{Workload: "matmul2d", N: 4}
	distinct := []serve.JobRequest{
		{Workload: "matmul2d", N: 5},
		{Workload: "matmul3d", N: 4},
		{Workload: "matmul2d", N: 4, GPUs: 2},
		{Workload: "matmul2d", N: 4, Strategy: "HEFT"},
		{Workload: "matmul2d", N: 4, Seed: 2},
		{Workload: "matmul2d", N: 4, MemMB: 1024},
		{Workload: "matmul2d", N: 4, Cost: true},
		{Workload: "matmul2d", N: 4, CritPath: true},
		{Workload: "matmul2d", N: 4, Faults: "drop=1@5ms"},
	}
	want := CanonicalKey(base)
	seen := map[string]int{want: -1}
	for i, v := range distinct {
		got := CanonicalKey(v)
		if got == want {
			t.Errorf("CanonicalKey(%+v) aliases the base key %q", v, want)
		}
		if prev, dup := seen[got]; dup {
			t.Errorf("CanonicalKey collision between variants %d and %d: %q", prev, i, got)
		}
		seen[got] = i
	}
}

// TestCanonicalKeyEscaping pins the unambiguity property: field values
// containing the separator cannot forge another field.
func TestCanonicalKeyEscaping(t *testing.T) {
	a := serve.JobRequest{Workload: "w|s=x", N: 1, Strategy: "y"}
	b := serve.JobRequest{Workload: "w", N: 1, Strategy: "x|s=y"} // would alias unescaped
	ka, kb := CanonicalKey(a), CanonicalKey(b)
	if ka == kb {
		t.Fatalf("escaping failed: %q and %q share key %q", a.Workload, b.Strategy, ka)
	}
	if !strings.Contains(ka, "%7C") {
		t.Errorf("separator not escaped in %q", ka)
	}
	if got := CanonicalKey(serve.JobRequest{Workload: "a%7Cb", N: 1}); !strings.Contains(got, "%257Cb") {
		t.Errorf("escape character not escaped in %q", got)
	}
}

func TestCanonicalKeyVersioned(t *testing.T) {
	if k := CanonicalKey(serve.JobRequest{Workload: "matmul2d", N: 4}); !strings.HasPrefix(k, "v1|") {
		t.Fatalf("key %q is not versioned", k)
	}
}
