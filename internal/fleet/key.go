// Package fleet scales memschedd out: a router daemon (cmd/memrouter)
// shards jobs across N replicas by consistent hashing on a canonical
// job key, health-checks the replicas, fails jobs over from dead ones,
// hedges stragglers, and answers repeated specs from a content-
// addressed result cache.
//
// Everything leans on one invariant the project has pinned since PR 1:
// a job spec determines its result bit-for-bit. That turns re-execution
// into a safe recovery move (a job lost with a replica can be replayed
// anywhere) and turns caching into correctness-preserving throughput
// (the cached bytes are exactly what a fresh run would produce).
package fleet

import (
	"strconv"
	"strings"

	"memsched/internal/fault"
	"memsched/internal/serve"
)

// Canonicalize maps a job request onto its canonical form: the fixed
// point every equivalent spelling of the same job collapses to. It
// fills the serve-layer defaults and rewrites the fault spec into its
// canonical rendering (fault.Plan.String, with the empty plan spelled
// ""). Specs that would fail admission (an unparsable fault plan, say)
// are canonicalized as far as possible and left otherwise intact — the
// replica's admission control stays the arbiter of validity, the key
// only has to be stable and panic-free.
func Canonicalize(req serve.JobRequest) serve.JobRequest {
	req.Normalize()
	if plan, err := fault.ParseSpec(req.Faults); err == nil {
		if plan.Empty() {
			req.Faults = ""
		} else {
			req.Faults = plan.String()
		}
	}
	return req
}

// CanonicalKey returns the content address of a job: two requests get
// the same key exactly when the determinism invariant guarantees them
// byte-identical results. The key covers every field that feeds the
// simulation — workload, strategy, n, gpus, keep, mem, seed, cost,
// faults, critpath — and deliberately excludes TimeoutMS, which bounds
// wall time without touching the simulated outcome.
//
// The rendering is versioned ("v1|...") so a future field addition
// invalidates caches instead of aliasing into them.
func CanonicalKey(req serve.JobRequest) string {
	c := Canonicalize(req)
	var sb strings.Builder
	sb.Grow(96)
	sb.WriteString("v1|w=")
	sb.WriteString(escapeKeyField(c.Workload))
	sb.WriteString("|s=")
	sb.WriteString(escapeKeyField(c.Strategy))
	sb.WriteString("|n=")
	sb.WriteString(strconv.Itoa(c.N))
	sb.WriteString("|g=")
	sb.WriteString(strconv.Itoa(c.GPUs))
	sb.WriteString("|k=")
	sb.WriteString(strconv.FormatFloat(c.Keep, 'g', -1, 64))
	sb.WriteString("|m=")
	sb.WriteString(strconv.FormatInt(c.MemMB, 10))
	sb.WriteString("|seed=")
	sb.WriteString(strconv.FormatInt(c.Seed, 10))
	sb.WriteString("|cost=")
	sb.WriteString(boolField(c.Cost))
	sb.WriteString("|cp=")
	sb.WriteString(boolField(c.CritPath))
	sb.WriteString("|f=")
	sb.WriteString(escapeKeyField(c.Faults))
	return sb.String()
}

func boolField(b bool) string {
	if b {
		return "1"
	}
	return "0"
}

// escapeKeyField keeps the key unambiguous for arbitrary field values:
// the separator '|' and the escape '%' are percent-encoded, so no two
// distinct field tuples can render to the same key.
func escapeKeyField(s string) string {
	if !strings.ContainsAny(s, "|%") {
		return s
	}
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '|':
			sb.WriteString("%7C")
		case '%':
			sb.WriteString("%25")
		default:
			sb.WriteByte(s[i])
		}
	}
	return sb.String()
}
