package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"memsched/internal/obs"
	"memsched/internal/serve"
)

// Config tunes a Router. The zero value of every field selects the
// documented default; only Replicas is required.
type Config struct {
	// Replicas are the memschedd base URLs ("http://host:port") of the
	// initial membership; AddReplica/RemoveReplica change the set at
	// runtime.
	Replicas []string
	// VNodes is the consistent-hash virtual-node count per replica
	// (default DefaultVNodes).
	VNodes int

	// MaxInFlight bounds the router's accepted-but-unfinished jobs;
	// submissions beyond it are shed with 429 (default 256). This is the
	// explicit-shed half of graceful degradation: when the fleet
	// saturates, excess load is refused at the door with a Retry-After
	// rather than queued into oblivion.
	MaxInFlight int
	// JobTimeout bounds one job end to end, across every failover and
	// hedge (default 5m).
	JobTimeout time.Duration
	// PollTimeout bounds one ?wait=1 long-poll to a replica (default
	// 2s). Shorter polls re-check replica health sooner; longer polls
	// cost fewer requests.
	PollTimeout time.Duration
	// MaxAttempts bounds dispatch attempts per job across all replicas
	// (default 3 per replica, minimum 4).
	MaxAttempts int
	// BaseBackoff and MaxBackoff shape the delay before re-trying when
	// no replica is currently eligible (defaults 50ms and 2s).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration

	// BreakerThreshold consecutive dispatch failures open a replica's
	// circuit breaker for BreakerCooldown before a half-open probe
	// (defaults 3 and 5s; negative threshold disables the breakers).
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// HedgeQuantile picks the sojourn quantile that arms the hedge timer
	// (default 0.95): a job still unfinished after the fleet's q-th
	// latency percentile gets a second dispatch on the next preferred
	// replica, first result wins. HedgeMinDelay floors the timer while
	// the histogram is cold (default 250ms). DisableHedge turns hedging
	// off.
	HedgeQuantile float64
	HedgeMinDelay time.Duration
	DisableHedge  bool

	// CacheEntries/CacheBytes bound the content-addressed result cache
	// (defaults DefaultCacheEntries/DefaultCacheBytes); DisableCache
	// turns it off.
	CacheEntries int
	CacheBytes   int64
	DisableCache bool

	// MaxN and MaxGPUs are the local admission bounds, mirroring the
	// replica defaults (300 and 8) so an invalid job is a local 400, not
	// a wasted dispatch.
	MaxN    int
	MaxGPUs int

	// Health tunes the replica prober.
	Health HealthConfig

	// Journal is the write-ahead job journal (nil runs without
	// durability). The router journals accept before acknowledging a
	// submission and complete on every terminal transition; a journal
	// opened over a previous run's file replays its incomplete jobs.
	Journal *Journal
	// EvictAfter auto-removes a replica from the membership once it has
	// been continuously down this long (0 disables auto-eviction). The
	// last member is never evicted.
	EvictAfter time.Duration

	// HTTPClient overrides the dispatch client (nil builds one without a
	// global timeout — per-request contexts bound everything, and a
	// global timeout would sever long-polls).
	HTTPClient *http.Client

	// Logger receives structured router logs (nil discards).
	Logger *slog.Logger
	// TraceSpanCap/TraceEventCap bound the flight-recorder rings
	// (defaults 4096/1024); TraceSample records every TraceSample-th
	// job's lifecycle span (default 1).
	TraceSpanCap  int
	TraceEventCap int
	TraceSample   int

	// now is the clock seam for tests (nil uses time.Now).
	now func() time.Time
}

func (c *Config) applyDefaults() {
	if c.VNodes <= 0 {
		c.VNodes = DefaultVNodes
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 256
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 5 * time.Minute
	}
	if c.PollTimeout <= 0 {
		c.PollTimeout = 2 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3 * len(c.Replicas)
		if c.MaxAttempts < 4 {
			c.MaxAttempts = 4
		}
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 50 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 2 * time.Second
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.HedgeQuantile <= 0 || c.HedgeQuantile >= 1 {
		c.HedgeQuantile = 0.95
	}
	if c.HedgeMinDelay <= 0 {
		c.HedgeMinDelay = 250 * time.Millisecond
	}
	if c.MaxN <= 0 {
		c.MaxN = 300
	}
	if c.MaxGPUs <= 0 {
		c.MaxGPUs = 8
	}
	if c.TraceSpanCap == 0 {
		c.TraceSpanCap = 4096
	}
	if c.TraceEventCap == 0 {
		c.TraceEventCap = 1024
	}
	if c.TraceSample == 0 {
		c.TraceSample = 1
	}
	if c.now == nil {
		c.now = time.Now
	}
}

// Router shards jobs across memschedd replicas: consistent hashing
// picks the replica, health checks and per-replica breakers steer
// around dead or misbehaving ones, lost jobs are re-dispatched (safe
// because results are bit-deterministic), stragglers are hedged, and
// repeated specs are answered from the result cache without touching a
// replica at all. Create with New, start with Start, stop with Drain.
type Router struct {
	cfg     Config
	ring    *Ring
	cache   *Cache
	health  *Health
	breaker *serve.Breaker // keyed by replica URL
	bo      serve.Backoff
	tracer  *obs.Tracer
	log     *slog.Logger
	client  *http.Client

	baseCtx    context.Context
	baseCancel context.CancelFunc
	stopOnce   sync.Once

	// sojourn tracks end-to-end latency of dispatched jobs (cache hits
	// excluded so instant answers don't drag the hedge quantile to
	// zero); dispatchDur tracks one dispatch's accept-to-terminal time.
	sojourn     obs.Histogram
	dispatchDur obs.Histogram

	journal *Journal

	mu       sync.Mutex
	jobs     map[string]*rjob
	order    []string
	seq      int64
	inflight int
	draining bool
	started  time.Time
	rng      *rand.Rand
	// dispActive counts in-flight dispatches per replica; drain-aware
	// membership leave waits for a replica's count to reach zero.
	dispActive map[string]int
	// Recovered jobs staged by New for Start to launch: one driver per
	// unique canonical key, followers adopt their leader's outcome.
	recLeaders   []*rjob
	recFollowers []recFollower
	recStats     RecoveryStats

	// Counters, guarded by mu.
	ctrSubmitted, ctrDone, ctrFailed, ctrCanceled               int64
	ctrRejInvalid, ctrRejShed, ctrRejDraining, ctrRejNoReplicas int64
	ctrDispatches, ctrDispatchErrs, ctrFailovers                int64
	ctrHedges, ctrHedgeWins                                     int64
	ctrCacheServed                                              int64
	ctrJoins, ctrLeaves, ctrEvicts                              int64
	ctrJournalErrs                                              int64

	wg        sync.WaitGroup // job drivers
	janitorWg sync.WaitGroup // auto-evict loop
}

// recFollower pairs a recovered job with the leader whose outcome it
// adopts (both share one canonical key, so one re-execution serves all).
type recFollower struct {
	j      *rjob
	leader *rjob
}

// RecoveryStats summarizes a journal-backed startup.
type RecoveryStats struct {
	// Complete jobs were re-registered terminal from journaled results.
	Complete int `json:"complete"`
	// Replayed jobs had no terminal record and were re-dispatched.
	Replayed int `json:"replayed"`
	// Deduped counts replayed jobs that shared a canonical key with an
	// earlier one and rode its driver instead of dispatching again.
	Deduped int `json:"deduped"`
}

// rjob is the router-side job record; mutable fields are guarded by
// Router.mu.
type rjob struct {
	id      string
	req     serve.JobRequest // canonical form
	key     string           // CanonicalKey(req)
	trace   uint64
	sampled bool

	state   serve.JobState
	errMsg  string
	result  json.RawMessage // verbatim replica result bytes
	replica string          // serving (or winning) replica
	remote  string          // job id on that replica

	cacheHit     bool
	hedged       bool
	redispatches int

	submitted time.Time
	finished  time.Time

	cancelRequested bool
	cancel          context.CancelFunc
	done            chan struct{}
}

// JobStatus is the router's client-visible job snapshot.
type JobStatus struct {
	ID    string         `json:"id"`
	State serve.JobState `json:"state"`
	// Trace correlates the router's spans with the replica's: the same
	// ID is propagated on the forwarded submission.
	Trace uint64 `json:"trace,omitempty"`
	// Key is the canonical job key the job was sharded and cached by.
	Key     string           `json:"key"`
	Request serve.JobRequest `json:"request"`
	// Replica/ReplicaJob locate the execution that produced (or is
	// producing) the result; empty for cache hits.
	Replica    string `json:"replica,omitempty"`
	ReplicaJob string `json:"replica_job,omitempty"`
	// CacheHit marks a job answered from the result cache.
	CacheHit bool `json:"cache_hit,omitempty"`
	// Hedged marks a job that got a second dispatch; Redispatches counts
	// failover re-dispatches after a replica loss.
	Hedged       bool   `json:"hedged,omitempty"`
	Redispatches int    `json:"redispatches,omitempty"`
	Error        string `json:"error,omitempty"`
	// Result is the replica's result object, byte-for-byte: the router
	// never re-encodes it, so a routed result, a failed-over result and
	// a cached result are all identical to a single-node run's.
	Result      json.RawMessage `json:"result,omitempty"`
	SubmittedMS int64           `json:"submitted_unix_ms,omitempty"`
	FinishedMS  int64           `json:"finished_unix_ms,omitempty"`
}

func (j *rjob) status() JobStatus {
	st := JobStatus{
		ID:           j.id,
		State:        j.state,
		Trace:        j.trace,
		Key:          j.key,
		Request:      j.req,
		Replica:      j.replica,
		ReplicaJob:   j.remote,
		CacheHit:     j.cacheHit,
		Hedged:       j.hedged,
		Redispatches: j.redispatches,
		Error:        j.errMsg,
		Result:       j.result,
	}
	if !j.submitted.IsZero() {
		st.SubmittedMS = j.submitted.UnixMilli()
	}
	if !j.finished.IsZero() {
		st.FinishedMS = j.finished.UnixMilli()
	}
	return st
}

// New builds a router over cfg.Replicas. Call Start to launch the
// health prober before submitting jobs.
func New(cfg Config) (*Router, error) {
	if len(cfg.Replicas) == 0 {
		return nil, fmt.Errorf("fleet: no replicas configured")
	}
	seenReplica := make(map[string]bool, len(cfg.Replicas))
	for _, rep := range cfg.Replicas {
		if rep == "" {
			return nil, fmt.Errorf("fleet: empty replica URL")
		}
		if seenReplica[rep] {
			return nil, fmt.Errorf("fleet: duplicate replica %q", rep)
		}
		seenReplica[rep] = true
	}
	cfg.applyDefaults()
	log := cfg.Logger
	if log == nil {
		log = obs.NopLogger()
	}
	client := cfg.HTTPClient
	if client == nil {
		client = &http.Client{}
	}
	r := &Router{
		cfg:        cfg,
		ring:       NewRing(cfg.Replicas, cfg.VNodes),
		breaker:    serve.NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, cfg.now),
		bo:         serve.Backoff{Base: cfg.BaseBackoff, Max: cfg.MaxBackoff},
		tracer:     obs.NewTracer(cfg.TraceSpanCap, cfg.TraceEventCap, cfg.TraceSample),
		log:        log,
		client:     client,
		journal:    cfg.Journal,
		jobs:       make(map[string]*rjob),
		dispActive: make(map[string]int),
		started:    cfg.now(),
		rng:        rand.New(rand.NewSource(cfg.now().UnixNano())),
	}
	if !cfg.DisableCache {
		r.cache = NewCache(cfg.CacheEntries, cfg.CacheBytes)
	}
	r.baseCtx, r.baseCancel = context.WithCancel(context.Background())
	r.health = NewHealth(cfg.Replicas, cfg.Health, nil, r.onReplicaChange)
	if r.journal != nil {
		r.loadJournal()
	}
	return r, nil
}

// loadJournal folds a pre-existing journal into the job table:
// completed jobs become terminal records (done results also seed the
// cache), incomplete ones are staged for replay — one driver per unique
// canonical key, every other job with that key becomes a follower of it
// (the "dedupe by job ID + canonical key" half of recovery).
func (r *Router) loadJournal() {
	complete, incomplete := r.journal.Recovered()
	var maxSeq int64
	noteSeq := func(id string) {
		var n int64
		if _, err := fmt.Sscanf(id, "rjob-%d", &n); err == nil && n > maxSeq {
			maxSeq = n
		}
	}
	for _, c := range complete {
		noteSeq(c.ID)
		j := &rjob{
			id: c.ID, req: c.Req, key: c.Key, trace: c.Trace,
			state: c.State, errMsg: c.Error, result: c.Result,
			submitted: time.UnixMilli(c.SubmittedMS),
			finished:  time.UnixMilli(c.FinishedMS),
			done:      make(chan struct{}),
		}
		close(j.done)
		r.jobs[j.id] = j
		r.order = append(r.order, j.id)
		if c.State == serve.JobDone && r.cache != nil && len(c.Result) > 0 {
			r.cache.Put(j.key, c.Result)
		}
	}
	leaders := make(map[string]*rjob)
	for _, inc := range incomplete {
		noteSeq(inc.ID)
		j := &rjob{
			id: inc.ID, req: inc.Req, key: inc.Key, trace: inc.Trace,
			state:     serve.JobQueued,
			submitted: time.UnixMilli(inc.SubmittedMS),
			done:      make(chan struct{}),
		}
		r.jobs[j.id] = j
		r.order = append(r.order, j.id)
		r.inflight++
		if lead, ok := leaders[j.key]; ok {
			r.recFollowers = append(r.recFollowers, recFollower{j: j, leader: lead})
			r.recStats.Deduped++
		} else {
			leaders[j.key] = j
			r.recLeaders = append(r.recLeaders, j)
		}
	}
	// IDs are zero-padded, so lexicographic order restores accept order
	// across the complete/incomplete split.
	sort.Strings(r.order)
	if r.seq < maxSeq {
		r.seq = maxSeq
	}
	r.recStats.Complete = len(complete)
	r.recStats.Replayed = len(incomplete)
}

// Start launches the health prober, the auto-evict janitor, and the
// drivers of any jobs recovered from the journal.
func (r *Router) Start() {
	r.health.Start()
	if r.cfg.EvictAfter > 0 {
		r.janitorWg.Add(1)
		go r.evictLoop()
	}
	r.mu.Lock()
	leaders, followers := r.recLeaders, r.recFollowers
	r.recLeaders, r.recFollowers = nil, nil
	for range leaders {
		r.wg.Add(1)
	}
	for range followers {
		r.wg.Add(1)
	}
	r.mu.Unlock()
	now := r.now().UnixNano()
	for _, j := range leaders {
		r.tracer.Event(obs.Span{
			Trace: j.trace, Job: j.id, Key: j.key, Kind: obs.KindRecover,
			Start: now, End: now, Note: "replayed from journal",
		})
		r.log.Info("replaying journaled job", obs.TraceAttr(j.trace), "job", j.id, "key", j.key)
		go r.drive(j)
	}
	for _, f := range followers {
		r.tracer.Event(obs.Span{
			Trace: f.j.trace, Job: f.j.id, Key: f.j.key, Kind: obs.KindRecover,
			Start: now, End: now, Note: "replayed from journal (following " + f.leader.id + ")",
		})
		go r.runFollower(f.j, f.leader)
	}
}

// runFollower completes a recovered job by adopting its leader's
// outcome: both share one canonical key, so determinism makes the
// leader's bytes this job's bytes.
func (r *Router) runFollower(j, leader *rjob) {
	defer r.wg.Done()
	select {
	case <-leader.done:
	case <-r.baseCtx.Done():
		r.finish(j, serve.JobCanceled, nil, "router shutting down")
		return
	}
	r.mu.Lock()
	state, result, errMsg := leader.state, leader.result, leader.errMsg
	if !j.state.Terminal() {
		j.replica, j.remote = leader.replica, leader.remote
	}
	r.mu.Unlock()
	r.finish(j, state, result, errMsg)
}

// Recovery reports what the journal replay reconstructed (zero without
// a journal).
func (r *Router) Recovery() RecoveryStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.recStats
}

// onReplicaChange turns prober transitions into flight events and logs.
func (r *Router) onReplicaChange(replica string, from, to ReplicaState, reason string) {
	now := r.now().UnixNano()
	kind := obs.KindReplicaUp
	if to == StateDown {
		kind = obs.KindReplicaDown
	}
	r.tracer.Event(obs.Span{
		Kind: kind, Key: replica, Start: now, End: now,
		Note: from.String() + "->" + to.String() + ": " + reason,
	})
	if to == StateDown {
		r.log.Warn("replica down", "replica", replica, "reason", reason)
	} else {
		r.log.Info("replica state", "replica", replica, "from", from.String(), "to", to.String())
	}
}

// Submit routes one job. Rejections are *serve.RejectError with the
// same status mapping as a single replica: 400 invalid, 429 shed, 503
// draining or no replicas available.
func (r *Router) Submit(req serve.JobRequest) (JobStatus, error) {
	return r.SubmitTraced(req, 0)
}

// SubmitTraced is Submit with an externally propagated trace ID (0
// begins a fresh trace).
func (r *Router) SubmitTraced(req serve.JobRequest, extTrace uint64) (JobStatus, error) {
	creq := Canonicalize(req)
	trace, sampled := r.tracer.Adopt(extTrace)
	now := r.now()
	if err := creq.Validate(r.cfg.MaxN, r.cfg.MaxGPUs); err != nil {
		r.mu.Lock()
		r.ctrRejInvalid++
		r.mu.Unlock()
		return JobStatus{}, &serve.RejectError{Status: 400, Reason: err.Error()}
	}
	key := CanonicalKey(creq)

	r.mu.Lock()
	if r.draining {
		r.ctrRejDraining++
		r.mu.Unlock()
		return JobStatus{}, &serve.RejectError{Status: 503, Reason: "router draining; not accepting jobs"}
	}
	if r.inflight >= r.cfg.MaxInFlight {
		r.ctrRejShed++
		r.mu.Unlock()
		r.tracer.Event(obs.Span{
			Trace: trace, Key: key, Kind: obs.KindShed,
			Start: now.UnixNano(), End: now.UnixNano(),
			Note: fmt.Sprintf("router in-flight limit %d reached", r.cfg.MaxInFlight),
		})
		return JobStatus{}, &serve.RejectError{
			Status: 429, RetryAfter: time.Second,
			Reason: fmt.Sprintf("router saturated: %d jobs in flight", r.cfg.MaxInFlight),
		}
	}

	// Content-addressed cache: a hit materializes a terminal job with
	// the replica bytes a fresh run would have produced.
	if r.cache != nil {
		if body, ok := r.cache.Get(key); ok {
			j := r.newJobLocked(creq, key, trace, sampled, now)
			j.state = serve.JobDone
			j.cacheHit = true
			j.result = body
			j.finished = now
			close(j.done)
			r.ctrDone++
			r.ctrCacheServed++
			st := j.status()
			r.mu.Unlock()
			// Journal the hit as accept+complete so the job ID stays
			// unique across restarts and the result survives in the
			// journal-backed cache.
			r.journalAccept(j)
			r.journalComplete(j)
			r.tracer.Event(obs.Span{
				Trace: trace, Job: j.id, Key: key, Kind: obs.KindCacheHit,
				Start: now.UnixNano(), End: now.UnixNano(),
				Note: fmt.Sprintf("%d result bytes", len(body)),
			})
			r.log.Debug("cache hit", obs.TraceAttr(trace), "job", j.id, "key", key)
			return st, nil
		}
	}

	// The cache check runs first on purpose: a fleet with every replica
	// down can still answer repeated specs from the cache. Only fresh
	// work needs a live replica.
	if r.health.AllDown() {
		r.ctrRejNoReplicas++
		r.mu.Unlock()
		return JobStatus{}, &serve.RejectError{
			Status: 503, RetryAfter: time.Second,
			Reason: "no replicas available: every replica is down",
		}
	}

	j := r.newJobLocked(creq, key, trace, sampled, now)
	j.state = serve.JobQueued
	r.inflight++
	r.ctrSubmitted++
	st := j.status()
	r.wg.Add(1)
	r.mu.Unlock()

	// Write-ahead: the accept record is durable before the client sees
	// the acknowledgment. If the journal can't make that promise, refuse
	// the job rather than hold it in memory only.
	if err := r.journalAccept(j); err != nil {
		r.finish(j, serve.JobFailed, nil, "journal write failed: "+err.Error())
		r.wg.Done()
		return JobStatus{}, &serve.RejectError{
			Status: 503, RetryAfter: time.Second,
			Reason: "journal write failed: " + err.Error(),
		}
	}

	go r.drive(j)
	r.log.Debug("job routed", obs.TraceAttr(trace), "job", j.id, "key", key)
	return st, nil
}

// journalAccept appends the job's write-ahead accept record.
func (r *Router) journalAccept(j *rjob) error {
	if r.journal == nil {
		return nil
	}
	err := r.journal.Accept(j.id, j.key, j.trace, j.req, j.submitted)
	if err != nil {
		r.mu.Lock()
		r.ctrJournalErrs++
		r.mu.Unlock()
		r.log.Error("journal accept failed", "job", j.id, "err", err)
	}
	return err
}

// journalComplete appends the job's terminal record. Failure here is
// logged, not fatal: an unrecorded complete only costs a re-execution
// on recovery, which determinism makes safe.
func (r *Router) journalComplete(j *rjob) {
	if r.journal == nil {
		return
	}
	r.mu.Lock()
	state, result, errMsg, finished := j.state, j.result, j.errMsg, j.finished
	r.mu.Unlock()
	if err := r.journal.Complete(j.id, state, result, errMsg, finished); err != nil {
		r.mu.Lock()
		r.ctrJournalErrs++
		r.mu.Unlock()
		r.log.Error("journal complete failed", "job", j.id, "err", err)
	}
}

// newJobLocked allocates and registers a job record. Caller holds r.mu.
func (r *Router) newJobLocked(req serve.JobRequest, key string, trace uint64, sampled bool, now time.Time) *rjob {
	r.seq++
	j := &rjob{
		id:        fmt.Sprintf("rjob-%06d", r.seq),
		req:       req,
		key:       key,
		trace:     trace,
		sampled:   sampled,
		submitted: now,
		done:      make(chan struct{}),
	}
	r.jobs[j.id] = j
	r.order = append(r.order, j.id)
	return j
}

// Job returns the snapshot of one job.
func (r *Router) Job(id string) (JobStatus, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	if !ok {
		return JobStatus{}, serve.ErrUnknownJob
	}
	return j.status(), nil
}

// Wait blocks until the job is terminal or ctx is done, returning the
// latest snapshot either way.
func (r *Router) Wait(ctx context.Context, id string) (JobStatus, error) {
	r.mu.Lock()
	j, ok := r.jobs[id]
	if !ok {
		r.mu.Unlock()
		return JobStatus{}, serve.ErrUnknownJob
	}
	done := j.done
	r.mu.Unlock()
	select {
	case <-done:
	case <-ctx.Done():
		st, _ := r.Job(id)
		return st, ctx.Err()
	}
	return r.Job(id)
}

// List returns every job in submission order.
func (r *Router) List() []JobStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]JobStatus, 0, len(r.order))
	for _, id := range r.order {
		out = append(out, r.jobs[id].status())
	}
	return out
}

// Cancel requests cancellation of a job. A queued or running job is
// canceled asynchronously (its driver also cancels the replica-side
// job); a terminal job is returned unchanged.
func (r *Router) Cancel(id string) (JobStatus, error) {
	r.mu.Lock()
	j, ok := r.jobs[id]
	if !ok {
		r.mu.Unlock()
		return JobStatus{}, serve.ErrUnknownJob
	}
	var cancel context.CancelFunc
	finishNow := false
	if !j.state.Terminal() {
		j.cancelRequested = true
		cancel = j.cancel
		// Driver not started yet: finish directly (through finish, not
		// finishLocked, so the journal records the terminal transition).
		finishNow = cancel == nil
	}
	r.mu.Unlock()
	if finishNow {
		r.finish(j, serve.JobCanceled, nil, "canceled by client")
	} else if cancel != nil {
		cancel()
	}
	return r.Job(id)
}

// ReadyStatus is the router's /readyz body.
type ReadyStatus struct {
	Status      string `json:"status"`
	Draining    bool   `json:"draining"`
	InFlight    int    `json:"in_flight"`
	MaxInFlight int    `json:"max_in_flight"`
	ReplicasUp  int    `json:"replicas_up"`
	Replicas    int    `json:"replicas"`
	// BreakersOpen lists replicas whose dispatch breaker is open.
	BreakersOpen []string `json:"breakers_open,omitempty"`
}

// Ready snapshots the router's readiness.
func (r *Router) Ready() ReadyStatus {
	r.mu.Lock()
	st := ReadyStatus{
		Status:      "ready",
		Draining:    r.draining,
		InFlight:    r.inflight,
		MaxInFlight: r.cfg.MaxInFlight,
	}
	r.mu.Unlock()
	if st.Draining {
		st.Status = "draining"
	}
	// Live membership, not the startup slice: join/leave/evict change
	// the set at runtime.
	st.ReplicasUp = r.health.UpCount()
	st.Replicas = r.health.Count()
	st.BreakersOpen = r.breaker.OpenKeys()
	sort.Strings(st.BreakersOpen)
	return st
}

// Replicas returns the health view of every replica.
func (r *Router) Replicas() []ReplicaView { return r.health.Snapshot() }

// CacheStats snapshots the result cache (zero value when disabled).
func (r *Router) CacheStats() CacheStats {
	if r.cache == nil {
		return CacheStats{}
	}
	return r.cache.Stats()
}

// Drain stops accepting jobs, waits up to timeout for in-flight jobs to
// finish, then cancels whatever remains and stops the prober.
func (r *Router) Drain(timeout time.Duration) error {
	r.mu.Lock()
	already := r.draining
	r.draining = true
	r.mu.Unlock()
	if already {
		return nil
	}
	done := make(chan struct{})
	go func() {
		r.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-time.After(timeout):
		err = fmt.Errorf("drain timeout after %v; canceling in-flight jobs", timeout)
		r.baseCancel()
		<-done
	}
	r.shutdown()
	return err
}

// Close releases the router immediately: cancels every driver and stops
// the prober. Jobs still in flight finish canceled.
func (r *Router) Close() {
	r.mu.Lock()
	r.draining = true
	r.mu.Unlock()
	r.baseCancel()
	r.wg.Wait()
	r.shutdown()
}

func (r *Router) shutdown() {
	r.stopOnce.Do(func() {
		r.baseCancel()
		r.janitorWg.Wait()
		r.health.Stop()
	})
}

// Members returns the current ring membership, sorted.
func (r *Router) Members() []string {
	r.mu.Lock()
	members := r.ring.Replicas()
	out := make([]string, len(members))
	copy(out, members)
	r.mu.Unlock()
	sort.Strings(out)
	return out
}

// finishLocked moves a job to a terminal state. Caller holds r.mu.
func (r *Router) finishLocked(j *rjob, state serve.JobState, result json.RawMessage, errMsg string) {
	if j.state.Terminal() {
		return
	}
	j.state = state
	j.result = result
	j.errMsg = errMsg
	j.finished = r.now()
	switch state {
	case serve.JobDone:
		r.ctrDone++
	case serve.JobFailed:
		r.ctrFailed++
	case serve.JobCanceled:
		r.ctrCanceled++
	}
	r.inflight--
	close(j.done)
}

// finish is finishLocked plus the observability tail: sojourn
// histogram, cache fill, lifecycle span, log line.
func (r *Router) finish(j *rjob, state serve.JobState, result json.RawMessage, errMsg string) {
	r.mu.Lock()
	if j.state.Terminal() {
		r.mu.Unlock()
		return
	}
	r.finishLocked(j, state, result, errMsg)
	st := j.status()
	r.mu.Unlock()

	if !j.cacheHit {
		r.sojourn.Observe(j.finished.Sub(j.submitted))
	}
	if state == serve.JobDone && r.cache != nil && len(result) > 0 {
		r.cache.Put(j.key, result)
	}
	r.journalComplete(j)
	if j.sampled {
		r.tracer.Span(obs.Span{
			Trace: j.trace, Job: j.id, Key: j.key, Kind: obs.KindRoute,
			Start: j.submitted.UnixNano(), End: j.finished.UnixNano(),
			Note: fmt.Sprintf("%s replica=%s redispatches=%d hedged=%v", state, st.Replica, st.Redispatches, st.Hedged),
		})
	}
	switch state {
	case serve.JobDone:
		r.log.Debug("job done", obs.TraceAttr(j.trace), "job", j.id, "replica", st.Replica)
	case serve.JobFailed:
		r.log.Warn("job failed", obs.TraceAttr(j.trace), "job", j.id, "err", errMsg)
	case serve.JobCanceled:
		r.log.Info("job canceled", obs.TraceAttr(j.trace), "job", j.id, "reason", errMsg)
	}
}

func (r *Router) now() time.Time { return r.cfg.now() }

// backoffDelay returns the jittered delay for the attempt-th retry.
func (r *Router) backoffDelay(attempt int) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.bo.Delay(attempt, r.rng)
}
