package fleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"

	"memsched/internal/obs"
	"memsched/internal/serve"
)

// Handler returns the router's HTTP API, a superset-shaped mirror of a
// replica's so clients can point at either:
//
//	POST   /jobs        route a JobRequest; 202 + JobStatus, or 400 /
//	                    429 (+Retry-After) / 503
//	GET    /jobs        list all routed jobs in submission order
//	GET    /jobs/{id}   poll one job; ?wait=1 long-polls until terminal
//	DELETE /jobs/{id}   cancel a routed job (and its replica-side jobs)
//	GET    /replicas    health view of every replica
//	POST   /replicas    join a replica: {"replica":"http://host:port"}
//	DELETE /replicas?replica=URL[&force=1]
//	                    leave a replica (drain-aware unless force=1)
//	GET    /healthz     liveness
//	GET    /readyz      readiness; 503 + JSON body once draining
//	GET    /metrics     Prometheus text exposition (0.0.4); JSON with
//	                    Accept: application/json or ?format=json
//	GET    /debug/flight          recent job timelines + event ring (?n=)
//	GET    /debug/spans.jsonl     retained span ring as JSONL
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", r.handleSubmit)
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, r.List())
	})
	mux.HandleFunc("GET /jobs/{id}", r.handleJob)
	mux.HandleFunc("DELETE /jobs/{id}", r.handleCancel)
	mux.HandleFunc("GET /replicas", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, r.Replicas())
	})
	mux.HandleFunc("POST /replicas", r.handleReplicaJoin)
	mux.HandleFunc("DELETE /replicas", r.handleReplicaLeave)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, req *http.Request) {
		st := r.Ready()
		code := http.StatusOK
		if st.Draining {
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, st)
	})
	mux.HandleFunc("GET /metrics", r.handleMetrics)
	mux.HandleFunc("GET /debug/flight", r.handleFlight)
	mux.HandleFunc("GET /debug/spans.jsonl", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		obs.WriteJSONL(w, r.Spans())
	})
	return mux
}

func (r *Router) handleSubmit(w http.ResponseWriter, req *http.Request) {
	var jr serve.JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, req.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&jr); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("bad request body: %v", err)})
		return
	}
	var extTrace uint64
	if h := req.Header.Get(serve.TraceHeader); h != "" {
		if v, err := strconv.ParseUint(h, 10, 64); err == nil {
			extTrace = v
		}
	}
	st, err := r.SubmitTraced(jr, extTrace)
	if err != nil {
		writeReject(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (r *Router) handleJob(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	var st JobStatus
	var err error
	if req.URL.Query().Get("wait") != "" {
		st, err = r.Wait(req.Context(), id)
	} else {
		st, err = r.Job(id)
	}
	if errors.Is(err, serve.ErrUnknownJob) {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (r *Router) handleCancel(w http.ResponseWriter, req *http.Request) {
	st, err := r.Cancel(req.PathValue("id"))
	if errors.Is(err, serve.ErrUnknownJob) {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (r *Router) handleReplicaJoin(w http.ResponseWriter, req *http.Request) {
	var body struct {
		Replica string `json:"replica"`
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, req.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&body); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("bad request body: %v", err)})
		return
	}
	if err := r.AddReplica(body.Replica); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, r.Replicas())
}

func (r *Router) handleReplicaLeave(w http.ResponseWriter, req *http.Request) {
	replica := req.URL.Query().Get("replica")
	if replica == "" {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "missing replica query parameter"})
		return
	}
	force := false
	switch v := req.URL.Query().Get("force"); v {
	case "", "0", "false":
	case "1", "true":
		force = true
	default:
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("bad force value %q", v)})
		return
	}
	if err := r.RemoveReplica(replica, force); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, r.Replicas())
}

func (r *Router) handleMetrics(w http.ResponseWriter, req *http.Request) {
	switch format := req.URL.Query().Get("format"); format {
	case "json":
		writeJSON(w, http.StatusOK, r.Snapshot())
		return
	case "", "prometheus":
	default:
		writeJSON(w, http.StatusBadRequest, map[string]string{
			"error": fmt.Sprintf("unknown format %q (json, prometheus)", format)})
		return
	}
	if strings.Contains(req.Header.Get("Accept"), "application/json") {
		writeJSON(w, http.StatusOK, r.Snapshot())
		return
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	w.Header().Set("Content-Type", obs.PromContentType)
	w.WriteHeader(http.StatusOK)
	w.Write(buf.Bytes())
}

func (r *Router) handleFlight(w http.ResponseWriter, req *http.Request) {
	n := 0
	if q := req.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "n must be a positive integer"})
			return
		}
		n = v
	}
	writeJSON(w, http.StatusOK, r.FlightDump(n))
}

// writeReject maps a Submit rejection onto its HTTP status and
// Retry-After header (same shape as a replica's).
func writeReject(w http.ResponseWriter, err error) {
	var rej *serve.RejectError
	if !errors.As(err, &rej) {
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	if rej.RetryAfter > 0 {
		secs := int(math.Ceil(rej.RetryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	writeJSON(w, rej.Status, map[string]string{"error": rej.Reason})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
