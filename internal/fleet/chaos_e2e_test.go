package fleet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"memsched/internal/serve"
	"memsched/internal/sim"
)

// replicaProc is one real memschedd child process.
type replicaProc struct {
	cmd    *exec.Cmd
	url    string
	stderr *bytes.Buffer
}

// startReplicas builds the memschedd binary once and starts n real
// replica processes on ephemeral ports, parsing the stdout
// port-discovery line each one prints.
func startReplicas(t *testing.T, n int) []*replicaProc {
	t.Helper()
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH")
	}
	bin := filepath.Join(t.TempDir(), "memschedd")
	if out, err := exec.Command(goBin, "build", "-o", bin, "memsched/cmd/memschedd").CombinedOutput(); err != nil {
		t.Fatalf("go build memschedd: %v\n%s", err, out)
	}

	procs := make([]*replicaProc, 0, n)
	t.Cleanup(func() {
		for _, p := range procs {
			p.cmd.Process.Kill()
			p.cmd.Wait()
		}
	})
	for i := 0; i < n; i++ {
		cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-workers", "1", "-log-level", "warn")
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		stderr := new(bytes.Buffer)
		cmd.Stderr = stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("start replica %d: %v", i, err)
		}
		p := &replicaProc{cmd: cmd, stderr: stderr}
		procs = append(procs, p)

		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if _, rest, ok := strings.Cut(sc.Text(), "listening on "); ok {
				p.url = strings.TrimSpace(rest)
				break
			}
		}
		if p.url == "" {
			t.Fatalf("replica %d printed no listening line; stderr: %s", i, stderr.String())
		}
		go func() { // keep stdout drained so the child never blocks
			for sc.Scan() {
			}
		}()
	}
	return procs
}

// TestChaosKillReplicaE2E is the fleet's proof artifact: three real
// memschedd processes behind an in-process (race-instrumented) router,
// a batch of real-simulator jobs in flight, and a kill -9 of a replica
// that is actively running one. Every accepted job must still complete,
// every result must be byte-identical to a single-node run of the same
// spec, and re-submitted specs must be served from the result cache —
// also byte-identical, and counted.
func TestChaosKillReplicaE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills real processes")
	}
	procs := startReplicas(t, 3)
	urls := make([]string, len(procs))
	byURL := make(map[string]*replicaProc, len(procs))
	for i, p := range procs {
		urls[i] = p.url
		byURL[p.url] = p
	}

	r := newTestRouter(t, Config{
		Replicas:    urls,
		PollTimeout: 250 * time.Millisecond,
		JobTimeout:  90 * time.Second,
		BaseBackoff: 10 * time.Millisecond,
		MaxBackoff:  200 * time.Millisecond,
		Health: HealthConfig{
			Interval:      50 * time.Millisecond,
			Timeout:       2 * time.Second,
			FailThreshold: 2,
		},
	})

	// Real-simulator specs sized to run long enough (workers=1 per
	// replica queues them) that a kill lands mid-flight.
	// Sizes calibrated to ~150-600ms each on the real simulator: long
	// enough that the kill lands while jobs are in flight, short enough
	// that the whole batch drains in seconds.
	specs := []serve.JobRequest{
		{Workload: "matmul2d", N: 250, GPUs: 2},
		{Workload: "matmul2d", N: 300, GPUs: 1},
		{Workload: "cholesky", N: 60, GPUs: 2},
		{Workload: "cholesky", N: 80, GPUs: 1},
		{Workload: "matmul3d", N: 40, GPUs: 2},
		{Workload: "matmul3d", N: 50, GPUs: 1},
		{Workload: "matmul2d", N: 280, GPUs: 2},
		{Workload: "cholesky", N: 70, GPUs: 1, Seed: 2},
	}
	ids := make([]string, len(specs))
	for i, spec := range specs {
		st, err := r.Submit(spec)
		if err != nil {
			t.Fatalf("submit spec %d: %v", i, err)
		}
		ids[i] = st.ID
	}

	// Find a replica actively running a job, then kill -9 it.
	var victim string
	deadline := time.Now().Add(20 * time.Second)
	for victim == "" {
		if time.Now().After(deadline) {
			t.Fatal("no job ever reached running state")
		}
		for _, st := range r.List() {
			if st.State == serve.JobRunning && st.Replica != "" {
				victim = st.Replica
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := byURL[victim].cmd.Process.Kill(); err != nil { // SIGKILL
		t.Fatalf("kill -9 %s: %v", victim, err)
	}
	byURL[victim].cmd.Wait()
	t.Logf("killed replica %s mid-load", victim)

	// Every accepted job completes despite the kill.
	results := make([]json.RawMessage, len(specs))
	for i, id := range ids {
		st := waitRouterDone(t, r, id)
		if st.State != serve.JobDone {
			t.Fatalf("job %d (%+v) after kill: state %s (%s)", i, specs[i], st.State, st.Error)
		}
		if st.Replica == victim {
			t.Fatalf("job %d claims completion on the killed replica", i)
		}
		results[i] = st.Result
	}
	m := r.Snapshot()
	if m.JobsDone != int64(len(specs)) || m.JobsFailed != 0 {
		t.Fatalf("metrics after kill: %d done / %d failed, want %d / 0",
			m.JobsDone, m.JobsFailed, len(specs))
	}
	if m.Failovers == 0 {
		t.Error("killed an active replica but counted no failover re-dispatches")
	}

	// Byte-identical to single-node: run every spec through one
	// in-process server with the real simulator and compare compacted
	// result bytes.
	single := serve.New(serve.Config{Workers: 2})
	defer single.Drain(30 * time.Second)
	var wg sync.WaitGroup
	singleRes := make([][]byte, len(specs))
	errs := make([]error, len(specs))
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec serve.JobRequest) {
			defer wg.Done()
			st, err := single.Submit(spec)
			if err != nil {
				errs[i] = err
				return
			}
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			st, err = single.Wait(ctx, st.ID)
			if err != nil || st.State != serve.JobDone {
				errs[i] = fmt.Errorf("single-node state %s: %v", st.State, err)
				return
			}
			singleRes[i], errs[i] = json.Marshal(st.Result)
		}(i, spec)
	}
	wg.Wait()
	for i := range specs {
		if errs[i] != nil {
			t.Fatalf("single-node run %d: %v", i, errs[i])
		}
		var got bytes.Buffer
		if err := json.Compact(&got, results[i]); err != nil {
			t.Fatalf("routed result %d is not valid JSON: %v", i, err)
		}
		if !bytes.Equal(got.Bytes(), singleRes[i]) {
			t.Errorf("spec %d result differs from single-node:\nrouted: %s\nsingle: %s",
				i, got.Bytes(), singleRes[i])
		}
	}

	// Re-submitting each spec (different spelling: an explicit timeout)
	// must be served from the content-addressed cache, byte-identical,
	// and counted as hits.
	hitsBefore := r.Snapshot().Cache.Hits
	for i, spec := range specs {
		spec.TimeoutMS = 12345 // wall-time only: same canonical key
		st, err := r.Submit(spec)
		if err != nil {
			t.Fatalf("cache resubmit %d: %v", i, err)
		}
		st = waitRouterDone(t, r, st.ID)
		if !st.CacheHit {
			t.Fatalf("resubmit %d was not a cache hit (replica %s)", i, st.Replica)
		}
		if !bytes.Equal(st.Result, results[i]) {
			t.Fatalf("cached result %d not byte-identical to the original", i)
		}
	}
	if hits := r.Snapshot().Cache.Hits - hitsBefore; hits != int64(len(specs)) {
		t.Fatalf("cache counted %d hits for %d resubmits", hits, len(specs))
	}
}

// routerProc is a real memrouter child process with a write-ahead
// journal, plus the recovery summary it printed at startup.
type routerProc struct {
	cmd      *exec.Cmd
	url      string
	recovery string
	stderr   *bytes.Buffer
}

// startRouter builds and starts a real memrouter on an ephemeral port
// over the given replicas, journaling to journalPath, and parses both
// stdout contract lines: "listening on" and the journal recovery
// summary.
func startRouter(t *testing.T, journalPath string, replicas []string) *routerProc {
	t.Helper()
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH")
	}
	bin := filepath.Join(t.TempDir(), "memrouter")
	if out, err := exec.Command(goBin, "build", "-o", bin, "memsched/cmd/memrouter").CombinedOutput(); err != nil {
		t.Fatalf("go build memrouter: %v\n%s", err, out)
	}
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-replicas", strings.Join(replicas, ","),
		"-journal", journalPath,
		"-no-hedge",
		"-poll-timeout", "250ms",
		"-backoff", "10ms",
		"-max-backoff", "200ms",
		"-health-interval", "50ms",
		"-health-fail-threshold", "2",
		"-log-level", "warn",
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	stderr := new(bytes.Buffer)
	cmd.Stderr = stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start memrouter: %v", err)
	}
	p := &routerProc{cmd: cmd, stderr: stderr}
	t.Cleanup(func() {
		p.cmd.Process.Kill()
		p.cmd.Wait()
	})

	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		if _, rest, ok := strings.Cut(line, "listening on "); ok {
			p.url = strings.TrimSpace(rest)
			continue
		}
		if strings.Contains(line, "journal recovered:") {
			p.recovery = line
			break
		}
	}
	if p.url == "" || p.recovery == "" {
		t.Fatalf("memrouter printed no listening/recovery lines (url %q, recovery %q); stderr: %s",
			p.url, p.recovery, stderr.String())
	}
	go func() { // keep stdout drained so the child never blocks
		for sc.Scan() {
		}
	}()
	return p
}

// getJob fetches one job status over the wire; wait long-polls.
func getJob(t *testing.T, base, id string, wait bool) (JobStatus, int) {
	t.Helper()
	u := base + "/jobs/" + id
	if wait {
		u += "?wait=1"
	}
	cl := &http.Client{Timeout: 30 * time.Second}
	resp, err := cl.Get(u)
	if err != nil {
		return JobStatus{}, 0
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&st); err != nil {
			t.Fatalf("decode job %s: %v", id, err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return st, resp.StatusCode
}

// TestChaosRouterKillRecoveryE2E is the durability proof artifact: a
// real memrouter process with a write-ahead journal takes a batch of
// real-simulator jobs, is killed with SIGKILL while some are still in
// flight, and a fresh process over the same journal finishes every one
// of them. Jobs that completed before the kill are re-served
// byte-identically from the journal; re-dispatched ones match a
// single-node run byte for byte — no accepted job is lost.
func TestChaosRouterKillRecoveryE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills real processes")
	}
	procs := startReplicas(t, 2)
	urls := make([]string, len(procs))
	for i, p := range procs {
		urls[i] = p.url
	}
	journal := filepath.Join(t.TempDir(), "jobs.journal")
	rt := startRouter(t, journal, urls)

	// Same calibrated spec mix as the replica-kill test: ~150-600ms each
	// on the real simulator, so the SIGKILL lands mid-batch with two
	// single-worker replicas draining it.
	specs := []serve.JobRequest{
		{Workload: "matmul2d", N: 250, GPUs: 2},
		{Workload: "matmul2d", N: 300, GPUs: 1},
		{Workload: "cholesky", N: 60, GPUs: 2},
		{Workload: "cholesky", N: 80, GPUs: 1},
		{Workload: "matmul3d", N: 40, GPUs: 2},
		{Workload: "matmul3d", N: 50, GPUs: 1},
		{Workload: "matmul2d", N: 280, GPUs: 2},
		{Workload: "cholesky", N: 70, GPUs: 1, Seed: 2},
	}
	cl := &http.Client{Timeout: 10 * time.Second}
	ids := make([]string, len(specs))
	for i, spec := range specs {
		body, _ := json.Marshal(spec)
		resp, err := cl.Post(rt.url+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("submit spec %d: %v", i, err)
		}
		var st JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil || resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit spec %d: status %d, decode %v", i, resp.StatusCode, err)
		}
		resp.Body.Close()
		ids[i] = st.ID
	}

	// Wait until the batch is partially done — at least one job finished
	// (so recovery has a completed record to re-serve) and at least one
	// still in flight (so the kill actually interrupts work) — capturing
	// the finished results as the byte-identity baseline.
	preKill := make(map[string]json.RawMessage)
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("batch never reached a partially-done state (%d/%d done)", len(preKill), len(ids))
		}
		for _, id := range ids {
			if _, seen := preKill[id]; seen {
				continue
			}
			if st, code := getJob(t, rt.url, id, false); code == http.StatusOK && st.State == serve.JobDone {
				preKill[id] = st.Result
			}
		}
		if len(preKill) >= 1 && len(preKill) < len(ids) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := rt.cmd.Process.Kill(); err != nil { // SIGKILL: no drain, no journal close
		t.Fatalf("kill -9 memrouter: %v", err)
	}
	rt.cmd.Wait()
	t.Logf("killed memrouter with %d/%d jobs done", len(preKill), len(ids))

	// Restart over the same journal (new port — job IDs live in the
	// journal, not the socket) and check the recovery summary adds up.
	rt2 := startRouter(t, journal, urls)
	var complete, replayed, deduped int
	if _, err := fmt.Sscanf(rt2.recovery, "memrouter: journal recovered: %d complete, %d replayed, %d deduped",
		&complete, &replayed, &deduped); err != nil {
		t.Fatalf("unparseable recovery line %q: %v", rt2.recovery, err)
	}
	if complete < len(preKill) || replayed < 1 || complete+replayed != len(ids) || deduped != 0 {
		t.Fatalf("recovery %d complete / %d replayed / %d deduped with %d ids (%d done pre-kill)",
			complete, replayed, deduped, len(ids), len(preKill))
	}

	// Zero lost jobs: every pre-crash ID reaches done on the new process.
	results := make(map[string]json.RawMessage, len(ids))
	for _, id := range ids {
		waitDeadline := time.Now().Add(60 * time.Second)
		for {
			st, code := getJob(t, rt2.url, id, true)
			if code == http.StatusOK && st.State == serve.JobDone {
				results[id] = st.Result
				break
			}
			if code == http.StatusOK && st.State.Terminal() {
				t.Fatalf("job %s after recovery: %s (%s)", id, st.State, st.Error)
			}
			if code == http.StatusNotFound {
				t.Fatalf("job %s lost across the restart", id)
			}
			if time.Now().After(waitDeadline) {
				t.Fatalf("job %s never finished after recovery (last code %d)", id, code)
			}
		}
	}

	// Jobs that completed before the kill are re-served byte-identically
	// from the journal — never re-executed into a fresh encoding.
	for id, want := range preKill {
		if !bytes.Equal(results[id], want) {
			t.Errorf("job %s result changed across the crash:\npre:  %s\npost: %s", id, want, results[id])
		}
	}

	// Replayed results are byte-identical to a single-node run: the
	// determinism contract survives the crash.
	single := serve.New(serve.Config{Workers: 2})
	defer single.Drain(30 * time.Second)
	for i, spec := range specs {
		st, err := single.Submit(spec)
		if err != nil {
			t.Fatalf("single-node submit %d: %v", i, err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		st, err = single.Wait(ctx, st.ID)
		cancel()
		if err != nil || st.State != serve.JobDone {
			t.Fatalf("single-node run %d: state %s, %v", i, st.State, err)
		}
		want, _ := json.Marshal(st.Result)
		var got bytes.Buffer
		if err := json.Compact(&got, results[ids[i]]); err != nil {
			t.Fatalf("recovered result %d invalid JSON: %v", i, err)
		}
		if !bytes.Equal(got.Bytes(), want) {
			t.Errorf("spec %d recovered result differs from single-node:\nrouted: %s\nsingle: %s",
				i, got.Bytes(), want)
		}
	}
}

// TestChaosMembershipChurnUnderLoad joins a replica and drain-leaves
// another while a stream of jobs is in flight: nothing fails, nothing
// is lost, the joined replica picks up real traffic, and no job
// submitted after the leave lands on the departed replica.
func TestChaosMembershipChurnUnderLoad(t *testing.T) {
	runner := func(i int) serve.Runner {
		return func(ctx context.Context, req serve.JobRequest) (*sim.Result, error) {
			select { // slow enough that churn overlaps in-flight work
			case <-time.After(3 * time.Millisecond):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return okRes(req), nil
		}
	}
	h := newHarness(t, 3, runner)
	extra := newHarness(t, 1, runner)
	r := newTestRouter(t, fastRouterCfg(h.urls))

	var ids []string
	n := 2
	submitBatch := func(k int) {
		t.Helper()
		for i := 0; i < k; i++ {
			st, err := r.Submit(serve.JobRequest{Workload: "matmul2d", N: n})
			if err != nil {
				t.Fatalf("submit n=%d: %v", n, err)
			}
			n++
			ids = append(ids, st.ID)
		}
	}

	submitBatch(20)
	if err := r.AddReplica(extra.urls[0]); err != nil {
		t.Fatalf("join under load: %v", err)
	}
	submitBatch(20)
	if err := r.RemoveReplica(h.urls[0], false); err != nil { // drain-leave
		t.Fatalf("drain-leave under load: %v", err)
	}
	postLeave := len(ids)
	submitBatch(20)

	joinedServed := 0
	for i, id := range ids {
		st := waitRouterDone(t, r, id)
		if st.State != serve.JobDone {
			t.Fatalf("job %d (%s) under churn: %s (%s)", i, id, st.State, st.Error)
		}
		if st.Replica == extra.urls[0] {
			joinedServed++
		}
		if i >= postLeave && st.Replica == h.urls[0] {
			t.Fatalf("job %d submitted after the leave ran on the departed replica", i)
		}
	}
	if joinedServed == 0 {
		t.Fatal("joined replica served nothing under churn")
	}
	m := r.Snapshot()
	if m.JobsDone != int64(len(ids)) || m.JobsFailed != 0 {
		t.Fatalf("churn metrics: %d done / %d failed, want %d / 0", m.JobsDone, m.JobsFailed, len(ids))
	}
	joins, leaves, evicts := r.MembershipCounters()
	if joins != 1 || leaves != 1 || evicts != 0 {
		t.Fatalf("membership counters %d/%d/%d, want 1/1/0", joins, leaves, evicts)
	}
	members := r.Members()
	if len(members) != 3 {
		t.Fatalf("members after churn = %v", members)
	}
	for _, mem := range members {
		if mem == h.urls[0] {
			t.Fatalf("departed replica still a member: %v", members)
		}
	}
}

// TestChaosSlowReplicaHedgeRescue puts a latency-injecting proxy in
// front of the ring-primary replica and proves the hedge rescues the
// tail: the job finishes on the fast sibling in a fraction of the
// injected delay instead of waiting the slow replica out.
func TestChaosSlowReplicaHedgeRescue(t *testing.T) {
	const delay = 700 * time.Millisecond
	h := newHarness(t, 2, nil)

	target, err := url.Parse(h.urls[0])
	if err != nil {
		t.Fatal(err)
	}
	rp := httputil.NewSingleHostReverseProxy(target)
	// The losing (hedged-around) dispatch is canceled by design; keep its
	// proxy error out of the test log.
	rp.ErrorLog = log.New(io.Discard, "", 0)
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		time.Sleep(delay)
		rp.ServeHTTP(w, req)
	}))
	defer slow.Close()

	urls := []string{slow.URL, h.urls[1]}
	cfg := fastRouterCfg(urls)
	cfg.DisableHedge = false
	cfg.HedgeMinDelay = 30 * time.Millisecond
	cfg.Health.Timeout = 2 * time.Second // probes through the proxy are slow, not down
	r := newTestRouter(t, cfg)

	// Pick a spec whose ring primary is the slow proxy, so the first
	// dispatch is guaranteed to hit the injected latency.
	ring := NewRing(urls, 0)
	var req serve.JobRequest
	for n := 2; ; n++ {
		req = serve.JobRequest{Workload: "matmul2d", N: n}
		if ring.Primary(CanonicalKey(req)) == slow.URL {
			break
		}
	}

	start := time.Now()
	st, err := r.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	st = waitRouterDone(t, r, st.ID)
	elapsed := time.Since(start)
	if st.State != serve.JobDone {
		t.Fatalf("job %s (%s)", st.State, st.Error)
	}
	if st.Replica != h.urls[1] {
		t.Fatalf("job finished on %s, want the fast replica %s", st.Replica, h.urls[1])
	}
	if !st.Hedged {
		t.Fatal("job not marked hedged")
	}
	// The rescue claim: total latency is bounded by the hedge path, not
	// the injected delay the primary dispatch is still stuck behind.
	if elapsed >= delay {
		t.Fatalf("hedge did not rescue the tail: %v elapsed with %v injected delay", elapsed, delay)
	}
	m := r.Snapshot()
	if m.HedgesStarted < 1 || m.HedgeWins < 1 {
		t.Fatalf("hedge counters %d launched / %d wins, want >= 1 each", m.HedgesStarted, m.HedgeWins)
	}
	t.Logf("hedge rescued: %v elapsed vs %v injected delay", elapsed, delay)
}
