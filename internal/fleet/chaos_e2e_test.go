package fleet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"memsched/internal/serve"
)

// replicaProc is one real memschedd child process.
type replicaProc struct {
	cmd    *exec.Cmd
	url    string
	stderr *bytes.Buffer
}

// startReplicas builds the memschedd binary once and starts n real
// replica processes on ephemeral ports, parsing the stdout
// port-discovery line each one prints.
func startReplicas(t *testing.T, n int) []*replicaProc {
	t.Helper()
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH")
	}
	bin := filepath.Join(t.TempDir(), "memschedd")
	if out, err := exec.Command(goBin, "build", "-o", bin, "memsched/cmd/memschedd").CombinedOutput(); err != nil {
		t.Fatalf("go build memschedd: %v\n%s", err, out)
	}

	procs := make([]*replicaProc, 0, n)
	t.Cleanup(func() {
		for _, p := range procs {
			p.cmd.Process.Kill()
			p.cmd.Wait()
		}
	})
	for i := 0; i < n; i++ {
		cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-workers", "1", "-log-level", "warn")
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		stderr := new(bytes.Buffer)
		cmd.Stderr = stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("start replica %d: %v", i, err)
		}
		p := &replicaProc{cmd: cmd, stderr: stderr}
		procs = append(procs, p)

		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if _, rest, ok := strings.Cut(sc.Text(), "listening on "); ok {
				p.url = strings.TrimSpace(rest)
				break
			}
		}
		if p.url == "" {
			t.Fatalf("replica %d printed no listening line; stderr: %s", i, stderr.String())
		}
		go func() { // keep stdout drained so the child never blocks
			for sc.Scan() {
			}
		}()
	}
	return procs
}

// TestChaosKillReplicaE2E is the fleet's proof artifact: three real
// memschedd processes behind an in-process (race-instrumented) router,
// a batch of real-simulator jobs in flight, and a kill -9 of a replica
// that is actively running one. Every accepted job must still complete,
// every result must be byte-identical to a single-node run of the same
// spec, and re-submitted specs must be served from the result cache —
// also byte-identical, and counted.
func TestChaosKillReplicaE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills real processes")
	}
	procs := startReplicas(t, 3)
	urls := make([]string, len(procs))
	byURL := make(map[string]*replicaProc, len(procs))
	for i, p := range procs {
		urls[i] = p.url
		byURL[p.url] = p
	}

	r := newTestRouter(t, Config{
		Replicas:    urls,
		PollTimeout: 250 * time.Millisecond,
		JobTimeout:  90 * time.Second,
		BaseBackoff: 10 * time.Millisecond,
		MaxBackoff:  200 * time.Millisecond,
		Health: HealthConfig{
			Interval:      50 * time.Millisecond,
			Timeout:       2 * time.Second,
			FailThreshold: 2,
		},
	})

	// Real-simulator specs sized to run long enough (workers=1 per
	// replica queues them) that a kill lands mid-flight.
	// Sizes calibrated to ~150-600ms each on the real simulator: long
	// enough that the kill lands while jobs are in flight, short enough
	// that the whole batch drains in seconds.
	specs := []serve.JobRequest{
		{Workload: "matmul2d", N: 250, GPUs: 2},
		{Workload: "matmul2d", N: 300, GPUs: 1},
		{Workload: "cholesky", N: 60, GPUs: 2},
		{Workload: "cholesky", N: 80, GPUs: 1},
		{Workload: "matmul3d", N: 40, GPUs: 2},
		{Workload: "matmul3d", N: 50, GPUs: 1},
		{Workload: "matmul2d", N: 280, GPUs: 2},
		{Workload: "cholesky", N: 70, GPUs: 1, Seed: 2},
	}
	ids := make([]string, len(specs))
	for i, spec := range specs {
		st, err := r.Submit(spec)
		if err != nil {
			t.Fatalf("submit spec %d: %v", i, err)
		}
		ids[i] = st.ID
	}

	// Find a replica actively running a job, then kill -9 it.
	var victim string
	deadline := time.Now().Add(20 * time.Second)
	for victim == "" {
		if time.Now().After(deadline) {
			t.Fatal("no job ever reached running state")
		}
		for _, st := range r.List() {
			if st.State == serve.JobRunning && st.Replica != "" {
				victim = st.Replica
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := byURL[victim].cmd.Process.Kill(); err != nil { // SIGKILL
		t.Fatalf("kill -9 %s: %v", victim, err)
	}
	byURL[victim].cmd.Wait()
	t.Logf("killed replica %s mid-load", victim)

	// Every accepted job completes despite the kill.
	results := make([]json.RawMessage, len(specs))
	for i, id := range ids {
		st := waitRouterDone(t, r, id)
		if st.State != serve.JobDone {
			t.Fatalf("job %d (%+v) after kill: state %s (%s)", i, specs[i], st.State, st.Error)
		}
		if st.Replica == victim {
			t.Fatalf("job %d claims completion on the killed replica", i)
		}
		results[i] = st.Result
	}
	m := r.Snapshot()
	if m.JobsDone != int64(len(specs)) || m.JobsFailed != 0 {
		t.Fatalf("metrics after kill: %d done / %d failed, want %d / 0",
			m.JobsDone, m.JobsFailed, len(specs))
	}
	if m.Failovers == 0 {
		t.Error("killed an active replica but counted no failover re-dispatches")
	}

	// Byte-identical to single-node: run every spec through one
	// in-process server with the real simulator and compare compacted
	// result bytes.
	single := serve.New(serve.Config{Workers: 2})
	defer single.Drain(30 * time.Second)
	var wg sync.WaitGroup
	singleRes := make([][]byte, len(specs))
	errs := make([]error, len(specs))
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec serve.JobRequest) {
			defer wg.Done()
			st, err := single.Submit(spec)
			if err != nil {
				errs[i] = err
				return
			}
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			st, err = single.Wait(ctx, st.ID)
			if err != nil || st.State != serve.JobDone {
				errs[i] = fmt.Errorf("single-node state %s: %v", st.State, err)
				return
			}
			singleRes[i], errs[i] = json.Marshal(st.Result)
		}(i, spec)
	}
	wg.Wait()
	for i := range specs {
		if errs[i] != nil {
			t.Fatalf("single-node run %d: %v", i, errs[i])
		}
		var got bytes.Buffer
		if err := json.Compact(&got, results[i]); err != nil {
			t.Fatalf("routed result %d is not valid JSON: %v", i, err)
		}
		if !bytes.Equal(got.Bytes(), singleRes[i]) {
			t.Errorf("spec %d result differs from single-node:\nrouted: %s\nsingle: %s",
				i, got.Bytes(), singleRes[i])
		}
	}

	// Re-submitting each spec (different spelling: an explicit timeout)
	// must be served from the content-addressed cache, byte-identical,
	// and counted as hits.
	hitsBefore := r.Snapshot().Cache.Hits
	for i, spec := range specs {
		spec.TimeoutMS = 12345 // wall-time only: same canonical key
		st, err := r.Submit(spec)
		if err != nil {
			t.Fatalf("cache resubmit %d: %v", i, err)
		}
		st = waitRouterDone(t, r, st.ID)
		if !st.CacheHit {
			t.Fatalf("resubmit %d was not a cache hit (replica %s)", i, st.Replica)
		}
		if !bytes.Equal(st.Result, results[i]) {
			t.Fatalf("cached result %d not byte-identical to the original", i)
		}
	}
	if hits := r.Snapshot().Cache.Hits - hitsBefore; hits != int64(len(specs)) {
		t.Fatalf("cache counted %d hits for %d resubmits", hits, len(specs))
	}
}
