package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"memsched/internal/obs"
	"memsched/internal/serve"
	"memsched/internal/sim"
)

func TestMembershipAddRemoveSemantics(t *testing.T) {
	h := newHarness(t, 2, nil)
	r := newTestRouter(t, fastRouterCfg(h.urls))

	if err := r.AddReplica(""); err == nil {
		t.Error("empty URL accepted")
	}
	if err := r.AddReplica("not-a-url"); err == nil {
		t.Error("schemeless URL accepted")
	}
	if err := r.AddReplica(h.urls[0]); err == nil {
		t.Error("duplicate member accepted")
	}
	if err := r.RemoveReplica("http://unknown:1", false); err == nil {
		t.Error("unknown member removed")
	}

	// Join a third replica (trailing slash is normalized away).
	extra := newHarness(t, 1, nil)
	if err := r.AddReplica(extra.urls[0] + "/"); err != nil {
		t.Fatalf("AddReplica: %v", err)
	}
	if got := r.Members(); len(got) != 3 {
		t.Fatalf("members after join = %v", got)
	}
	if st := r.Ready(); st.Replicas != 3 {
		t.Fatalf("Ready().Replicas = %d, want live membership 3", st.Replicas)
	}

	// Leave one original member, then refuse to go below one.
	if err := r.RemoveReplica(h.urls[0], true); err != nil {
		t.Fatalf("RemoveReplica: %v", err)
	}
	if err := r.RemoveReplica(h.urls[1], true); err != nil {
		t.Fatalf("RemoveReplica: %v", err)
	}
	if err := r.RemoveReplica(extra.urls[0], true); err == nil || !strings.Contains(err.Error(), "last member") {
		t.Fatalf("last member removal: %v", err)
	}

	joins, leaves, evicts := r.MembershipCounters()
	if joins != 1 || leaves != 2 || evicts != 0 {
		t.Fatalf("counters = %d/%d/%d, want 1/2/0", joins, leaves, evicts)
	}
	if st := r.Ready(); st.Replicas != 1 {
		t.Fatalf("Ready().Replicas = %d after leaves, want 1", st.Replicas)
	}

	// Membership changes land in the flight recorder.
	var joinEv, leaveEv int
	for _, ev := range r.FlightDump(0).Events {
		switch ev.Kind {
		case obs.KindReplicaJoin:
			joinEv++
		case obs.KindReplicaLeave:
			leaveEv++
		}
	}
	if joinEv != 1 || leaveEv != 2 {
		t.Fatalf("flight events: %d joins, %d leaves, want 1/2", joinEv, leaveEv)
	}
}

// TestMembershipMinimalDisruption pins the router-level consistency
// property behind join/leave: rebuilding the ring for a membership
// change remaps only roughly 1/N of the keyspace, so a join never
// triggers a fleet-wide cache/ownership reshuffle.
func TestMembershipMinimalDisruption(t *testing.T) {
	urls := []string{"http://a:1", "http://b:1", "http://c:1"}
	r, err := New(fastRouterCfg(urls))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	const keys = 4000
	primary := func() map[string]string {
		out := make(map[string]string, keys)
		r.mu.Lock()
		ring := r.ring
		r.mu.Unlock()
		for i := 0; i < keys; i++ {
			k := CanonicalKey(serve.JobRequest{Workload: "matmul2d", N: 1 + i%280, Seed: int64(i)})
			out[fmt.Sprintf("k%d", i)] = ring.Primary(k)
		}
		return out
	}

	before := primary()
	if err := r.AddReplica("http://d:1"); err != nil {
		t.Fatal(err)
	}
	after := primary()
	moved := 0
	for k, rep := range before {
		if after[k] != rep {
			moved++
		}
	}
	// Ideal movement for 3→4 replicas is 1/4 of keys; allow 2x slack for
	// vnode variance but fail on anything near a full reshuffle.
	if frac := float64(moved) / keys; frac > 0.5 {
		t.Fatalf("join remapped %.0f%% of keys; want ~25%%", frac*100)
	} else if frac < 0.05 {
		t.Fatalf("join remapped only %.1f%% of keys; new member getting no share", frac*100)
	}

	// Leaving the new member must restore the previous assignment
	// exactly: only keys that had moved to d move back.
	if err := r.RemoveReplica("http://d:1", true); err != nil {
		t.Fatal(err)
	}
	restored := primary()
	for k, rep := range before {
		if restored[k] != rep {
			t.Fatalf("leave did not restore key %s: %s -> %s", k, rep, restored[k])
		}
	}
}

// TestMembershipDrainAwareLeave pins the no-redundant-work property: a
// drain-mode leave lets the replica's in-flight job finish there (no
// failover), and only then drops it from the health view.
func TestMembershipDrainAwareLeave(t *testing.T) {
	release := make(chan struct{})
	slowRunner := func(i int) serve.Runner {
		return func(ctx context.Context, req serve.JobRequest) (*sim.Result, error) {
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return okRes(req), nil
		}
	}
	h := newHarness(t, 2, slowRunner)
	r := newTestRouter(t, fastRouterCfg(h.urls))

	// Find a spec whose ring primary is replica 0 so we know who holds
	// the in-flight job.
	ring := NewRing(h.urls, 0)
	var req serve.JobRequest
	for n := 2; ; n++ {
		req = serve.JobRequest{Workload: "matmul2d", N: n}
		if ring.Primary(CanonicalKey(req)) == h.urls[0] {
			break
		}
	}
	st, err := r.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the job is running on replica 0.
	deadline := time.Now().Add(5 * time.Second)
	for {
		cur, _ := r.Job(st.ID)
		if cur.State == serve.JobRunning && cur.Replica == h.urls[0] {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started on %s: %+v", h.urls[0], cur)
		}
		time.Sleep(5 * time.Millisecond)
	}

	if err := r.RemoveReplica(h.urls[0], false); err != nil {
		t.Fatalf("drain leave: %v", err)
	}
	// The replica must still be visible (draining) while its job runs.
	if got := r.health.State(h.urls[0]); got != StateDraining {
		t.Fatalf("leaving replica state = %s, want draining", got)
	}
	close(release)
	final := waitRouterDone(t, r, st.ID)
	if final.State != serve.JobDone || final.Replica != h.urls[0] {
		t.Fatalf("job = %s on %s, want done on the leaving replica (no failover)", final.State, final.Replica)
	}
	if final.Redispatches != 0 {
		t.Fatalf("drain leave caused %d redispatches", final.Redispatches)
	}
	// After the drain completes the replica leaves the health view.
	deadline = time.Now().Add(5 * time.Second)
	for r.health.Count() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("drained replica never removed from health view")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := r.Members(); len(got) != 1 || got[0] != h.urls[1] {
		t.Fatalf("members after drain leave = %v", got)
	}
}

// TestMembershipJoinReceivesTraffic pins that a joined replica actually
// serves jobs: after a join, some canonical keys route to it without
// any restart.
func TestMembershipJoinReceivesTraffic(t *testing.T) {
	h := newHarness(t, 2, nil)
	r := newTestRouter(t, fastRouterCfg(h.urls))
	extra := newHarness(t, 1, nil)
	if err := r.AddReplica(extra.urls[0]); err != nil {
		t.Fatal(err)
	}
	served := 0
	for n := 2; n < 60; n++ {
		st, err := r.Submit(serve.JobRequest{Workload: "matmul2d", N: n})
		if err != nil {
			t.Fatalf("Submit n=%d: %v", n, err)
		}
		st = waitRouterDone(t, r, st.ID)
		if st.State != serve.JobDone {
			t.Fatalf("n=%d: %s (%s)", n, st.State, st.Error)
		}
		if st.Replica == extra.urls[0] {
			served++
		}
	}
	if served == 0 {
		t.Fatal("joined replica served no jobs")
	}
}

// TestMembershipAutoEvict pins the janitor: a replica continuously down
// past EvictAfter is removed from the membership without operator
// action, and the eviction is counted and eventful.
func TestMembershipAutoEvict(t *testing.T) {
	h := newHarness(t, 2, nil)
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	deadURL := dead.URL
	dead.Close() // connection refused from now on

	cfg := fastRouterCfg(append([]string{deadURL}, h.urls...))
	cfg.EvictAfter = 150 * time.Millisecond
	r := newTestRouter(t, cfg)

	deadline := time.Now().Add(10 * time.Second)
	for {
		if members := r.Members(); len(members) == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("dead replica never evicted; members = %v", r.Members())
		}
		time.Sleep(10 * time.Millisecond)
	}
	_, _, evicts := r.MembershipCounters()
	if evicts != 1 {
		t.Fatalf("evicts = %d, want 1", evicts)
	}
	if r.health.Count() != 2 {
		t.Fatalf("health view still has %d replicas", r.health.Count())
	}
	// Live replicas must be untouched and still serving.
	st, err := r.Submit(serve.JobRequest{Workload: "matmul2d", N: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st = waitRouterDone(t, r, st.ID); st.State != serve.JobDone {
		t.Fatalf("post-evict job %s (%s)", st.State, st.Error)
	}
	var snap Metrics
	b, _ := json.Marshal(r.Snapshot())
	if err := json.Unmarshal(b, &snap); err != nil {
		t.Fatalf("metrics round-trip: %v", err)
	}
	if snap.MembershipEvicts != 1 {
		t.Fatalf("metrics evicts = %d", snap.MembershipEvicts)
	}
}
