package fleet

import (
	"context"
	"encoding/json"
	"path/filepath"
	"testing"
	"time"

	"memsched/internal/obs"
	"memsched/internal/serve"
	"memsched/internal/sim"
)

// TestRouterJournalRecovery builds the journal a crashed router would
// leave behind — accepts with no complete, one completed job — and pins
// the restart contract: completed jobs are re-served from their
// journaled bytes, incomplete ones are re-dispatched to live replicas,
// jobs sharing a canonical key coalesce onto one driver, and the ID
// sequence continues past the journal.
func TestRouterJournalRecovery(t *testing.T) {
	h := newHarness(t, 2, nil)
	path := filepath.Join(t.TempDir(), "router.journal")

	reqA := Canonicalize(serve.JobRequest{Workload: "matmul2d", N: 3})
	reqB := Canonicalize(serve.JobRequest{Workload: "cholesky", N: 4})
	// reqC only ever appears as a completed record, so its journaled
	// bytes must survive into the cache untouched by any replay.
	reqC := Canonicalize(serve.JobRequest{Workload: "matmul2d", N: 7})
	keyA, keyB, keyC := CanonicalKey(reqA), CanonicalKey(reqB), CanonicalKey(reqC)
	doneResult := json.RawMessage(`{"makespan_ms": 42, "gflops": 7}`)

	pre, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	// rjob-000001 completed before the crash; 2, 3, 4 did not. 2 and 4
	// share a key, so recovery must drive only one of them.
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(pre.Accept("rjob-000001", keyC, 1, reqC, t0))
	must(pre.Complete("rjob-000001", serve.JobDone, doneResult, "", t0))
	must(pre.Accept("rjob-000002", keyA, 2, reqA, t0))
	must(pre.Dispatch("rjob-000002", h.urls[0]))
	must(pre.Accept("rjob-000003", keyB, 3, reqB, t0))
	must(pre.Accept("rjob-000004", keyA, 4, reqA, t0))
	must(pre.Close())

	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	cfg := fastRouterCfg(h.urls)
	cfg.Journal = j
	r := newTestRouter(t, cfg)

	if rec := r.Recovery(); rec.Complete != 1 || rec.Replayed != 3 || rec.Deduped != 1 {
		t.Fatalf("recovery stats = %+v, want {1 3 1}", rec)
	}

	// The completed job is terminal immediately, bytes verbatim.
	st, err := r.Job("rjob-000001")
	if err != nil || st.State != serve.JobDone {
		t.Fatalf("recovered complete job: %+v, %v", st, err)
	}
	if string(st.Result) != string(doneResult) {
		t.Fatalf("recovered result = %s, want journaled bytes", st.Result)
	}

	// Replayed jobs complete against the live replicas.
	for _, id := range []string{"rjob-000002", "rjob-000003", "rjob-000004"} {
		st := waitRouterDone(t, r, id)
		if st.State != serve.JobDone {
			t.Fatalf("replayed %s = %s (%s)", id, st.State, st.Error)
		}
		if len(st.Result) == 0 {
			t.Fatalf("replayed %s has no result", id)
		}
	}
	// Determinism: the two same-key jobs carry identical bytes.
	a, _ := r.Job("rjob-000002")
	b, _ := r.Job("rjob-000004")
	if string(a.Result) != string(b.Result) {
		t.Fatal("same-key replayed jobs differ")
	}

	// Replay is eventful.
	recovers := 0
	for _, ev := range r.FlightDump(0).Events {
		if ev.Kind == obs.KindRecover {
			recovers++
		}
	}
	if recovers != 3 {
		t.Fatalf("recover events = %d, want 3", recovers)
	}

	// New submissions continue the ID sequence past the journal.
	fresh, err := r.Submit(serve.JobRequest{Workload: "matmul2d", N: 9})
	if err != nil {
		t.Fatal(err)
	}
	if fresh.ID != "rjob-000005" {
		t.Fatalf("post-recovery ID = %s, want rjob-000005", fresh.ID)
	}
	waitRouterDone(t, r, fresh.ID)

	// The journaled done result seeded the cache: a same-key submission
	// is served without touching a replica.
	hit, err := r.Submit(reqC)
	if err != nil {
		t.Fatal(err)
	}
	if !hit.CacheHit || string(hit.Result) != string(doneResult) {
		t.Fatalf("journal-backed cache miss: hit=%v result=%s", hit.CacheHit, hit.Result)
	}

	// List stays in accept order.
	list := r.List()
	for i, want := range []string{"rjob-000001", "rjob-000002", "rjob-000003", "rjob-000004", "rjob-000005"} {
		if list[i].ID != want {
			t.Fatalf("list[%d] = %s, want %s", i, list[i].ID, want)
		}
	}
}

// TestRouterJournalsLifecycles pins the write-ahead discipline on the
// live path: every submission appends an accept before the client sees
// it, terminals append completes, and a second router over the same
// journal re-serves everything with zero replays.
func TestRouterJournalsLifecycles(t *testing.T) {
	h := newHarness(t, 2, nil)
	path := filepath.Join(t.TempDir(), "router.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastRouterCfg(h.urls)
	cfg.Journal = j
	r := newTestRouter(t, cfg)

	var ids []string
	var results []string
	for n := 2; n < 6; n++ {
		st, err := r.Submit(serve.JobRequest{Workload: "matmul2d", N: n})
		if err != nil {
			t.Fatal(err)
		}
		st = waitRouterDone(t, r, st.ID)
		ids = append(ids, st.ID)
		results = append(results, string(st.Result))
	}
	// A repeat spec takes the cache-hit path; it must be journaled too.
	hit, err := r.Submit(serve.JobRequest{Workload: "matmul2d", N: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !hit.CacheHit {
		t.Fatal("expected cache hit")
	}
	ids = append(ids, hit.ID)
	results = append(results, string(hit.Result))

	if m := r.Snapshot(); m.Journal == nil || m.Journal.Records == 0 || m.JournalErrors != 0 {
		t.Fatalf("journal metrics = %+v / %d errors", m.Journal, m.JournalErrors)
	}
	r.Close()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	cfg2 := fastRouterCfg(h.urls)
	cfg2.Journal = j2
	r2 := newTestRouter(t, cfg2)
	if rec := r2.Recovery(); rec.Complete != len(ids) || rec.Replayed != 0 {
		t.Fatalf("recovery = %+v, want %d complete, 0 replayed", rec, len(ids))
	}
	for i, id := range ids {
		st, err := r2.Job(id)
		if err != nil || st.State != serve.JobDone {
			t.Fatalf("job %s after restart: %+v, %v", id, st, err)
		}
		if string(st.Result) != results[i] {
			t.Fatalf("job %s result changed across restart", id)
		}
	}
}

// TestRouterCancelJournalsComplete pins that a canceled job still
// writes its terminal record, so a restart doesn't replay a job the
// client already canceled.
func TestRouterCancelJournalsComplete(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	h := newHarness(t, 1, func(i int) serve.Runner {
		return func(ctx context.Context, req serve.JobRequest) (*sim.Result, error) {
			select {
			case <-block:
				return okRes(req), nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
	})
	path := filepath.Join(t.TempDir(), "router.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastRouterCfg(h.urls)
	cfg.Journal = j
	r := newTestRouter(t, cfg)
	st, err := r.Submit(serve.JobRequest{Workload: "matmul2d", N: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	if st = waitRouterDone(t, r, st.ID); st.State != serve.JobCanceled {
		t.Fatalf("state = %s, want canceled", st.State)
	}
	r.Close()
	j.Close()

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	complete, incomplete := j2.Recovered()
	if len(complete) != 1 || len(incomplete) != 0 {
		t.Fatalf("recovered %d complete / %d incomplete, want the canceled job completed", len(complete), len(incomplete))
	}
	if complete[0].State != serve.JobCanceled {
		t.Fatalf("state = %s, want canceled", complete[0].State)
	}
}
