package fleet

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"memsched/internal/serve"
	"memsched/internal/sim"
)

func TestGenSpecsDeterministicWithRepeats(t *testing.T) {
	a := GenSpecs(20, 7, 6, 3)
	b := GenSpecs(20, 7, 6, 3)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different spec mixes")
	}
	repeats := 0
	for i := 3; i < len(a); i += 3 {
		for j := 0; j < i; j++ {
			if a[i] == a[j] {
				repeats++
				break
			}
		}
	}
	if repeats != 6 { // i = 3,6,9,12,15,18
		t.Fatalf("found %d repeated specs, want 6", repeats)
	}
}

// TestLoadgenClosedLoopAgainstRouter runs the generator end to end
// against a real router over real replica HTTP servers: zero lost jobs,
// cache hits from the repeated specs, and the router's own metrics
// folded into the report.
func TestLoadgenClosedLoopAgainstRouter(t *testing.T) {
	h := newHarness(t, 2, nil)
	r := newTestRouter(t, fastRouterCfg(h.urls))
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	// Concurrency 1 so every repeated spec's original has finished (and
	// been cached) before the repeat is submitted.
	lg := NewLoadgen(LoadgenConfig{
		Target: srv.URL, Jobs: 16, Concurrency: 1, RepeatEvery: 3, Seed: 7,
		JobWait: 15 * time.Second,
	})
	rep := lg.Run(context.Background())

	if rep.Mode != "closed" || rep.JobsPlanned != 16 {
		t.Fatalf("report header: %+v", rep)
	}
	if rep.Submitted != 16 || rep.Accepted != 16 || rep.Done != 16 {
		t.Fatalf("submitted %d accepted %d done %d, want 16/16/16 (report %+v)",
			rep.Submitted, rep.Accepted, rep.Done, rep)
	}
	if rep.Lost != 0 || rep.Failed != 0 || rep.HTTPErrors != 0 {
		t.Fatalf("lost %d failed %d http errors %d, want 0/0/0", rep.Lost, rep.Failed, rep.HTTPErrors)
	}
	if rep.CacheHits < 5 { // i = 3,6,9,12,15 repeat earlier specs
		t.Fatalf("cache hits %d, want >= 5", rep.CacheHits)
	}
	if rep.RouterMetrics == nil {
		t.Fatal("router metrics missing from the report")
	}
	if rep.RouterMetrics.Cache.Hits != rep.CacheHits {
		t.Fatalf("router counted %d cache hits, client saw %d",
			rep.RouterMetrics.Cache.Hits, rep.CacheHits)
	}
	if rep.SojournP50MS < 0 || rep.SojournP99MS < rep.SojournP50MS {
		t.Fatalf("sojourn quantiles not ordered: p50 %.2f p99 %.2f", rep.SojournP50MS, rep.SojournP99MS)
	}

	// The report must be JSON-encodable (NaN/Inf quantiles would not be).
	if _, err := json.Marshal(rep); err != nil {
		t.Fatalf("report does not marshal: %v", err)
	}
}

// TestLoadgenFollowRidesOutOutage pins the crash-tolerance contract of
// the follower: transport errors are forgiven by wall clock
// (RetryWindow), not by count, so a target that goes dark for less
// than the window — a restarting router — does not cost the client its
// job; one dark for longer does.
func TestLoadgenFollowRidesOutOutage(t *testing.T) {
	var mu sync.Mutex
	polls := 0
	failPolls := 6 // ~600ms of outage at the 100ms retry cadence
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		w.Write([]byte(`{"id":"rjob-000001","state":"queued"}`))
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		polls++
		n := polls
		mu.Unlock()
		if n <= failPolls {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"id":"rjob-000001","state":"done"}`))
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	lg := NewLoadgen(LoadgenConfig{
		Target: srv.URL, Jobs: 1, Concurrency: 1, RepeatEvery: 0,
		JobWait: 15 * time.Second, RetryWindow: 5 * time.Second,
	})
	rep := lg.Run(context.Background())
	if rep.Lost != 0 || rep.Done != 1 {
		t.Fatalf("outage shorter than the window lost the job: %+v", rep)
	}

	// An outage outlasting the window gives up: the job counts lost.
	mu.Lock()
	polls, failPolls = 0, 1<<30
	mu.Unlock()
	lg = NewLoadgen(LoadgenConfig{
		Target: srv.URL, Jobs: 1, Concurrency: 1, RepeatEvery: 0,
		JobWait: 15 * time.Second, RetryWindow: 300 * time.Millisecond,
	})
	rep = lg.Run(context.Background())
	if rep.Lost != 1 {
		t.Fatalf("endless outage not declared lost: %+v", rep)
	}
}

// TestLoadgenOpenLoopObservesShedding drives an open loop faster than a
// MaxInFlight=2 router over slow replicas can absorb: sheds must be
// counted, and every accepted job must still resolve.
func TestLoadgenOpenLoopObservesShedding(t *testing.T) {
	h := newHarness(t, 2, func(i int) serve.Runner {
		return func(ctx context.Context, req serve.JobRequest) (*sim.Result, error) {
			select {
			case <-time.After(80 * time.Millisecond):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return okRes(req), nil
		}
	})
	cfg := fastRouterCfg(h.urls)
	cfg.MaxInFlight = 2
	cfg.DisableCache = true // every submission must occupy a slot
	r := newTestRouter(t, cfg)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	lg := NewLoadgen(LoadgenConfig{
		Target: srv.URL, Jobs: 12, RatePerSec: 300, Seed: 3,
		JobWait: 15 * time.Second,
	})
	rep := lg.Run(context.Background())

	if rep.Mode != "open" {
		t.Fatalf("mode %q, want open", rep.Mode)
	}
	if rep.Shed == 0 {
		t.Fatalf("open loop at 300/s against MaxInFlight=2 shed nothing: %+v", rep)
	}
	if rep.Lost != 0 {
		t.Fatalf("%d accepted jobs lost: %+v", rep.Lost, rep)
	}
	if rep.Done == 0 || rep.Done+rep.Shed+rep.Rejected+rep.HTTPErrors != rep.Submitted {
		t.Fatalf("accounting does not close: %+v", rep)
	}
}
