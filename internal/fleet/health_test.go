package fleet

import (
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"memsched/internal/serve"
)

// fakeReadyz is a replica stub whose /readyz behavior is switchable at
// runtime between ok, draining and broken.
type fakeReadyz struct {
	mu   sync.Mutex
	mode string // "ok", "draining", "error"
}

func (f *fakeReadyz) set(mode string) {
	f.mu.Lock()
	f.mode = mode
	f.mu.Unlock()
}

func (f *fakeReadyz) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	mode := f.mode
	f.mu.Unlock()
	switch mode {
	case "draining":
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"status":"draining","draining":true,"queue_depth":2,"queue_cap":64}`))
	case "error":
		w.WriteHeader(http.StatusInternalServerError)
	default:
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"status":"ready","draining":false,"queue_depth":1,"queue_cap":64}`))
	}
}

func waitState(t *testing.T, h *Health, replica string, want ReplicaState) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if h.State(replica) == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("replica %s never reached state %s (now %s)", replica, want, h.State(replica))
}

func TestHealthDistinguishesUpDrainingDown(t *testing.T) {
	fake := &fakeReadyz{mode: "ok"}
	srv := httptest.NewServer(fake)
	defer srv.Close()

	var mu sync.Mutex
	var transitions []string
	h := NewHealth([]string{srv.URL}, HealthConfig{
		Interval: 10 * time.Millisecond, Timeout: time.Second, FailThreshold: 2,
	}, nil, func(replica string, from, to ReplicaState, reason string) {
		mu.Lock()
		transitions = append(transitions, from.String()+"->"+to.String())
		mu.Unlock()
	})
	h.Start()
	defer h.Stop()

	// Replicas start optimistically up, so wait for a probe to land (the
	// queue fields come from the readyz body) rather than for the state.
	deadline := time.Now().Add(5 * time.Second)
	for {
		v := h.Snapshot()[0]
		if v.QueueDepth == 1 && v.QueueCap == 64 && v.State == StateUp {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("readyz body never folded into view: %+v", v)
		}
		time.Sleep(5 * time.Millisecond)
	}

	fake.set("draining")
	waitState(t, h, srv.URL, StateDraining)
	if h.AllDown() {
		t.Error("a draining replica must not count as down")
	}
	if h.UpCount() != 0 {
		t.Error("a draining replica must not count as up")
	}

	fake.set("error")
	waitState(t, h, srv.URL, StateDown)
	if !h.AllDown() {
		t.Error("AllDown false with the only replica down")
	}

	fake.set("ok")
	waitState(t, h, srv.URL, StateUp)

	mu.Lock()
	defer mu.Unlock()
	want := []string{"up->draining", "draining->down", "down->up"}
	if len(transitions) != len(want) {
		t.Fatalf("transitions %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transition %d = %s, want %s", i, transitions[i], want[i])
		}
	}
}

// TestHealthReportFailureFromDispatchPath pins the fast-detection
// property: dispatch errors count toward the same threshold as probe
// failures, so a dead replica is discovered by the first jobs that trip
// over it, not by the probe cadence.
func TestHealthReportFailureFromDispatchPath(t *testing.T) {
	h := NewHealth([]string{"http://dead:1"}, HealthConfig{
		Interval: time.Hour, Timeout: time.Second, FailThreshold: 3,
	}, nil, nil)
	// No Start: only dispatch-path reports.
	for i := 0; i < 2; i++ {
		h.ReportFailure("http://dead:1", "connection refused")
		if got := h.State("http://dead:1"); got != StateUp {
			t.Fatalf("demoted after %d failures (threshold 3): %s", i+1, got)
		}
	}
	h.ReportFailure("http://dead:1", "connection refused")
	if got := h.State("http://dead:1"); got != StateDown {
		t.Fatalf("state after threshold failures = %s, want down", got)
	}
	if v := h.Snapshot()[0]; v.ConsecutiveFails != 3 || v.LastError == "" {
		t.Errorf("failure accounting not visible: %+v", v)
	}
}

func TestHealthUnknownReplicaIsDown(t *testing.T) {
	h := NewHealth([]string{"http://a"}, HealthConfig{}, nil, nil)
	if got := h.State("http://typo"); got != StateDown {
		t.Fatalf("unknown replica state = %s, want down", got)
	}
	h.ReportFailure("http://typo", "x") // must not panic or create entries
	if n := len(h.Snapshot()); n != 1 {
		t.Fatalf("ReportFailure on unknown replica grew the set to %d", n)
	}
}

// TestHealthProbeJitterBounds pins the jitter contract: every delay
// drawn falls in [Interval*(1-Jitter), Interval*(1+Jitter)], the draws
// actually spread (not all equal), and a zero-jitter config degrades to
// the fixed interval. Deterministic: a seeded rng stands in for the
// wall clock.
func TestHealthProbeJitterBounds(t *testing.T) {
	const interval = 250 * time.Millisecond
	cfg := HealthConfig{Interval: interval}
	cfg.applyDefaults()
	if cfg.Jitter != 0.2 {
		t.Fatalf("default jitter = %g, want 0.2", cfg.Jitter)
	}
	rng := rand.New(rand.NewSource(7))
	lo, hi := interval, interval
	for i := 0; i < 10000; i++ {
		d := probeDelay(interval, cfg.Jitter, rng)
		if d < time.Duration(float64(interval)*0.8) || d > time.Duration(float64(interval)*1.2) {
			t.Fatalf("draw %d: delay %v outside [%v, %v]", i, d,
				time.Duration(float64(interval)*0.8), time.Duration(float64(interval)*1.2))
		}
		if d < lo {
			lo = d
		}
		if d > hi {
			hi = d
		}
	}
	// The draws must cover most of the band, or the jitter isn't doing
	// its de-synchronization job.
	if lo > time.Duration(float64(interval)*0.81) || hi < time.Duration(float64(interval)*1.19) {
		t.Fatalf("draws span only [%v, %v]; jitter not spreading", lo, hi)
	}
	if d := probeDelay(interval, 0, rng); d != interval {
		t.Fatalf("zero jitter delay = %v, want %v", d, interval)
	}
	// Config clamping: negative disables, oversized clamps to 0.5.
	neg := HealthConfig{Interval: interval, Jitter: -1}
	neg.applyDefaults()
	if neg.Jitter != 0 {
		t.Fatalf("negative jitter = %g, want 0", neg.Jitter)
	}
	big := HealthConfig{Interval: interval, Jitter: 0.9}
	big.applyDefaults()
	if big.Jitter != 0.5 {
		t.Fatalf("oversized jitter = %g, want 0.5", big.Jitter)
	}
}

// TestHealthDynamicAddRemove pins runtime membership in the prober: an
// added replica is probed and reaches a real state, a removed one's
// loop stops and its state reads down, and a leaving replica is pinned
// at draining even while its probes succeed.
func TestHealthDynamicAddRemove(t *testing.T) {
	fake := &fakeReadyz{mode: "ok"}
	srv := httptest.NewServer(fake)
	defer srv.Close()

	h := NewHealth(nil, HealthConfig{
		Interval: 10 * time.Millisecond, Timeout: time.Second, FailThreshold: 2,
	}, nil, nil)
	h.Start()
	defer h.Stop()
	if h.Count() != 0 {
		t.Fatalf("initial count = %d", h.Count())
	}

	if !h.Add(srv.URL) {
		t.Fatal("Add refused a new replica")
	}
	if h.Add(srv.URL) {
		t.Fatal("Add accepted a duplicate")
	}
	if h.Count() != 1 {
		t.Fatalf("count after add = %d", h.Count())
	}
	// The probe loop must have started: wait for a probe to fold in.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if v := h.Snapshot(); len(v) == 1 && v[0].QueueCap == 64 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("added replica never probed")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Leaving: pinned at draining despite successful probes.
	if !h.MarkLeaving(srv.URL) {
		t.Fatal("MarkLeaving refused a member")
	}
	waitState(t, h, srv.URL, StateDraining)
	time.Sleep(50 * time.Millisecond) // several successful probes later...
	if got := h.State(srv.URL); got != StateDraining {
		t.Fatalf("leaving replica promoted back to %s", got)
	}
	if v := h.Snapshot()[0]; !v.Leaving {
		t.Fatalf("leaving flag not visible: %+v", v)
	}

	if !h.Remove(srv.URL) {
		t.Fatal("Remove refused a member")
	}
	if h.Remove(srv.URL) {
		t.Fatal("Remove accepted an unknown replica")
	}
	if got := h.State(srv.URL); got != StateDown {
		t.Fatalf("removed replica state = %s, want down", got)
	}
	if h.Count() != 0 {
		t.Fatalf("count after remove = %d", h.Count())
	}
}

// TestHealthDownSince pins auto-eviction arithmetic: DownLongerThan
// only reports replicas continuously down past the threshold, and a
// recovery resets the clock.
func TestHealthDownSince(t *testing.T) {
	h := NewHealth([]string{"http://a", "http://b"}, HealthConfig{FailThreshold: 1}, nil, nil)
	base := time.UnixMilli(0)
	now := base
	h.now = func() time.Time { return now }

	h.ReportFailure("http://a", "connection refused")
	if got := h.DownLongerThan(time.Minute); len(got) != 0 {
		t.Fatalf("just-down replica already evictable: %v", got)
	}
	now = base.Add(2 * time.Minute)
	if got := h.DownLongerThan(time.Minute); len(got) != 1 || got[0] != "http://a" {
		t.Fatalf("DownLongerThan = %v, want [http://a]", got)
	}
	// Recovery clears the down clock.
	h.reportUp("http://a", StateUp, serve.ReadyStatus{})
	if got := h.DownLongerThan(time.Minute); len(got) != 0 {
		t.Fatalf("recovered replica still evictable: %v", got)
	}
}

// TestHealthProbeParsesRealReadyz wires the prober against a real
// serve.Server handler so the two layers' /readyz contract stays
// glued: a live server probes up, a drained one probes draining (not
// down).
func TestHealthProbeParsesRealReadyz(t *testing.T) {
	s := serve.New(serve.Config{Workers: 1, Logger: nil})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	h := NewHealth([]string{srv.URL}, HealthConfig{
		Interval: 10 * time.Millisecond, Timeout: time.Second, FailThreshold: 2,
	}, nil, nil)
	h.Start()
	defer h.Stop()
	waitState(t, h, srv.URL, StateUp)

	if err := s.Drain(time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
	waitState(t, h, srv.URL, StateDraining)
}
