package fleet

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func TestCacheHitMissCounters(t *testing.T) {
	c := NewCache(4, 0)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", []byte("result-a"))
	got, ok := c.Get("a")
	if !ok || !bytes.Equal(got, []byte("result-a")) {
		t.Fatalf("Get(a) = %q, %v", got, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Bytes != 8 {
		t.Fatalf("stats %+v, want 1 hit / 1 miss / 1 entry / 8 bytes", st)
	}
}

func TestCacheEntryBoundLRUOrder(t *testing.T) {
	c := NewCache(3, 0)
	for i := 0; i < 3; i++ {
		c.Put(fmt.Sprintf("k%d", i), []byte{byte(i)})
	}
	c.Get("k0") // refresh k0: k1 is now coldest
	c.Put("k3", []byte{3})
	if _, ok := c.Get("k1"); ok {
		t.Fatal("k1 should have been evicted (coldest)")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s unexpectedly evicted", k)
		}
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
}

func TestCacheByteBound(t *testing.T) {
	c := NewCache(100, 10)
	c.Put("a", bytes.Repeat([]byte{'a'}, 6))
	c.Put("b", bytes.Repeat([]byte{'b'}, 6)) // 12 > 10: evicts a
	if _, ok := c.Get("a"); ok {
		t.Fatal("a should have been evicted by the byte bound")
	}
	if _, ok := c.Get("b"); !ok {
		t.Fatal("b missing")
	}
	if st := c.Stats(); st.Bytes != 6 {
		t.Fatalf("resident bytes = %d, want 6", st.Bytes)
	}
}

func TestCacheOversizedBodySkipped(t *testing.T) {
	c := NewCache(10, 10)
	c.Put("small", []byte("ok"))
	c.Put("huge", bytes.Repeat([]byte{'x'}, 11))
	if _, ok := c.Get("huge"); ok {
		t.Fatal("oversized body should not be cached")
	}
	if _, ok := c.Get("small"); !ok {
		t.Fatal("oversized insert evicted an unrelated entry")
	}
}

func TestCacheReplaceAccountsBytes(t *testing.T) {
	c := NewCache(10, 100)
	c.Put("k", bytes.Repeat([]byte{'a'}, 40))
	c.Put("k", bytes.Repeat([]byte{'b'}, 10))
	st := c.Stats()
	if st.Entries != 1 || st.Bytes != 10 {
		t.Fatalf("after replace: %d entries / %d bytes, want 1 / 10", st.Entries, st.Bytes)
	}
	got, _ := c.Get("k")
	if !bytes.Equal(got, bytes.Repeat([]byte{'b'}, 10)) {
		t.Fatal("replace did not update the body")
	}
}

// TestCacheConcurrentCountersExact hammers the cache with concurrent
// Get/Put from many goroutines (run under -race) and asserts the
// counters stay arithmetically exact, not just approximately sane:
// every lookup is accounted as exactly one hit or miss, every insert
// ends resident or evicted, and resident bytes equal entries times the
// fixed body size.
func TestCacheConcurrentCountersExact(t *testing.T) {
	const (
		workers       = 8
		putsPerWorker = 500
		getsPerWorker = 2000
		maxEntries    = 64
	)
	body := bytes.Repeat([]byte{'r'}, 100)
	c := NewCache(maxEntries, int64(maxEntries*len(body)))

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker puts a disjoint key range, so globally every
			// key is inserted exactly once and the replace path (which
			// would complicate the eviction arithmetic) never runs.
			for i := 0; i < putsPerWorker; i++ {
				c.Put(fmt.Sprintf("w%d-k%d", w, i), body)
			}
		}(w)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < getsPerWorker; i++ {
				// Mix of keys that may be resident, evicted, or never
				// inserted — every outcome must count once.
				c.Get(fmt.Sprintf("w%d-k%d", (w+i)%workers, i%(putsPerWorker+100)))
			}
		}(w)
	}
	wg.Wait()

	st := c.Stats()
	totalPuts := int64(workers * putsPerWorker)
	totalGets := int64(workers * getsPerWorker)
	if st.Hits+st.Misses != totalGets {
		t.Fatalf("hits %d + misses %d != gets %d", st.Hits, st.Misses, totalGets)
	}
	if int64(st.Entries)+st.Evictions != totalPuts {
		t.Fatalf("entries %d + evictions %d != puts %d", st.Entries, st.Evictions, totalPuts)
	}
	if st.Entries != maxEntries {
		t.Fatalf("entries = %d, want the cache full at %d", st.Entries, maxEntries)
	}
	if st.Bytes != int64(st.Entries*len(body)) {
		t.Fatalf("bytes = %d, want entries*%d = %d", st.Bytes, len(body), st.Entries*len(body))
	}
	// Post-storm determinism: a fresh put+get must account exactly.
	c.Put("final", body)
	if _, ok := c.Get("final"); !ok {
		t.Fatal("fresh insert not readable")
	}
	after := c.Stats()
	if after.Hits != st.Hits+1 || int64(after.Entries)+after.Evictions != totalPuts+1 {
		t.Fatalf("post-storm accounting drifted: %+v -> %+v", st, after)
	}
}
