package fleet

import (
	"bytes"
	"fmt"
	"testing"
)

func TestCacheHitMissCounters(t *testing.T) {
	c := NewCache(4, 0)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", []byte("result-a"))
	got, ok := c.Get("a")
	if !ok || !bytes.Equal(got, []byte("result-a")) {
		t.Fatalf("Get(a) = %q, %v", got, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Bytes != 8 {
		t.Fatalf("stats %+v, want 1 hit / 1 miss / 1 entry / 8 bytes", st)
	}
}

func TestCacheEntryBoundLRUOrder(t *testing.T) {
	c := NewCache(3, 0)
	for i := 0; i < 3; i++ {
		c.Put(fmt.Sprintf("k%d", i), []byte{byte(i)})
	}
	c.Get("k0") // refresh k0: k1 is now coldest
	c.Put("k3", []byte{3})
	if _, ok := c.Get("k1"); ok {
		t.Fatal("k1 should have been evicted (coldest)")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s unexpectedly evicted", k)
		}
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
}

func TestCacheByteBound(t *testing.T) {
	c := NewCache(100, 10)
	c.Put("a", bytes.Repeat([]byte{'a'}, 6))
	c.Put("b", bytes.Repeat([]byte{'b'}, 6)) // 12 > 10: evicts a
	if _, ok := c.Get("a"); ok {
		t.Fatal("a should have been evicted by the byte bound")
	}
	if _, ok := c.Get("b"); !ok {
		t.Fatal("b missing")
	}
	if st := c.Stats(); st.Bytes != 6 {
		t.Fatalf("resident bytes = %d, want 6", st.Bytes)
	}
}

func TestCacheOversizedBodySkipped(t *testing.T) {
	c := NewCache(10, 10)
	c.Put("small", []byte("ok"))
	c.Put("huge", bytes.Repeat([]byte{'x'}, 11))
	if _, ok := c.Get("huge"); ok {
		t.Fatal("oversized body should not be cached")
	}
	if _, ok := c.Get("small"); !ok {
		t.Fatal("oversized insert evicted an unrelated entry")
	}
}

func TestCacheReplaceAccountsBytes(t *testing.T) {
	c := NewCache(10, 100)
	c.Put("k", bytes.Repeat([]byte{'a'}, 40))
	c.Put("k", bytes.Repeat([]byte{'b'}, 10))
	st := c.Stats()
	if st.Entries != 1 || st.Bytes != 10 {
		t.Fatalf("after replace: %d entries / %d bytes, want 1 / 10", st.Entries, st.Bytes)
	}
	got, _ := c.Get("k")
	if !bytes.Equal(got, bytes.Repeat([]byte{'b'}, 10)) {
		t.Fatal("replace did not update the body")
	}
}
