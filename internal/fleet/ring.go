package fleet

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// Ring is a consistent-hash ring over replica names: each replica owns
// VNodes points on a 64-bit circle and a key is served by the replica
// owning the first point at or after the key's hash. Consistency is the
// property the fleet needs for its cache and for failover: adding or
// removing one replica moves only ~1/N of the key space, so warm
// replica-local state (page cache, scratch arenas) keeps paying off.
//
// Prefs returns the full preference order of a key — primary first,
// then each distinct successor around the circle — which doubles as the
// failover and hedging order: every driver walking the same ring makes
// the same decisions, with no coordination.
//
// The hash is FNV-1a, chosen because it is stable across processes and
// Go versions (unlike maphash): the router fleet can be restarted or
// scaled and keys keep mapping to the same replicas.
type Ring struct {
	replicas []string
	points   []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	idx  int // index into replicas
}

// DefaultVNodes is the virtual-node count per replica; 64 keeps the
// max/mean load ratio within a few percent for small fleets.
const DefaultVNodes = 64

// NewRing builds a ring over replicas (order-insensitive: the point set
// depends only on the names). vnodes <= 0 selects DefaultVNodes.
func NewRing(replicas []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{replicas: append([]string(nil), replicas...)}
	r.points = make([]ringPoint, 0, len(replicas)*vnodes)
	for i, name := range r.replicas {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(name + "#" + strconv.Itoa(v)), idx: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Tie-break on replica index so the order is fully deterministic
		// even in the (unlikely) event of a hash collision.
		return r.points[a].idx < r.points[b].idx
	})
	return r
}

// Replicas returns the member names in construction order.
func (r *Ring) Replicas() []string { return r.replicas }

// Prefs appends the preference order of key to dst and returns it:
// every replica exactly once, primary first. A nil dst allocates; a
// reused dst[:0] makes the call allocation-free after warmup.
func (r *Ring) Prefs(key string, dst []string) []string {
	dst = dst[:0]
	if len(r.points) == 0 {
		return dst
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := 0
	var mask uint64 // replica-index bitset; fleets are far below 64 replicas
	for i := 0; i < len(r.points) && seen < len(r.replicas); i++ {
		p := r.points[(start+i)%len(r.points)]
		if p.idx < 64 {
			if mask&(1<<uint(p.idx)) != 0 {
				continue
			}
			mask |= 1 << uint(p.idx)
		} else {
			if containsStr(dst, r.replicas[p.idx]) {
				continue
			}
		}
		dst = append(dst, r.replicas[p.idx])
		seen++
	}
	return dst
}

// Primary returns the first preference for key ("" on an empty ring).
func (r *Ring) Primary(key string) string {
	prefs := r.Prefs(key, make([]string, 0, 1))
	if len(prefs) == 0 {
		return ""
	}
	return prefs[0]
}

func containsStr(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
