package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"memsched/internal/serve"
	"memsched/internal/sim"
)

func okRes(req serve.JobRequest) *sim.Result {
	return &sim.Result{
		SchedulerName: req.Strategy,
		InstanceName:  req.Workload,
		NumGPUs:       req.GPUs,
		Makespan:      time.Millisecond,
		GFlops:        1,
		Events:        10,
	}
}

// harness is an in-process fleet: n real serve.Servers behind httptest
// listeners, so router tests exercise the real HTTP contract end to
// end under the race detector.
type harness struct {
	urls    []string
	servers []*serve.Server
	https   []*httptest.Server
}

func newHarness(t *testing.T, n int, runnerFor func(i int) serve.Runner) *harness {
	t.Helper()
	h := &harness{}
	for i := 0; i < n; i++ {
		cfg := serve.Config{Workers: 2, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond}
		if runnerFor != nil {
			cfg.Runner = runnerFor(i)
		} else {
			cfg.Runner = func(ctx context.Context, req serve.JobRequest) (*sim.Result, error) {
				return okRes(req), nil
			}
		}
		s := serve.New(cfg)
		ts := httptest.NewServer(s.Handler())
		h.servers = append(h.servers, s)
		h.https = append(h.https, ts)
		h.urls = append(h.urls, ts.URL)
	}
	t.Cleanup(func() {
		for _, ts := range h.https {
			ts.Close()
		}
		for _, s := range h.servers {
			s.Drain(5 * time.Second)
		}
	})
	return h
}

// fastRouterCfg keeps probe/backoff/poll timings test-sized. Hedging is
// off by default; tests that want it opt in.
func fastRouterCfg(urls []string) Config {
	return Config{
		Replicas:     urls,
		PollTimeout:  150 * time.Millisecond,
		BaseBackoff:  5 * time.Millisecond,
		MaxBackoff:   50 * time.Millisecond,
		JobTimeout:   20 * time.Second,
		DisableHedge: true,
		Health: HealthConfig{
			Interval:      20 * time.Millisecond,
			Timeout:       time.Second,
			FailThreshold: 2,
		},
	}
}

func newTestRouter(t *testing.T, cfg Config) *Router {
	t.Helper()
	r, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	r.Start()
	t.Cleanup(r.Close)
	return r
}

func waitRouterDone(t *testing.T, r *Router, id string) JobStatus {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	st, err := r.Wait(ctx, id)
	if err != nil {
		t.Fatalf("Wait(%s): %v (state %s)", id, err, st.State)
	}
	return st
}

func TestRouterRoutesToRingPrimary(t *testing.T) {
	h := newHarness(t, 3, nil)
	r := newTestRouter(t, fastRouterCfg(h.urls))
	ring := NewRing(h.urls, 0)
	for i := 0; i < 5; i++ {
		req := serve.JobRequest{Workload: "matmul2d", N: 2 + i}
		st, err := r.Submit(req)
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		st = waitRouterDone(t, r, st.ID)
		if st.State != serve.JobDone {
			t.Fatalf("job %d state %s (%s)", i, st.State, st.Error)
		}
		if len(st.Result) == 0 {
			t.Fatalf("job %d has no result bytes", i)
		}
		if want := ring.Primary(CanonicalKey(req)); st.Replica != want {
			t.Errorf("job %d ran on %s, ring primary is %s", i, st.Replica, want)
		}
	}
	m := r.Snapshot()
	if m.JobsDone != 5 || m.Failovers != 0 {
		t.Errorf("metrics: %d done / %d failovers, want 5 / 0", m.JobsDone, m.Failovers)
	}
}

// TestRouterTracePropagation pins the router → replica trace contract:
// the replica-side job carries the router's trace ID.
func TestRouterTracePropagation(t *testing.T) {
	h := newHarness(t, 2, nil)
	r := newTestRouter(t, fastRouterCfg(h.urls))
	st, err := r.SubmitTraced(serve.JobRequest{Workload: "matmul2d", N: 2}, 424242)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if st.Trace != 424242 {
		t.Fatalf("router trace %d, want adopted 424242", st.Trace)
	}
	st = waitRouterDone(t, r, st.ID)
	var remote serve.JobStatus
	var found bool
	for _, s := range h.servers {
		for _, js := range s.List() {
			if js.ID == st.ReplicaJob {
				remote, found = js, true
			}
		}
	}
	if !found {
		t.Fatalf("replica job %s not found on any replica", st.ReplicaJob)
	}
	if remote.Trace != 424242 {
		t.Errorf("replica job trace %d, want propagated 424242", remote.Trace)
	}
}

// TestRouterCacheHit pins the content-addressed cache: a repeated spec
// (under any equivalent spelling) is served from the cache with bytes
// identical to the first run's, without touching a replica.
func TestRouterCacheHit(t *testing.T) {
	var runs atomic.Int64
	h := newHarness(t, 2, func(i int) serve.Runner {
		return func(ctx context.Context, req serve.JobRequest) (*sim.Result, error) {
			runs.Add(1)
			return okRes(req), nil
		}
	})
	r := newTestRouter(t, fastRouterCfg(h.urls))

	first, err := r.Submit(serve.JobRequest{Workload: "matmul2d", N: 3})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	first = waitRouterDone(t, r, first.ID)
	if first.CacheHit {
		t.Fatal("first submission cannot be a cache hit")
	}

	// Different spelling, same canonical job.
	second, err := r.Submit(serve.JobRequest{Workload: "matmul2d", N: 3, Strategy: "DARTS+LUF", Seed: 1, TimeoutMS: 12345})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if !second.CacheHit || second.State != serve.JobDone {
		t.Fatalf("second submission: cacheHit=%v state=%s, want instant hit", second.CacheHit, second.State)
	}
	if !bytes.Equal(first.Result, second.Result) {
		t.Fatalf("cache returned different bytes:\n first: %s\nsecond: %s", first.Result, second.Result)
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("simulator ran %d times, want 1", got)
	}
	cs := r.CacheStats()
	if cs.Hits != 1 || cs.Entries != 1 {
		t.Errorf("cache stats %+v, want 1 hit / 1 entry", cs)
	}
	hitEvents := 0
	for _, ev := range r.FlightDump(0).Events {
		if ev.Kind.String() == "cache-hit" {
			hitEvents++
		}
	}
	if hitEvents != 1 {
		t.Errorf("flight recorder has %d cache-hit events, want 1", hitEvents)
	}
}

// TestRouterResultMatchesSingleNode pins the determinism contract the
// whole fleet design rests on: a routed result is byte-identical (after
// JSON compaction) to a single-node run of the same spec through a real
// simulator.
func TestRouterResultMatchesSingleNode(t *testing.T) {
	h := newHarness(t, 3, func(i int) serve.Runner { return nil }) // nil → real simulator
	r := newTestRouter(t, fastRouterCfg(h.urls))
	req := serve.JobRequest{Workload: "matmul2d", N: 3, GPUs: 2}

	st, err := r.Submit(req)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st = waitRouterDone(t, r, st.ID)
	if st.State != serve.JobDone {
		t.Fatalf("routed job state %s (%s)", st.State, st.Error)
	}

	single := serve.New(serve.Config{Workers: 1})
	defer single.Drain(5 * time.Second)
	sst, err := single.Submit(req)
	if err != nil {
		t.Fatalf("single-node Submit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	sst, err = single.Wait(ctx, sst.ID)
	if err != nil || sst.State != serve.JobDone {
		t.Fatalf("single-node job: %v state %s", err, sst.State)
	}
	want, err := json.Marshal(sst.Result)
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := json.Compact(&got, st.Result); err != nil {
		t.Fatalf("routed result is not valid JSON: %v", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("routed result differs from single-node:\nrouted: %s\nsingle: %s", got.Bytes(), want)
	}
}

// TestRouterFailover kills the replica holding a running job and
// asserts the router re-dispatches it and still completes it.
func TestRouterFailover(t *testing.T) {
	var primaryIdx atomic.Int64
	primaryIdx.Store(-1)
	var gateOnce sync.Once
	gate := make(chan struct{})
	release := func() { gateOnce.Do(func() { close(gate) }) }
	t.Cleanup(release)

	h := newHarness(t, 3, func(i int) serve.Runner {
		return func(ctx context.Context, req serve.JobRequest) (*sim.Result, error) {
			if int64(i) == primaryIdx.Load() {
				select {
				case <-gate:
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			}
			return okRes(req), nil
		}
	})
	req := serve.JobRequest{Workload: "matmul2d", N: 4}
	prefs := NewRing(h.urls, 0).Prefs(CanonicalKey(req), nil)
	for i, u := range h.urls {
		if u == prefs[0] {
			primaryIdx.Store(int64(i))
		}
	}

	r := newTestRouter(t, fastRouterCfg(h.urls))
	st, err := r.Submit(req)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	// Wait for the primary to accept the job, then kill it mid-run.
	deadline := time.Now().Add(5 * time.Second)
	for {
		cur, _ := r.Job(st.ID)
		if cur.Replica == prefs[0] && cur.ReplicaJob != "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never accepted by primary %s: %+v", prefs[0], cur)
		}
		time.Sleep(5 * time.Millisecond)
	}
	killed := int(primaryIdx.Load())
	h.https[killed].CloseClientConnections()
	h.https[killed].Close()
	primaryIdx.Store(-1) // survivors run unblocked

	final := waitRouterDone(t, r, st.ID)
	if final.State != serve.JobDone {
		t.Fatalf("job state after failover: %s (%s)", final.State, final.Error)
	}
	if final.Replica == prefs[0] {
		t.Fatalf("job reportedly finished on the killed replica %s", final.Replica)
	}
	if final.Replica != prefs[1] {
		t.Errorf("failover went to %s, ring says next preference is %s", final.Replica, prefs[1])
	}
	if final.Redispatches < 1 {
		t.Errorf("redispatches = %d, want >= 1", final.Redispatches)
	}
	m := r.Snapshot()
	if m.Failovers < 1 {
		t.Errorf("failover counter = %d, want >= 1", m.Failovers)
	}
	foEvents := 0
	for _, ev := range r.FlightDump(0).Events {
		if ev.Kind.String() == "failover" {
			foEvents++
		}
	}
	if foEvents < 1 {
		t.Error("no failover event in the flight recorder")
	}
	release()
}

// TestRouterHedgedRequest pins straggler hedging: a job stuck on its
// primary past the hedge delay gets a second dispatch, the fast replica
// wins, and the loser is canceled on its replica.
func TestRouterHedgedRequest(t *testing.T) {
	var primaryIdx atomic.Int64
	primaryIdx.Store(-1)
	var gateOnce sync.Once
	gate := make(chan struct{})
	release := func() { gateOnce.Do(func() { close(gate) }) }
	t.Cleanup(release)

	h := newHarness(t, 2, func(i int) serve.Runner {
		return func(ctx context.Context, req serve.JobRequest) (*sim.Result, error) {
			if int64(i) == primaryIdx.Load() {
				select {
				case <-gate:
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			}
			return okRes(req), nil
		}
	})
	req := serve.JobRequest{Workload: "matmul2d", N: 5}
	prefs := NewRing(h.urls, 0).Prefs(CanonicalKey(req), nil)
	for i, u := range h.urls {
		if u == prefs[0] {
			primaryIdx.Store(int64(i))
		}
	}

	cfg := fastRouterCfg(h.urls)
	cfg.DisableHedge = false
	cfg.HedgeMinDelay = 50 * time.Millisecond
	r := newTestRouter(t, cfg)

	st, err := r.Submit(req)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	final := waitRouterDone(t, r, st.ID)
	if final.State != serve.JobDone {
		t.Fatalf("hedged job state %s (%s)", final.State, final.Error)
	}
	if !final.Hedged {
		t.Error("job not marked hedged")
	}
	if final.Replica != prefs[1] {
		t.Errorf("winner %s, want hedge target %s", final.Replica, prefs[1])
	}
	m := r.Snapshot()
	if m.HedgesStarted != 1 || m.HedgeWins != 1 {
		t.Errorf("hedge counters: started %d wins %d, want 1 / 1", m.HedgesStarted, m.HedgeWins)
	}

	// The losing dispatch must be canceled on its replica.
	primary := h.servers[int(primaryIdx.Load())]
	deadline := time.Now().Add(5 * time.Second)
	for {
		jobs := primary.List()
		if len(jobs) == 1 && jobs[0].State == serve.JobCanceled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("loser dispatch never canceled on primary: %+v", jobs)
		}
		time.Sleep(10 * time.Millisecond)
	}
	release()
}

// TestRouterShedsAtMaxInFlight pins graceful degradation: beyond the
// in-flight bound the router sheds explicitly with 429 + Retry-After.
func TestRouterShedsAtMaxInFlight(t *testing.T) {
	var gateOnce sync.Once
	gate := make(chan struct{})
	release := func() { gateOnce.Do(func() { close(gate) }) }
	t.Cleanup(release)
	h := newHarness(t, 2, func(i int) serve.Runner {
		return func(ctx context.Context, req serve.JobRequest) (*sim.Result, error) {
			select {
			case <-gate:
			case <-ctx.Done():
			}
			return okRes(req), nil
		}
	})
	cfg := fastRouterCfg(h.urls)
	cfg.MaxInFlight = 1
	r := newTestRouter(t, cfg)

	first, err := r.Submit(serve.JobRequest{Workload: "matmul2d", N: 2})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	_, err = r.Submit(serve.JobRequest{Workload: "matmul2d", N: 3})
	var rej *serve.RejectError
	if !errors.As(err, &rej) || rej.Status != 429 {
		t.Fatalf("second submit: %v, want 429 RejectError", err)
	}
	if rej.RetryAfter <= 0 {
		t.Error("shed rejection carries no Retry-After hint")
	}
	if m := r.Snapshot(); m.RejectedShed != 1 {
		t.Errorf("shed counter = %d, want 1", m.RejectedShed)
	}
	shedEvents := 0
	for _, ev := range r.FlightDump(0).Events {
		if ev.Kind.String() == "shed" {
			shedEvents++
		}
	}
	if shedEvents != 1 {
		t.Errorf("flight recorder has %d shed events, want 1", shedEvents)
	}
	release()
	waitRouterDone(t, r, first.ID)
}

// TestRouterAllReplicasDown pins the degradation floor: fresh work is
// refused with an explicit 503 once every replica is down, but cached
// results keep being served.
func TestRouterAllReplicasDown(t *testing.T) {
	h := newHarness(t, 2, nil)
	cfg := fastRouterCfg(h.urls)
	r := newTestRouter(t, cfg)

	// Seed the cache while the fleet is alive.
	st, err := r.Submit(serve.JobRequest{Workload: "matmul2d", N: 2})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st = waitRouterDone(t, r, st.ID)

	for _, ts := range h.https {
		ts.CloseClientConnections()
		ts.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for !r.health.AllDown() {
		if time.Now().After(deadline) {
			t.Fatal("prober never marked both replicas down")
		}
		time.Sleep(10 * time.Millisecond)
	}

	_, err = r.Submit(serve.JobRequest{Workload: "cholesky", N: 4})
	var rej *serve.RejectError
	if !errors.As(err, &rej) || rej.Status != 503 {
		t.Fatalf("submit with fleet down: %v, want 503 RejectError", err)
	}
	if m := r.Snapshot(); m.RejectedNoReplicas != 1 {
		t.Errorf("no-replicas counter = %d, want 1", m.RejectedNoReplicas)
	}

	// The cache still answers the spec that ran before the outage.
	hit, err := r.Submit(serve.JobRequest{Workload: "matmul2d", N: 2})
	if err != nil {
		t.Fatalf("cached submit with fleet down: %v", err)
	}
	if !hit.CacheHit || !bytes.Equal(hit.Result, st.Result) {
		t.Fatalf("cache did not serve through the outage: hit=%v", hit.CacheHit)
	}
}

// TestRouterBreakerOpensOnDispatchFailures pins the per-replica
// breaker: repeated dispatch failures open it and /readyz reports it.
func TestRouterBreakerOpensOnDispatchFailures(t *testing.T) {
	h := newHarness(t, 2, nil)
	cfg := fastRouterCfg(h.urls)
	cfg.BreakerThreshold = 2
	cfg.BreakerCooldown = time.Hour
	cfg.MaxAttempts = 6
	// Keep the prober quiet so the dispatch path does the discovery.
	cfg.Health.FailThreshold = 1000
	cfg.Health.Interval = time.Hour
	r := newTestRouter(t, cfg)

	req := serve.JobRequest{Workload: "matmul2d", N: 6}
	prefs := NewRing(h.urls, 0).Prefs(CanonicalKey(req), nil)
	for i, u := range h.urls {
		if u == prefs[0] {
			h.https[i].CloseClientConnections()
			h.https[i].Close()
		}
	}

	st, err := r.Submit(req)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	final := waitRouterDone(t, r, st.ID)
	if final.State != serve.JobDone {
		t.Fatalf("job state %s (%s), want done via surviving replica", final.State, final.Error)
	}
	if final.Replica != prefs[1] {
		t.Errorf("job ran on %s, want survivor %s", final.Replica, prefs[1])
	}

	// Hammer the dead primary past the threshold with fresh specs that
	// hash to it... instead, just assert the strikes it already took
	// opened nothing yet, then submit the same spec again: cache hit,
	// no dispatch. The breaker property is cheaper to pin directly.
	r.noteBreakerFailure(prefs[0])
	r.noteBreakerFailure(prefs[0])
	ready := r.Ready()
	if len(ready.BreakersOpen) != 1 || ready.BreakersOpen[0] != prefs[0] {
		t.Fatalf("readyz breakers_open = %v, want [%s]", ready.BreakersOpen, prefs[0])
	}
	if m := r.Snapshot(); m.BreakerTrips < 1 {
		t.Errorf("breaker trips = %d, want >= 1", m.BreakerTrips)
	}
}

func TestRouterRejectsInvalidLocally(t *testing.T) {
	h := newHarness(t, 1, nil)
	r := newTestRouter(t, fastRouterCfg(h.urls))
	_, err := r.Submit(serve.JobRequest{Workload: "nope", N: 2})
	var rej *serve.RejectError
	if !errors.As(err, &rej) || rej.Status != 400 {
		t.Fatalf("invalid submit: %v, want 400 RejectError", err)
	}
	m := r.Snapshot()
	if m.RejectedInvalid != 1 || m.Dispatches != 0 {
		t.Errorf("invalid job reached a replica: %+v", m)
	}
}

func TestRouterDrainRejectsNewJobs(t *testing.T) {
	h := newHarness(t, 1, nil)
	r := newTestRouter(t, fastRouterCfg(h.urls))
	st, err := r.Submit(serve.JobRequest{Workload: "matmul2d", N: 2})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitRouterDone(t, r, st.ID)
	if err := r.Drain(5 * time.Second); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	_, err = r.Submit(serve.JobRequest{Workload: "matmul2d", N: 3})
	var rej *serve.RejectError
	if !errors.As(err, &rej) || rej.Status != 503 {
		t.Fatalf("submit after drain: %v, want 503", err)
	}
	ready := r.Ready()
	if !ready.Draining || ready.Status != "draining" {
		t.Errorf("Ready() after drain: %+v", ready)
	}
}

func TestRouterCancelPropagatesToReplica(t *testing.T) {
	var gateOnce sync.Once
	gate := make(chan struct{})
	release := func() { gateOnce.Do(func() { close(gate) }) }
	t.Cleanup(release)
	h := newHarness(t, 1, func(i int) serve.Runner {
		return func(ctx context.Context, req serve.JobRequest) (*sim.Result, error) {
			select {
			case <-gate:
				return okRes(req), nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
	})
	r := newTestRouter(t, fastRouterCfg(h.urls))
	st, err := r.Submit(serve.JobRequest{Workload: "matmul2d", N: 2})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		cur, _ := r.Job(st.ID)
		if cur.ReplicaJob != "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never accepted by the replica")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := r.Cancel(st.ID); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	final := waitRouterDone(t, r, st.ID)
	if final.State != serve.JobCanceled {
		t.Fatalf("state after cancel: %s", final.State)
	}
	// The replica-side job is canceled too (by the router's DELETE).
	deadline = time.Now().Add(5 * time.Second)
	for {
		jobs := h.servers[0].List()
		if len(jobs) == 1 && jobs[0].State == serve.JobCanceled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica job never canceled: %+v", jobs)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestRouterListOrder(t *testing.T) {
	h := newHarness(t, 1, nil)
	r := newTestRouter(t, fastRouterCfg(h.urls))
	var ids []string
	for i := 0; i < 3; i++ {
		st, err := r.Submit(serve.JobRequest{Workload: "matmul2d", N: 2 + i})
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		ids = append(ids, st.ID)
	}
	list := r.List()
	if len(list) != 3 {
		t.Fatalf("List has %d jobs, want 3", len(list))
	}
	for i, st := range list {
		if st.ID != ids[i] {
			t.Fatalf("List order: got %s at %d, want %s", st.ID, i, ids[i])
		}
	}
	for _, id := range ids {
		waitRouterDone(t, r, id)
	}
}
