package fleet

import (
	"container/list"
	"sync"
)

// Cache is the content-addressed result cache: canonical job key →
// the verbatim result bytes a replica produced for that spec. Because
// runs are bit-deterministic, a hit is indistinguishable from a fresh
// simulation — same bytes, no work — so the cache converts the
// determinism invariant directly into fleet throughput.
//
// It is a plain LRU bounded both by entry count and by total payload
// bytes; inserting an oversized value evicts from the cold end until it
// fits. All methods are safe for concurrent use.
type Cache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	ll         *list.List // front = most recently used
	m          map[string]*list.Element

	bytes     int64
	hits      int64
	misses    int64
	evictions int64
}

type cacheEntry struct {
	key  string
	body []byte
}

// Default cache bounds: 4096 results / 64 MiB of payload.
const (
	DefaultCacheEntries = 4096
	DefaultCacheBytes   = 64 << 20
)

// NewCache builds a cache bounded by maxEntries results and maxBytes
// total payload (non-positive values select the defaults).
func NewCache(maxEntries int, maxBytes int64) *Cache {
	if maxEntries <= 0 {
		maxEntries = DefaultCacheEntries
	}
	if maxBytes <= 0 {
		maxBytes = DefaultCacheBytes
	}
	return &Cache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		m:          make(map[string]*list.Element),
	}
}

// Get returns the cached result bytes for key and whether they exist,
// counting the hit or miss. The returned slice is shared — callers must
// not mutate it.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// Put stores the result bytes for key, evicting least-recently-used
// entries until both bounds hold. A body larger than the byte bound on
// its own is not cached at all. Re-putting an existing key refreshes
// its recency and replaces its body.
func (c *Cache) Put(key string, body []byte) {
	if int64(len(body)) > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		ent := el.Value.(*cacheEntry)
		c.bytes += int64(len(body)) - int64(len(ent.body))
		ent.body = body
		c.ll.MoveToFront(el)
	} else {
		c.m[key] = c.ll.PushFront(&cacheEntry{key: key, body: body})
		c.bytes += int64(len(body))
	}
	for (c.ll.Len() > c.maxEntries || c.bytes > c.maxBytes) && c.ll.Len() > 1 {
		c.evictOldest()
	}
	// A single entry can still exceed maxBytes only transiently via the
	// replace path; the guard above keeps new inserts bounded.
	if c.bytes > c.maxBytes && c.ll.Len() == 1 {
		c.evictOldest()
	}
}

// evictOldest removes the cold-end entry. Caller holds c.mu.
func (c *Cache) evictOldest() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	ent := el.Value.(*cacheEntry)
	c.ll.Remove(el)
	delete(c.m, ent.key)
	c.bytes -= int64(len(ent.body))
	c.evictions++
}

// CacheStats is the observable state of the cache.
type CacheStats struct {
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   c.ll.Len(),
		Bytes:     c.bytes,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}
