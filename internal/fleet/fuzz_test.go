package fleet

import (
	"testing"

	"memsched/internal/serve"
)

// FuzzCanonicalJobKey pins the canonicalization under arbitrary specs,
// in the same style as fault.FuzzParseSpec: it must never panic,
// Canonicalize must be a fixed point, the key must be invariant under
// canonicalization, and TimeoutMS must never leak into the key.
func FuzzCanonicalJobKey(f *testing.F) {
	type seed struct {
		workload, strategy, faults string
		n, gpus                    int
		keep                       float64
		mem, seedv, timeout        int64
		cost, critpath             bool
	}
	for _, s := range []seed{
		{workload: "matmul2d", n: 4},
		{workload: "cholesky", strategy: "HEFT", n: 8, gpus: 4, seedv: 9},
		{workload: "sparse2d", n: 6, keep: 0.25, faults: "drop=1@5ms,transient=0.05"},
		{workload: "matmul3d", n: 3, faults: "none", timeout: 5000},
		{workload: "", strategy: "", n: 0},
		{workload: "w|s=x", strategy: "y%7C", n: 1, faults: "not a spec"},
		{workload: "a%b", strategy: "c|d", n: -5, gpus: 1000, keep: -1.5, mem: -3},
		{workload: "\x00\xff", strategy: "||||", n: 1, faults: "drop=@"},
	} {
		f.Add(s.workload, s.strategy, s.faults, s.n, s.gpus, s.keep, s.mem, s.seedv, s.timeout, s.cost, s.critpath)
	}
	f.Fuzz(func(t *testing.T, workload, strategy, faults string, n, gpus int,
		keep float64, mem, seedv, timeout int64, cost, critpath bool) {
		req := serve.JobRequest{
			Workload: workload, Strategy: strategy, Faults: faults,
			N: n, GPUs: gpus, Keep: keep, MemMB: mem, Seed: seedv,
			TimeoutMS: timeout, Cost: cost, CritPath: critpath,
		}
		once := Canonicalize(req) // must not panic, whatever the input
		twice := Canonicalize(once)
		if once != twice {
			t.Fatalf("Canonicalize not a fixed point:\n once: %+v\ntwice: %+v", once, twice)
		}
		k := CanonicalKey(req)
		if k == "" {
			t.Fatalf("empty key for %+v", req)
		}
		if got := CanonicalKey(once); got != k {
			t.Fatalf("equal specs disagree on key: %q vs %q", k, got)
		}
		// TimeoutMS bounds wall time, not the simulated result: two specs
		// differing only there must share a key (and thus a cache entry).
		req2 := req
		req2.TimeoutMS = timeout + 1
		if got := CanonicalKey(req2); got != k {
			t.Fatalf("TimeoutMS leaked into the key: %q vs %q", k, got)
		}
	})
}
