package fleet

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"memsched/internal/serve"
)

// ReplicaState is the prober's verdict on one replica.
type ReplicaState int

// Replica states. The three-way split is what the /readyz JSON body
// buys the fleet: a draining replica is alive (its in-flight jobs will
// finish; don't send new ones, don't fail its jobs over), a down one is
// gone (re-dispatch everything it held).
const (
	// StateUp: serving and accepting jobs.
	StateUp ReplicaState = iota
	// StateDraining: alive but refusing new jobs; in-flight work will
	// complete.
	StateDraining
	// StateDown: unreachable past the failure threshold.
	StateDown
)

// String names the state for logs and the /replicas endpoint.
func (s ReplicaState) String() string {
	switch s {
	case StateUp:
		return "up"
	case StateDraining:
		return "draining"
	case StateDown:
		return "down"
	}
	return "unknown"
}

// HealthConfig tunes the prober. Zero values select the defaults.
type HealthConfig struct {
	// Interval between probes of one replica (default 250ms).
	Interval time.Duration
	// Timeout of one probe request (default 1s).
	Timeout time.Duration
	// FailThreshold is the number of consecutive probe failures that
	// marks a replica down (default 3). Dispatch-path connection errors
	// reported via ReportFailure count toward the same threshold, so a
	// kill -9 is usually detected by the first job that trips over it
	// rather than by the probe cadence.
	FailThreshold int
}

func (c *HealthConfig) applyDefaults() {
	if c.Interval <= 0 {
		c.Interval = 250 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = time.Second
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
}

// ReplicaView is the observable health of one replica.
type ReplicaView struct {
	Replica string       `json:"replica"`
	State   ReplicaState `json:"-"`
	// StateName is State rendered for JSON consumers.
	StateName string `json:"state"`
	// ConsecutiveFails counts probe/dispatch failures since the last
	// success.
	ConsecutiveFails int `json:"consecutive_fails,omitempty"`
	// LastError is the most recent probe failure, empty while up.
	LastError string `json:"last_error,omitempty"`
	// QueueDepth/QueueCap mirror the replica's last /readyz body.
	QueueDepth int `json:"queue_depth"`
	QueueCap   int `json:"queue_cap"`
}

// Health watches a fixed replica set with periodic /readyz probes.
// Replicas start optimistically up; the prober demotes them. Start
// launches one goroutine per replica, Stop joins them.
type Health struct {
	cfg    HealthConfig
	client *http.Client
	// onChange fires outside the state lock on every transition (flight
	// events, log lines, failover nudges hang off it).
	onChange func(replica string, from, to ReplicaState, reason string)

	mu       sync.Mutex
	replicas map[string]*replicaHealth

	stop chan struct{}
	wg   sync.WaitGroup
}

type replicaHealth struct {
	state      ReplicaState
	fails      int
	lastErr    string
	queueDepth int
	queueCap   int
}

// NewHealth builds the prober over the replica base URLs. client may be
// nil (a timeout-bounded default is built); onChange may be nil.
func NewHealth(replicas []string, cfg HealthConfig, client *http.Client,
	onChange func(replica string, from, to ReplicaState, reason string)) *Health {
	cfg.applyDefaults()
	if client == nil {
		client = &http.Client{Timeout: cfg.Timeout}
	}
	h := &Health{
		cfg:      cfg,
		client:   client,
		onChange: onChange,
		replicas: make(map[string]*replicaHealth, len(replicas)),
		stop:     make(chan struct{}),
	}
	for _, r := range replicas {
		h.replicas[r] = &replicaHealth{state: StateUp}
	}
	return h
}

// Start launches the probe loops.
func (h *Health) Start() {
	h.mu.Lock()
	names := make([]string, 0, len(h.replicas))
	for r := range h.replicas {
		names = append(names, r)
	}
	h.mu.Unlock()
	for _, r := range names {
		h.wg.Add(1)
		go func(replica string) {
			defer h.wg.Done()
			t := time.NewTicker(h.cfg.Interval)
			defer t.Stop()
			for {
				h.probe(replica)
				select {
				case <-h.stop:
					return
				case <-t.C:
				}
			}
		}(r)
	}
}

// Stop halts the probe loops and waits for them.
func (h *Health) Stop() {
	close(h.stop)
	h.wg.Wait()
}

// probe performs one /readyz check of replica and folds the outcome in.
func (h *Health) probe(replica string) {
	ctx, cancel := context.WithTimeout(context.Background(), h.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, replica+"/readyz", nil)
	if err != nil {
		h.ReportFailure(replica, "bad probe url: "+err.Error())
		return
	}
	resp, err := h.client.Do(req)
	if err != nil {
		h.ReportFailure(replica, err.Error())
		return
	}
	defer resp.Body.Close()
	// Probe bodies are bounded so a misbehaving endpoint can't balloon
	// the prober.
	var ready serve.ReadyStatus
	decErr := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&ready)
	switch {
	case resp.StatusCode == http.StatusOK:
		h.reportUp(replica, StateUp, ready)
	case resp.StatusCode == http.StatusServiceUnavailable && decErr == nil && ready.Draining:
		// Alive and telling us so: the JSON drain marker is what keeps a
		// draining replica from being declared dead and its in-flight
		// jobs from being redundantly re-dispatched.
		h.reportUp(replica, StateDraining, ready)
	default:
		h.ReportFailure(replica, "readyz status "+resp.Status)
	}
}

// reportUp records a successful probe with the observed target state.
func (h *Health) reportUp(replica string, to ReplicaState, ready serve.ReadyStatus) {
	h.mu.Lock()
	st, ok := h.replicas[replica]
	if !ok {
		h.mu.Unlock()
		return
	}
	from := st.state
	st.state = to
	st.fails = 0
	st.lastErr = ""
	st.queueDepth = ready.QueueDepth
	st.queueCap = ready.QueueCap
	h.mu.Unlock()
	if from != to && h.onChange != nil {
		h.onChange(replica, from, to, "probe ok")
	}
}

// ReportFailure counts one failed probe or dispatch-path connection
// error; crossing the threshold marks the replica down. Dispatchers
// call this on transport errors so detection is as fast as the first
// failing request.
func (h *Health) ReportFailure(replica, reason string) {
	h.mu.Lock()
	st, ok := h.replicas[replica]
	if !ok {
		h.mu.Unlock()
		return
	}
	st.fails++
	st.lastErr = reason
	from := st.state
	demote := st.fails >= h.cfg.FailThreshold && from != StateDown
	if demote {
		st.state = StateDown
	}
	h.mu.Unlock()
	if demote && h.onChange != nil {
		h.onChange(replica, from, StateDown, reason)
	}
}

// State returns the current verdict for replica (StateDown for unknown
// names, so a typo'd replica is never dispatched to).
func (h *Health) State(replica string) ReplicaState {
	h.mu.Lock()
	defer h.mu.Unlock()
	if st, ok := h.replicas[replica]; ok {
		return st.state
	}
	return StateDown
}

// Snapshot returns every replica's view, sorted by name.
func (h *Health) Snapshot() []ReplicaView {
	h.mu.Lock()
	out := make([]ReplicaView, 0, len(h.replicas))
	for r, st := range h.replicas {
		out = append(out, ReplicaView{
			Replica:          r,
			State:            st.state,
			StateName:        st.state.String(),
			ConsecutiveFails: st.fails,
			LastError:        st.lastErr,
			QueueDepth:       st.queueDepth,
			QueueCap:         st.queueCap,
		})
	}
	h.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Replica < out[j].Replica })
	return out
}

// AllDown reports whether every replica is down (draining counts as
// alive: its in-flight jobs will still finish).
func (h *Health) AllDown() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, st := range h.replicas {
		if st.state != StateDown {
			return false
		}
	}
	return true
}

// UpCount returns how many replicas are currently up (not draining, not
// down).
func (h *Health) UpCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := 0
	for _, st := range h.replicas {
		if st.state == StateUp {
			n++
		}
	}
	return n
}
