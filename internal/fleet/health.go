package fleet

import (
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"memsched/internal/serve"
)

// ReplicaState is the prober's verdict on one replica.
type ReplicaState int

// Replica states. The three-way split is what the /readyz JSON body
// buys the fleet: a draining replica is alive (its in-flight jobs will
// finish; don't send new ones, don't fail its jobs over), a down one is
// gone (re-dispatch everything it held).
const (
	// StateUp: serving and accepting jobs.
	StateUp ReplicaState = iota
	// StateDraining: alive but refusing new jobs; in-flight work will
	// complete.
	StateDraining
	// StateDown: unreachable past the failure threshold.
	StateDown
)

// String names the state for logs and the /replicas endpoint.
func (s ReplicaState) String() string {
	switch s {
	case StateUp:
		return "up"
	case StateDraining:
		return "draining"
	case StateDown:
		return "down"
	}
	return "unknown"
}

// HealthConfig tunes the prober. Zero values select the defaults.
type HealthConfig struct {
	// Interval between probes of one replica (default 250ms).
	Interval time.Duration
	// Timeout of one probe request (default 1s).
	Timeout time.Duration
	// FailThreshold is the number of consecutive probe failures that
	// marks a replica down (default 3). Dispatch-path connection errors
	// reported via ReportFailure count toward the same threshold, so a
	// kill -9 is usually detected by the first job that trips over it
	// rather than by the probe cadence.
	FailThreshold int
	// Jitter spreads each probe delay uniformly over
	// [Interval*(1-Jitter), Interval*(1+Jitter)] so N replicas aren't
	// probed in synchronized bursts (default 0.2; clamped to [0, 0.5];
	// negative disables jitter).
	Jitter float64
}

func (c *HealthConfig) applyDefaults() {
	if c.Interval <= 0 {
		c.Interval = 250 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = time.Second
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	switch {
	case c.Jitter == 0:
		c.Jitter = 0.2
	case c.Jitter < 0:
		c.Jitter = 0
	case c.Jitter > 0.5:
		c.Jitter = 0.5
	}
}

// probeDelay returns one jittered probe interval: uniform over
// [interval*(1-jitter), interval*(1+jitter)].
func probeDelay(interval time.Duration, jitter float64, rng *rand.Rand) time.Duration {
	if jitter <= 0 {
		return interval
	}
	f := 1 - jitter + 2*jitter*rng.Float64()
	return time.Duration(float64(interval) * f)
}

// ReplicaView is the observable health of one replica.
type ReplicaView struct {
	Replica string       `json:"replica"`
	State   ReplicaState `json:"-"`
	// StateName is State rendered for JSON consumers.
	StateName string `json:"state"`
	// Leaving marks a replica in drain-aware departure: kept at
	// draining until its in-flight dispatches finish, then removed.
	Leaving bool `json:"leaving,omitempty"`
	// ConsecutiveFails counts probe/dispatch failures since the last
	// success.
	ConsecutiveFails int `json:"consecutive_fails,omitempty"`
	// LastError is the most recent probe failure, empty while up.
	LastError string `json:"last_error,omitempty"`
	// QueueDepth/QueueCap mirror the replica's last /readyz body.
	QueueDepth int `json:"queue_depth"`
	QueueCap   int `json:"queue_cap"`
}

// Health watches a dynamic replica set with periodic /readyz probes.
// Replicas start optimistically up; the prober demotes them. Start
// launches one goroutine per replica; Add/Remove grow and shrink the
// set at runtime; Stop joins every loop.
type Health struct {
	cfg    HealthConfig
	client *http.Client
	// onChange fires outside the state lock on every transition (flight
	// events, log lines, failover nudges hang off it).
	onChange func(replica string, from, to ReplicaState, reason string)
	// now is a test seam for eviction-age arithmetic.
	now func() time.Time

	mu       sync.Mutex
	replicas map[string]*replicaHealth
	started  bool
	stopped  bool

	stop chan struct{}
	wg   sync.WaitGroup
}

type replicaHealth struct {
	state   ReplicaState
	leaving bool
	fails   int
	lastErr string
	// downSince is when the replica was last demoted to down; zero
	// while reachable. Feeds auto-eviction.
	downSince  time.Time
	queueDepth int
	queueCap   int
	// stop ends this replica's probe loop when it is removed from the
	// set; closed guards against a double Remove.
	stop   chan struct{}
	closed bool
}

// NewHealth builds the prober over the replica base URLs. client may be
// nil (a timeout-bounded default is built); onChange may be nil.
func NewHealth(replicas []string, cfg HealthConfig, client *http.Client,
	onChange func(replica string, from, to ReplicaState, reason string)) *Health {
	cfg.applyDefaults()
	if client == nil {
		client = &http.Client{Timeout: cfg.Timeout}
	}
	h := &Health{
		cfg:      cfg,
		client:   client,
		onChange: onChange,
		now:      time.Now,
		replicas: make(map[string]*replicaHealth, len(replicas)),
		stop:     make(chan struct{}),
	}
	for _, r := range replicas {
		h.replicas[r] = &replicaHealth{state: StateUp, stop: make(chan struct{})}
	}
	return h
}

// Start launches the probe loops.
func (h *Health) Start() {
	h.mu.Lock()
	h.started = true
	type entry struct {
		name string
		stop chan struct{}
	}
	loops := make([]entry, 0, len(h.replicas))
	for r, st := range h.replicas {
		loops = append(loops, entry{r, st.stop})
	}
	h.mu.Unlock()
	for _, e := range loops {
		h.wg.Add(1)
		go h.probeLoop(e.name, e.stop)
	}
}

// probeLoop probes one replica until its per-replica stop channel (a
// Remove) or the global stop (a Stop) closes. Each delay is jittered so
// replica probes drift apart instead of firing in lockstep.
func (h *Health) probeLoop(replica string, stop chan struct{}) {
	defer h.wg.Done()
	rng := rand.New(rand.NewSource(int64(hash64(replica))))
	for {
		h.probe(replica)
		t := time.NewTimer(probeDelay(h.cfg.Interval, h.cfg.Jitter, rng))
		select {
		case <-h.stop:
			t.Stop()
			return
		case <-stop:
			t.Stop()
			return
		case <-t.C:
		}
	}
}

// Add inserts a replica into the probed set (optimistically up) and, if
// the prober is running, launches its probe loop. Returns false if the
// replica is already a member.
func (h *Health) Add(replica string) bool {
	h.mu.Lock()
	if h.stopped {
		h.mu.Unlock()
		return false
	}
	if _, ok := h.replicas[replica]; ok {
		h.mu.Unlock()
		return false
	}
	st := &replicaHealth{state: StateUp, stop: make(chan struct{})}
	h.replicas[replica] = st
	launch := h.started
	if launch {
		h.wg.Add(1)
	}
	h.mu.Unlock()
	if launch {
		go h.probeLoop(replica, st.stop)
	}
	return true
}

// Remove deletes a replica from the probed set and stops its loop.
// Returns false if the replica is not a member.
func (h *Health) Remove(replica string) bool {
	h.mu.Lock()
	st, ok := h.replicas[replica]
	if !ok {
		h.mu.Unlock()
		return false
	}
	delete(h.replicas, replica)
	if !st.closed {
		st.closed = true
		close(st.stop)
	}
	h.mu.Unlock()
	return true
}

// MarkLeaving flags a replica for drain-aware departure: its state
// drops to draining (so no new dispatches route there) and successful
// probes can no longer promote it back to up. Returns false for
// unknown replicas.
func (h *Health) MarkLeaving(replica string) bool {
	h.mu.Lock()
	st, ok := h.replicas[replica]
	if !ok {
		h.mu.Unlock()
		return false
	}
	st.leaving = true
	from := st.state
	demote := from == StateUp
	if demote {
		st.state = StateDraining
	}
	h.mu.Unlock()
	if demote && h.onChange != nil {
		h.onChange(replica, from, StateDraining, "leaving")
	}
	return true
}

// Stop halts every probe loop and waits for them.
func (h *Health) Stop() {
	h.mu.Lock()
	if h.stopped {
		h.mu.Unlock()
		h.wg.Wait()
		return
	}
	h.stopped = true
	h.mu.Unlock()
	close(h.stop)
	h.wg.Wait()
}

// probe performs one /readyz check of replica and folds the outcome in.
func (h *Health) probe(replica string) {
	ctx, cancel := context.WithTimeout(context.Background(), h.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, replica+"/readyz", nil)
	if err != nil {
		h.ReportFailure(replica, "bad probe url: "+err.Error())
		return
	}
	resp, err := h.client.Do(req)
	if err != nil {
		h.ReportFailure(replica, err.Error())
		return
	}
	defer resp.Body.Close()
	// Probe bodies are bounded so a misbehaving endpoint can't balloon
	// the prober.
	var ready serve.ReadyStatus
	decErr := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&ready)
	switch {
	case resp.StatusCode == http.StatusOK:
		h.reportUp(replica, StateUp, ready)
	case resp.StatusCode == http.StatusServiceUnavailable && decErr == nil && ready.Draining:
		// Alive and telling us so: the JSON drain marker is what keeps a
		// draining replica from being declared dead and its in-flight
		// jobs from being redundantly re-dispatched.
		h.reportUp(replica, StateDraining, ready)
	default:
		h.ReportFailure(replica, "readyz status "+resp.Status)
	}
}

// reportUp records a successful probe with the observed target state.
// A leaving replica is pinned at draining: reachability can't re-admit
// it to the routable set mid-departure.
func (h *Health) reportUp(replica string, to ReplicaState, ready serve.ReadyStatus) {
	h.mu.Lock()
	st, ok := h.replicas[replica]
	if !ok {
		h.mu.Unlock()
		return
	}
	if st.leaving {
		to = StateDraining
	}
	from := st.state
	st.state = to
	st.fails = 0
	st.lastErr = ""
	st.downSince = time.Time{}
	st.queueDepth = ready.QueueDepth
	st.queueCap = ready.QueueCap
	h.mu.Unlock()
	if from != to && h.onChange != nil {
		h.onChange(replica, from, to, "probe ok")
	}
}

// ReportFailure counts one failed probe or dispatch-path connection
// error; crossing the threshold marks the replica down. Dispatchers
// call this on transport errors so detection is as fast as the first
// failing request.
func (h *Health) ReportFailure(replica, reason string) {
	h.mu.Lock()
	st, ok := h.replicas[replica]
	if !ok {
		h.mu.Unlock()
		return
	}
	st.fails++
	st.lastErr = reason
	from := st.state
	demote := st.fails >= h.cfg.FailThreshold && from != StateDown
	if demote {
		st.state = StateDown
		st.downSince = h.now()
	}
	h.mu.Unlock()
	if demote && h.onChange != nil {
		h.onChange(replica, from, StateDown, reason)
	}
}

// State returns the current verdict for replica (StateDown for unknown
// names, so a typo'd replica is never dispatched to).
func (h *Health) State(replica string) ReplicaState {
	h.mu.Lock()
	defer h.mu.Unlock()
	if st, ok := h.replicas[replica]; ok {
		return st.state
	}
	return StateDown
}

// Snapshot returns every replica's view, sorted by name.
func (h *Health) Snapshot() []ReplicaView {
	h.mu.Lock()
	out := make([]ReplicaView, 0, len(h.replicas))
	for r, st := range h.replicas {
		out = append(out, ReplicaView{
			Replica:          r,
			State:            st.state,
			StateName:        st.state.String(),
			Leaving:          st.leaving,
			ConsecutiveFails: st.fails,
			LastError:        st.lastErr,
			QueueDepth:       st.queueDepth,
			QueueCap:         st.queueCap,
		})
	}
	h.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Replica < out[j].Replica })
	return out
}

// AllDown reports whether every replica is down (draining counts as
// alive: its in-flight jobs will still finish).
func (h *Health) AllDown() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, st := range h.replicas {
		if st.state != StateDown {
			return false
		}
	}
	return true
}

// UpCount returns how many replicas are currently up (not draining, not
// down).
func (h *Health) UpCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := 0
	for _, st := range h.replicas {
		if st.state == StateUp {
			n++
		}
	}
	return n
}

// Count returns the membership size (any state).
func (h *Health) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.replicas)
}

// DownLongerThan returns the replicas that have been continuously down
// for at least d, sorted by name. Feeds the router's auto-eviction.
func (h *Health) DownLongerThan(d time.Duration) []string {
	cutoff := h.now().Add(-d)
	h.mu.Lock()
	var out []string
	for r, st := range h.replicas {
		if st.state == StateDown && !st.downSince.IsZero() && !st.downSince.After(cutoff) {
			out = append(out, r)
		}
	}
	h.mu.Unlock()
	sort.Strings(out)
	return out
}
