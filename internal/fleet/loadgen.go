package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"memsched/internal/obs"
	"memsched/internal/serve"
)

// LoadgenConfig tunes a load-generation run against a router (or a
// single replica — the wire contract is the same).
type LoadgenConfig struct {
	// Target is the base URL to drive.
	Target string
	// Jobs is the number of submissions (default 50).
	Jobs int
	// Concurrency is the closed-loop worker count (default 4). Ignored
	// in open-loop mode.
	Concurrency int
	// RatePerSec > 0 selects open-loop mode: submissions arrive on a
	// fixed schedule regardless of completions (the shed-rate probe).
	RatePerSec float64
	// Duration bounds an open-loop run; 0 runs until Jobs submissions.
	Duration time.Duration
	// RepeatEvery makes every k-th submission repeat an earlier spec,
	// driving content-addressed cache hits (0 disables).
	RepeatEvery int
	// Seed makes the generated spec mix reproducible (default 1).
	Seed int64
	// MaxN caps generated workload sizes (default 6: small and fast).
	MaxN int
	// JobWait bounds the terminal-status wait per accepted job (default
	// 2m); a job still pending past it counts as lost.
	JobWait time.Duration
	// RetryWindow is how long follow keeps retrying through continuous
	// transport errors before declaring a job lost (default 2s). A window
	// long enough to cover a router restart lets clients ride out a crash
	// and pick their jobs back up from the recovered journal.
	RetryWindow time.Duration
	// Client overrides the HTTP client (nil builds one).
	Client *http.Client
}

func (c *LoadgenConfig) applyDefaults() {
	if c.Jobs <= 0 {
		c.Jobs = 50
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MaxN < 2 {
		c.MaxN = 6
	}
	if c.JobWait <= 0 {
		c.JobWait = 2 * time.Minute
	}
	if c.RetryWindow <= 0 {
		c.RetryWindow = 2 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
}

// LoadgenReport is the run summary, JSON-printed by cmd/memloadgen.
// Lost is the one number that must be zero: jobs the target accepted
// and then never resolved to a terminal state.
type LoadgenReport struct {
	Target      string `json:"target"`
	Mode        string `json:"mode"` // "closed" or "open"
	JobsPlanned int    `json:"jobs_planned"`

	Submitted int64 `json:"submitted"`
	Accepted  int64 `json:"accepted"`
	Done      int64 `json:"done"`
	Failed    int64 `json:"failed"`
	Canceled  int64 `json:"canceled"`
	Lost      int64 `json:"lost"`

	Shed       int64 `json:"shed"`        // 429 rejections
	Rejected   int64 `json:"rejected"`    // 400/503 rejections
	HTTPErrors int64 `json:"http_errors"` // transport failures

	CacheHits    int64 `json:"cache_hits"`
	Hedged       int64 `json:"hedged"`
	Redispatched int64 `json:"redispatched"`

	SojournP50MS float64 `json:"sojourn_p50_ms"`
	SojournP95MS float64 `json:"sojourn_p95_ms"`
	SojournP99MS float64 `json:"sojourn_p99_ms"`

	ElapsedMS        int64   `json:"elapsed_ms"`
	ThroughputPerSec float64 `json:"throughput_per_sec"`

	// RouterMetrics is the target's own /metrics?format=json snapshot
	// when the target speaks the router schema (nil for a bare replica).
	RouterMetrics *Metrics `json:"router_metrics,omitempty"`
}

// lgStatus is the subset of a job status the loadgen reads; it decodes
// from both a router's and a replica's response.
type lgStatus struct {
	ID           string         `json:"id"`
	State        serve.JobState `json:"state"`
	Error        string         `json:"error,omitempty"`
	CacheHit     bool           `json:"cache_hit,omitempty"`
	Hedged       bool           `json:"hedged,omitempty"`
	Redispatches int            `json:"redispatches,omitempty"`
}

// Loadgen drives a target with a reproducible spec mix and measures
// client-side sojourn (submit to terminal, as the caller experiences
// it — including every router-side failover and hedge).
type Loadgen struct {
	cfg   LoadgenConfig
	specs []serve.JobRequest

	sojourn obs.Histogram

	submitted, accepted           atomic.Int64
	done, failed, canceled, lost  atomic.Int64
	shed, rejected, httpErrs      atomic.Int64
	cacheHits, hedged, redispatch atomic.Int64
}

// NewLoadgen builds a generator with a deterministic spec mix.
func NewLoadgen(cfg LoadgenConfig) *Loadgen {
	cfg.applyDefaults()
	return &Loadgen{cfg: cfg, specs: GenSpecs(cfg.Jobs, cfg.Seed, cfg.MaxN, cfg.RepeatEvery)}
}

// GenSpecs produces n small job specs, reproducible from seed. When
// repeatEvery > 0, every repeatEvery-th spec repeats an earlier one so
// a content-addressed cache has hits to serve.
func GenSpecs(n int, seed int64, maxN, repeatEvery int) []serve.JobRequest {
	rng := rand.New(rand.NewSource(seed))
	workloads := []string{"matmul2d", "cholesky", "matmul3d"}
	specs := make([]serve.JobRequest, 0, n)
	for i := 0; i < n; i++ {
		if repeatEvery > 0 && i > 0 && i%repeatEvery == 0 {
			specs = append(specs, specs[rng.Intn(len(specs))])
			continue
		}
		specs = append(specs, serve.JobRequest{
			Workload: workloads[rng.Intn(len(workloads))],
			N:        2 + rng.Intn(maxN-1),
			GPUs:     1 + rng.Intn(2),
			Seed:     1 + int64(rng.Intn(3)),
		})
	}
	return specs
}

// Run executes the load and assembles the report. ctx aborts early.
func (l *Loadgen) Run(ctx context.Context) LoadgenReport {
	start := time.Now()
	if l.cfg.RatePerSec > 0 {
		l.runOpen(ctx)
	} else {
		l.runClosed(ctx)
	}
	elapsed := time.Since(start)

	rep := LoadgenReport{
		Target:       l.cfg.Target,
		Mode:         "closed",
		JobsPlanned:  l.cfg.Jobs,
		Submitted:    l.submitted.Load(),
		Accepted:     l.accepted.Load(),
		Done:         l.done.Load(),
		Failed:       l.failed.Load(),
		Canceled:     l.canceled.Load(),
		Lost:         l.lost.Load(),
		Shed:         l.shed.Load(),
		Rejected:     l.rejected.Load(),
		HTTPErrors:   l.httpErrs.Load(),
		CacheHits:    l.cacheHits.Load(),
		Hedged:       l.hedged.Load(),
		Redispatched: l.redispatch.Load(),
		ElapsedMS:    elapsed.Milliseconds(),
	}
	if l.cfg.RatePerSec > 0 {
		rep.Mode = "open"
	}
	snap := l.sojourn.Snapshot()
	rep.SojournP50MS = finiteMS(snap, 0.50)
	rep.SojournP95MS = finiteMS(snap, 0.95)
	rep.SojournP99MS = finiteMS(snap, 0.99)
	if secs := elapsed.Seconds(); secs > 0 {
		rep.ThroughputPerSec = float64(rep.Done) / secs
	}
	rep.RouterMetrics = l.fetchRouterMetrics(ctx)
	return rep
}

func (l *Loadgen) runClosed(ctx context.Context) {
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < l.cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(l.specs) || ctx.Err() != nil {
					return
				}
				l.oneJob(ctx, l.specs[i])
			}
		}()
	}
	wg.Wait()
}

func (l *Loadgen) runOpen(ctx context.Context) {
	interval := time.Duration(float64(time.Second) / l.cfg.RatePerSec)
	if interval <= 0 {
		interval = time.Millisecond
	}
	deadline := time.Time{}
	if l.cfg.Duration > 0 {
		deadline = time.Now().Add(l.cfg.Duration)
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	var wg sync.WaitGroup
	for i := 0; i < len(l.specs); i++ {
		if !deadline.IsZero() && time.Now().After(deadline) {
			break
		}
		select {
		case <-ctx.Done():
			wg.Wait()
			return
		case <-tick.C:
		}
		spec := l.specs[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			l.oneJob(ctx, spec)
		}()
	}
	wg.Wait()
}

// oneJob submits one spec and follows it to a terminal state.
func (l *Loadgen) oneJob(ctx context.Context, spec serve.JobRequest) {
	start := time.Now()
	l.submitted.Add(1)
	st, code, err := l.submit(ctx, spec)
	if err != nil {
		l.httpErrs.Add(1)
		return
	}
	switch {
	case code == http.StatusAccepted:
		l.accepted.Add(1)
	case code == http.StatusTooManyRequests:
		l.shed.Add(1)
		return
	default:
		l.rejected.Add(1)
		return
	}

	wctx, cancel := context.WithTimeout(ctx, l.cfg.JobWait)
	defer cancel()
	final, ok := l.follow(wctx, st.ID)
	if !ok {
		l.lost.Add(1)
		return
	}
	l.sojourn.Observe(time.Since(start))
	switch final.State {
	case serve.JobDone:
		l.done.Add(1)
	case serve.JobFailed:
		l.failed.Add(1)
	case serve.JobCanceled:
		l.canceled.Add(1)
	}
	if final.CacheHit {
		l.cacheHits.Add(1)
	}
	if final.Hedged {
		l.hedged.Add(1)
	}
	l.redispatch.Add(int64(final.Redispatches))
}

func (l *Loadgen) submit(ctx context.Context, spec serve.JobRequest) (lgStatus, int, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return lgStatus{}, 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, l.cfg.Target+"/jobs", bytes.NewReader(body))
	if err != nil {
		return lgStatus{}, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := l.cfg.Client.Do(req)
	if err != nil {
		return lgStatus{}, 0, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	var st lgStatus
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(io.LimitReader(resp.Body, maxRespBytes)).Decode(&st); err != nil {
			return lgStatus{}, resp.StatusCode, err
		}
	}
	return st, resp.StatusCode, nil
}

// follow long-polls the job until it is terminal; false means the wait
// bound expired or the target stayed unreachable past RetryWindow — a
// lost job from the client's point of view. Errors are tolerated by
// wall clock, not by count: a router restarting with its journal is
// unreachable for whole seconds, and a consecutive-error counter at a
// 100ms retry cadence would give up long before it comes back.
func (l *Loadgen) follow(ctx context.Context, id string) (lgStatus, bool) {
	var errSince time.Time // zero while the target is answering
	fail := func() bool {
		if errSince.IsZero() {
			errSince = time.Now()
		}
		return time.Since(errSince) >= l.cfg.RetryWindow
	}
	for {
		if ctx.Err() != nil {
			return lgStatus{}, false
		}
		pctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		req, err := http.NewRequestWithContext(pctx, http.MethodGet, l.cfg.Target+"/jobs/"+id+"?wait=1", nil)
		if err != nil {
			cancel()
			return lgStatus{}, false
		}
		resp, err := l.cfg.Client.Do(req)
		if err != nil {
			cancel()
			if pctx.Err() != nil && ctx.Err() == nil {
				continue // benign long-poll timeout
			}
			if fail() {
				return lgStatus{}, false
			}
			time.Sleep(100 * time.Millisecond)
			continue
		}
		var st lgStatus
		decErr := json.NewDecoder(io.LimitReader(resp.Body, maxRespBytes)).Decode(&st)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		cancel()
		if decErr != nil || resp.StatusCode != http.StatusOK {
			if fail() {
				return lgStatus{}, false
			}
			time.Sleep(100 * time.Millisecond)
			continue
		}
		errSince = time.Time{}
		if st.State.Terminal() {
			return st, true
		}
	}
}

// fetchRouterMetrics pulls the target's JSON metrics snapshot; nil when
// the target does not speak the router schema.
func (l *Loadgen) fetchRouterMetrics(ctx context.Context) *Metrics {
	mctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(mctx, http.MethodGet, l.cfg.Target+"/metrics?format=json", nil)
	if err != nil {
		return nil
	}
	resp, err := l.cfg.Client.Do(req)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var m Metrics
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxRespBytes)).Decode(&m); err != nil {
		return nil
	}
	// A replica's JSON snapshot decodes too, but has no replica table;
	// use that to tell the schemas apart.
	if len(m.Replicas) == 0 {
		return nil
	}
	return &m
}

// finiteMS renders a histogram quantile in milliseconds, mapping the
// empty-histogram NaN and overflow-bucket +Inf (both of which would
// break JSON encoding) to 0 and -1 respectively.
func finiteMS(s obs.HistSnapshot, q float64) float64 {
	v := s.Quantile(q)
	switch {
	case math.IsNaN(v):
		return 0
	case math.IsInf(v, 0):
		return -1
	}
	return v * 1000
}

// String renders the human-facing one-line summary.
func (r LoadgenReport) String() string {
	return fmt.Sprintf(
		"memloadgen: %s %d jobs: %d done, %d failed, %d canceled, %d lost, %d shed; p50 %.1fms p99 %.1fms; cache hits %d, hedged %d, redispatched %d",
		r.Mode, r.Submitted, r.Done, r.Failed, r.Canceled, r.Lost, r.Shed,
		r.SojournP50MS, r.SojournP99MS, r.CacheHits, r.Hedged, r.Redispatched)
}
