package fleet

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"memsched/internal/serve"
)

func testReq(n int) serve.JobRequest {
	req := serve.JobRequest{Workload: "matmul2d", N: n}
	req.Normalize()
	return req
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "router.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.UnixMilli(1000)
	res := json.RawMessage(`{"makespan_ms":42}`)
	for i, id := range []string{"rjob-000001", "rjob-000002", "rjob-000003"} {
		req := testReq(4 + i)
		if err := j.Accept(id, CanonicalKey(req), uint64(i+1), req, t0); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Dispatch("rjob-000001", "http://a"); err != nil {
		t.Fatal(err)
	}
	if err := j.Complete("rjob-000001", serve.JobDone, res, "", t0.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := j.Dispatch("rjob-000002", "http://b"); err != nil {
		t.Fatal(err)
	}
	if st := j.Stats(); st.Records != 6 || st.Errors != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	complete, incomplete := j2.Recovered()
	if len(complete) != 1 || len(incomplete) != 2 {
		t.Fatalf("recovered %d complete, %d incomplete", len(complete), len(incomplete))
	}
	c := complete[0]
	if c.ID != "rjob-000001" || c.State != serve.JobDone || string(c.Result) != string(res) {
		t.Fatalf("complete = %+v", c)
	}
	if c.FinishedMS != t0.Add(time.Second).UnixMilli() {
		t.Fatalf("finished_ms = %d", c.FinishedMS)
	}
	if incomplete[0].ID != "rjob-000002" || incomplete[0].Replica != "http://b" {
		t.Fatalf("incomplete[0] = %+v", incomplete[0])
	}
	if incomplete[1].ID != "rjob-000003" || incomplete[1].Replica != "" {
		t.Fatalf("incomplete[1] = %+v", incomplete[1])
	}
	if got := incomplete[0].Req; got.N != 5 || got.Workload != "matmul2d" || got.Strategy != "DARTS+LUF" {
		t.Fatalf("recovered request = %+v", got)
	}
	// Appending after recovery must work (journal reopened mid-life).
	req := testReq(99)
	if err := j2.Accept("rjob-000004", CanonicalKey(req), 9, req, t0); err != nil {
		t.Fatal(err)
	}
}

func TestJournalTornTailTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "router.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	req := testReq(4)
	if err := j.Accept("rjob-000001", CanonicalKey(req), 1, req, time.UnixMilli(5)); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	st, _ := os.Stat(path)
	intact := st.Size()

	// Simulate a crash mid-append: a torn, unterminated complete record.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"complete","id":"rjob-000001","state":"do`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("torn tail must be tolerated: %v", err)
	}
	complete, incomplete := j2.Recovered()
	if len(complete) != 0 || len(incomplete) != 1 {
		t.Fatalf("recovered %d complete, %d incomplete (torn complete must be dropped)", len(complete), len(incomplete))
	}
	// The torn bytes must have been truncated so appends stay aligned.
	if st, _ := os.Stat(path); st.Size() != intact {
		t.Fatalf("size after recovery = %d, want %d", st.Size(), intact)
	}
	if err := j2.Complete("rjob-000001", serve.JobFailed, nil, "boom", time.UnixMilli(9)); err != nil {
		t.Fatal(err)
	}
	j2.Close()

	j3, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	complete, incomplete = j3.Recovered()
	if len(complete) != 1 || len(incomplete) != 0 || complete[0].Error != "boom" {
		t.Fatalf("after re-complete: %d complete %d incomplete", len(complete), len(incomplete))
	}
}

func TestJournalCorruptInteriorRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "router.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	req := testReq(4)
	if err := j.Accept("rjob-000001", CanonicalKey(req), 1, req, time.UnixMilli(5)); err != nil {
		t.Fatal(err)
	}
	j.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// A terminated garbage line in the middle is corruption, not a torn
	// tail — recovery must refuse rather than silently drop jobs.
	corrupted := append([]byte{}, data...)
	corrupted = append(corrupted, []byte("{garbage\n")...)
	corrupted = append(corrupted, data[strings.Index(string(data), "\n")+1:]...)
	if err := os.WriteFile(path, corrupted, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(path); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("corrupt interior accepted: %v", err)
	}
}

func TestJournalHeaderMismatchRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "router.journal")
	if err := os.WriteFile(path, []byte(`{"journal_version":99,"config":"v1|keyv1"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(path); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("future version accepted: %v", err)
	}
	if err := os.WriteFile(path, []byte(`{"journal_version":1,"config":"v0|other"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(path); err == nil || !strings.Contains(err.Error(), "configuration") {
		t.Fatalf("config mismatch accepted: %v", err)
	}
}

func TestJournalDedupe(t *testing.T) {
	path := filepath.Join(t.TempDir(), "router.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	req := testReq(4)
	key := CanonicalKey(req)
	for i := 0; i < 3; i++ {
		if err := j.Accept("rjob-000001", key, 1, req, time.UnixMilli(5)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := j.Complete("rjob-000001", serve.JobDone, json.RawMessage(`{}`), "", time.UnixMilli(6)); err != nil {
			t.Fatal(err)
		}
	}
	if st := j.Stats(); st.Records != 2 {
		t.Fatalf("dedupe failed: %d records appended, want 2", st.Records)
	}
	// Same ID under a different key is corruption, loudly.
	other := testReq(5)
	if err := j.Accept("rjob-000001", CanonicalKey(other), 1, other, time.UnixMilli(7)); err == nil {
		t.Fatal("conflicting re-accept silently succeeded")
	}
	j.Close()

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	complete, incomplete := j2.Recovered()
	if len(complete) != 1 || len(incomplete) != 0 {
		t.Fatalf("recovered %d complete, %d incomplete", len(complete), len(incomplete))
	}
}

func TestJournalTransitionConsistency(t *testing.T) {
	path := filepath.Join(t.TempDir(), "router.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Dispatch("rjob-000042", "http://a"); err == nil {
		t.Fatal("dispatch of unjournaled job accepted")
	}
	if err := j.Complete("rjob-000042", serve.JobDone, nil, "", time.UnixMilli(5)); err == nil {
		t.Fatal("complete of unjournaled job accepted")
	}
	req := testReq(4)
	if err := j.Accept("rjob-000001", CanonicalKey(req), 1, req, time.UnixMilli(5)); err != nil {
		t.Fatal(err)
	}
	if err := j.Complete("rjob-000001", serve.JobRunning, nil, "", time.UnixMilli(6)); err == nil {
		t.Fatal("non-terminal complete accepted")
	}
}
