package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"memsched/internal/obs"
	"memsched/internal/serve"
)

// maxRespBytes bounds every replica response the router decodes.
const maxRespBytes = 4 << 20

// replicaStatus is the slice of serve.JobStatus the router reads back.
// Result stays raw: the router never decodes result bytes, it relays
// and caches them verbatim — that is what makes "byte-identical to a
// single-node run" a structural property instead of a best effort.
type replicaStatus struct {
	ID     string          `json:"id"`
	State  serve.JobState  `json:"state"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// dispatchResult is one dispatch attempt's outcome, exactly one per
// launched dispatch goroutine.
type dispatchResult struct {
	replica  string
	hedge    bool
	accepted bool   // the replica admitted the job
	remote   string // replica-side job id, when accepted
	st       *replicaStatus
	err      error
}

// permanentError marks a dispatch outcome that must not fail over:
// the replica deterministically rejected or failed the job, so every
// other replica would do the same.
type permanentError struct{ msg string }

func (e *permanentError) Error() string { return e.msg }

// errRemoteJobLost marks a poll that found the replica alive but the
// job gone (replica restarted between accept and poll).
var errRemoteJobLost = errors.New("replica no longer knows the job")

// drive owns one job start to finish: dispatch to the ring-preferred
// replica, fail over on loss, hedge on straggle, finish exactly once.
func (r *Router) drive(j *rjob) {
	defer r.wg.Done()
	ctx, cancel := context.WithTimeout(r.baseCtx, r.cfg.JobTimeout)
	defer cancel()

	r.mu.Lock()
	if j.state.Terminal() { // canceled before the driver started
		r.mu.Unlock()
		return
	}
	j.cancel = cancel
	prefs := r.ring.Prefs(j.key, nil)
	prefCount := len(prefs)
	r.mu.Unlock()

	// active tracks in-flight dispatches (replica -> remote job id,
	// "" until accepted). It is shared with the dispatch goroutines'
	// accept callbacks, hence its own mutex.
	var amu sync.Mutex
	active := make(map[string]string, 2)
	results := make(chan dispatchResult, r.cfg.MaxAttempts+2)

	attempts := 0
	idleRounds := 0
	excluded := make(map[string]bool, len(prefs))

	activeCount := func() int {
		amu.Lock()
		defer amu.Unlock()
		return len(active)
	}
	launch := func(hedge bool) bool {
		amu.Lock()
		act := make(map[string]bool, len(active))
		for rep := range active {
			act[rep] = true
		}
		amu.Unlock()
		// Recompute the preference order from the live ring so a
		// membership change (join, leave, evict) between attempts is
		// visible: a retry can land on a just-joined replica and never
		// lands on a departed one.
		r.mu.Lock()
		prefs = r.ring.Prefs(j.key, prefs[:0])
		r.mu.Unlock()
		replica := r.eligibleReplica(prefs, act, excluded)
		if replica == "" && len(excluded) > 0 {
			// Every replica has been tried once this job; wrap around so
			// a transient shed does not strand the job while attempts
			// remain.
			for rep := range excluded {
				delete(excluded, rep)
			}
			replica = r.eligibleReplica(prefs, act, excluded)
		}
		if replica == "" {
			return false
		}
		attempts++
		idleRounds = 0
		amu.Lock()
		active[replica] = ""
		amu.Unlock()
		r.mu.Lock()
		r.ctrDispatches++
		r.dispActive[replica]++
		r.mu.Unlock()
		onAccept := func(remote string) {
			amu.Lock()
			active[replica] = remote
			amu.Unlock()
			r.mu.Lock()
			if !j.state.Terminal() {
				j.state = serve.JobRunning
				if !hedge || j.replica == "" {
					j.replica, j.remote = replica, remote
				}
			}
			r.mu.Unlock()
			if r.journal != nil {
				r.journal.Dispatch(j.id, replica)
			}
		}
		go r.runDispatch(ctx, j, replica, hedge, onAccept, results)
		return true
	}
	// cancelLosers cancels every still-active dispatch after the job
	// finished: fire-and-forget DELETEs so the winner's latency never
	// waits on a loser.
	cancelLosers := func() {
		amu.Lock()
		losers := make(map[string]string, len(active))
		for rep, id := range active {
			losers[rep] = id
		}
		amu.Unlock()
		for rep, id := range losers {
			if id != "" {
				go r.cancelRemote(rep, id)
			}
		}
	}

	var hedgeCh <-chan time.Time
	if !r.cfg.DisableHedge && prefCount > 1 {
		ht := time.NewTimer(r.hedgeDelay())
		defer ht.Stop()
		hedgeCh = ht.C
	}
	var retryCh <-chan time.Time
	if !launch(false) {
		idleRounds++
		retryCh = time.After(r.backoffDelay(attempts))
	}

	for {
		select {
		case res := <-results:
			amu.Lock()
			delete(active, res.replica)
			amu.Unlock()
			excluded[res.replica] = true

			switch {
			case res.err == nil && res.st.State == serve.JobDone:
				if res.hedge {
					r.noteHedgeWin(j, res.replica)
				}
				r.setWinner(j, res)
				r.finish(j, serve.JobDone, res.st.Result, "")
				cancelLosers()
				return
			case res.err == nil && res.st.State == serve.JobFailed:
				// Deterministic failure: every replica would fail the
				// same way, so failing over would only repeat it.
				r.setWinner(j, res)
				r.finish(j, serve.JobFailed, nil, res.st.Error)
				cancelLosers()
				return
			case res.err == nil && res.st.State == serve.JobCanceled && r.cancelWasRequested(j):
				r.finish(j, serve.JobCanceled, nil, "canceled by client")
				cancelLosers()
				return
			default:
				// Everything else is a lost or refused dispatch: transport
				// error, shed, replica restart, or a replica-side cancel
				// the router never asked for (a drain deadline, say).
				var perm *permanentError
				if errors.As(res.err, &perm) {
					r.finish(j, serve.JobFailed, nil, perm.msg)
					cancelLosers()
					return
				}
				if ctx.Err() != nil {
					// The driver context died (client cancel, timeout,
					// shutdown) — that is not a replica failure.
					r.finishAborted(j, ctx)
					cancelLosers()
					return
				}
				r.noteDispatchError(j, res)
				if activeCount() > 0 {
					// A sibling dispatch (the hedge, or the primary) is
					// still in flight; let it run.
					continue
				}
				if attempts >= r.cfg.MaxAttempts {
					r.finish(j, serve.JobFailed, nil,
						fmt.Sprintf("dispatch attempts exhausted after %d tries: %s", attempts, dispatchErrString(res)))
					return
				}
				if !launch(false) {
					idleRounds++
					retryCh = time.After(r.backoffDelay(attempts))
				}
			}

		case <-retryCh:
			retryCh = nil
			if launch(false) {
				continue
			}
			idleRounds++
			if idleRounds > r.cfg.MaxAttempts {
				r.finish(j, serve.JobFailed, nil, "no replica available: all replicas down, draining or breaker-open")
				return
			}
			retryCh = time.After(r.backoffDelay(attempts + idleRounds))

		case <-hedgeCh:
			hedgeCh = nil
			if activeCount() != 1 || attempts >= r.cfg.MaxAttempts {
				continue
			}
			if launch(true) {
				r.noteHedge(j)
			}

		case <-ctx.Done():
			r.finishAborted(j, ctx)
			cancelLosers()
			return
		}
	}
}

// eligibleReplica walks the preference order and returns the first
// replica that is up, not already carrying this job, not excluded, and
// whose breaker admits a request. Health is checked before the breaker
// so half-open probe slots are never burned on replicas that were
// going to be skipped anyway.
func (r *Router) eligibleReplica(prefs []string, active, excluded map[string]bool) string {
	for _, rep := range prefs {
		if active[rep] || excluded[rep] {
			continue
		}
		if r.health.State(rep) != StateUp {
			continue
		}
		if ok, _ := r.breaker.Allow(rep); !ok {
			continue
		}
		return rep
	}
	return ""
}

// runDispatch performs one dispatch: submit, then long-poll to a
// terminal state. Exactly one dispatchResult is always sent.
func (r *Router) runDispatch(ctx context.Context, j *rjob, replica string, hedge bool,
	onAccept func(remote string), results chan<- dispatchResult) {
	res := dispatchResult{replica: replica, hedge: hedge}
	defer func() {
		// dispActive feeds drain-aware membership leave: a leaving
		// replica is removed from the health view once this hits zero.
		r.mu.Lock()
		if r.dispActive[replica]--; r.dispActive[replica] <= 0 {
			delete(r.dispActive, replica)
		}
		r.mu.Unlock()
		results <- res
	}()
	start := r.now()

	body, err := json.Marshal(j.req)
	if err != nil {
		res.err = &permanentError{msg: "marshal request: " + err.Error()}
		return
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, replica+"/jobs", bytes.NewReader(body))
	if err != nil {
		res.err = &permanentError{msg: "build request: " + err.Error()}
		return
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(serve.TraceHeader, strconv.FormatUint(j.trace, 10))
	resp, err := r.client.Do(req)
	if err != nil {
		if ctx.Err() == nil {
			// Only a live-context transport error is evidence against the
			// replica; our own cancellation is not.
			r.health.ReportFailure(replica, err.Error())
			r.noteBreakerFailure(replica)
		}
		res.err = fmt.Errorf("submit to %s: %w", replica, err)
		return
	}
	raw, readErr := io.ReadAll(io.LimitReader(resp.Body, maxRespBytes))
	resp.Body.Close()
	var st replicaStatus
	decErr := json.Unmarshal(raw, &st)
	switch {
	case resp.StatusCode == http.StatusAccepted && readErr == nil && decErr == nil && st.ID != "":
		// Admitted; fall through to the poll loop.
	case resp.StatusCode == http.StatusBadRequest:
		// Deterministic rejection: no other replica would accept it.
		res.err = &permanentError{msg: "replica rejected job: " + remoteErrString(resp, raw)}
		return
	default:
		// Shed (429), draining (503) or anything unexpected: retriable
		// elsewhere, and a breaker strike here.
		r.noteBreakerFailure(replica)
		res.err = fmt.Errorf("submit to %s: %s", replica, remoteErrString(resp, raw))
		return
	}
	res.accepted, res.remote = true, st.ID
	onAccept(st.ID)

	for {
		if err := ctx.Err(); err != nil {
			res.err = err
			return
		}
		pst, err := r.pollOnce(ctx, replica, st.ID)
		if err != nil {
			if !errors.Is(err, errRemoteJobLost) && ctx.Err() == nil {
				r.health.ReportFailure(replica, err.Error())
				r.noteBreakerFailure(replica)
			}
			res.err = fmt.Errorf("poll %s: %w", replica, err)
			return
		}
		if pst == nil {
			// Benign poll timeout; re-check liveness before the next
			// round so a dead replica doesn't eat polls until the prober
			// notices.
			if r.health.State(replica) == StateDown {
				res.err = fmt.Errorf("replica %s marked down mid-job", replica)
				return
			}
			continue
		}
		if pst.State.Terminal() {
			r.breaker.OnSuccess(replica)
			r.dispatchDur.Observe(r.now().Sub(start))
			res.st = pst
			return
		}
	}
}

// pollOnce long-polls one replica job once, bounded by PollTimeout.
// Returns (nil, nil) on a benign client-side poll timeout.
func (r *Router) pollOnce(ctx context.Context, replica, remote string) (*replicaStatus, error) {
	pctx, cancel := context.WithTimeout(ctx, r.cfg.PollTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, replica+"/jobs/"+remote+"?wait=1", nil)
	if err != nil {
		return nil, err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		if ctx.Err() == nil && pctx.Err() != nil {
			return nil, nil
		}
		return nil, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
		var st replicaStatus
		if err := json.NewDecoder(io.LimitReader(resp.Body, maxRespBytes)).Decode(&st); err != nil {
			return nil, fmt.Errorf("decode status: %w", err)
		}
		return &st, nil
	case http.StatusNotFound:
		return nil, errRemoteJobLost
	default:
		return nil, fmt.Errorf("status %s", resp.Status)
	}
}

// cancelRemote best-effort cancels a loser dispatch on its replica.
func (r *Router) cancelRemote(replica, remote string) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, replica+"/jobs/"+remote, nil)
	if err != nil {
		return
	}
	if resp, err := r.client.Do(req); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// hedgeDelay derives the hedge timer from the live sojourn quantile,
// floored by HedgeMinDelay while the histogram is cold and capped at
// half the job timeout so a hedge always has time to win.
func (r *Router) hedgeDelay() time.Duration {
	d := r.cfg.HedgeMinDelay
	snap := r.sojourn.Snapshot()
	if snap.Count >= 16 {
		if q := snap.Quantile(r.cfg.HedgeQuantile); q > 0 && !math.IsInf(q, 1) {
			if qd := time.Duration(q * float64(time.Second)); qd > d {
				d = qd
			}
		}
	}
	if lim := r.cfg.JobTimeout / 2; d > lim {
		d = lim
	}
	return d
}

// setWinner records which dispatch produced the terminal outcome.
func (r *Router) setWinner(j *rjob, res dispatchResult) {
	r.mu.Lock()
	if !j.state.Terminal() {
		j.replica, j.remote = res.replica, res.remote
	}
	r.mu.Unlock()
}

func (r *Router) cancelWasRequested(j *rjob) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return j.cancelRequested
}

// noteDispatchError books a lost dispatch: counters, the failover
// flight event when an accepted job was lost, and the log line.
func (r *Router) noteDispatchError(j *rjob, res dispatchResult) {
	now := r.now().UnixNano()
	r.mu.Lock()
	r.ctrDispatchErrs++
	if res.accepted {
		r.ctrFailovers++
		j.redispatches++
	}
	r.mu.Unlock()
	if res.accepted {
		r.tracer.Event(obs.Span{
			Trace: j.trace, Job: j.id, Key: j.key, Kind: obs.KindFailover,
			Start: now, End: now,
			Note: fmt.Sprintf("lost on %s: %s", res.replica, dispatchErrString(res)),
		})
		r.log.Warn("failover", obs.TraceAttr(j.trace), "job", j.id, "replica", res.replica, "err", dispatchErrString(res))
	} else {
		r.log.Info("dispatch refused", obs.TraceAttr(j.trace), "job", j.id, "replica", res.replica, "err", dispatchErrString(res))
	}
}

// noteHedge books a launched hedge dispatch.
func (r *Router) noteHedge(j *rjob) {
	now := r.now().UnixNano()
	r.mu.Lock()
	j.hedged = true
	r.ctrHedges++
	r.mu.Unlock()
	r.tracer.Event(obs.Span{
		Trace: j.trace, Job: j.id, Key: j.key, Kind: obs.KindHedge,
		Start: now, End: now, Note: "straggler: second dispatch launched",
	})
	r.log.Info("hedge launched", obs.TraceAttr(j.trace), "job", j.id)
}

// noteHedgeWin books a hedge dispatch finishing first.
func (r *Router) noteHedgeWin(j *rjob, replica string) {
	now := r.now().UnixNano()
	r.mu.Lock()
	r.ctrHedgeWins++
	r.mu.Unlock()
	r.tracer.Event(obs.Span{
		Trace: j.trace, Job: j.id, Key: j.key, Kind: obs.KindHedgeWin,
		Start: now, End: now, Note: "hedge on " + replica + " finished first",
	})
}

// noteBreakerFailure books a breaker strike, recording a trip event on
// the opening strike.
func (r *Router) noteBreakerFailure(replica string) {
	if r.breaker.OnFailure(replica) {
		now := r.now().UnixNano()
		r.tracer.Event(obs.Span{
			Kind: obs.KindBreakerTrip, Key: replica, Start: now, End: now,
			Note: "replica dispatch breaker opened",
		})
		r.log.Warn("replica breaker opened", "replica", replica)
	}
}

// finishAborted maps a dead driver context onto the job's terminal
// state: client cancel, router shutdown, or job timeout.
func (r *Router) finishAborted(j *rjob, ctx context.Context) {
	switch {
	case r.cancelWasRequested(j):
		r.finish(j, serve.JobCanceled, nil, "canceled by client")
	case errors.Is(ctx.Err(), context.DeadlineExceeded):
		r.finish(j, serve.JobFailed, nil, fmt.Sprintf("job timeout after %v", r.cfg.JobTimeout))
	default:
		r.finish(j, serve.JobCanceled, nil, "router shutting down")
	}
}

func dispatchErrString(res dispatchResult) string {
	if res.err != nil {
		return res.err.Error()
	}
	if res.st != nil {
		return fmt.Sprintf("replica state %s: %s", res.st.State, res.st.Error)
	}
	return "unknown dispatch outcome"
}

// remoteErrString extracts the replica's {"error": ...} body, falling
// back to the HTTP status line.
func remoteErrString(resp *http.Response, raw []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &e) == nil && e.Error != "" {
		return resp.Status + ": " + e.Error
	}
	return resp.Status
}
