package fleet

import (
	"fmt"
	"testing"
)

func fleetNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://replica-%d:8080", i)
	}
	return out
}

func TestRingPrefsCoverAllReplicasOnce(t *testing.T) {
	replicas := fleetNames(5)
	r := NewRing(replicas, 0)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("v1|w=matmul2d|n=%d", i)
		prefs := r.Prefs(key, nil)
		if len(prefs) != len(replicas) {
			t.Fatalf("Prefs(%q) has %d entries, want %d", key, len(prefs), len(replicas))
		}
		seen := map[string]bool{}
		for _, p := range prefs {
			if seen[p] {
				t.Fatalf("Prefs(%q) repeats %q: %v", key, p, prefs)
			}
			seen[p] = true
		}
	}
}

// TestRingOrderInsensitive pins cross-process stability: two routers
// configured with the same replicas in different order (or restarted)
// must agree on every placement, or failover determinism and cache
// affinity fall apart.
func TestRingOrderInsensitive(t *testing.T) {
	a := NewRing([]string{"http://a", "http://b", "http://c"}, 32)
	b := NewRing([]string{"http://c", "http://a", "http://b"}, 32)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key-%d", i)
		pa, pb := a.Prefs(key, nil), b.Prefs(key, nil)
		for j := range pa {
			if pa[j] != pb[j] {
				t.Fatalf("orderings disagree for %q: %v vs %v", key, pa, pb)
			}
		}
	}
}

// TestRingConsistency pins the ~1/N movement property: dropping one
// replica must only remap keys that replica owned.
func TestRingConsistency(t *testing.T) {
	all := fleetNames(5)
	full := NewRing(all, 0)
	without := NewRing(all[:4], 0) // drop replica-4
	moved, owned := 0, 0
	const keys = 2000
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("key-%d", i)
		before := full.Primary(key)
		after := without.Primary(key)
		if before == all[4] {
			owned++
			continue // had to move
		}
		if before != after {
			moved++
		}
	}
	if moved != 0 {
		t.Errorf("%d keys moved that were not on the removed replica", moved)
	}
	if owned == 0 {
		t.Errorf("removed replica owned no keys out of %d — distribution is broken", keys)
	}
}

func TestRingDistribution(t *testing.T) {
	replicas := fleetNames(4)
	r := NewRing(replicas, 0)
	counts := map[string]int{}
	const keys = 4000
	for i := 0; i < keys; i++ {
		counts[r.Primary(fmt.Sprintf("key-%d", i))]++
	}
	want := keys / len(replicas)
	for _, rep := range replicas {
		if c := counts[rep]; c < want/3 || c > want*3 {
			t.Errorf("replica %s owns %d of %d keys (mean %d) — distribution badly skewed", rep, c, keys, want)
		}
	}
}

func TestRingFailoverOrderStableUnderPrimaryLoss(t *testing.T) {
	r := NewRing(fleetNames(4), 0)
	key := "v1|w=cholesky|n=16"
	prefs := r.Prefs(key, nil)
	// The failover target (prefs[1]) must equal the primary a ring
	// without prefs[0] would choose: drivers and fresh routers agree.
	survivors := make([]string, 0, 3)
	for _, rep := range fleetNames(4) {
		if rep != prefs[0] {
			survivors = append(survivors, rep)
		}
	}
	if got := NewRing(survivors, 0).Primary(key); got != prefs[1] {
		t.Fatalf("failover disagreement: Prefs[1]=%s but shrunken ring primary=%s", prefs[1], got)
	}
}

func TestRingEmptyAndReuse(t *testing.T) {
	empty := NewRing(nil, 0)
	if got := empty.Prefs("k", nil); len(got) != 0 {
		t.Fatalf("empty ring returned prefs %v", got)
	}
	if p := empty.Primary("k"); p != "" {
		t.Fatalf("empty ring primary %q", p)
	}
	r := NewRing(fleetNames(3), 0)
	buf := make([]string, 0, 3)
	first := append([]string(nil), r.Prefs("a", buf)...)
	second := r.Prefs("a", buf)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("reused buffer changed the result: %v vs %v", first, second)
		}
	}
}
