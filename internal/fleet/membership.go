package fleet

import (
	"fmt"
	"net/url"
	"strings"
	"time"

	"memsched/internal/obs"
)

// AddReplica joins a replica to the fleet at runtime: the hash ring is
// rebuilt with the new member (consistent hashing keeps key movement to
// ~1/N) and the health prober starts probing it immediately. Idempotent
// errors: an existing member or a malformed URL is refused.
func (r *Router) AddReplica(replica string) error {
	replica = strings.TrimRight(strings.TrimSpace(replica), "/")
	if replica == "" {
		return fmt.Errorf("empty replica URL")
	}
	u, err := url.Parse(replica)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return fmt.Errorf("replica %q is not an http(s) base URL", replica)
	}
	r.mu.Lock()
	for _, m := range r.ring.Replicas() {
		if m == replica {
			r.mu.Unlock()
			return fmt.Errorf("replica %q already a member", replica)
		}
	}
	members := r.ring.Replicas()
	next := make([]string, len(members), len(members)+1)
	copy(next, members)
	next = append(next, replica)
	r.ring = NewRing(next, r.cfg.VNodes)
	r.ctrJoins++
	r.mu.Unlock()

	r.health.Add(replica)
	now := r.now().UnixNano()
	r.tracer.Event(obs.Span{
		Kind: obs.KindReplicaJoin, Key: replica, Start: now, End: now,
		Note: fmt.Sprintf("joined; membership now %d", len(next)),
	})
	r.log.Info("replica joined", "replica", replica, "members", len(next))
	return nil
}

// RemoveReplica leaves a replica from the fleet. The ring is rebuilt
// without it immediately, so no new job routes there. With force the
// replica also leaves the health view at once — its in-flight
// dispatches abort and fail over. Without force the leave is
// drain-aware: the replica is pinned at draining and removed from the
// health view only after its in-flight dispatches finish, so no work is
// redundantly re-executed. The last member cannot be removed.
func (r *Router) RemoveReplica(replica string, force bool) error {
	replica = strings.TrimRight(strings.TrimSpace(replica), "/")
	return r.removeReplica(replica, force, false)
}

func (r *Router) removeReplica(replica string, force, evict bool) error {
	r.mu.Lock()
	members := r.ring.Replicas()
	idx := -1
	for i, m := range members {
		if m == replica {
			idx = i
			break
		}
	}
	if idx < 0 {
		r.mu.Unlock()
		return fmt.Errorf("replica %q is not a member", replica)
	}
	if len(members) == 1 {
		r.mu.Unlock()
		return fmt.Errorf("refusing to remove the last member %q", replica)
	}
	next := make([]string, 0, len(members)-1)
	for _, m := range members {
		if m != replica {
			next = append(next, m)
		}
	}
	r.ring = NewRing(next, r.cfg.VNodes)
	if evict {
		r.ctrEvicts++
	} else {
		r.ctrLeaves++
	}
	r.mu.Unlock()

	mode := "drain"
	switch {
	case evict:
		mode = "auto-evict"
	case force:
		mode = "force"
	}
	now := r.now().UnixNano()
	r.tracer.Event(obs.Span{
		Kind: obs.KindReplicaLeave, Key: replica, Start: now, End: now,
		Note: fmt.Sprintf("left (%s); membership now %d", mode, len(next)),
	})
	r.log.Info("replica leaving", "replica", replica, "mode", mode, "members", len(next))

	if force || evict {
		r.health.Remove(replica)
		return nil
	}
	// Drain-aware: keep the replica in the health view (pinned at
	// draining so it can't be promoted back) until its in-flight
	// dispatches complete, then drop it. Removing it from Health early
	// would flip its State to down and abort those dispatches.
	r.health.MarkLeaving(replica)
	go r.awaitDrainAndRemove(replica)
	return nil
}

// awaitDrainAndRemove polls the replica's in-flight dispatch count and
// completes a drain-aware leave once it reaches zero (or the router
// shuts down).
func (r *Router) awaitDrainAndRemove(replica string) {
	t := time.NewTicker(20 * time.Millisecond)
	defer t.Stop()
	for {
		r.mu.Lock()
		active := r.dispActive[replica]
		r.mu.Unlock()
		if active == 0 {
			r.health.Remove(replica)
			r.log.Info("replica drained and removed", "replica", replica)
			return
		}
		select {
		case <-r.baseCtx.Done():
			r.health.Remove(replica)
			return
		case <-t.C:
		}
	}
}

// evictLoop is the auto-eviction janitor: a replica continuously down
// for EvictAfter is force-removed from the membership, so a permanently
// dead member stops absorbing probes and hash-ring share. Runs until
// shutdown; never evicts the last member.
func (r *Router) evictLoop() {
	defer r.janitorWg.Done()
	interval := r.cfg.EvictAfter / 4
	if interval < 100*time.Millisecond {
		interval = 100 * time.Millisecond
	}
	if interval > 5*time.Second {
		interval = 5 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-r.baseCtx.Done():
			return
		case <-t.C:
			for _, rep := range r.health.DownLongerThan(r.cfg.EvictAfter) {
				if err := r.removeReplica(rep, true, true); err == nil {
					r.log.Warn("replica auto-evicted", "replica", rep, "down_for", r.cfg.EvictAfter.String())
				}
			}
		}
	}
}

// MembershipCounters reports join/leave/evict totals.
func (r *Router) MembershipCounters() (joins, leaves, evicts int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ctrJoins, r.ctrLeaves, r.ctrEvicts
}
