package fleet

import (
	"io"
	"sort"

	"memsched/internal/buildinfo"
	"memsched/internal/obs"
)

// promPrefix namespaces the router's exposition metrics, distinct from
// the replica daemon's memschedd_ prefix so a scrape of both never
// collides.
const promPrefix = "memrouter_"

// Metrics is the router's JSON metrics snapshot (GET /metrics with
// Accept: application/json).
type Metrics struct {
	JobsSubmitted int64 `json:"jobs_submitted"`
	JobsDone      int64 `json:"jobs_done"`
	JobsFailed    int64 `json:"jobs_failed"`
	JobsCanceled  int64 `json:"jobs_canceled"`
	JobsInFlight  int   `json:"jobs_in_flight"`

	RejectedInvalid    int64 `json:"rejected_invalid"`
	RejectedShed       int64 `json:"rejected_shed"`
	RejectedDraining   int64 `json:"rejected_draining"`
	RejectedNoReplicas int64 `json:"rejected_no_replicas"`

	Dispatches     int64 `json:"dispatches"`
	DispatchErrors int64 `json:"dispatch_errors"`
	Failovers      int64 `json:"failovers"`
	HedgesStarted  int64 `json:"hedges_started"`
	HedgeWins      int64 `json:"hedge_wins"`
	// CacheServed counts jobs answered entirely from the result cache
	// (also included in JobsDone).
	CacheServed int64      `json:"cache_served"`
	Cache       CacheStats `json:"cache"`

	Replicas     []ReplicaView `json:"replicas"`
	BreakersOpen []string      `json:"breakers_open,omitempty"`
	BreakerTrips int64         `json:"breaker_trips"`

	// Membership change counters (dynamic join/leave/auto-evict).
	MembershipJoins  int64 `json:"membership_joins"`
	MembershipLeaves int64 `json:"membership_leaves"`
	MembershipEvicts int64 `json:"membership_evicts"`

	// Journal is the write-ahead journal view; nil when running without
	// one. JournalErrors counts failed appends (accept failures reject
	// the submission; complete failures only cost a replay).
	Journal       *JournalStats `json:"journal,omitempty"`
	JournalErrors int64         `json:"journal_errors,omitempty"`
	// Recovery summarizes the journal replay at startup.
	Recovery *RecoveryStats `json:"recovery,omitempty"`

	Draining      bool    `json:"draining"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// Snapshot copies the router counters.
func (r *Router) Snapshot() Metrics {
	r.mu.Lock()
	m := Metrics{
		JobsSubmitted:      r.ctrSubmitted + r.ctrCacheServed,
		JobsDone:           r.ctrDone,
		JobsFailed:         r.ctrFailed,
		JobsCanceled:       r.ctrCanceled,
		JobsInFlight:       r.inflight,
		RejectedInvalid:    r.ctrRejInvalid,
		RejectedShed:       r.ctrRejShed,
		RejectedDraining:   r.ctrRejDraining,
		RejectedNoReplicas: r.ctrRejNoReplicas,
		Dispatches:         r.ctrDispatches,
		DispatchErrors:     r.ctrDispatchErrs,
		Failovers:          r.ctrFailovers,
		HedgesStarted:      r.ctrHedges,
		HedgeWins:          r.ctrHedgeWins,
		CacheServed:        r.ctrCacheServed,
		MembershipJoins:    r.ctrJoins,
		MembershipLeaves:   r.ctrLeaves,
		MembershipEvicts:   r.ctrEvicts,
		JournalErrors:      r.ctrJournalErrs,
		Draining:           r.draining,
		UptimeSeconds:      r.now().Sub(r.started).Seconds(),
	}
	if r.recStats != (RecoveryStats{}) {
		rec := r.recStats
		m.Recovery = &rec
	}
	r.mu.Unlock()
	if r.journal != nil {
		js := r.journal.Stats()
		m.Journal = &js
	}
	m.Cache = r.CacheStats()
	m.Replicas = r.health.Snapshot()
	m.BreakersOpen = r.breaker.OpenKeys()
	sort.Strings(m.BreakersOpen)
	m.BreakerTrips = r.breaker.TripCount()
	return m
}

// WritePrometheus renders the router metrics in the Prometheus text
// exposition format (0.0.4). Snapshot-then-format, like the replica
// daemon: a slow scrape never holds the Submit mutex.
func (r *Router) WritePrometheus(w io.Writer) error {
	m := r.Snapshot()
	so, dd := r.sojourn.Snapshot(), r.dispatchDur.Snapshot()
	spanTotal, eventTotal := r.tracer.SpanTotal(), r.tracer.EventTotal()

	p := obs.NewPromWriter(w)

	version, goVersion := buildinfo.Resolve()
	p.Meta("memsched_build_info", "gauge", "Build identity of the running binary; always 1.")
	p.Sample("memsched_build_info", []obs.Label{
		{Name: "version", Value: version},
		{Name: "goversion", Value: goVersion},
	}, 1)

	counter := func(name, help string, v int64) {
		p.Meta(promPrefix+name, "counter", help)
		p.Sample(promPrefix+name, nil, float64(v))
	}
	counter("jobs_submitted_total", "Jobs accepted by the router (including cache hits).", m.JobsSubmitted)
	counter("jobs_done_total", "Jobs that completed successfully (including cache hits).", m.JobsDone)
	counter("jobs_failed_total", "Jobs that failed permanently.", m.JobsFailed)
	counter("jobs_canceled_total", "Jobs canceled by the client or a shutdown.", m.JobsCanceled)
	counter("dispatches_total", "Dispatch attempts sent to replicas.", m.Dispatches)
	counter("dispatch_errors_total", "Dispatch attempts that were lost or refused.", m.DispatchErrors)
	counter("failovers_total", "Accepted jobs re-dispatched after a replica loss.", m.Failovers)
	counter("hedges_total", "Hedge dispatches launched for stragglers.", m.HedgesStarted)
	counter("hedge_wins_total", "Jobs whose hedge dispatch finished first.", m.HedgeWins)
	counter("cache_served_total", "Jobs answered entirely from the result cache.", m.CacheServed)
	counter("cache_hits_total", "Result-cache lookups that hit.", m.Cache.Hits)
	counter("cache_misses_total", "Result-cache lookups that missed.", m.Cache.Misses)
	counter("cache_evictions_total", "Result-cache entries evicted by the LRU bounds.", m.Cache.Evictions)
	counter("breaker_trips_total", "Replica dispatch-breaker openings.", m.BreakerTrips)
	counter("trace_spans_total", "Lifecycle spans recorded into the flight-recorder ring.", int64(spanTotal))
	counter("trace_events_total", "Service events (failover/hedge/shed/cache/replica) recorded.", int64(eventTotal))

	p.Meta(promPrefix+"membership_changes_total", "counter", "Replica membership changes, by operation.")
	for _, mm := range []struct {
		op string
		v  int64
	}{
		{"join", m.MembershipJoins},
		{"leave", m.MembershipLeaves},
		{"evict", m.MembershipEvicts},
	} {
		p.Sample(promPrefix+"membership_changes_total", []obs.Label{{Name: "op", Value: mm.op}}, float64(mm.v))
	}
	if m.Journal != nil {
		counter("journal_records_total", "Write-ahead journal records appended by this process.", m.Journal.Records)
		counter("journal_errors_total", "Write-ahead journal append failures.", m.JournalErrors)
	}
	if m.Recovery != nil {
		counter("journal_recovered_complete_total", "Completed jobs re-registered from the journal at startup.", int64(m.Recovery.Complete))
		counter("journal_replayed_total", "Incomplete jobs re-dispatched from the journal at startup.", int64(m.Recovery.Replayed))
	}

	p.Meta(promPrefix+"rejected_total", "counter", "Submissions refused by the router, by reason.")
	for _, rr := range []struct {
		reason string
		v      int64
	}{
		{"invalid", m.RejectedInvalid},
		{"shed", m.RejectedShed},
		{"draining", m.RejectedDraining},
		{"no_replicas", m.RejectedNoReplicas},
	} {
		p.Sample(promPrefix+"rejected_total", []obs.Label{{Name: "reason", Value: rr.reason}}, float64(rr.v))
	}

	gauge := func(name, help string, v float64) {
		p.Meta(promPrefix+name, "gauge", help)
		p.Sample(promPrefix+name, nil, v)
	}
	gauge("jobs_in_flight", "Jobs accepted but not yet terminal.", float64(m.JobsInFlight))
	gauge("jobs_in_flight_limit", "In-flight bound beyond which submissions shed.", float64(r.cfg.MaxInFlight))
	gauge("cache_entries", "Result-cache entries resident.", float64(m.Cache.Entries))
	gauge("cache_bytes", "Result-cache payload bytes resident.", float64(m.Cache.Bytes))
	gauge("uptime_seconds", "Seconds since the router started.", m.UptimeSeconds)
	draining := 0.0
	if m.Draining {
		draining = 1
	}
	gauge("draining", "1 while a router drain is in progress.", draining)

	// Per-replica state: one sample per replica, value 0 up / 1
	// draining / 2 down, plus the last observed queue depth.
	p.Meta(promPrefix+"replica_state", "gauge", "Replica health: 0 up, 1 draining, 2 down.")
	for _, rv := range m.Replicas {
		p.Sample(promPrefix+"replica_state", []obs.Label{{Name: "replica", Value: rv.Replica}}, float64(rv.State))
	}
	p.Meta(promPrefix+"replica_queue_depth", "gauge", "Replica queue depth from its last /readyz body.")
	for _, rv := range m.Replicas {
		p.Sample(promPrefix+"replica_queue_depth", []obs.Label{{Name: "replica", Value: rv.Replica}}, float64(rv.QueueDepth))
	}
	p.Meta(promPrefix+"breaker_open", "gauge", "1 for each replica whose dispatch breaker is open or half-open.")
	for _, rep := range m.BreakersOpen {
		p.Sample(promPrefix+"breaker_open", []obs.Label{{Name: "replica", Value: rep}}, 1)
	}

	p.Meta(promPrefix+"sojourn_seconds", "histogram", "End-to-end routed-job latency (cache hits excluded).")
	p.Histogram(promPrefix+"sojourn_seconds", nil, so)
	p.Meta(promPrefix+"dispatch_seconds", "histogram", "One dispatch's accept-to-terminal latency on a replica.")
	p.Histogram(promPrefix+"dispatch_seconds", nil, dd)

	return p.Flush()
}

// Flight is the router's /debug/flight dump, mirroring the replica
// daemon's shape: recent job timelines plus the failover/hedge/shed/
// cache/replica event ring.
type Flight struct {
	SpansRecordedTotal  uint64         `json:"spans_recorded_total"`
	EventsRecordedTotal uint64         `json:"events_recorded_total"`
	Timelines           []obs.Timeline `json:"timelines"`
	Events              []obs.Span     `json:"events"`
}

// FlightDump assembles the router's flight-recorder view (n <= 0
// selects 32).
func (r *Router) FlightDump(n int) Flight {
	if n <= 0 {
		n = 32
	}
	events := r.tracer.Events()
	if len(events) > n {
		events = events[len(events)-n:]
	}
	return Flight{
		SpansRecordedTotal:  r.tracer.SpanTotal(),
		EventsRecordedTotal: r.tracer.EventTotal(),
		Timelines:           r.tracer.Timelines(n),
		Events:              events,
	}
}

// Spans returns the retained lifecycle spans (for the JSONL export).
func (r *Router) Spans() []obs.Span { return r.tracer.Spans() }
