package platform

import (
	"testing"
	"time"
)

func TestV100Presets(t *testing.T) {
	p := V100(4)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.NumGPUs != 4 || p.MemoryBytes != 500*MB {
		t.Fatalf("unexpected preset: %+v", p)
	}
	if got := p.PeakGFlops(); got != 4*13253 {
		t.Errorf("peak = %g", got)
	}
	u := V100Unlimited(2)
	if u.MemoryBytes != 32*GB {
		t.Errorf("unlimited memory = %d", u.MemoryBytes)
	}
	if got := p.CumulatedMemory(); got != 2000*MB {
		t.Errorf("cumulated = %d", got)
	}
}

func TestTaskDuration(t *testing.T) {
	p := V100(1)
	// A 2D product task: 2*960*960*3840 flops at 13253 GFlop/s is
	// ~534 us plus the 10 us launch latency.
	flops := 2.0 * 960 * 960 * 3840
	d := p.TaskDuration(flops)
	if d < 530*time.Microsecond || d > 560*time.Microsecond {
		t.Errorf("2D task duration = %v", d)
	}
}

func TestTransferDuration(t *testing.T) {
	p := V100(1)
	// 14.7456 MB at 12 GB/s is ~1.229 ms plus 10 us latency.
	d := p.TransferDuration(14_745_600)
	if d < 1200*time.Microsecond || d > 1300*time.Microsecond {
		t.Errorf("transfer duration = %v", d)
	}
	// Zero bytes still pays the latency.
	if got := p.TransferDuration(0); got != p.TransferLatency {
		t.Errorf("zero transfer = %v", got)
	}
}

func TestBusLimit(t *testing.T) {
	p := V100(1)
	totalFlops := 1e13 // ~0.7546 s of compute at peak
	limit := p.BusLimitBytes(totalFlops)
	sec := totalFlops / (13253 * 1e9)
	want := int64(sec * 12 * GB)
	if diff := limit - want; diff < -1000 || diff > 1000 {
		t.Errorf("bus limit = %d, want ~%d", limit, want)
	}
	// With 2 GPUs the compute time halves, so does the limit.
	p2 := V100(2)
	if l2 := p2.BusLimitBytes(totalFlops); l2 >= limit {
		t.Errorf("2-GPU limit %d not below 1-GPU limit %d", l2, limit)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := map[string]Platform{
		"gpus":    {NumGPUs: 0, MemoryBytes: 1, GFlopsPerGPU: 1, BusBytesPerSecond: 1},
		"memory":  {NumGPUs: 1, MemoryBytes: 0, GFlopsPerGPU: 1, BusBytesPerSecond: 1},
		"gflops":  {NumGPUs: 1, MemoryBytes: 1, GFlopsPerGPU: 0, BusBytesPerSecond: 1},
		"bus":     {NumGPUs: 1, MemoryBytes: 1, GFlopsPerGPU: 1, BusBytesPerSecond: 0},
		"latency": {NumGPUs: 1, MemoryBytes: 1, GFlopsPerGPU: 1, BusBytesPerSecond: 1, TransferLatency: -1},
	}
	for name, p := range cases {
		if p.Validate() == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
}

func TestMinComputeTime(t *testing.T) {
	p := V100(2)
	d := p.MinComputeTime(2 * 13253 * 1e9) // exactly one second of work
	if d < 999*time.Millisecond || d > 1001*time.Millisecond {
		t.Errorf("min compute time = %v", d)
	}
}
