// Package platform describes the simulated machine: K GPUs with private
// memories of bounded size, all connected to the host memory through one
// shared PCI Express bus (Figure 2 of the paper).
//
// The presets are calibrated against the Tesla V100 testbed of the paper:
// 13 253 GFlop/s of single-precision GEMM throughput per GPU, GPU memory
// artificially limited to 500 MB, and an effective PCIe bandwidth of
// 12 GB/s shared by all GPUs.
package platform

import (
	"fmt"
	"time"
)

// MB is 10^6 bytes, the unit used on every figure axis of the paper.
const MB = 1_000_000

// GB is 10^9 bytes.
const GB = 1_000_000_000

// Platform describes the simulated machine.
type Platform struct {
	// NumGPUs is K, the number of accelerators.
	NumGPUs int
	// MemoryBytes is the capacity of each GPU memory. The paper limits
	// it to 500 MB "to better distinguish the performance of different
	// strategies even on small datasets" (§V-A).
	MemoryBytes int64
	// GFlopsPerGPU is the sustained kernel throughput of one GPU, in
	// GFlop/s. A task of f flops runs for f/(GFlopsPerGPU*1e9) seconds
	// plus KernelLatency.
	GFlopsPerGPU float64
	// GFlopsPerGPUList, when non-empty, gives each GPU its own
	// throughput (heterogeneous accelerators, the extension §III of the
	// paper mentions and DMDA was originally designed for). Its length
	// must equal NumGPUs; GFlopsPerGPU is then ignored except as a
	// fallback for out-of-range queries.
	GFlopsPerGPUList []float64
	// BusBytesPerSecond is the effective bandwidth of the shared
	// host-to-GPU bus. Transfers to all GPUs serialize on this bus.
	BusBytesPerSecond float64
	// TransferLatency is the fixed per-transfer setup cost.
	TransferLatency time.Duration
	// KernelLatency is the fixed per-kernel launch cost.
	KernelLatency time.Duration
	// NVLinkBytesPerSecond, when positive, enables direct GPU-to-GPU
	// transfers over per-GPU NVLink channels that bypass the shared PCI
	// bus. This implements the extension the paper lists as future work
	// ("Moving data from a nearby GPU is indeed usually faster than
	// loading it from the main memory", SVI).
	NVLinkBytesPerSecond float64
	// NVLinkLatency is the fixed setup cost of one peer transfer.
	NVLinkLatency time.Duration
}

// V100 returns the paper's experimental platform with the given number of
// GPUs and the 500 MB memory restriction.
func V100(numGPUs int) Platform {
	return Platform{
		NumGPUs:           numGPUs,
		MemoryBytes:       500 * MB,
		GFlopsPerGPU:      13253,
		BusBytesPerSecond: 12 * GB,
		TransferLatency:   10 * time.Microsecond,
		KernelLatency:     10 * time.Microsecond,
	}
}

// V100NVLink returns the V100 platform with NVLink 2.0 peer links
// enabled (25 GB/s effective per direction), the future-work extension of
// the paper's SVI.
func V100NVLink(numGPUs int) Platform {
	p := V100(numGPUs)
	p.NVLinkBytesPerSecond = 25 * GB
	p.NVLinkLatency = 5 * time.Microsecond
	return p
}

// CPUDisk returns the out-of-core scenario of the paper's introduction:
// "a computer made of several CPUs with restricted private memory, and
// limited bandwidth for the communication between memories and disk".
// Numbers model one NUMA socket per "GPU": 2 TFlop/s of sustained SIMD
// throughput, 4 GB of private memory, and a 2 GB/s shared disk link —
// the same compute-to-transfer ratio regime as the V100 testbed.
func CPUDisk(numCPUs int) Platform {
	return Platform{
		NumGPUs:           numCPUs,
		MemoryBytes:       4 * GB,
		GFlopsPerGPU:      2000,
		BusBytesPerSecond: 2 * GB,
		TransferLatency:   100 * time.Microsecond,
		KernelLatency:     5 * time.Microsecond,
	}
}

// V100Unlimited returns the platform used by Figure 13: the same machine
// with the full 32 GB of memory per GPU, i.e. no effective memory limit.
func V100Unlimited(numGPUs int) Platform {
	p := V100(numGPUs)
	p.MemoryBytes = 32 * GB
	return p
}

// Validate reports an error if the platform description is not usable.
func (p Platform) Validate() error {
	switch {
	case p.NumGPUs <= 0:
		return fmt.Errorf("platform: NumGPUs = %d, must be positive", p.NumGPUs)
	case p.MemoryBytes <= 0:
		return fmt.Errorf("platform: MemoryBytes = %d, must be positive", p.MemoryBytes)
	case p.GFlopsPerGPU <= 0:
		return fmt.Errorf("platform: GFlopsPerGPU = %g, must be positive", p.GFlopsPerGPU)
	case p.BusBytesPerSecond <= 0:
		return fmt.Errorf("platform: BusBytesPerSecond = %g, must be positive", p.BusBytesPerSecond)
	case p.TransferLatency < 0 || p.KernelLatency < 0 || p.NVLinkLatency < 0:
		return fmt.Errorf("platform: negative latency")
	case p.NVLinkBytesPerSecond < 0:
		return fmt.Errorf("platform: negative NVLink bandwidth")
	}
	if len(p.GFlopsPerGPUList) > 0 {
		if len(p.GFlopsPerGPUList) != p.NumGPUs {
			return fmt.Errorf("platform: %d per-GPU throughputs for %d GPUs", len(p.GFlopsPerGPUList), p.NumGPUs)
		}
		for i, g := range p.GFlopsPerGPUList {
			if g <= 0 {
				return fmt.Errorf("platform: GPU %d throughput %g, must be positive", i, g)
			}
		}
	}
	return nil
}

// GFlopsOn returns the kernel throughput of one specific GPU.
func (p Platform) GFlopsOn(gpu int) float64 {
	if gpu >= 0 && gpu < len(p.GFlopsPerGPUList) {
		return p.GFlopsPerGPUList[gpu]
	}
	return p.GFlopsPerGPU
}

// TaskDurationOn returns the simulated execution time of a kernel on one
// specific GPU, including launch latency.
func (p Platform) TaskDurationOn(gpu int, flops float64) time.Duration {
	sec := flops / (p.GFlopsOn(gpu) * 1e9)
	return p.KernelLatency + time.Duration(sec*float64(time.Second))
}

// Heterogeneous returns the V100 platform with the given per-GPU
// throughputs (in GFlop/s) instead of uniform speeds.
func Heterogeneous(gflops ...float64) Platform {
	p := V100(len(gflops))
	p.GFlopsPerGPUList = append([]float64(nil), gflops...)
	return p
}

// TaskDuration returns the simulated execution time of a kernel of the
// given flops on one GPU, including launch latency.
func (p Platform) TaskDuration(flops float64) time.Duration {
	sec := flops / (p.GFlopsPerGPU * 1e9)
	return p.KernelLatency + time.Duration(sec*float64(time.Second))
}

// TransferDuration returns the simulated time the shared bus is occupied
// by one host-to-GPU transfer of the given size, including setup latency.
func (p Platform) TransferDuration(bytes int64) time.Duration {
	sec := float64(bytes) / p.BusBytesPerSecond
	return p.TransferLatency + time.Duration(sec*float64(time.Second))
}

// PeerTransferDuration returns the simulated duration of one NVLink
// GPU-to-GPU transfer. It panics if NVLink is disabled.
func (p Platform) PeerTransferDuration(bytes int64) time.Duration {
	if p.NVLinkBytesPerSecond <= 0 {
		panic("platform: PeerTransferDuration without NVLink")
	}
	sec := float64(bytes) / p.NVLinkBytesPerSecond
	return p.NVLinkLatency + time.Duration(sec*float64(time.Second))
}

// HasNVLink reports whether peer GPU-to-GPU transfers are enabled.
func (p Platform) HasNVLink() bool { return p.NVLinkBytesPerSecond > 0 }

// PeakGFlops returns the aggregate kernel throughput of the machine, the
// "GFlop/s max" horizontal line of the paper's figures.
func (p Platform) PeakGFlops() float64 {
	if len(p.GFlopsPerGPUList) > 0 {
		var s float64
		for _, g := range p.GFlopsPerGPUList {
			s += g
		}
		return s
	}
	return p.GFlopsPerGPU * float64(p.NumGPUs)
}

// MinComputeTime returns the time needed to process totalFlops at peak
// throughput, ignoring all data movement: the denominator of the
// "PCI bus limit" reference line.
func (p Platform) MinComputeTime(totalFlops float64) time.Duration {
	return time.Duration(totalFlops / p.PeakGFlops() / 1e9 * float64(time.Second))
}

// BusLimitBytes returns the maximum number of bytes the shared bus can
// move during the optimal computation time for totalFlops. A strategy
// transferring more than this necessarily spends longer on transfers than
// the optimal computation time (the black dotted curve of Figures 4 and 7).
func (p Platform) BusLimitBytes(totalFlops float64) int64 {
	sec := p.MinComputeTime(totalFlops).Seconds()
	return int64(sec * p.BusBytesPerSecond)
}

// CumulatedMemory returns the total memory of all GPUs, used by the
// "fits in cumulated memory" vertical reference lines.
func (p Platform) CumulatedMemory() int64 {
	return p.MemoryBytes * int64(p.NumGPUs)
}
