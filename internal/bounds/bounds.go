// Package bounds computes performance bounds for a (workload, platform)
// pair: the reference lines of the paper's figures ("GFlop/s max", the
// "PCI bus limit") and makespan lower bounds that no schedule can beat.
// The simulator's results are validated against them in tests.
package bounds

import (
	"time"

	"memsched/internal/platform"
	"memsched/internal/taskgraph"
)

// UsedDataBytes returns the total footprint of the data read by at least
// one task: the compulsory traffic every schedule must move at least once.
func UsedDataBytes(inst *taskgraph.Instance) int64 {
	var s int64
	for _, d := range inst.AllData() {
		if len(inst.Consumers(d.ID)) > 0 {
			s += d.Size
		}
	}
	return s
}

// CompulsoryLoads returns the minimum number of load operations of any
// schedule: each data item read by some task must be loaded at least once
// on at least one GPU.
func CompulsoryLoads(inst *taskgraph.Instance) int {
	n := 0
	for _, d := range inst.AllData() {
		if len(inst.Consumers(d.ID)) > 0 {
			n++
		}
	}
	return n
}

// MakespanLowerBound returns a lower bound on the makespan of any
// schedule of inst on plat: the maximum of
//
//   - the compute bound: total flops at aggregate peak throughput, plus
//     one kernel latency per task spread over the GPUs;
//   - the bus bound: compulsory traffic at full bus bandwidth (peer
//     links cannot help the first copy of each data item, which must
//     cross the host bus);
//   - the straggler bound: the single longest task on the fastest GPU.
func MakespanLowerBound(inst *taskgraph.Instance, plat platform.Platform) time.Duration {
	compute := plat.MinComputeTime(inst.TotalFlops()) +
		time.Duration(int64(plat.KernelLatency)*int64(inst.NumTasks())/int64(plat.NumGPUs))

	busSec := float64(UsedDataBytes(inst)) / plat.BusBytesPerSecond
	bus := time.Duration(busSec * float64(time.Second))

	var maxFlops float64
	for _, t := range inst.Tasks() {
		if t.Flops > maxFlops {
			maxFlops = t.Flops
		}
	}
	fastest := plat.GFlopsPerGPU
	for g := 0; g < plat.NumGPUs; g++ {
		if v := plat.GFlopsOn(g); v > fastest {
			fastest = v
		}
	}
	straggler := plat.KernelLatency + time.Duration(maxFlops/(fastest*1e9)*float64(time.Second))

	lb := compute
	if bus > lb {
		lb = bus
	}
	if straggler > lb {
		lb = straggler
	}
	return lb
}

// ThroughputUpperBound returns the maximum achievable GFlop/s of inst on
// plat, derived from MakespanLowerBound. Every simulated result must stay
// at or below it.
func ThroughputUpperBound(inst *taskgraph.Instance, plat platform.Platform) float64 {
	lb := MakespanLowerBound(inst, plat)
	if lb <= 0 {
		return plat.PeakGFlops()
	}
	return inst.TotalFlops() / lb.Seconds() / 1e9
}

// BusLimitBytes is re-exported here next to the other bounds: the maximum
// traffic the bus can carry within the optimal compute time (the black
// dotted curve of Figures 4 and 7).
func BusLimitBytes(inst *taskgraph.Instance, plat platform.Platform) int64 {
	return plat.BusLimitBytes(inst.TotalFlops())
}
