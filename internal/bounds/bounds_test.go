package bounds_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"memsched/internal/bounds"
	"memsched/internal/expr"
	"memsched/internal/platform"
	"memsched/internal/sched"
	"memsched/internal/taskgraph"
	"memsched/internal/workload"
)

func TestCompulsoryCountsSparse(t *testing.T) {
	inst := workload.Sparse2D(40, 0.05, 3)
	// Sparse instances keep all 80 data items but only consume some.
	if got := bounds.CompulsoryLoads(inst); got >= inst.NumData() {
		t.Fatalf("compulsory %d should be below %d declared data", got, inst.NumData())
	}
	if bounds.UsedDataBytes(inst) >= inst.WorkingSetBytes() {
		t.Fatal("used bytes should be below the declared working set")
	}
	dense := workload.Matmul2D(10)
	if bounds.CompulsoryLoads(dense) != dense.NumData() {
		t.Fatal("dense instance: every data is used")
	}
	if bounds.UsedDataBytes(dense) != dense.WorkingSetBytes() {
		t.Fatal("dense instance: used bytes = working set")
	}
}

func TestMakespanLowerBoundComponents(t *testing.T) {
	inst := workload.Matmul2D(10)
	plat := platform.V100(1)
	lb := bounds.MakespanLowerBound(inst, plat)
	if lb < plat.MinComputeTime(inst.TotalFlops()) {
		t.Fatal("bound below pure compute time")
	}
	// A bus-starved platform makes the bus term dominate.
	slow := plat
	slow.BusBytesPerSecond = 1e6 // 1 MB/s: ~295 seconds for the working set
	lb2 := bounds.MakespanLowerBound(inst, slow)
	if lb2.Seconds() < 290 {
		t.Fatalf("bus-starved bound %v too small", lb2)
	}
	if bounds.BusLimitBytes(inst, plat) <= 0 {
		t.Fatal("bus limit must be positive")
	}
}

// TestNoStrategyBeatsBound is the central property: no strategy on any
// workload may exceed the throughput upper bound.
func TestNoStrategyBeatsBound(t *testing.T) {
	strats := []sched.Strategy{
		sched.EagerStrategy(),
		sched.DMDARStrategy(),
		sched.MHFPStrategy(false),
		sched.HMetisRStrategy(false),
		sched.DARTSStrategy(sched.DARTSOptions{LUF: true}),
	}
	insts := []*taskgraph.Instance{
		workload.Matmul2D(20),
		workload.Cholesky(8),
		workload.Sparse2D(40, 0.1, 2),
	}
	for _, gpus := range []int{1, 2, 4} {
		plat := platform.V100(gpus)
		for _, inst := range insts {
			bound := bounds.ThroughputUpperBound(inst, plat)
			for _, strat := range strats {
				res, err := expr.RunOne(inst, strat, plat, 0, 1, false)
				if err != nil {
					t.Fatal(err)
				}
				if res.GFlops > bound*1.001 { // tiny float slack
					t.Fatalf("%s on %s (%d GPUs): %.0f GFlop/s beats bound %.0f",
						strat.Label, inst.Name(), gpus, res.GFlops, bound)
				}
			}
		}
	}
}

// TestBoundsRandomInstancesProperty: bounds are positive on random
// instances, and doubling the GPU count never raises the makespan lower
// bound.
func TestBoundsRandomInstancesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := workload.Random(5+rng.Intn(30), 3+rng.Intn(8), 3, seed)
		plat := platform.V100(1 + rng.Intn(4))
		lb := bounds.MakespanLowerBound(inst, plat)
		ub := bounds.ThroughputUpperBound(inst, plat)
		if lb <= 0 || ub <= 0 {
			return false
		}
		plat2 := plat
		plat2.NumGPUs = plat.NumGPUs * 2
		return bounds.MakespanLowerBound(inst, plat2) <= lb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
