package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NopLogger returns a logger that discards everything with every level
// disabled, so callers guarding hot-path logs with Enabled() pay one
// branch and zero allocations. (slog.DiscardHandler arrives in a later
// Go release than this module targets.)
func NopLogger() *slog.Logger { return slog.New(nopHandler{}) }

type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (nopHandler) WithAttrs([]slog.Attr) slog.Handler        { return nopHandler{} }
func (nopHandler) WithGroup(string) slog.Handler             { return nopHandler{} }

// NewLogger builds the daemon logger from the -log-format/-log-level
// flag values: format "text" or "json", level "debug", "info", "warn"
// or "error".
func NewLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "", "info":
		lv = slog.LevelInfo
	case "debug":
		lv = slog.LevelDebug
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q (debug, info, warn, error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("unknown log format %q (text, json)", format)
	}
}

// TraceAttr renders a trace ID the way every log line should: zero
// means "no trace" and logs as the empty string.
func TraceAttr(trace uint64) slog.Attr {
	if trace == 0 {
		return slog.String("trace", "")
	}
	return slog.String("trace", fmt.Sprintf("%08x", trace))
}
