package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

func TestRingWrapAround(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Record(Span{Trace: uint64(i + 1)})
	}
	if r.Total() != 10 {
		t.Fatalf("total = %d", r.Total())
	}
	got := r.Snapshot()
	if len(got) != 4 {
		t.Fatalf("retained %d spans, want 4", len(got))
	}
	for i, s := range got {
		if want := uint64(7 + i); s.Trace != want {
			t.Fatalf("span %d trace = %d, want %d (oldest-first)", i, s.Trace, want)
		}
	}
}

func TestRingPartialAndDisabled(t *testing.T) {
	r := NewRing(8)
	r.Record(Span{Trace: 1})
	r.Record(Span{Trace: 2})
	if got := r.Snapshot(); len(got) != 2 || got[0].Trace != 1 || got[1].Trace != 2 {
		t.Fatalf("partial snapshot = %+v", got)
	}
	d := NewRing(0)
	d.Record(Span{Trace: 1})
	if d.Snapshot() != nil || d.Total() != 0 {
		t.Fatal("disabled ring retained spans")
	}
	var nilRing *Ring
	nilRing.Record(Span{}) // must not panic
	if nilRing.Snapshot() != nil {
		t.Fatal("nil ring snapshot")
	}
}

func TestTracerSampling(t *testing.T) {
	tr := NewTracer(16, 16, 2) // every 2nd submission sampled
	var sampled int
	for i := 0; i < 10; i++ {
		if _, ok := tr.Begin(); ok {
			sampled++
		}
	}
	if sampled != 5 {
		t.Fatalf("sampled %d of 10 with sampleEvery=2", sampled)
	}
	off := NewTracer(16, 16, 0)
	if _, ok := off.Begin(); ok {
		t.Fatal("sampleEvery=0 sampled a trace")
	}
}

func TestTracerTimelines(t *testing.T) {
	tr := NewTracer(64, 16, 1)
	for j := 1; j <= 3; j++ {
		id := fmt.Sprintf("job-%06d", j)
		trace, _ := tr.Begin()
		tr.Span(Span{Trace: trace, Job: id, Kind: KindAdmit, Start: int64(j), End: int64(j)})
		tr.Span(Span{Trace: trace, Job: id, Kind: KindAttempt, Attempt: 1, Start: int64(j), End: int64(j + 10)})
		tr.Span(Span{Trace: trace, Job: id, Kind: KindDone, Start: int64(j + 10), End: int64(j + 10)})
	}
	tr.Event(Span{Kind: KindShed, Note: "queue full"})

	lines := tr.Timelines(2)
	if len(lines) != 2 || lines[0].Job != "job-000002" || lines[1].Job != "job-000003" {
		t.Fatalf("timelines = %+v", lines)
	}
	for _, l := range lines {
		if len(l.Spans) != 3 || l.Spans[0].Kind != KindAdmit || l.Spans[2].Kind != KindDone {
			t.Fatalf("timeline %s spans = %+v", l.Job, l.Spans)
		}
	}
	if got := tr.JobSpans("job-000001"); len(got) != 3 {
		t.Fatalf("JobSpans = %d spans, want 3", len(got))
	}
	if got := tr.JobSpans("job-999999"); len(got) != 0 {
		t.Fatalf("unknown job spans = %+v", got)
	}
	if ev := tr.Events(); len(ev) != 1 || ev[0].Kind != KindShed {
		t.Fatalf("events = %+v", ev)
	}
}

func TestWriteJSONL(t *testing.T) {
	spans := []Span{
		{Trace: 7, Job: "job-000001", Key: "matmul2d|DARTS+LUF", Kind: KindAttempt, Attempt: 2, Start: 100, End: 350, Note: "ok"},
		{Trace: 8, Kind: KindBreakerTrip, Key: "cholesky|eager", Start: 400, End: 400},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, spans); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var lines []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d lines", len(lines))
	}
	if lines[0]["kind"] != "attempt" || lines[0]["dur_ns"] != float64(250) || lines[0]["attempt"] != float64(2) {
		t.Fatalf("line 0 = %v", lines[0])
	}
	if lines[1]["kind"] != "breaker-trip" || lines[1]["job"] != nil {
		t.Fatalf("line 1 = %v", lines[1])
	}
}

func TestSpanKindStrings(t *testing.T) {
	for k := KindAdmit; k <= KindRecover; k++ {
		if s := k.String(); s == "unknown" || s == "" {
			t.Fatalf("kind %d has no name", k)
		}
		if got := KindByName(k.String()); got != k {
			t.Fatalf("KindByName(%q) = %d, want %d", k.String(), got, k)
		}
	}
	if SpanKind(0).String() != "unknown" || SpanKind(200).String() != "unknown" {
		t.Fatal("out-of-range kinds must stringify as unknown")
	}
}

func TestRecordDoesNotAllocate(t *testing.T) {
	r := NewRing(128)
	s := Span{Trace: 1, Job: "job-000001", Key: "matmul2d|DARTS+LUF", Kind: KindAttempt, Note: strings.Repeat("x", 64)}
	allocs := testing.AllocsPerRun(200, func() { r.Record(s) })
	if allocs != 0 {
		t.Fatalf("Ring.Record allocates %.1f times per call, want 0", allocs)
	}
	var h Histogram
	allocs = testing.AllocsPerRun(200, func() { h.Observe(1234567) })
	if allocs != 0 {
		t.Fatalf("Histogram.Observe allocates %.1f times per call, want 0", allocs)
	}
}
