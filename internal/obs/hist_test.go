package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestBucketOf(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{-time.Second, 0}, // negative clamps into the first bucket
		{0, 0},
		{time.Nanosecond, 0},
		{HistMinBucket, 0},              // exactly on the first bound
		{HistMinBucket + 1, 1},          // just past it
		{2 * HistMinBucket, 1},          // exactly on the second bound
		{2*HistMinBucket + 1, 2},        // just past the second bound
		{HistMinBucket << 10, 10},       // exactly on a deep bound
		{(HistMinBucket << 10) + 1, 11}, // just past it
		{HistMinBucket << (HistBuckets - 1), HistBuckets - 1}, // last finite bound
		{HistMinBucket<<(HistBuckets-1) + 1, HistBuckets},     // overflow
		{time.Duration(math.MaxInt64), HistBuckets},
	}
	for _, c := range cases {
		if got := bucketOf(c.d); got != c.want {
			t.Errorf("bucketOf(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Count != 0 || s.SumNS != 0 {
		t.Fatalf("empty snapshot = %+v", s)
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if !math.IsNaN(s.Quantile(q)) {
			t.Fatalf("Quantile(%g) of empty histogram = %g, want NaN", q, s.Quantile(q))
		}
	}
}

func TestHistogramSingleSample(t *testing.T) {
	var h Histogram
	h.Observe(3 * time.Millisecond) // bucket 5: (1.6ms, 3.2ms]
	s := h.Snapshot()
	if s.Count != 1 || s.SumNS != int64(3*time.Millisecond) {
		t.Fatalf("snapshot = %+v", s)
	}
	want := BucketBound(5)
	for _, q := range []float64{0.001, 0.5, 0.99, 1} {
		if got := s.Quantile(q); got != want {
			t.Fatalf("Quantile(%g) = %g, want %g", q, got, want)
		}
	}
}

func TestHistogramBucketBoundaryValues(t *testing.T) {
	var h Histogram
	// An observation exactly on a bucket's upper bound belongs to that
	// bucket (le is inclusive, matching Prometheus).
	h.Observe(HistMinBucket)     // bucket 0
	h.Observe(2 * HistMinBucket) // bucket 1
	h.Observe(4 * HistMinBucket) // bucket 2
	s := h.Snapshot()
	for i := 0; i < 3; i++ {
		if s.Counts[i] != 1 {
			t.Fatalf("bucket %d = %d, want 1; counts=%v", i, s.Counts[i], s.Counts[:4])
		}
	}
	if got := s.Quantile(1.0 / 3); got != BucketBound(0) {
		t.Fatalf("p33 = %g, want %g", got, BucketBound(0))
	}
	if got := s.Quantile(1); got != BucketBound(2) {
		t.Fatalf("p100 = %g, want %g", got, BucketBound(2))
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	var h Histogram
	huge := HistMinBucket << HistBuckets // beyond the last finite bound
	h.Observe(time.Millisecond)
	h.Observe(huge)
	s := h.Snapshot()
	if s.Counts[HistBuckets] != 1 {
		t.Fatalf("overflow bucket = %d, want 1", s.Counts[HistBuckets])
	}
	if got := s.Quantile(1); !math.IsInf(got, 1) {
		t.Fatalf("p100 with overflow sample = %g, want +Inf", got)
	}
	if got := s.Quantile(0.5); math.IsInf(got, 1) {
		t.Fatalf("p50 = %g, want finite", got)
	}
}

func TestHistogramMergeDisjoint(t *testing.T) {
	var a, b Histogram
	a.Observe(time.Millisecond)
	a.Observe(2 * time.Millisecond)
	b.Observe(time.Second)
	sa, sb := a.Snapshot(), b.Snapshot()
	merged := sa
	merged.Merge(sb)
	if merged.Count != 3 {
		t.Fatalf("merged count = %d", merged.Count)
	}
	if merged.SumNS != sa.SumNS+sb.SumNS {
		t.Fatalf("merged sum = %d, want %d", merged.SumNS, sa.SumNS+sb.SumNS)
	}
	for i := range merged.Counts {
		if merged.Counts[i] != sa.Counts[i]+sb.Counts[i] {
			t.Fatalf("bucket %d: %d != %d+%d", i, merged.Counts[i], sa.Counts[i], sb.Counts[i])
		}
	}
	// The merged p100 must come from b's sample.
	if got, want := merged.Quantile(1), sb.Quantile(1); got != want {
		t.Fatalf("merged p100 = %g, want %g", got, want)
	}
}

func TestQuantileMonotonicity(t *testing.T) {
	var h Histogram
	for i := 0; i < 500; i++ {
		h.Observe(time.Duration(i%97+1) * 317 * time.Microsecond)
	}
	s := h.Snapshot()
	prev := math.Inf(-1)
	for q := 0.01; q <= 1.0; q += 0.01 {
		got := s.Quantile(q)
		if got < prev {
			t.Fatalf("Quantile(%g) = %g < Quantile at lower q = %g", q, got, prev)
		}
		prev = got
	}
	// Quantiles always land on bucket bounds — never interpolated.
	onBound := func(v float64) bool {
		for i := 0; i <= HistBuckets; i++ {
			if v == BucketBound(i) {
				return true
			}
		}
		return false
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if v := s.Quantile(q); !onBound(v) {
			t.Fatalf("Quantile(%g) = %g is not a bucket bound", q, v)
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const goroutines, per = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(g*i+1) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*per {
		t.Fatalf("count = %d, want %d", s.Count, goroutines*per)
	}
	var sum uint64
	for _, c := range s.Counts {
		sum += c
	}
	if sum != s.Count {
		t.Fatalf("bucket sum %d != count %d", sum, s.Count)
	}
}

func TestHistVec(t *testing.T) {
	var v HistVec
	v.Get("a|x").Observe(time.Millisecond)
	v.Get("a|x").Observe(2 * time.Millisecond)
	v.Get("b|y").Observe(time.Second)
	snap := v.Snapshot()
	if len(snap) != 2 || snap["a|x"].Count != 2 || snap["b|y"].Count != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
}
