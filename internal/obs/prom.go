package obs

import (
	"bufio"
	"io"
	"math"
	"strconv"
	"strings"
)

// PromContentType is the Prometheus text exposition content type served
// by /metrics.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// Label is one Prometheus label pair.
type Label struct {
	Name, Value string
}

// PromWriter renders the Prometheus text exposition format (0.0.4).
// Errors stick: callers write the whole page and check Flush once.
// Meta must precede the first Sample of its family — that ordering is
// what the CI exposition checker (cmd/promcheck) enforces on the
// scraped output.
type PromWriter struct {
	w   *bufio.Writer
	err error
}

// NewPromWriter wraps w.
func NewPromWriter(w io.Writer) *PromWriter {
	return &PromWriter{w: bufio.NewWriter(w)}
}

// Meta writes the # HELP and # TYPE header of one metric family.
// typ is counter, gauge, histogram, summary or untyped.
func (p *PromWriter) Meta(name, typ, help string) {
	if p.err != nil {
		return
	}
	_, p.err = p.w.WriteString("# HELP " + name + " " + escapeHelp(help) + "\n# TYPE " + name + " " + typ + "\n")
}

// Sample writes one sample line.
func (p *PromWriter) Sample(name string, labels []Label, v float64) {
	if p.err != nil {
		return
	}
	var sb strings.Builder
	sb.WriteString(name)
	writeLabels(&sb, labels, "", 0)
	sb.WriteByte(' ')
	sb.WriteString(FormatPromValue(v))
	sb.WriteByte('\n')
	_, p.err = p.w.WriteString(sb.String())
}

// Histogram writes the _bucket/_sum/_count sample set of one histogram
// snapshot under name with the given extra labels. Meta(name,
// "histogram", ...) must have been written once for the family.
func (p *PromWriter) Histogram(name string, labels []Label, s HistSnapshot) {
	if p.err != nil {
		return
	}
	var sb strings.Builder
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		sb.WriteString(name)
		sb.WriteString("_bucket")
		writeLabels(&sb, labels, "le", BucketBound(i))
		sb.WriteByte(' ')
		sb.WriteString(strconv.FormatUint(cum, 10))
		sb.WriteByte('\n')
	}
	sb.WriteString(name)
	sb.WriteString("_sum")
	writeLabels(&sb, labels, "", 0)
	sb.WriteByte(' ')
	sb.WriteString(FormatPromValue(s.SumSeconds()))
	sb.WriteByte('\n')
	sb.WriteString(name)
	sb.WriteString("_count")
	writeLabels(&sb, labels, "", 0)
	sb.WriteByte(' ')
	sb.WriteString(strconv.FormatUint(s.Count, 10))
	sb.WriteByte('\n')
	_, p.err = p.w.WriteString(sb.String())
}

// Flush flushes the buffered page and returns the first error hit.
func (p *PromWriter) Flush() error {
	if p.err != nil {
		return p.err
	}
	return p.w.Flush()
}

// writeLabels renders {a="b",...}, appending an le label when leName is
// non-empty. No braces are written when there are no labels at all.
func writeLabels(sb *strings.Builder, labels []Label, leName string, le float64) {
	if len(labels) == 0 && leName == "" {
		return
	}
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Name)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(l.Value))
		sb.WriteByte('"')
	}
	if leName != "" {
		if len(labels) > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(leName)
		sb.WriteString(`="`)
		sb.WriteString(FormatPromValue(le))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
}

// FormatPromValue renders a float the way the exposition format expects:
// shortest round-trip decimal, +Inf/-Inf/NaN spelled out.
func FormatPromValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format
// (backslash, double quote, newline).
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var sb strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// escapeHelp escapes a HELP text (backslash and newline only; quotes are
// legal there).
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	var sb strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}
