package obs

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestPromWriterBasic(t *testing.T) {
	var buf bytes.Buffer
	p := NewPromWriter(&buf)
	p.Meta("x_jobs_total", "counter", "Jobs.")
	p.Sample("x_jobs_total", nil, 42)
	p.Meta("x_depth", "gauge", "Queue \\ depth\nnow.")
	p.Sample("x_depth", []Label{{"q", `a"b\c`}, {"w", "plain"}}, 7)
	p.Sample("x_depth", []Label{{"q", "inf"}}, math.Inf(1))
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP x_jobs_total Jobs.\n# TYPE x_jobs_total counter\nx_jobs_total 42\n",
		"# HELP x_depth Queue \\\\ depth\\nnow.\n# TYPE x_depth gauge\n",
		`x_depth{q="a\"b\\c",w="plain"} 7` + "\n",
		`x_depth{q="inf"} +Inf` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestPromWriterHistogram(t *testing.T) {
	var h Histogram
	h.Observe(time.Millisecond) // bucket 4 (0.8ms, 1.6ms]
	h.Observe(time.Millisecond)
	h.Observe(HistMinBucket << HistBuckets) // overflow
	var buf bytes.Buffer
	p := NewPromWriter(&buf)
	p.Meta("x_wait_seconds", "histogram", "Wait.")
	p.Histogram("x_wait_seconds", []Label{{"workload", "matmul2d"}}, h.Snapshot())
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Cumulative counts: buckets below 4 are 0, 4..last finite are 2,
	// +Inf is 3; _count matches the +Inf bucket.
	for _, want := range []string{
		`x_wait_seconds_bucket{workload="matmul2d",le="0.0008"} 0`,
		`x_wait_seconds_bucket{workload="matmul2d",le="0.0016"} 2`,
		`x_wait_seconds_bucket{workload="matmul2d",le="+Inf"} 3`,
		`x_wait_seconds_count{workload="matmul2d"} 3`,
		`x_wait_seconds_sum{workload="matmul2d"} `,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// le bounds must be strictly ascending in emitted order.
	var prev float64 = -1
	for _, line := range strings.Split(out, "\n") {
		i := strings.Index(line, `le="`)
		if i < 0 {
			continue
		}
		v := line[i+4:]
		v = v[:strings.IndexByte(v, '"')]
		var f float64
		if v == "+Inf" {
			f = math.Inf(1)
		} else {
			var err error
			f, err = strconv.ParseFloat(v, 64)
			if err != nil {
				t.Fatalf("bad le %q: %v", v, err)
			}
		}
		if f <= prev {
			t.Fatalf("le bounds not ascending: %g after %g", f, prev)
		}
		prev = f
	}
}
