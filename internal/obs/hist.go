// Package obs is the service-side observability toolkit behind
// internal/serve and cmd/memschedd: log-bucketed latency histograms,
// job-lifecycle span tracing into bounded rings (the flight recorder),
// and a Prometheus text-format (0.0.4) exposition writer.
//
// Everything here is pure observation built for hot paths: histograms
// are arrays of atomics, span recording copies a fixed-size value into a
// preallocated ring under a short mutex, and neither allocates after
// construction. Rendering (JSON, JSONL, Prometheus text) always works on
// snapshots, never on live state, so an exporter can be slow without
// ever blocking an instrumented path.
package obs

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// The fixed bucket layout shared by every Histogram: bucket i covers
// durations in (HistMinBucket<<(i-1), HistMinBucket<<i], bucket 0 covers
// (0, HistMinBucket], and one overflow bucket catches everything above
// the last bound. 100µs..2^31*100µs spans sub-millisecond queue waits up
// to multi-hour runs; a fixed layout is what makes histograms mergeable
// across instances and exact to compare across runs.
const (
	// HistMinBucket is the upper bound of the first bucket.
	HistMinBucket = 100 * time.Microsecond
	// HistBuckets is the number of finite buckets; the +Inf overflow
	// bucket is extra (snapshots carry HistBuckets+1 counts).
	HistBuckets = 32
)

// BucketBound returns the inclusive upper bound of finite bucket i in
// seconds; i == HistBuckets (the overflow bucket) returns +Inf.
func BucketBound(i int) float64 {
	if i >= HistBuckets {
		return math.Inf(1)
	}
	return (HistMinBucket << uint(i)).Seconds()
}

// bucketOf maps a duration to its bucket index. Non-positive durations
// land in bucket 0 (a zero queue wait is a real observation).
func bucketOf(d time.Duration) int {
	if d <= HistMinBucket {
		return 0
	}
	// Smallest i with HistMinBucket<<i >= d, i.e. ceil(log2(d/min)).
	u := uint64((d + HistMinBucket - 1) / HistMinBucket)
	i := bits.Len64(u - 1)
	if i >= HistBuckets {
		return HistBuckets
	}
	return i
}

// Histogram is a concurrency-safe log-bucketed latency histogram with
// the fixed package layout. The zero value is ready to use; Observe is
// wait-free (one atomic add per field) and never allocates.
type Histogram struct {
	counts [HistBuckets + 1]atomic.Uint64
	count  atomic.Uint64
	sumNS  atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.counts[bucketOf(d)].Add(1)
	h.count.Add(1)
	h.sumNS.Add(int64(d))
}

// Snapshot returns a point-in-time copy. Concurrent Observes may tear
// between fields (a count landing without its sum); every exported view
// is built from one snapshot so a single scrape is internally ordered.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Count = h.count.Load()
	s.SumNS = h.sumNS.Load()
	return s
}

// HistSnapshot is an immutable histogram state: per-bucket counts (the
// last entry is the overflow bucket), total count, and the sum of all
// observed durations in nanoseconds.
type HistSnapshot struct {
	Counts [HistBuckets + 1]uint64
	Count  uint64
	SumNS  int64
}

// Merge folds other into s (the fixed layout makes buckets add
// directly).
func (s *HistSnapshot) Merge(other HistSnapshot) {
	for i := range s.Counts {
		s.Counts[i] += other.Counts[i]
	}
	s.Count += other.Count
	s.SumNS += other.SumNS
}

// Quantile returns the q-quantile (0 < q <= 1) in seconds, exact on the
// recorded buckets: the upper bound of the bucket holding the sample of
// rank ceil(q*count). An empty histogram returns NaN; a rank landing in
// the overflow bucket returns +Inf. The result is monotone in q and
// deterministic for a given snapshot.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q <= 0 {
		q = 0
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			return BucketBound(i)
		}
	}
	return math.Inf(1) // unreachable when Count == sum(Counts)
}

// SumSeconds returns the sum of all observations in seconds.
func (s HistSnapshot) SumSeconds() float64 { return float64(s.SumNS) / 1e9 }

// HistVec is a set of Histograms keyed by a label value (the serve
// layer keys by "workload|strategy"). Get is lock-cheap after a key's
// first observation: a read-locked map hit.
type HistVec struct {
	mu sync.RWMutex
	m  map[string]*Histogram
}

// Get returns the histogram for key, creating it on first use.
func (v *HistVec) Get(key string) *Histogram {
	v.mu.RLock()
	h := v.m[key]
	v.mu.RUnlock()
	if h != nil {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h = v.m[key]; h == nil {
		if v.m == nil {
			v.m = make(map[string]*Histogram)
		}
		h = new(Histogram)
		v.m[key] = h
	}
	return h
}

// Snapshot returns a snapshot per key.
func (v *HistVec) Snapshot() map[string]HistSnapshot {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make(map[string]HistSnapshot, len(v.m))
	for k, h := range v.m {
		out[k] = h.Snapshot()
	}
	return out
}
