package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// SpanKind names one step of a job's lifecycle (or one service-level
// event for spans recorded into the event ring).
type SpanKind uint8

// Span kinds. Admit..BreakerReject trace one job's causality chain;
// Shed..BreakerTrip are service events without a job (the submission
// was refused before a job existed, or the event is about a breaker
// key rather than one job).
const (
	KindAdmit         SpanKind = iota + 1 // job accepted into the queue
	KindQueue                             // time between admit and the first attempt
	KindAttempt                           // one runner attempt (Attempt is 1-based)
	KindBackoff                           // retry backoff sleep between attempts
	KindRetry                             // a transient failure scheduled a retry
	KindDone                              // terminal: completed
	KindFail                              // terminal: permanently failed
	KindCancel                            // terminal: canceled (client or drain)
	KindShed                              // submission shed: queue full (429)
	KindBreakerReject                     // submission shed: breaker open (503)
	KindDrainReject                       // submission refused: draining (503)
	KindInvalid                           // submission refused: admission control (400)
	KindBreakerTrip                       // a (workload,strategy) breaker opened

	// Fleet-layer kinds, recorded by the memrouter flight recorder.
	KindRoute       // job dispatched to a replica (Note names it)
	KindFailover    // job re-dispatched off a dead/draining replica
	KindHedge       // straggler job hedged onto a second replica
	KindHedgeWin    // a hedged dispatch finished first (Note names the winner)
	KindCacheHit     // submission answered from the result cache
	KindReplicaDown  // health prober marked a replica down
	KindReplicaUp    // health prober marked a replica back up
	KindReplicaJoin  // replica joined the fleet membership
	KindReplicaLeave // replica left the membership (drain, force, or auto-evict)
	KindRecover      // job replayed from the write-ahead journal after a restart
)

var spanKindNames = [...]string{
	KindAdmit:         "admit",
	KindQueue:         "queue",
	KindAttempt:       "attempt",
	KindBackoff:       "backoff",
	KindRetry:         "retry",
	KindDone:          "done",
	KindFail:          "fail",
	KindCancel:        "cancel",
	KindShed:          "shed",
	KindBreakerReject: "breaker-reject",
	KindDrainReject:   "drain-reject",
	KindInvalid:       "invalid",
	KindBreakerTrip:   "breaker-trip",
	KindRoute:         "route",
	KindFailover:      "failover",
	KindHedge:         "hedge",
	KindHedgeWin:      "hedge-win",
	KindCacheHit:      "cache-hit",
	KindReplicaDown:   "replica-down",
	KindReplicaUp:     "replica-up",
	KindReplicaJoin:   "replica-join",
	KindReplicaLeave:  "replica-leave",
	KindRecover:       "recover",
}

// String returns the JSONL wire name of the kind.
func (k SpanKind) String() string {
	if int(k) < len(spanKindNames) && spanKindNames[k] != "" {
		return spanKindNames[k]
	}
	return "unknown"
}

// KindByName inverts String; unknown names map to 0.
func KindByName(name string) SpanKind {
	for k, n := range spanKindNames {
		if n == name {
			return SpanKind(k)
		}
	}
	return 0
}

// Span is one fixed-size trace record. Instant events carry Start ==
// End. Spans are plain values: recording one copies string headers and
// integers, never allocates.
type Span struct {
	// Trace correlates every span of one submission (including
	// rejections, which get a trace ID but no job).
	Trace uint64
	// Job is the job ID ("job-000123"), empty for service events.
	Job string
	// Key is the (workload|strategy) breaker key.
	Key  string
	Kind SpanKind
	// Attempt is the 1-based attempt number for attempt/backoff/retry
	// spans, 0 otherwise.
	Attempt int32
	// Start and End are wall-clock unix nanoseconds.
	Start, End int64
	// Note carries the human detail: an error message, a rejection
	// reason, a retry delay.
	Note string
}

// Duration returns End-Start.
func (s Span) Duration() time.Duration { return time.Duration(s.End - s.Start) }

// jsonSpan is the export shape of a Span (kind as a string, RFC3339-free
// integer timestamps so the JSONL stays cheap and sortable).
type jsonSpan struct {
	Trace   uint64 `json:"trace"`
	Job     string `json:"job,omitempty"`
	Key     string `json:"key,omitempty"`
	Kind    string `json:"kind"`
	Attempt int32  `json:"attempt,omitempty"`
	StartNS int64  `json:"start_unix_ns"`
	EndNS   int64  `json:"end_unix_ns"`
	DurNS   int64  `json:"dur_ns"`
	Note    string `json:"note,omitempty"`
}

func (s Span) export() jsonSpan {
	return jsonSpan{
		Trace:   s.Trace,
		Job:     s.Job,
		Key:     s.Key,
		Kind:    s.Kind.String(),
		Attempt: s.Attempt,
		StartNS: s.Start,
		EndNS:   s.End,
		DurNS:   s.End - s.Start,
		Note:    s.Note,
	}
}

// MarshalJSON renders the span in its export shape.
func (s Span) MarshalJSON() ([]byte, error) { return json.Marshal(s.export()) }

// UnmarshalJSON parses the export shape back into a Span, so flight
// recorder dumps round-trip through offline tooling.
func (s *Span) UnmarshalJSON(b []byte) error {
	var js jsonSpan
	if err := json.Unmarshal(b, &js); err != nil {
		return err
	}
	*s = Span{
		Trace:   js.Trace,
		Job:     js.Job,
		Key:     js.Key,
		Kind:    KindByName(js.Kind),
		Attempt: js.Attempt,
		Start:   js.StartNS,
		End:     js.EndNS,
		Note:    js.Note,
	}
	return nil
}

// WriteJSONL writes spans one JSON object per line.
func WriteJSONL(w io.Writer, spans []Span) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range spans {
		if err := enc.Encode(s.export()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Ring is a bounded span ring: the newest cap(buf) records win, older
// ones are overwritten. Record is a mutex-guarded value copy — cheap
// enough for admission paths, allocation-free always.
type Ring struct {
	mu    sync.Mutex
	buf   []Span
	total uint64
}

// NewRing returns a ring holding the last n spans (n <= 0 disables
// recording entirely).
func NewRing(n int) *Ring {
	r := new(Ring)
	if n > 0 {
		r.buf = make([]Span, n)
	}
	return r
}

// Record stores one span (dropped when the ring is disabled).
func (r *Ring) Record(s Span) {
	if r == nil || len(r.buf) == 0 {
		return
	}
	r.mu.Lock()
	r.buf[r.total%uint64(len(r.buf))] = s
	r.total++
	r.mu.Unlock()
}

// Total returns how many spans were ever recorded (recorded-total minus
// len(Snapshot()) is the evicted count).
func (r *Ring) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Snapshot copies the retained spans oldest-first.
func (r *Ring) Snapshot() []Span {
	if r == nil || len(r.buf) == 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.total
	size := uint64(len(r.buf))
	if n > size {
		out := make([]Span, size)
		head := n % size // oldest retained record
		copied := copy(out, r.buf[head:])
		copy(out[copied:], r.buf[:head])
		return out
	}
	out := make([]Span, n)
	copy(out, r.buf[:n])
	return out
}

// Tracer is the flight recorder: a span ring for job lifecycles, an
// event ring for shed/breaker/retry service events, and the trace-ID
// source. SampleEvery controls which submissions record lifecycle spans
// (1 = all); events are always recorded — they are rare and are exactly
// what a post-incident inspection needs.
type Tracer struct {
	sampleEvery uint64
	seq         atomic.Uint64
	spans       *Ring
	events      *Ring
}

// NewTracer builds a tracer with the given ring capacities; sampleEvery
// n records the lifecycle of every n-th submission (n <= 0 disables
// lifecycle spans, event recording stays on).
func NewTracer(spanCap, eventCap, sampleEvery int) *Tracer {
	t := &Tracer{
		spans:  NewRing(spanCap),
		events: NewRing(eventCap),
	}
	if sampleEvery > 0 {
		t.sampleEvery = uint64(sampleEvery)
	}
	return t
}

// Begin allocates the next trace ID and reports whether this trace's
// lifecycle spans should be recorded.
func (t *Tracer) Begin() (trace uint64, sampled bool) {
	trace = t.seq.Add(1)
	return trace, t.sampleEvery > 0 && trace%t.sampleEvery == 0
}

// Adopt continues an externally-propagated trace (a router forwarding a
// job to a replica sends its trace ID along, so the replica's spans and
// log lines correlate with the router's). A zero external ID falls back
// to Begin; adopted traces follow the same sampling rule.
func (t *Tracer) Adopt(trace uint64) (uint64, bool) {
	if trace == 0 {
		return t.Begin()
	}
	return trace, t.sampleEvery > 0 && trace%t.sampleEvery == 0
}

// Span records a lifecycle span.
func (t *Tracer) Span(s Span) { t.spans.Record(s) }

// Event records a service event.
func (t *Tracer) Event(s Span) { t.events.Record(s) }

// Spans returns the retained lifecycle spans, oldest-first.
func (t *Tracer) Spans() []Span { return t.spans.Snapshot() }

// Events returns the retained service events, oldest-first.
func (t *Tracer) Events() []Span { return t.events.Snapshot() }

// SpanTotal and EventTotal count everything ever recorded.
func (t *Tracer) SpanTotal() uint64  { return t.spans.Total() }
func (t *Tracer) EventTotal() uint64 { return t.events.Total() }

// JobSpans returns the retained spans of one job, oldest-first. A job
// older than the ring (or an unsampled one) yields an empty timeline.
func (t *Tracer) JobSpans(job string) []Span {
	all := t.spans.Snapshot()
	out := all[:0:0]
	for _, s := range all {
		if s.Job == job {
			out = append(out, s)
		}
	}
	return out
}

// Timeline is one job's retained span sequence.
type Timeline struct {
	Job   string `json:"job"`
	Trace uint64 `json:"trace"`
	Spans []Span `json:"spans"`
}

// Timelines groups the retained spans by job and returns the last n job
// timelines in first-span order (every span a job still has in the ring
// is included, so a timeline can be partial if its head was evicted).
func (t *Tracer) Timelines(n int) []Timeline {
	all := t.spans.Snapshot()
	idx := make(map[string]int, n)
	var lines []Timeline
	for _, s := range all {
		if s.Job == "" {
			continue
		}
		i, ok := idx[s.Job]
		if !ok {
			i = len(lines)
			idx[s.Job] = i
			lines = append(lines, Timeline{Job: s.Job, Trace: s.Trace})
		}
		lines[i].Spans = append(lines[i].Spans, s)
	}
	if n > 0 && len(lines) > n {
		lines = lines[len(lines)-n:]
	}
	return lines
}
