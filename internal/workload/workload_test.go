package workload

import (
	"strings"
	"testing"
	"testing/quick"

	"memsched/internal/taskgraph"
)

func TestMatmul2DShape(t *testing.T) {
	inst := Matmul2D(5)
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	if inst.NumTasks() != 25 || inst.NumData() != 10 {
		t.Fatalf("got %d tasks, %d data", inst.NumTasks(), inst.NumData())
	}
	// The paper's 5x5 point has a 140 MB working set (10 x 14.7456 MB =
	// 147.5 MB with exact tile arithmetic).
	if ws := inst.WorkingSetBytes(); ws != 10*Data2DBytes {
		t.Fatalf("working set %d", ws)
	}
	// Each task reads one row of A and one column of B.
	for _, task := range inst.Tasks() {
		if len(task.Inputs) != 2 {
			t.Fatalf("task %s has %d inputs", task.Name, len(task.Inputs))
		}
		a := inst.Data(task.Inputs[0]).Name
		bb := inst.Data(task.Inputs[1]).Name
		if !strings.HasPrefix(a, "A[") || !strings.HasPrefix(bb, "B[") {
			t.Fatalf("task %s reads %s, %s", task.Name, a, bb)
		}
	}
	// Row-major submission: first n tasks all read A[0].
	for i := 0; i < 5; i++ {
		if inst.Data(inst.Inputs(taskgraph.TaskID(i))[0]).Name != "A[0]" {
			t.Fatalf("task %d not in row 0", i)
		}
	}
	// Every data has exactly n consumers.
	for d := 0; d < inst.NumData(); d++ {
		if len(inst.Consumers(taskgraph.DataID(d))) != 5 {
			t.Fatalf("data %d has %d consumers", d, len(inst.Consumers(taskgraph.DataID(d))))
		}
	}
}

func TestMatmul2DRandomizedIsPermutation(t *testing.T) {
	a := Matmul2D(8)
	b := Matmul2DRandomized(8, 123)
	if a.NumTasks() != b.NumTasks() || a.NumData() != b.NumData() {
		t.Fatal("randomized variant changed the instance size")
	}
	names := map[string]bool{}
	for _, task := range a.Tasks() {
		names[task.Name] = true
	}
	same := 0
	for i, task := range b.Tasks() {
		if !names[task.Name] {
			t.Fatalf("task %s not in dense set", task.Name)
		}
		if a.Task(taskgraph.TaskID(i)).Name == task.Name {
			same++
		}
	}
	if same == a.NumTasks() {
		t.Fatal("randomized order equals natural order")
	}
	// Determinism per seed.
	c := Matmul2DRandomized(8, 123)
	for i := range b.Tasks() {
		if b.Task(taskgraph.TaskID(i)).Name != c.Task(taskgraph.TaskID(i)).Name {
			t.Fatal("same seed produced different orders")
		}
	}
}

func TestMatmul3DShape(t *testing.T) {
	inst := Matmul3D(4)
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	if inst.NumTasks() != 64 || inst.NumData() != 32 {
		t.Fatalf("got %d tasks, %d data", inst.NumTasks(), inst.NumData())
	}
	for _, task := range inst.Tasks() {
		if len(task.Inputs) != 2 {
			t.Fatalf("task %s has %d inputs", task.Name, len(task.Inputs))
		}
		if task.Flops != Flops3D {
			t.Fatalf("task %s flops %g", task.Name, task.Flops)
		}
	}
	// Each tile of A and B is read by exactly n tasks.
	for d := 0; d < inst.NumData(); d++ {
		if got := len(inst.Consumers(taskgraph.DataID(d))); got != 4 {
			t.Fatalf("data %d consumers = %d", d, got)
		}
	}
}

func TestCholeskyShape(t *testing.T) {
	n := 6
	inst := Cholesky(n)
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	if inst.NumData() != n*(n+1)/2 {
		t.Fatalf("data = %d, want %d tiles", inst.NumData(), n*(n+1)/2)
	}
	// Kernel counts: n POTRF, n(n-1)/2 TRSM, n(n-1)/2 SYRK,
	// sum_{k} (n-k-1)(n-k-2)/2 GEMM.
	wantGemm := 0
	for k := 0; k < n; k++ {
		r := n - k - 1
		wantGemm += r * (r - 1) / 2
	}
	counts := map[string]int{}
	for _, task := range inst.Tasks() {
		kind := task.Name[:strings.Index(task.Name, "(")]
		counts[kind]++
		switch kind {
		case "POTRF":
			if len(task.Inputs) != 1 {
				t.Fatalf("%s has %d inputs", task.Name, len(task.Inputs))
			}
		case "TRSM", "SYRK":
			if len(task.Inputs) != 2 {
				t.Fatalf("%s has %d inputs", task.Name, len(task.Inputs))
			}
		case "GEMM":
			if len(task.Inputs) != 3 {
				t.Fatalf("%s has %d inputs", task.Name, len(task.Inputs))
			}
		default:
			t.Fatalf("unknown kernel %q", kind)
		}
	}
	if counts["POTRF"] != n || counts["TRSM"] != n*(n-1)/2 ||
		counts["SYRK"] != n*(n-1)/2 || counts["GEMM"] != wantGemm {
		t.Fatalf("kernel counts = %v", counts)
	}
}

func TestSparse2DKeepsAllData(t *testing.T) {
	dense := Matmul2D(30)
	sparse := Sparse2D(30, 0.02, 7)
	if sparse.NumData() != dense.NumData() {
		t.Fatal("sparse variant dropped data items")
	}
	if sparse.WorkingSetBytes() != dense.WorkingSetBytes() {
		t.Fatal("sparse working set differs from dense")
	}
	if sparse.NumTasks() >= dense.NumTasks()/10 {
		t.Fatalf("sparse kept %d of %d tasks", sparse.NumTasks(), dense.NumTasks())
	}
	if sparse.NumTasks() == 0 {
		t.Fatal("sparse kept no tasks")
	}
}

func TestSparse2DDensityProperty(t *testing.T) {
	f := func(seed int64) bool {
		inst := Sparse2D(50, 0.1, seed)
		// Expect roughly 250 tasks; allow a wide band.
		return inst.NumTasks() > 100 && inst.NumTasks() < 450 && inst.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestWorkingSetMatchesPaperAxis(t *testing.T) {
	// Paper: 5x5 tasks ~ 140 MB, 300x300 ~ 8400 MB (Figure 3's x axis).
	ws5 := float64(Matmul2D(5).WorkingSetBytes()) / 1e6
	if ws5 < 140 || ws5 > 150 {
		t.Errorf("ws(5) = %.1f MB, paper says ~140", ws5)
	}
	ws300 := 60.0 * ws5 // linear in n
	if ws300 < 8400 || ws300 > 8900 {
		t.Errorf("ws(300) = %.1f MB, paper says ~8400", ws300)
	}
}

func TestRandomGenerator(t *testing.T) {
	inst := Random(30, 10, 3, 5)
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	if inst.NumTasks() != 30 || inst.NumData() != 10 {
		t.Fatalf("got %d tasks, %d data", inst.NumTasks(), inst.NumData())
	}
	if inst.MaxInputs() > 3 {
		t.Fatalf("max inputs %d", inst.MaxInputs())
	}
	// maxInputs capped at nData.
	inst = Random(5, 2, 10, 5)
	if inst.MaxInputs() > 2 {
		t.Fatalf("max inputs %d with 2 data", inst.MaxInputs())
	}
}

func TestGeneratorPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"matmul2d":  func() { Matmul2D(0) },
		"rand":      func() { Matmul2DRandomized(-1, 0) },
		"matmul3d":  func() { Matmul3D(0) },
		"cholesky":  func() { Cholesky(0) },
		"sparse":    func() { Sparse2D(10, 0, 0) },
		"sparse>1":  func() { Sparse2D(10, 1.5, 0) },
		"randomGen": func() { Random(0, 1, 1, 0) },
	} {
		name, f := name, f
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		})
	}
}

func TestMatmul2DCustom(t *testing.T) {
	inst := Matmul2DCustom(6, 8)
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	if inst.NumTasks() != 36 || inst.NumData() != 12 {
		t.Fatalf("shape: %d tasks, %d data", inst.NumTasks(), inst.NumData())
	}
	// k=8 doubles both the data size and the task flops of the default.
	def := Matmul2D(6)
	if inst.Data(0).Size != 2*def.Data(0).Size {
		t.Fatalf("size %d vs default %d", inst.Data(0).Size, def.Data(0).Size)
	}
	if inst.Task(0).Flops != 2*def.Task(0).Flops {
		t.Fatalf("flops %g vs default %g", inst.Task(0).Flops, def.Task(0).Flops)
	}
	// kTiles=4 must reproduce the paper's scenario exactly.
	same := Matmul2DCustom(6, 4)
	if same.Data(0).Size != def.Data(0).Size || same.Task(0).Flops != def.Task(0).Flops {
		t.Fatal("kTiles=4 differs from Matmul2D")
	}
}

func TestMatmul3DSummed(t *testing.T) {
	inst := Matmul3DSummed(3)
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	if inst.NumTasks() != 27 || inst.NumData() != 27 {
		t.Fatalf("shape: %d tasks, %d data", inst.NumTasks(), inst.NumData())
	}
	for _, task := range inst.Tasks() {
		if len(task.Inputs) != 3 {
			t.Fatalf("task %s has %d inputs, want 3", task.Name, len(task.Inputs))
		}
	}
	// Each C tile is read by n tasks (the k-chain), like A and B tiles.
	for d := 18; d < 27; d++ {
		if got := len(inst.Consumers(taskgraph.DataID(d))); got != 3 {
			t.Fatalf("C tile %d consumers = %d", d, got)
		}
	}
}
