// Package workload generates the task/data instances used in the paper's
// evaluation (§V-A): 2D blocked matrix multiplication (natural and
// randomized submission order), 3D blocked matrix multiplication, the task
// set of a tiled Cholesky decomposition with dependencies removed, and a
// sparse 2D matrix multiplication where 98% of the tasks are dropped.
//
// All generators reproduce the exact sharing structure, data sizes and
// flop counts of the paper's cuBLAS workloads (960x960 single-precision
// tiles on Tesla V100 GPUs).
package workload

import (
	"fmt"
	"math/rand"

	"memsched/internal/taskgraph"
)

// Tile is the tile edge used by the paper's cuBLAS kernels (960x960
// single-precision elements).
const Tile = 960

// TileBytes is the footprint of one 960x960 float32 tile.
const TileBytes = Tile * Tile * 4 // 3 686 400 bytes

// KDim2D is the common (reduction) dimension of the 2D matrix product:
// each data item is a block-row of A or block-column of B of size
// 960 x 3840, so that the working set of an NxN task grid matches the
// paper's 140 MB (N=5) to 8400 MB (N=300) range.
const KDim2D = 4 * Tile

// Data2DBytes is the footprint of one block-row of A or block-column of B
// in the 2D matrix product (14.7456 MB).
const Data2DBytes = Tile * KDim2D * 4

// Flops2D is the work of one 2D product task (one block-row times one
// block-column): 2 * 960 * 960 * 3840 flops.
const Flops2D = 2 * float64(Tile) * float64(Tile) * float64(KDim2D)

// Flops3D is the work of one 3D product task (one 960^3 tile product).
const Flops3D = 2 * float64(Tile) * float64(Tile) * float64(Tile)

// Cholesky kernel flop counts for 960x960 tiles.
var (
	flopsPOTRF = float64(Tile) * float64(Tile) * float64(Tile) / 3
	flopsTRSM  = float64(Tile) * float64(Tile) * float64(Tile)
	flopsSYRK  = float64(Tile) * float64(Tile) * float64(Tile)
	flopsGEMM  = 2 * float64(Tile) * float64(Tile) * float64(Tile)
)

// Matmul2D builds the paper's main scenario: C = A x B decomposed into
// n x n tasks, task T(i,j) multiplying block-row i of A with block-column
// j of B. Data items are the n block-rows and n block-columns (14.7456 MB
// each); tasks are submitted row by row.
func Matmul2D(n int) *taskgraph.Instance {
	if n <= 0 {
		panic(fmt.Sprintf("workload: Matmul2D n = %d", n))
	}
	b := taskgraph.NewBuilder(fmt.Sprintf("matmul2d(n=%d)", n))
	rows := make([]taskgraph.DataID, n)
	cols := make([]taskgraph.DataID, n)
	for i := 0; i < n; i++ {
		rows[i] = b.AddData(fmt.Sprintf("A[%d]", i), Data2DBytes)
	}
	for j := 0; j < n; j++ {
		cols[j] = b.AddData(fmt.Sprintf("B[%d]", j), Data2DBytes)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b.AddTask(fmt.Sprintf("C[%d,%d]", i, j), Flops2D, rows[i], cols[j])
		}
	}
	return b.Build()
}

// Matmul2DRandomized is Matmul2D with the task submission order shuffled
// (Figure 9). The shuffle is deterministic for a given seed.
func Matmul2DRandomized(n int, seed int64) *taskgraph.Instance {
	if n <= 0 {
		panic(fmt.Sprintf("workload: Matmul2DRandomized n = %d", n))
	}
	b := taskgraph.NewBuilder(fmt.Sprintf("matmul2d-rand(n=%d,seed=%d)", n, seed))
	rows := make([]taskgraph.DataID, n)
	cols := make([]taskgraph.DataID, n)
	for i := 0; i < n; i++ {
		rows[i] = b.AddData(fmt.Sprintf("A[%d]", i), Data2DBytes)
	}
	for j := 0; j < n; j++ {
		cols[j] = b.AddData(fmt.Sprintf("B[%d]", j), Data2DBytes)
	}
	type cell struct{ i, j int }
	cells := make([]cell, 0, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			cells = append(cells, cell{i, j})
		}
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(cells), func(a, z int) { cells[a], cells[z] = cells[z], cells[a] })
	for _, c := range cells {
		b.AddTask(fmt.Sprintf("C[%d,%d]", c.i, c.j), Flops2D, rows[c.i], cols[c.j])
	}
	return b.Build()
}

// Matmul3D builds the 3D variant (Figure 10): the product is decomposed
// into n^3 elementary tile products T(i,j,k) reading tile A(i,k) and tile
// B(k,j). There are 2n^2 tile data items of 3.6864 MB. The final
// summation is not modeled, matching the paper ("we do not here consider
// the final summation").
func Matmul3D(n int) *taskgraph.Instance {
	if n <= 0 {
		panic(fmt.Sprintf("workload: Matmul3D n = %d", n))
	}
	b := taskgraph.NewBuilder(fmt.Sprintf("matmul3d(n=%d)", n))
	a := make([]taskgraph.DataID, n*n)
	bb := make([]taskgraph.DataID, n*n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			a[i*n+k] = b.AddData(fmt.Sprintf("A[%d,%d]", i, k), TileBytes)
		}
	}
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			bb[k*n+j] = b.AddData(fmt.Sprintf("B[%d,%d]", k, j), TileBytes)
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				b.AddTask(fmt.Sprintf("C[%d,%d,%d]", i, j, k), Flops3D, a[i*n+k], bb[k*n+j])
			}
		}
	}
	return b.Build()
}

// Cholesky builds the task set of an n x n tiled Cholesky decomposition
// with all inter-task dependencies removed (Figure 11): only the input
// tiles read by each kernel remain. Data items are the n(n+1)/2 tiles of
// the lower triangle; kernels are POTRF (reads the diagonal tile), TRSM
// (diagonal tile + panel tile), SYRK (panel tile + updated diagonal tile)
// and GEMM (two panel tiles + the updated tile, i.e. three inputs).
func Cholesky(n int) *taskgraph.Instance {
	if n <= 0 {
		panic(fmt.Sprintf("workload: Cholesky n = %d", n))
	}
	b := taskgraph.NewBuilder(fmt.Sprintf("cholesky(n=%d)", n))
	tiles := make(map[[2]int]taskgraph.DataID, n*(n+1)/2)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			tiles[[2]int{i, j}] = b.AddData(fmt.Sprintf("A[%d,%d]", i, j), TileBytes)
		}
	}
	for k := 0; k < n; k++ {
		b.AddTask(fmt.Sprintf("POTRF(%d)", k), flopsPOTRF, tiles[[2]int{k, k}])
		for i := k + 1; i < n; i++ {
			b.AddTask(fmt.Sprintf("TRSM(%d,%d)", i, k), flopsTRSM,
				tiles[[2]int{k, k}], tiles[[2]int{i, k}])
		}
		for i := k + 1; i < n; i++ {
			b.AddTask(fmt.Sprintf("SYRK(%d,%d)", i, k), flopsSYRK,
				tiles[[2]int{i, k}], tiles[[2]int{i, i}])
			for j := k + 1; j < i; j++ {
				b.AddTask(fmt.Sprintf("GEMM(%d,%d,%d)", i, j, k), flopsGEMM,
					tiles[[2]int{i, k}], tiles[[2]int{j, k}], tiles[[2]int{i, j}])
			}
		}
	}
	return b.Build()
}

// DefaultSparseKeep is the fraction of tasks kept by the paper's sparse
// scenario ("we remove 98% of the tasks").
const DefaultSparseKeep = 0.02

// Sparse2D builds the sparse 2D matrix multiplication (Figures 12 and 13):
// the Matmul2D task grid with only a fraction keep of the tasks retained
// (chosen uniformly at random with the given seed). All 2n data items are
// kept so the working set matches the dense scenario; untouched data is
// simply never transferred. At least one task is always retained.
func Sparse2D(n int, keep float64, seed int64) *taskgraph.Instance {
	if n <= 0 || keep <= 0 || keep > 1 {
		panic(fmt.Sprintf("workload: Sparse2D n = %d keep = %g", n, keep))
	}
	b := taskgraph.NewBuilder(fmt.Sprintf("sparse2d(n=%d,keep=%g,seed=%d)", n, keep, seed))
	rows := make([]taskgraph.DataID, n)
	cols := make([]taskgraph.DataID, n)
	for i := 0; i < n; i++ {
		rows[i] = b.AddData(fmt.Sprintf("A[%d]", i), Data2DBytes)
	}
	for j := 0; j < n; j++ {
		cols[j] = b.AddData(fmt.Sprintf("B[%d]", j), Data2DBytes)
	}
	rng := rand.New(rand.NewSource(seed))
	added := 0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if rng.Float64() < keep {
				b.AddTask(fmt.Sprintf("C[%d,%d]", i, j), Flops2D, rows[i], cols[j])
				added++
			}
		}
	}
	if added == 0 {
		b.AddTask("C[0,0]", Flops2D, rows[0], cols[0])
	}
	return b.Build()
}

// Random builds an irregular instance for property-based tests: nTasks
// tasks over nData data items, each task reading between 1 and maxInputs
// distinct data chosen uniformly. Sizes vary between half and twice the
// 3.6864 MB tile, flops between half and twice the 3D tile product.
func Random(nTasks, nData, maxInputs int, seed int64) *taskgraph.Instance {
	if nTasks <= 0 || nData <= 0 || maxInputs <= 0 {
		panic("workload: Random requires positive parameters")
	}
	if maxInputs > nData {
		maxInputs = nData
	}
	rng := rand.New(rand.NewSource(seed))
	b := taskgraph.NewBuilder(fmt.Sprintf("random(t=%d,d=%d,in=%d,seed=%d)", nTasks, nData, maxInputs, seed))
	ids := make([]taskgraph.DataID, nData)
	for i := 0; i < nData; i++ {
		size := int64(float64(TileBytes) * (0.5 + 1.5*rng.Float64()))
		ids[i] = b.AddData(fmt.Sprintf("D[%d]", i), size)
	}
	for t := 0; t < nTasks; t++ {
		k := 1 + rng.Intn(maxInputs)
		perm := rng.Perm(nData)[:k]
		in := make([]taskgraph.DataID, 0, k)
		for _, p := range perm {
			in = append(in, ids[p])
		}
		flops := Flops3D * (0.5 + 1.5*rng.Float64())
		b.AddTask(fmt.Sprintf("T[%d]", t), flops, in...)
	}
	return b.Build()
}

// Matmul2DCustom generalizes Matmul2D: n x n tasks whose data items are
// strips of kTiles 960-wide tiles. kTiles controls the
// computation-to-transfer ratio of one task (the paper uses kTiles = 4).
func Matmul2DCustom(n, kTiles int) *taskgraph.Instance {
	if n <= 0 || kTiles <= 0 {
		panic(fmt.Sprintf("workload: Matmul2DCustom n = %d kTiles = %d", n, kTiles))
	}
	size := int64(Tile) * int64(Tile) * int64(kTiles) * 4
	flops := 2 * float64(Tile) * float64(Tile) * float64(Tile) * float64(kTiles)
	b := taskgraph.NewBuilder(fmt.Sprintf("matmul2d(n=%d,k=%d)", n, kTiles))
	rows := make([]taskgraph.DataID, n)
	cols := make([]taskgraph.DataID, n)
	for i := 0; i < n; i++ {
		rows[i] = b.AddData(fmt.Sprintf("A[%d]", i), size)
	}
	for j := 0; j < n; j++ {
		cols[j] = b.AddData(fmt.Sprintf("B[%d]", j), size)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b.AddTask(fmt.Sprintf("C[%d,%d]", i, j), flops, rows[i], cols[j])
		}
	}
	return b.Build()
}

// Matmul3DSummed is Matmul3D with the accumulator tile included as a
// third input of every task: T(i,j,k) reads A(i,k), B(k,j) and C(i,j).
// The paper excludes the summation "to concentrate on the
// computationally-intensive tasks"; this variant exercises three-input
// tasks (and hence the DARTS 3inputs branch) on a matmul structure.
func Matmul3DSummed(n int) *taskgraph.Instance {
	if n <= 0 {
		panic(fmt.Sprintf("workload: Matmul3DSummed n = %d", n))
	}
	b := taskgraph.NewBuilder(fmt.Sprintf("matmul3d-summed(n=%d)", n))
	a := make([]taskgraph.DataID, n*n)
	bb := make([]taskgraph.DataID, n*n)
	cc := make([]taskgraph.DataID, n*n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			a[i*n+k] = b.AddData(fmt.Sprintf("A[%d,%d]", i, k), TileBytes)
		}
	}
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			bb[k*n+j] = b.AddData(fmt.Sprintf("B[%d,%d]", k, j), TileBytes)
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			cc[i*n+j] = b.AddData(fmt.Sprintf("C[%d,%d]", i, j), TileBytes)
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				b.AddTask(fmt.Sprintf("C[%d,%d,%d]", i, j, k), Flops3D,
					a[i*n+k], bb[k*n+j], cc[i*n+j])
			}
		}
	}
	return b.Build()
}

// Matmul2DWithOutputs is Matmul2D with each task writing its 960x960
// tile of C back to host memory, exercising the output extension the
// paper's §I sets aside ("Our model could however easily be extended to
// integrate task output").
func Matmul2DWithOutputs(n int) *taskgraph.Instance {
	if n <= 0 {
		panic(fmt.Sprintf("workload: Matmul2DWithOutputs n = %d", n))
	}
	b := taskgraph.NewBuilder(fmt.Sprintf("matmul2d-out(n=%d)", n))
	rows := make([]taskgraph.DataID, n)
	cols := make([]taskgraph.DataID, n)
	for i := 0; i < n; i++ {
		rows[i] = b.AddData(fmt.Sprintf("A[%d]", i), Data2DBytes)
	}
	for j := 0; j < n; j++ {
		cols[j] = b.AddData(fmt.Sprintf("B[%d]", j), Data2DBytes)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b.AddTaskWithOutput(fmt.Sprintf("C[%d,%d]", i, j), Flops2D, TileBytes, rows[i], cols[j])
		}
	}
	return b.Build()
}
