package taskgraph

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonInstance is the on-disk schema of an instance.
type jsonInstance struct {
	Name  string     `json:"name"`
	Data  []jsonData `json:"data"`
	Tasks []jsonTask `json:"tasks"`
}

type jsonData struct {
	Name string `json:"name"`
	Size int64  `json:"size"`
}

type jsonTask struct {
	Name        string   `json:"name"`
	Flops       float64  `json:"flops"`
	Inputs      []DataID `json:"inputs"`
	OutputBytes int64    `json:"outputBytes,omitempty"`
}

// WriteJSON serializes the instance. The format is stable: data and tasks
// appear in id (submission) order, so ReadJSON(WriteJSON(x)) reproduces x
// exactly.
func (in *Instance) WriteJSON(w io.Writer) error {
	out := jsonInstance{Name: in.name}
	out.Data = make([]jsonData, len(in.data))
	for i, d := range in.data {
		out.Data[i] = jsonData{Name: d.Name, Size: d.Size}
	}
	out.Tasks = make([]jsonTask, len(in.tasks))
	for i, t := range in.tasks {
		out.Tasks[i] = jsonTask{Name: t.Name, Flops: t.Flops, Inputs: t.Inputs, OutputBytes: t.OutputBytes}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// ReadJSON deserializes an instance written by WriteJSON, validating it.
func ReadJSON(r io.Reader) (*Instance, error) {
	var in jsonInstance
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("taskgraph: decoding instance: %w", err)
	}
	if len(in.Tasks) == 0 {
		return nil, fmt.Errorf("taskgraph: instance %q has no tasks", in.Name)
	}
	b := NewBuilder(in.Name)
	for _, d := range in.Data {
		if d.Size <= 0 {
			return nil, fmt.Errorf("taskgraph: data %q has size %d", d.Name, d.Size)
		}
		b.AddData(d.Name, d.Size)
	}
	for _, t := range in.Tasks {
		if t.Flops <= 0 || len(t.Inputs) == 0 || t.OutputBytes < 0 {
			return nil, fmt.Errorf("taskgraph: task %q invalid (flops %g, %d inputs, output %d)", t.Name, t.Flops, len(t.Inputs), t.OutputBytes)
		}
		for _, d := range t.Inputs {
			if d < 0 || int(d) >= len(in.Data) {
				return nil, fmt.Errorf("taskgraph: task %q references unknown data %d", t.Name, d)
			}
		}
		seen := make(map[DataID]bool, len(t.Inputs))
		for _, d := range t.Inputs {
			if seen[d] {
				return nil, fmt.Errorf("taskgraph: task %q lists data %d twice", t.Name, d)
			}
			seen[d] = true
		}
		b.AddTaskWithOutput(t.Name, t.Flops, t.OutputBytes, t.Inputs...)
	}
	inst := b.Build()
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	return inst, nil
}
