// Package taskgraph defines the bipartite task/data graph at the heart of
// the scheduling problem studied by Gonthier, Marchal and Thibault
// (IPDPS 2022): a set of independent tasks T = {T1..Tm} sharing input data
// D = {D1..Dn}, with an edge (Ti, Dj) whenever task Ti reads data Dj.
//
// Instances are immutable once built. Builders validate the graph and
// precompute the reverse (data -> consumers) adjacency that every scheduler
// in this repository relies on.
package taskgraph

import (
	"fmt"
	"sort"
)

// DataID identifies a data item (an input block) within an Instance.
type DataID int32

// TaskID identifies a task within an Instance. TaskIDs are dense and
// correspond to submission order: task 0 is submitted first.
type TaskID int32

// NoData is the sentinel for "no data item".
const NoData DataID = -1

// NoTask is the sentinel for "no task".
const NoTask TaskID = -1

// Data is one input block. All schedulers treat data as read-only
// (the paper ignores task outputs; see §I of the paper).
type Data struct {
	// ID is the dense index of this data item.
	ID DataID
	// Name is a human-readable label such as "A[3]" or "B[7]".
	Name string
	// Size is the footprint in bytes when resident on an accelerator.
	Size int64
}

// Task is one unit of computation. Tasks are independent of each other:
// the only coupling between tasks is through shared input data.
type Task struct {
	// ID is the dense index of this task; it equals the submission rank.
	ID TaskID
	// Name is a human-readable label such as "C[2,5]" or "GEMM(4,2,1)".
	Name string
	// Flops is the amount of computation, used to derive the kernel
	// duration on a given platform.
	Flops float64
	// Inputs lists the data read by this task, without duplicates.
	Inputs []DataID
	// OutputBytes is the size of the result this task writes back to
	// host memory after completion (0 for none). The paper's model
	// ignores outputs because "the output data is most often much
	// smaller than the input data and can be transferred concurrently
	// with data input" (§I), but notes the extension is easy; write-back
	// transfers contend for the shared bus without occupying GPU memory.
	OutputBytes int64
}

// Instance is an immutable problem instance: tasks in submission order,
// data items, and the data -> consumers reverse adjacency.
//
// Because an Instance is never mutated after Build, it is safe to share
// one Instance between any number of goroutines running independent
// simulations concurrently. All accessors return internal slices that
// callers must treat as read-only; the race-detector test
// TestFig3ParallelDeterministic in internal/expr exercises this
// contract.
type Instance struct {
	name      string
	tasks     []Task
	data      []Data
	consumers [][]TaskID // indexed by DataID, ascending TaskID order
}

// Name returns the label given to the instance by its builder
// (for example "matmul2d(N=10)").
func (in *Instance) Name() string { return in.name }

// NumTasks returns the number of tasks m.
func (in *Instance) NumTasks() int { return len(in.tasks) }

// NumData returns the number of data items n.
func (in *Instance) NumData() int { return len(in.data) }

// Task returns the task with the given id. The returned value shares the
// Inputs slice with the instance; callers must not mutate it.
func (in *Instance) Task(id TaskID) Task { return in.tasks[id] }

// Data returns the data item with the given id.
func (in *Instance) Data(id DataID) Data { return in.data[id] }

// Tasks returns all tasks in submission order. Callers must not mutate the
// returned slice or the Inputs slices it contains.
func (in *Instance) Tasks() []Task { return in.tasks }

// AllData returns all data items. Callers must not mutate the returned slice.
func (in *Instance) AllData() []Data { return in.data }

// Consumers returns the tasks reading data d, in ascending TaskID order.
// Callers must not mutate the returned slice.
func (in *Instance) Consumers(d DataID) []TaskID { return in.consumers[d] }

// Inputs returns the input data of task t. Callers must not mutate the
// returned slice.
func (in *Instance) Inputs(t TaskID) []DataID { return in.tasks[t].Inputs }

// TotalFlops returns the sum of task flops, the numerator of the GFlop/s
// throughput metric used throughout the paper's evaluation.
func (in *Instance) TotalFlops() float64 {
	var s float64
	for i := range in.tasks {
		s += in.tasks[i].Flops
	}
	return s
}

// WorkingSetBytes returns the total footprint of all distinct data items,
// the x-axis of every figure in the paper.
func (in *Instance) WorkingSetBytes() int64 {
	var s int64
	for i := range in.data {
		s += in.data[i].Size
	}
	return s
}

// MaxInputs returns the largest number of inputs of any task (2 for the 2D
// and 3D matrix products, 2 for the Cholesky kernels used here).
func (in *Instance) MaxInputs() int {
	m := 0
	for i := range in.tasks {
		if len(in.tasks[i].Inputs) > m {
			m = len(in.tasks[i].Inputs)
		}
	}
	return m
}

// MaxDataSize returns the size in bytes of the largest data item.
func (in *Instance) MaxDataSize() int64 {
	var m int64
	for i := range in.data {
		if in.data[i].Size > m {
			m = in.data[i].Size
		}
	}
	return m
}

// TaskFootprint returns the total size in bytes of the inputs of task t.
func (in *Instance) TaskFootprint(t TaskID) int64 {
	var s int64
	for _, d := range in.tasks[t].Inputs {
		s += in.data[d].Size
	}
	return s
}

// SharedInputs returns the number of data items read by both a and b.
func (in *Instance) SharedInputs(a, b TaskID) int {
	n := 0
	for _, da := range in.tasks[a].Inputs {
		for _, db := range in.tasks[b].Inputs {
			if da == db {
				n++
				break
			}
		}
	}
	return n
}

// Builder assembles an Instance. The zero value is not usable; call
// NewBuilder.
type Builder struct {
	name  string
	tasks []Task
	data  []Data
	built bool
}

// NewBuilder returns a Builder for an instance with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name}
}

// AddData registers a data item of the given size and returns its id.
// It panics if size is not positive.
func (b *Builder) AddData(name string, size int64) DataID {
	if size <= 0 {
		panic(fmt.Sprintf("taskgraph: data %q has non-positive size %d", name, size))
	}
	id := DataID(len(b.data))
	b.data = append(b.data, Data{ID: id, Name: name, Size: size})
	return id
}

// AddTask registers a task reading the given inputs and returns its id.
// Submission order is the order of AddTask calls. It panics on an unknown
// or duplicated input, an empty input list, or non-positive flops.
func (b *Builder) AddTask(name string, flops float64, inputs ...DataID) TaskID {
	return b.AddTaskWithOutput(name, flops, 0, inputs...)
}

// AddTaskWithOutput registers a task that additionally writes
// outputBytes back to host memory on completion. It panics on a negative
// output size or on any AddTask validation failure.
func (b *Builder) AddTaskWithOutput(name string, flops float64, outputBytes int64, inputs ...DataID) TaskID {
	if outputBytes < 0 {
		panic(fmt.Sprintf("taskgraph: task %q has negative output %d", name, outputBytes))
	}
	if flops <= 0 {
		panic(fmt.Sprintf("taskgraph: task %q has non-positive flops %g", name, flops))
	}
	if len(inputs) == 0 {
		panic(fmt.Sprintf("taskgraph: task %q has no inputs", name))
	}
	seen := make(map[DataID]bool, len(inputs))
	for _, d := range inputs {
		if d < 0 || int(d) >= len(b.data) {
			panic(fmt.Sprintf("taskgraph: task %q references unknown data %d", name, d))
		}
		if seen[d] {
			panic(fmt.Sprintf("taskgraph: task %q lists data %d twice", name, d))
		}
		seen[d] = true
	}
	id := TaskID(len(b.tasks))
	in := make([]DataID, len(inputs))
	copy(in, inputs)
	b.tasks = append(b.tasks, Task{ID: id, Name: name, Flops: flops, Inputs: in, OutputBytes: outputBytes})
	return id
}

// Build finalizes the instance. The builder must not be reused afterwards.
// It panics if the instance has no tasks.
func (b *Builder) Build() *Instance {
	if b.built {
		panic("taskgraph: Build called twice")
	}
	if len(b.tasks) == 0 {
		panic(fmt.Sprintf("taskgraph: instance %q has no tasks", b.name))
	}
	b.built = true
	consumers := make([][]TaskID, len(b.data))
	for i := range b.tasks {
		for _, d := range b.tasks[i].Inputs {
			consumers[d] = append(consumers[d], b.tasks[i].ID)
		}
	}
	for d := range consumers {
		sort.Slice(consumers[d], func(i, j int) bool { return consumers[d][i] < consumers[d][j] })
	}
	return &Instance{name: b.name, tasks: b.tasks, data: b.data, consumers: consumers}
}

// Validate checks internal consistency of an instance (dense ids, sorted
// consumer lists matching the forward edges). It is used by tests and by
// tools that deserialize instances.
func (in *Instance) Validate() error {
	for i := range in.tasks {
		if in.tasks[i].ID != TaskID(i) {
			return fmt.Errorf("task %d has id %d", i, in.tasks[i].ID)
		}
		if len(in.tasks[i].Inputs) == 0 {
			return fmt.Errorf("task %d has no inputs", i)
		}
		for _, d := range in.tasks[i].Inputs {
			if d < 0 || int(d) >= len(in.data) {
				return fmt.Errorf("task %d references unknown data %d", i, d)
			}
		}
	}
	for i := range in.data {
		if in.data[i].ID != DataID(i) {
			return fmt.Errorf("data %d has id %d", i, in.data[i].ID)
		}
		if in.data[i].Size <= 0 {
			return fmt.Errorf("data %d has non-positive size", i)
		}
	}
	edges := 0
	for d := range in.consumers {
		for j := 1; j < len(in.consumers[d]); j++ {
			if in.consumers[d][j-1] >= in.consumers[d][j] {
				return fmt.Errorf("consumers of data %d not strictly sorted", d)
			}
		}
		edges += len(in.consumers[d])
	}
	fwd := 0
	for i := range in.tasks {
		fwd += len(in.tasks[i].Inputs)
	}
	if fwd != edges {
		return fmt.Errorf("edge count mismatch: %d forward vs %d reverse", fwd, edges)
	}
	return nil
}

// Summary condenses the sharing structure of an instance: how many tasks
// read each data item drives how much reuse any scheduler can hope for.
type Summary struct {
	// Tasks, Data and Edges are the sizes of the bipartite graph.
	Tasks, Data, Edges int
	// WorkingSetBytes is the total distinct-data footprint.
	WorkingSetBytes int64
	// TotalFlops is the total computation.
	TotalFlops float64
	// MaxInputs is the largest task arity.
	MaxInputs int
	// MinConsumers, AvgConsumers and MaxConsumers describe data sharing
	// (how many tasks read a data item).
	MinConsumers int
	AvgConsumers float64
	MaxConsumers int
}

// Summarize computes the instance's Summary.
func (in *Instance) Summarize() Summary {
	s := Summary{
		Tasks:           in.NumTasks(),
		Data:            in.NumData(),
		WorkingSetBytes: in.WorkingSetBytes(),
		TotalFlops:      in.TotalFlops(),
		MaxInputs:       in.MaxInputs(),
		MinConsumers:    int(^uint(0) >> 1),
	}
	for d := range in.data {
		c := len(in.consumers[d])
		s.Edges += c
		if c < s.MinConsumers {
			s.MinConsumers = c
		}
		if c > s.MaxConsumers {
			s.MaxConsumers = c
		}
	}
	if s.Data > 0 {
		s.AvgConsumers = float64(s.Edges) / float64(s.Data)
	}
	return s
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("%d tasks, %d data (%.1f MB), %d edges, <=%d inputs/task, consumers/data min %d avg %.1f max %d, %.1f GFlop",
		s.Tasks, s.Data, float64(s.WorkingSetBytes)/1e6, s.Edges, s.MaxInputs,
		s.MinConsumers, s.AvgConsumers, s.MaxConsumers, s.TotalFlops/1e9)
}
