package taskgraph

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	orig := buildSmall(t)
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name() != orig.Name() || back.NumTasks() != orig.NumTasks() || back.NumData() != orig.NumData() {
		t.Fatalf("shape mismatch: %s vs %s", back.Name(), orig.Name())
	}
	for i := 0; i < orig.NumTasks(); i++ {
		a, b := orig.Task(TaskID(i)), back.Task(TaskID(i))
		if a.Name != b.Name || a.Flops != b.Flops || len(a.Inputs) != len(b.Inputs) {
			t.Fatalf("task %d differs: %+v vs %+v", i, a, b)
		}
		for j := range a.Inputs {
			if a.Inputs[j] != b.Inputs[j] {
				t.Fatalf("task %d input %d differs", i, j)
			}
		}
	}
	for i := 0; i < orig.NumData(); i++ {
		a, b := orig.Data(DataID(i)), back.Data(DataID(i))
		if a.Name != b.Name || a.Size != b.Size {
			t.Fatalf("data %d differs", i)
		}
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not json":      "{",
		"unknown field": `{"name":"x","bogus":1,"data":[{"name":"d","size":1}],"tasks":[{"name":"t","flops":1,"inputs":[0]}]}`,
		"no tasks":      `{"name":"x","data":[{"name":"d","size":1}],"tasks":[]}`,
		"bad size":      `{"name":"x","data":[{"name":"d","size":0}],"tasks":[{"name":"t","flops":1,"inputs":[0]}]}`,
		"bad flops":     `{"name":"x","data":[{"name":"d","size":1}],"tasks":[{"name":"t","flops":0,"inputs":[0]}]}`,
		"no inputs":     `{"name":"x","data":[{"name":"d","size":1}],"tasks":[{"name":"t","flops":1,"inputs":[]}]}`,
		"bad input":     `{"name":"x","data":[{"name":"d","size":1}],"tasks":[{"name":"t","flops":1,"inputs":[3]}]}`,
		"dup input":     `{"name":"x","data":[{"name":"d","size":1}],"tasks":[{"name":"t","flops":1,"inputs":[0,0]}]}`,
	}
	for name, in := range cases {
		if _, err := ReadJSON(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestJSONRoundTripOutputs(t *testing.T) {
	b := NewBuilder("out")
	d := b.AddData("d", 10)
	b.AddTaskWithOutput("t", 1e9, 77, d)
	orig := b.Build()
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Task(0).OutputBytes != 77 {
		t.Fatalf("output bytes = %d after round trip", back.Task(0).OutputBytes)
	}
	if _, err := ReadJSON(strings.NewReader(
		`{"name":"x","data":[{"name":"d","size":1}],"tasks":[{"name":"t","flops":1,"inputs":[0],"outputBytes":-5}]}`)); err == nil {
		t.Fatal("negative output accepted")
	}
}
