package taskgraph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func buildSmall(t *testing.T) *Instance {
	t.Helper()
	b := NewBuilder("small")
	d0 := b.AddData("D0", 100)
	d1 := b.AddData("D1", 200)
	d2 := b.AddData("D2", 300)
	b.AddTask("T0", 1e9, d0, d1)
	b.AddTask("T1", 2e9, d1)
	b.AddTask("T2", 3e9, d1, d2)
	inst := b.Build()
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestBuilderBasics(t *testing.T) {
	inst := buildSmall(t)
	if inst.Name() != "small" {
		t.Errorf("name = %q", inst.Name())
	}
	if inst.NumTasks() != 3 || inst.NumData() != 3 {
		t.Fatalf("got %d tasks, %d data", inst.NumTasks(), inst.NumData())
	}
	if got := inst.TotalFlops(); got != 6e9 {
		t.Errorf("total flops = %g", got)
	}
	if got := inst.WorkingSetBytes(); got != 600 {
		t.Errorf("working set = %d", got)
	}
	if got := inst.MaxInputs(); got != 2 {
		t.Errorf("max inputs = %d", got)
	}
	if got := inst.MaxDataSize(); got != 300 {
		t.Errorf("max data size = %d", got)
	}
	if got := inst.TaskFootprint(0); got != 300 {
		t.Errorf("footprint(T0) = %d", got)
	}
	if got := inst.TaskFootprint(2); got != 500 {
		t.Errorf("footprint(T2) = %d", got)
	}
}

func TestConsumers(t *testing.T) {
	inst := buildSmall(t)
	cons := inst.Consumers(1) // D1 read by all three tasks
	if len(cons) != 3 {
		t.Fatalf("D1 consumers = %v", cons)
	}
	for i := 1; i < len(cons); i++ {
		if cons[i-1] >= cons[i] {
			t.Fatalf("consumers not sorted: %v", cons)
		}
	}
	if got := inst.Consumers(0); len(got) != 1 || got[0] != 0 {
		t.Fatalf("D0 consumers = %v", got)
	}
}

func TestSharedInputs(t *testing.T) {
	inst := buildSmall(t)
	if got := inst.SharedInputs(0, 2); got != 1 {
		t.Errorf("shared(T0,T2) = %d, want 1 (D1)", got)
	}
	if got := inst.SharedInputs(0, 0); got != 2 {
		t.Errorf("shared(T0,T0) = %d, want 2", got)
	}
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

func TestBuilderPanics(t *testing.T) {
	mustPanic(t, "zero-size data", func() {
		NewBuilder("x").AddData("d", 0)
	})
	mustPanic(t, "negative-size data", func() {
		NewBuilder("x").AddData("d", -5)
	})
	mustPanic(t, "no inputs", func() {
		b := NewBuilder("x")
		b.AddData("d", 1)
		b.AddTask("t", 1)
	})
	mustPanic(t, "zero flops", func() {
		b := NewBuilder("x")
		d := b.AddData("d", 1)
		b.AddTask("t", 0, d)
	})
	mustPanic(t, "unknown data", func() {
		b := NewBuilder("x")
		b.AddData("d", 1)
		b.AddTask("t", 1, DataID(7))
	})
	mustPanic(t, "duplicate input", func() {
		b := NewBuilder("x")
		d := b.AddData("d", 1)
		b.AddTask("t", 1, d, d)
	})
	mustPanic(t, "empty build", func() {
		NewBuilder("x").Build()
	})
	mustPanic(t, "double build", func() {
		b := NewBuilder("x")
		d := b.AddData("d", 1)
		b.AddTask("t", 1, d)
		b.Build()
		b.Build()
	})
}

func TestBuilderCopiesInputs(t *testing.T) {
	b := NewBuilder("x")
	d0 := b.AddData("d0", 1)
	d1 := b.AddData("d1", 1)
	in := []DataID{d0, d1}
	b.AddTask("t", 1, in...)
	in[0] = d1 // must not affect the built task
	inst := b.Build()
	if inst.Inputs(0)[0] != d0 {
		t.Fatal("builder aliased the caller's input slice")
	}
}

// TestEdgeCountProperty: for random instances, the forward edge count
// (sum of input degrees) equals the reverse edge count (sum of consumer
// list lengths), and Validate accepts the instance.
func TestEdgeCountProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nData := 1 + rng.Intn(20)
		nTasks := 1 + rng.Intn(40)
		b := NewBuilder("prop")
		ids := make([]DataID, nData)
		for i := range ids {
			ids[i] = b.AddData("d", int64(1+rng.Intn(1000)))
		}
		fwd := 0
		for i := 0; i < nTasks; i++ {
			k := 1 + rng.Intn(nData)
			perm := rng.Perm(nData)[:k]
			in := make([]DataID, k)
			for j, p := range perm {
				in[j] = ids[p]
			}
			b.AddTask("t", float64(1+rng.Intn(100)), in...)
			fwd += k
		}
		inst := b.Build()
		if inst.Validate() != nil {
			return false
		}
		rev := 0
		for d := 0; d < inst.NumData(); d++ {
			rev += len(inst.Consumers(DataID(d)))
		}
		return rev == fwd
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	inst := buildSmall(t)
	s := inst.Summarize()
	if s.Tasks != 3 || s.Data != 3 || s.Edges != 5 {
		t.Fatalf("summary %+v", s)
	}
	if s.MinConsumers != 1 || s.MaxConsumers != 3 {
		t.Fatalf("consumers %+v", s)
	}
	if s.AvgConsumers < 1.66 || s.AvgConsumers > 1.67 {
		t.Fatalf("avg %g", s.AvgConsumers)
	}
	if s.String() == "" {
		t.Fatal("empty summary string")
	}
}
