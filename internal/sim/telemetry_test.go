package sim_test

import (
	"reflect"
	"testing"
	"time"

	"memsched/internal/memory"
	"memsched/internal/platform"
	"memsched/internal/sched"
	"memsched/internal/sim"
	"memsched/internal/taskgraph"
	"memsched/internal/workload"
)

// TestIdleAttributionBlockedOnBus hand-checks the idle breakdown on the
// FIFO-bus scenario of TestBusIsSharedAndFIFO: two GPUs, one task each,
// disjoint 10-byte inputs (0.1 s transfers, serialized), 1 s compute.
//
//	GPU 0: blocked-on-bus [0, 0.1), busy [0.1, 1.1), done [1.1, 1.2)
//	GPU 1: blocked-on-bus [0, 0.2), busy [0.2, 1.2)
func TestIdleAttributionBlockedOnBus(t *testing.T) {
	b := taskgraph.NewBuilder("two")
	d0 := b.AddData("d0", 10)
	d1 := b.AddData("d1", 10)
	b.AddTask("t0", 1e9, d0)
	b.AddTask("t1", 1e9, d1)
	inst := b.Build()

	res, err := sim.Run(inst, sim.Config{
		Platform:        tinyPlatform(2, 1000),
		Scheduler:       &listSched{queues: [][]taskgraph.TaskID{{0}, {1}}},
		Eviction:        memory.NewLRU(),
		Telemetry:       true,
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	tel := res.Telemetry
	if tel == nil {
		t.Fatal("no telemetry attached")
	}
	want := []sim.GPUTelemetry{
		{BlockedOnBus: 100 * time.Millisecond, Done: 100 * time.Millisecond,
			BusyTime: time.Second, OccupancyHighWater: 10},
		{BlockedOnBus: 200 * time.Millisecond,
			BusyTime: time.Second, OccupancyHighWater: 10},
	}
	for k := range want {
		if tel.GPU[k] != want[k] {
			t.Errorf("gpu %d telemetry = %+v, want %+v", k, tel.GPU[k], want[k])
		}
	}
	// The bus carried two serialized 0.1 s transfers over a 1.2 s run.
	if tel.BusBusy != 200*time.Millisecond {
		t.Errorf("bus busy = %v, want 200ms", tel.BusBusy)
	}
	if diff := tel.BusUtilization - 1.0/6.0; diff < -1e-9 || diff > 1e-9 {
		t.Errorf("bus utilization = %g, want 1/6", tel.BusUtilization)
	}
	if tel.IdleTotal != 400*time.Millisecond {
		t.Errorf("idle total = %v, want 400ms", tel.IdleTotal)
	}
	if len(tel.Occupancy) == 0 {
		t.Error("no occupancy samples")
	}
}

// TestIdleAttributionBlockedOnPeer extends the NVLink peer-load scenario:
// GPU 1's copy of the shared item is diverted to NVLink at t=0.1 s once
// GPU 0 holds it, so GPU 1 waits 0.1 s on the bus queue and then 0.01 s
// on the peer link.
func TestIdleAttributionBlockedOnPeer(t *testing.T) {
	b := taskgraph.NewBuilder("peer")
	d := b.AddData("d", 10)
	b.AddTask("t0", 1e9, d)
	b.AddTask("t1", 1e9, d)
	inst := b.Build()

	res, err := sim.Run(inst, sim.Config{
		Platform:        nvPlatform(2, 1000),
		Scheduler:       &listSched{queues: [][]taskgraph.TaskID{{0}, {1}}},
		Eviction:        memory.NewLRU(),
		Telemetry:       true,
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	tel := res.Telemetry
	g1 := tel.GPU[1]
	if g1.BlockedOnBus != 100*time.Millisecond || g1.BlockedOnPeer != 10*time.Millisecond {
		t.Errorf("gpu 1 blocked-on-bus %v / blocked-on-peer %v, want 100ms / 10ms",
			g1.BlockedOnBus, g1.BlockedOnPeer)
	}
	if g0 := tel.GPU[0]; g0.Done != 10*time.Millisecond {
		t.Errorf("gpu 0 done = %v, want 10ms (tail while gpu 1 finishes)", g0.Done)
	}
	if len(tel.NVLinkBusy) != 2 || tel.NVLinkBusy[1] != 10*time.Millisecond {
		t.Errorf("nvlink busy = %v, want 10ms on gpu 1", tel.NVLinkBusy)
	}
}

// TestIdleAttributionStarved pins the scheduler-cost gate: a pop that
// charges 1 s of scheduling time holds the (transfer-complete) task, so
// the wait splits into 0.1 s blocked-on-bus and 0.9 s starved.
func TestIdleAttributionStarved(t *testing.T) {
	b := taskgraph.NewBuilder("cost")
	d := b.AddData("d", 10)
	b.AddTask("t", 1e9, d)
	inst := b.Build()

	res, err := sim.Run(inst, sim.Config{
		Platform:        tinyPlatform(1, 100),
		Scheduler:       &listSched{queues: [][]taskgraph.TaskID{{0}}, charge: 1e9},
		Eviction:        memory.NewLRU(),
		NsPerOp:         1,
		Telemetry:       true,
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := res.Telemetry.GPU[0]
	if g.BlockedOnBus != 100*time.Millisecond || g.StarvedNoTask != 900*time.Millisecond {
		t.Errorf("blocked-on-bus %v / starved %v, want 100ms / 900ms", g.BlockedOnBus, g.StarvedNoTask)
	}
}

// TestTelemetryReloadsMatchChurn runs the eviction-churn scenario of
// TestEvictedInputOfBufferedTaskIsReloaded with telemetry on:
// CheckInvariants cross-validates the reload counters against the trace,
// and the run must report the churn.
func TestTelemetryReloadsMatchChurn(t *testing.T) {
	b := taskgraph.NewBuilder("refetch")
	var ds []taskgraph.DataID
	for i := 0; i < 6; i++ {
		ds = append(ds, b.AddData("d", 10))
	}
	var q []taskgraph.TaskID
	for _, d := range []int{0, 1, 2, 3, 4, 5, 0, 1, 2, 3, 4, 5} {
		q = append(q, b.AddTask("t", 1e8, ds[d]))
	}
	inst := b.Build()
	res, err := sim.Run(inst, sim.Config{
		Platform:        tinyPlatform(1, 30),
		Scheduler:       &listSched{queues: [][]taskgraph.TaskID{q}},
		Eviction:        memory.NewFIFO(),
		Telemetry:       true,
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	tel := res.Telemetry
	if tel.Reloads == 0 || tel.ReloadedBytes == 0 {
		t.Fatalf("reloads = %d (%d B), expected churn", tel.Reloads, tel.ReloadedBytes)
	}
	if tel.Reloads != res.Loads-6 {
		t.Errorf("reloads = %d, want loads beyond the 6 compulsory = %d", tel.Reloads, res.Loads-6)
	}
	if tel.GPU[0].OccupancyHighWater > 30 {
		t.Errorf("high water %d exceeds memory", tel.GPU[0].OccupancyHighWater)
	}
}

// TestTelemetryCrossValidatesOnRealRuns exercises the CheckTrace
// telemetry validation (idle sums, reload pairs) on DARTS+LUF runs over
// both bus models; any attribution leak fails the run.
func TestTelemetryCrossValidatesOnRealRuns(t *testing.T) {
	inst := workload.Matmul2D(20)
	for _, bus := range []sim.BusModel{sim.BusFIFO, sim.BusFairShare} {
		s, pol := sched.NewDARTSPair(sched.DARTSOptions{LUF: true})()
		var ev sim.EvictionPolicy = pol
		if ev == nil {
			ev = memory.NewLRU()
		}
		res, err := sim.Run(inst, sim.Config{
			Platform:        platform.V100NVLink(3),
			Scheduler:       s,
			Eviction:        ev,
			Seed:            1,
			BusModel:        bus,
			Telemetry:       true,
			CheckInvariants: true,
		})
		if err != nil {
			t.Fatalf("%v bus: %v", bus, err)
		}
		if res.Telemetry.IdleTotal < 0 {
			t.Fatalf("%v bus: negative idle", bus)
		}
	}
}

// TestTelemetryDoesNotPerturbResults pins the pure-observation contract:
// with Config.Telemetry on, every simulated Result field is identical to
// the plain run.
func TestTelemetryDoesNotPerturbResults(t *testing.T) {
	inst := workload.Matmul2D(15)
	run := func(telemetry bool) *sim.Result {
		s, pol := sched.NewDARTSPair(sched.DARTSOptions{LUF: true})()
		var ev sim.EvictionPolicy = pol
		if ev == nil {
			ev = memory.NewLRU()
		}
		res, err := sim.Run(inst, sim.Config{
			Platform:  platform.V100NVLink(2),
			Scheduler: s,
			Eviction:  ev,
			Seed:      7,
			Telemetry: telemetry,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(false)
	observed := run(true)
	if observed.Telemetry == nil {
		t.Fatal("telemetry missing")
	}
	observed.Telemetry = nil
	if !reflect.DeepEqual(plain, observed) {
		t.Fatalf("telemetry perturbed the simulation:\nplain    %+v\nobserved %+v", plain, observed)
	}
}
