package sim_test

import (
	"testing"
	"time"

	"memsched/internal/memory"
	"memsched/internal/platform"
	"memsched/internal/sched"
	"memsched/internal/sim"
	"memsched/internal/taskgraph"
	"memsched/internal/workload"
)

func TestFairShareSplitsBandwidth(t *testing.T) {
	// Two GPUs each fetch one 10-byte input at t=0 (0.1 s alone).
	// FIFO: arrivals at 0.1 and 0.2 -> completions at 1.1 and 1.2.
	// Fair share: both transfers get half the bus and arrive together
	// at 0.2 -> both complete at 1.2.
	b := taskgraph.NewBuilder("fair")
	d0 := b.AddData("d0", 10)
	d1 := b.AddData("d1", 10)
	b.AddTask("t0", 1e9, d0)
	b.AddTask("t1", 1e9, d1)
	inst := b.Build()
	run := func(model sim.BusModel) *sim.Result {
		res, err := sim.Run(inst, sim.Config{
			Platform:        tinyPlatform(2, 1000),
			Scheduler:       &listSched{queues: [][]taskgraph.TaskID{{0}, {1}}},
			Eviction:        memory.NewLRU(),
			BusModel:        model,
			RecordTrace:     true,
			CheckInvariants: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fifo := run(sim.BusFIFO)
	fair := run(sim.BusFairShare)
	if fifo.Makespan != 1200*time.Millisecond {
		t.Fatalf("FIFO makespan = %v", fifo.Makespan)
	}
	if fair.Makespan != 1200*time.Millisecond {
		t.Fatalf("fair makespan = %v", fair.Makespan)
	}
	// The distinguishing run: GPU 0's completion. Under FIFO its data
	// lands at 0.1 s; under fair share at 0.2 s. Check via one-task
	// instance timing per GPU using the trace.
	var fifoFirstLoad, fairFirstLoad time.Duration = 1 << 60, 1 << 60
	for _, ev := range fifo.Trace {
		if ev.Kind == sim.TraceLoad && ev.At < fifoFirstLoad {
			fifoFirstLoad = ev.At
		}
	}
	for _, ev := range fair.Trace {
		if ev.Kind == sim.TraceLoad && ev.At < fairFirstLoad {
			fairFirstLoad = ev.At
		}
	}
	if fifoFirstLoad != 100*time.Millisecond {
		t.Fatalf("FIFO first load at %v", fifoFirstLoad)
	}
	if fairFirstLoad <= 150*time.Millisecond {
		t.Fatalf("fair-share first load at %v, want ~0.2s (shared bus)", fairFirstLoad)
	}
}

func TestFairShareSingleTransferMatchesFIFO(t *testing.T) {
	// With no contention, both models must agree exactly.
	b := taskgraph.NewBuilder("solo")
	d := b.AddData("d", 10)
	b.AddTask("t", 1e9, d)
	inst := b.Build()
	var spans [2]time.Duration
	for i, model := range []sim.BusModel{sim.BusFIFO, sim.BusFairShare} {
		res, err := sim.Run(inst, sim.Config{
			Platform:  tinyPlatform(1, 100),
			Scheduler: &listSched{queues: [][]taskgraph.TaskID{{0}}},
			Eviction:  memory.NewLRU(),
			BusModel:  model,
		})
		if err != nil {
			t.Fatal(err)
		}
		spans[i] = res.Makespan
	}
	diff := spans[0] - spans[1]
	if diff < -time.Microsecond || diff > time.Microsecond {
		t.Fatalf("models disagree without contention: %v vs %v", spans[0], spans[1])
	}
}

// TestFairShareFullWorkload runs a complete constrained workload under
// the fair-share model with invariant checking: totals must match the
// FIFO run's compulsory structure (same loads within a small factor) and
// the trace must stay valid.
func TestFairShareFullWorkload(t *testing.T) {
	inst := workload.Matmul2D(30)
	run := func(model sim.BusModel) *sim.Result {
		s, pol := sched.NewDARTSPair(sched.DARTSOptions{LUF: true})()
		res, err := sim.Run(inst, sim.Config{
			Platform:        platform.V100(2),
			Scheduler:       s,
			Eviction:        pol,
			Seed:            1,
			BusModel:        model,
			CheckInvariants: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fifo := run(sim.BusFIFO)
	fair := run(sim.BusFairShare)
	ratio := float64(fair.Loads) / float64(fifo.Loads)
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("load counts diverge wildly: %d vs %d", fair.Loads, fifo.Loads)
	}
	ratioT := fair.Makespan.Seconds() / fifo.Makespan.Seconds()
	if ratioT < 0.7 || ratioT > 1.4 {
		t.Fatalf("makespans diverge wildly: %v vs %v", fair.Makespan, fifo.Makespan)
	}
}
