package sim

import (
	"fmt"
	"math/rand"
	"time"

	"memsched/internal/fault"
	"memsched/internal/taskgraph"
)

// faultSeedSalt decorrelates the fault RNG stream from the scheduler
// tie-break stream: the same plan seed must perturb every strategy's
// transfers identically, independent of how much tie-break randomness
// the strategy consumes.
const faultSeedSalt = 0x6661756c74 // "fault"

// FaultStats aggregates the degradation metrics of one faulty run,
// attached as Result.Faults. It is nil on fault-free runs (no plan, or
// an empty plan), keeping fault-free results byte-identical to runs
// configured without a plan.
type FaultStats struct {
	// Dropouts is the number of permanent GPU losses that fired.
	Dropouts int `json:"dropouts"`
	// KilledTasks counts tasks killed mid-execution by a dropout.
	KilledTasks int `json:"killed_tasks"`
	// RequeuedTasks counts tasks handed back to the scheduler after a
	// dropout (the killed task plus the dead GPU's window).
	RequeuedTasks int `json:"requeued_tasks"`
	// LostBytes is the volume of resident replicas lost to dropouts.
	LostBytes int64 `json:"lost_bytes"`
	// RetriedTransfers counts transfers that failed at least once;
	// TransferRetries counts the individual failed attempts.
	RetriedTransfers int `json:"retried_transfers"`
	TransferRetries  int `json:"transfer_retries"`
	// BackoffTime is the total simulated time spent in retry backoff.
	BackoffTime time.Duration `json:"backoff_ns"`
	// PressureEvictions counts evictions forced by memory-pressure
	// spikes (also included in the ordinary eviction counters).
	PressureEvictions int `json:"pressure_evictions"`
	// RecoveryTime is the total simulated time between a dropout
	// re-enqueueing tasks and the last of them starting on a survivor:
	// how long the machine took to re-absorb the lost GPU's work.
	RecoveryTime time.Duration `json:"recovery_ns"`
}

// initFaults validates and arms a non-empty fault plan on the engine:
// it allocates the stats, seeds the independent fault RNG, and posts
// the dropout and pressure events. Called once before the first pass;
// never called for nil/empty plans, so fault-free runs post no events
// and consume no fault randomness.
func (e *engine) initFaults(plan *fault.Plan, maxFootprint int64) error {
	if err := plan.Validate(e.plat.NumGPUs); err != nil {
		return err
	}
	for i, p := range plan.Pressures {
		// Same progress guarantee as the base memory check: under the
		// spike, the running task and the window head must still fit.
		if e.plat.MemoryBytes-p.Bytes < 2*maxFootprint {
			return fmt.Errorf("sim: pressure %d withholds %d B, leaving %d B < two task footprints (%d B)",
				i, p.Bytes, e.plat.MemoryBytes-p.Bytes, 2*maxFootprint)
		}
	}
	e.faults = plan
	e.fstats = &FaultStats{}
	if t := plan.Transient; t != nil && t.Rate > 0 {
		e.faultRNG = rand.New(rand.NewSource(plan.Seed ^ faultSeedSalt))
	}
	for _, d := range plan.Dropouts {
		e.post(event{at: d.At, kind: evDropout, gpu: d.GPU, task: taskgraph.NoTask, data: taskgraph.NoData})
	}
	for i, p := range plan.Pressures {
		e.post(event{at: p.At, kind: evPressureOn, gpu: p.GPU, task: taskgraph.NoTask, data: taskgraph.NoData, gen: int64(i)})
		e.post(event{at: p.At + p.Duration, kind: evPressureOff, gpu: p.GPU, task: taskgraph.NoTask, data: taskgraph.NoData, gen: int64(i)})
	}
	return nil
}

// isFaultEvent reports whether kind is fault administration rather than
// workload progress. Once every task has completed, pending fault events
// are skipped without advancing the clock so they cannot stretch the
// makespan or the telemetry accrual.
func isFaultEvent(k eventKind) bool {
	return k == evDropout || k == evPressureOn || k == evPressureOff
}

// memLimit is the effective memory budget of GPU k: the platform memory
// minus any active pressure spike.
func (e *engine) memLimit(k int) int64 {
	return e.plat.MemoryBytes - e.gpus[k].pressure
}

// transientDelay draws the retry schedule for one transfer starting now:
// the number of failed attempts (geometric with the plan's rate, capped
// at MaxRetries so transfers always complete) and the total exponential
// backoff to charge. Fault-free engines return (0, 0) without touching
// any RNG. emit records one TraceRetry per failed attempt.
func (e *engine) transientDelay(gpu int, d taskgraph.DataID, t taskgraph.TaskID) time.Duration {
	if e.faultRNG == nil {
		return 0
	}
	tr := e.faults.Transient
	fails := 0
	for fails < tr.MaxRetries && e.faultRNG.Float64() < tr.Rate {
		fails++
	}
	if fails == 0 {
		return 0
	}
	var extra time.Duration
	for i := 0; i < fails; i++ {
		extra += tr.Backoff << i
		e.record(TraceEvent{At: e.now, Kind: TraceRetry, GPU: gpu, Task: t, Data: d})
	}
	e.fstats.RetriedTransfers++
	e.fstats.TransferRetries += fails
	e.fstats.BackoffTime += extra
	return extra
}

// dropout executes a permanent GPU loss: kill the running task, drop all
// resident replicas (notifying the eviction policy and scheduler, which
// invalidates replica bookkeeping and revokes planned work), discard
// transfers headed to the dead GPU, and hand the killed and never-started
// tasks back to the scheduler through its DropoutHandler hook.
func (e *engine) dropout(k int) {
	g := &e.gpus[k]
	if g.dead {
		return
	}
	g.dead = true
	e.fstats.Dropouts++
	e.record(TraceEvent{At: e.now, Kind: TraceDropout, GPU: k, Task: taskgraph.NoTask, Data: taskgraph.NoData})

	// Kill the in-flight task. Its completion event becomes stale
	// (taskDone ignores dead GPUs); only the partial execution up to now
	// counts as busy time, keeping the telemetry invariant exact.
	var requeue []taskgraph.TaskID
	if t := g.running; t != taskgraph.NoTask {
		dur := e.plat.TaskDurationOn(k, e.inst.Task(t).Flops)
		g.stats.BusyTime += (e.now - g.runStart) - dur
		g.running = taskgraph.NoTask
		e.fstats.KilledTasks++
		e.record(TraceEvent{At: e.now, Kind: TraceTaskKill, GPU: k, Task: t, Data: taskgraph.NoData})
		requeue = append(requeue, t)
	}
	for i := range g.buffer {
		requeue = append(requeue, g.buffer[i].task)
	}
	g.buffer = nil
	g.pendingFetch = nil

	// Lose the resident replicas, in ascending data order for
	// determinism. This goes through the same Evicted/DataEvicted
	// notifications as an eviction (so LRU lists and DARTS' loaded sets
	// stay coherent, and LUF revokes planned tasks reading the data) but
	// not through doEvict: a lost replica is not an eviction decision
	// and must not inflate the eviction counters.
	for di := range g.resident {
		if !g.resident[di] {
			continue
		}
		d := taskgraph.DataID(di)
		size := e.inst.Data(d).Size
		g.resident[di] = false
		g.residentBytes -= size
		e.fstats.LostBytes += size
		e.record(TraceEvent{At: e.now, Kind: TraceDataLost, GPU: k, Task: taskgraph.NoTask, Data: d})
		e.evict.Evicted(k, d)
		e.sched.DataEvicted(k, d)
	}
	g.residentList = g.residentList[:0] // every replica was just lost

	// Discard transfers headed to the dead GPU. Queued host-bus loads
	// are removed; the in-flight one completes on the bus but its
	// arrival is discarded (transferDone/fairCheck/peerDone check dead).
	// Write-backs already handed to the bus keep going: their payload
	// left the GPU when they were enqueued. NVLink transfers already
	// started snapshot their source, so in-flight ones deliver normally
	// to live destinations.
	for i := range g.arriving {
		g.arriving[i] = false
		g.arrivingPeer[i] = false
	}
	g.reservedBytes = 0
	g.nvq.reset()
	if e.busModel == BusFairShare {
		e.fairAdvance()
		kept := e.fair.active[:0]
		removed := false
		for _, tr := range e.fair.active {
			if tr.req.gpu == k && !tr.req.writeback {
				removed = true
				continue
			}
			kept = append(kept, tr)
		}
		e.fair.active = kept
		if removed {
			if e.tel != nil && len(kept) == 0 {
				e.tel.busBusy += e.now - e.tel.fairSince
			}
			e.fairReschedule()
		}
	} else {
		e.bus.q.dropGPU(k)
	}

	// Hand the dead GPU's popped-but-unfinished tasks back to the
	// scheduler. A scheduler without the hook cannot reabsorb them; the
	// run then drains and the stall diagnostic names the lost tasks.
	if dh, ok := e.sched.(DropoutHandler); ok && len(requeue) > 0 {
		if e.requeued == nil {
			e.requeued = make([]bool, e.inst.NumTasks())
		}
		added := false
		for _, t := range requeue {
			if !e.requeued[t] {
				e.requeued[t] = true
				if e.recoveryOutstanding == 0 && !added {
					e.recoveryStart = e.now
				}
				e.recoveryOutstanding++
				added = true
			}
		}
		e.fstats.RequeuedTasks += len(requeue)
		dh.GPUDropped(k, requeue)
	} else if len(requeue) > 0 {
		e.fstats.RequeuedTasks += len(requeue)
	}
}

// recoveredStart notes that a dropout-requeued task started on a
// survivor; when the last outstanding one starts, the recovery interval
// closes into FaultStats.RecoveryTime.
func (e *engine) recoveredStart(t taskgraph.TaskID) {
	if e.requeued == nil || !e.requeued[t] {
		return
	}
	e.requeued[t] = false
	e.recoveryOutstanding--
	if e.recoveryOutstanding == 0 {
		e.fstats.RecoveryTime += e.now - e.recoveryStart
	}
}

// pressureOn applies a memory-pressure spike to GPU k: the budget
// shrinks and unpinned data is evicted down to it (best effort — data
// pinned by the running task or the window head stays, and in-flight
// arrivals may briefly overshoot the shrunk budget).
func (e *engine) pressureOn(k int, p fault.Pressure) {
	g := &e.gpus[k]
	if g.dead {
		return
	}
	g.pressure += p.Bytes
	e.record(TraceEvent{At: e.now, Kind: TracePressureOn, GPU: k, Task: taskgraph.NoTask, Data: taskgraph.NoData})
	limit := e.memLimit(k)
	// As in ensureSpace, the candidate list is built once and the victim
	// removed after each eviction — byte-identical to the per-iteration
	// rebuild, since only doEvict changes residency here.
	var cands []taskgraph.DataID
	var mark []int64
	var epoch int64
	built := false
	for g.residentBytes+g.reservedBytes > limit {
		if !built {
			cands, mark, epoch = e.evictionCandidates(k)
			built = true
		}
		if len(cands) == 0 {
			return
		}
		v := e.evict.Victim(k, cands)
		if !g.resident[v] || mark[v] == epoch {
			panic(fmt.Sprintf("sim: eviction policy %s chose invalid victim %d on gpu %d", e.evict.Name(), v, k))
		}
		e.doEvict(k, v)
		cands = removeID(cands, v)
		e.fstats.PressureEvictions++
	}
}

// pressureOff lifts a spike; the next pass retries parked fetches.
func (e *engine) pressureOff(k int, p fault.Pressure) {
	g := &e.gpus[k]
	if g.dead {
		return
	}
	g.pressure -= p.Bytes
	e.record(TraceEvent{At: e.now, Kind: TracePressureOff, GPU: k, Task: taskgraph.NoTask, Data: taskgraph.NoData})
}
