package sim_test

import (
	"testing"

	"memsched/internal/memory"
	"memsched/internal/platform"
	"memsched/internal/sched"
	"memsched/internal/sim"
	"memsched/internal/workload"
)

func TestSmokeEagerMatmul2D(t *testing.T) {
	inst := workload.Matmul2D(10)
	res, err := sim.Run(inst, sim.Config{
		Platform:        platform.V100(1),
		Scheduler:       sched.NewEager()(),
		Eviction:        memory.NewLRU(),
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.GFlops <= 0 || res.GFlops > platform.V100(1).PeakGFlops() {
		t.Fatalf("implausible throughput %g", res.GFlops)
	}
	// 20 data items of 14.7456 MB fit in 500 MB: each must be loaded
	// exactly once.
	if res.Loads != 20 {
		t.Fatalf("got %d loads, want 20 (everything fits)", res.Loads)
	}
	if res.Evictions != 0 {
		t.Fatalf("got %d evictions, want 0", res.Evictions)
	}
	t.Log(res)
}

func TestSmokeDMDARTwoGPUs(t *testing.T) {
	inst := workload.Matmul2D(12)
	res, err := sim.Run(inst, sim.Config{
		Platform:        platform.V100(2),
		Scheduler:       sched.NewDMDAR(0)(),
		Eviction:        memory.NewLRU(),
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.GPU[0].Tasks == 0 || res.GPU[1].Tasks == 0 {
		t.Fatalf("load imbalance: %+v", res.GPU)
	}
	t.Log(res)
}

func TestSmokeMemoryConstrained(t *testing.T) {
	// At n=40, matrix B alone (590 MB) exceeds the 500 MB memory: the
	// EAGER+LRU pathology of §V-B must appear (reloads of B every row),
	// and the trace must stay valid.
	inst := workload.Matmul2D(40)
	res, err := sim.Run(inst, sim.Config{
		Platform:        platform.V100(1),
		Scheduler:       sched.NewEager()(),
		Eviction:        memory.NewLRU(),
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evictions == 0 {
		t.Fatal("expected evictions under memory pressure")
	}
	if res.Loads <= inst.NumData() {
		t.Fatalf("expected reloads: %d loads for %d data", res.Loads, inst.NumData())
	}
	t.Log(res)
}
