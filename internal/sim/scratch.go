package sim

import (
	"memsched/internal/taskgraph"
)

// Scratch is reusable engine state. A Run configured with a Scratch
// (Config.Scratch) takes every per-run transient buffer — the event
// queue, the per-GPU residency/arrival/window/pending slices, the bus and
// NVLink queues, the trace buffer, the telemetry accumulator and the
// eviction scratch — from it instead of the heap, and hands them back
// when the run ends. Replaying many runs through one Scratch (a sweep's
// replicas, a benchmark loop) therefore allocates almost nothing after
// the first run: the backing arrays reach their steady-state capacity
// once and are reset, not reallocated.
//
// Reuse never changes results: every buffer is cleared or re-sliced to
// zero length on acquisition, and TestScratchReuseConformance pins
// byte-identical traces against scratch-free runs. Buffers that outlive
// the run inside the Result (LoadsPerData, a recorded Trace, the
// telemetry occupancy timeline) are freshly allocated or handed off, so
// results from earlier runs are never overwritten.
//
// A Scratch serves one Run at a time: it is NOT safe for concurrent use.
// Give each worker goroutine its own Scratch (as internal/expr does).
type Scratch struct {
	inUse bool

	events     []event
	gpus       []gpuState
	busQueue   []fetchReq
	fairActive []fairTransfer
	fairDone   []fetchReq
	trace      []TraceEvent
	done       []bool

	// dataMark is the epoch-marked per-data scratch behind the protected
	// set and pending-fetch dedup (the same trick as the DARTS arrays of
	// PR 1): membership is mark[d] == dataEpoch, and bumping the epoch
	// clears the set in O(1). Marks only ever hold past epoch values, so
	// stale entries can never collide with a newer epoch.
	dataMark  []int64
	dataEpoch int64

	// cands is the shared eviction-candidate buffer of ensureSpace and
	// pressureOn. Policies receive it read-only for the duration of one
	// Victim call and must not retain it (none of the built-ins do).
	cands []taskgraph.DataID

	tel *telemetryState
}

// NewScratch returns an empty Scratch. The zero value is also valid; the
// constructor exists for call-site clarity.
func NewScratch() *Scratch { return new(Scratch) }

// resizeBools returns s with length n and every element false, reusing
// the backing array when it is large enough.
func resizeBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = false
	}
	return s
}

// attach points every transient engine buffer at the scratch state,
// reset for a fresh run.
func (sc *Scratch) attach(e *engine, numGPUs, numData, numTasks int) {
	if sc.inUse {
		panic("sim: Scratch used by two runs at once (give each goroutine its own)")
	}
	sc.inUse = true
	e.sc = sc

	e.eq.a = sc.events[:0]
	e.bus.q.a = sc.busQueue[:0]
	e.bus.q.head = 0
	e.fair.active = sc.fairActive[:0]
	e.trace = sc.trace[:0]

	if cap(sc.done) < numTasks {
		sc.done = make([]bool, numTasks)
	} else {
		sc.done = resizeBools(sc.done, numTasks)
	}
	e.done = sc.done

	if cap(sc.dataMark) < numData {
		sc.dataMark = make([]int64, numData)
	} else {
		sc.dataMark = sc.dataMark[:numData]
	}

	if cap(sc.gpus) < numGPUs {
		sc.gpus = make([]gpuState, numGPUs)
	} else {
		sc.gpus = sc.gpus[:numGPUs]
	}
	for k := range sc.gpus {
		g := &sc.gpus[k]
		g.id = k
		g.resident = resizeBools(g.resident, numData)
		g.arriving = resizeBools(g.arriving, numData)
		g.arrivingPeer = resizeBools(g.arrivingPeer, numData)
		g.residentList = g.residentList[:0]
		g.residentBytes = 0
		g.reservedBytes = 0
		g.buffer = g.buffer[:0]
		g.running = taskgraph.NoTask
		g.pendingFetch = g.pendingFetch[:0]
		g.schedClock = 0
		g.stats = GPUStats{}
		g.nvq.reset()
		g.nvActive = false
		g.dead = false
		g.pressure = 0
		g.runStart = 0
	}
	e.gpus = sc.gpus
}

// marks returns the per-data mark array under a fresh epoch: an empty
// set over all data ids, without touching the array.
func (sc *Scratch) marks() ([]int64, int64) {
	sc.dataEpoch++
	return sc.dataMark, sc.dataEpoch
}

// detach reclaims the buffers whose headers live on the engine (they may
// have grown), releasing the scratch for the next run. A trace being
// retained by the Result is handed off instead of reclaimed.
func (sc *Scratch) detach(e *engine, keepTrace bool) {
	sc.events = e.eq.a[:0]
	sc.gpus = e.gpus
	sc.busQueue = e.bus.q.a[:0]
	sc.fairActive = e.fair.active[:0]
	if keepTrace {
		sc.trace = nil
	} else {
		sc.trace = e.trace[:0]
	}
	sc.inUse = false
}
