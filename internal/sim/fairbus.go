package sim

import (
	"time"

	"memsched/internal/taskgraph"
)

// Fair-share bus model: all in-flight host transfers progress
// concurrently, each receiving bandwidth/n. This approximates the
// fluid-flow contention model of network simulators such as SimGrid,
// which the paper's simulated experiments rely on. The FIFO model
// (busEnqueue/busStartNext in engine.go) remains the default.

// fairTransfer is one in-flight transfer under the fair-share model.
type fairTransfer struct {
	req       fetchReq
	remaining float64 // bytes still to move, including the latency cost
}

type fairBusState struct {
	active     []fairTransfer
	lastUpdate time.Duration
	gen        int64 // invalidates scheduled completion checks
}

// fairEnqueue adds a transfer under the fair-share model. The fixed
// per-transfer latency is folded into an equivalent byte count so that a
// lone transfer takes exactly TransferDuration(size).
func (e *engine) fairEnqueue(req fetchReq) {
	e.fairAdvance()
	if e.tel != nil && len(e.fair.active) == 0 {
		// Bus goes from idle to busy; the span closes in fairCheck.
		e.tel.fairSince = e.now
	}
	latencyBytes := e.plat.TransferLatency.Seconds() * e.plat.BusBytesPerSecond
	bytes := req.bytes
	if !req.writeback {
		bytes = e.inst.Data(req.data).Size
	}
	size := float64(bytes) + latencyBytes
	if e.faultRNG != nil {
		// Transient failures are folded into equivalent bytes, like the
		// latency: the retries consume this transfer's bandwidth share.
		var extra time.Duration
		if req.writeback {
			extra = e.transientDelay(req.gpu, taskgraph.NoData, taskgraph.TaskID(req.data))
		} else {
			extra = e.transientDelay(req.gpu, req.data, taskgraph.NoTask)
		}
		size += extra.Seconds() * e.plat.BusBytesPerSecond
	}
	e.fair.active = append(e.fair.active, fairTransfer{req: req, remaining: size})
	e.fairReschedule()
}

// fairAdvance progresses every in-flight transfer to the current time.
func (e *engine) fairAdvance() {
	elapsed := e.now - e.fair.lastUpdate
	e.fair.lastUpdate = e.now
	n := len(e.fair.active)
	if n == 0 || elapsed <= 0 {
		return
	}
	share := elapsed.Seconds() * e.plat.BusBytesPerSecond / float64(n)
	for i := range e.fair.active {
		e.fair.active[i].remaining -= share
	}
}

// fairReschedule posts a completion check for the earliest-finishing
// transfer, invalidating any previously scheduled check.
func (e *engine) fairReschedule() {
	e.fair.gen++
	n := len(e.fair.active)
	if n == 0 {
		return
	}
	minRemaining := e.fair.active[0].remaining
	for _, tr := range e.fair.active[1:] {
		if tr.remaining < minRemaining {
			minRemaining = tr.remaining
		}
	}
	if minRemaining < 0 {
		minRemaining = 0
	}
	sec := minRemaining * float64(n) / e.plat.BusBytesPerSecond
	// Round up and advance at least one nanosecond: posting the check at
	// the current instant would re-run it with zero elapsed time and no
	// progress, looping forever.
	d := time.Duration(sec * float64(time.Second))
	if d < time.Nanosecond {
		d = time.Nanosecond
	}
	e.post(event{at: e.now + d, kind: evFairCheck, task: taskgraph.NoTask, data: taskgraph.NoData, gen: e.fair.gen})
}

// fairCheck handles a completion-check event: stale generations are
// ignored; otherwise finished transfers are delivered and the next check
// scheduled.
func (e *engine) fairCheck(gen int64) {
	if gen != e.fair.gen {
		return
	}
	e.fairAdvance()
	const eps = 0.5 // bytes; transfers within half a byte are complete
	kept := e.fair.active[:0]
	done := e.sc.fairDone[:0]
	for _, tr := range e.fair.active {
		if tr.remaining <= eps {
			done = append(done, tr.req)
		} else {
			kept = append(kept, tr)
		}
	}
	e.fair.active = kept
	if e.tel != nil && len(done) > 0 && len(kept) == 0 {
		// Bus drained: close the busy span opened at fairSince.
		e.tel.busBusy += e.now - e.tel.fairSince
	}
	for _, req := range done {
		if req.writeback {
			t := taskgraph.TaskID(req.data)
			e.gpus[req.gpu].stats.BytesOut += e.inst.Task(t).OutputBytes
			e.record(TraceEvent{At: e.now, Kind: TraceWriteBack, GPU: req.gpu, Task: t, Data: taskgraph.NoData})
			continue
		}
		if e.gpus[req.gpu].dead {
			// Loads to a dead GPU are removed at dropout; this guards the
			// window where one completes in the same instant.
			continue
		}
		e.hostArrived(req.gpu, req.data)
	}
	e.sc.fairDone = done[:0]
	e.fairReschedule()
}
