package sim

import (
	"fmt"
	"strings"

	"memsched/internal/taskgraph"
)

// maxStallDetails bounds how many stuck tasks the stall diagnostic names.
const maxStallDetails = 8

// stallError builds the diagnostic returned when the event queue drains
// with unfinished tasks: a recovery-path or scheduler bug. Instead of the
// bare count it names the stuck tasks and what they are missing — popped
// tasks waiting on inputs that will never arrive, and tasks the scheduler
// never handed out (e.g. stranded on a dead GPU by a scheduler without a
// DropoutHandler).
func (e *engine) stallError() error {
	var b strings.Builder
	fmt.Fprintf(&b, "sim: stalled with %d/%d tasks completed (scheduler %s)",
		e.completed, e.inst.NumTasks(), e.sched.Name())

	var dead []int
	for k := range e.gpus {
		if e.gpus[k].dead {
			dead = append(dead, k)
		}
	}
	if len(dead) > 0 {
		fmt.Fprintf(&b, "; dead GPUs %v", dead)
		if _, ok := e.sched.(DropoutHandler); !ok {
			fmt.Fprintf(&b, " (scheduler has no DropoutHandler, their tasks are stranded)")
		}
	}

	details := 0
	assigned := make([]bool, e.inst.NumTasks())
	for k := range e.gpus {
		g := &e.gpus[k]
		if g.running != taskgraph.NoTask {
			assigned[g.running] = true
		}
		for i := range g.buffer {
			t := g.buffer[i].task
			assigned[t] = true
			if details >= maxStallDetails {
				continue
			}
			details++
			var missing []taskgraph.DataID
			for _, d := range e.inst.Inputs(t) {
				if !g.resident[d] {
					missing = append(missing, d)
				}
			}
			fmt.Fprintf(&b, "\n  task %d stuck in gpu %d window, missing data %v", t, k, missing)
			for _, d := range missing {
				state := "no transfer queued or in flight"
				if g.arriving[d] {
					state = "marked arriving but no completion pending"
				} else {
					for _, p := range g.pendingFetch {
						if p.data == d {
							state = "fetch parked waiting for memory"
							break
						}
					}
				}
				fmt.Fprintf(&b, "\n    data %d: %s", d, state)
			}
		}
	}

	unassigned := 0
	for t := 0; t < e.inst.NumTasks(); t++ {
		if e.done[t] || assigned[taskgraph.TaskID(t)] {
			continue
		}
		unassigned++
		if details < maxStallDetails {
			details++
			fmt.Fprintf(&b, "\n  task %d never handed out by the scheduler", t)
		}
	}
	if stuck := e.inst.NumTasks() - e.completed; details < stuck {
		fmt.Fprintf(&b, "\n  ... and %d more stuck tasks (%d never handed out)", stuck-details, unassigned)
	}
	return fmt.Errorf("%s", b.String())
}
