package sim

import (
	"encoding/json"
	"fmt"
	"io"

	"memsched/internal/platform"
	"memsched/internal/taskgraph"
)

// chromeEvent is one entry of the Chrome trace-event format
// (chrome://tracing, or ui.perfetto.dev).
type chromeEvent struct {
	Name  string  `json:"name"`
	Phase string  `json:"ph"`
	TS    float64 `json:"ts"`  // microseconds
	Dur   float64 `json:"dur"` // microseconds
	PID   int     `json:"pid"`
	TID   int     `json:"tid"`
	Cat   string  `json:"cat,omitempty"`
}

// WriteChromeTrace exports a recorded trace in the Chrome trace-event JSON
// format: one timeline row per GPU (kernels), one for the shared bus
// (host transfers), one per NVLink channel, plus instant eviction marks.
// Open the output in chrome://tracing or ui.perfetto.dev.
func WriteChromeTrace(w io.Writer, inst *taskgraph.Instance, plat platform.Platform, res *Result) error {
	if len(res.Trace) == 0 {
		return fmt.Errorf("sim: WriteChromeTrace requires a recorded trace")
	}
	const (
		tidBus    = 1000
		tidNVBase = 2000
	)
	us := func(d int64) float64 { return float64(d) / 1e3 }
	events := make([]chromeEvent, 0, len(res.Trace))
	running := make(map[int]int64, plat.NumGPUs)
	for _, ev := range res.Trace {
		switch ev.Kind {
		case TraceStart:
			running[ev.GPU] = int64(ev.At)
		case TraceEnd:
			from := running[ev.GPU]
			events = append(events, chromeEvent{
				Name:  inst.Task(ev.Task).Name,
				Phase: "X",
				TS:    us(from),
				Dur:   us(int64(ev.At) - from),
				PID:   0,
				TID:   ev.GPU,
				Cat:   "compute",
			})
		case TraceLoad:
			dur := plat.TransferDuration(inst.Data(ev.Data).Size)
			events = append(events, chromeEvent{
				Name:  fmt.Sprintf("%s -> gpu%d", inst.Data(ev.Data).Name, ev.GPU),
				Phase: "X",
				TS:    us(int64(ev.At) - int64(dur)),
				Dur:   us(int64(dur)),
				PID:   0,
				TID:   tidBus,
				Cat:   "transfer",
			})
		case TracePeerLoad:
			dur := plat.PeerTransferDuration(inst.Data(ev.Data).Size)
			events = append(events, chromeEvent{
				Name:  fmt.Sprintf("%s -> gpu%d (peer)", inst.Data(ev.Data).Name, ev.GPU),
				Phase: "X",
				TS:    us(int64(ev.At) - int64(dur)),
				Dur:   us(int64(dur)),
				PID:   0,
				TID:   tidNVBase + ev.GPU,
				Cat:   "nvlink",
			})
		case TraceEvict:
			events = append(events, chromeEvent{
				Name:  fmt.Sprintf("evict %s", inst.Data(ev.Data).Name),
				Phase: "i",
				TS:    us(int64(ev.At)),
				PID:   0,
				TID:   ev.GPU,
				Cat:   "evict",
			})
		case TraceDropout:
			events = append(events, chromeEvent{
				Name:  fmt.Sprintf("gpu%d dropout", ev.GPU),
				Phase: "i",
				TS:    us(int64(ev.At)),
				PID:   0,
				TID:   ev.GPU,
				Cat:   "fault",
			})
		case TraceTaskKill:
			events = append(events, chromeEvent{
				Name:  fmt.Sprintf("kill %s", inst.Task(ev.Task).Name),
				Phase: "i",
				TS:    us(int64(ev.At)),
				PID:   0,
				TID:   ev.GPU,
				Cat:   "fault",
			})
			// The killed task's open compute span never gets a TraceEnd;
			// forget it so a later span on this GPU row starts clean.
			delete(running, ev.GPU)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{events})
}
