package sim

import (
	"encoding/json"
	"fmt"
	"io"

	"memsched/internal/platform"
	"memsched/internal/taskgraph"
)

// chromeEvent is one entry of the Chrome trace-event format
// (chrome://tracing, or ui.perfetto.dev).
type chromeEvent struct {
	Name  string            `json:"name"`
	Phase string            `json:"ph"`
	TS    float64           `json:"ts"`            // microseconds
	Dur   float64           `json:"dur,omitempty"` // microseconds
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Cat   string            `json:"cat,omitempty"`
	Cname string            `json:"cname,omitempty"` // reserved chrome://tracing color name
	Args  map[string]string `json:"args,omitempty"`
}

// ChromeSpan is one extra "X" span injected into the export on a custom
// timeline row — used by the critical-path highlighter to draw the
// attribution track under the GPU rows.
type ChromeSpan struct {
	Name       string
	Start, End int64 // nanoseconds, same clock as TraceEvent.At
	TID        int
	Cat        string
	Cname      string
}

// ChromeTraceOptions customizes WriteChromeTraceWith.
type ChromeTraceOptions struct {
	// Color, when non-nil, picks a chrome://tracing reserved color name
	// for the span or mark derived from each trace event ("" keeps the
	// default palette). Recognized names include "good", "bad",
	// "terrible", "grey", "yellow", "olive", "black".
	Color func(TraceEvent) string
	// Extra spans are appended verbatim on their own rows; rows named in
	// TrackNames (tid -> label) get a thread_name metadata record so the
	// viewer shows a readable label.
	Extra      []ChromeSpan
	TrackNames map[int]string
}

// WriteChromeTrace exports a recorded trace in the Chrome trace-event JSON
// format: one timeline row per GPU (kernels), one for the shared bus
// (host transfers and write-backs), one per NVLink channel, plus instant
// marks for evictions, faults, retries and pressure edges. Open the
// output in chrome://tracing or ui.perfetto.dev.
func WriteChromeTrace(w io.Writer, inst *taskgraph.Instance, plat platform.Platform, res *Result) error {
	return WriteChromeTraceWith(w, inst, plat, res, ChromeTraceOptions{})
}

// WriteChromeTraceWith is WriteChromeTrace with per-event coloring and
// extra custom-track spans (see ChromeTraceOptions).
func WriteChromeTraceWith(w io.Writer, inst *taskgraph.Instance, plat platform.Platform, res *Result, opts ChromeTraceOptions) error {
	if len(res.Trace) == 0 {
		return fmt.Errorf("sim: WriteChromeTrace requires a recorded trace")
	}
	const (
		tidBus    = 1000
		tidNVBase = 2000
	)
	us := func(d int64) float64 { return float64(d) / 1e3 }
	color := func(ev TraceEvent) string {
		if opts.Color == nil {
			return ""
		}
		return opts.Color(ev)
	}
	events := make([]chromeEvent, 0, len(res.Trace)+len(opts.Extra))
	running := make(map[int]int64, plat.NumGPUs)
	for _, ev := range res.Trace {
		switch ev.Kind {
		case TraceStart:
			running[ev.GPU] = int64(ev.At)
		case TraceEnd:
			from := running[ev.GPU]
			events = append(events, chromeEvent{
				Name:  inst.Task(ev.Task).Name,
				Phase: "X",
				TS:    us(from),
				Dur:   us(int64(ev.At) - from),
				PID:   0,
				TID:   ev.GPU,
				Cat:   "compute",
				Cname: color(ev),
			})
		case TraceLoad:
			dur := plat.TransferDuration(inst.Data(ev.Data).Size)
			events = append(events, chromeEvent{
				Name:  fmt.Sprintf("%s -> gpu%d", inst.Data(ev.Data).Name, ev.GPU),
				Phase: "X",
				TS:    us(int64(ev.At) - int64(dur)),
				Dur:   us(int64(dur)),
				PID:   0,
				TID:   tidBus,
				Cat:   "transfer",
				Cname: color(ev),
			})
		case TracePeerLoad:
			dur := plat.PeerTransferDuration(inst.Data(ev.Data).Size)
			events = append(events, chromeEvent{
				Name:  fmt.Sprintf("%s -> gpu%d (peer)", inst.Data(ev.Data).Name, ev.GPU),
				Phase: "X",
				TS:    us(int64(ev.At) - int64(dur)),
				Dur:   us(int64(dur)),
				PID:   0,
				TID:   tidNVBase + ev.GPU,
				Cat:   "nvlink",
				Cname: color(ev),
			})
		case TraceWriteBack:
			dur := plat.TransferDuration(inst.Task(ev.Task).OutputBytes)
			events = append(events, chromeEvent{
				Name:  fmt.Sprintf("%s writeback", inst.Task(ev.Task).Name),
				Phase: "X",
				TS:    us(int64(ev.At) - int64(dur)),
				Dur:   us(int64(dur)),
				PID:   0,
				TID:   tidBus,
				Cat:   "writeback",
				Cname: color(ev),
			})
		case TraceEvict:
			events = append(events, chromeEvent{
				Name:  fmt.Sprintf("evict %s", inst.Data(ev.Data).Name),
				Phase: "i",
				TS:    us(int64(ev.At)),
				PID:   0,
				TID:   ev.GPU,
				Cat:   "evict",
				Cname: color(ev),
			})
		case TraceDropout:
			events = append(events, chromeEvent{
				Name:  fmt.Sprintf("gpu%d dropout", ev.GPU),
				Phase: "i",
				TS:    us(int64(ev.At)),
				PID:   0,
				TID:   ev.GPU,
				Cat:   "fault",
				Cname: color(ev),
			})
		case TraceTaskKill:
			// Render the lost partial execution as its own span so the
			// viewer shows where the work was thrown away, then an
			// instant kill mark at the fault time.
			if from, ok := running[ev.GPU]; ok {
				events = append(events, chromeEvent{
					Name:  fmt.Sprintf("%s (killed)", inst.Task(ev.Task).Name),
					Phase: "X",
					TS:    us(from),
					Dur:   us(int64(ev.At) - from),
					PID:   0,
					TID:   ev.GPU,
					Cat:   "fault",
					Cname: "terrible",
				})
			}
			events = append(events, chromeEvent{
				Name:  fmt.Sprintf("kill %s", inst.Task(ev.Task).Name),
				Phase: "i",
				TS:    us(int64(ev.At)),
				PID:   0,
				TID:   ev.GPU,
				Cat:   "fault",
				Cname: color(ev),
			})
			// The killed task's open compute span never gets a TraceEnd;
			// forget it so a later span on this GPU row starts clean.
			delete(running, ev.GPU)
		case TraceDataLost:
			events = append(events, chromeEvent{
				Name:  fmt.Sprintf("lost %s", inst.Data(ev.Data).Name),
				Phase: "i",
				TS:    us(int64(ev.At)),
				PID:   0,
				TID:   ev.GPU,
				Cat:   "fault",
				Cname: color(ev),
			})
		case TraceRetry:
			name := "retry"
			if ev.Data != taskgraph.NoData {
				name = fmt.Sprintf("retry %s -> gpu%d", inst.Data(ev.Data).Name, ev.GPU)
			} else if ev.Task != taskgraph.NoTask {
				name = fmt.Sprintf("retry %s writeback", inst.Task(ev.Task).Name)
			}
			events = append(events, chromeEvent{
				Name:  name,
				Phase: "i",
				TS:    us(int64(ev.At)),
				PID:   0,
				TID:   tidBus,
				Cat:   "fault",
				Cname: color(ev),
			})
		case TracePressureOn, TracePressureOff:
			name := fmt.Sprintf("pressure on gpu%d", ev.GPU)
			if ev.Kind == TracePressureOff {
				name = fmt.Sprintf("pressure off gpu%d", ev.GPU)
			}
			events = append(events, chromeEvent{
				Name:  name,
				Phase: "i",
				TS:    us(int64(ev.At)),
				PID:   0,
				TID:   ev.GPU,
				Cat:   "pressure",
				Cname: color(ev),
			})
		}
	}
	for _, sp := range opts.Extra {
		events = append(events, chromeEvent{
			Name:  sp.Name,
			Phase: "X",
			TS:    us(sp.Start),
			Dur:   us(sp.End - sp.Start),
			PID:   0,
			TID:   sp.TID,
			Cat:   sp.Cat,
			Cname: sp.Cname,
		})
	}
	for _, tn := range sortedTracks(opts.TrackNames) {
		events = append(events, chromeEvent{
			Name:  "thread_name",
			Phase: "M",
			PID:   0,
			TID:   tn.tid,
			Args:  map[string]string{"name": tn.name},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{events})
}

type trackName struct {
	tid  int
	name string
}

// sortedTracks renders the track-name map in deterministic tid order so
// exports stay byte-identical run to run.
func sortedTracks(m map[int]string) []trackName {
	out := make([]trackName, 0, len(m))
	for tid, name := range m {
		out = append(out, trackName{tid, name})
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].tid < out[j-1].tid; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
