package sim

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"memsched/internal/fault"
	"memsched/internal/platform"
	"memsched/internal/taskgraph"
)

type eventKind uint8

const (
	evTransferDone eventKind = iota
	evPeerDone
	evTaskDone
	evWake
	evFairCheck
	evWriteDone
	// Fault administration (posted only for non-empty fault plans).
	evDropout    // permanent GPU loss; gpu = victim
	evPressureOn // memory-pressure spike start; gen = plan index
	evPressureOff
)

type event struct {
	at   time.Duration
	seq  int64 // FIFO tie-break for equal timestamps
	kind eventKind
	gpu  int
	task taskgraph.TaskID
	data taskgraph.DataID
	gen  int64 // fair-share bus check generation
}

type fetchReq struct {
	gpu  int
	data taskgraph.DataID
	// writeback marks a task-output transfer back to host memory: it
	// occupies the bus but creates no residency on arrival. data then
	// holds the producing task id for the trace.
	writeback bool
	bytes     int64 // transfer size for write-backs
}

// bufEntry is one task of a GPU window.
type bufEntry struct {
	task          taskgraph.TaskID
	earliestStart time.Duration // scheduler-cost gate
}

type gpuState struct {
	id            int
	resident      []bool // indexed by DataID
	residentBytes int64
	reservedBytes int64  // reserved for queued or in-flight transfers
	arriving      []bool // indexed by DataID
	arrivingPeer  []bool // indexed by DataID; arriving over NVLink, not the host bus
	// residentList mirrors the resident flags as an ascending id list, so
	// building eviction candidates costs O(resident) instead of a scan
	// over every data id of the instance.
	residentList []taskgraph.DataID
	buffer       []bufEntry
	running      taskgraph.TaskID
	pendingFetch []fetchReq // fetches waiting for memory space
	schedClock   time.Duration
	stats        GPUStats
	// NVLink receive channel (when the platform enables peer links):
	// one FIFO per destination GPU.
	nvq      reqQueue
	nvActive bool
	// Fault state: dead marks a permanent dropout, pressure the bytes
	// withheld by active memory-pressure spikes, runStart when the
	// running task began (for busy-time correction when it is killed).
	dead     bool
	pressure int64
	runStart time.Duration
}

type busState struct {
	q      reqQueue
	active bool
}

// engine implements RuntimeView and runs the event loop.
type engine struct {
	inst    *taskgraph.Instance
	plat    platform.Platform
	sched   Scheduler
	evict   EvictionPolicy
	window  int
	nsPerOp float64
	rng     *rand.Rand

	now       time.Duration
	seq       int64
	eq        eventQueue
	sc        *Scratch
	gpus      []gpuState
	bus       busState
	busModel  BusModel
	fair      fairBusState
	completed int

	loadsPerData []int

	// scheduler cost accounting
	inPop        bool
	popCharged   int64
	staticOps    int64
	dynamicOps   int64
	staticDelay  time.Duration
	dynamicDelay time.Duration

	recordTrace bool
	trace       []TraceEvent
	probe       Probe
	tel         *telemetryState // nil unless Config.Telemetry

	// Fault injection (all zero/nil for fault-free runs).
	faults              *fault.Plan
	faultRNG            *rand.Rand // nil unless the plan has transient failures
	fstats              *FaultStats
	requeued            []bool // dropout-requeued tasks not yet restarted
	recoveryOutstanding int
	recoveryStart       time.Duration

	// done marks completed tasks, for the stall diagnostic.
	done []bool

	ctx      context.Context // nil unless Config.Context
	loopIter int
}

// Run executes the instance under the given configuration and returns the
// aggregated result. It returns an error on an invalid configuration, a
// stalled simulation (scheduler deadlock), an unfinished instance, or an
// invariant violation when Config.CheckInvariants is set.
//
// Run is safe for concurrent use across independent runs: each call owns
// its engine, event heap and RNG (seeded from Config.Seed), and touches
// no package-level state. Concurrent callers must give each call its own
// Scheduler and EvictionPolicy instances and treat the shared
// *taskgraph.Instance as read-only, which schedulers are required to do
// (Instances are immutable once built). The parallel experiment harness
// in internal/expr relies on this, and TestFig3ParallelDeterministic
// verifies it under the race detector.
func Run(inst *taskgraph.Instance, cfg Config) (*Result, error) {
	if inst == nil {
		return nil, errors.New("sim: nil instance")
	}
	if err := cfg.Platform.Validate(); err != nil {
		return nil, err
	}
	if cfg.Scheduler == nil {
		return nil, errors.New("sim: nil scheduler")
	}
	if cfg.Eviction == nil {
		return nil, errors.New("sim: nil eviction policy")
	}
	window := cfg.WindowSize
	if window == 0 {
		window = DefaultWindowSize
	}
	if window < 1 {
		return nil, fmt.Errorf("sim: window size %d < 1", window)
	}
	// Progress guarantee: the running task and the head of the window
	// must be able to hold their inputs simultaneously.
	var maxFootprint int64
	for _, t := range inst.Tasks() {
		if fp := inst.TaskFootprint(t.ID); fp > maxFootprint {
			maxFootprint = fp
		}
	}
	if cfg.Platform.MemoryBytes < 2*maxFootprint {
		return nil, fmt.Errorf("sim: GPU memory %d B cannot hold two task footprints (max footprint %d B)",
			cfg.Platform.MemoryBytes, maxFootprint)
	}

	e := &engine{
		inst:        inst,
		plat:        cfg.Platform,
		sched:       cfg.Scheduler,
		evict:       cfg.Eviction,
		window:      window,
		nsPerOp:     cfg.NsPerOp,
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		busModel:    cfg.BusModel,
		recordTrace: cfg.RecordTrace || cfg.CheckInvariants,
		probe:       cfg.Probe,
	}
	sc := cfg.Scratch
	if sc == nil {
		sc = NewScratch()
	}
	sc.attach(e, cfg.Platform.NumGPUs, inst.NumData(), inst.NumTasks())
	defer sc.detach(e, cfg.RecordTrace)
	if cfg.Telemetry {
		e.tel = sc.telemetryState(cfg.Platform.NumGPUs, inst.NumData())
	}
	if cfg.Context != nil {
		e.ctx = cfg.Context
	}
	// loadsPerData is retained by the Result, so it is never pooled.
	e.loadsPerData = make([]int, inst.NumData())

	e.sched.Init(inst, e)
	e.evict.Init(inst, e)
	e.staticDelay = time.Duration(float64(e.staticOps) * e.nsPerOp)
	for k := range e.gpus {
		e.gpus[k].schedClock = e.staticDelay
	}
	// An empty (or nil) fault plan is a strict no-op: no events posted, no
	// fault RNG seeded, Result.Faults nil — byte-identical to a run
	// configured without a plan.
	if !cfg.Faults.Empty() {
		if err := e.initFaults(cfg.Faults, maxFootprint); err != nil {
			return nil, err
		}
	}

	e.pass()
	if e.tel != nil {
		e.telReclassify()
	}
	for e.eq.len() > 0 {
		ev := e.eq.pop()
		// Fault administration scheduled past the last completion is
		// dropped without advancing the clock: a dropout at t=1h must not
		// stretch the makespan of a workload that finished at t=2ms.
		if isFaultEvent(ev.kind) && e.completed == inst.NumTasks() {
			continue
		}
		if e.ctx != nil {
			e.loopIter++
			if e.loopIter&1023 == 0 {
				if err := e.ctx.Err(); err != nil {
					return nil, fmt.Errorf("sim: cancelled with %d/%d tasks completed: %w",
						e.completed, inst.NumTasks(), err)
				}
			}
		}
		if e.tel != nil {
			// Attribute the idle interval ending now, under the
			// classification established at the previous fixpoint.
			e.telAccrue(ev.at)
		}
		e.now = ev.at
		switch ev.kind {
		case evTransferDone:
			e.transferDone(ev.gpu, ev.data)
		case evPeerDone:
			e.peerDone(ev.gpu, ev.data)
		case evTaskDone:
			e.taskDone(ev.gpu, ev.task)
		case evFairCheck:
			e.fairCheck(ev.gen)
		case evWriteDone:
			e.writeDone(ev.gpu, ev.task)
		case evDropout:
			e.dropout(ev.gpu)
		case evPressureOn:
			e.pressureOn(ev.gpu, e.faults.Pressures[ev.gen])
		case evPressureOff:
			e.pressureOff(ev.gpu, e.faults.Pressures[ev.gen])
		case evWake:
			// state re-examined by the pass below
		}
		e.pass()
		if e.tel != nil {
			e.telReclassify()
		}
	}

	if e.completed != inst.NumTasks() {
		return nil, e.stallError()
	}
	res := e.result()
	if e.tel != nil {
		res.Telemetry = e.telemetryResult()
	}
	if cfg.CheckInvariants {
		if err := CheckTrace(inst, cfg.Platform, res); err != nil {
			return nil, err
		}
	}
	if !cfg.RecordTrace {
		res.Trace = nil
	}
	return res, nil
}

func (e *engine) result() *Result {
	res := &Result{
		SchedulerName:   e.sched.Name(),
		LoadsPerData:    e.loadsPerData,
		InstanceName:    e.inst.Name(),
		NumGPUs:         e.plat.NumGPUs,
		Makespan:        e.now,
		TotalFlops:      e.inst.TotalFlops(),
		WorkingSetBytes: e.inst.WorkingSetBytes(),
		StaticCost:      e.staticDelay,
		DynamicCost:     e.dynamicDelay,
		ChargedOps:      e.staticOps + e.dynamicOps,
		Events:          e.seq,
		GPU:             make([]GPUStats, len(e.gpus)),
		Trace:           e.trace,
		Faults:          e.fstats,
	}
	for k := range e.gpus {
		res.GPU[k] = e.gpus[k].stats
		res.Loads += e.gpus[k].stats.Loads
		res.Evictions += e.gpus[k].stats.Evictions
		res.BytesTransferred += e.gpus[k].stats.BytesIn
		res.PeerBytesTransferred += e.gpus[k].stats.PeerBytesIn
		res.BytesWrittenBack += e.gpus[k].stats.BytesOut
	}
	if res.Makespan > 0 {
		res.GFlops = res.TotalFlops / res.Makespan.Seconds() / 1e9
	}
	return res
}

// pass drives every GPU to a fixpoint: refill windows from the scheduler,
// (re-)issue fetches, retry fetches blocked on memory, and start ready
// tasks. It loops because an action on one GPU (an eviction revoking
// planned tasks, a steal) can enable actions on another.
func (e *engine) pass() {
	for changed := true; changed; {
		changed = false
		for k := range e.gpus {
			if e.gpus[k].dead {
				continue
			}
			if e.refill(k) {
				changed = true
			}
			if e.ensureHeadFetches(k) {
				changed = true
			}
			if e.retryPending(k) {
				changed = true
			}
			if e.tryStart(k) {
				changed = true
			}
		}
	}
}

// refill pops tasks from the scheduler until the window of GPU k is full
// or the scheduler has nothing for it. It reports whether any task was
// popped.
func (e *engine) refill(k int) bool {
	g := &e.gpus[k]
	popped := false
	for len(g.buffer) < e.window {
		e.inPop = true
		e.popCharged = 0
		t, ok := e.sched.PopTask(k)
		e.inPop = false
		cost := time.Duration(float64(e.popCharged) * e.nsPerOp)
		e.dynamicOps += e.popCharged
		e.dynamicDelay += cost
		if g.schedClock < e.now {
			g.schedClock = e.now
		}
		g.schedClock += cost
		if !ok {
			break
		}
		if t < 0 || int(t) >= e.inst.NumTasks() {
			panic(fmt.Sprintf("sim: scheduler %s popped invalid task %d", e.sched.Name(), t))
		}
		g.buffer = append(g.buffer, bufEntry{task: t, earliestStart: g.schedClock})
		if g.schedClock > e.now {
			e.post(event{at: g.schedClock, kind: evWake, gpu: k})
		}
		for _, d := range e.inst.Inputs(t) {
			e.fetch(k, d)
		}
		popped = true
	}
	return popped
}

// ensureHeadFetches re-issues fetches for the head task of the window of
// GPU k: its inputs may have been evicted after the pop-time prefetch
// (the LRU pathology described in §V-B of the paper).
func (e *engine) ensureHeadFetches(k int) bool {
	g := &e.gpus[k]
	if len(g.buffer) == 0 {
		return false
	}
	issued := false
	for _, d := range e.inst.Inputs(g.buffer[0].task) {
		if !g.resident[d] && !g.arriving[d] {
			if e.fetch(k, d) {
				issued = true
			}
		}
	}
	return issued
}

// fetch requests a transfer of d to GPU k. It reports whether a new
// transfer was enqueued on the bus (false if the data is already resident
// or arriving, or if the request is parked waiting for memory).
func (e *engine) fetch(k int, d taskgraph.DataID) bool {
	g := &e.gpus[k]
	if g.resident[d] || g.arriving[d] {
		return false
	}
	size := e.inst.Data(d).Size
	if !e.ensureSpace(k, size) {
		for _, p := range g.pendingFetch {
			if p.data == d {
				return false
			}
		}
		g.pendingFetch = append(g.pendingFetch, fetchReq{gpu: k, data: d})
		return false
	}
	g.reservedBytes += size
	g.arriving[d] = true
	e.route(fetchReq{gpu: k, data: d})
	return true
}

// route sends a transfer request over NVLink when the data is resident on
// a peer GPU and the platform has peer links, and over the shared host
// bus otherwise.
func (e *engine) route(req fetchReq) {
	if e.plat.HasNVLink() {
		for j := range e.gpus {
			if j != req.gpu && e.gpus[j].resident[req.data] {
				e.nvEnqueue(req)
				return
			}
		}
	}
	e.busEnqueue(req)
}

// nvEnqueue appends a peer transfer to the destination GPU's NVLink
// channel, starting it if the channel is idle. Peer transfers snapshot
// the source data at start; a concurrent eviction at the source does not
// abort them.
func (e *engine) nvEnqueue(req fetchReq) {
	g := &e.gpus[req.gpu]
	g.arrivingPeer[req.data] = true
	g.nvq.push(req)
	if !g.nvActive {
		e.nvStartNext(req.gpu)
	}
}

func (e *engine) nvStartNext(k int) {
	g := &e.gpus[k]
	if g.nvq.len() == 0 {
		g.nvActive = false
		return
	}
	req := g.nvq.pop()
	g.nvActive = true
	dur := e.plat.PeerTransferDuration(e.inst.Data(req.data).Size)
	if e.faultRNG != nil {
		dur += e.transientDelay(req.gpu, req.data, taskgraph.NoTask)
	}
	if e.tel != nil {
		e.tel.nvBusy[k] += dur
	}
	e.post(event{at: e.now + dur, kind: evPeerDone, gpu: req.gpu, data: req.data, task: taskgraph.NoTask})
}

func (e *engine) peerDone(k int, d taskgraph.DataID) {
	g := &e.gpus[k]
	if g.dead {
		// Discarded arrival; the NVLink queue was cleared at dropout.
		e.nvStartNext(k)
		return
	}
	size := e.inst.Data(d).Size
	g.arriving[d] = false
	g.arrivingPeer[d] = false
	g.reservedBytes -= size
	g.resident[d] = true
	g.residentList = insertID(g.residentList, d)
	g.residentBytes += size
	g.stats.Loads++
	g.stats.PeerLoads++
	g.stats.PeerBytesIn += size
	e.loadsPerData[d]++
	if e.tel != nil {
		e.telLoaded(k, d)
	}
	e.record(TraceEvent{At: e.now, Kind: TracePeerLoad, GPU: k, Task: taskgraph.NoTask, Data: d})
	e.evict.Loaded(k, d)
	e.sched.DataLoaded(k, d)
	e.nvStartNext(k)
}

// retryPending retries fetches of GPU k that were blocked on memory.
func (e *engine) retryPending(k int) bool {
	g := &e.gpus[k]
	if len(g.pendingFetch) == 0 {
		return false
	}
	pending := g.pendingFetch
	issued := false
	for i, req := range pending {
		if g.resident[req.data] || g.arriving[req.data] {
			continue
		}
		size := e.inst.Data(req.data).Size
		if !e.ensureSpace(k, size) {
			// Still blocked: keep this and the remaining requests parked.
			// Nothing appends to pendingFetch inside this loop, so the
			// in-place compaction is safe and reuses the backing array.
			n := copy(pending, pending[i:])
			g.pendingFetch = pending[:n]
			e.dedupePending(g)
			return issued
		}
		g.reservedBytes += size
		g.arriving[req.data] = true
		e.busEnqueue(req)
		issued = true
	}
	g.pendingFetch = pending[:0]
	return issued
}

func (e *engine) dedupePending(g *gpuState) {
	seen, epoch := e.sc.marks()
	out := g.pendingFetch[:0]
	for _, req := range g.pendingFetch {
		if seen[req.data] == epoch || g.resident[req.data] || g.arriving[req.data] {
			continue
		}
		seen[req.data] = epoch
		out = append(out, req)
	}
	g.pendingFetch = out
}

// markProtected marks the data on GPU k that must not be evicted — inputs
// of the running task and inputs of the head window task — under a fresh
// epoch of the shared mark array, and returns (marks, epoch). Membership
// is mark[d] == epoch; no per-call map is built.
func (e *engine) markProtected(k int) ([]int64, int64) {
	mark, epoch := e.sc.marks()
	g := &e.gpus[k]
	if g.running != taskgraph.NoTask {
		for _, d := range e.inst.Inputs(g.running) {
			mark[d] = epoch
		}
	}
	if len(g.buffer) > 0 {
		for _, d := range e.inst.Inputs(g.buffer[0].task) {
			mark[d] = epoch
		}
	}
	return mark, epoch
}

// evictionCandidates builds the ascending list of unprotected resident
// data of GPU k into the shared scratch buffer, alongside the protection
// marks used to build it. The buffer is valid until the next candidate
// build; eviction policies must not retain it past their Victim call.
func (e *engine) evictionCandidates(k int) ([]taskgraph.DataID, []int64, int64) {
	mark, epoch := e.markProtected(k)
	g := &e.gpus[k]
	cands := e.sc.cands[:0]
	for _, d := range g.residentList {
		if mark[d] != epoch {
			cands = append(cands, d)
		}
	}
	e.sc.cands = cands
	return cands, mark, epoch
}

// ensureSpace evicts data from GPU k until size bytes are free, or reports
// false if not enough unpinned data can be evicted.
//
// The candidate list is built once per call and the victim removed from it
// after each eviction: within the loop residency only changes through
// doEvict (the Evicted/DataEvicted hooks are pure notifications), and the
// protected set depends only on the running task and the window head,
// which no eviction can change — so the pruned list is exactly what a
// per-iteration rebuild would produce, in the same ascending order.
func (e *engine) ensureSpace(k int, size int64) bool {
	g := &e.gpus[k]
	free := e.memLimit(k) - g.residentBytes - g.reservedBytes
	if free >= size {
		return true
	}
	var cands []taskgraph.DataID
	var mark []int64
	var epoch int64
	built := false
	for free < size {
		if !built {
			cands, mark, epoch = e.evictionCandidates(k)
			built = true
		}
		if len(cands) == 0 {
			return false
		}
		v := e.evict.Victim(k, cands)
		if !g.resident[v] || mark[v] == epoch {
			panic(fmt.Sprintf("sim: eviction policy %s chose invalid victim %d on gpu %d", e.evict.Name(), v, k))
		}
		e.doEvict(k, v)
		cands = removeID(cands, v)
		free = e.memLimit(k) - g.residentBytes - g.reservedBytes
	}
	return true
}

func (e *engine) doEvict(k int, d taskgraph.DataID) {
	g := &e.gpus[k]
	g.resident[d] = false
	g.residentList = removeID(g.residentList, d)
	g.residentBytes -= e.inst.Data(d).Size
	g.stats.Evictions++
	if e.tel != nil {
		e.tel.evictedOnce[k][d] = true
		e.telOccupancySample()
	}
	e.record(TraceEvent{At: e.now, Kind: TraceEvict, GPU: k, Task: taskgraph.NoTask, Data: d})
	e.evict.Evicted(k, d)
	e.sched.DataEvicted(k, d)
}

// busEnqueue hands a transfer request to the shared bus under the
// configured contention model.
func (e *engine) busEnqueue(req fetchReq) {
	if !req.writeback {
		e.gpus[req.gpu].arrivingPeer[req.data] = false
	}
	if e.busModel == BusFairShare {
		e.fairEnqueue(req)
		return
	}
	e.bus.q.push(req)
	if !e.bus.active {
		e.busStartNext()
	}
}

func (e *engine) busStartNext() {
	for e.bus.q.len() > 0 {
		req := e.bus.q.pop()
		// A peer copy may have landed while the request waited in the
		// bus queue; divert it to NVLink and keep the host bus free.
		// (Write-backs always use the host bus: the data's home is the
		// host memory.)
		if e.plat.HasNVLink() && !req.writeback {
			diverted := false
			for j := range e.gpus {
				if j != req.gpu && e.gpus[j].resident[req.data] {
					e.nvEnqueue(req)
					diverted = true
					break
				}
			}
			if diverted {
				continue
			}
		}
		e.bus.active = true
		size := req.bytes
		if !req.writeback {
			size = e.inst.Data(req.data).Size
		}
		dur := e.plat.TransferDuration(size)
		if e.faultRNG != nil {
			// Transient failures hold the bus through the retries: the
			// backoff is charged as extra transfer time.
			if req.writeback {
				dur += e.transientDelay(req.gpu, taskgraph.NoData, taskgraph.TaskID(req.data))
			} else {
				dur += e.transientDelay(req.gpu, req.data, taskgraph.NoTask)
			}
		}
		if e.tel != nil {
			// FIFO serializes transfers, so busy time is their sum.
			e.tel.busBusy += dur
		}
		ev := event{at: e.now + dur, kind: evTransferDone, gpu: req.gpu, data: req.data, task: taskgraph.NoTask}
		if req.writeback {
			ev.kind = evWriteDone
			ev.task = taskgraph.TaskID(req.data)
			ev.data = taskgraph.NoData
		}
		e.post(ev)
		return
	}
	e.bus.active = false
}

func (e *engine) transferDone(k int, d taskgraph.DataID) {
	// A transfer that was in flight when its destination dropped out
	// still occupied the bus, but its arrival is discarded.
	if !e.gpus[k].dead {
		e.hostArrived(k, d)
	}
	e.busStartNext()
}

// writeDone accounts a completed output write-back and frees the bus.
func (e *engine) writeDone(k int, t taskgraph.TaskID) {
	out := e.inst.Task(t).OutputBytes
	e.gpus[k].stats.BytesOut += out
	e.record(TraceEvent{At: e.now, Kind: TraceWriteBack, GPU: k, Task: t, Data: taskgraph.NoData})
	e.busStartNext()
}

// hostArrived applies the bookkeeping of a host transfer completing,
// shared by the FIFO and fair-share bus models.
func (e *engine) hostArrived(k int, d taskgraph.DataID) {
	g := &e.gpus[k]
	size := e.inst.Data(d).Size
	g.arriving[d] = false
	g.arrivingPeer[d] = false
	g.reservedBytes -= size
	g.resident[d] = true
	g.residentList = insertID(g.residentList, d)
	g.residentBytes += size
	g.stats.Loads++
	g.stats.BytesIn += size
	e.loadsPerData[d]++
	if e.tel != nil {
		e.telLoaded(k, d)
	}
	e.record(TraceEvent{At: e.now, Kind: TraceLoad, GPU: k, Task: taskgraph.NoTask, Data: d})
	e.evict.Loaded(k, d)
	e.sched.DataLoaded(k, d)
}

// tryStart launches the first window task of GPU k whose inputs are all
// resident and whose scheduler-cost gate has passed. It reports whether a
// task was started.
func (e *engine) tryStart(k int) bool {
	g := &e.gpus[k]
	if g.running != taskgraph.NoTask {
		return false
	}
	for i := range g.buffer {
		ent := g.buffer[i]
		if !e.allResident(k, ent.task) {
			continue
		}
		if ent.earliestStart > e.now {
			e.post(event{at: ent.earliestStart, kind: evWake, gpu: k})
			continue
		}
		g.buffer = append(g.buffer[:i], g.buffer[i+1:]...)
		g.running = ent.task
		g.runStart = e.now
		for _, d := range e.inst.Inputs(ent.task) {
			e.evict.Used(k, d)
		}
		dur := e.plat.TaskDurationOn(k, e.inst.Task(ent.task).Flops)
		g.stats.BusyTime += dur
		e.record(TraceEvent{At: e.now, Kind: TraceStart, GPU: k, Task: ent.task, Data: taskgraph.NoData})
		if e.fstats != nil {
			e.recoveredStart(ent.task)
		}
		e.post(event{at: e.now + dur, kind: evTaskDone, gpu: k, task: ent.task, data: taskgraph.NoData})
		return true
	}
	return false
}

func (e *engine) taskDone(k int, t taskgraph.TaskID) {
	g := &e.gpus[k]
	if g.dead {
		// Stale completion of a task killed by the dropout.
		return
	}
	if g.running != t {
		panic(fmt.Sprintf("sim: completion of task %d on gpu %d but running is %d", t, k, g.running))
	}
	g.running = taskgraph.NoTask
	g.stats.Tasks++
	e.completed++
	e.done[t] = true
	e.record(TraceEvent{At: e.now, Kind: TraceEnd, GPU: k, Task: t, Data: taskgraph.NoData})
	if out := e.inst.Task(t).OutputBytes; out > 0 {
		// The result is written back to host memory over the shared
		// bus; it does not occupy GPU memory in this model (the paper's
		// §I simplification, extended here with the bus contention).
		e.busEnqueue(fetchReq{gpu: k, data: taskgraph.DataID(t), writeback: true, bytes: out})
	}
	e.sched.TaskDone(k, t)
}

func (e *engine) allResident(k int, t taskgraph.TaskID) bool {
	g := &e.gpus[k]
	for _, d := range e.inst.Inputs(t) {
		if !g.resident[d] {
			return false
		}
	}
	return true
}

func (e *engine) post(ev event) {
	ev.seq = e.seq
	e.seq++
	e.eq.push(ev)
}

func (e *engine) record(ev TraceEvent) {
	if e.recordTrace {
		e.trace = append(e.trace, ev)
	}
	if e.probe != nil {
		e.probe.OnEvent(ev)
	}
}

// RuntimeView implementation.

// Instance returns the instance under execution.
func (e *engine) Instance() *taskgraph.Instance { return e.inst }

// Platform returns the simulated machine.
func (e *engine) Platform() platform.Platform { return e.plat }

// Now returns the current simulated time.
func (e *engine) Now() time.Duration { return e.now }

// Alive reports whether gpu has not suffered a permanent dropout.
// Always true on fault-free runs.
func (e *engine) Alive(gpu int) bool { return !e.gpus[gpu].dead }

// Resident reports whether d is in the memory of gpu.
func (e *engine) Resident(gpu int, d taskgraph.DataID) bool {
	return e.gpus[gpu].resident[d]
}

// Arriving reports whether d is queued or in flight towards gpu.
func (e *engine) Arriving(gpu int, d taskgraph.DataID) bool {
	return e.gpus[gpu].arriving[d]
}

// Available reports Resident || Arriving.
func (e *engine) Available(gpu int, d taskgraph.DataID) bool {
	g := &e.gpus[gpu]
	return g.resident[d] || g.arriving[d]
}

// MissingInputs counts inputs of t not Available on gpu.
func (e *engine) MissingInputs(gpu int, t taskgraph.TaskID) int {
	n := 0
	for _, d := range e.inst.Inputs(t) {
		if !e.Available(gpu, d) {
			n++
		}
	}
	return n
}

// InFlightTasks returns the running task (if any) followed by the window
// tasks of gpu in pop order.
func (e *engine) InFlightTasks(gpu int) []taskgraph.TaskID {
	g := &e.gpus[gpu]
	out := make([]taskgraph.TaskID, 0, len(g.buffer)+1)
	if g.running != taskgraph.NoTask {
		out = append(out, g.running)
	}
	for i := range g.buffer {
		out = append(out, g.buffer[i].task)
	}
	return out
}

// Rand returns the simulation's deterministic random source.
func (e *engine) Rand() *rand.Rand { return e.rng }

// Charge accounts ops scheduler operations to the decision in progress.
func (e *engine) Charge(ops int64) {
	if e.inPop {
		e.popCharged += ops
	} else {
		e.staticOps += ops
	}
}

// ChargeStatic accounts ops operations to the pre-execution phase.
func (e *engine) ChargeStatic(ops int64) { e.staticOps += ops }
