package sim_test

import (
	"testing"
	"time"

	"memsched/internal/memory"
	"memsched/internal/platform"
	"memsched/internal/sched"
	"memsched/internal/sim"
	"memsched/internal/taskgraph"
	"memsched/internal/workload"
)

func TestHeterogeneousDurations(t *testing.T) {
	p := platform.Heterogeneous(10000, 20000)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.PeakGFlops() != 30000 {
		t.Fatalf("peak = %g", p.PeakGFlops())
	}
	f := 1e12 // 1 TFlop
	d0 := p.TaskDurationOn(0, f)
	d1 := p.TaskDurationOn(1, f)
	if d0 < 99*time.Millisecond || d0 > 101*time.Millisecond {
		t.Fatalf("gpu0 duration %v", d0)
	}
	if d1 < 49*time.Millisecond || d1 > 51*time.Millisecond {
		t.Fatalf("gpu1 duration %v", d1)
	}
}

func TestHeterogeneousValidation(t *testing.T) {
	p := platform.V100(2)
	p.GFlopsPerGPUList = []float64{1000} // wrong length
	if p.Validate() == nil {
		t.Fatal("length mismatch accepted")
	}
	p.GFlopsPerGPUList = []float64{1000, -1}
	if p.Validate() == nil {
		t.Fatal("negative throughput accepted")
	}
}

// TestEagerFollowsSpeedOnHeterogeneousGPUs: with a shared on-demand
// queue, the 3x faster GPU must execute roughly 3x the tasks.
func TestEagerFollowsSpeedOnHeterogeneousGPUs(t *testing.T) {
	inst := workload.Matmul2D(16)
	p := platform.Heterogeneous(4000, 12000)
	res, err := sim.Run(inst, sim.Config{
		Platform:        p,
		Scheduler:       sched.NewEager()(),
		Eviction:        memory.NewLRU(),
		Seed:            1,
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	slow, fast := res.GPU[0].Tasks, res.GPU[1].Tasks
	ratio := float64(fast) / float64(slow)
	if ratio < 2.0 || ratio > 4.5 {
		t.Fatalf("fast/slow task ratio %.2f (tasks %d vs %d), want ~3", ratio, fast, slow)
	}
}

// TestDMDARBalancesByCompletionTime: the DMDA allocation predicts
// completion times per GPU, so it must also skew work toward the fast
// GPU.
func TestDMDARBalancesByCompletionTime(t *testing.T) {
	inst := workload.Matmul2D(16)
	p := platform.Heterogeneous(4000, 12000)
	res, err := sim.Run(inst, sim.Config{
		Platform:        p,
		Scheduler:       sched.NewDMDAR(0)(),
		Eviction:        memory.NewLRU(),
		Seed:            1,
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	slow, fast := res.GPU[0].Tasks, res.GPU[1].Tasks
	if fast <= slow {
		t.Fatalf("DMDA gave the fast GPU %d tasks, the slow one %d", fast, slow)
	}
	// Both GPUs finish within 25% of the makespan of each other.
	gap := res.Makespan - res.GPU[0].BusyTime
	if res.GPU[1].BusyTime < res.GPU[0].BusyTime {
		gap = res.Makespan - res.GPU[1].BusyTime
	}
	if gap > res.Makespan/2 {
		t.Fatalf("imbalanced heterogenous run: makespan %v, busy %v / %v",
			res.Makespan, res.GPU[0].BusyTime, res.GPU[1].BusyTime)
	}
	_ = taskgraph.NoTask
}
