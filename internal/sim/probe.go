package sim

// Probe observes simulation events as they happen, without retaining
// them: the streaming alternative to Config.RecordTrace, whose O(events)
// memory makes it unusable for long sweeps. A probe attached through
// Config.Probe receives exactly the event sequence a retained trace
// would contain, in the same order (TestProbeMatchesTrace pins this),
// invoked synchronously from the simulation loop as each event is
// committed (task start/end, host and peer loads, evictions,
// write-backs).
//
// Probes run on the single simulation goroutine; OnEvent must not call
// back into the engine and should return quickly, since its cost is
// real (wall-clock) time on the hot loop. A nil Config.Probe costs
// nothing.
type Probe interface {
	OnEvent(TraceEvent)
}

// ProbeFunc adapts a function to the Probe interface.
type ProbeFunc func(TraceEvent)

// OnEvent calls f(ev).
func (f ProbeFunc) OnEvent(ev TraceEvent) { f(ev) }

// MultiProbe fans events out to several probes in order.
type MultiProbe []Probe

// OnEvent forwards ev to every probe.
func (m MultiProbe) OnEvent(ev TraceEvent) {
	for _, p := range m {
		p.OnEvent(ev)
	}
}
