package sim_test

import (
	"testing"
	"time"

	"memsched/internal/memory"
	"memsched/internal/platform"
	"memsched/internal/sim"
	"memsched/internal/taskgraph"
	"memsched/internal/workload"
)

func seqQueue(m int) []taskgraph.TaskID {
	q := make([]taskgraph.TaskID, m)
	for i := range q {
		q[i] = taskgraph.TaskID(i)
	}
	return q
}

func TestWriteBackOccupiesBus(t *testing.T) {
	// One task: input 10 B (0.1 s), compute 1 s, output 20 B (0.2 s).
	// Makespan counts only task completion (1.1 s), but the write-back
	// must be accounted and a second GPU's input transfer queued behind
	// it must be delayed.
	b := taskgraph.NewBuilder("wb")
	d := b.AddData("d", 10)
	b.AddTaskWithOutput("t", 1e9, 20, d)
	inst := b.Build()
	res, err := sim.Run(inst, sim.Config{
		Platform:        tinyPlatform(1, 100),
		Scheduler:       &listSched{queues: [][]taskgraph.TaskID{{0}}},
		Eviction:        memory.NewLRU(),
		RecordTrace:     true,
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BytesWrittenBack != 20 {
		t.Fatalf("written back = %d, want 20", res.BytesWrittenBack)
	}
	if res.GPU[0].BytesOut != 20 {
		t.Fatalf("gpu bytes out = %d", res.GPU[0].BytesOut)
	}
	var wb time.Duration
	for _, ev := range res.Trace {
		if ev.Kind == sim.TraceWriteBack {
			wb = ev.At
		}
	}
	if wb != 1300*time.Millisecond { // 1.1 completion + 0.2 write
		t.Fatalf("write-back finished at %v, want 1.3s", wb)
	}
}

func TestWriteBackContendsWithLoads(t *testing.T) {
	// Three tasks on one GPU with a window of 1: t2 is popped only when
	// t0 completes, so its input transfer queues behind t0's large
	// write-back (2 s of bus). The output-free twin finishes earlier by
	// roughly that exposed write time.
	build := func(out int64) *taskgraph.Instance {
		b := taskgraph.NewBuilder("wbc")
		d0 := b.AddData("d0", 10)
		d1 := b.AddData("d1", 10)
		d2 := b.AddData("d2", 10)
		b.AddTaskWithOutput("t0", 1e9, out, d0)
		b.AddTask("t1", 1e9, d1)
		b.AddTask("t2", 1e9, d2)
		return b.Build()
	}
	run := func(inst *taskgraph.Instance) *sim.Result {
		res, err := sim.Run(inst, sim.Config{
			Platform:        tinyPlatform(1, 1000),
			Scheduler:       &listSched{queues: [][]taskgraph.TaskID{{0, 1, 2}}},
			Eviction:        memory.NewLRU(),
			WindowSize:      1,
			CheckInvariants: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	with := run(build(200)) // 2 s of write-back
	without := run(build(0))
	if with.Makespan <= without.Makespan {
		t.Fatalf("write-back did not contend: %v vs %v", with.Makespan, without.Makespan)
	}
}

func TestWriteBackFairShare(t *testing.T) {
	inst := workload.Matmul2DWithOutputs(8)
	res, err := sim.Run(inst, sim.Config{
		Platform:        platform.V100(1),
		Scheduler:       &listSched{queues: [][]taskgraph.TaskID{seqQueue(inst.NumTasks())}},
		Eviction:        memory.NewLRU(),
		BusModel:        sim.BusFairShare,
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(inst.NumTasks()) * int64(workload.TileBytes)
	if res.BytesWrittenBack != want {
		t.Fatalf("written back %d, want %d", res.BytesWrittenBack, want)
	}
}
