package sim_test

import (
	"strings"
	"testing"
	"time"

	"memsched/internal/memory"
	"memsched/internal/sim"
	"memsched/internal/taskgraph"
)

func runTraced(t *testing.T, inst *taskgraph.Instance, queues [][]taskgraph.TaskID, gpus int, mem int64) *sim.Result {
	t.Helper()
	res, err := sim.Run(inst, sim.Config{
		Platform:    tinyPlatform(gpus, mem),
		Scheduler:   &listSched{queues: queues},
		Eviction:    memory.NewLRU(),
		RecordTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestAnalyzeOverlap(t *testing.T) {
	// Two tasks, disjoint inputs: transfer 0 runs with no compute
	// (exposed), transfer 1 runs while task 0 computes (overlapped).
	b := taskgraph.NewBuilder("ov")
	d0 := b.AddData("d0", 10)
	d1 := b.AddData("d1", 10)
	b.AddTask("t0", 1e9, d0)
	b.AddTask("t1", 1e9, d1)
	inst := b.Build()
	res := runTraced(t, inst, [][]taskgraph.TaskID{{0, 1}}, 1, 1000)

	a, err := sim.Analyze(inst, tinyPlatform(1, 1000), res)
	if err != nil {
		t.Fatal(err)
	}
	if a.BusBusy != 200*time.Millisecond {
		t.Fatalf("bus busy = %v", a.BusBusy)
	}
	if a.ExposedTransfer != 100*time.Millisecond {
		t.Fatalf("exposed = %v, want 100ms (the first transfer)", a.ExposedTransfer)
	}
	if a.OverlappedTransfer != 100*time.Millisecond {
		t.Fatalf("overlapped = %v, want 100ms (the second transfer)", a.OverlappedTransfer)
	}
	if a.GPUBusy[0] != 2*time.Second {
		t.Fatalf("gpu busy = %v", a.GPUBusy[0])
	}
	if a.GPUIdle[0] != res.Makespan-2*time.Second {
		t.Fatalf("gpu idle = %v", a.GPUIdle[0])
	}
	if !strings.Contains(a.String(), "bus busy") {
		t.Fatalf("report: %q", a.String())
	}
}

func TestAnalyzeRequiresTrace(t *testing.T) {
	inst := chain(2)
	res := &sim.Result{}
	if _, err := sim.Analyze(inst, tinyPlatform(1, 100), res); err == nil {
		t.Fatal("expected error without trace")
	}
}

func TestTimelineRendering(t *testing.T) {
	inst := chain(3)
	res := runTraced(t, inst, [][]taskgraph.TaskID{{0, 1, 2}}, 1, 1000)
	tl := sim.Timeline(inst, tinyPlatform(1, 1000), res, 40)
	lines := strings.Split(strings.TrimSpace(tl), "\n")
	if len(lines) != 2 { // gpu0 + bus
		t.Fatalf("timeline:\n%s", tl)
	}
	if !strings.Contains(lines[0], "#") {
		t.Fatalf("no compute marks:\n%s", tl)
	}
	if !strings.Contains(lines[1], "=") {
		t.Fatalf("no bus marks:\n%s", tl)
	}
	if sim.Timeline(inst, tinyPlatform(1, 1000), &sim.Result{}, 40) != "" {
		t.Fatal("timeline without trace should be empty")
	}
}

func TestAnalyzeReuseFactor(t *testing.T) {
	// Ten chain tasks all read the shared item S plus a private item:
	// input bytes served = 10 tasks x 20 B = 200 B; bytes moved = 110 B
	// (11 loads of 10 B) with ample memory -> reuse factor ~1.82.
	inst := chain(10)
	res := runTraced(t, inst, [][]taskgraph.TaskID{{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}}, 1, 1000)
	a, err := sim.Analyze(inst, tinyPlatform(1, 1000), res)
	if err != nil {
		t.Fatal(err)
	}
	if a.InputBytesServed != 200 {
		t.Fatalf("served = %d", a.InputBytesServed)
	}
	want := 200.0 / 110.0
	if a.ReuseFactor < want-0.01 || a.ReuseFactor > want+0.01 {
		t.Fatalf("reuse = %g, want %g", a.ReuseFactor, want)
	}
}
