package sim

import (
	"fmt"
	"time"

	"memsched/internal/platform"
	"memsched/internal/taskgraph"
)

// CheckTrace replays the trace of a result and verifies the model
// invariants of §III of the paper:
//
//   - the memory bound |L(k,i)| <= M (in bytes) holds at all times;
//   - a task starts only when all its inputs are resident on its GPU;
//   - a data item is never loaded while already resident, and never
//     evicted while absent;
//   - a GPU runs at most one task at a time;
//   - every task completes exactly once (a task killed by a GPU dropout
//     restarts on a survivor), and the aggregate counters of the result
//     match the trace;
//   - a dead GPU is never used again: after a TraceDropout no load,
//     eviction, start or end is accepted on that GPU, and fault events
//     reconcile with Result.Faults (dropouts, kills, lost bytes,
//     transfer retries);
//   - when Result.Telemetry is present, its idle attribution sums to
//     Makespan*NumGPUs - ΣBusyTime (per GPU: Makespan - BusyTime) and
//     its reload counters match the load-after-evict pairs of the trace.
//
// The memory bound stays the base platform budget under pressure spikes:
// a spike is advisory (in-flight arrivals may briefly overshoot the
// shrunk limit) but the hard bound always holds.
//
// It returns the first violation found, or nil.
func CheckTrace(inst *taskgraph.Instance, plat platform.Platform, res *Result) error {
	if len(res.Trace) == 0 {
		return fmt.Errorf("sim: CheckTrace called without a recorded trace")
	}
	type gpuCheck struct {
		resident  map[taskgraph.DataID]bool
		bytes     int64
		running   taskgraph.TaskID
		loads     int
		bytesIn   int64
		peerLoads int
		peerBytes int64
		bytesOut  int64
		evicts    int
		tasks     int
		// Telemetry cross-validation inputs.
		startAt   time.Duration
		busy      time.Duration
		evicted   map[taskgraph.DataID]bool
		reloads   int
		reloadedB int64
		// Fault replay state.
		dead bool
	}
	gpus := make([]gpuCheck, plat.NumGPUs)
	for k := range gpus {
		gpus[k] = gpuCheck{
			resident: make(map[taskgraph.DataID]bool),
			evicted:  make(map[taskgraph.DataID]bool),
			running:  taskgraph.NoTask,
		}
	}
	ran := make([]bool, inst.NumTasks())    // completed
	active := make([]bool, inst.NumTasks()) // started, not yet ended or killed
	dropouts, kills, retries := 0, 0, 0
	var lostBytes int64
	last := res.Trace[0].At
	for i, ev := range res.Trace {
		if ev.At < last {
			return fmt.Errorf("trace[%d]: time goes backwards (%v after %v)", i, ev.At, last)
		}
		last = ev.At
		if ev.GPU < 0 || ev.GPU >= len(gpus) {
			return fmt.Errorf("trace[%d]: invalid gpu %d", i, ev.GPU)
		}
		g := &gpus[ev.GPU]
		// Dead-GPU rejection: after a dropout the only events a GPU may
		// still produce are the kill/loss bookkeeping of the dropout
		// itself, write-backs already handed to the bus, and retries of
		// bus transfers that were in flight.
		if g.dead {
			switch ev.Kind {
			case TraceTaskKill, TraceDataLost, TraceWriteBack, TraceRetry:
			default:
				return fmt.Errorf("trace[%d]: %s on gpu %d after its dropout", i, ev.Kind, ev.GPU)
			}
		}
		switch ev.Kind {
		case TraceLoad, TracePeerLoad:
			if g.resident[ev.Data] {
				return fmt.Errorf("trace[%d]: data %d loaded on gpu %d while already resident", i, ev.Data, ev.GPU)
			}
			if ev.Kind == TracePeerLoad && !plat.HasNVLink() {
				return fmt.Errorf("trace[%d]: peer load without NVLink", i)
			}
			g.resident[ev.Data] = true
			g.bytes += inst.Data(ev.Data).Size
			g.loads++
			if g.evicted[ev.Data] {
				g.reloads++
				g.reloadedB += inst.Data(ev.Data).Size
			}
			if ev.Kind == TracePeerLoad {
				g.peerLoads++
				g.peerBytes += inst.Data(ev.Data).Size
			} else {
				g.bytesIn += inst.Data(ev.Data).Size
			}
			if g.bytes > plat.MemoryBytes {
				return fmt.Errorf("trace[%d]: gpu %d memory overflow: %d > %d bytes", i, ev.GPU, g.bytes, plat.MemoryBytes)
			}
		case TraceEvict:
			if !g.resident[ev.Data] {
				return fmt.Errorf("trace[%d]: data %d evicted from gpu %d while not resident", i, ev.Data, ev.GPU)
			}
			delete(g.resident, ev.Data)
			g.bytes -= inst.Data(ev.Data).Size
			g.evicts++
			g.evicted[ev.Data] = true
		case TraceStart:
			if g.running != taskgraph.NoTask {
				return fmt.Errorf("trace[%d]: gpu %d starts task %d while running %d", i, ev.GPU, ev.Task, g.running)
			}
			if ran[ev.Task] {
				return fmt.Errorf("trace[%d]: task %d started after completing", i, ev.Task)
			}
			if active[ev.Task] {
				return fmt.Errorf("trace[%d]: task %d started twice", i, ev.Task)
			}
			for _, d := range inst.Inputs(ev.Task) {
				if !g.resident[d] {
					return fmt.Errorf("trace[%d]: task %d starts on gpu %d without input %d resident", i, ev.Task, ev.GPU, d)
				}
			}
			g.running = ev.Task
			g.startAt = ev.At
			active[ev.Task] = true
		case TraceEnd:
			if g.running != ev.Task {
				return fmt.Errorf("trace[%d]: gpu %d ends task %d but running is %d", i, ev.GPU, ev.Task, g.running)
			}
			g.running = taskgraph.NoTask
			g.busy += ev.At - g.startAt
			g.tasks++
			active[ev.Task] = false
			ran[ev.Task] = true
		case TraceWriteBack:
			if inst.Task(ev.Task).OutputBytes <= 0 {
				return fmt.Errorf("trace[%d]: write-back for task %d without output", i, ev.Task)
			}
			if !ran[ev.Task] {
				return fmt.Errorf("trace[%d]: write-back for task %d before it ran", i, ev.Task)
			}
			g.bytesOut += inst.Task(ev.Task).OutputBytes
		case TraceDropout:
			// g.dead was rejected above, so this is the first dropout.
			g.dead = true
			dropouts++
		case TraceTaskKill:
			if !g.dead {
				return fmt.Errorf("trace[%d]: task %d killed on live gpu %d", i, ev.Task, ev.GPU)
			}
			if g.running != ev.Task {
				return fmt.Errorf("trace[%d]: gpu %d kills task %d but running is %d", i, ev.GPU, ev.Task, g.running)
			}
			g.running = taskgraph.NoTask
			g.busy += ev.At - g.startAt
			active[ev.Task] = false
			kills++
		case TraceDataLost:
			if !g.dead {
				return fmt.Errorf("trace[%d]: data %d lost on live gpu %d", i, ev.Data, ev.GPU)
			}
			if !g.resident[ev.Data] {
				return fmt.Errorf("trace[%d]: data %d lost on gpu %d while not resident", i, ev.Data, ev.GPU)
			}
			delete(g.resident, ev.Data)
			g.bytes -= inst.Data(ev.Data).Size
			lostBytes += inst.Data(ev.Data).Size
		case TraceRetry:
			retries++
		case TracePressureOn, TracePressureOff:
			// Spike bracketing; the memory bound stays the base budget.
		default:
			return fmt.Errorf("trace[%d]: unknown kind %d", i, ev.Kind)
		}
	}
	for t := range ran {
		if !ran[t] {
			return fmt.Errorf("task %d never executed", t)
		}
	}
	if fs := res.Faults; fs != nil {
		if dropouts != fs.Dropouts || kills != fs.KilledTasks ||
			lostBytes != fs.LostBytes || retries != fs.TransferRetries {
			return fmt.Errorf(
				"fault counters mismatch: trace (dropouts %d, kills %d, lost %d B, retries %d) vs result (%d, %d, %d, %d)",
				dropouts, kills, lostBytes, retries,
				fs.Dropouts, fs.KilledTasks, fs.LostBytes, fs.TransferRetries)
		}
	} else if dropouts+kills+retries > 0 || lostBytes > 0 {
		return fmt.Errorf("trace contains fault events but Result.Faults is nil")
	}
	for k := range gpus {
		g := &gpus[k]
		if g.running != taskgraph.NoTask {
			return fmt.Errorf("gpu %d still running task %d at end of trace", k, g.running)
		}
		s := res.GPU[k]
		if g.loads != s.Loads || g.evicts != s.Evictions || g.tasks != s.Tasks || g.bytesIn != s.BytesIn ||
			g.peerLoads != s.PeerLoads || g.peerBytes != s.PeerBytesIn || g.bytesOut != s.BytesOut {
			return fmt.Errorf("gpu %d counters mismatch: trace (loads %d, evicts %d, tasks %d, bytes %d, peer %d/%d) vs result (%d, %d, %d, %d, %d/%d)",
				k, g.loads, g.evicts, g.tasks, g.bytesIn, g.peerLoads, g.peerBytes,
				s.Loads, s.Evictions, s.Tasks, s.BytesIn, s.PeerLoads, s.PeerBytesIn)
		}
	}
	if tel := res.Telemetry; tel != nil {
		if err := checkTelemetry(plat, res, tel, func(k int) (time.Duration, int, int64) {
			return gpus[k].busy, gpus[k].reloads, gpus[k].reloadedB
		}); err != nil {
			return err
		}
	}
	return nil
}

// checkTelemetry validates the engine-computed telemetry against the
// replayed trace: the idle attribution of every GPU must sum to
// Makespan - BusyTime (kernel latency included), and the reload
// counters must match the load-after-evict pairs observed in the trace.
func checkTelemetry(plat platform.Platform, res *Result, tel *Telemetry,
	perGPU func(int) (time.Duration, int, int64)) error {
	if len(tel.GPU) != plat.NumGPUs {
		return fmt.Errorf("telemetry: %d GPU records for %d GPUs", len(tel.GPU), plat.NumGPUs)
	}
	var idleSum, busySum time.Duration
	reloads := 0
	var reloadedB int64
	for k := range tel.GPU {
		busy, wantReloads, wantReloadedB := perGPU(k)
		g := tel.GPU[k]
		if g.BusyTime != busy {
			return fmt.Errorf("telemetry: gpu %d busy %v, trace says %v", k, g.BusyTime, busy)
		}
		if idle := g.IdleTotal(); idle != res.Makespan-busy {
			return fmt.Errorf(
				"telemetry: gpu %d idle breakdown sums to %v (starved %v + bus %v + peer %v + done %v + dead %v), want makespan-busy = %v",
				k, idle, g.StarvedNoTask, g.BlockedOnBus, g.BlockedOnPeer, g.Done, g.Dead, res.Makespan-busy)
		}
		if g.Reloads != wantReloads || g.ReloadedBytes != wantReloadedB {
			return fmt.Errorf("telemetry: gpu %d reloads %d (%d B), trace has %d load-after-evict pairs (%d B)",
				k, g.Reloads, g.ReloadedBytes, wantReloads, wantReloadedB)
		}
		idleSum += g.IdleTotal()
		busySum += busy
		reloads += g.Reloads
		reloadedB += g.ReloadedBytes
	}
	if want := time.Duration(plat.NumGPUs)*res.Makespan - busySum; idleSum != want {
		return fmt.Errorf("telemetry: machine idle %v, want Makespan*NumGPUs - ΣBusyTime = %v", idleSum, want)
	}
	if tel.IdleTotal != idleSum {
		return fmt.Errorf("telemetry: IdleTotal %v disagrees with per-GPU sum %v", tel.IdleTotal, idleSum)
	}
	if tel.Reloads != reloads || tel.ReloadedBytes != reloadedB {
		return fmt.Errorf("telemetry: machine reloads %d (%d B), per-GPU sum %d (%d B)",
			tel.Reloads, tel.ReloadedBytes, reloads, reloadedB)
	}
	return nil
}
