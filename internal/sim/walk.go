package sim

import (
	"sort"
	"time"

	"memsched/internal/taskgraph"
)

// This file provides the trace-walk helpers behind the critical-path
// analyzer (internal/critpath): a recorded trace, indexed for the
// backward queries the walk needs — "which task occupied this GPU
// before t", "when did this input last arrive here", "was that arrival
// a reload", "was this transfer retried". Everything is rebuilt from
// Result.Trace alone, so any recorded run (live, journaled, or replayed
// from a capture) can be analyzed after the fact.

// Span is one occupancy interval of a GPU: a task's execution from its
// TraceStart to its TraceEnd, or to the TraceTaskKill that destroyed it
// mid-flight (Killed spans produced no completion; their compute time
// was lost to the fault).
type Span struct {
	Start, End time.Duration
	Task       taskgraph.TaskID
	Killed     bool
}

// Arrival is one data item becoming resident on a GPU (a TraceLoad or
// TracePeerLoad), annotated with what the walk needs to classify the
// wait it ended.
type Arrival struct {
	At time.Duration
	// Peer marks an NVLink arrival (TracePeerLoad).
	Peer bool
	// Reload marks a load of data previously evicted from the same GPU:
	// the transfer exists only because memory pressure threw the replica
	// away (the telemetry layer counts these the same way).
	Reload bool
	// Retried marks that the transfer suffered at least one transient
	// failure (a TraceRetry for the same GPU and data was recorded after
	// the previous arrival of this data there).
	Retried bool
}

// TraceIndex is a recorded trace reorganized for backward walks. Build
// one with IndexTrace; all slices are in ascending time order.
type TraceIndex struct {
	// Spans holds the per-GPU occupancy intervals.
	Spans [][]Span
	// Arrivals maps, per GPU, each data item to its arrival times there.
	Arrivals []map[taskgraph.DataID][]Arrival
	// WriteBacks lists completed output write-backs machine-wide.
	WriteBacks []TraceEvent
	// LastEnd is the time of the latest TraceEnd (zero when no task
	// completed); LastEndGPU/LastEndSpan locate its span. Ties are broken
	// by trace order: the last END recorded wins, matching the engine's
	// deterministic event order.
	LastEnd     time.Duration
	LastEndGPU  int
	LastEndSpan int
	// Tail holds every trace event strictly after LastEnd, in trace
	// order: the write-back or straggler-transfer drain that stretches
	// the makespan past the last completion.
	Tail []TraceEvent
	// LastEvent is the time of the final trace event.
	LastEvent time.Duration
}

// IndexTrace builds the walk index of a recorded trace. numGPUs is the
// platform GPU count (GPU ids in the trace are < numGPUs); an empty
// trace yields an index with empty tables.
func IndexTrace(trace []TraceEvent, numGPUs int) *TraceIndex {
	idx := &TraceIndex{
		Spans:       make([][]Span, numGPUs),
		Arrivals:    make([]map[taskgraph.DataID][]Arrival, numGPUs),
		LastEndGPU:  -1,
		LastEndSpan: -1,
	}
	for g := range idx.Arrivals {
		idx.Arrivals[g] = map[taskgraph.DataID][]Arrival{}
	}
	// One forward pass: open-span tracking per GPU, evicted-once flags
	// for reload classification, and a pending-retry flag per (GPU, data)
	// consumed by the next arrival of that data there.
	type openSpan struct {
		start time.Duration
		task  taskgraph.TaskID
		open  bool
	}
	running := make([]openSpan, numGPUs)
	evictedOnce := make([]map[taskgraph.DataID]bool, numGPUs)
	retried := make([]map[taskgraph.DataID]bool, numGPUs)
	for g := 0; g < numGPUs; g++ {
		evictedOnce[g] = map[taskgraph.DataID]bool{}
		retried[g] = map[taskgraph.DataID]bool{}
	}
	for _, ev := range trace {
		if ev.GPU < 0 || ev.GPU >= numGPUs {
			continue
		}
		switch ev.Kind {
		case TraceStart:
			running[ev.GPU] = openSpan{start: ev.At, task: ev.Task, open: true}
		case TraceEnd:
			if r := &running[ev.GPU]; r.open && r.task == ev.Task {
				idx.Spans[ev.GPU] = append(idx.Spans[ev.GPU], Span{Start: r.start, End: ev.At, Task: ev.Task})
				r.open = false
				idx.LastEnd = ev.At
				idx.LastEndGPU = ev.GPU
				idx.LastEndSpan = len(idx.Spans[ev.GPU]) - 1
			}
		case TraceTaskKill:
			if r := &running[ev.GPU]; r.open && r.task == ev.Task {
				idx.Spans[ev.GPU] = append(idx.Spans[ev.GPU], Span{Start: r.start, End: ev.At, Task: ev.Task, Killed: true})
				r.open = false
			}
		case TraceLoad, TracePeerLoad:
			idx.Arrivals[ev.GPU][ev.Data] = append(idx.Arrivals[ev.GPU][ev.Data], Arrival{
				At:      ev.At,
				Peer:    ev.Kind == TracePeerLoad,
				Reload:  evictedOnce[ev.GPU][ev.Data],
				Retried: retried[ev.GPU][ev.Data],
			})
			retried[ev.GPU][ev.Data] = false
		case TraceEvict, TraceDataLost:
			evictedOnce[ev.GPU][ev.Data] = true
		case TraceRetry:
			if ev.Data != taskgraph.NoData {
				retried[ev.GPU][ev.Data] = true
			}
		case TraceWriteBack:
			idx.WriteBacks = append(idx.WriteBacks, ev)
		}
		idx.LastEvent = ev.At
	}
	for _, ev := range trace {
		if ev.At > idx.LastEnd {
			idx.Tail = append(idx.Tail, ev)
		}
	}
	return idx
}

// SpanBefore returns the index of the last span of GPU g ending at or
// before t, or -1 when g ran nothing before t.
func (idx *TraceIndex) SpanBefore(g int, t time.Duration) int {
	spans := idx.Spans[g]
	i := sort.Search(len(spans), func(i int) bool { return spans[i].End > t })
	return i - 1
}

// LastArrival returns the latest arrival of d on GPU g at or before t,
// or false when d never arrived there by t.
func (idx *TraceIndex) LastArrival(g int, d taskgraph.DataID, t time.Duration) (Arrival, bool) {
	arr := idx.Arrivals[g][d]
	i := sort.Search(len(arr), func(i int) bool { return arr[i].At > t })
	if i == 0 {
		return Arrival{}, false
	}
	return arr[i-1], true
}

// KillOf returns the latest Killed span of task t ending in (after,
// upTo], or false when the task was not killed in that window. Linear
// over the killed spans (dropout plans kill at most one task per GPU).
func (idx *TraceIndex) KillOf(t taskgraph.TaskID, after, upTo time.Duration) (Span, int, bool) {
	var best Span
	bestGPU := -1
	for g, spans := range idx.Spans {
		for _, sp := range spans {
			if sp.Killed && sp.Task == t && sp.End > after && sp.End <= upTo {
				if bestGPU == -1 || sp.End > best.End {
					best, bestGPU = sp, g
				}
			}
		}
	}
	return best, bestGPU, bestGPU >= 0
}
