package sim_test

import (
	"context"
	"reflect"
	"strings"
	"testing"
	"time"

	"memsched/internal/fault"
	"memsched/internal/memory"
	"memsched/internal/sim"
	"memsched/internal/taskgraph"
)

// TestEmptyFaultPlanIsNoOp pins the no-op contract: a nil plan, the zero
// plan and a rate-0 transient plan all produce results identical to a
// run configured without fault injection at all — with fresh engine
// state and with a recycled Scratch alike.
func TestEmptyFaultPlanIsNoOp(t *testing.T) {
	run := func(plan *fault.Plan, sc *sim.Scratch) *sim.Result {
		t.Helper()
		res, err := sim.Run(chain(6), sim.Config{
			Platform:  tinyPlatform(2, 100),
			Scheduler: &listSched{queues: [][]taskgraph.TaskID{{0, 1, 2}, {3, 4, 5}}},
			Eviction:  memory.NewLRU(),
			Telemetry: true,
			Faults:    plan,
			Scratch:   sc,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := run(nil, nil)
	if want.Faults != nil {
		t.Fatalf("fault-free run has Faults = %+v, want nil", want.Faults)
	}
	plans := map[string]*fault.Plan{
		"nil":       nil,
		"zero":      {},
		"rate-zero": {Seed: 7, Transient: &fault.Transient{Rate: 0, MaxRetries: 4, Backoff: time.Millisecond}},
	}
	for name, plan := range plans {
		if got := run(plan, nil); !reflect.DeepEqual(got, want) {
			t.Errorf("%s plan: result differs from fault-free run:\ngot  %+v\nwant %+v", name, got, want)
		}
	}
	sc := sim.NewScratch()
	for name, plan := range plans {
		if got := run(plan, sc); !reflect.DeepEqual(got, want) {
			t.Errorf("%s plan with recycled Scratch: result differs from fault-free run:\ngot  %+v\nwant %+v", name, got, want)
		}
	}
}

// TestFaultyRunIsDeterministic pins bit-determinism: the same seed and
// plan produce the identical faulty schedule on repeated runs.
func TestFaultyRunIsDeterministic(t *testing.T) {
	plan := &fault.Plan{
		Seed:      3,
		Dropouts:  []fault.Dropout{{GPU: 1, At: 1500 * time.Millisecond}},
		Transient: &fault.Transient{Rate: 0.3, MaxRetries: 4, Backoff: 10 * time.Millisecond},
		Pressures: []fault.Pressure{{GPU: 0, At: time.Second, Duration: 2 * time.Second, Bytes: 30}},
	}
	run := func() *sim.Result {
		t.Helper()
		res, err := sim.Run(chain(8), sim.Config{
			Platform:  tinyPlatform(2, 100),
			Scheduler: &requeueSched{listSched{queues: [][]taskgraph.TaskID{{0, 1, 2, 3}, {4, 5, 6, 7}}}},
			Eviction:  memory.NewLRU(),
			Telemetry: true,
			Faults:    plan,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("faulty runs with identical seed+plan differ:\nfirst  %+v\nsecond %+v", a, b)
	}
	if a.Faults == nil || a.Faults.Dropouts != 1 {
		t.Fatalf("Faults = %+v, want exactly 1 dropout recorded", a.Faults)
	}
	if a.Faults.RequeuedTasks == 0 {
		t.Fatalf("Faults = %+v, want requeued tasks after the dropout", a.Faults)
	}
}

// requeueSched is listSched plus the DropoutHandler hook: the dead GPU's
// tasks are appended to GPU 0's list (or the first alive GPU).
type requeueSched struct {
	listSched
}

func (s *requeueSched) Init(inst *taskgraph.Instance, view sim.RuntimeView) {
	s.listSched.Init(inst, view)
}

func (s *requeueSched) GPUDropped(gpu int, requeue []taskgraph.TaskID) {
	dest := -1
	for g := range s.queues {
		if g != gpu && s.view.Alive(g) {
			dest = g
			break
		}
	}
	if dest < 0 {
		return
	}
	s.queues[dest] = append(s.queues[dest], requeue...)
	s.queues[dest] = append(s.queues[dest], s.queues[gpu]...)
	s.queues[gpu] = nil
}

// TestDropoutWithoutHandlerStallsWithDiagnostic pins the livelock guard:
// a scheduler without the DropoutHandler hook strands the dead GPU's
// tasks, and the engine reports which tasks are stuck and why instead of
// spinning.
func TestDropoutWithoutHandlerStallsWithDiagnostic(t *testing.T) {
	_, err := sim.Run(chain(6), sim.Config{
		Platform:  tinyPlatform(2, 100),
		Scheduler: &listSched{queues: [][]taskgraph.TaskID{{0, 1, 2}, {3, 4, 5}}},
		Eviction:  memory.NewLRU(),
		Faults: &fault.Plan{
			Dropouts: []fault.Dropout{{GPU: 1, At: 500 * time.Millisecond}},
		},
	})
	if err == nil {
		t.Fatal("dropout with a handler-less scheduler completed, want stall error")
	}
	for _, want := range []string{"stalled", "dead GPUs [1]", "no DropoutHandler", "stranded"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("stall diagnostic %q does not mention %q", err, want)
		}
	}
}

// TestStallDiagnosticNamesStrandedTasks pins the per-task detail lines
// of the stall diagnostic on a hand-built stuck instance: tasks stranded
// on the dead GPU are named individually.
func TestStallDiagnosticNamesStrandedTasks(t *testing.T) {
	_, err := sim.Run(chain(4), sim.Config{
		Platform:  tinyPlatform(2, 100),
		Scheduler: &listSched{queues: [][]taskgraph.TaskID{{0, 1}, {2, 3}}},
		Eviction:  memory.NewLRU(),
		Faults: &fault.Plan{
			Dropouts: []fault.Dropout{{GPU: 1, At: 100 * time.Millisecond}},
		},
	})
	if err == nil {
		t.Fatal("want stall error")
	}
	// Tasks 2 and 3 belong to the dead GPU's list and were never handed
	// out again; the diagnostic must name at least one of them.
	msg := err.Error()
	if !strings.Contains(msg, "task 2") && !strings.Contains(msg, "task 3") {
		t.Errorf("stall diagnostic does not name the stranded tasks: %q", msg)
	}
}

// TestContextCancelsRun pins cooperative cancellation: an already
// cancelled context stops the engine at its first poll with a
// progress-annotated error.
func TestContextCancelsRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// Enough tasks that the event loop reaches its periodic context poll
	// (every 1024 iterations) long before the run completes.
	const m = 2000
	queues := make([][]taskgraph.TaskID, 2)
	for i := 0; i < m; i++ {
		queues[i%2] = append(queues[i%2], taskgraph.TaskID(i))
	}
	_, err := sim.Run(chain(m), sim.Config{
		Platform:  tinyPlatform(2, 100_000),
		Scheduler: &listSched{queues: queues},
		Eviction:  memory.NewLRU(),
		Context:   ctx,
	})
	if err == nil {
		t.Fatal("run with cancelled context completed, want error")
	}
	if !strings.Contains(err.Error(), "cancelled") {
		t.Fatalf("error %q does not mention cancellation", err)
	}
	if !strings.Contains(err.Error(), context.Canceled.Error()) {
		t.Fatalf("error %q does not wrap context.Canceled", err)
	}
}

// TestCheckTraceRejectsDeadGPUUse pins the invariant checker's fault
// semantics: activity on a GPU after its dropout (other than writebacks
// and the dropout bookkeeping itself) must be rejected.
func TestCheckTraceRejectsDeadGPUUse(t *testing.T) {
	inst := chain(6)
	res, err := sim.Run(inst, sim.Config{
		Platform:        tinyPlatform(2, 100),
		Scheduler:       &requeueSched{listSched{queues: [][]taskgraph.TaskID{{0, 1, 2}, {3, 4, 5}}}},
		Eviction:        memory.NewLRU(),
		Telemetry:       true,
		RecordTrace:     true,
		CheckInvariants: true,
		Faults: &fault.Plan{
			Dropouts: []fault.Dropout{{GPU: 1, At: 1500 * time.Millisecond}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The genuine trace passed CheckInvariants inside Run. Now forge a
	// task start on the dead GPU after its dropout.
	forged := *res
	forged.Trace = append(append([]sim.TraceEvent(nil), res.Trace...), sim.TraceEvent{
		At:   res.Makespan,
		Kind: sim.TraceStart,
		GPU:  1,
		Task: 0,
	})
	if err := sim.CheckTrace(inst, tinyPlatform(2, 100), &forged); err == nil {
		t.Fatal("forged task start on a dead GPU passed CheckTrace")
	} else if !strings.Contains(err.Error(), "after its dropout") {
		t.Fatalf("rejection %q does not mention the dropout", err)
	}
}
