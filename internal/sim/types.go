package sim

import (
	"context"
	"fmt"
	"time"

	"memsched/internal/fault"
	"memsched/internal/platform"
	"memsched/internal/taskgraph"
)

// DefaultWindowSize is the default depth of the per-GPU task window (the
// number of tasks prefetched ahead of the one executing), mirroring the
// small prefetch depth of StarPU workers.
const DefaultWindowSize = 4

// DefaultNsPerOp converts abstract scheduler operations into simulated
// scheduling time for the "+sched time" variants. It approximates one
// cache-unfriendly pointer-chasing operation of the original C schedulers.
const DefaultNsPerOp = 12.0

// Config parameterizes one simulation run.
type Config struct {
	// Platform describes the machine. Required.
	Platform platform.Platform
	// Scheduler decides task placement and ordering. Required.
	Scheduler Scheduler
	// Eviction chooses eviction victims. Required (use memory.NewLRU()
	// for the paper's default policy).
	Eviction EvictionPolicy
	// WindowSize is the per-GPU task window depth; 0 selects
	// DefaultWindowSize.
	WindowSize int
	// Seed feeds the deterministic random source used for tie-breaking.
	Seed int64
	// NsPerOp is the cost-model conversion from abstract scheduler
	// operations to nanoseconds of simulated scheduling time. Zero
	// disables cost charging (the paper's "no sched. time" and
	// "no part. time" variants).
	NsPerOp float64
	// RecordTrace keeps the full event trace in the Result.
	RecordTrace bool
	// Probe, when non-nil, receives every trace event as it is
	// committed, without the O(events) retention of RecordTrace. The
	// probe observes the identical sequence a recorded trace would
	// contain; see the Probe documentation for the contract.
	Probe Probe
	// Telemetry enables the engine-computed observability summary
	// (per-GPU idle-time attribution, bus and NVLink utilization,
	// occupancy high-water marks and timeline, reload counts), attached
	// as Result.Telemetry. It is pure observation: enabling it never
	// changes the simulated schedule or any other Result field.
	Telemetry bool
	// CheckInvariants replays the trace after the run and fails the run
	// on any violation (memory overflow, task started without inputs,
	// double loads). Implies RecordTrace.
	CheckInvariants bool
	// BusModel selects how concurrent host transfers contend on the
	// shared bus: BusFIFO (default) serializes them, BusFairShare
	// splits the bandwidth evenly among in-flight transfers, as
	// fluid-flow network simulators like the paper's SimGrid do.
	BusModel BusModel
	// Faults, when non-nil and non-empty, injects the deterministic
	// fault plan (GPU dropouts, transient transfer failures,
	// memory-pressure spikes) into the run; Result.Faults then carries
	// the degradation metrics. A nil or empty plan is a strict no-op:
	// the run is byte-identical to one configured without a plan.
	Faults *fault.Plan
	// Context, when non-nil, allows cancelling a long run: the event
	// loop polls it periodically and returns an error wrapping
	// Context.Err() once it is done. Nil means no cancellation.
	Context context.Context
	// Scratch, when non-nil, supplies reusable engine state so that
	// sequential runs (a sweep's cells, a benchmark loop) skip the per-run
	// transient allocations. Results are byte-identical with or without
	// it. A Scratch serves one run at a time: it is not safe for
	// concurrent use — give each worker goroutine its own.
	Scratch *Scratch
}

// BusModel selects the contention model of the shared host bus.
type BusModel uint8

const (
	// BusFIFO serializes host transfers in request order.
	BusFIFO BusModel = iota
	// BusFairShare progresses all in-flight host transfers concurrently,
	// each receiving an equal share of the bus bandwidth.
	BusFairShare
)

// String returns the model mnemonic.
func (m BusModel) String() string {
	if m == BusFairShare {
		return "fair-share"
	}
	return "fifo"
}

// GPUStats aggregates per-GPU counters of one run.
type GPUStats struct {
	// Tasks is the number of tasks executed by this GPU.
	Tasks int
	// Loads is the number of data transfers into this GPU.
	Loads int
	// Evictions is the number of data evictions from this GPU.
	Evictions int
	// BytesIn is the volume transferred into this GPU over the shared
	// host bus.
	BytesIn int64
	// PeerLoads is the number of NVLink transfers into this GPU.
	PeerLoads int
	// PeerBytesIn is the volume received over NVLink.
	PeerBytesIn int64
	// BytesOut is the volume of task outputs written back to the host
	// by this GPU.
	BytesOut int64
	// BusyTime is the total kernel execution time on this GPU.
	BusyTime time.Duration
}

// Result is the outcome of one simulation run.
type Result struct {
	// SchedulerName and InstanceName identify the run.
	SchedulerName string
	InstanceName  string
	// NumGPUs is the number of GPUs of the platform.
	NumGPUs int
	// Makespan is the completion time of the last task, including any
	// static scheduling phase.
	Makespan time.Duration
	// GFlops is the achieved throughput TotalFlops/Makespan/1e9, the
	// y-axis of the paper's performance figures.
	GFlops float64
	// TotalFlops is the total work of the instance.
	TotalFlops float64
	// WorkingSetBytes is the footprint of all distinct data.
	WorkingSetBytes int64
	// BytesTransferred is the total volume moved over the shared bus,
	// the y-axis of the paper's transfer figures.
	BytesTransferred int64
	// PeerBytesTransferred is the total volume moved GPU-to-GPU over
	// NVLink (zero unless the platform enables the NVLink extension).
	PeerBytesTransferred int64
	// BytesWrittenBack is the total volume of task outputs returned to
	// host memory over the shared bus (zero unless the instance defines
	// task outputs).
	BytesWrittenBack int64
	// Loads and Evictions are machine-wide counts. Loads includes both
	// host and peer loads.
	Loads     int
	Evictions int
	// StaticCost is the simulated duration of the static scheduling
	// phase (hypergraph partitioning, HFP packing).
	StaticCost time.Duration
	// DynamicCost is the total simulated time charged by dynamic
	// scheduling decisions across all GPUs.
	DynamicCost time.Duration
	// ChargedOps is the total abstract operations charged by the
	// scheduler, whether or not they were converted into delay.
	ChargedOps int64
	// Events is the number of discrete events the simulation processed,
	// the denominator of the harness's events/s gauge.
	Events int64
	// GPU holds the per-GPU counters.
	GPU []GPUStats
	// LoadsPerData counts, for every data item, how many transfers
	// (host or peer) brought it into some GPU over the whole run: the
	// per-data pathology profile (an EAGER run under memory pressure
	// shows every B column reloaded once per block-row of A).
	LoadsPerData []int
	// Trace is the event log when Config.RecordTrace is set.
	Trace []TraceEvent
	// Telemetry is the observability summary when Config.Telemetry is
	// set: idle-time attribution, bus utilization, occupancy, reloads.
	Telemetry *Telemetry
	// Faults carries the degradation metrics of a faulty run. It is nil
	// on fault-free runs (no plan, or an empty plan), keeping fault-free
	// results identical to runs configured without a plan.
	Faults *FaultStats
}

// String summarizes the result on one line.
func (r *Result) String() string {
	return fmt.Sprintf("%s on %s: %.0f GFlop/s, %.1f MB transferred, makespan %v",
		r.SchedulerName, r.InstanceName, r.GFlops,
		float64(r.BytesTransferred)/platform.MB, r.Makespan)
}

// TraceKind distinguishes trace events.
type TraceKind uint8

// Trace event kinds.
const (
	// TraceLoad records a data item becoming resident on a GPU.
	TraceLoad TraceKind = iota
	// TraceEvict records a data item leaving a GPU memory.
	TraceEvict
	// TraceStart records a task starting on a GPU.
	TraceStart
	// TraceEnd records a task completing on a GPU.
	TraceEnd
	// TracePeerLoad records a data item arriving over NVLink from a
	// peer GPU.
	TracePeerLoad
	// TraceWriteBack records a task's output finishing its transfer
	// back to host memory.
	TraceWriteBack
	// TraceDropout records a permanent GPU loss (fault injection).
	TraceDropout
	// TraceTaskKill records a task killed mid-execution by a dropout.
	TraceTaskKill
	// TraceDataLost records a resident replica lost to a dropout.
	TraceDataLost
	// TraceRetry records one failed attempt of a transient transfer
	// failure; the transfer is charged the retry backoff and succeeds.
	TraceRetry
	// TracePressureOn and TracePressureOff bracket a memory-pressure
	// spike shrinking a GPU's memory budget.
	TracePressureOn
	TracePressureOff
)

// String returns the mnemonic of the kind.
func (k TraceKind) String() string {
	switch k {
	case TraceLoad:
		return "LOAD"
	case TraceEvict:
		return "EVICT"
	case TraceStart:
		return "START"
	case TraceEnd:
		return "END"
	case TracePeerLoad:
		return "PEER"
	case TraceWriteBack:
		return "WRITE"
	case TraceDropout:
		return "DROP"
	case TraceTaskKill:
		return "KILL"
	case TraceDataLost:
		return "LOST"
	case TraceRetry:
		return "RETRY"
	case TracePressureOn:
		return "PRESS+"
	case TracePressureOff:
		return "PRESS-"
	}
	return "?"
}

// TraceEvent is one entry of the simulation event log.
type TraceEvent struct {
	// At is the simulated time of the event.
	At time.Duration
	// Kind is the event type.
	Kind TraceKind
	// GPU is the accelerator concerned.
	GPU int
	// Task is set for TraceStart/TraceEnd, taskgraph.NoTask otherwise.
	Task taskgraph.TaskID
	// Data is set for TraceLoad/TraceEvict, taskgraph.NoData otherwise.
	Data taskgraph.DataID
}

// String formats the event for trace dumps.
func (e TraceEvent) String() string {
	switch e.Kind {
	case TraceLoad, TraceEvict, TracePeerLoad, TraceDataLost:
		return fmt.Sprintf("%12v gpu%d %-5s data %d", e.At, e.GPU, e.Kind, e.Data)
	case TraceRetry:
		// A retry names the data being loaded, or the task whose output
		// write-back failed.
		if e.Data != taskgraph.NoData {
			return fmt.Sprintf("%12v gpu%d %-5s data %d", e.At, e.GPU, e.Kind, e.Data)
		}
		return fmt.Sprintf("%12v gpu%d %-5s task %d", e.At, e.GPU, e.Kind, e.Task)
	case TraceDropout, TracePressureOn, TracePressureOff:
		return fmt.Sprintf("%12v gpu%d %-5s", e.At, e.GPU, e.Kind)
	default:
		return fmt.Sprintf("%12v gpu%d %-5s task %d", e.At, e.GPU, e.Kind, e.Task)
	}
}
