package sim_test

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"memsched/internal/fault"
	"memsched/internal/memory"
	"memsched/internal/sim"
	"memsched/internal/taskgraph"
)

func TestWriteChromeTrace(t *testing.T) {
	inst := chain(3)
	res := runTraced(t, inst, [][]taskgraph.TaskID{{0, 1, 2}}, 1, 1000)

	var buf bytes.Buffer
	if err := sim.WriteChromeTrace(&buf, inst, tinyPlatform(1, 1000), res); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Phase string  `json:"ph"`
			TS    float64 `json:"ts"`
			Dur   float64 `json:"dur"`
			TID   int     `json:"tid"`
			Cat   string  `json:"cat"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	var computes, transfers int
	for _, e := range out.TraceEvents {
		switch e.Cat {
		case "compute":
			computes++
			if e.Dur <= 0 {
				t.Fatalf("compute with non-positive duration: %+v", e)
			}
		case "transfer":
			transfers++
			if e.TS < 0 {
				t.Fatalf("transfer starts before zero: %+v", e)
			}
		}
	}
	if computes != 3 || transfers != 4 {
		t.Fatalf("got %d computes, %d transfers", computes, transfers)
	}
}

// TestWriteChromeTraceFaultyRun checks the exporter renders every fault
// trace kind — GPU dropout (task kill + data lost), transient retries
// and memory pressure — as valid chrome://tracing JSON.
func TestWriteChromeTraceFaultyRun(t *testing.T) {
	inst := chain(8)
	plan := &fault.Plan{
		Seed:      3,
		Dropouts:  []fault.Dropout{{GPU: 1, At: 1500 * time.Millisecond}},
		Transient: &fault.Transient{Rate: 0.3, MaxRetries: 4, Backoff: 10 * time.Millisecond},
		Pressures: []fault.Pressure{{GPU: 0, At: time.Second, Duration: 2 * time.Second, Bytes: 30}},
	}
	res, err := sim.Run(inst, sim.Config{
		Platform:    tinyPlatform(2, 100),
		Scheduler:   &requeueSched{listSched{queues: [][]taskgraph.TaskID{{0, 1, 2, 3}, {4, 5, 6, 7}}}},
		Eviction:    memory.NewLRU(),
		RecordTrace: true,
		Faults:      plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults == nil || res.Faults.KilledTasks == 0 || res.Faults.TransferRetries == 0 {
		t.Fatalf("plan did not exercise faults: %+v", res.Faults)
	}

	var buf bytes.Buffer
	if err := sim.WriteChromeTrace(&buf, inst, tinyPlatform(2, 100), res); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Phase string  `json:"ph"`
			TS    float64 `json:"ts"`
			Dur   float64 `json:"dur"`
			Cat   string  `json:"cat"`
			Cname string  `json:"cname"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("faulty trace is not valid JSON: %v", err)
	}
	var killedSpans, faultMarks, pressureMarks int
	for _, e := range out.TraceEvents {
		switch e.Phase {
		case "X", "i", "M":
		default:
			t.Fatalf("unexpected phase %q: %+v", e.Phase, e)
		}
		if e.TS < 0 {
			t.Fatalf("event before time zero: %+v", e)
		}
		switch e.Cat {
		case "fault":
			if e.Phase == "X" {
				killedSpans++
				if e.Dur <= 0 || e.Cname != "terrible" {
					t.Fatalf("killed partial span malformed: %+v", e)
				}
			} else {
				faultMarks++
			}
		case "pressure":
			pressureMarks++
		}
	}
	if killedSpans == 0 {
		t.Fatal("no killed partial span rendered for the dropout")
	}
	if faultMarks == 0 {
		t.Fatal("no fault instant marks (kill/lost/retry) rendered")
	}
	if pressureMarks != 2 {
		t.Fatalf("pressure marks = %d, want on+off", pressureMarks)
	}
}

func TestWriteChromeTraceRequiresTrace(t *testing.T) {
	inst := chain(1)
	var buf bytes.Buffer
	if err := sim.WriteChromeTrace(&buf, inst, tinyPlatform(1, 100), &sim.Result{}); err == nil {
		t.Fatal("expected error without trace")
	}
	_ = memory.NewLRU() // keep import in sync with helpers
}
