package sim_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"memsched/internal/memory"
	"memsched/internal/sim"
	"memsched/internal/taskgraph"
)

func TestWriteChromeTrace(t *testing.T) {
	inst := chain(3)
	res := runTraced(t, inst, [][]taskgraph.TaskID{{0, 1, 2}}, 1, 1000)

	var buf bytes.Buffer
	if err := sim.WriteChromeTrace(&buf, inst, tinyPlatform(1, 1000), res); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Phase string  `json:"ph"`
			TS    float64 `json:"ts"`
			Dur   float64 `json:"dur"`
			TID   int     `json:"tid"`
			Cat   string  `json:"cat"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	var computes, transfers int
	for _, e := range out.TraceEvents {
		switch e.Cat {
		case "compute":
			computes++
			if e.Dur <= 0 {
				t.Fatalf("compute with non-positive duration: %+v", e)
			}
		case "transfer":
			transfers++
			if e.TS < 0 {
				t.Fatalf("transfer starts before zero: %+v", e)
			}
		}
	}
	if computes != 3 || transfers != 4 {
		t.Fatalf("got %d computes, %d transfers", computes, transfers)
	}
}

func TestWriteChromeTraceRequiresTrace(t *testing.T) {
	inst := chain(1)
	var buf bytes.Buffer
	if err := sim.WriteChromeTrace(&buf, inst, tinyPlatform(1, 100), &sim.Result{}); err == nil {
		t.Fatal("expected error without trace")
	}
	_ = memory.NewLRU() // keep import in sync with helpers
}
