package sim_test

import (
	"strings"
	"testing"
	"time"

	"memsched/internal/memory"
	"memsched/internal/platform"
	"memsched/internal/sim"
	"memsched/internal/taskgraph"
)

// listSched serves a fixed per-GPU list of tasks in order; nil-safe hooks.
type listSched struct {
	queues [][]taskgraph.TaskID
	charge int64 // ops charged per pop
	view   sim.RuntimeView
}

func (s *listSched) Name() string { return "list" }
func (s *listSched) Init(inst *taskgraph.Instance, view sim.RuntimeView) {
	s.view = view
}
func (s *listSched) PopTask(gpu int) (taskgraph.TaskID, bool) {
	if s.charge > 0 {
		s.view.Charge(s.charge)
	}
	if gpu >= len(s.queues) || len(s.queues[gpu]) == 0 {
		return taskgraph.NoTask, false
	}
	t := s.queues[gpu][0]
	s.queues[gpu] = s.queues[gpu][1:]
	return t, true
}
func (s *listSched) TaskDone(gpu int, t taskgraph.TaskID)    {}
func (s *listSched) DataLoaded(gpu int, d taskgraph.DataID)  {}
func (s *listSched) DataEvicted(gpu int, d taskgraph.DataID) {}

// tinyPlatform returns a platform with easy round numbers: 1 GFlop/s per
// GPU, 100 B/s bus, no latencies.
func tinyPlatform(gpus int, mem int64) platform.Platform {
	return platform.Platform{
		NumGPUs:           gpus,
		MemoryBytes:       mem,
		GFlopsPerGPU:      1,
		BusBytesPerSecond: 100,
	}
}

// chain builds m tasks each reading one private data item of 10 bytes
// plus one shared item.
func chain(m int) *taskgraph.Instance {
	b := taskgraph.NewBuilder("chain")
	shared := b.AddData("S", 10)
	for i := 0; i < m; i++ {
		d := b.AddData("D", 10)
		b.AddTask("T", 1e9, shared, d) // 1 second of compute each
	}
	return b.Build()
}

func TestBusIsSharedAndFIFO(t *testing.T) {
	// Two GPUs each run one independent task with one 10-byte input
	// (0.1 s transfer). The second GPU's transfer must wait for the
	// first: completions at 1.1 s and 1.2 s.
	b := taskgraph.NewBuilder("two")
	d0 := b.AddData("d0", 10)
	d1 := b.AddData("d1", 10)
	b.AddTask("t0", 1e9, d0)
	b.AddTask("t1", 1e9, d1)
	inst := b.Build()

	res, err := sim.Run(inst, sim.Config{
		Platform:  tinyPlatform(2, 1000),
		Scheduler: &listSched{queues: [][]taskgraph.TaskID{{0}, {1}}},
		Eviction:  memory.NewLRU(),
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 1200 * time.Millisecond
	if res.Makespan != want {
		t.Fatalf("makespan = %v, want %v (serialized bus)", res.Makespan, want)
	}
}

func TestTransfersOverlapCompute(t *testing.T) {
	// One GPU, two tasks with disjoint 10-byte inputs. The second
	// transfer overlaps the first task: makespan = 0.1 + 1 + 1 = 2.1 s,
	// not 0.1 + 1 + 0.1 + 1.
	b := taskgraph.NewBuilder("overlap")
	d0 := b.AddData("d0", 10)
	d1 := b.AddData("d1", 10)
	b.AddTask("t0", 1e9, d0)
	b.AddTask("t1", 1e9, d1)
	inst := b.Build()

	res, err := sim.Run(inst, sim.Config{
		Platform:  tinyPlatform(1, 1000),
		Scheduler: &listSched{queues: [][]taskgraph.TaskID{{0, 1}}},
		Eviction:  memory.NewLRU(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 2100*time.Millisecond {
		t.Fatalf("makespan = %v, want 2.1s (prefetch overlap)", res.Makespan)
	}
}

func TestWindowOnePrefetchesOneAhead(t *testing.T) {
	// The window counts tasks waiting to start: with window 1 the next
	// task is popped when the current one starts, so a single transfer
	// still overlaps compute (as a real worker with one prefetch slot).
	b := taskgraph.NewBuilder("nooverlap")
	d0 := b.AddData("d0", 10)
	d1 := b.AddData("d1", 10)
	b.AddTask("t0", 1e9, d0)
	b.AddTask("t1", 1e9, d1)
	inst := b.Build()

	res, err := sim.Run(inst, sim.Config{
		Platform:   tinyPlatform(1, 1000),
		Scheduler:  &listSched{queues: [][]taskgraph.TaskID{{0, 1}}},
		Eviction:   memory.NewLRU(),
		WindowSize: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 2100*time.Millisecond {
		t.Fatalf("makespan = %v, want 2.1s (one-deep prefetch)", res.Makespan)
	}
}

func TestMemoryPressurePrefetchVersusLRU(t *testing.T) {
	// Memory of 60 bytes holds six 10-byte items; the window keeps the
	// shared item plus up to five private inputs alive. The compulsory
	// load count is 11 (each item once). Under LRU the prefetch/eviction
	// conflict of the paper appears even here: freshly prefetched (but
	// not yet used) inputs carry older stamps than the just-used ones,
	// so LRU evicts exactly the data the window is about to need and the
	// runtime reloads it. FIFO, which evicts by load time, reaches the
	// compulsory minimum on this access pattern.
	inst := chain(10)
	queues := func() [][]taskgraph.TaskID {
		return [][]taskgraph.TaskID{{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}}
	}
	lru, err := sim.Run(inst, sim.Config{
		Platform:        tinyPlatform(1, 60),
		Scheduler:       &listSched{queues: queues()},
		Eviction:        memory.NewLRU(),
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	fifo, err := sim.Run(inst, sim.Config{
		Platform:        tinyPlatform(1, 60),
		Scheduler:       &listSched{queues: queues()},
		Eviction:        memory.NewFIFO(),
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if fifo.Loads != 11 {
		t.Fatalf("FIFO loads = %d, want the compulsory 11", fifo.Loads)
	}
	if lru.Loads <= fifo.Loads {
		t.Fatalf("LRU loads = %d, expected reload churn above FIFO's %d", lru.Loads, fifo.Loads)
	}
	if lru.Evictions == 0 || fifo.Evictions == 0 {
		t.Fatal("expected evictions under memory pressure")
	}
}

func TestSchedulerCostDelaysStart(t *testing.T) {
	// One task, one input of 10 bytes, 0.1 s transfer, 1 s compute.
	// The pop charges 1e9 ops at 1 ns each = 1 s of scheduling time, so
	// the task may only start at t=1s (after its 0.1s transfer is long
	// done): makespan 2 s.
	b := taskgraph.NewBuilder("cost")
	d := b.AddData("d", 10)
	b.AddTask("t", 1e9, d)
	inst := b.Build()

	res, err := sim.Run(inst, sim.Config{
		Platform:  tinyPlatform(1, 100),
		Scheduler: &listSched{queues: [][]taskgraph.TaskID{{0}}, charge: 1e9},
		Eviction:  memory.NewLRU(),
		NsPerOp:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 2*time.Second {
		t.Fatalf("makespan = %v, want 2s (1s sched + 1s compute)", res.Makespan)
	}
	if res.DynamicCost < time.Second {
		t.Fatalf("dynamic cost = %v", res.DynamicCost)
	}
	// With NsPerOp = 0 the same charge is free.
	res, err = sim.Run(inst, sim.Config{
		Platform:  tinyPlatform(1, 100),
		Scheduler: &listSched{queues: [][]taskgraph.TaskID{{0}}, charge: 1e9},
		Eviction:  memory.NewLRU(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 1100*time.Millisecond {
		t.Fatalf("makespan = %v, want 1.1s with free scheduling", res.Makespan)
	}
	if res.ChargedOps == 0 {
		t.Fatal("charged ops should still be recorded")
	}
}

// staticSched charges a static cost in Init.
type staticSched struct {
	listSched
	staticOps int64
}

func (s *staticSched) Init(inst *taskgraph.Instance, view sim.RuntimeView) {
	s.listSched.Init(inst, view)
	view.ChargeStatic(s.staticOps)
}

func TestStaticCostDelaysEverything(t *testing.T) {
	b := taskgraph.NewBuilder("static")
	d := b.AddData("d", 10)
	b.AddTask("t", 1e9, d)
	inst := b.Build()

	s := &staticSched{staticOps: 5e8} // 0.5 s at 1 ns/op
	s.queues = [][]taskgraph.TaskID{{0}}
	res, err := sim.Run(inst, sim.Config{
		Platform:  tinyPlatform(1, 100),
		Scheduler: s,
		Eviction:  memory.NewLRU(),
		NsPerOp:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.StaticCost != 500*time.Millisecond {
		t.Fatalf("static cost = %v", res.StaticCost)
	}
	if res.Makespan != 1500*time.Millisecond {
		t.Fatalf("makespan = %v, want 1.5s", res.Makespan)
	}
}

func TestStallDetection(t *testing.T) {
	// A scheduler that never hands out the (only) task stalls the run.
	b := taskgraph.NewBuilder("stall")
	d := b.AddData("d", 10)
	b.AddTask("t", 1e9, d)
	inst := b.Build()

	_, err := sim.Run(inst, sim.Config{
		Platform:  tinyPlatform(1, 100),
		Scheduler: &listSched{queues: [][]taskgraph.TaskID{{}}},
		Eviction:  memory.NewLRU(),
	})
	if err == nil || !strings.Contains(err.Error(), "stalled") {
		t.Fatalf("err = %v, want stall detection", err)
	}
}

func TestConfigValidation(t *testing.T) {
	inst := chain(2)
	base := sim.Config{
		Platform:  tinyPlatform(1, 100),
		Scheduler: &listSched{queues: [][]taskgraph.TaskID{{0, 1}}},
		Eviction:  memory.NewLRU(),
	}
	if _, err := sim.Run(nil, base); err == nil {
		t.Error("nil instance accepted")
	}
	c := base
	c.Scheduler = nil
	if _, err := sim.Run(inst, c); err == nil {
		t.Error("nil scheduler accepted")
	}
	c = base
	c.Eviction = nil
	if _, err := sim.Run(inst, c); err == nil {
		t.Error("nil eviction accepted")
	}
	c = base
	c.WindowSize = -1
	if _, err := sim.Run(inst, c); err == nil {
		t.Error("negative window accepted")
	}
	c = base
	c.Platform.MemoryBytes = 25 // cannot hold two task footprints (2x20)
	if _, err := sim.Run(inst, c); err == nil {
		t.Error("insufficient memory accepted")
	}
}

func TestTraceRecording(t *testing.T) {
	inst := chain(3)
	res, err := sim.Run(inst, sim.Config{
		Platform:    tinyPlatform(1, 1000),
		Scheduler:   &listSched{queues: [][]taskgraph.TaskID{{0, 1, 2}}},
		Eviction:    memory.NewLRU(),
		RecordTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	starts, ends, loads := 0, 0, 0
	for _, e := range res.Trace {
		switch e.Kind {
		case sim.TraceStart:
			starts++
		case sim.TraceEnd:
			ends++
		case sim.TraceLoad:
			loads++
		}
		if e.String() == "" {
			t.Fatal("empty trace formatting")
		}
	}
	if starts != 3 || ends != 3 || loads != 4 {
		t.Fatalf("trace counts: %d starts, %d ends, %d loads", starts, ends, loads)
	}
	// Without RecordTrace the trace is dropped.
	res, err = sim.Run(inst, sim.Config{
		Platform:  tinyPlatform(1, 1000),
		Scheduler: &listSched{queues: [][]taskgraph.TaskID{{0, 1, 2}}},
		Eviction:  memory.NewLRU(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Fatal("trace kept without RecordTrace")
	}
}

func TestResultAccounting(t *testing.T) {
	inst := chain(5)
	res, err := sim.Run(inst, sim.Config{
		Platform:  tinyPlatform(1, 1000),
		Scheduler: &listSched{queues: [][]taskgraph.TaskID{{0, 1, 2, 3, 4}}},
		Eviction:  memory.NewLRU(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalFlops != 5e9 {
		t.Errorf("total flops = %g", res.TotalFlops)
	}
	if res.BytesTransferred != 60 { // 6 data items of 10 bytes
		t.Errorf("bytes = %d", res.BytesTransferred)
	}
	if res.GPU[0].Tasks != 5 {
		t.Errorf("gpu tasks = %d", res.GPU[0].Tasks)
	}
	if res.GPU[0].BusyTime != 5*time.Second {
		t.Errorf("busy = %v", res.GPU[0].BusyTime)
	}
	wantGF := 5.0 / res.Makespan.Seconds()
	if diff := res.GFlops - wantGF; diff < -0.01 || diff > 0.01 {
		t.Errorf("gflops = %g, want %g", res.GFlops, wantGF)
	}
	if !strings.Contains(res.String(), "chain") {
		t.Errorf("String() = %q", res.String())
	}
}

func TestEvictedInputOfBufferedTaskIsReloaded(t *testing.T) {
	// The LRU pathology: a window task's prefetched input can be
	// evicted before the task runs; the runtime must re-fetch it when
	// the task reaches the head (ensureHeadFetches).
	b := taskgraph.NewBuilder("refetch")
	var ds []taskgraph.DataID
	for i := 0; i < 6; i++ {
		ds = append(ds, b.AddData("d", 10))
	}
	// Tasks alternate over 6 data with memory for only 3: plenty of
	// churn with a window of 4.
	order := []int{0, 1, 2, 3, 4, 5, 0, 1, 2, 3, 4, 5}
	var q []taskgraph.TaskID
	for _, d := range order {
		q = append(q, b.AddTask("t", 1e8, ds[d]))
	}
	inst := b.Build()
	res, err := sim.Run(inst, sim.Config{
		Platform:        tinyPlatform(1, 30),
		Scheduler:       &listSched{queues: [][]taskgraph.TaskID{q}},
		Eviction:        memory.NewFIFO(),
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Loads <= 6 {
		t.Fatalf("loads = %d, expected reloads under churn", res.Loads)
	}
}
