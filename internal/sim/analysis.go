package sim

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"memsched/internal/platform"
	"memsched/internal/taskgraph"
)

// Analysis summarizes a recorded trace: how well transfers overlapped
// computation, how loaded the shared bus was, and how idle each GPU sat.
// The paper repeatedly argues through this lens (e.g. §V-C d: DARTS+LUF
// sometimes moves more bytes than DMDAR yet wins because "the overlap
// between calculations and transfers is effective").
type Analysis struct {
	// Makespan is the trace duration.
	Makespan time.Duration
	// BusBusy is the total time the shared host bus was transferring.
	BusBusy time.Duration
	// BusUtilization is BusBusy / Makespan.
	BusUtilization float64
	// GPUBusy is the per-GPU total kernel time.
	GPUBusy []time.Duration
	// GPUIdle is the per-GPU idle time (makespan minus busy).
	GPUIdle []time.Duration
	// OverlappedTransfer is the bus-busy time during which at least one
	// GPU was computing: transfer cost actually hidden by computation.
	OverlappedTransfer time.Duration
	// ExposedTransfer is bus-busy time with every GPU idle: transfer
	// cost paid on the critical path.
	ExposedTransfer time.Duration
	// InputBytesServed is the total input footprint of all executed
	// tasks (bytes of data read, counting re-reads of resident data).
	InputBytesServed int64
	// ReuseFactor is InputBytesServed divided by the bytes actually
	// moved: how many task reads each transferred byte served. The
	// whole point of the paper's schedulers is to push it up.
	ReuseFactor float64
	// Telemetry carries the engine-computed idle attribution, occupancy
	// and reload counters when the run had Config.Telemetry set; nil
	// otherwise. Unlike GPUIdle (a single makespan-minus-busy number per
	// GPU) it explains *why* each GPU idled.
	Telemetry *Telemetry
}

// Analyze computes an Analysis from a result with a recorded trace.
func Analyze(inst *taskgraph.Instance, plat platform.Platform, res *Result) (*Analysis, error) {
	if len(res.Trace) == 0 {
		return nil, fmt.Errorf("sim: Analyze requires a recorded trace")
	}
	a := &Analysis{
		Makespan:  res.Makespan,
		GPUBusy:   make([]time.Duration, plat.NumGPUs),
		GPUIdle:   make([]time.Duration, plat.NumGPUs),
		Telemetry: res.Telemetry,
	}
	type span struct{ from, to time.Duration }
	var busSpans, computeSpans []span

	// Reconstruct compute spans from START/END pairs and transfer spans
	// by walking loads backwards (a host load at time t occupied the bus
	// for TransferDuration(size) ending at t).
	running := make(map[int]time.Duration, plat.NumGPUs)
	for _, ev := range res.Trace {
		switch ev.Kind {
		case TraceStart:
			running[ev.GPU] = ev.At
		case TraceEnd:
			from := running[ev.GPU]
			computeSpans = append(computeSpans, span{from, ev.At})
			a.GPUBusy[ev.GPU] += ev.At - from
		case TraceLoad:
			dur := plat.TransferDuration(inst.Data(ev.Data).Size)
			busSpans = append(busSpans, span{ev.At - dur, ev.At})
			a.BusBusy += dur
		}
	}
	for k := range a.GPUIdle {
		a.GPUIdle[k] = res.Makespan - a.GPUBusy[k]
	}
	if res.Makespan > 0 {
		a.BusUtilization = a.BusBusy.Seconds() / res.Makespan.Seconds()
	}
	for _, ev := range res.Trace {
		if ev.Kind == TraceStart {
			a.InputBytesServed += inst.TaskFootprint(ev.Task)
		}
	}
	if moved := res.BytesTransferred + res.PeerBytesTransferred; moved > 0 {
		a.ReuseFactor = float64(a.InputBytesServed) / float64(moved)
	}

	// Sweep the merged span boundaries to split bus time into overlapped
	// (some GPU computing) and exposed segments.
	type edge struct {
		at      time.Duration
		compute int // +1/-1
		bus     int
	}
	edges := make([]edge, 0, 2*(len(busSpans)+len(computeSpans)))
	for _, s := range computeSpans {
		edges = append(edges, edge{at: s.from, compute: 1}, edge{at: s.to, compute: -1})
	}
	for _, s := range busSpans {
		edges = append(edges, edge{at: s.from, bus: 1}, edge{at: s.to, bus: -1})
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].at < edges[j].at })
	var computing, busing int
	var last time.Duration
	for _, e := range edges {
		if busing > 0 {
			seg := e.at - last
			if computing > 0 {
				a.OverlappedTransfer += seg
			} else {
				a.ExposedTransfer += seg
			}
		}
		last = e.at
		computing += e.compute
		busing += e.bus
	}
	return a, nil
}

// String renders the analysis as a short report.
func (a *Analysis) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "makespan %v, bus busy %v (%.0f%%), transfers overlapped %v / exposed %v, reuse factor %.1f\n",
		a.Makespan, a.BusBusy, 100*a.BusUtilization, a.OverlappedTransfer, a.ExposedTransfer, a.ReuseFactor)
	for k := range a.GPUBusy {
		fmt.Fprintf(&b, "gpu %d: busy %v, idle %v", k, a.GPUBusy[k], a.GPUIdle[k])
		if a.Telemetry != nil && k < len(a.Telemetry.GPU) {
			g := a.Telemetry.GPU[k]
			fmt.Fprintf(&b, " (starved %v, bus %v, peer %v, done %v",
				g.StarvedNoTask, g.BlockedOnBus, g.BlockedOnPeer, g.Done)
			if g.Dead > 0 {
				fmt.Fprintf(&b, ", dead %v", g.Dead)
			}
			b.WriteByte(')')
		}
		b.WriteByte('\n')
	}
	if a.Telemetry != nil && a.Telemetry.Reloads > 0 {
		fmt.Fprintf(&b, "%d reloads of previously evicted data (%.1f MB)\n",
			a.Telemetry.Reloads, float64(a.Telemetry.ReloadedBytes)/platform.MB)
	}
	return b.String()
}

// Timeline renders a coarse text Gantt chart of the trace: one row per
// GPU ('#' while computing) plus one for the shared bus ('=' while
// transferring), over width columns.
func Timeline(inst *taskgraph.Instance, plat platform.Platform, res *Result, width int) string {
	if len(res.Trace) == 0 || width <= 0 || res.Makespan <= 0 {
		return ""
	}
	col := func(at time.Duration) int {
		c := int(int64(at) * int64(width) / int64(res.Makespan))
		if c >= width {
			c = width - 1
		}
		if c < 0 {
			c = 0
		}
		return c
	}
	rows := make([][]byte, plat.NumGPUs+1)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(".", width))
	}
	running := make(map[int]time.Duration, plat.NumGPUs)
	for _, ev := range res.Trace {
		switch ev.Kind {
		case TraceStart:
			running[ev.GPU] = ev.At
		case TraceEnd:
			for c := col(running[ev.GPU]); c <= col(ev.At); c++ {
				rows[ev.GPU][c] = '#'
			}
		case TraceLoad:
			dur := plat.TransferDuration(inst.Data(ev.Data).Size)
			for c := col(ev.At - dur); c <= col(ev.At); c++ {
				rows[plat.NumGPUs][c] = '='
			}
		}
	}
	var b strings.Builder
	for k := 0; k < plat.NumGPUs; k++ {
		fmt.Fprintf(&b, "gpu%d |%s|\n", k, rows[k])
	}
	fmt.Fprintf(&b, "bus  |%s|\n", rows[plat.NumGPUs])
	return b.String()
}
