package sim_test

import (
	"reflect"
	"testing"

	"memsched/internal/memory"
	"memsched/internal/sim"
	"memsched/internal/taskgraph"
)

// TestProbeMatchesTrace pins the streaming contract: a probe observes the
// exact event sequence a retained trace records, in the same run.
func TestProbeMatchesTrace(t *testing.T) {
	inst := chain(6)
	var streamed []sim.TraceEvent
	res, err := sim.Run(inst, sim.Config{
		Platform:    tinyPlatform(2, 60),
		Scheduler:   &listSched{queues: [][]taskgraph.TaskID{{0, 1, 2}, {3, 4, 5}}},
		Eviction:    memory.NewLRU(),
		RecordTrace: true,
		Probe: sim.ProbeFunc(func(ev sim.TraceEvent) {
			streamed = append(streamed, ev)
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) == 0 {
		t.Fatal("probe saw no events")
	}
	if !reflect.DeepEqual(streamed, res.Trace) {
		t.Fatalf("probe stream diverges from retained trace: %d streamed vs %d recorded",
			len(streamed), len(res.Trace))
	}
}

// TestProbeWithoutRetention checks a probe works with RecordTrace off —
// the zero-retention mode — and that MultiProbe fans out to all members.
func TestProbeWithoutRetention(t *testing.T) {
	inst := chain(4)
	starts, total := 0, 0
	res, err := sim.Run(inst, sim.Config{
		Platform:  tinyPlatform(1, 1000),
		Scheduler: &listSched{queues: [][]taskgraph.TaskID{{0, 1, 2, 3}}},
		Eviction:  memory.NewLRU(),
		Probe: sim.MultiProbe{
			sim.ProbeFunc(func(ev sim.TraceEvent) {
				if ev.Kind == sim.TraceStart {
					starts++
				}
			}),
			sim.ProbeFunc(func(ev sim.TraceEvent) { total++ }),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Fatal("trace retained without RecordTrace")
	}
	if starts != 4 {
		t.Errorf("probe counted %d starts, want 4", starts)
	}
	if total <= starts {
		t.Errorf("second probe saw %d events", total)
	}
}
