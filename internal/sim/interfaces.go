// Package sim is a deterministic discrete-event simulator of the multi-GPU
// platform of the paper: K GPUs with bounded private memories connected to
// host memory through a single shared PCI bus (Figure 2), driven by a
// StarPU-like runtime with per-GPU task windows, data prefetching and a
// pluggable eviction policy.
//
// The simulator substitutes for the paper's Tesla V100 testbed and for its
// StarPU-over-SimGrid simulations (see DESIGN.md §2): it reproduces the
// mechanics every scheduling strategy of the paper interacts with — task
// mapping, task ordering, data loads, evictions, transfer/computation
// overlap and bus contention — with a virtual int64-nanosecond clock.
package sim

import (
	"math/rand"
	"time"

	"memsched/internal/platform"
	"memsched/internal/taskgraph"
)

// Scheduler decides which task each GPU processes next. Implementations
// live in internal/sched. PopTask is pull-based, as in StarPU: the runtime
// calls it whenever a GPU has room in its task window.
//
// All methods are invoked from the single simulation goroutine; no
// synchronization is required.
type Scheduler interface {
	// Name identifies the strategy ("EAGER", "DMDAR", "DARTS+LUF", ...).
	Name() string

	// Init is called once before the simulation starts. Static phases
	// (hypergraph partitioning, HFP packing, DMDA allocation) run here
	// and may charge their cost through RuntimeView.ChargeStatic.
	Init(inst *taskgraph.Instance, view RuntimeView)

	// PopTask returns the next task GPU gpu should prefetch and execute,
	// or ok=false if the scheduler currently has no task for this GPU.
	// A scheduler that returned ok=false is polled again after every
	// subsequent simulation event, so strategies whose task supply can
	// be replenished (task stealing, DARTS planned-task revocation)
	// need no explicit wake-up.
	PopTask(gpu int) (t taskgraph.TaskID, ok bool)

	// TaskDone notifies that a previously popped task finished on gpu.
	TaskDone(gpu int, t taskgraph.TaskID)

	// DataLoaded notifies that data d became resident on gpu.
	DataLoaded(gpu int, d taskgraph.DataID)

	// DataEvicted notifies that data d was evicted from gpu.
	DataEvicted(gpu int, d taskgraph.DataID)
}

// DropoutHandler is the optional recovery hook of a Scheduler. When a
// fault plan drops a GPU, the engine first invalidates the lost replicas
// (each reported through DataEvicted) and then calls GPUDropped with the
// tasks that GPU had popped but not completed: the killed running task
// (if any) followed by the window tasks in pop order. The scheduler must
// make these tasks poppable again by surviving GPUs; RuntimeView.Alive
// reports which GPUs those are. A scheduler without this hook strands
// the tasks and the run fails with a stall diagnostic.
type DropoutHandler interface {
	GPUDropped(gpu int, requeue []taskgraph.TaskID)
}

// EvictionPolicy chooses which resident data to evict when a GPU memory is
// full. The runtime guarantees that candidates is non-empty, sorted by
// DataID, and contains only unpinned resident data (data used by the
// running task, by the head task of the window, or currently in transfer
// is never offered for eviction).
type EvictionPolicy interface {
	// Name identifies the policy ("LRU", "LUF", ...).
	Name() string

	// Init is called once before the simulation starts.
	Init(inst *taskgraph.Instance, view RuntimeView)

	// Loaded notifies that d became resident on gpu.
	Loaded(gpu int, d taskgraph.DataID)

	// Used notifies that a task starting on gpu reads d.
	Used(gpu int, d taskgraph.DataID)

	// Victim returns the candidate to evict. The returned id must be an
	// element of candidates.
	Victim(gpu int, candidates []taskgraph.DataID) taskgraph.DataID

	// Evicted notifies that d was evicted from gpu.
	Evicted(gpu int, d taskgraph.DataID)
}

// RuntimeView is the read-mostly interface the runtime exposes to
// schedulers and eviction policies. It mirrors the information a StarPU
// scheduling policy can query at runtime.
type RuntimeView interface {
	// Instance returns the problem instance being executed.
	Instance() *taskgraph.Instance

	// Platform returns the simulated machine description.
	Platform() platform.Platform

	// Now returns the current simulated time.
	Now() time.Duration

	// Alive reports whether gpu has not suffered a permanent dropout.
	// Always true on fault-free runs. Schedulers must not route tasks to
	// a dead GPU; its PopTask is never called again.
	Alive(gpu int) bool

	// Resident reports whether d is in the memory of gpu.
	Resident(gpu int, d taskgraph.DataID) bool

	// Arriving reports whether a transfer of d towards gpu is queued or
	// in flight on the bus.
	Arriving(gpu int, d taskgraph.DataID) bool

	// Available reports Resident || Arriving: the data needs no new
	// transfer for gpu.
	Available(gpu int, d taskgraph.DataID) bool

	// MissingInputs returns how many inputs of t are not Available on
	// gpu, i.e. how many new transfers running t there would require.
	MissingInputs(gpu int, t taskgraph.TaskID) int

	// InFlightTasks returns the tasks popped for gpu and not yet
	// completed (the running task first, then the window in pop order).
	// This is the paper's taskBuffer. The returned slice is owned by the
	// caller.
	InFlightTasks(gpu int) []taskgraph.TaskID

	// Rand returns the deterministic random source of this simulation,
	// used for the tie-breaking the paper's heuristics require.
	Rand() *rand.Rand

	// Charge adds ops abstract scheduler operations to the cost of the
	// scheduling decision in progress. During PopTask(gpu) the cost
	// delays the earliest start time of the popped task on that GPU;
	// outside PopTask it is accounted as static cost. With a zero
	// Config.NsPerOp charges are recorded but add no delay.
	Charge(ops int64)

	// ChargeStatic adds ops abstract operations to the one-time cost
	// paid before any task may start (partitioning and packing phases).
	ChargeStatic(ops int64)
}
