package sim

import (
	"memsched/internal/taskgraph"
)

// eventQueue is the engine's pending-event min-heap, specialized to avoid
// the interface boxing of container/heap (whose Push(any)/Pop() any
// allocate on every event). It is a 4-ary implicit heap: children of slot
// i live at 4i+1..4i+4, so the tree is half as deep as a binary heap and
// sift-down touches one cache line of siblings per level.
//
// The ordering key is (at, seq). seq is unique per event (the engine's
// monotone post counter), so the key order is total: any correct min-heap
// pops the exact same global sequence, which is why swapping the heap
// shape cannot change simulation results (see DESIGN.md).
type eventQueue struct {
	a []event
}

func (e event) before(o event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

func (q *eventQueue) len() int { return len(q.a) }

// push inserts ev, sifting it up toward the root.
func (q *eventQueue) push(ev event) {
	a := append(q.a, ev)
	i := len(a) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !a[i].before(a[p]) {
			break
		}
		a[i], a[p] = a[p], a[i]
		i = p
	}
	q.a = a
}

// pop removes and returns the minimum event.
func (q *eventQueue) pop() event {
	a := q.a
	top := a[0]
	last := len(a) - 1
	a[0] = a[last]
	a = a[:last]
	q.a = a
	i := 0
	for {
		first := i<<2 + 1
		if first >= last {
			break
		}
		m := first
		end := first + 4
		if end > last {
			end = last
		}
		for c := first + 1; c < end; c++ {
			if a[c].before(a[m]) {
				m = c
			}
		}
		if !a[m].before(a[i]) {
			break
		}
		a[i], a[m] = a[m], a[i]
		i = m
	}
	return top
}

// reqQueue is a FIFO of transfer requests backed by a reusable slice.
// Dequeuing advances a head index instead of re-slicing (the a = a[1:]
// idiom leaks capacity at the front and forces periodic reallocation);
// the backing array is reclaimed whenever the queue drains, so a
// steady-state run enqueues with zero allocations.
type reqQueue struct {
	a    []fetchReq
	head int
}

func (q *reqQueue) len() int { return len(q.a) - q.head }

func (q *reqQueue) push(r fetchReq) {
	if q.head == len(q.a) {
		q.a = q.a[:0]
		q.head = 0
	}
	q.a = append(q.a, r)
}

func (q *reqQueue) pop() fetchReq {
	r := q.a[q.head]
	q.head++
	if q.head == len(q.a) {
		q.a = q.a[:0]
		q.head = 0
	}
	return r
}

func (q *reqQueue) reset() {
	q.a = q.a[:0]
	q.head = 0
}

// dropGPU removes every queued request destined to GPU k, preserving the
// order of the rest (dropout handling).
func (q *reqQueue) dropGPU(k int) {
	kept := q.a[:q.head]
	for _, req := range q.a[q.head:] {
		if req.gpu == k {
			continue
		}
		kept = append(kept, req)
	}
	q.a = kept
}

// insertID inserts d into the ascending-sorted id list s (no-op duplicates
// are the caller's responsibility; the engine only inserts on a
// false->true residency flip).
func insertID(s []taskgraph.DataID, d taskgraph.DataID) []taskgraph.DataID {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < d {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	s = append(s, 0)
	copy(s[lo+1:], s[lo:])
	s[lo] = d
	return s
}

// removeID removes d from the ascending-sorted id list s, preserving order.
func removeID(s []taskgraph.DataID, d taskgraph.DataID) []taskgraph.DataID {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < d {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s) && s[lo] == d {
		copy(s[lo:], s[lo+1:])
		s = s[:len(s)-1]
	}
	return s
}
