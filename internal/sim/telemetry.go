package sim

import (
	"fmt"
	"strings"
	"time"

	"memsched/internal/platform"
	"memsched/internal/taskgraph"
)

// IdleReason classifies why a GPU sat idle during one interval of a run.
// The engine attributes every idle nanosecond to exactly one reason, so
// the per-GPU breakdown sums to Makespan - BusyTime (CheckTrace verifies
// this when a trace is recorded).
type IdleReason uint8

const (
	// IdleStarved: the GPU was waiting on the scheduler — either PopTask
	// returned nothing while unassigned tasks remained, or the popped
	// task was gated by its charged scheduling cost (Config.NsPerOp).
	IdleStarved IdleReason = iota
	// IdleBlockedBus: the GPU had popped tasks whose inputs were queued
	// on or in flight over the shared host bus, or parked waiting for
	// memory to free (their transfer cannot even be enqueued).
	IdleBlockedBus
	// IdleBlockedPeer: the only transfers the GPU was waiting for were
	// in flight over NVLink peer channels.
	IdleBlockedPeer
	// IdleDone: the GPU had no popped tasks and no unassigned tasks
	// remained anywhere — it had finished its share of the run.
	IdleDone
	// IdleDead: the GPU suffered a permanent dropout (fault injection);
	// all idle time after the dropout lands here.
	IdleDead

	numIdleReasons = 5
)

// String returns the mnemonic of the reason.
func (r IdleReason) String() string {
	switch r {
	case IdleStarved:
		return "starved-no-task"
	case IdleBlockedBus:
		return "blocked-on-bus"
	case IdleBlockedPeer:
		return "blocked-on-peer"
	case IdleDone:
		return "done"
	case IdleDead:
		return "dead"
	}
	return "?"
}

// GPUTelemetry is the engine-computed observability record of one GPU.
type GPUTelemetry struct {
	// Idle attribution: every idle nanosecond lands in exactly one of
	// these four buckets (see IdleReason for the classification rules).
	StarvedNoTask time.Duration `json:"starved_no_task_ns"`
	BlockedOnBus  time.Duration `json:"blocked_on_bus_ns"`
	BlockedOnPeer time.Duration `json:"blocked_on_peer_ns"`
	Done          time.Duration `json:"done_ns"`
	// Dead is idle time after a permanent dropout (fault injection).
	// omitempty keeps fault-free telemetry JSON byte-identical to
	// pre-fault-injection output.
	Dead time.Duration `json:"dead_ns,omitempty"`
	// BusyTime mirrors GPUStats.BusyTime for self-contained JSON.
	BusyTime time.Duration `json:"busy_ns"`
	// OccupancyHighWater is the maximum resident bytes ever held.
	OccupancyHighWater int64 `json:"occupancy_high_water_bytes"`
	// Reloads counts loads of data this GPU had previously evicted: the
	// eviction-churn signal (each one is a transfer a better eviction
	// policy might have avoided). ReloadedBytes is their volume.
	Reloads       int   `json:"reloads"`
	ReloadedBytes int64 `json:"reloaded_bytes"`
}

// IdleTotal returns the sum of the idle buckets.
func (g GPUTelemetry) IdleTotal() time.Duration {
	return g.StarvedNoTask + g.BlockedOnBus + g.BlockedOnPeer + g.Done + g.Dead
}

// OccupancySample is one point of the memory-occupancy timeline.
type OccupancySample struct {
	At time.Duration `json:"at_ns"`
	// ResidentBytes holds the occupancy of every GPU at time At.
	ResidentBytes []int64 `json:"resident_bytes"`
}

// maxOccupancySamples bounds the occupancy timeline kept per run. When
// the limit is hit the sampler halves its resolution (keeps every other
// sample and doubles its stride), so memory stays O(1) in run length
// while the timeline keeps covering the whole run.
const maxOccupancySamples = 512

// Telemetry is the zero-retention observability summary of one run,
// attached to Result.Telemetry when Config.Telemetry is set. Unlike the
// retained trace it costs O(GPUs + samples) memory regardless of run
// length, and unlike Analyze it needs no recorded trace.
type Telemetry struct {
	// GPU holds the per-GPU idle attribution and occupancy records.
	GPU []GPUTelemetry `json:"gpu"`
	// BusBusy is the total time the shared host bus carried at least one
	// transfer (loads and write-backs, both bus models).
	BusBusy time.Duration `json:"bus_busy_ns"`
	// BusUtilization is BusBusy / Makespan.
	BusUtilization float64 `json:"bus_utilization"`
	// NVLinkBusy is the per-GPU time the inbound NVLink channel was
	// transferring (nil when the platform has no peer links).
	NVLinkBusy []time.Duration `json:"nvlink_busy_ns,omitempty"`
	// Occupancy is the decimated resident-bytes timeline.
	Occupancy []OccupancySample `json:"occupancy,omitempty"`
	// Reloads and ReloadedBytes aggregate the per-GPU reload counters.
	Reloads       int   `json:"reloads"`
	ReloadedBytes int64 `json:"reloaded_bytes"`
	// IdleTotal is the machine-wide idle time, Makespan*NumGPUs - ΣBusy.
	IdleTotal time.Duration `json:"idle_total_ns"`
}

// String renders a one-look summary of the telemetry.
func (t *Telemetry) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "bus busy %v (%.0f%%), %d reloads (%.1f MB)\n",
		t.BusBusy, 100*t.BusUtilization, t.Reloads, float64(t.ReloadedBytes)/platform.MB)
	for k, g := range t.GPU {
		fmt.Fprintf(&b, "gpu %d: busy %v, starved %v, blocked-on-bus %v, blocked-on-peer %v, done %v, high water %.1f MB, %d reloads",
			k, g.BusyTime, g.StarvedNoTask, g.BlockedOnBus, g.BlockedOnPeer, g.Done,
			float64(g.OccupancyHighWater)/platform.MB, g.Reloads)
		if g.Dead > 0 {
			fmt.Fprintf(&b, ", dead %v", g.Dead)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// telemetryState is the engine-side accumulator behind Result.Telemetry.
// It is nil when Config.Telemetry is off, so the hot loop pays a single
// nil check per hook.
type telemetryState struct {
	idle        [][numIdleReasons]time.Duration // per GPU, per reason
	reason      []IdleReason                    // classification in force per idle GPU
	lastAccrue  time.Duration
	evictedOnce [][]bool // per GPU, per data: evicted at least once
	reloads     []int
	reloadedB   []int64
	highWater   []int64
	busBusy     time.Duration
	fairSince   time.Duration // fair-share model: start of current busy span
	nvBusy      []time.Duration

	occSamples []OccupancySample
	// occSlab backs the per-sample ResidentBytes slices: samples carve
	// fixed-size chunks off it instead of allocating one slice each. The
	// slab chunks are retained by Result.Telemetry, so a fresh slab is
	// started per run (never pooled).
	occSlab   []int64
	occStride int
	occCount  int
}

// telemetryState returns the scratch-pooled telemetry accumulator, reset
// for a fresh run. The occupancy timeline and the NVLink counters are
// retained by the returned Result.Telemetry, so those start fresh; every
// other array is reused and cleared.
func (sc *Scratch) telemetryState(numGPUs, numData int) *telemetryState {
	t := sc.tel
	if t == nil {
		t = new(telemetryState)
		sc.tel = t
	}
	if cap(t.idle) < numGPUs {
		t.idle = make([][numIdleReasons]time.Duration, numGPUs)
	} else {
		t.idle = t.idle[:numGPUs]
		for k := range t.idle {
			t.idle[k] = [numIdleReasons]time.Duration{}
		}
	}
	t.reason = resizeReasons(t.reason, numGPUs)
	t.lastAccrue = 0
	if cap(t.evictedOnce) < numGPUs {
		t.evictedOnce = make([][]bool, numGPUs)
	} else {
		t.evictedOnce = t.evictedOnce[:numGPUs]
	}
	for k := range t.evictedOnce {
		t.evictedOnce[k] = resizeBools(t.evictedOnce[k], numData)
	}
	t.reloads = resizeInts(t.reloads, numGPUs)
	t.reloadedB = resizeInt64s(t.reloadedB, numGPUs)
	t.highWater = resizeInt64s(t.highWater, numGPUs)
	t.busBusy = 0
	t.fairSince = 0
	t.nvBusy = make([]time.Duration, numGPUs) // retained by Telemetry
	t.occSamples = nil                        // retained by Telemetry
	t.occSlab = nil
	t.occStride = 1
	t.occCount = 0
	return t
}

func resizeReasons(s []IdleReason, n int) []IdleReason {
	if cap(s) < n {
		return make([]IdleReason, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

func resizeInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

func resizeInt64s(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// telAccrue charges the interval [tel.lastAccrue, to) of every idle GPU
// to its current classification. It is called from the event loop just
// before the clock advances, so the classification stored by the last
// telReclassify is the one in force over the whole interval.
func (e *engine) telAccrue(to time.Duration) {
	tel := e.tel
	d := to - tel.lastAccrue
	if d <= 0 {
		return
	}
	tel.lastAccrue = to
	for k := range e.gpus {
		if e.gpus[k].running == taskgraph.NoTask {
			tel.idle[k][tel.reason[k]] += d
		}
	}
}

// telReclassify recomputes the idle classification of every idle GPU at
// the current engine fixpoint. Called after every pass().
func (e *engine) telReclassify() {
	for k := range e.gpus {
		if e.gpus[k].running == taskgraph.NoTask {
			e.tel.reason[k] = e.classifyIdle(k)
		}
	}
}

// classifyIdle attributes the idleness of GPU k at the current fixpoint.
// Precedence: a host-bus transfer pending for a popped task wins over a
// peer transfer; with popped tasks but nothing arriving, parked fetches
// (memory full) count as blocked-on-bus and a pure scheduler-cost gate
// as starved; with no popped tasks, the GPU is done once no unassigned
// task remains anywhere, starved otherwise.
func (e *engine) classifyIdle(k int) IdleReason {
	g := &e.gpus[k]
	if g.dead {
		return IdleDead
	}
	if len(g.buffer) > 0 || len(g.pendingFetch) > 0 {
		peer := false
		for i := range g.buffer {
			for _, d := range e.inst.Inputs(g.buffer[i].task) {
				if g.arriving[d] {
					if g.arrivingPeer[d] {
						peer = true
					} else {
						return IdleBlockedBus
					}
				}
			}
		}
		if peer {
			return IdleBlockedPeer
		}
		if len(g.pendingFetch) > 0 {
			return IdleBlockedBus
		}
		// Popped tasks, all inputs resident, nothing in flight: the
		// scheduler-cost gate (earliestStart) is holding the task.
		return IdleStarved
	}
	inflight := 0
	for j := range e.gpus {
		if e.gpus[j].running != taskgraph.NoTask {
			inflight++
		}
		inflight += len(e.gpus[j].buffer)
	}
	if e.completed+inflight >= e.inst.NumTasks() {
		return IdleDone
	}
	return IdleStarved
}

// telLoaded records an arrival (host or peer) on GPU k: occupancy high
// water and the reload counters.
func (e *engine) telLoaded(k int, d taskgraph.DataID) {
	tel := e.tel
	g := &e.gpus[k]
	if g.residentBytes > tel.highWater[k] {
		tel.highWater[k] = g.residentBytes
	}
	if tel.evictedOnce[k][d] {
		tel.reloads[k]++
		tel.reloadedB[k] += e.inst.Data(d).Size
	}
	e.telOccupancySample()
}

// telOccupancySample appends one occupancy point, decimating the series
// when it outgrows maxOccupancySamples.
func (e *engine) telOccupancySample() {
	tel := e.tel
	tel.occCount++
	if tel.occCount%tel.occStride != 0 {
		return
	}
	if len(tel.occSamples) >= maxOccupancySamples {
		kept := tel.occSamples[:0]
		for i := range tel.occSamples {
			if i%2 == 0 {
				kept = append(kept, tel.occSamples[i])
			}
		}
		tel.occSamples = kept
		tel.occStride *= 2
	}
	// Carve the sample's ResidentBytes off the slab instead of allocating
	// a slice per sample; full-capacity slicing keeps chunks independent.
	n := len(e.gpus)
	if cap(tel.occSlab)-len(tel.occSlab) < n {
		chunk := 256 * n
		tel.occSlab = make([]int64, 0, chunk)
	}
	start := len(tel.occSlab)
	tel.occSlab = tel.occSlab[: start+n : cap(tel.occSlab)]
	buf := tel.occSlab[start : start+n : start+n]
	for k := range e.gpus {
		buf[k] = e.gpus[k].residentBytes
	}
	tel.occSamples = append(tel.occSamples, OccupancySample{At: e.now, ResidentBytes: buf})
}

// telemetryResult folds the accumulator into the public Telemetry.
func (e *engine) telemetryResult() *Telemetry {
	tel := e.tel
	out := &Telemetry{
		GPU:       make([]GPUTelemetry, len(e.gpus)),
		BusBusy:   tel.busBusy,
		Occupancy: tel.occSamples,
	}
	if e.plat.HasNVLink() {
		out.NVLinkBusy = tel.nvBusy
	}
	for k := range e.gpus {
		g := GPUTelemetry{
			StarvedNoTask:      tel.idle[k][IdleStarved],
			BlockedOnBus:       tel.idle[k][IdleBlockedBus],
			BlockedOnPeer:      tel.idle[k][IdleBlockedPeer],
			Done:               tel.idle[k][IdleDone],
			Dead:               tel.idle[k][IdleDead],
			BusyTime:           e.gpus[k].stats.BusyTime,
			OccupancyHighWater: tel.highWater[k],
			Reloads:            tel.reloads[k],
			ReloadedBytes:      tel.reloadedB[k],
		}
		out.GPU[k] = g
		out.Reloads += g.Reloads
		out.ReloadedBytes += g.ReloadedBytes
		out.IdleTotal += g.IdleTotal()
	}
	if e.now > 0 {
		out.BusUtilization = tel.busBusy.Seconds() / e.now.Seconds()
	}
	return out
}
