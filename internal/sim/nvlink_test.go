package sim_test

import (
	"testing"
	"time"

	"memsched/internal/memory"
	"memsched/internal/platform"
	"memsched/internal/sched"
	"memsched/internal/sim"
	"memsched/internal/taskgraph"
	"memsched/internal/workload"
)

func nvPlatform(gpus int, mem int64) platform.Platform {
	p := tinyPlatform(gpus, mem)
	p.NVLinkBytesPerSecond = 1000 // 10x the host bus
	return p
}

func TestNVLinkUsedForPeerResidentData(t *testing.T) {
	// Two GPUs, one shared 10-byte item. GPU 0 loads it from the host;
	// GPU 1's copy must come over NVLink (0.01 s instead of 0.1 s) once
	// it is resident on GPU 0.
	b := taskgraph.NewBuilder("peer")
	d := b.AddData("d", 10)
	b.AddTask("t0", 1e9, d)
	b.AddTask("t1", 1e9, d)
	inst := b.Build()

	res, err := sim.Run(inst, sim.Config{
		Platform:        nvPlatform(2, 1000),
		Scheduler:       &listSched{queues: [][]taskgraph.TaskID{{0}, {1}}},
		Eviction:        memory.NewLRU(),
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	peer := res.GPU[0].PeerLoads + res.GPU[1].PeerLoads
	if peer != 1 {
		t.Fatalf("peer loads = %d, want 1", peer)
	}
	if res.PeerBytesTransferred != 10 {
		t.Fatalf("peer bytes = %d", res.PeerBytesTransferred)
	}
	// Host bus moved the data only once.
	if res.BytesTransferred != 10 {
		t.Fatalf("host bytes = %d, want 10", res.BytesTransferred)
	}
	// GPU 1: peer transfer at 0.1s..0.11s, compute 1s: done at 1.11s.
	if res.Makespan != 1110*time.Millisecond {
		t.Fatalf("makespan = %v, want 1.11s", res.Makespan)
	}
}

func TestNVLinkDisabledUsesHostBus(t *testing.T) {
	b := taskgraph.NewBuilder("nopeer")
	d := b.AddData("d", 10)
	b.AddTask("t0", 1e9, d)
	b.AddTask("t1", 1e9, d)
	inst := b.Build()

	res, err := sim.Run(inst, sim.Config{
		Platform:        tinyPlatform(2, 1000),
		Scheduler:       &listSched{queues: [][]taskgraph.TaskID{{0}, {1}}},
		Eviction:        memory.NewLRU(),
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PeerBytesTransferred != 0 {
		t.Fatalf("peer bytes = %d without NVLink", res.PeerBytesTransferred)
	}
	if res.BytesTransferred != 20 {
		t.Fatalf("host bytes = %d, want 20 (both copies from host)", res.BytesTransferred)
	}
}

func TestNVLinkRelievesSharedBus(t *testing.T) {
	// On the memory-constrained 2D product with 4 GPUs, many B columns
	// are resident on some GPU when another needs them: NVLink must
	// shift a good share of traffic off the host bus and not slow
	// anything down.
	inst := workload.Matmul2D(40)
	base := platform.V100(4)
	nv := platform.V100NVLink(4)

	run := func(p platform.Platform) *sim.Result {
		s, pol := sched.NewDARTSPair(sched.DARTSOptions{LUF: true})()
		var ev sim.EvictionPolicy = pol
		if ev == nil {
			ev = memory.NewLRU()
		}
		res, err := sim.Run(inst, sim.Config{
			Platform:        p,
			Scheduler:       s,
			Eviction:        ev,
			Seed:            1,
			CheckInvariants: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(base)
	linked := run(nv)
	if linked.PeerBytesTransferred == 0 {
		t.Fatal("NVLink unused on a sharing-heavy workload")
	}
	if linked.BytesTransferred >= plain.BytesTransferred {
		t.Fatalf("host traffic did not drop: %d vs %d", linked.BytesTransferred, plain.BytesTransferred)
	}
	if linked.Makespan > plain.Makespan*11/10 {
		t.Fatalf("NVLink slowed the run down: %v vs %v", linked.Makespan, plain.Makespan)
	}
}
