package sim_test

import (
	"reflect"
	"testing"
	"time"

	"memsched/internal/fault"
	"memsched/internal/memory"
	"memsched/internal/sim"
	"memsched/internal/taskgraph"
)

// seqQueues returns one queue per GPU, dealing tasks 0..m-1 round-robin.
func seqQueues(m, gpus int) [][]taskgraph.TaskID {
	qs := make([][]taskgraph.TaskID, gpus)
	for t := 0; t < m; t++ {
		qs[t%gpus] = append(qs[t%gpus], taskgraph.TaskID(t))
	}
	return qs
}

// TestEngineStepAllocs is the zero-alloc guard of the event core: with a
// warmed Scratch, a whole run must cost only its fixed per-run setup
// (engine, RNG, scheduler, policy Init, Result) — nothing proportional
// to the event count. The two instance sizes differ by hundreds of
// events; any per-event allocation on the hot path (heap pushes, queue
// growth, telemetry accrual, eviction candidate lists) fails the scaling
// check, and the absolute budget catches regressions in the setup path.
func TestEngineStepAllocs(t *testing.T) {
	sc := sim.NewScratch()
	measure := func(m int) float64 {
		inst := chain(m) // built outside: instance construction scales with m
		// Memory of 60 B against a 20 B per-task footprint forces
		// evictions, exercising the candidate-list path too.
		run := func() {
			_, err := sim.Run(inst, sim.Config{
				Platform:  tinyPlatform(1, 60),
				Scheduler: &listSched{queues: seqQueues(m, 1)},
				Eviction:  memory.NewLRU(),
				Telemetry: true,
				Scratch:   sc,
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		run() // warm the scratch to steady state
		return testing.AllocsPerRun(5, run)
	}
	small := measure(8)
	big := measure(64)
	if grow := big - small; grow > 8 {
		t.Errorf("allocs grew with event count: %v (m=8) -> %v (m=64), growth %v > 8",
			small, big, grow)
	}
	// Fixed per-run setup only: engine, RNG, scheduler, policy Init,
	// Result and telemetry summary. Nothing here scales with events.
	const budget = 120
	if big > budget {
		t.Errorf("run of chain(64) allocated %v times, budget %v", big, budget)
	}
}

// TestScratchReuseConformance pins the Scratch contract: recycling one
// Scratch through heterogeneous consecutive runs (different GPU counts,
// bus models, NVLink, eviction pressure, fault plans) yields results
// byte-identical to fresh-state runs, in both directions of the
// sequence.
func TestScratchReuseConformance(t *testing.T) {
	type cell struct {
		name string
		run  func(sc *sim.Scratch) *sim.Result
	}
	mk := func(name string, m, gpus int, mem int64, mut func(*sim.Config)) cell {
		return cell{name: name, run: func(sc *sim.Scratch) *sim.Result {
			cfg := sim.Config{
				Platform:    tinyPlatform(gpus, mem),
				Scheduler:   &listSched{queues: seqQueues(m, gpus)},
				Eviction:    memory.NewLRU(),
				Telemetry:   true,
				RecordTrace: true,
				Scratch:     sc,
			}
			if mut != nil {
				mut(&cfg)
			}
			res, err := sim.Run(chain(m), cfg)
			if err != nil {
				t.Fatal(err)
			}
			return res
		}}
	}
	cells := []cell{
		mk("evict-1gpu", 8, 1, 60, nil),
		mk("fifo-2gpu", 6, 2, 100, nil),
		mk("fair-share", 6, 2, 100, func(c *sim.Config) { c.BusModel = sim.BusFairShare }),
		mk("nvlink", 6, 2, 200, func(c *sim.Config) {
			p := c.Platform
			p.NVLinkBytesPerSecond = 200
			c.Platform = p
		}),
		mk("faulty", 8, 2, 100, func(c *sim.Config) {
			c.Scheduler = &requeueSched{listSched{queues: seqQueues(8, 2)}}
			c.Faults = &fault.Plan{
				Seed:      3,
				Dropouts:  []fault.Dropout{{GPU: 1, At: 1500 * time.Millisecond}},
				Transient: &fault.Transient{Rate: 0.3, MaxRetries: 4, Backoff: 10 * time.Millisecond},
				Pressures: []fault.Pressure{{GPU: 0, At: time.Second, Duration: 2 * time.Second, Bytes: 20}},
			}
		}),
	}
	want := make([]*sim.Result, len(cells))
	for i, c := range cells {
		want[i] = c.run(nil) // fresh state per run
	}
	sc := sim.NewScratch()
	for round := 0; round < 2; round++ {
		order := cells
		if round == 1 { // reversed: contamination in either direction
			order = make([]cell, len(cells))
			for i := range cells {
				order[len(cells)-1-i] = cells[i]
			}
		}
		for i, c := range order {
			wi := i
			if round == 1 {
				wi = len(cells) - 1 - i
			}
			if got := c.run(sc); !reflect.DeepEqual(got, want[wi]) {
				t.Errorf("round %d: %s with recycled Scratch differs from fresh run:\ngot  %+v\nwant %+v",
					round, c.name, got, want[wi])
			}
		}
	}
}

// TestScratchInUsePanics pins the single-run-at-a-time contract.
func TestScratchInUsePanics(t *testing.T) {
	sc := sim.NewScratch()
	probeStarted := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, err := sim.Run(chain(2), sim.Config{
			Platform:  tinyPlatform(1, 100),
			Scheduler: &listSched{queues: seqQueues(2, 1)},
			Eviction:  memory.NewLRU(),
			Scratch:   sc,
			Probe: sim.ProbeFunc(func(sim.TraceEvent) {
				select {
				case <-probeStarted: // already signalled
				default:
					close(probeStarted)
				}
				<-release
			}),
		})
		done <- err
	}()
	<-probeStarted
	func() {
		defer func() {
			if recover() == nil {
				t.Error("second Run on an in-use Scratch did not panic")
			}
			close(release)
		}()
		sim.Run(chain(2), sim.Config{
			Platform:  tinyPlatform(1, 100),
			Scheduler: &listSched{queues: seqQueues(2, 1)},
			Eviction:  memory.NewLRU(),
			Scratch:   sc,
		})
	}()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
