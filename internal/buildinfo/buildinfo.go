// Package buildinfo resolves the version identity of a memsched binary
// for -version flags and the memsched_build_info metric.
package buildinfo

import "runtime/debug"

// Version is the release stamp, injected at build time with
//
//	go build -ldflags "-X memsched/internal/buildinfo.Version=v1.2.3"
//
// Unstamped builds fall back to the module version (or VCS revision)
// recorded by the Go toolchain, and finally to "devel".
var Version = ""

// Resolve returns the effective version string and the Go toolchain
// version the binary was built with.
func Resolve() (version, goVersion string) {
	version, goVersion = Version, "unknown"
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		if version == "" {
			version = "devel"
		}
		return version, goVersion
	}
	goVersion = bi.GoVersion
	if version != "" {
		return version, goVersion
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		return v, goVersion
	}
	// Unversioned module: identify by VCS revision when embedded.
	var rev, dirty string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "-dirty"
			}
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		return "devel+" + rev + dirty, goVersion
	}
	return "devel", goVersion
}
