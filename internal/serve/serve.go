// Package serve is the resilient scheduling service behind cmd/memschedd:
// a bounded worker pool running simulation jobs with per-job deadlines,
// panic confinement, retry under capped exponential backoff with jitter
// for transient failures, a per-(workload, strategy) circuit breaker,
// load shedding once the queue fills, and a graceful drain that finishes
// in-flight jobs under a deadline while rejecting everything else.
//
// The package is the serving-stack shape of the fault-tolerance story
// the simulator itself gained with fault injection: the simulator
// recovers from faults *inside* a run, serve recovers from faults
// *around* runs.
package serve

import (
	"context"
	"errors"
	"expvar"
	"fmt"
	"log/slog"
	"math/rand"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"memsched/internal/critpath"
	"memsched/internal/metrics"
	"memsched/internal/obs"
	"memsched/internal/sim"
)

// Runner executes one job attempt. The default is the real simulator
// (runRequest); tests inject deterministic or failing runners to
// exercise the retry, breaker and drain machinery.
type Runner func(ctx context.Context, req JobRequest) (*sim.Result, error)

// Config tunes a Server. The zero value of every field selects the
// documented default.
type Config struct {
	// Workers is the worker-pool size (default GOMAXPROCS).
	Workers int
	// QueueCap bounds the number of queued (accepted, not yet running)
	// jobs; submissions beyond it are shed with 429 (default 64).
	QueueCap int
	// JobTimeout is the default per-job deadline (default 2m);
	// MaxJobTimeout caps per-request overrides (default 10m).
	JobTimeout    time.Duration
	MaxJobTimeout time.Duration
	// MaxRetries bounds the retry attempts after the first try of a job
	// whose failure is transient (default 3).
	MaxRetries int
	// BaseBackoff and MaxBackoff shape the retry delays: attempt i waits
	// uniformly in [d/2, d] with d = min(BaseBackoff<<i, MaxBackoff)
	// (defaults 100ms and 5s).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// BreakerThreshold is the number of consecutive permanent failures
	// of one (workload, strategy) key that opens its circuit breaker
	// (default 5; negative disables the breaker). BreakerCooldown is how
	// long the breaker stays open before admitting a probe (default 30s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// RetryAfterHint is the Retry-After value returned with 429 queue
	// sheds (default 1s).
	RetryAfterHint time.Duration
	// MaxN and MaxGPUs are the admission bounds on workload size and GPU
	// count (defaults 300 and 8).
	MaxN    int
	MaxGPUs int
	// Gauges receives the live simulation counters (nil allocates a
	// private instance; pass one to publish it on expvar).
	Gauges *metrics.Gauges
	// Runner overrides the job executor (nil runs the real simulator).
	Runner Runner

	// Logger receives structured job-lifecycle logs with trace-ID
	// correlation (nil discards; per-job accept/finish lines log at
	// Debug, retries and sheds at Info/Warn).
	Logger *slog.Logger
	// TraceSpanCap and TraceEventCap bound the flight-recorder rings:
	// the last TraceSpanCap lifecycle spans and TraceEventCap
	// shed/breaker/retry events are retained (defaults 4096 and 1024;
	// negative disables that ring).
	TraceSpanCap  int
	TraceEventCap int
	// TraceSample records the lifecycle spans of every TraceSample-th
	// submission (default 1: every job; negative disables lifecycle
	// tracing — service events and histograms are always recorded).
	TraceSample int

	// now is the clock seam: tests inject a fake clock to make queue
	// waits, runtimes and breaker cooldowns deterministic (nil uses
	// time.Now).
	now func() time.Time
}

func (c *Config) applyDefaults() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 2 * time.Minute
	}
	if c.MaxJobTimeout <= 0 {
		c.MaxJobTimeout = 10 * time.Minute
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	} else if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 100 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 5 * time.Second
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 30 * time.Second
	}
	if c.RetryAfterHint <= 0 {
		c.RetryAfterHint = time.Second
	}
	if c.MaxN <= 0 {
		c.MaxN = 300
	}
	if c.MaxGPUs <= 0 {
		c.MaxGPUs = 8
	}
	if c.Gauges == nil {
		c.Gauges = new(metrics.Gauges)
	}
	if c.Runner == nil {
		c.Runner = runRequest
	}
	if c.Logger == nil {
		c.Logger = obs.NopLogger()
	}
	switch {
	case c.TraceSpanCap < 0:
		c.TraceSpanCap = 0
	case c.TraceSpanCap == 0:
		c.TraceSpanCap = 4096
	}
	switch {
	case c.TraceEventCap < 0:
		c.TraceEventCap = 0
	case c.TraceEventCap == 0:
		c.TraceEventCap = 1024
	}
	switch {
	case c.TraceSample < 0:
		c.TraceSample = 0
	case c.TraceSample == 0:
		c.TraceSample = 1
	}
	if c.now == nil {
		c.now = time.Now
	}
}

// RejectError is a submission the server refused: admission-control
// failures, shed load, an open breaker, or a drain in progress. Status
// is the HTTP status the rejection maps to; RetryAfter, when positive,
// tells the client when trying again is worthwhile.
type RejectError struct {
	Status     int
	RetryAfter time.Duration
	Reason     string
}

// Error returns the rejection reason.
func (e *RejectError) Error() string { return e.Reason }

// ErrDraining is wrapped by drain rejections so callers can test for
// them with errors.Is.
var ErrDraining = errors.New("server draining")

// ErrUnknownJob is returned by Job and Cancel for ids never submitted.
var ErrUnknownJob = errors.New("unknown job id")

// Server is the scheduling service: a bounded queue feeding a worker
// pool, plus the job table the HTTP API reads. Create with New, stop
// with Drain.
type Server struct {
	cfg     Config
	breaker *Breaker
	bo      Backoff

	// Observability. The tracer and histograms are self-synchronized
	// (rings and atomics) and are never touched under s.mu by exporters:
	// /metrics and /debug/* snapshot first, format after.
	tracer *obs.Tracer
	log    *slog.Logger
	// Latency histograms: queue wait (admit -> first attempt), per-
	// attempt runtime, and end-to-end sojourn (admit -> terminal, done
	// and failed jobs only) — each overall and per (workload|strategy).
	queueWait, attemptDur, sojourn          obs.Histogram
	queueWaitKey, attemptDurKey, sojournKey obs.HistVec

	baseCtx context.Context
	cancel  context.CancelFunc
	drainCh chan struct{}

	mu       sync.Mutex
	queue    chan *job
	jobs     map[string]*job
	order    []string // submission order, for List
	draining bool
	seq      int64
	rng      *rand.Rand
	started  time.Time

	wg sync.WaitGroup

	// Lifecycle counters. expvar.Int is used as a plain atomic here —
	// like metrics.Gauges, nothing registers on the global expvar
	// registry unless the embedder explicitly publishes.
	ctrSubmitted        expvar.Int
	ctrDone             expvar.Int
	ctrFailed           expvar.Int
	ctrRetried          expvar.Int
	ctrCanceled         expvar.Int
	ctrPanics           expvar.Int
	ctrRejectedInvalid  expvar.Int
	ctrRejectedFull     expvar.Int
	ctrRejectedBreaker  expvar.Int
	ctrRejectedDraining expvar.Int
}

// New creates a Server and starts its worker pool.
func New(cfg Config) *Server {
	cfg.applyDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		breaker: NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, cfg.now),
		bo:      Backoff{Base: cfg.BaseBackoff, Max: cfg.MaxBackoff},
		tracer:  obs.NewTracer(cfg.TraceSpanCap, cfg.TraceEventCap, cfg.TraceSample),
		log:     cfg.Logger,
		baseCtx: ctx,
		cancel:  cancel,
		drainCh: make(chan struct{}),
		queue:   make(chan *job, cfg.QueueCap),
		jobs:    make(map[string]*job),
		rng:     rand.New(rand.NewSource(time.Now().UnixNano())),
		started: cfg.now(),
	}
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for j := range s.queue {
				s.runJob(j)
			}
		}()
	}
	return s
}

// Submit validates and enqueues a job. Rejections are *RejectError:
// 400 for admission-control failures, 429 (+Retry-After) when the queue
// is full, 503 when the job's circuit breaker is open or the server is
// draining.
func (s *Server) Submit(req JobRequest) (JobStatus, error) {
	return s.SubmitTraced(req, 0)
}

// SubmitTraced is Submit continuing an externally-propagated trace ID
// (the fleet router forwards its own, so a job's spans and log lines
// correlate across router and replica). A zero extTrace allocates a
// fresh ID, exactly like Submit.
func (s *Server) SubmitTraced(req JobRequest, extTrace uint64) (JobStatus, error) {
	req.Normalize()
	// Every submission gets a trace ID — including rejected ones, whose
	// rejection lands in the flight recorder's event ring. The key is
	// computed once and shared by the breaker, the spans and the job.
	trace, sampled := s.tracer.Adopt(extTrace)
	key := req.Key()
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.ctrRejectedDraining.Add(1)
		s.reject(obs.KindDrainReject, trace, key, now, "server draining")
		return JobStatus{}, &RejectError{Status: 503, Reason: "server draining; not accepting jobs"}
	}
	if err := req.validate(s.cfg); err != nil {
		s.ctrRejectedInvalid.Add(1)
		s.reject(obs.KindInvalid, trace, key, now, err.Error())
		return JobStatus{}, &RejectError{Status: 400, Reason: err.Error()}
	}
	// Shed load before consulting the breaker, so a shed submission can
	// never consume a half-open probe slot. Every send happens under
	// s.mu and workers only drain, so a below-capacity length here
	// guarantees the buffered send below cannot block.
	if len(s.queue) >= s.cfg.QueueCap {
		s.ctrRejectedFull.Add(1)
		s.reject(obs.KindShed, trace, key, now, "queue full")
		return JobStatus{}, &RejectError{
			Status:     429,
			RetryAfter: s.cfg.RetryAfterHint,
			Reason:     fmt.Sprintf("queue full (%d jobs); retry later", s.cfg.QueueCap),
		}
	}
	if ok, retryAfter := s.breaker.Allow(key); !ok {
		s.ctrRejectedBreaker.Add(1)
		s.reject(obs.KindBreakerReject, trace, key, now, "breaker open")
		return JobStatus{}, &RejectError{
			Status:     503,
			RetryAfter: retryAfter,
			Reason:     fmt.Sprintf("circuit breaker open for %q (repeated failures); retry later", key),
		}
	}
	s.seq++
	j := &job{
		id:        fmt.Sprintf("job-%06d", s.seq),
		req:       req,
		key:       key,
		trace:     trace,
		sampled:   sampled,
		state:     JobQueued,
		submitted: now,
		done:      make(chan struct{}),
	}
	s.queue <- j
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.ctrSubmitted.Add(1)
	if sampled {
		s.tracer.Span(obs.Span{
			Trace: trace, Job: j.id, Key: key, Kind: obs.KindAdmit,
			Start: now.UnixNano(), End: now.UnixNano(),
		})
	}
	if s.log.Enabled(context.Background(), slog.LevelDebug) {
		s.log.LogAttrs(context.Background(), slog.LevelDebug, "job accepted",
			obs.TraceAttr(trace), slog.String("job", j.id), slog.String("key", key),
			slog.Int("queue_depth", len(s.queue)))
	}
	return j.status(), nil
}

// reject records one refused submission into the flight recorder's
// event ring and the structured log. Caller holds s.mu; the ring has
// its own lock and never calls back into the server.
func (s *Server) reject(kind obs.SpanKind, trace uint64, key string, now time.Time, note string) {
	s.tracer.Event(obs.Span{
		Trace: trace, Key: key, Kind: kind,
		Start: now.UnixNano(), End: now.UnixNano(), Note: note,
	})
	level := slog.LevelWarn
	if kind == obs.KindInvalid || kind == obs.KindDrainReject {
		level = slog.LevelDebug
	}
	if s.log.Enabled(context.Background(), level) {
		s.log.LogAttrs(context.Background(), level, "submission rejected",
			obs.TraceAttr(trace), slog.String("key", key),
			slog.String("kind", kind.String()), slog.String("reason", note))
	}
}

// Job returns the status snapshot of one job.
func (s *Server) Job(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, ErrUnknownJob
	}
	return j.status(), nil
}

// Wait blocks until the job reaches a terminal state or ctx is done,
// then returns its status.
func (s *Server) Wait(ctx context.Context, id string) (JobStatus, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, ErrUnknownJob
	}
	select {
	case <-j.done:
	case <-ctx.Done():
	}
	return s.Job(id)
}

// List returns every job in submission order.
func (s *Server) List() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].status())
	}
	return out
}

// Cancel requests cancellation of a job: a queued job is dropped before
// it starts, a running one has its context canceled (the simulation
// stops at the next engine poll). Terminal jobs are left untouched.
func (s *Server) Cancel(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, ErrUnknownJob
	}
	if j.state.Terminal() {
		return j.status(), nil
	}
	j.cancelRequested = true
	if j.state == JobQueued {
		s.finishLocked(j, JobCanceled, nil, "canceled before start")
	} else if j.cancel != nil {
		j.cancel()
	}
	return j.status(), nil
}

// Draining reports whether a drain has begun (readiness turns false).
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// ReadyStatus is the /readyz body. It carries enough state for a fleet
// health prober to tell "draining" (alive, finishing in-flight work,
// don't send new jobs) from "dead" (no response at all), and to see
// saturation coming before the queue sheds.
type ReadyStatus struct {
	// Status is "ready" or "draining".
	Status   string `json:"status"`
	Draining bool   `json:"draining"`
	// QueueDepth and QueueCap describe queue saturation.
	QueueDepth int `json:"queue_depth"`
	QueueCap   int `json:"queue_cap"`
	// BreakersOpen lists the (workload|strategy) keys currently shed by
	// an open or half-open circuit breaker.
	BreakersOpen []string `json:"breakers_open,omitempty"`
}

// Ready assembles the readiness snapshot served by /readyz.
func (s *Server) Ready() ReadyStatus {
	s.mu.Lock()
	depth := len(s.queue)
	draining := s.draining
	s.mu.Unlock()
	st := ReadyStatus{
		Status:       "ready",
		Draining:     draining,
		QueueDepth:   depth,
		QueueCap:     s.cfg.QueueCap,
		BreakersOpen: s.breaker.OpenKeys(),
	}
	sort.Strings(st.BreakersOpen)
	if draining {
		st.Status = "draining"
	}
	return st
}

// Drain gracefully shuts the server down: no new submissions are
// accepted, jobs still queued are rejected with a drain error, retry
// backoffs abort, and in-flight attempts run to completion. It returns
// nil if everything settled within timeout; otherwise it cancels the
// in-flight jobs and returns an error after they acknowledge.
func (s *Server) Drain(timeout time.Duration) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	close(s.drainCh) // aborts retry backoffs, flips /readyz
	close(s.queue)   // Submit never sends after draining is set (same mu)
	s.mu.Unlock()

	settled := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(settled)
	}()
	select {
	case <-settled:
		return nil
	case <-time.After(timeout):
		// Deadline: cancel whatever is still running and wait for the
		// workers to acknowledge — they always do, because cancellation
		// is polled by the engine.
		s.cancel()
		<-settled
		return fmt.Errorf("serve: drain deadline (%v) exceeded; in-flight jobs canceled", timeout)
	}
}

// runJob drives one job through its attempts.
func (s *Server) runJob(j *job) {
	s.mu.Lock()
	if j.state.Terminal() { // canceled while queued
		s.mu.Unlock()
		return
	}
	if s.draining {
		// Still in the queue when the drain began: reject, don't start.
		s.finishLocked(j, JobCanceled, nil, "rejected: server draining before job started")
		s.mu.Unlock()
		return
	}
	timeout := s.cfg.JobTimeout
	if j.req.TimeoutMS > 0 {
		timeout = time.Duration(j.req.TimeoutMS) * time.Millisecond
		if timeout > s.cfg.MaxJobTimeout {
			timeout = s.cfg.MaxJobTimeout
		}
	}
	ctx, cancel := context.WithTimeout(s.baseCtx, timeout)
	defer cancel()
	started := s.now()
	j.state = JobRunning
	j.started = started
	j.cancel = cancel
	s.mu.Unlock()

	// Queue wait: admit to first attempt.
	wait := started.Sub(j.submitted)
	s.queueWait.Observe(wait)
	s.queueWaitKey.Get(j.key).Observe(wait)
	if j.sampled {
		s.tracer.Span(obs.Span{
			Trace: j.trace, Job: j.id, Key: j.key, Kind: obs.KindQueue,
			Start: j.submitted.UnixNano(), End: started.UnixNano(),
		})
	}

	var res *sim.Result
	var err error
	for attempt := 0; ; attempt++ {
		s.mu.Lock()
		j.attempt = attempt + 1
		s.mu.Unlock()
		at0 := s.now()
		res, err = s.attempt(ctx, j.req)
		at1 := s.now()
		s.attemptDur.Observe(at1.Sub(at0))
		s.attemptDurKey.Get(j.key).Observe(at1.Sub(at0))
		if j.sampled {
			note := ""
			if err != nil {
				note = err.Error()
			}
			s.tracer.Span(obs.Span{
				Trace: j.trace, Job: j.id, Key: j.key, Kind: obs.KindAttempt,
				Attempt: int32(attempt + 1), Start: at0.UnixNano(), End: at1.UnixNano(), Note: note,
			})
		}
		if err == nil || !IsTransient(err) || attempt >= s.cfg.MaxRetries || ctx.Err() != nil {
			break
		}
		s.ctrRetried.Add(1)
		s.mu.Lock()
		delay := s.bo.Delay(attempt, s.rng)
		s.mu.Unlock()
		s.tracer.Event(obs.Span{
			Trace: j.trace, Job: j.id, Key: j.key, Kind: obs.KindRetry,
			Attempt: int32(attempt + 1), Start: at1.UnixNano(), End: at1.UnixNano(),
			Note: err.Error(),
		})
		if s.log.Enabled(ctx, slog.LevelInfo) {
			s.log.LogAttrs(ctx, slog.LevelInfo, "retrying transient failure",
				obs.TraceAttr(j.trace), slog.String("job", j.id), slog.String("key", j.key),
				slog.Int("attempt", attempt+1), slog.Duration("backoff", delay),
				slog.String("error", err.Error()))
		}
		slept := s.sleepBackoff(ctx, delay)
		if j.sampled {
			bEnd := s.now()
			s.tracer.Span(obs.Span{
				Trace: j.trace, Job: j.id, Key: j.key, Kind: obs.KindBackoff,
				Attempt: int32(attempt + 1), Start: at1.UnixNano(), End: bEnd.UnixNano(),
			})
		}
		if !slept {
			// Drain or cancellation interrupted the backoff; fail with
			// the last attempt's error.
			break
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case err == nil:
		jr := &JobResult{Row: metrics.FromResult("serve", res), Faults: res.Faults}
		if j.req.CritPath && len(res.Trace) > 0 {
			// Attribution runs on the worker after the simulation: rebuild
			// the instance (cheap next to the run itself), walk the trace,
			// and keep only the compact summary. A walk failure degrades
			// the job to "no attribution" rather than failing it.
			if inst, ierr := buildInstance(j.req.Workload, j.req.N, j.req.Keep, j.req.Seed); ierr == nil {
				if p, perr := critpath.Analyze(inst, res); perr == nil {
					jr.CritPath = critpath.Summarize(inst, p)
				} else {
					s.log.LogAttrs(context.Background(), slog.LevelWarn, "critpath analysis failed",
						obs.TraceAttr(j.trace), slog.String("key", j.key), slog.String("error", perr.Error()))
				}
			}
			res.Trace = nil
		}
		s.finishLocked(j, JobDone, jr, "")
		s.breaker.OnSuccess(j.key)
	case j.cancelRequested || errors.Is(err, context.Canceled):
		// Client cancellation (or drain-deadline cancellation): not a
		// failure of the (workload, strategy) key, so the breaker is
		// untouched.
		s.finishLocked(j, JobCanceled, nil, err.Error())
	default:
		s.finishLocked(j, JobFailed, nil, err.Error())
		if s.breaker.OnFailure(j.key) {
			now := s.now().UnixNano()
			s.tracer.Event(obs.Span{
				Trace: j.trace, Job: j.id, Key: j.key, Kind: obs.KindBreakerTrip,
				Start: now, End: now, Note: err.Error(),
			})
			s.log.LogAttrs(context.Background(), slog.LevelWarn, "circuit breaker opened",
				obs.TraceAttr(j.trace), slog.String("key", j.key), slog.String("error", err.Error()))
		}
	}
}

// attempt runs one simulation attempt with panic confinement: a panic
// in a scheduler or workload builder costs this attempt (reported as a
// permanent error), never the worker.
func (s *Server) attempt(ctx context.Context, req JobRequest) (res *sim.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.ctrPanics.Add(1)
			err = fmt.Errorf("panic: %v\n%s", r, debug.Stack())
			res = nil
		}
	}()
	g := s.cfg.Gauges
	g.SimsRunning.Add(1)
	defer g.SimsRunning.Add(-1)
	res, err = s.cfg.Runner(ctx, req)
	if err == nil && res != nil {
		g.SimEvents.Add(res.Events)
	}
	return res, err
}

// sleepBackoff waits out a retry delay, aborting early (returning
// false) when the job's context or a drain cuts it short.
func (s *Server) sleepBackoff(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	case <-s.drainCh:
		return false
	}
}

// finishLocked moves a job to a terminal state. Caller holds s.mu.
func (s *Server) finishLocked(j *job, state JobState, result *JobResult, errMsg string) {
	if j.state.Terminal() {
		return
	}
	j.state = state
	j.result = result
	j.errMsg = errMsg
	j.finished = s.now()
	close(j.done)
	var kind obs.SpanKind
	switch state {
	case JobDone:
		s.ctrDone.Add(1)
		s.cfg.Gauges.CellsCompleted.Add(1)
		kind = obs.KindDone
	case JobFailed:
		s.ctrFailed.Add(1)
		kind = obs.KindFail
	case JobCanceled:
		s.ctrCanceled.Add(1)
		kind = obs.KindCancel
	}
	// End-to-end sojourn covers jobs that ran to a verdict; canceled
	// jobs would skew the SLO axis with client behavior.
	if state == JobDone || state == JobFailed {
		d := j.finished.Sub(j.submitted)
		s.sojourn.Observe(d)
		s.sojournKey.Get(j.key).Observe(d)
	}
	if j.sampled {
		s.tracer.Span(obs.Span{
			Trace: j.trace, Job: j.id, Key: j.key, Kind: kind,
			Attempt: int32(j.attempt), Start: j.finished.UnixNano(), End: j.finished.UnixNano(),
			Note: errMsg,
		})
	}
	if s.log.Enabled(context.Background(), slog.LevelDebug) {
		s.log.LogAttrs(context.Background(), slog.LevelDebug, "job finished",
			obs.TraceAttr(j.trace), slog.String("job", j.id), slog.String("key", j.key),
			slog.String("state", string(state)), slog.Int("attempts", j.attempt),
			slog.Duration("sojourn", j.finished.Sub(j.submitted)), slog.String("error", errMsg))
	}
}

// now returns the server clock (time.Now unless a test injected a fake).
func (s *Server) now() time.Time { return s.cfg.now() }

// Metrics is the /metrics snapshot: live gauges, lifecycle counters and
// the load-shedding/breaker counters.
type Metrics struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Draining      bool    `json:"draining"`
	Workers       int     `json:"workers"`
	QueueCap      int     `json:"queue_cap"`
	QueueDepth    int     `json:"queue_depth"`

	SimsRunning    int64 `json:"sims_running"`
	SimEvents      int64 `json:"sim_events"`
	CellsCompleted int64 `json:"cells_completed"`

	JobsSubmitted  int64 `json:"jobs_submitted"`
	JobsDone       int64 `json:"jobs_done"`
	JobsFailed     int64 `json:"jobs_failed"`
	JobsRetried    int64 `json:"jobs_retried"`
	JobsCanceled   int64 `json:"jobs_canceled"`
	PanicsConfined int64 `json:"panics_confined"`

	RejectedInvalid  int64 `json:"rejected_invalid"`
	RejectedFull     int64 `json:"rejected_queue_full"`
	RejectedBreaker  int64 `json:"rejected_breaker_open"`
	RejectedDraining int64 `json:"rejected_draining"`

	BreakerTrips int64    `json:"breaker_trips"`
	BreakersOpen []string `json:"breakers_open,omitempty"`
}

// Snapshot assembles the current metrics.
func (s *Server) Snapshot() Metrics {
	s.mu.Lock()
	depth := len(s.queue)
	draining := s.draining
	s.mu.Unlock()
	return Metrics{
		UptimeSeconds:    s.now().Sub(s.started).Seconds(),
		Draining:         draining,
		Workers:          s.cfg.Workers,
		QueueCap:         s.cfg.QueueCap,
		QueueDepth:       depth,
		SimsRunning:      s.cfg.Gauges.SimsRunning.Value(),
		SimEvents:        s.cfg.Gauges.SimEvents.Value(),
		CellsCompleted:   s.cfg.Gauges.CellsCompleted.Value(),
		JobsSubmitted:    s.ctrSubmitted.Value(),
		JobsDone:         s.ctrDone.Value(),
		JobsFailed:       s.ctrFailed.Value(),
		JobsRetried:      s.ctrRetried.Value(),
		JobsCanceled:     s.ctrCanceled.Value(),
		PanicsConfined:   s.ctrPanics.Value(),
		RejectedInvalid:  s.ctrRejectedInvalid.Value(),
		RejectedFull:     s.ctrRejectedFull.Value(),
		RejectedBreaker:  s.ctrRejectedBreaker.Value(),
		RejectedDraining: s.ctrRejectedDraining.Value(),
		BreakerTrips:     s.breaker.TripCount(),
		BreakersOpen:     s.breaker.OpenKeys(),
	}
}
