package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"memsched/internal/sim"
)

func newHTTPServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Drain(5 * time.Second)
	})
	return s, ts
}

func postJob(t *testing.T, ts *httptest.Server, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatalf("POST /jobs: %v", err)
	}
	return resp
}

func decodeStatus(t *testing.T, resp *http.Response) JobStatus {
	t.Helper()
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode JobStatus: %v", err)
	}
	return st
}

func TestHTTPJobLifecycle(t *testing.T) {
	cfg := fastCfg()
	cfg.Runner = func(ctx context.Context, req JobRequest) (*sim.Result, error) {
		return okResult(req), nil
	}
	_, ts := newHTTPServer(t, cfg)

	resp := postJob(t, ts, `{"workload":"matmul2d","n":2,"gpus":2}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST status = %d, want 202", resp.StatusCode)
	}
	st := decodeStatus(t, resp)
	if st.ID == "" {
		t.Fatal("accepted job has no id")
	}

	// Long-poll until terminal.
	resp2, err := http.Get(ts.URL + "/jobs/" + st.ID + "?wait=1")
	if err != nil {
		t.Fatalf("GET wait: %v", err)
	}
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("GET wait status = %d", resp2.StatusCode)
	}
	final := decodeStatus(t, resp2)
	if final.State != JobDone || final.Result == nil {
		t.Fatalf("long-polled job: %+v", final)
	}

	// Listing shows it.
	resp3, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatalf("GET /jobs: %v", err)
	}
	var list []JobStatus
	if err := json.NewDecoder(resp3.Body).Decode(&list); err != nil {
		t.Fatalf("decode list: %v", err)
	}
	resp3.Body.Close()
	if len(list) != 1 || list[0].ID != st.ID {
		t.Fatalf("list = %+v", list)
	}

	// Unknown ids are 404.
	resp4, _ := http.Get(ts.URL + "/jobs/job-999999")
	if resp4.StatusCode != http.StatusNotFound {
		t.Fatalf("GET unknown = %d, want 404", resp4.StatusCode)
	}
	resp4.Body.Close()

	// Metrics reflect the run (JSON snapshot via content negotiation;
	// the bare endpoint now serves Prometheus text).
	resp5, _ := http.Get(ts.URL + "/metrics?format=json")
	var m Metrics
	if err := json.NewDecoder(resp5.Body).Decode(&m); err != nil {
		t.Fatalf("decode metrics: %v", err)
	}
	resp5.Body.Close()
	if m.JobsSubmitted != 1 || m.JobsDone != 1 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestHTTPBadRequests(t *testing.T) {
	_, ts := newHTTPServer(t, fastCfg())
	for _, body := range []string{
		`{not json`,
		`{"workload":"nope","n":2}`,
		`{"workload":"matmul2d","n":2,"bogus_field":1}`, // unknown fields rejected
	} {
		resp := postJob(t, ts, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("POST %s = %d, want 400", body, resp.StatusCode)
		}
		var e map[string]string
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e["error"] == "" {
			t.Fatalf("400 body for %s: %v %v", body, e, err)
		}
		resp.Body.Close()
	}
}

func TestHTTPOverloadRetryAfter(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{})
	cfg := fastCfg()
	cfg.Workers = 1
	cfg.QueueCap = 1
	cfg.RetryAfterHint = 2 * time.Second
	cfg.Runner = blockingRunner(started, release)
	_, ts := newHTTPServer(t, cfg)

	postJob(t, ts, `{"workload":"matmul2d","n":2}`).Body.Close()
	<-started
	postJob(t, ts, `{"workload":"matmul2d","n":2}`).Body.Close() // fills the queue

	resp := postJob(t, ts, `{"workload":"matmul2d","n":2}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload POST = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After = %q, want \"2\"", ra)
	}
	resp.Body.Close()
	close(release)
}

func TestHTTPCancel(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{})
	cfg := fastCfg()
	cfg.Workers = 1
	cfg.Runner = blockingRunner(started, release)
	_, ts := newHTTPServer(t, cfg)

	st := decodeStatus(t, postJob(t, ts, `{"workload":"matmul2d","n":2}`))
	<-started

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	resp2, _ := http.Get(ts.URL + "/jobs/" + st.ID + "?wait=1")
	final := decodeStatus(t, resp2)
	if final.State != JobCanceled {
		t.Fatalf("state after DELETE = %q", final.State)
	}
	close(release)
}

func TestHTTPHealthReadyDrain(t *testing.T) {
	s, ts := newHTTPServer(t, fastCfg())

	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d, want 200", path, resp.StatusCode)
		}
		resp.Body.Close()
	}

	if err := s.Drain(5 * time.Second); err != nil {
		t.Fatalf("Drain: %v", err)
	}

	// Liveness stays green; readiness flips; submissions are refused.
	resp, _ := http.Get(ts.URL + "/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz during drain = %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp, _ = http.Get(ts.URL + "/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain = %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()
	resp = postJob(t, ts, `{"workload":"matmul2d","n":2}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST during drain = %d, want 503", resp.StatusCode)
	}
	var e map[string]string
	json.NewDecoder(resp.Body).Decode(&e)
	resp.Body.Close()
	if !strings.Contains(e["error"], "draining") {
		t.Fatalf("drain rejection body: %v", e)
	}
}

func TestWriteRejectRoundsUp(t *testing.T) {
	rec := httptest.NewRecorder()
	writeReject(rec, &RejectError{Status: 429, RetryAfter: 1500 * time.Millisecond, Reason: "full"})
	if rec.Code != 429 {
		t.Fatalf("status = %d", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "2" {
		t.Fatalf("Retry-After = %q, want 2 (ceil of 1.5s)", got)
	}
	// Sub-second hints still advertise at least one second.
	rec = httptest.NewRecorder()
	writeReject(rec, &RejectError{Status: 503, RetryAfter: 10 * time.Millisecond, Reason: "breaker"})
	if got := rec.Header().Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want 1", got)
	}
	// Non-RejectError falls back to 500.
	rec = httptest.NewRecorder()
	writeReject(rec, fmt.Errorf("boom"))
	if rec.Code != 500 {
		t.Fatalf("fallback status = %d", rec.Code)
	}
}

func TestReadyzBodyShape(t *testing.T) {
	// The 503 body must let a fleet health prober distinguish "draining"
	// from "dead": queue depth, open breaker keys and the drain flag are
	// present in both the ready and the draining form.
	cfg := fastCfg()
	cfg.BreakerThreshold = 1
	cfg.Runner = func(ctx context.Context, req JobRequest) (*sim.Result, error) {
		return nil, fmt.Errorf("always fails")
	}
	s, ts := newHTTPServer(t, cfg)

	getReady := func(wantCode int) ReadyStatus {
		t.Helper()
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatalf("GET /readyz: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantCode {
			t.Fatalf("/readyz = %d, want %d", resp.StatusCode, wantCode)
		}
		var rs ReadyStatus
		if err := json.NewDecoder(resp.Body).Decode(&rs); err != nil {
			t.Fatalf("decode /readyz body: %v", err)
		}
		return rs
	}

	rs := getReady(http.StatusOK)
	if rs.Status != "ready" || rs.Draining || rs.QueueCap != 64 || rs.QueueDepth != 0 {
		t.Fatalf("ready body = %+v", rs)
	}
	if len(rs.BreakersOpen) != 0 {
		t.Fatalf("fresh server reports open breakers: %+v", rs)
	}

	// One permanent failure trips the threshold-1 breaker; the key shows
	// up in the readiness body.
	st := mustSubmit(t, s, validReq())
	waitDone(t, s, st.ID)
	rs = getReady(http.StatusOK)
	if len(rs.BreakersOpen) != 1 || rs.BreakersOpen[0] != "matmul2d|DARTS+LUF" {
		t.Fatalf("breakers_open = %+v, want [matmul2d|DARTS+LUF]", rs.BreakersOpen)
	}

	if err := s.Drain(5 * time.Second); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	rs = getReady(http.StatusServiceUnavailable)
	if rs.Status != "draining" || !rs.Draining {
		t.Fatalf("draining body = %+v", rs)
	}
	if len(rs.BreakersOpen) != 1 {
		t.Fatalf("draining body lost breaker state: %+v", rs)
	}
}

func TestLongPollClientDisconnect(t *testing.T) {
	// An abandoned ?wait=1 long-poll must release its handler as soon as
	// the client goes away, not pin it until the job completes.
	release := make(chan struct{})
	cfg := fastCfg()
	cfg.Workers = 1
	cfg.Runner = func(ctx context.Context, req JobRequest) (*sim.Result, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return okResult(req), nil
	}
	s, ts := newHTTPServer(t, cfg)
	defer close(release)

	st := mustSubmit(t, s, validReq())

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/jobs/"+st.ID+"?wait=1", nil)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		done <- err
	}()
	// Let the long-poll park, then drop the client.
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "context canceled") {
			t.Fatalf("abandoned long-poll returned %v, want context canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("abandoned long-poll still blocked after cancel; handler pinned until job completion")
	}

	// The job is untouched by the disconnect and still completes.
	if got, _ := s.Job(st.ID); got.State.Terminal() {
		t.Fatalf("job reached %q before release; disconnect must not cancel it", got.State)
	}
}

func TestSubmitTraceHeaderPropagation(t *testing.T) {
	// A router forwarding a job sends its trace ID; the replica's job
	// must adopt it so spans and logs correlate across both processes.
	cfg := fastCfg()
	cfg.Runner = func(ctx context.Context, req JobRequest) (*sim.Result, error) {
		return okResult(req), nil
	}
	s, ts := newHTTPServer(t, cfg)

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/jobs",
		strings.NewReader(`{"workload":"matmul2d","n":2}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(TraceHeader, "12345678901")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	st := decodeStatus(t, resp)
	if st.Trace != 12345678901 {
		t.Fatalf("job trace = %d, want the propagated 12345678901", st.Trace)
	}
	final := waitDone(t, s, st.ID)
	if final.State != JobDone {
		t.Fatalf("traced job state = %q", final.State)
	}
	// The flight recorder filed the lifecycle under the adopted ID.
	spans := s.tracer.JobSpans(st.ID)
	if len(spans) == 0 || spans[0].Trace != 12345678901 {
		t.Fatalf("spans not recorded under adopted trace: %+v", spans)
	}

	// A malformed header is ignored, not rejected.
	req2, _ := http.NewRequest(http.MethodPost, ts.URL+"/jobs",
		strings.NewReader(`{"workload":"matmul2d","n":2}`))
	req2.Header.Set(TraceHeader, "not-a-number")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	st2 := decodeStatus(t, resp2)
	if resp2.StatusCode != http.StatusAccepted || st2.Trace == 0 {
		t.Fatalf("malformed trace header: status %d, trace %d", resp2.StatusCode, st2.Trace)
	}
}
