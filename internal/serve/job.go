package serve

import (
	"context"
	"fmt"
	"time"

	"memsched/internal/critpath"
	"memsched/internal/expr"
	"memsched/internal/fault"
	"memsched/internal/metrics"
	"memsched/internal/platform"
	"memsched/internal/sched"
	"memsched/internal/sim"
	"memsched/internal/taskgraph"
	"memsched/internal/workload"
)

// JobRequest is one scheduling job: a workload, a platform shape and a
// strategy, optionally perturbed by a fault plan. It is the POST /jobs
// body.
type JobRequest struct {
	// Workload names the instance generator: matmul2d, matmul2d-rand,
	// matmul3d, cholesky, sparse2d.
	Workload string `json:"workload"`
	// N is the workload size parameter (task grid edge, tile count...).
	N int `json:"n"`
	// Keep is the sparse2d task-keep fraction (0 uses the paper default).
	Keep float64 `json:"keep,omitempty"`
	// GPUs is the number of simulated V100s (default 1).
	GPUs int `json:"gpus,omitempty"`
	// MemMB overrides the per-GPU memory budget in MB (0 keeps the
	// platform default).
	MemMB int64 `json:"mem_mb,omitempty"`
	// Strategy is the scheduler label (see `memsched -list`); default
	// DARTS+LUF.
	Strategy string `json:"strategy,omitempty"`
	// Seed feeds the run (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Cost charges the scheduler's decision time to the simulated clock.
	Cost bool `json:"cost,omitempty"`
	// Faults is an optional fault plan in fault.ParseSpec syntax, e.g.
	// "drop=1@5ms,transient=0.05".
	Faults string `json:"faults,omitempty"`
	// TimeoutMS overrides the server's per-job deadline (capped by the
	// server's maximum; 0 uses the server default).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// CritPath requests makespan attribution: the run records its trace
	// and the completed job's result carries the critical-path blame
	// summary (categories, counterfactual bounds, top blamed tasks and
	// data; see internal/critpath).
	CritPath bool `json:"critpath,omitempty"`
}

// Key is the circuit-breaker bucket of the request: jobs of the same
// workload under the same strategy fail together (a pathological
// combination keeps failing deterministically), so they trip together.
func (r *JobRequest) Key() string {
	return r.Workload + "|" + r.Strategy
}

// Normalize fills the documented defaults in place. Submit applies it
// automatically; the fleet layer calls it directly so canonical job
// keys are computed on the same spec a replica would run.
func (r *JobRequest) Normalize() {
	if r.GPUs == 0 {
		r.GPUs = 1
	}
	if r.Strategy == "" {
		r.Strategy = "DARTS+LUF"
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.Keep == 0 {
		r.Keep = workload.DefaultSparseKeep
	}
}

// validate is the admission control: a request that would build an
// oversized instance, name an unknown workload or strategy, or carry an
// invalid fault plan is rejected before it consumes a queue slot.
func (r *JobRequest) validate(cfg Config) error {
	return r.Validate(cfg.MaxN, cfg.MaxGPUs)
}

// Validate runs the admission checks against explicit bounds. The fleet
// router shares it so an invalid job is a local 400, not a wasted
// round-trip to a replica.
func (r *JobRequest) Validate(maxN, maxGPUs int) error {
	switch r.Workload {
	case "matmul2d", "matmul2d-rand", "matmul3d", "cholesky", "sparse2d":
	default:
		return fmt.Errorf("unknown workload %q (matmul2d, matmul2d-rand, matmul3d, cholesky, sparse2d)", r.Workload)
	}
	if r.N < 1 || r.N > maxN {
		return fmt.Errorf("n %d out of range [1, %d]", r.N, maxN)
	}
	if r.GPUs < 1 || r.GPUs > maxGPUs {
		return fmt.Errorf("gpus %d out of range [1, %d]", r.GPUs, maxGPUs)
	}
	if r.MemMB < 0 {
		return fmt.Errorf("mem_mb %d negative", r.MemMB)
	}
	if r.Keep < 0 || r.Keep > 1 {
		return fmt.Errorf("keep %g out of range [0, 1]", r.Keep)
	}
	if r.TimeoutMS < 0 {
		return fmt.Errorf("timeout_ms %d negative", r.TimeoutMS)
	}
	if _, err := sched.ByName(r.Strategy); err != nil {
		return err
	}
	plan, err := fault.ParseSpec(r.Faults)
	if err != nil {
		return err
	}
	if err := plan.Validate(r.GPUs); err != nil {
		return err
	}
	return nil
}

// buildInstance mirrors the cmd/memsched workload table.
func buildInstance(name string, n int, keep float64, seed int64) (*taskgraph.Instance, error) {
	switch name {
	case "matmul2d":
		return workload.Matmul2D(n), nil
	case "matmul2d-rand":
		return workload.Matmul2DRandomized(n, seed), nil
	case "matmul3d":
		return workload.Matmul3D(n), nil
	case "cholesky":
		return workload.Cholesky(n), nil
	case "sparse2d":
		return workload.Sparse2D(n, keep, seed), nil
	}
	return nil, fmt.Errorf("unknown workload %q (matmul2d, matmul2d-rand, matmul3d, cholesky, sparse2d)", name)
}

// runRequest is the production Runner: it builds the instance and
// simulates it under the request's strategy, platform and fault plan.
// The caller owns deadline and panic confinement.
func runRequest(ctx context.Context, req JobRequest) (*sim.Result, error) {
	inst, err := buildInstance(req.Workload, req.N, req.Keep, req.Seed)
	if err != nil {
		return nil, err
	}
	strat, err := sched.ByName(req.Strategy)
	if err != nil {
		return nil, err
	}
	plan, err := fault.ParseSpec(req.Faults)
	if err != nil {
		return nil, err
	}
	plat := platform.V100(req.GPUs)
	if req.MemMB > 0 {
		plat.MemoryBytes = req.MemMB * platform.MB
	}
	nsPerOp := 0.0
	if req.Cost {
		nsPerOp = sim.DefaultNsPerOp
	}
	if req.CritPath {
		return expr.RunOneTraced(ctx, inst, strat, plat, nsPerOp, req.Seed, false, plan)
	}
	return expr.RunOneFaulty(ctx, inst, strat, plat, nsPerOp, req.Seed, false, plan)
}

// JobState is the lifecycle position of a job.
type JobState string

// Job lifecycle states.
const (
	// JobQueued: accepted, waiting for a worker.
	JobQueued JobState = "queued"
	// JobRunning: executing (or backing off between retry attempts).
	JobRunning JobState = "running"
	// JobDone: completed; Result is set.
	JobDone JobState = "done"
	// JobFailed: permanently failed (deadline, non-transient error, or
	// retries exhausted); Error is set.
	JobFailed JobState = "failed"
	// JobCanceled: canceled by the client (or rejected by a drain)
	// before completing.
	JobCanceled JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled
}

// JobResult is the outcome of a completed job: the standard metrics row
// plus the fault/recovery counters of faulty runs and — for jobs
// submitted with "critpath": true — the makespan attribution.
type JobResult struct {
	metrics.Row
	Faults   *sim.FaultStats   `json:"faults,omitempty"`
	CritPath *critpath.Summary `json:"critpath,omitempty"`
}

// JobStatus is the client-visible snapshot of a job (GET /jobs/{id}).
type JobStatus struct {
	ID    string   `json:"id"`
	State JobState `json:"state"`
	// Trace is the job's trace ID: the correlation key for
	// /debug/jobs/{id}/trace spans and the daemon's log lines.
	Trace   uint64     `json:"trace,omitempty"`
	Request JobRequest `json:"request"`
	// Attempts counts started simulation attempts (> 1 means retries).
	Attempts int `json:"attempts,omitempty"`
	// Error is the permanent failure, set when State is failed (and for
	// canceled jobs, the cancellation reason).
	Error  string     `json:"error,omitempty"`
	Result *JobResult `json:"result,omitempty"`
	// SubmittedMS/StartedMS/FinishedMS are Unix milliseconds; zero when
	// the job has not reached that point.
	SubmittedMS int64 `json:"submitted_unix_ms,omitempty"`
	StartedMS   int64 `json:"started_unix_ms,omitempty"`
	FinishedMS  int64 `json:"finished_unix_ms,omitempty"`
}

// job is the server-internal state; all mutable fields are guarded by
// Server.mu.
type job struct {
	id  string
	req JobRequest
	// key is req.Key(), computed once at admission and shared by the
	// breaker, the histograms and every span of the job.
	key string
	// trace is the correlation ID threaded through the job's spans and
	// log lines; sampled says whether lifecycle spans are recorded.
	trace   uint64
	sampled bool
	state   JobState
	attempt int
	errMsg  string
	result  *JobResult

	submitted time.Time
	started   time.Time
	finished  time.Time

	// cancelRequested is set by Cancel; a queued job is skipped by the
	// worker, a running one has its context canceled.
	cancelRequested bool
	cancel          context.CancelFunc
	// done is closed when the job reaches a terminal state (the ?wait
	// long-poll and the drain path block on it).
	done chan struct{}
}

func (j *job) status() JobStatus {
	st := JobStatus{
		ID:       j.id,
		State:    j.state,
		Trace:    j.trace,
		Request:  j.req,
		Attempts: j.attempt,
		Error:    j.errMsg,
		Result:   j.result,
	}
	if !j.submitted.IsZero() {
		st.SubmittedMS = j.submitted.UnixMilli()
	}
	if !j.started.IsZero() {
		st.StartedMS = j.started.UnixMilli()
	}
	if !j.finished.IsZero() {
		st.FinishedMS = j.finished.UnixMilli()
	}
	return st
}
