package serve

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"strings"
	"testing"
)

// TestCritPathJobEndToEnd drives the production runner with
// "critpath": true and checks the completed job carries a makespan
// attribution whose categories tile the makespan.
func TestCritPathJobEndToEnd(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	st := mustSubmit(t, s, JobRequest{
		Workload: "matmul2d", N: 3, GPUs: 2,
		Strategy: "DARTS+LUF", CritPath: true,
	})
	final := waitDone(t, s, st.ID)
	if final.State != JobDone {
		t.Fatalf("state = %q (err %q), want done", final.State, final.Error)
	}
	cp := final.Result.CritPath
	if cp == nil {
		t.Fatal("critpath summary missing from result of a critpath job")
	}
	sum := cp.ComputeMS + cp.PCIMS + cp.PeerMS + cp.ReloadMS + cp.SchedMS + cp.FaultMS
	if math.Abs(sum-cp.MakespanMS) > 0.01 {
		t.Fatalf("blame sum %.3f != makespan %.3f", sum, cp.MakespanMS)
	}
	if cp.ComputeMS <= 0 || cp.Segments == 0 {
		t.Fatalf("degenerate attribution: %+v", cp)
	}
	if cp.MakespanMS != final.Result.MakespanMS {
		t.Fatalf("attribution makespan %.3f != row makespan %.3f", cp.MakespanMS, final.Result.MakespanMS)
	}

	// A job without the flag stays lean: no attribution attached.
	st2 := mustSubmit(t, s, JobRequest{Workload: "matmul2d", N: 3, GPUs: 2, Strategy: "DARTS+LUF"})
	final2 := waitDone(t, s, st2.ID)
	if final2.State != JobDone || final2.Result.CritPath != nil {
		t.Fatalf("plain job should omit critpath: %+v", final2.Result)
	}
}

// TestCritPathJobFaulty checks attribution also comes back from a run
// perturbed by a fault plan (the trace kinds the walker must handle).
func TestCritPathJobFaulty(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	st := mustSubmit(t, s, JobRequest{
		Workload: "matmul2d", N: 3, GPUs: 2,
		Strategy: "DMDAR", Faults: "seed=7,transient=0.1", CritPath: true,
	})
	final := waitDone(t, s, st.ID)
	if final.State != JobDone {
		t.Fatalf("state = %q (err %q), want done", final.State, final.Error)
	}
	cp := final.Result.CritPath
	if cp == nil {
		t.Fatal("critpath summary missing from faulty critpath job")
	}
	sum := cp.ComputeMS + cp.PCIMS + cp.PeerMS + cp.ReloadMS + cp.SchedMS + cp.FaultMS
	if math.Abs(sum-cp.MakespanMS) > 0.01 {
		t.Fatalf("blame sum %.3f != makespan %.3f", sum, cp.MakespanMS)
	}
}

// TestHTTPMetricsFormatValidation pins the ?format= contract: json and
// prometheus are the only recognized values; anything else is a 400
// with a JSON error body, not a silent fallback to text.
func TestHTTPMetricsFormatValidation(t *testing.T) {
	_, ts := newHTTPServer(t, fastCfg())

	for _, format := range []string{"xml", "josn", "text", "JSON"} {
		resp, err := http.Get(ts.URL + "/metrics?format=" + format)
		if err != nil {
			t.Fatalf("GET ?format=%s: %v", format, err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("?format=%s = %d, want 400", format, resp.StatusCode)
		}
		var e map[string]string
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || !strings.Contains(e["error"], format) {
			t.Fatalf("400 body for ?format=%s: %v %v", format, e, err)
		}
		resp.Body.Close()
	}

	// The two legal values still work.
	resp, _ := http.Get(ts.URL + "/metrics?format=json")
	if resp.StatusCode != http.StatusOK || !strings.Contains(resp.Header.Get("Content-Type"), "application/json") {
		t.Fatalf("?format=json: %d %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	resp.Body.Close()
	resp, _ = http.Get(ts.URL + "/metrics?format=prometheus")
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "memschedd_jobs_submitted_total") {
		t.Fatalf("?format=prometheus: %d\n%s", resp.StatusCode, body)
	}
}

// TestHTTPFlightBadN pins the /debug/flight?n= contract: a
// non-positive or non-numeric n is a 400 with a JSON error.
func TestHTTPFlightBadN(t *testing.T) {
	_, ts := newHTTPServer(t, fastCfg())

	for _, n := range []string{"0", "-3", "abc", "1.5"} {
		resp, err := http.Get(ts.URL + "/debug/flight?n=" + n)
		if err != nil {
			t.Fatalf("GET ?n=%s: %v", n, err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("?n=%s = %d, want 400", n, resp.StatusCode)
		}
		var e map[string]string
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e["error"] == "" {
			t.Fatalf("400 body for ?n=%s: %v %v", n, e, err)
		}
		resp.Body.Close()
	}

	for _, q := range []string{"", "?n=2"} {
		resp, err := http.Get(ts.URL + "/debug/flight" + q)
		if err != nil {
			t.Fatalf("GET %s: %v", q, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET flight%s = %d, want 200", q, resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// TestPrometheusBuildInfo checks the exposition carries the
// project-wide build identity gauge with both labels set.
func TestPrometheusBuildInfo(t *testing.T) {
	s := newTestServer(t, fastCfg())
	var sb strings.Builder
	if err := s.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "# TYPE memsched_build_info gauge") {
		t.Fatalf("missing build_info TYPE line:\n%s", out)
	}
	var line string
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "memsched_build_info{") {
			line = l
			break
		}
	}
	if line == "" {
		t.Fatalf("missing build_info sample:\n%s", out)
	}
	if !strings.Contains(line, `version="`) || !strings.Contains(line, `goversion="`) ||
		!strings.HasSuffix(line, " 1") {
		t.Fatalf("build_info sample malformed: %q", line)
	}
}
