package serve

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"memsched/internal/sim"
)

// okResult is a minimal successful simulation result for fake runners.
func okResult(req JobRequest) *sim.Result {
	return &sim.Result{
		SchedulerName: req.Strategy,
		InstanceName:  req.Workload,
		NumGPUs:       req.GPUs,
		Makespan:      time.Millisecond,
		GFlops:        1,
		Events:        10,
	}
}

func validReq() JobRequest {
	return JobRequest{Workload: "matmul2d", N: 2}
}

// fastCfg returns a config with short backoffs so retry tests run in
// milliseconds.
func fastCfg() Config {
	return Config{
		Workers:     2,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  2 * time.Millisecond,
	}
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s := New(cfg)
	t.Cleanup(func() { s.Drain(5 * time.Second) })
	return s
}

func mustSubmit(t *testing.T, s *Server, req JobRequest) JobStatus {
	t.Helper()
	st, err := s.Submit(req)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	return st
}

func waitDone(t *testing.T, s *Server, id string) JobStatus {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	st, err := s.Wait(ctx, id)
	if err != nil {
		t.Fatalf("Wait(%s): %v", id, err)
	}
	if !st.State.Terminal() {
		t.Fatalf("Wait(%s) returned non-terminal state %q", id, st.State)
	}
	return st
}

func TestSubmitRunsToDone(t *testing.T) {
	cfg := fastCfg()
	cfg.Runner = func(ctx context.Context, req JobRequest) (*sim.Result, error) {
		return okResult(req), nil
	}
	s := newTestServer(t, cfg)

	st := mustSubmit(t, s, validReq())
	if st.State != JobQueued && st.State != JobRunning {
		t.Fatalf("fresh job state = %q", st.State)
	}
	// Defaults were normalized in.
	if st.Request.Strategy != "DARTS+LUF" || st.Request.GPUs != 1 || st.Request.Seed != 1 {
		t.Fatalf("defaults not applied: %+v", st.Request)
	}

	final := waitDone(t, s, st.ID)
	if final.State != JobDone {
		t.Fatalf("state = %q (err %q), want done", final.State, final.Error)
	}
	if final.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1", final.Attempts)
	}
	if final.Result == nil || final.Result.Workload != "matmul2d" {
		t.Fatalf("result row missing or wrong: %+v", final.Result)
	}
	if final.SubmittedMS == 0 || final.StartedMS == 0 || final.FinishedMS == 0 {
		t.Fatalf("timestamps missing: %+v", final)
	}

	m := s.Snapshot()
	if m.JobsSubmitted != 1 || m.JobsDone != 1 || m.SimEvents != 10 || m.CellsCompleted != 1 {
		t.Fatalf("metrics after success: %+v", m)
	}
}

func TestRealRunnerEndToEnd(t *testing.T) {
	// No Runner override: the production path builds and simulates the
	// instance, fault plan included.
	s := newTestServer(t, Config{Workers: 1})
	st := mustSubmit(t, s, JobRequest{
		Workload: "matmul2d", N: 2, GPUs: 2,
		Strategy: "DMDAR", Faults: "seed=7,transient=0.05",
	})
	final := waitDone(t, s, st.ID)
	if final.State != JobDone {
		t.Fatalf("state = %q (err %q), want done", final.State, final.Error)
	}
	if final.Result == nil || final.Result.GFlops <= 0 {
		t.Fatalf("result = %+v, want positive throughput", final.Result)
	}
	if final.Result.Faults == nil {
		t.Fatal("fault stats missing from faulty run result")
	}
}

func TestAdmissionControl(t *testing.T) {
	s := newTestServer(t, fastCfg())
	cases := []JobRequest{
		{Workload: "nope", N: 2},
		{Workload: "matmul2d", N: 0},
		{Workload: "matmul2d", N: 10_000},
		{Workload: "matmul2d", N: 2, GPUs: 99},
		{Workload: "matmul2d", N: 2, Strategy: "NotAScheduler"},
		{Workload: "matmul2d", N: 2, Faults: "bogus-spec"},
		{Workload: "matmul2d", N: 2, MemMB: -1},
		{Workload: "matmul2d", N: 2, TimeoutMS: -1},
	}
	for _, req := range cases {
		_, err := s.Submit(req)
		var rej *RejectError
		if !errors.As(err, &rej) || rej.Status != 400 {
			t.Fatalf("Submit(%+v) err = %v, want 400 RejectError", req, err)
		}
	}
	if m := s.Snapshot(); m.RejectedInvalid != int64(len(cases)) || m.JobsSubmitted != 0 {
		t.Fatalf("metrics after invalid submissions: %+v", m)
	}
}

func TestRetryTransientThenSucceed(t *testing.T) {
	var calls int
	ch := make(chan int, 8)
	cfg := fastCfg()
	cfg.MaxRetries = 3
	cfg.Runner = func(ctx context.Context, req JobRequest) (*sim.Result, error) {
		calls++
		ch <- calls
		if calls < 3 {
			return nil, MarkTransient(errors.New("spurious"))
		}
		return okResult(req), nil
	}
	cfg.Workers = 1 // serialize so the counter is race-free
	s := newTestServer(t, cfg)

	st := mustSubmit(t, s, validReq())
	final := waitDone(t, s, st.ID)
	if final.State != JobDone {
		t.Fatalf("state = %q (err %q), want done after retries", final.State, final.Error)
	}
	if final.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", final.Attempts)
	}
	if m := s.Snapshot(); m.JobsRetried != 2 || m.JobsFailed != 0 {
		t.Fatalf("metrics after retried success: %+v", m)
	}
}

func TestRetriesExhausted(t *testing.T) {
	cfg := fastCfg()
	cfg.MaxRetries = 2
	cfg.Workers = 1
	cfg.Runner = func(ctx context.Context, req JobRequest) (*sim.Result, error) {
		return nil, MarkTransient(errors.New("always flaky"))
	}
	s := newTestServer(t, cfg)

	final := waitDone(t, s, mustSubmit(t, s, validReq()).ID)
	if final.State != JobFailed {
		t.Fatalf("state = %q, want failed", final.State)
	}
	if final.Attempts != 3 { // first try + 2 retries
		t.Fatalf("attempts = %d, want 3", final.Attempts)
	}
	if !strings.Contains(final.Error, "always flaky") {
		t.Fatalf("error = %q", final.Error)
	}
}

func TestPermanentErrorDoesNotRetry(t *testing.T) {
	cfg := fastCfg()
	cfg.Workers = 1
	cfg.Runner = func(ctx context.Context, req JobRequest) (*sim.Result, error) {
		return nil, errors.New("deterministic failure")
	}
	s := newTestServer(t, cfg)

	final := waitDone(t, s, mustSubmit(t, s, validReq()).ID)
	if final.State != JobFailed || final.Attempts != 1 {
		t.Fatalf("state = %q attempts = %d, want failed after 1 attempt", final.State, final.Attempts)
	}
	if m := s.Snapshot(); m.JobsRetried != 0 {
		t.Fatalf("permanent failure was retried: %+v", m)
	}
}

func TestPanicConfined(t *testing.T) {
	cfg := fastCfg()
	var boom bool
	cfg.Runner = func(ctx context.Context, req JobRequest) (*sim.Result, error) {
		if !boom {
			boom = true
			panic("scheduler bug")
		}
		return okResult(req), nil
	}
	cfg.Workers = 1
	s := newTestServer(t, cfg)

	bad := waitDone(t, s, mustSubmit(t, s, validReq()).ID)
	if bad.State != JobFailed || !strings.Contains(bad.Error, "panic: scheduler bug") {
		t.Fatalf("panicking job: state %q err %q", bad.State, bad.Error)
	}
	// The worker survived and keeps serving.
	good := waitDone(t, s, mustSubmit(t, s, validReq()).ID)
	if good.State != JobDone {
		t.Fatalf("job after panic: state %q err %q", good.State, good.Error)
	}
	if m := s.Snapshot(); m.PanicsConfined != 1 {
		t.Fatalf("PanicsConfined = %d, want 1", m.PanicsConfined)
	}
}

// blockingRunner parks every attempt until release is closed, reporting
// each start on started. It honors context cancellation.
func blockingRunner(started chan string, release chan struct{}) Runner {
	return func(ctx context.Context, req JobRequest) (*sim.Result, error) {
		started <- req.Workload
		select {
		case <-release:
			return okResult(req), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

func TestOverloadSheds429(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{})
	cfg := fastCfg()
	cfg.Workers = 1
	cfg.QueueCap = 2
	cfg.RetryAfterHint = 3 * time.Second
	cfg.Runner = blockingRunner(started, release)
	s := newTestServer(t, cfg)

	first := mustSubmit(t, s, validReq())
	<-started // the single worker now holds the first job; queue is empty

	q1 := mustSubmit(t, s, validReq())
	q2 := mustSubmit(t, s, validReq())

	// Queue is at capacity: the next submission is shed, not queued.
	_, err := s.Submit(validReq())
	var rej *RejectError
	if !errors.As(err, &rej) || rej.Status != 429 {
		t.Fatalf("overload Submit err = %v, want 429 RejectError", err)
	}
	if rej.RetryAfter != 3*time.Second {
		t.Fatalf("RetryAfter = %v, want 3s", rej.RetryAfter)
	}
	if m := s.Snapshot(); m.RejectedFull != 1 || m.QueueDepth != 2 {
		t.Fatalf("metrics under overload: %+v", m)
	}

	// Releasing the pool drains the backlog; nothing was lost.
	close(release)
	for _, id := range []string{first.ID, q1.ID, q2.ID} {
		if st := waitDone(t, s, id); st.State != JobDone {
			t.Fatalf("job %s after release: %q (err %q)", id, st.State, st.Error)
		}
	}
}

func TestBreakerShedsRepeatedFailures(t *testing.T) {
	cfg := fastCfg()
	cfg.Workers = 1
	cfg.BreakerThreshold = 2
	cfg.BreakerCooldown = time.Hour
	cfg.Runner = func(ctx context.Context, req JobRequest) (*sim.Result, error) {
		if req.Workload == "cholesky" {
			return okResult(req), nil
		}
		return nil, errors.New("bad combination")
	}
	s := newTestServer(t, cfg)

	for i := 0; i < 2; i++ {
		if st := waitDone(t, s, mustSubmit(t, s, validReq()).ID); st.State != JobFailed {
			t.Fatalf("failure %d: state %q", i, st.State)
		}
	}
	// Third submission for the same (workload, strategy) is shed.
	_, err := s.Submit(validReq())
	var rej *RejectError
	if !errors.As(err, &rej) || rej.Status != 503 {
		t.Fatalf("breaker Submit err = %v, want 503 RejectError", err)
	}
	if rej.RetryAfter <= 0 {
		t.Fatalf("breaker rejection missing RetryAfter: %+v", rej)
	}
	m := s.Snapshot()
	if m.BreakerTrips != 1 || m.RejectedBreaker != 1 {
		t.Fatalf("breaker metrics: %+v", m)
	}
	if len(m.BreakersOpen) != 1 || m.BreakersOpen[0] != "matmul2d|DARTS+LUF" {
		t.Fatalf("BreakersOpen = %v", m.BreakersOpen)
	}

	// A different key is unaffected.
	ok := waitDone(t, s, mustSubmit(t, s, JobRequest{Workload: "cholesky", N: 2}).ID)
	if ok.State != JobDone {
		t.Fatalf("unrelated key: state %q (err %q)", ok.State, ok.Error)
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{})
	cfg := fastCfg()
	cfg.Workers = 1
	cfg.Runner = blockingRunner(started, release)
	s := newTestServer(t, cfg)

	running := mustSubmit(t, s, validReq())
	<-started
	queued := mustSubmit(t, s, validReq())

	// Canceling a queued job is immediate.
	st, err := s.Cancel(queued.ID)
	if err != nil || st.State != JobCanceled {
		t.Fatalf("cancel queued: %+v, %v", st, err)
	}
	// Canceling the running job cancels its context; the runner returns
	// ctx.Err() and the job lands in canceled, not failed.
	if _, err := s.Cancel(running.ID); err != nil {
		t.Fatalf("cancel running: %v", err)
	}
	final := waitDone(t, s, running.ID)
	if final.State != JobCanceled {
		t.Fatalf("canceled running job: state %q (err %q)", final.State, final.Error)
	}
	if m := s.Snapshot(); m.JobsCanceled != 2 {
		t.Fatalf("JobsCanceled = %d, want 2", m.JobsCanceled)
	}
	if _, err := s.Cancel("job-999999"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("cancel unknown: %v", err)
	}
	close(release)
}

func TestDrainFinishesInFlightRejectsQueued(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{})
	cfg := fastCfg()
	cfg.Workers = 1
	cfg.Runner = blockingRunner(started, release)
	s := New(cfg) // not newTestServer: this test owns the drain

	inflight := mustSubmit(t, s, validReq())
	<-started
	queued := mustSubmit(t, s, validReq())

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(10 * time.Second) }()

	// Drain flips readiness and starts rejecting new submissions.
	deadline := time.Now().Add(5 * time.Second)
	for !s.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("Draining() never became true")
		}
		time.Sleep(time.Millisecond)
	}
	_, err := s.Submit(validReq())
	var rej *RejectError
	if !errors.As(err, &rej) || rej.Status != 503 || !strings.Contains(rej.Reason, "draining") {
		t.Fatalf("submit during drain: %v", err)
	}

	// The in-flight job completes; the queued one is rejected unstarted.
	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if st := waitDone(t, s, inflight.ID); st.State != JobDone {
		t.Fatalf("in-flight job after drain: %q (err %q)", st.State, st.Error)
	}
	st := waitDone(t, s, queued.ID)
	if st.State != JobCanceled || !strings.Contains(st.Error, "draining") {
		t.Fatalf("queued job after drain: %q (err %q)", st.State, st.Error)
	}
	// A second drain is a no-op.
	if err := s.Drain(time.Second); err != nil {
		t.Fatalf("second Drain: %v", err)
	}
}

func TestDrainDeadlineCancelsStuckJobs(t *testing.T) {
	started := make(chan string, 8)
	cfg := fastCfg()
	cfg.Workers = 1
	cfg.Runner = func(ctx context.Context, req JobRequest) (*sim.Result, error) {
		started <- req.Workload
		<-ctx.Done() // never finishes on its own
		return nil, ctx.Err()
	}
	s := New(cfg)

	st := mustSubmit(t, s, validReq())
	<-started
	err := s.Drain(50 * time.Millisecond)
	if err == nil || !strings.Contains(err.Error(), "drain deadline") {
		t.Fatalf("Drain past deadline = %v, want deadline error", err)
	}
	final := waitDone(t, s, st.ID)
	if final.State != JobCanceled {
		t.Fatalf("stuck job after forced drain: %q (err %q)", final.State, final.Error)
	}
}

func TestDrainAbortsRetryBackoff(t *testing.T) {
	started := make(chan string, 8)
	cfg := Config{
		Workers:     1,
		MaxRetries:  3,
		BaseBackoff: time.Hour, // a drain must not wait this out
		MaxBackoff:  time.Hour,
	}
	cfg.Runner = func(ctx context.Context, req JobRequest) (*sim.Result, error) {
		started <- req.Workload
		return nil, MarkTransient(errors.New("flaky"))
	}
	s := New(cfg)

	st := mustSubmit(t, s, validReq())
	<-started // first attempt failed; the worker is now in backoff
	t0 := time.Now()
	if err := s.Drain(30 * time.Second); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if elapsed := time.Since(t0); elapsed > 10*time.Second {
		t.Fatalf("drain waited %v; backoff was not aborted", elapsed)
	}
	final := waitDone(t, s, st.ID)
	if final.State != JobFailed {
		t.Fatalf("state after aborted backoff = %q, want failed", final.State)
	}
}

func TestWaitAndList(t *testing.T) {
	cfg := fastCfg()
	cfg.Runner = func(ctx context.Context, req JobRequest) (*sim.Result, error) {
		return okResult(req), nil
	}
	s := newTestServer(t, cfg)

	a := mustSubmit(t, s, validReq())
	b := mustSubmit(t, s, JobRequest{Workload: "cholesky", N: 2})
	waitDone(t, s, a.ID)
	waitDone(t, s, b.ID)

	list := s.List()
	if len(list) != 2 || list[0].ID != a.ID || list[1].ID != b.ID {
		t.Fatalf("List order: %+v", list)
	}
	if _, err := s.Wait(context.Background(), "job-999999"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("Wait unknown: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Wait(ctx, a.ID); err != nil {
		t.Fatalf("Wait on done job with canceled ctx: %v", err)
	}
}

func TestWaitCancelledContextReturnsPromptly(t *testing.T) {
	// Wait must unblock the moment its context dies (the HTTP layer
	// passes the request context, so a client disconnect lands here),
	// returning the job's current, possibly non-terminal status.
	release := make(chan struct{})
	cfg := fastCfg()
	cfg.Workers = 1
	cfg.Runner = func(ctx context.Context, req JobRequest) (*sim.Result, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return okResult(req), nil
	}
	s := newTestServer(t, cfg)
	defer close(release)

	st := mustSubmit(t, s, validReq())

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already-dead context: Wait must not block at all
	t0 := time.Now()
	got, err := s.Wait(ctx, st.ID)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if time.Since(t0) > time.Second {
		t.Fatal("Wait blocked on a cancelled context")
	}
	if got.State.Terminal() {
		t.Fatalf("job already terminal (%q); wanted the in-flight snapshot", got.State)
	}

	// An unknown id still reports ErrUnknownJob even with a dead context.
	if _, err := s.Wait(ctx, "job-999999"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("Wait(unknown) = %v, want ErrUnknownJob", err)
	}
}
