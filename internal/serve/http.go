package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"

	"memsched/internal/obs"
)

// TraceHeader carries a propagated trace ID on forwarded submissions
// (router → replica). The value is the decimal uint64 trace ID.
const TraceHeader = "X-Memsched-Trace"

// Handler returns the HTTP API of the server:
//
//	POST   /jobs        submit a JobRequest; 202 + JobStatus, or 400 /
//	                    429 (+Retry-After) / 503 (+Retry-After)
//	GET    /jobs        list all jobs in submission order
//	GET    /jobs/{id}   poll one job; ?wait=1 long-polls until it is
//	                    terminal (bounded by the request context)
//	DELETE /jobs/{id}   cancel a queued or running job
//	GET    /healthz     liveness: 200 while the process runs
//	GET    /readyz      readiness: 200, or 503 once draining
//	GET    /metrics     Prometheus text exposition (0.0.4); the JSON
//	                    snapshot (see Metrics) with Accept:
//	                    application/json or ?format=json
//	GET    /debug/flight          flight recorder: last N job timelines +
//	                              last N shed/breaker/retry events (?n=)
//	GET    /debug/jobs/{id}/trace one job's span timeline
//	GET    /debug/spans.jsonl     the retained span ring as JSONL
//
// All responses are JSON except the Prometheus exposition and the JSONL
// span export. Every debug/metrics handler snapshots first and formats
// after — none holds the Submit mutex while rendering.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		// The body carries queue depth, open breaker keys and the drain
		// flag in both the 200 and the 503 so a health prober (the fleet
		// router's, in particular) can tell "draining" from "dead" and
		// watch saturation build.
		st := s.Ready()
		code := http.StatusOK
		if st.Draining {
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, st)
	})
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/flight", s.handleFlight)
	mux.HandleFunc("GET /debug/jobs/{id}/trace", s.handleJobTrace)
	mux.HandleFunc("GET /debug/spans.jsonl", s.handleSpansJSONL)
	return mux
}

// handleMetrics serves Prometheus text by default and the JSON snapshot
// on request (Accept: application/json, or ?format=json for curl). An
// unrecognized ?format= is a 400, not a silent fallback: a scraper that
// typos "josn" should find out from the response, not from a dashboard
// full of text-format parse errors.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	switch format := r.URL.Query().Get("format"); format {
	case "json":
		writeJSON(w, http.StatusOK, s.Snapshot())
		return
	case "", "prometheus":
	default:
		writeJSON(w, http.StatusBadRequest, map[string]string{
			"error": fmt.Sprintf("unknown format %q (json, prometheus)", format)})
		return
	}
	if strings.Contains(r.Header.Get("Accept"), "application/json") {
		writeJSON(w, http.StatusOK, s.Snapshot())
		return
	}
	// Render into a buffer first so an encoding error can still become
	// a 500 instead of a torn 200.
	var buf bytes.Buffer
	if err := s.WritePrometheus(&buf); err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	w.Header().Set("Content-Type", obs.PromContentType)
	w.WriteHeader(http.StatusOK)
	w.Write(buf.Bytes())
}

func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	n := 0
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "n must be a positive integer"})
			return
		}
		n = v
	}
	writeJSON(w, http.StatusOK, s.FlightDump(n))
}

func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	jt, err := s.JobTraceDump(r.PathValue("id"))
	if errors.Is(err, ErrUnknownJob) {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, jt)
}

func (s *Server) handleSpansJSONL(w http.ResponseWriter, r *http.Request) {
	spans := s.Spans()
	w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	obs.WriteJSONL(w, spans)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("bad request body: %v", err)})
		return
	}
	// A router forwarding the job propagates its trace ID so the spans
	// recorded here correlate with the router's flight recorder. A
	// malformed header is ignored rather than rejected: tracing is
	// observability, not admission control.
	var extTrace uint64
	if h := r.Header.Get(TraceHeader); h != "" {
		if v, err := strconv.ParseUint(h, 10, 64); err == nil {
			extTrace = v
		}
	}
	st, err := s.SubmitTraced(req, extTrace)
	if err != nil {
		writeReject(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.List())
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var st JobStatus
	var err error
	if r.URL.Query().Get("wait") != "" {
		// Long-poll: the request context bounds the wait, so a client
		// disconnect or timeout releases the handler immediately.
		st, err = s.Wait(r.Context(), id)
	} else {
		st, err = s.Job(id)
	}
	if errors.Is(err, ErrUnknownJob) {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.Cancel(r.PathValue("id"))
	if errors.Is(err, ErrUnknownJob) {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// writeReject maps a Submit rejection onto its HTTP status and
// Retry-After header.
func writeReject(w http.ResponseWriter, err error) {
	var rej *RejectError
	if !errors.As(err, &rej) {
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	if rej.RetryAfter > 0 {
		secs := int(math.Ceil(rej.RetryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	}
	writeJSON(w, rej.Status, map[string]string{"error": rej.Reason})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
