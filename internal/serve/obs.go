package serve

import (
	"io"
	"sort"
	"strings"

	"memsched/internal/buildinfo"
	"memsched/internal/obs"
)

// promPrefix namespaces every exposition metric of the service.
const promPrefix = "memschedd_"

// WritePrometheus renders the service metrics in the Prometheus text
// exposition format (0.0.4): RED counters, queue/worker/breaker gauges,
// and the latency histograms, overall and per (workload, strategy).
//
// The method is snapshot-then-format: Snapshot() takes the Submit mutex
// only long enough to copy two ints, the histograms and rings are read
// through their own snapshots, and all rendering happens on the copies
// — a slow scrape can never hold up admissions.
func (s *Server) WritePrometheus(w io.Writer) error {
	m := s.Snapshot()
	qw, at, so := s.queueWait.Snapshot(), s.attemptDur.Snapshot(), s.sojourn.Snapshot()
	qwk, atk, sok := s.queueWaitKey.Snapshot(), s.attemptDurKey.Snapshot(), s.sojournKey.Snapshot()
	spanTotal, eventTotal := s.tracer.SpanTotal(), s.tracer.EventTotal()

	p := obs.NewPromWriter(w)

	// Build identity. The metric name is deliberately unprefixed
	// ("memsched_", not "memschedd_"): the same family identifies every
	// binary of the project, with the daemon distinguished by its job.
	version, goVersion := buildinfo.Resolve()
	p.Meta("memsched_build_info", "gauge", "Build identity of the running binary; always 1.")
	p.Sample("memsched_build_info", []obs.Label{
		{Name: "version", Value: version},
		{Name: "goversion", Value: goVersion},
	}, 1)

	// RED counters.
	counter := func(name, help string, v int64) {
		p.Meta(promPrefix+name, "counter", help)
		p.Sample(promPrefix+name, nil, float64(v))
	}
	counter("jobs_submitted_total", "Jobs accepted into the queue.", m.JobsSubmitted)
	counter("jobs_done_total", "Jobs that completed successfully.", m.JobsDone)
	counter("jobs_failed_total", "Jobs that failed permanently.", m.JobsFailed)
	counter("jobs_canceled_total", "Jobs canceled by the client or a drain.", m.JobsCanceled)
	counter("jobs_retried_total", "Transient-failure retries scheduled.", m.JobsRetried)
	counter("panics_confined_total", "Attempt panics confined to their job.", m.PanicsConfined)
	counter("breaker_trips_total", "Circuit-breaker openings across all keys.", m.BreakerTrips)
	counter("sim_events_total", "Simulator engine events processed by completed attempts.", m.SimEvents)
	counter("trace_spans_total", "Lifecycle spans recorded into the flight-recorder ring.", int64(spanTotal))
	counter("trace_events_total", "Service events (shed/breaker/retry) recorded into the flight recorder.", int64(eventTotal))

	// Rejections share a family, split by reason.
	p.Meta(promPrefix+"rejected_total", "counter", "Submissions refused, by reason.")
	for _, r := range []struct {
		reason string
		v      int64
	}{
		{"invalid", m.RejectedInvalid},
		{"queue_full", m.RejectedFull},
		{"breaker_open", m.RejectedBreaker},
		{"draining", m.RejectedDraining},
	} {
		p.Sample(promPrefix+"rejected_total", []obs.Label{{Name: "reason", Value: r.reason}}, float64(r.v))
	}

	// Saturation gauges.
	gauge := func(name, help string, v float64) {
		p.Meta(promPrefix+name, "gauge", help)
		p.Sample(promPrefix+name, nil, v)
	}
	gauge("queue_depth", "Jobs accepted but not yet running.", float64(m.QueueDepth))
	gauge("queue_capacity", "Queue slots before submissions shed.", float64(m.QueueCap))
	gauge("workers", "Worker-pool size.", float64(m.Workers))
	gauge("sims_running", "Simulation attempts executing right now.", float64(m.SimsRunning))
	gauge("uptime_seconds", "Seconds since the server started.", m.UptimeSeconds)
	draining := 0.0
	if m.Draining {
		draining = 1
	}
	gauge("draining", "1 while a graceful drain is in progress.", draining)

	// Open breakers, one gauge sample per tripped key.
	p.Meta(promPrefix+"breaker_open", "gauge", "1 for each (workload, strategy) key whose breaker is open or half-open.")
	open := append([]string(nil), m.BreakersOpen...)
	sort.Strings(open)
	for _, key := range open {
		p.Sample(promPrefix+"breaker_open", keyLabels(key), 1)
	}

	// Latency histograms: overall, then per key under a _by_key name so
	// the labelless aggregate and the labeled split never mix samples
	// inside one family.
	histPair := func(name, help string, overall obs.HistSnapshot, byKey map[string]obs.HistSnapshot) {
		p.Meta(promPrefix+name, "histogram", help)
		p.Histogram(promPrefix+name, nil, overall)
		p.Meta(promPrefix+name+"_by_key", "histogram", help+" (per workload and strategy)")
		keys := make([]string, 0, len(byKey))
		for k := range byKey {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			p.Histogram(promPrefix+name+"_by_key", keyLabels(k), byKey[k])
		}
	}
	histPair("queue_wait_seconds", "Time from admission to the first attempt.", qw, qwk)
	histPair("attempt_runtime_seconds", "Wall time of one simulation attempt.", at, atk)
	histPair("sojourn_seconds", "End-to-end time from admission to done/failed.", so, sok)

	return p.Flush()
}

// keyLabels splits a breaker key ("workload|strategy") into exposition
// labels.
func keyLabels(key string) []obs.Label {
	w, strat, _ := strings.Cut(key, "|")
	return []obs.Label{{Name: "workload", Value: w}, {Name: "strategy", Value: strat}}
}

// LatencySnapshots returns the overall queue-wait, attempt-runtime and
// sojourn histograms (tests and status pages read these; the exposition
// endpoint renders the same snapshots).
func (s *Server) LatencySnapshots() (queueWait, attempt, sojourn obs.HistSnapshot) {
	return s.queueWait.Snapshot(), s.attemptDur.Snapshot(), s.sojourn.Snapshot()
}

// Flight is the /debug/flight dump: the last job timelines the span
// ring retains plus the last shed/breaker/retry events, with the
// recorded-ever totals so a reader can tell how much history the rings
// have already dropped.
type Flight struct {
	SpansRecordedTotal  uint64         `json:"spans_recorded_total"`
	EventsRecordedTotal uint64         `json:"events_recorded_total"`
	Timelines           []obs.Timeline `json:"timelines"`
	Events              []obs.Span     `json:"events"`
}

// FlightDump assembles the flight recorder's view: the last n job
// timelines and the last n service events (n <= 0 selects 32). It reads
// only ring snapshots — never the Submit mutex.
func (s *Server) FlightDump(n int) Flight {
	if n <= 0 {
		n = 32
	}
	events := s.tracer.Events()
	if len(events) > n {
		events = events[len(events)-n:]
	}
	return Flight{
		SpansRecordedTotal:  s.tracer.SpanTotal(),
		EventsRecordedTotal: s.tracer.EventTotal(),
		Timelines:           s.tracer.Timelines(n),
		Events:              events,
	}
}

// JobTrace is the /debug/jobs/{id}/trace payload: the job's status plus
// every span the flight recorder still retains for it. Spans is empty
// when the job was not sampled or its spans were already evicted.
type JobTrace struct {
	Status JobStatus  `json:"status"`
	Spans  []obs.Span `json:"spans"`
}

// JobTraceDump returns one job's span timeline.
func (s *Server) JobTraceDump(id string) (JobTrace, error) {
	st, err := s.Job(id)
	if err != nil {
		return JobTrace{}, err
	}
	return JobTrace{Status: st, Spans: s.tracer.JobSpans(id)}, nil
}

// Spans exposes the retained lifecycle spans oldest-first (the
// /debug/spans.jsonl export).
func (s *Server) Spans() []obs.Span { return s.tracer.Spans() }
