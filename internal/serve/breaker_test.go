package serve

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is a manual clock for breaker tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestBreakerTripHalfOpenRecover(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := NewBreaker(3, time.Minute, clk.now)
	const key = "matmul2d|DARTS+LUF"

	// Below threshold: stays closed.
	b.OnFailure(key)
	b.OnFailure(key)
	if ok, _ := b.Allow(key); !ok {
		t.Fatal("breaker opened below threshold")
	}
	// Third consecutive failure trips it.
	b.OnFailure(key)
	ok, retryAfter := b.Allow(key)
	if ok {
		t.Fatal("breaker did not open at threshold")
	}
	if retryAfter <= 0 || retryAfter > time.Minute {
		t.Fatalf("retryAfter = %v, want (0, 1m]", retryAfter)
	}
	if got := b.TripCount(); got != 1 {
		t.Fatalf("tripCount = %d, want 1", got)
	}
	if keys := b.OpenKeys(); len(keys) != 1 || keys[0] != key {
		t.Fatalf("openKeys = %v, want [%s]", keys, key)
	}

	// Other keys are unaffected.
	if ok, _ := b.Allow("other|Eager"); !ok {
		t.Fatal("unrelated key was shed")
	}

	// Cooldown elapses: exactly one half-open probe is admitted.
	clk.advance(time.Minute + time.Second)
	if ok, _ := b.Allow(key); !ok {
		t.Fatal("half-open breaker did not admit a probe")
	}
	if ok, _ := b.Allow(key); ok {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}

	// Probe fails: re-open for a full cooldown.
	b.OnFailure(key)
	if ok, _ := b.Allow(key); ok {
		t.Fatal("breaker closed after failed probe")
	}
	if got := b.TripCount(); got != 2 {
		t.Fatalf("tripCount = %d, want 2", got)
	}

	// Next probe succeeds: fully closed again.
	clk.advance(time.Minute + time.Second)
	if ok, _ := b.Allow(key); !ok {
		t.Fatal("breaker did not half-open after second cooldown")
	}
	b.OnSuccess(key)
	for i := 0; i < 5; i++ {
		if ok, _ := b.Allow(key); !ok {
			t.Fatal("breaker not closed after probe success")
		}
	}
	// ...and the failure count restarted from zero.
	b.OnFailure(key)
	b.OnFailure(key)
	if ok, _ := b.Allow(key); !ok {
		t.Fatal("failure count was not reset by success")
	}
}

func TestBreakerDisabled(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := NewBreaker(0, time.Minute, clk.now)
	for i := 0; i < 10; i++ {
		b.OnFailure("k")
	}
	if ok, _ := b.Allow("k"); !ok {
		t.Fatal("disabled breaker shed a submission")
	}
	if got := b.TripCount(); got != 0 {
		t.Fatalf("disabled breaker counted %d trips", got)
	}
}

// TestBreakerHalfOpenConcurrentProbes closes the PR 5 gap: when the
// cooldown elapses and many submissions race into the half-open
// breaker, exactly one wins the probe slot and every loser is shed with
// the full cooldown as its retry hint.
func TestBreakerHalfOpenConcurrentProbes(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := NewBreaker(1, time.Minute, clk.now)
	const key = "cholesky|DMDAR"

	b.OnFailure(key) // threshold 1: open immediately
	clk.advance(time.Minute + time.Second)

	const racers = 32
	var admitted atomic.Int64
	var badHint atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			ok, retryAfter := b.Allow(key)
			if ok {
				admitted.Add(1)
			} else if retryAfter != time.Minute {
				badHint.Add(1)
			}
		}()
	}
	close(start)
	wg.Wait()
	if got := admitted.Load(); got != 1 {
		t.Fatalf("half-open admitted %d concurrent probes, want exactly 1", got)
	}
	if got := badHint.Load(); got != 0 {
		t.Fatalf("%d losers got a retry hint != full cooldown", got)
	}

	// While the probe is in flight the breaker keeps shedding, even
	// after more time passes.
	clk.advance(time.Hour)
	if ok, _ := b.Allow(key); ok {
		t.Fatal("breaker admitted a second probe while one was in flight")
	}

	// Probe success closes the breaker for everyone.
	b.OnSuccess(key)
	var reopened atomic.Int64
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if ok, _ := b.Allow(key); !ok {
				reopened.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := reopened.Load(); got != 0 {
		t.Fatalf("%d submissions shed after the probe closed the breaker", got)
	}
}
