package serve

import (
	"testing"
	"time"
)

// fakeClock is a manual clock for breaker tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestBreakerTripHalfOpenRecover(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := newBreaker(3, time.Minute, clk.now)
	const key = "matmul2d|DARTS+LUF"

	// Below threshold: stays closed.
	b.onFailure(key)
	b.onFailure(key)
	if ok, _ := b.allow(key); !ok {
		t.Fatal("breaker opened below threshold")
	}
	// Third consecutive failure trips it.
	b.onFailure(key)
	ok, retryAfter := b.allow(key)
	if ok {
		t.Fatal("breaker did not open at threshold")
	}
	if retryAfter <= 0 || retryAfter > time.Minute {
		t.Fatalf("retryAfter = %v, want (0, 1m]", retryAfter)
	}
	if got := b.tripCount(); got != 1 {
		t.Fatalf("tripCount = %d, want 1", got)
	}
	if keys := b.openKeys(); len(keys) != 1 || keys[0] != key {
		t.Fatalf("openKeys = %v, want [%s]", keys, key)
	}

	// Other keys are unaffected.
	if ok, _ := b.allow("other|Eager"); !ok {
		t.Fatal("unrelated key was shed")
	}

	// Cooldown elapses: exactly one half-open probe is admitted.
	clk.advance(time.Minute + time.Second)
	if ok, _ := b.allow(key); !ok {
		t.Fatal("half-open breaker did not admit a probe")
	}
	if ok, _ := b.allow(key); ok {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}

	// Probe fails: re-open for a full cooldown.
	b.onFailure(key)
	if ok, _ := b.allow(key); ok {
		t.Fatal("breaker closed after failed probe")
	}
	if got := b.tripCount(); got != 2 {
		t.Fatalf("tripCount = %d, want 2", got)
	}

	// Next probe succeeds: fully closed again.
	clk.advance(time.Minute + time.Second)
	if ok, _ := b.allow(key); !ok {
		t.Fatal("breaker did not half-open after second cooldown")
	}
	b.onSuccess(key)
	for i := 0; i < 5; i++ {
		if ok, _ := b.allow(key); !ok {
			t.Fatal("breaker not closed after probe success")
		}
	}
	// ...and the failure count restarted from zero.
	b.onFailure(key)
	b.onFailure(key)
	if ok, _ := b.allow(key); !ok {
		t.Fatal("failure count was not reset by success")
	}
}

func TestBreakerDisabled(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := newBreaker(0, time.Minute, clk.now)
	for i := 0; i < 10; i++ {
		b.onFailure("k")
	}
	if ok, _ := b.allow("k"); !ok {
		t.Fatal("disabled breaker shed a submission")
	}
	if got := b.tripCount(); got != 0 {
		t.Fatalf("disabled breaker counted %d trips", got)
	}
}
