package serve

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

func TestBackoffDelayBounds(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: 5 * time.Second}
	rng := rand.New(rand.NewSource(1))
	for attempt := 0; attempt < 12; attempt++ {
		want := b.Base << attempt
		if attempt >= 6 { // 100ms<<6 = 6.4s > 5s cap
			want = b.Max
		}
		for i := 0; i < 200; i++ {
			d := b.Delay(attempt, rng)
			if d < want/2 || d > want {
				t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d, want/2, want)
			}
		}
	}
}

func TestBackoffHugeAttemptDoesNotOverflow(t *testing.T) {
	b := Backoff{Base: time.Second, Max: time.Minute}
	rng := rand.New(rand.NewSource(1))
	for _, attempt := range []int{50, 500, 1 << 20} {
		d := b.Delay(attempt, rng)
		if d < b.Max/2 || d > b.Max {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d, b.Max/2, b.Max)
		}
	}
}

func TestTransientMarking(t *testing.T) {
	base := errors.New("gpu budget race")
	if IsTransient(base) {
		t.Fatal("plain error reported transient")
	}
	te := MarkTransient(base)
	if !IsTransient(te) {
		t.Fatal("marked error not reported transient")
	}
	// The capability survives further wrapping and still unwraps to base.
	wrapped := fmt.Errorf("attempt 2: %w", te)
	if !IsTransient(wrapped) {
		t.Fatal("wrapped transient error not reported transient")
	}
	if !errors.Is(wrapped, base) {
		t.Fatal("MarkTransient broke the Unwrap chain")
	}
	if MarkTransient(nil) != nil {
		t.Fatal("MarkTransient(nil) != nil")
	}
}
