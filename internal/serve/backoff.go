package serve

import (
	"errors"
	"math/rand"
	"time"
)

// transienter is the error capability that opts a failure into the retry
// path. Anything can implement it; MarkTransient wraps an arbitrary
// error with it.
type transienter interface {
	Transient() bool
}

type transientError struct{ err error }

func (e *transientError) Error() string   { return e.err.Error() }
func (e *transientError) Unwrap() error   { return e.err }
func (e *transientError) Transient() bool { return true }

// MarkTransient wraps err so IsTransient reports true: the job scheduler
// will retry it under backoff instead of failing the job. Use it for
// failures expected to clear on their own (resource exhaustion, racing
// tenants) — deterministic simulation errors retry into the same error
// and should stay permanent.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err (or anything it wraps) declares itself
// transient.
func IsTransient(err error) bool {
	var t transienter
	return errors.As(err, &t) && t.Transient()
}

// Backoff is the retry delay policy shared by the worker pool and the
// fleet router: exponential growth from Base, capped at Max, with full
// jitter on the upper half (the delay for attempt i is uniform in
// [d/2, d] where d = min(Base<<i, Max)). The jitter decorrelates retry
// storms without ever shrinking the delay below half the deterministic
// schedule.
type Backoff struct {
	Base time.Duration
	Max  time.Duration
}

// Delay returns the wait before retry attempt (0-based: the delay after
// the first failure is Delay(0)).
func (b Backoff) Delay(attempt int, rng *rand.Rand) time.Duration {
	d := b.Base
	// Shift with an overflow guard: 40 doublings overflow any sane Base.
	for i := 0; i < attempt && i < 40 && d < b.Max; i++ {
		d <<= 1
	}
	if d > b.Max {
		d = b.Max
	}
	if d <= 0 {
		return 0
	}
	half := d / 2
	return half + time.Duration(rng.Int63n(int64(d-half)+1))
}
